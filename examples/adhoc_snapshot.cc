// Ad-hoc snapshot example (§2: "DBToaster also exposes a read-only interface
// to its internal data structures to support ad-hoc client-side queries").
//
// While the order-book stream runs, issues interactive-style SQL against the
// engine's main-memory database snapshot through the interpreted executor,
// alongside the continuously-maintained standing views.
//
// Build & run:  ./build/examples/adhoc_snapshot
#include <cstdio>

#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/workload/orderbook.h"

using namespace dbtoaster;

int main() {
  Catalog catalog = workload::OrderBookCatalog();
  auto program = compiler::CompileQuery(catalog, "mm",
                                        workload::MarketMakerQuery());
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  runtime::Engine engine(std::move(program).value());

  workload::OrderBookGenerator gen;
  for (const Event& ev : gen.Generate(20000)) {
    if (Status s = engine.OnEvent(ev); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("standing view (compiled, always fresh):\n");
  auto mm = engine.View("mm");
  if (mm.ok()) std::printf("%s\n", mm.value().ToString().c_str());

  // Ad-hoc client-side queries over the same snapshot.
  const char* adhoc[] = {
      "select count(*) from BIDS",
      "select BROKER_ID, count(*), avg(PRICE) from BIDS group by BROKER_ID",
      "select min(PRICE), max(PRICE) from ASKS",
      "select sum(b.VOLUME) from BIDS b where b.PRICE > 9990",
  };
  for (const char* q : adhoc) {
    std::printf("adhoc> %s\n", q);
    auto r = engine.AdhocQuery(q);
    if (!r.ok()) {
      std::printf("  error: %s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", r.value().ToString().c_str());
  }
  return 0;
}
