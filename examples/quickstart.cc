// Quickstart: the paper's §3 walk-through, end to end.
//
// Compiles `select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C`,
// prints the recursive compilation trace (Figure 2), the trigger program,
// feeds a few inserts/deletes while showing the continuously-maintained
// result, and finally dumps the generated C++ handlers.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/catalog/catalog.h"
#include "src/codegen/cpp_gen.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"

using namespace dbtoaster;

int main() {
  Catalog catalog;
  (void)catalog.AddRelation(
      Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));

  const char* sql =
      "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C";
  std::printf("standing query:\n  %s\n\n", sql);

  auto program = compiler::CompileQuery(catalog, "q", sql);
  if (!program.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  std::printf("== recursive compilation trace (Figure 2) ==\n%s\n",
              program.value().TraceTable().c_str());
  std::printf("== trigger program ==\n%s\n",
              program.value().ToString().c_str());

  auto code = codegen::GenerateCpp(program.value());
  runtime::Engine engine(std::move(program).value());

  auto show = [&](const char* what) {
    auto v = engine.ViewScalar("q");
    std::printf("%-28s q = %s\n", what,
                v.ok() ? v.value().ToString().c_str()
                       : v.status().ToString().c_str());
  };

  std::printf("== live maintenance ==\n");
  (void)engine.OnInsert("R", {Value(2), Value(10)});
  show("insert R(2,10):");
  (void)engine.OnInsert("S", {Value(10), Value(20)});
  show("insert S(10,20):");
  (void)engine.OnInsert("T", {Value(20), Value(7)});
  show("insert T(20,7):");   // q = 2*7 = 14
  (void)engine.OnInsert("R", {Value(5), Value(10)});
  show("insert R(5,10):");   // q += 5*7 = 49
  (void)engine.OnDelete("R", {Value(5), Value(10)});
  show("delete R(5,10):");   // back to 14

  // The same engine through the unified streaming API: one ApplyBatch call
  // ingests a whole vector of deltas, grouped per (relation, op). Baselines
  // and dbtc-generated programs implement the identical interface.
  std::printf("== batched ingestion (StreamEngine API) ==\n");
  runtime::StreamEngine& stream = engine;
  runtime::EventBatch batch;
  batch.AddInsert("R", {Value(1), Value(10)});
  batch.AddInsert("R", {Value(4), Value(10)});
  batch.AddDelete("R", {Value(2), Value(10)});
  (void)stream.ApplyBatch(std::move(batch));
  show("batch {+R(1),+R(4),-R(2)}:");  // 14 + 7 + 28 - 14 = 35

  if (code.ok()) {
    std::printf("\n== generated C++ (dbtc output, excerpt) ==\n");
    const std::string& src = code.value();
    size_t pos = src.find("void on_R");
    size_t end = src.find("void on_S");
    if (pos != std::string::npos && end != std::string::npos) {
      std::printf("%s...\n", src.substr(pos, end - pos).c_str());
    }
  }
  return 0;
}
