// Debugger / tracer example (§2: "DBToaster includes a debugger and profiler
// for tracing delta processing functions and their maintenance of internal
// data structures", and the §4.1 step-through demo).
//
// Registers a TraceSink that prints every event, every executed trigger
// statement and every map cell transition for the first few deltas of the
// Figure-2 query.
//
// Build & run:  ./build/examples/debugger_trace
#include <cstdio>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"

using namespace dbtoaster;

namespace {

class PrintingDebugger : public runtime::TraceSink {
 public:
  void OnEvent(const Event& event) override {
    std::printf("\n>> %s\n", event.ToString().c_str());
  }
  void OnStatement(const compiler::Statement& stmt,
                   size_t updates_applied) override {
    std::printf("   stmt  %-55s  (%zu updates)\n", stmt.ToString().c_str(),
                updates_applied);
  }
  void OnMapUpdate(const std::string& map, const Row& key,
                   const Value& old_value, const Value& new_value) override {
    std::printf("   map   %s%s : %s -> %s\n", map.c_str(),
                RowToString(key).c_str(), old_value.ToString().c_str(),
                new_value.ToString().c_str());
  }
};

}  // namespace

int main() {
  Catalog catalog;
  (void)catalog.AddRelation(
      Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));

  auto program = compiler::CompileQuery(
      catalog, "q",
      "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  runtime::Engine engine(std::move(program).value());
  PrintingDebugger debugger;
  engine.set_trace_sink(&debugger);

  std::printf("stepping through delta processing (Figure 2 query):");
  (void)engine.OnInsert("S", {Value(10), Value(20)});
  (void)engine.OnInsert("R", {Value(2), Value(10)});
  (void)engine.OnInsert("T", {Value(20), Value(7)});
  (void)engine.OnInsert("T", {Value(20), Value(3)});
  (void)engine.OnDelete("R", {Value(2), Value(10)});

  auto v = engine.ViewScalar("q");
  std::printf("\nfinal q = %s (expected 0 after the delete)\n",
              v.ok() ? v.value().ToString().c_str() : "?");
  return 0;
}
