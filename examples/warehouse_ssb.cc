// Warehouse-loading example (§4: data warehouse loading).
//
// Streams a TPC-H-shaped load (dimensions, then facts with corrections)
// through the compiled SSB Q4.1 view — integration join and aggregation
// compiled together, with no materialised intermediate join results.
//
// Build & run:  ./build/examples/warehouse_ssb [num_fact_events]
#include <cstdio>
#include <cstdlib>

#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/workload/tpch.h"

using namespace dbtoaster;

int main(int argc, char** argv) {
  size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  Catalog catalog = workload::TpchCatalog();
  auto program =
      compiler::CompileQuery(catalog, "profit", workload::SsbQ41Query());
  if (!program.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("SSB Q4.1 compiled into %zu maps / %zu triggers\n",
              program.value().maps.size(), program.value().triggers.size());
  runtime::Engine engine(std::move(program).value());

  workload::TpchGenerator gen;
  std::vector<Event> events = gen.Generate(num_events);
  std::printf("loading %zu events (dimensions + facts + corrections)...\n",
              events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    Status st = engine.OnEvent(events[i]);
    if (!st.ok()) {
      std::fprintf(stderr, "event %zu: %s\n", i, st.ToString().c_str());
      return 1;
    }
  }

  auto view = engine.View("profit");
  if (!view.ok()) {
    std::fprintf(stderr, "view: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("\nprofit by (year, nation) — %zu groups, first rows:\n",
              view.value().rows.size());
  auto rows = view.value().SortedRows();
  size_t shown = 0;
  for (const auto& [row, mult] : rows) {
    std::printf("  year=%s nation=%s profit=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str());
    if (++shown == 10) break;
  }
  std::printf("...\nmap entries: %zu (vs %lld base rows), map bytes: %zu\n",
              engine.TotalMapEntries(),
              static_cast<long long>(
                  engine.database().FindTable("LINEITEM")->Cardinality()),
              engine.MapMemoryBytes());
  return 0;
}
