// Algorithmic-trading example (§4: order books in equities trading).
//
// Maintains the paper's finance queries over a synthetic TotalView-style
// limit order book stream: VWAP (nested correlated aggregates), the SOBI
// signal legs, market-maker detection, and best bid/ask. Prints live values
// during the stream and the runtime profiler report at the end.
//
// Build & run:  ./build/examples/orderbook_vwap [num_events]
#include <cstdio>
#include <cstdlib>

#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/workload/orderbook.h"

using namespace dbtoaster;

int main(int argc, char** argv) {
  size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  Catalog catalog = workload::OrderBookCatalog();
  compiler::Compiler compiler(catalog);
  Status s = compiler.AddQuery("vwap", workload::VwapQuery());
  if (s.ok()) s = compiler.AddQuery("bid_leg", workload::SobiBidLeg());
  if (s.ok()) s = compiler.AddQuery("ask_leg", workload::SobiAskLeg());
  if (s.ok()) s = compiler.AddQuery("mm", workload::MarketMakerQuery());
  if (s.ok()) s = compiler.AddQuery("best_bid", workload::BestBidQuery());
  if (s.ok()) s = compiler.AddQuery("best_ask", workload::BestAskQuery());
  if (!s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }
  auto program = compiler.Compile();
  if (!program.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled %zu queries into %zu maps, %zu triggers\n",
              program.value().views.size(), program.value().maps.size(),
              program.value().triggers.size());
  runtime::Engine engine(std::move(program).value());

  workload::OrderBookGenerator gen;
  std::vector<Event> events = gen.Generate(num_events);

  size_t report_every = events.size() / 5 + 1;
  for (size_t i = 0; i < events.size(); ++i) {
    Status st = engine.OnEvent(events[i]);
    if (!st.ok()) {
      std::fprintf(stderr, "event %zu: %s\n", i, st.ToString().c_str());
      return 1;
    }
    if (i % report_every == 0 || i + 1 == events.size()) {
      auto vwap = engine.ViewScalar("vwap");
      auto bb = engine.ViewScalar("best_bid");
      auto ba = engine.ViewScalar("best_ask");
      auto bid = engine.View("bid_leg");
      auto ask = engine.View("ask_leg");
      double signal = 0;
      if (bid.ok() && ask.ok() && !bid.value().rows.empty() &&
          !ask.value().rows.empty()) {
        const Row& b = bid.value().rows[0].first;
        const Row& a = ask.value().rows[0].first;
        // SOBI: distance of VWAP-weighted bid/ask midpoints.
        double bvwap = b[1].AsDouble() == 0 ? 0 : b[0].AsDouble() / b[1].AsDouble();
        double avwap = a[1].AsDouble() == 0 ? 0 : a[0].AsDouble() / a[1].AsDouble();
        signal = bvwap - avwap;
      }
      std::printf(
          "event %8zu | book %5zu/%-5zu | vwap=%-14s best_bid=%-7s "
          "best_ask=%-7s sobi_signal=%.2f\n",
          i, gen.live_bids(), gen.live_asks(),
          vwap.ok() ? vwap.value().ToString().c_str() : "?",
          bb.ok() ? bb.value().ToString().c_str() : "?",
          ba.ok() ? ba.value().ToString().c_str() : "?", signal);
    }
  }

  auto mm = engine.View("mm");
  if (mm.ok()) {
    std::printf("\nmarket-maker net posted volume by broker:\n%s",
                mm.value().ToString().c_str());
  }

  std::printf("\n== profiler ==\n%s", engine.profile().ToString().c_str());
  std::printf("map entries: %zu, map bytes: %zu\n", engine.TotalMapEntries(),
              engine.MapMemoryBytes());
  return 0;
}
