// Shared helpers for the bakeoff benchmark binaries: the standard engine
// lineup behind the unified StreamEngine API, time-budgeted event/batch
// runs and table printing.
#ifndef DBTOASTER_BENCH_BENCH_COMMON_H_
#define DBTOASTER_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/storage/table.h"

namespace dbtoaster::bench {

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string engine;
  std::string query;
  size_t events = 0;
  double seconds = 0;
  size_t state_bytes = 0;
  bool supported = true;

  double EventsPerSec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
};

/// Process events through `step` until the stream ends or `budget_s`
/// elapses; returns (#events, seconds). Checks the clock every 64 events so
/// slow engines stop promptly and fast engines aren't timer-bound.
template <typename Step>
std::pair<size_t, double> TimedRun(const std::vector<Event>& events,
                                   double budget_s, Step&& step) {
  double start = NowSeconds();
  size_t i = 0;
  for (; i < events.size(); ++i) {
    step(events[i]);
    if ((i & 63u) == 63u && NowSeconds() - start > budget_s) {
      ++i;
      break;
    }
  }
  return {i, NowSeconds() - start};
}

/// Drive any StreamEngine one event at a time.
inline std::pair<size_t, double> TimedEngineRun(
    const std::vector<Event>& events, double budget_s,
    runtime::StreamEngine* engine) {
  return TimedRun(events, budget_s,
                  [&](const Event& ev) { (void)engine->OnEvent(ev); });
}

/// Drive any StreamEngine in batches of `batch_size` events. Batch assembly
/// is inside the measured loop (it is part of the ingestion cost); the
/// clock is checked every >= 64 events regardless of batch size so small
/// batches aren't timer-bound.
inline std::pair<size_t, double> TimedBatchRun(
    const std::vector<Event>& events, double budget_s, size_t batch_size,
    runtime::StreamEngine* engine) {
  double start = NowSeconds();
  size_t i = 0, next_check = 63;
  while (i < events.size()) {
    runtime::EventBatch batch;
    size_t end = std::min(events.size(), i + batch_size);
    for (; i < end; ++i) {
      batch.Add(events[i].kind, events[i].relation, events[i].tuple);
    }
    (void)engine->ApplyBatch(std::move(batch));
    if (i > next_check) {
      if (NowSeconds() - start > budget_s) break;
      next_check = i + 63;
    }
  }
  return {i, NowSeconds() - start};
}

/// One engine of the standard bakeoff lineup; `engine` is null when the
/// architecture class cannot support the query (printed as "n/a").
struct BakeoffEntry {
  std::string name;
  std::unique_ptr<runtime::StreamEngine> engine;
};

/// Build one engine of the standard lineup by name ("reeval", "ivm1",
/// "toaster-i", "toaster-c"); null when the architecture class cannot
/// support the query. `compiled` is required only for "toaster-c".
inline std::unique_ptr<runtime::StreamEngine> MakeBakeoffEngine(
    const std::string& name, const Catalog& catalog, const std::string& sql,
    dbt::StreamProgram* compiled = nullptr) {
  if (name == "reeval") {
    auto e = std::make_unique<baseline::ReevalEngine>(catalog, /*eager=*/true);
    if (!e->AddQuery("q", sql).ok()) return nullptr;
    return e;
  }
  if (name == "ivm1") {
    auto e = std::make_unique<baseline::Ivm1Engine>(catalog);
    if (!e->AddQuery("q", sql).ok()) return nullptr;
    return e;
  }
  if (name == "toaster-i") {
    auto program = compiler::CompileQuery(catalog, "q", sql);
    if (!program.ok()) return nullptr;
    return std::make_unique<runtime::Engine>(std::move(program).value());
  }
  if (name == "toaster-c" && compiled != nullptr) {
    return std::make_unique<runtime::CompiledProgramEngine>(compiled);
  }
  return nullptr;
}

/// The four architecture classes of the §4.2 bakeoff, all behind the same
/// StreamEngine interface. `compiled` (a dbtc-generated program) may be
/// null to omit the toaster-c row.
inline std::vector<BakeoffEntry> MakeBakeoffEngines(
    const Catalog& catalog, const std::string& sql,
    dbt::StreamProgram* compiled = nullptr) {
  std::vector<BakeoffEntry> out;
  for (const char* name : {"reeval", "ivm1", "toaster-i"}) {
    out.push_back({name, MakeBakeoffEngine(name, catalog, sql)});
  }
  if (compiled != nullptr) {
    out.push_back(
        {"toaster-c", MakeBakeoffEngine("toaster-c", catalog, sql, compiled)});
  }
  return out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-14s %-12s %12s %10s %14s %14s\n", "query", "engine",
              "events", "seconds", "events/sec", "state KiB");
  std::printf("%s\n", std::string(82, '-').c_str());
}

inline void PrintRow(const RunResult& r) {
  if (!r.supported) {
    std::printf("%-14s %-12s %12s %10s %14s %14s\n", r.query.c_str(),
                r.engine.c_str(), "-", "-", "n/a", "-");
    return;
  }
  std::printf("%-14s %-12s %12zu %10.3f %14.0f %14.1f\n", r.query.c_str(),
              r.engine.c_str(), r.events, r.seconds, r.EventsPerSec(),
              static_cast<double>(r.state_bytes) / 1024.0);
}

}  // namespace dbtoaster::bench

#endif  // DBTOASTER_BENCH_BENCH_COMMON_H_
