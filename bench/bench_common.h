// Shared helpers for the bakeoff benchmark binaries: engine adapters,
// time-budgeted runs and table printing.
#ifndef DBTOASTER_BENCH_BENCH_COMMON_H_
#define DBTOASTER_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/codegen/dbtoaster_runtime.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/storage/table.h"

namespace dbtoaster::bench {

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string engine;
  std::string query;
  size_t events = 0;
  double seconds = 0;
  size_t state_bytes = 0;
  bool supported = true;

  double EventsPerSec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
};

/// Process events through `step` until the stream ends or `budget_s`
/// elapses; returns (#events, seconds). Checks the clock every 64 events so
/// slow engines stop promptly and fast engines aren't timer-bound.
template <typename Step>
std::pair<size_t, double> TimedRun(const std::vector<Event>& events,
                                   double budget_s, Step&& step) {
  double start = NowSeconds();
  size_t i = 0;
  for (; i < events.size(); ++i) {
    step(events[i]);
    if ((i & 63u) == 63u && NowSeconds() - start > budget_s) {
      ++i;
      break;
    }
  }
  return {i, NowSeconds() - start};
}

/// Convert a storage event tuple to the generated-code value vector.
inline std::vector<dbt::Value> ToDbtValues(const Row& row) {
  std::vector<dbt::Value> out;
  out.reserve(row.size());
  for (const Value& v : row) {
    if (v.is_string()) {
      out.emplace_back(v.AsString());
    } else if (v.is_double()) {
      out.emplace_back(v.AsDouble());
    } else {
      out.emplace_back(v.AsInt());
    }
  }
  return out;
}

/// Drive a dbtc-generated Program with storage events.
template <typename GeneratedProgram>
std::pair<size_t, double> TimedCompiledRun(const std::vector<Event>& events,
                                           double budget_s,
                                           GeneratedProgram* program) {
  return TimedRun(events, budget_s, [&](const Event& ev) {
    program->on_event(ev.relation, ev.kind == EventKind::kInsert,
                      ToDbtValues(ev.tuple));
  });
}

inline void PrintHeader(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-14s %-12s %12s %10s %14s %14s\n", "query", "engine",
              "events", "seconds", "events/sec", "state KiB");
  std::printf("%s\n", std::string(82, '-').c_str());
}

inline void PrintRow(const RunResult& r) {
  if (!r.supported) {
    std::printf("%-14s %-12s %12s %10s %14s %14s\n", r.query.c_str(),
                r.engine.c_str(), "-", "-", "n/a", "-");
    return;
  }
  std::printf("%-14s %-12s %12zu %10.3f %14.0f %14.1f\n", r.query.c_str(),
              r.engine.c_str(), r.events, r.seconds, r.EventsPerSec(),
              static_cast<double>(r.state_bytes) / 1024.0);
}

}  // namespace dbtoaster::bench

#endif  // DBTOASTER_BENCH_BENCH_COMMON_H_
