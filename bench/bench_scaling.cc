// §2's asymptotic claim: "we generate asymptotically simpler code at each
// recurrence". Per-event latency as a function of database size |DB|:
// re-evaluation degrades with |DB| (it rescans/rejoins), first-order IVM
// grows with index fan-out, DBToaster stays flat (map lookups).
#include "bench/bench_common.h"
#include "src/common/rng.h"

namespace dbtoaster::bench {
namespace {

Catalog Fig2Catalog() {
  Catalog cat;
  (void)cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)cat.AddRelation(Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)cat.AddRelation(Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));
  return cat;
}

constexpr char kQuery[] =
    "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C";

/// Build a database of `n` rows/relation, then measure the cost of 200
/// additional events on each engine.
void RunAtSize(size_t n) {
  Catalog cat = Fig2Catalog();
  Rng rng(99);
  std::vector<Event> preload;
  const int64_t domain = static_cast<int64_t>(n) / 4 + 4;
  for (size_t i = 0; i < n; ++i) {
    for (const char* rel : {"R", "S", "T"}) {
      preload.push_back(Event::Insert(
          rel, {Value(rng.Range(0, domain)), Value(rng.Range(0, domain))}));
    }
  }
  std::vector<Event> probe;
  for (int i = 0; i < 200; ++i) {
    probe.push_back(Event::Insert(
        i % 3 == 0   ? "R"
        : i % 3 == 1 ? "S"
                     : "T",
        {Value(rng.Range(0, domain)), Value(rng.Range(0, domain))}));
  }

  auto measure = [&](auto&& on_event) {
    double t0 = NowSeconds();
    for (const Event& ev : probe) on_event(ev);
    return (NowSeconds() - t0) / static_cast<double>(probe.size()) * 1e6;
  };

  double reeval_us, ivm1_us, toaster_us;
  {
    baseline::ReevalEngine e(cat, /*eager=*/true);
    (void)e.AddQuery("q", kQuery);
    baseline::ReevalEngine* ep = &e;
    // preload without re-evaluation cost in the measurement
    baseline::ReevalEngine lazy(cat, false);
    for (const Event& ev : preload) (void)e.database().Apply(ev);
    (void)lazy;
    reeval_us = measure([&](const Event& ev) { (void)ep->OnEvent(ev); });
  }
  {
    baseline::Ivm1Engine e(cat);
    (void)e.AddQuery("q", kQuery);
    for (const Event& ev : preload) (void)e.OnEvent(ev);
    ivm1_us = measure([&](const Event& ev) { (void)e.OnEvent(ev); });
  }
  {
    auto program = compiler::CompileQuery(cat, "q", kQuery);
    runtime::Engine e(std::move(program).value());
    for (const Event& ev : preload) (void)e.OnEvent(ev);
    toaster_us = measure([&](const Event& ev) { (void)e.OnEvent(ev); });
  }
  std::printf("%10zu %16.1f %16.2f %16.2f\n", n, reeval_us, ivm1_us,
              toaster_us);
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  std::printf("== per-event latency vs database size (Fig2 query) ==\n");
  std::printf("%10s %16s %16s %16s\n", "|rel|", "reeval us/ev",
              "ivm1 us/ev", "toaster-i us/ev");
  for (size_t n : {100u, 400u, 1600u, 6400u}) {
    dbtoaster::bench::RunAtSize(n);
  }
  std::printf(
      "\nshape check: reeval grows superlinearly with |DB|; toaster stays "
      "flat.\n");
  return 0;
}
