// §4.2 profiling: "detailed profiling of DBToaster's compiled code breaking
// down its overheads for each map" — the runtime profiler's per-statement
// execution counts, update volumes and time shares on the finance workload.
#include "bench/bench_common.h"
#include "src/workload/orderbook.h"

namespace dbtoaster::bench {
namespace {

void Run() {
  Catalog catalog = workload::OrderBookCatalog();
  compiler::Compiler compiler(catalog);
  (void)compiler.AddQuery("vwap", workload::VwapQuery());
  (void)compiler.AddQuery("mm", workload::MarketMakerQuery());
  (void)compiler.AddQuery("best_bid", workload::BestBidQuery());
  auto program = compiler.Compile();
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return;
  }
  runtime::Engine engine(std::move(program).value());

  workload::OrderBookGenerator gen;
  std::vector<Event> events = gen.Generate(30000);
  for (const Event& ev : events) (void)engine.OnEvent(ev);

  std::printf("== per-map / per-statement overhead breakdown ==\n");
  std::printf("%s\n", engine.profile().ToString().c_str());

  std::printf("map sizes:\n");
  for (const auto& decl : engine.program().maps) {
    const auto* vm = engine.value_map(decl.name);
    const auto* em = engine.extreme_map(decl.name);
    std::printf("  %-16s %8zu entries   %s\n", decl.name.c_str(),
                vm != nullptr ? vm->size() : (em != nullptr ? em->size() : 0),
                decl.ToString().c_str());
  }
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
