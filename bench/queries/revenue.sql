-- Revenue rollup by order year (§4.2 warehouse bakeoff): the simpler
-- loading + analysis query next to SSB Q4.1. Events for the dimension
-- tables are ignored by the generated dispatcher.
-- Schemas match src/workload/tpch.cc (TpchCatalog).
create table ORDERS(ORDERKEY int, CUSTKEY int, OYEAR int);
create table LINEITEM(ORDERKEY int, PARTKEY int, SUPPKEY int,
                      QUANTITY int, EXTENDEDPRICE int, SUPPLYCOST int);

select O.OYEAR, sum(L.EXTENDEDPRICE * L.QUANTITY)
  from LINEITEM L, ORDERS O where L.ORDERKEY = O.ORDERKEY
  group by O.OYEAR;
