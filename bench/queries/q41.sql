-- SSB Q4.1 (§4.2 warehouse bakeoff): profit by order year and customer
-- nation over the 5-way data-integration join.
-- Schemas match src/workload/tpch.cc (TpchCatalog).
create table CUSTOMER(CUSTKEY int, NATION int, REGION int);
create table SUPPLIER(SUPPKEY int, NATION int, REGION int);
create table PART(PARTKEY int, MFGR int);
create table ORDERS(ORDERKEY int, CUSTKEY int, OYEAR int);
create table LINEITEM(ORDERKEY int, PARTKEY int, SUPPKEY int,
                      QUANTITY int, EXTENDEDPRICE int, SUPPLYCOST int);

select O.OYEAR, C.NATION, sum(L.EXTENDEDPRICE - L.SUPPLYCOST)
  from LINEITEM L, ORDERS O, CUSTOMER C, SUPPLIER S, PART P
  where L.ORDERKEY = O.ORDERKEY and O.CUSTKEY = C.CUSTKEY
  and L.SUPPKEY = S.SUPPKEY and L.PARTKEY = P.PARTKEY
  and C.REGION = 1 and S.REGION = 1
  and (P.MFGR = 1 or P.MFGR = 2)
  group by O.OYEAR, C.NATION;
