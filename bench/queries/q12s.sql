-- TPC-H Q12-shaped (shipping modes and order priority): IN-list over a
-- string column, CASE WHEN aggregates, EXTRACT over a date, grouped by a
-- string key.
create table ORDERS(ORDERKEY int, ORDERPRIORITY string);
create table LINEITEM(ORDERKEY int, SHIPMODE string, RECEIPTDATE date);

select L.SHIPMODE,
       sum(case when O.ORDERPRIORITY = '1-URGENT'
                  or O.ORDERPRIORITY = '2-HIGH' then 1 else 0 end)
         as HIGH_LINE_COUNT,
       sum(case when O.ORDERPRIORITY <> '1-URGENT'
                 and O.ORDERPRIORITY <> '2-HIGH' then 1 else 0 end)
         as LOW_LINE_COUNT
  from ORDERS O, LINEITEM L
  where O.ORDERKEY = L.ORDERKEY
    and L.SHIPMODE in ('MAIL', 'SHIP')
    and EXTRACT(YEAR FROM L.RECEIPTDATE) = 1994
  group by L.SHIPMODE;
