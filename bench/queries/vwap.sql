-- VWAP leg of the paper's SOBI trading strategy (§4): sum of price*volume
-- over the bids whose deeper book (orders at strictly higher prices) holds
-- less than 25% of total bid volume. Nested correlated aggregates — the
-- query class first-order IVM cannot handle.
-- Schema matches src/workload/orderbook.cc (OrderBookCatalog).
create table BIDS(ID int, BROKER_ID int, PRICE int, VOLUME int);

select sum(b1.PRICE * b1.VOLUME) from BIDS b1 where
  (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) * 4
  < (select sum(b3.VOLUME) from BIDS b3);
