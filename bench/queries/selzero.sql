-- Selectivity-extreme micro-query (0% pass): both guards are outside the
-- differential harness's seeded domains (K, V stay in 0..7), so every
-- selection pass must reject every row while the views stay byte-identical
-- across all engine paths. The IN-list expands to per-literal disjunction
-- statements (ring inclusion-exclusion), whose contradictory cross terms
-- the lowering proves statically zero.
create table T(K int, V int, D date, X double);

select T.K, sum(T.V), count(*)
  from T
  where T.K > 100 and T.V in (100, 200)
  group by T.K;
