-- Selectivity-extreme micro-query (100% pass): both comparisons cover the
-- harness's entire seeded int domain (0..7), so every row survives
-- selection and the vectorized path — including run-batched probes of the
-- double accumulator — must match the unguarded scalar replay exactly.
create table T(K int, V int, D date, X double);

select T.K, sum(T.V), sum(T.X)
  from T
  where T.K >= 0 and T.V <= 7
  group by T.K;
