-- TPC-H Q3-shaped (shipping priority): 3-way join with a string equality
-- predicate and DATE literal comparisons, grouped by order key.
create table CUSTOMER(CUSTKEY int, MKTSEGMENT string);
create table ORDERS(ORDERKEY int, CUSTKEY int, ORDERDATE date, SHIPPRIORITY int);
create table LINEITEM(ORDERKEY int, EXTENDEDPRICE double, DISCOUNT double, SHIPDATE date);

select L.ORDERKEY, sum(L.EXTENDEDPRICE * (1 - L.DISCOUNT)) as REVENUE
  from CUSTOMER C, ORDERS O, LINEITEM L
  where C.MKTSEGMENT = 'BUILDING'
    and C.CUSTKEY = O.CUSTKEY
    and L.ORDERKEY = O.ORDERKEY
    and O.ORDERDATE < DATE '1995-03-15'
    and L.SHIPDATE > DATE '1995-03-15'
  group by L.ORDERKEY;
