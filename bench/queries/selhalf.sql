-- Selectivity-extreme micro-query (~50% pass): a date-range guard covering
-- roughly half of the harness's seeded date domain (1993-06-01 ..
-- 1995-06-30). Grouping by K exercises sorted key-run batching for both an
-- integer and a double accumulator under a partially-selective vector.
create table T(K int, V int, D date, X double);

select T.K, sum(T.X), count(*)
  from T
  where T.D >= DATE '1994-01-01'
    and T.D < DATE '1994-01-01' + INTERVAL '1' YEAR
  group by T.K;
