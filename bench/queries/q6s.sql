-- TPC-H Q6-shaped (forecasting revenue change): global aggregate under a
-- DATE range built with INTERVAL arithmetic, BETWEEN, and a numeric band.
create table LINEITEM(ORDERKEY int, QUANTITY int, EXTENDEDPRICE double,
                      DISCOUNT double, SHIPDATE date);

select sum(L.EXTENDEDPRICE * L.DISCOUNT) as REVENUE
  from LINEITEM L
  where L.SHIPDATE >= DATE '1994-01-01'
    and L.SHIPDATE < DATE '1994-01-01' + INTERVAL '1' YEAR
    and L.DISCOUNT between 0.05 and 0.07
    and L.QUANTITY < 24;
