-- TPC-H Q13-shaped (customer distribution): LEFT OUTER JOIN with a NOT LIKE
-- predicate inside the ON clause, COUNT(*) counting unmatched customers,
-- and a HAVING guard over the materialized group map.
create table CUSTOMER(CUSTKEY int, NATIONKEY int);
create table ORDERS(ORDERKEY int, CUSTKEY int, COMMENT string);

select C.NATIONKEY, count(*) as CUSTDIST
  from CUSTOMER C
  left outer join ORDERS O
    on C.CUSTKEY = O.CUSTKEY
   and O.COMMENT not like '%special%requests%'
  group by C.NATIONKEY
  having count(*) > 2;
