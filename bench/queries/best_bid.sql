-- Best bid (§4): running maximum bid price.
-- Schema matches src/workload/orderbook.cc (OrderBookCatalog).
create table BIDS(ID int, BROKER_ID int, PRICE int, VOLUME int);

select max(PRICE) from BIDS;
