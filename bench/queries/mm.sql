-- Market-maker detection (§4): per-broker imbalance between ask and bid
-- volume, joined on broker.
-- Schema matches src/workload/orderbook.cc (OrderBookCatalog).
create table BIDS(ID int, BROKER_ID int, PRICE int, VOLUME int);
create table ASKS(ID int, BROKER_ID int, PRICE int, VOLUME int);

select b.BROKER_ID, sum(a.VOLUME - b.VOLUME)
  from BIDS b, ASKS a where b.BROKER_ID = a.BROKER_ID
  group by b.BROKER_ID;
