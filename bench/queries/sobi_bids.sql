-- SOBI bid-side leg (§4): running notional and volume totals over BIDS.
-- Schema matches src/workload/orderbook.cc (OrderBookCatalog).
create table BIDS(ID int, BROKER_ID int, PRICE int, VOLUME int);

select sum(PRICE * VOLUME), sum(VOLUME) from BIDS;
