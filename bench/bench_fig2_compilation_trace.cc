// Figure 2 reproduction: prints the recursive compilation table for the
// paper's running example `select sum(A*D) from R, S, T where R.B = S.B and
// S.C = T.C` — the query being compiled at each (level, event), the
// generated delta code, the maps it uses, and their definitions.
#include <cstdio>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"

int main() {
  using namespace dbtoaster;
  Catalog catalog;
  (void)catalog.AddRelation(
      Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)catalog.AddRelation(
      Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));

  auto program = compiler::CompileQuery(
      catalog, "q",
      "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 2: recursive compilation of sum(A*D) over R,S,T ==\n\n");
  std::printf("%s\n", program.value().TraceTable().c_str());
  std::printf("map correspondence with the paper:\n"
              "  q  = q        m1 = qD[b]     m2 = qA[b]\n"
              "  m3 = qD[c]    m4 = qA[c]     m5 = q1[b,c]\n\n");
  std::printf("%s\n", program.value().ToString().c_str());
  return 0;
}
