// §4.2 memory usage: "the memory consumption of our main-memory techniques
// is sufficiently low to support applications such as data warehouse
// loading". State bytes per engine as the loading stream grows: DBToaster
// retains aggregate maps (size ~ #groups), re-evaluation retains full base
// tables, IVM-1 retains base tables + indexes.
//
// After the replay the bench also runs a snapshot/restore cycle on every
// engine and gates on state no-inflation: a restored engine must answer the
// same view from (at most marginally) the same footprint as the engine that
// never crashed — a recovery that balloons memory is a regression even if
// the views match. Non-zero exit on violation, so CI runs this directly.
// Machine-readable results land in BENCH_memory.json.
#include <cstring>
#include <fstream>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/checkpoint.h"
#include "src/workload/tpch.h"

namespace dbtoaster::bench {
namespace {

struct MemCell {
  std::string engine;
  size_t events = 0;
  size_t state_bytes = 0;
  size_t restored_bytes = 0;  // 0 until the restore cycle runs
};

std::vector<MemCell> g_cells;

/// Snapshot `engine`, restore into `fresh`, and gate: views must stay
/// available and the restored footprint must not inflate past the live one
/// (1.5x + 64 KiB slack — allocation history differs, exact equality is not
/// required and not claimed). Returns false on violation.
bool RestoreGate(runtime::StreamEngine* engine, runtime::StreamEngine* fresh,
                 size_t events) {
  dbt::Ser snapshot;
  Status st = engine->SaveState(&snapshot);
  if (!st.ok()) {
    std::fprintf(stderr, "[%s] SaveState: %s\n", engine->Name().c_str(),
                 st.ToString().c_str());
    return false;
  }
  dbt::Deser in(snapshot.data());
  st = fresh->LoadState(&in);
  if (!st.ok()) {
    std::fprintf(stderr, "[%s] LoadState: %s\n", engine->Name().c_str(),
                 st.ToString().c_str());
    return false;
  }
  const size_t live = engine->StateBytes();
  const size_t restored = fresh->StateBytes();
  g_cells.push_back({engine->Name(), events, live, restored});
  std::printf("%12s %14.1f %16.1f %18.1f\n", engine->Name().c_str(),
              snapshot.size() / 1024.0, live / 1024.0, restored / 1024.0);
  if (restored > live + live / 2 + 64 * 1024) {
    std::fprintf(stderr,
                 "[%s] restored state inflated: %zu bytes restored vs %zu "
                 "live (limit 1.5x + 64KiB)\n",
                 engine->Name().c_str(), restored, live);
    return false;
  }
  return true;
}

bool Run(bool quick) {
  Catalog catalog = workload::TpchCatalog();
  const std::string query = workload::RevenueByYearQuery();
  workload::TpchGenerator gen;
  std::vector<Event> events = gen.Generate(quick ? 20000 : 120000);

  baseline::ReevalEngine reeval(catalog, /*eager=*/false);  // storage only
  (void)reeval.AddQuery("q", query);
  baseline::Ivm1Engine ivm1(catalog);
  (void)ivm1.AddQuery("q", query);
  auto program = compiler::CompileQuery(catalog, "q", query);
  runtime::Engine toaster(std::move(program).value());

  std::printf("== retained state vs stream length (revenue query) ==\n");
  std::printf("%10s %16s %16s %20s %18s\n", "events", "reeval KiB",
              "ivm1 KiB", "toaster maps KiB", "toaster entries");
  size_t checkpoints[] = {events.size() / 8, events.size() / 4,
                          events.size() / 2, events.size()};
  size_t next_cp = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    (void)reeval.OnEvent(events[i]);
    (void)ivm1.OnEvent(events[i]);
    (void)toaster.OnEvent(events[i]);
    if (next_cp < 4 && i + 1 == checkpoints[next_cp]) {
      std::printf("%10zu %16.1f %16.1f %20.1f %18zu\n", i + 1,
                  reeval.StateBytes() / 1024.0, ivm1.StateBytes() / 1024.0,
                  toaster.MapMemoryBytes() / 1024.0,
                  toaster.TotalMapEntries());
      g_cells.push_back({"reeval", i + 1, reeval.StateBytes(), 0});
      g_cells.push_back({"ivm1", i + 1, ivm1.StateBytes(), 0});
      g_cells.push_back({"toaster-i", i + 1, toaster.StateBytes(), 0});
      ++next_cp;
    }
  }
  std::printf(
      "\nshape check: toaster's map footprint tracks the number of groups "
      "and\ndistinct join keys, far below the full base tables the "
      "interpreter\nclasses must retain. (DBToaster also keeps the base "
      "snapshot when the\nquery needs init-on-access; the revenue query does "
      "not.)\n");

  // Snapshot/restore each engine after the full replay and gate on state
  // no-inflation.
  std::printf("\n== snapshot/restore after replay ==\n");
  std::printf("%12s %14s %16s %18s\n", "engine", "snapshot KiB", "live KiB",
              "restored KiB");
  bool ok = true;
  {
    baseline::ReevalEngine fresh(catalog, /*eager=*/false);
    (void)fresh.AddQuery("q", query);
    ok = RestoreGate(&reeval, &fresh, events.size()) && ok;
  }
  {
    baseline::Ivm1Engine fresh(catalog);
    (void)fresh.AddQuery("q", query);
    ok = RestoreGate(&ivm1, &fresh, events.size()) && ok;
  }
  {
    auto fresh_program = compiler::CompileQuery(catalog, "q", query);
    runtime::Engine fresh(std::move(fresh_program).value());
    ok = RestoreGate(&toaster, &fresh, events.size()) && ok;
    if (fresh.TotalMapEntries() != toaster.TotalMapEntries()) {
      std::fprintf(stderr,
                   "toaster-i restored map entries %zu != live %zu\n",
                   fresh.TotalMapEntries(), toaster.TotalMapEntries());
      ok = false;
    }
  }
  return ok;
}

bool WriteJson(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  f << "[\n";
  for (size_t i = 0; i < g_cells.size(); ++i) {
    const MemCell& c = g_cells[i];
    f << "  {\"engine\": \"" << c.engine << "\", \"events\": " << c.events
      << ", \"state_bytes\": " << c.state_bytes
      << ", \"restored_bytes\": " << c.restored_bytes << "}"
      << (i + 1 < g_cells.size() ? "," : "") << "\n";
  }
  f << "]\n";
  f.flush();
  if (!f) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("\nwrote %s (%zu cells)\n", path.c_str(), g_cells.size());
  return true;
}

}  // namespace
}  // namespace dbtoaster::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_memory.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  bool ok = dbtoaster::bench::Run(quick);
  ok = dbtoaster::bench::WriteJson(out_path) && ok;
  return ok ? 0 : 1;
}
