// §4.2 memory usage: "the memory consumption of our main-memory techniques
// is sufficiently low to support applications such as data warehouse
// loading". State bytes per engine as the loading stream grows: DBToaster
// retains aggregate maps (size ~ #groups), re-evaluation retains full base
// tables, IVM-1 retains base tables + indexes.
#include "bench/bench_common.h"
#include "src/workload/tpch.h"

namespace dbtoaster::bench {
namespace {

void Run() {
  Catalog catalog = workload::TpchCatalog();
  const std::string query = workload::RevenueByYearQuery();
  workload::TpchGenerator gen;
  std::vector<Event> events = gen.Generate(120000);

  baseline::ReevalEngine reeval(catalog, /*eager=*/false);  // storage only
  (void)reeval.AddQuery("q", query);
  baseline::Ivm1Engine ivm1(catalog);
  (void)ivm1.AddQuery("q", query);
  auto program = compiler::CompileQuery(catalog, "q", query);
  runtime::Engine toaster(std::move(program).value());

  std::printf("== retained state vs stream length (revenue query) ==\n");
  std::printf("%10s %16s %16s %20s %18s\n", "events", "reeval KiB",
              "ivm1 KiB", "toaster maps KiB", "toaster entries");
  size_t checkpoints[] = {events.size() / 8, events.size() / 4,
                          events.size() / 2, events.size()};
  size_t next_cp = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    (void)reeval.OnEvent(events[i]);
    (void)ivm1.OnEvent(events[i]);
    (void)toaster.OnEvent(events[i]);
    if (next_cp < 4 && i + 1 == checkpoints[next_cp]) {
      std::printf("%10zu %16.1f %16.1f %20.1f %18zu\n", i + 1,
                  reeval.StateBytes() / 1024.0, ivm1.StateBytes() / 1024.0,
                  toaster.MapMemoryBytes() / 1024.0,
                  toaster.TotalMapEntries());
      ++next_cp;
    }
  }
  std::printf(
      "\nshape check: toaster's map footprint tracks the number of groups "
      "and\ndistinct join keys, far below the full base tables the "
      "interpreter\nclasses must retain. (DBToaster also keeps the base "
      "snapshot when the\nquery needs init-on-access; the revenue query does "
      "not.)\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
