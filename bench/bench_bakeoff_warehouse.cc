// §4.2 bakeoff, data-warehouse loading application.
//
// Reproduces the paper's combined loading + analysis experiment: the TPC-H-
// shaped update stream flows through SSB Q4.1 (the data-integration 5-way
// join and the aggregation compiled together) and a simpler revenue rollup,
// across the four engine architectures — all behind the unified
// StreamEngine API.
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "bench/gen/q41.hpp"
#include "bench/gen/revenue.hpp"
#include "src/workload/tpch.h"

namespace dbtoaster::bench {
namespace {

void Run() {
  Catalog catalog = workload::TpchCatalog();
  workload::TpchGenerator gen;
  std::vector<Event> events = gen.Generate(400000);
  const double kBudget = 2.0;

  struct QuerySpec {
    std::string name;
    std::string sql;
    std::function<std::unique_ptr<dbt::StreamProgram>()> compiled;
  };
  std::vector<QuerySpec> queries = {
      {"ssb_q41", workload::SsbQ41Query(),
       [] { return std::make_unique<dbtoaster_gen::q41_Program>(); }},
      {"revenue", workload::RevenueByYearQuery(),
       [] { return std::make_unique<dbtoaster_gen::revenue_Program>(); }},
  };

  PrintHeader("warehouse bakeoff (TPC-H -> SSB loading stream)");
  for (const QuerySpec& q : queries) {
    std::unique_ptr<dbt::StreamProgram> program = q.compiled();
    for (BakeoffEntry& entry :
         MakeBakeoffEngines(catalog, q.sql, program.get())) {
      RunResult r{.engine = entry.name, .query = q.name};
      if (entry.engine != nullptr) {
        auto [n, s] = TimedEngineRun(events, kBudget, entry.engine.get());
        r.events = n;
        r.seconds = s;
        r.state_bytes = entry.engine->StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
  }
  std::printf(
      "\nshape check: compiling integration+aggregation together lets the\n"
      "toaster engines sustain loading rates the interpreter classes "
      "cannot.\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
