// §4.2 bakeoff, data-warehouse loading application.
//
// Reproduces the paper's combined loading + analysis experiment: the TPC-H-
// shaped update stream flows through SSB Q4.1 (the data-integration 5-way
// join and the aggregation compiled together) and a simpler revenue rollup,
// across the four engine architectures.
#include "bench/bench_common.h"
#include "bench/gen/q41.hpp"
#include "bench/gen/revenue.hpp"
#include "src/workload/tpch.h"

namespace dbtoaster::bench {
namespace {

void Run() {
  Catalog catalog = workload::TpchCatalog();
  workload::TpchGenerator gen;
  std::vector<Event> events = gen.Generate(400000);
  const double kBudget = 2.0;

  struct QuerySpec {
    std::string name;
    std::string sql;
    std::function<std::pair<size_t, double>(const std::vector<Event>&,
                                            double)>
        compiled_run;
  };
  std::vector<QuerySpec> queries = {
      {"ssb_q41", workload::SsbQ41Query(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::q41_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
      {"revenue", workload::RevenueByYearQuery(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::revenue_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
  };

  PrintHeader("warehouse bakeoff (TPC-H -> SSB loading stream)");
  for (const QuerySpec& q : queries) {
    {
      baseline::ReevalEngine engine(catalog, /*eager=*/true);
      RunResult r{.engine = "reeval", .query = q.name};
      if (engine.AddQuery("q", q.sql).ok()) {
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    {
      baseline::Ivm1Engine engine(catalog);
      RunResult r{.engine = "ivm1", .query = q.name};
      if (engine.AddQuery("q", q.sql).ok()) {
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    {
      auto program = compiler::CompileQuery(catalog, "q", q.sql);
      RunResult r{.engine = "toaster-i", .query = q.name};
      if (program.ok()) {
        runtime::Engine engine(std::move(program).value());
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.MapMemoryBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    {
      RunResult r{.engine = "toaster-c", .query = q.name};
      auto [n, s] = q.compiled_run(events, kBudget);
      r.events = n;
      r.seconds = s;
      PrintRow(r);
    }
  }
  std::printf(
      "\nshape check: compiling integration+aggregation together lets the\n"
      "toaster engines sustain loading rates the interpreter classes "
      "cannot.\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
