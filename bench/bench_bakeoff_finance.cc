// §4.2 bakeoff, financial application (order book trading).
//
// Reproduces the paper's DBMS-bakeoff table for the finance queries: tuple
// throughput per engine on the synthetic TotalView-style order-book stream.
//   reeval    — full re-evaluation per delta (PostgreSQL / HSQLDB / DBMS 'A'
//               architecture class)
//   ivm1      — first-order IVM with indexed delta queries (STREAM /
//               commercial stream processor 'B' class)
//   toaster-i — DBToaster's recursive compilation, trigger interpreter
//   toaster-c — DBToaster's generated C++ (dbtc, compiled into this binary)
//
// All four run behind the unified StreamEngine API (the compiled programs
// through the dbt::StreamProgram string-dispatch shim).
//
// Expected shape (the paper claims 1–3 orders of magnitude): toaster-c >>
// toaster-i > ivm1 >> reeval; VWAP is n/a for ivm1 (nested aggregates) and
// reeval collapses on it.
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "bench/gen/vwap.hpp"
#include "bench/gen/sobi_bids.hpp"
#include "bench/gen/mm.hpp"
#include "bench/gen/best_bid.hpp"
#include "src/workload/orderbook.h"

namespace dbtoaster::bench {
namespace {

struct QuerySpec {
  std::string name;
  std::string sql;
  std::function<std::unique_ptr<dbt::StreamProgram>()> compiled;
};

void Run() {
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookGenerator gen;
  std::vector<Event> events = gen.Generate(400000);
  const double kBudget = 2.0;  // seconds per (engine, query) cell

  std::vector<QuerySpec> queries = {
      {"vwap", workload::VwapQuery(),
       [] { return std::make_unique<dbtoaster_gen::vwap_Program>(); }},
      {"sobi_bids", workload::SobiBidLeg(),
       [] { return std::make_unique<dbtoaster_gen::sobi_bids_Program>(); }},
      {"market_maker", workload::MarketMakerQuery(),
       [] { return std::make_unique<dbtoaster_gen::mm_Program>(); }},
      {"best_bid", workload::BestBidQuery(),
       [] { return std::make_unique<dbtoaster_gen::best_bid_Program>(); }},
  };

  PrintHeader("finance bakeoff (order book stream)");
  for (const QuerySpec& q : queries) {
    std::unique_ptr<dbt::StreamProgram> program = q.compiled();
    for (BakeoffEntry& entry :
         MakeBakeoffEngines(catalog, q.sql, program.get())) {
      RunResult r{.engine = entry.name, .query = q.name};
      if (entry.engine != nullptr) {
        auto [n, s] = TimedEngineRun(events, kBudget, entry.engine.get());
        r.events = n;
        r.seconds = s;
        r.state_bytes = entry.engine->StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
  }
  std::printf(
      "\nshape check: expect toaster-c >> toaster-i > ivm1 >> reeval;\n"
      "vwap: ivm1 n/a (nested aggregates need recursive compilation).\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
