// §4.2 bakeoff, financial application (order book trading).
//
// Reproduces the paper's DBMS-bakeoff table for the finance queries: tuple
// throughput per engine on the synthetic TotalView-style order-book stream.
//   reeval    — full re-evaluation per delta (PostgreSQL / HSQLDB / DBMS 'A'
//               architecture class)
//   ivm1      — first-order IVM with indexed delta queries (STREAM /
//               commercial stream processor 'B' class)
//   toaster-i — DBToaster's recursive compilation, trigger interpreter
//   toaster-c — DBToaster's generated C++ (dbtc, compiled into this binary)
//
// Expected shape (the paper claims 1–3 orders of magnitude): toaster-c >>
// toaster-i > ivm1 >> reeval; VWAP is n/a for ivm1 (nested aggregates) and
// reeval collapses on it.
#include "bench/bench_common.h"
#include "bench/gen/vwap.hpp"
#include "bench/gen/sobi_bids.hpp"
#include "bench/gen/mm.hpp"
#include "bench/gen/best_bid.hpp"
#include "src/workload/orderbook.h"

namespace dbtoaster::bench {
namespace {

struct QuerySpec {
  std::string name;
  std::string sql;
  std::function<std::pair<size_t, double>(const std::vector<Event>&, double)>
      compiled_run;
};

void Run() {
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookGenerator gen;
  std::vector<Event> events = gen.Generate(400000);
  const double kBudget = 2.0;  // seconds per (engine, query) cell

  std::vector<QuerySpec> queries = {
      {"vwap", workload::VwapQuery(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::vwap_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
      {"sobi_bids", workload::SobiBidLeg(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::sobi_bids_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
      {"market_maker", workload::MarketMakerQuery(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::mm_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
      {"best_bid", workload::BestBidQuery(),
       [](const std::vector<Event>& ev, double b) {
         dbtoaster_gen::best_bid_Program p;
         return TimedCompiledRun(ev, b, &p);
       }},
  };

  PrintHeader("finance bakeoff (order book stream)");
  for (const QuerySpec& q : queries) {
    // reeval
    {
      baseline::ReevalEngine engine(catalog, /*eager=*/true);
      RunResult r{.engine = "reeval", .query = q.name};
      if (engine.AddQuery("q", q.sql).ok()) {
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    // ivm1
    {
      baseline::Ivm1Engine engine(catalog);
      RunResult r{.engine = "ivm1", .query = q.name};
      if (engine.AddQuery("q", q.sql).ok()) {
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.StateBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    // toaster interpreted
    {
      auto program = compiler::CompileQuery(catalog, "q", q.sql);
      RunResult r{.engine = "toaster-i", .query = q.name};
      if (program.ok()) {
        runtime::Engine engine(std::move(program).value());
        auto [n, s] = TimedRun(events, kBudget, [&](const Event& ev) {
          (void)engine.OnEvent(ev);
        });
        r.events = n;
        r.seconds = s;
        r.state_bytes = engine.MapMemoryBytes();
      } else {
        r.supported = false;
      }
      PrintRow(r);
    }
    // toaster compiled
    {
      RunResult r{.engine = "toaster-c", .query = q.name};
      auto [n, s] = q.compiled_run(events, kBudget);
      r.events = n;
      r.seconds = s;
      PrintRow(r);
    }
  }
  std::printf(
      "\nshape check: expect toaster-c >> toaster-i > ivm1 >> reeval;\n"
      "vwap: ivm1 n/a (nested aggregates need recursive compilation).\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
