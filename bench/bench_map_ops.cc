// Micro-benchmarks of the runtime primitive that dominates compiled delta
// processing: aggregate-map point operations. Sweeps the backing container
// {std::unordered_map, std::map, dbt::FlatMap} over the kernels
// {insert, hit-lookup, miss-lookup, add-to-zero-erase} and key domains,
// prints a table, and emits machine-readable BENCH_map_ops.json so the
// perf trajectory is tracked across PRs. A few interpreted-layer
// (runtime::ValueMap, dynamic row keys) rows ride along for context.
//
// Usage: bench_map_ops [--quick] [--out <path>]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/codegen/dbt_flat_map.h"
#include "src/common/rng.h"
#include "src/runtime/value_map.h"

namespace dbtoaster::bench {
namespace {

using Key = std::tuple<int64_t>;

// Sink defeating dead-code elimination without a benchmark library.
volatile uint64_t g_sink = 0;

// ---------------------------------------------------------------------------
// Container adapters: one uniform surface (insert / find / add-with-erase)
// over the three backing stores under test.
// ---------------------------------------------------------------------------

struct FlatAdapter {
  static constexpr const char* kName = "dbt::FlatMap";
  dbt::FlatMap<Key, int64_t, dbt::TupleHash> m;

  void Insert(const Key& k, int64_t v) {
    auto [i, inserted] = m.try_emplace(k, v);
    if (!inserted) m.value_at(i) = v;
  }
  const int64_t* Find(const Key& k) const { return m.find(k); }
  void AddEraseOnZero(const Key& k, int64_t d) {
    auto [i, inserted] = m.try_emplace(k, d);
    if (inserted) return;
    int64_t& v = m.value_at(i);
    v += d;
    if (v == 0) m.erase_at(i);
  }
  size_t Size() const { return m.size(); }
};

struct UnorderedAdapter {
  static constexpr const char* kName = "std::unordered_map";
  std::unordered_map<Key, int64_t, dbt::TupleHash> m;

  void Insert(const Key& k, int64_t v) { m[k] = v; }
  const int64_t* Find(const Key& k) const {
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  }
  void AddEraseOnZero(const Key& k, int64_t d) {
    auto [it, inserted] = m.try_emplace(k, d);
    if (inserted) return;
    it->second += d;
    if (it->second == 0) m.erase(it);
  }
  size_t Size() const { return m.size(); }
};

struct OrderedAdapter {
  static constexpr const char* kName = "std::map";
  std::map<Key, int64_t> m;

  void Insert(const Key& k, int64_t v) { m[k] = v; }
  const int64_t* Find(const Key& k) const {
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  }
  void AddEraseOnZero(const Key& k, int64_t d) {
    auto [it, inserted] = m.try_emplace(k, d);
    if (inserted) return;
    it->second += d;
    if (it->second == 0) m.erase(it);
  }
  size_t Size() const { return m.size(); }
};

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct Cell {
  std::string container;
  std::string kernel;
  int64_t domain = 0;
  size_t ops = 0;
  double seconds = 0;

  double NsPerOp() const { return ops ? seconds * 1e9 / ops : 0; }
  double OpsPerSec() const { return seconds > 0 ? ops / seconds : 0; }
};

std::vector<Cell> g_cells;

void Report(const char* container, const char* kernel, int64_t domain,
            size_t ops, double seconds) {
  g_cells.push_back(Cell{container, kernel, domain, ops, seconds});
  std::printf("%-20s %-18s %8lld %12zu ops %9.1f ns/op %12.0f ops/s\n",
              container, kernel, static_cast<long long>(domain), ops,
              g_cells.back().NsPerOp(), g_cells.back().OpsPerSec());
  std::fflush(stdout);
}

template <typename Adapter>
void RunKernels(int64_t domain, size_t total_ops) {
  Rng rng(42);
  std::vector<Key> keys;
  keys.reserve(static_cast<size_t>(domain));
  for (int64_t i = 0; i < domain; ++i) keys.emplace_back(i);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }

  // insert: fill a fresh table with `domain` distinct keys, several rounds.
  {
    const size_t rounds =
        std::max<size_t>(1, total_ops / static_cast<size_t>(domain));
    double t0 = NowSeconds();
    uint64_t sink = 0;
    for (size_t r = 0; r < rounds; ++r) {
      Adapter a;
      for (const Key& k : keys) a.Insert(k, std::get<0>(k) + 1);
      sink += a.Size();
    }
    g_sink = g_sink + sink;
    Report(Adapter::kName, "insert", domain,
           rounds * static_cast<size_t>(domain), NowSeconds() - t0);
  }

  Adapter filled;
  for (const Key& k : keys) filled.Insert(k, std::get<0>(k) + 1);

  // hit-lookup / miss-lookup over the prefilled table.
  for (bool hit : {true, false}) {
    std::vector<Key> probes;
    probes.reserve(total_ops);
    for (size_t i = 0; i < total_ops; ++i) {
      int64_t k = rng.Range(0, domain - 1);
      probes.emplace_back(hit ? k : k + domain);
    }
    double t0 = NowSeconds();
    uint64_t sink = 0;
    for (const Key& k : probes) {
      const int64_t* v = filled.Find(k);
      if (v != nullptr) sink += static_cast<uint64_t>(*v);
    }
    double dt = NowSeconds() - t0;
    g_sink = g_sink + sink;
    Report(Adapter::kName, hit ? "hit-lookup" : "miss-lookup", domain,
           total_ops, dt);
  }

  // add-to-zero-erase: the trigger-update shape — +1 then -1 on the same
  // key inserts and then backward-shift-erases an entry per pair.
  {
    std::vector<Key> probes;
    probes.reserve(total_ops / 2);
    for (size_t i = 0; i < total_ops / 2; ++i) {
      probes.emplace_back(rng.Range(0, domain - 1) + 2 * domain);
    }
    double t0 = NowSeconds();
    for (const Key& k : probes) {
      filled.AddEraseOnZero(k, +1);
      filled.AddEraseOnZero(k, -1);
    }
    double dt = NowSeconds() - t0;
    g_sink = g_sink + filled.Size();
    Report(Adapter::kName, "add-to-zero-erase", domain,
           (total_ops / 2) * 2, dt);
  }
}

// Interpreted-layer context rows: dynamic Row keys through runtime::ValueMap.
void RunValueMapKernels(int64_t domain, size_t total_ops) {
  Rng rng(7);
  {
    const size_t rounds =
        std::max<size_t>(1, total_ops / static_cast<size_t>(domain));
    double t0 = NowSeconds();
    uint64_t sink = 0;
    for (size_t r = 0; r < rounds; ++r) {
      runtime::ValueMap m("m", 1, Type::kInt);
      for (int64_t i = 0; i < domain; ++i) {
        m.Set({Value(i)}, Value(i + 1));
      }
      sink += m.size();
    }
    g_sink = g_sink + sink;
    Report("runtime::ValueMap", "insert", domain,
           rounds * static_cast<size_t>(domain), NowSeconds() - t0);
  }
  {
    runtime::ValueMap m("m", 1, Type::kInt);
    for (int64_t i = 0; i < domain; ++i) m.Set({Value(i)}, Value(i + 1));
    double t0 = NowSeconds();
    uint64_t sink = 0;
    for (size_t i = 0; i < total_ops; ++i) {
      sink += static_cast<uint64_t>(
          m.Get({Value(rng.Range(0, domain - 1))}).AsInt());
    }
    double dt = NowSeconds() - t0;
    g_sink = g_sink + sink;
    Report("runtime::ValueMap", "hit-lookup", domain, total_ops, dt);
  }
}

bool WriteJson(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << "[\n";
  for (size_t i = 0; i < g_cells.size(); ++i) {
    const Cell& c = g_cells[i];
    f << "  {\"container\": \"" << c.container << "\", \"kernel\": \""
      << c.kernel << "\", \"domain\": " << c.domain
      << ", \"ops\": " << c.ops << ", \"seconds\": " << c.seconds
      << ", \"ns_per_op\": " << c.NsPerOp()
      << ", \"ops_per_sec\": " << c.OpsPerSec() << "}"
      << (i + 1 < g_cells.size() ? "," : "") << "\n";
  }
  f << "]\n";
  f.flush();
  if (!f) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu cells)\n", path.c_str(), g_cells.size());
  return true;
}

/// FlatMap-vs-unordered speedup on the kernels the acceptance bar names.
void PrintSpeedups() {
  auto find = [&](const char* cont, const char* kern,
                  int64_t domain) -> const Cell* {
    for (const Cell& c : g_cells) {
      if (c.container == cont && c.kernel == kern && c.domain == domain) {
        return &c;
      }
    }
    return nullptr;
  };
  std::printf("\nFlatMap speedup vs std::unordered_map:\n");
  for (const Cell& c : g_cells) {
    if (c.container != FlatAdapter::kName) continue;
    const Cell* base = find(UnorderedAdapter::kName, c.kernel.c_str(),
                            c.domain);
    if (base == nullptr || c.OpsPerSec() == 0) continue;
    std::printf("  %-18s %8lld : %5.2fx\n", c.kernel.c_str(),
                static_cast<long long>(c.domain),
                c.OpsPerSec() / base->OpsPerSec());
  }
}

bool Run(bool quick, const std::string& out_path) {
  const size_t total_ops = quick ? 200'000 : 4'000'000;
  const std::vector<int64_t> domains =
      quick ? std::vector<int64_t>{4096}
            : std::vector<int64_t>{64, 4096, 262144};

  std::printf("== map-ops sweep (%s) ==\n", quick ? "quick" : "full");
  std::printf("%-20s %-18s %8s %16s %15s %14s\n", "container", "kernel",
              "domain", "ops", "ns/op", "ops/s");
  for (int64_t domain : domains) {
    RunKernels<UnorderedAdapter>(domain, total_ops);
    RunKernels<OrderedAdapter>(domain, quick ? total_ops / 4 : total_ops / 2);
    RunKernels<FlatAdapter>(domain, total_ops);
    RunValueMapKernels(domain, quick ? total_ops / 4 : total_ops / 2);
  }
  PrintSpeedups();
  return WriteJson(out_path);
}

}  // namespace
}  // namespace dbtoaster::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_map_ops.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  return dbtoaster::bench::Run(quick, out_path) ? 0 : 1;
}
