// Micro-benchmarks (google-benchmark) of the runtime primitives that
// dominate compiled delta processing: aggregate-map point updates, lookups,
// slice scans, and ordered-multiset (MIN/MAX) maintenance.
#include <benchmark/benchmark.h>

#include "src/codegen/dbtoaster_runtime.h"
#include "src/common/rng.h"
#include "src/runtime/value_map.h"

namespace {

using dbtoaster::Rng;

void BM_ValueMapAdd(benchmark::State& state) {
  dbtoaster::runtime::ValueMap map("m", 1, dbtoaster::Type::kInt);
  Rng rng(1);
  const int64_t domain = state.range(0);
  for (auto _ : state) {
    map.Add({dbtoaster::Value(rng.Range(0, domain))}, dbtoaster::Value(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueMapAdd)->Arg(64)->Arg(4096)->Arg(262144);

void BM_ValueMapGet(benchmark::State& state) {
  dbtoaster::runtime::ValueMap map("m", 1, dbtoaster::Type::kInt);
  Rng rng(2);
  const int64_t domain = state.range(0);
  for (int64_t i = 0; i < domain; ++i) {
    map.Set({dbtoaster::Value(i)}, dbtoaster::Value(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.Get({dbtoaster::Value(rng.Range(0, domain - 1))}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueMapGet)->Arg(64)->Arg(4096)->Arg(262144);

// The generated code's typed tuple map vs the interpreter's dynamic rows:
// quantifies the interpretation overhead the paper eliminates.
void BM_GeneratedMapAdd(benchmark::State& state) {
  dbt::Map<std::tuple<int64_t>, int64_t> map;
  Rng rng(3);
  const int64_t domain = state.range(0);
  for (auto _ : state) {
    map.add(std::make_tuple(rng.Range(0, domain)), 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratedMapAdd)->Arg(64)->Arg(4096)->Arg(262144);

void BM_GeneratedMapGet(benchmark::State& state) {
  dbt::Map<std::tuple<int64_t>, int64_t> map;
  Rng rng(4);
  const int64_t domain = state.range(0);
  for (int64_t i = 0; i < domain; ++i) map.set(std::make_tuple(i), i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.get(std::make_tuple(rng.Range(0, domain - 1))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratedMapGet)->Arg(64)->Arg(4096)->Arg(262144);

void BM_GeneratedMapSlice(benchmark::State& state) {
  dbt::Map<std::tuple<int64_t, int64_t>, int64_t> map;
  Rng rng(5);
  const int64_t groups = state.range(0);
  for (int64_t i = 0; i < groups * 16; ++i) {
    map.set(std::make_tuple(i % groups, i), 1);
  }
  for (auto _ : state) {
    int64_t want = rng.Range(0, groups - 1);
    int64_t acc = 0;
    for (const auto& e : map.entries()) {
      if (std::get<0>(e.first) != want) continue;
      acc += e.second;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratedMapSlice)->Arg(16)->Arg(256);

void BM_ExtremeMapAddRemove(benchmark::State& state) {
  dbtoaster::runtime::ExtremeMap map("x", 0, dbtoaster::Type::kInt);
  Rng rng(6);
  for (auto _ : state) {
    dbtoaster::Value v(rng.Range(0, 100000));
    map.Add({}, v);
    if (rng.Chance(0.5)) map.Remove({}, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtremeMapAddRemove);

}  // namespace

BENCHMARK_MAIN();
