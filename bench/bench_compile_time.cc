// §4.2 profiling: "the compile time including both the C++ generation and
// the subsequent compilation to a native binary", the generated code size,
// and the number of maps/statements per query.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/bench_common.h"
#include "src/codegen/cpp_gen.h"
#include "src/workload/orderbook.h"
#include "src/workload/tpch.h"

// Where dbtoaster_runtime.h lives, for the shelled-out native compile. CMake
// supplies the real path; the fallback keeps a standalone
// `c++ bench/bench_compile_time.cc` from the repo root compiling.
#ifndef DBT_RUNTIME_INCLUDE_DIR
#define DBT_RUNTIME_INCLUDE_DIR "src/codegen"
#endif

namespace dbtoaster::bench {
namespace {

void Run() {
  struct Case {
    const char* name;
    Catalog catalog;
    std::string sql;
  };
  Catalog fig2;
  (void)fig2.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)fig2.AddRelation(Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)fig2.AddRelation(Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));

  std::vector<Case> cases;
  cases.push_back({"fig2", fig2,
                   "select sum(R.A * T.D) from R, S, T where R.B = S.B and "
                   "S.C = T.C"});
  cases.push_back({"vwap", workload::OrderBookCatalog(),
                   workload::VwapQuery()});
  cases.push_back({"market_maker", workload::OrderBookCatalog(),
                   workload::MarketMakerQuery()});
  cases.push_back({"ssb_q41", workload::TpchCatalog(),
                   workload::SsbQ41Query()});

  std::printf("== compilation cost breakdown ==\n");
  std::printf("%-14s %12s %12s %8s %8s %10s %10s %12s %12s\n", "query",
              "sql->IR us", "IR->C++ us", "maps", "stmts", "gen LoC",
              "gen bytes", "g++ ms", "binary KiB");
  for (Case& c : cases) {
    double t0 = NowSeconds();
    auto program = compiler::CompileQuery(c.catalog, "q", c.sql);
    double t1 = NowSeconds();
    if (!program.ok()) {
      std::printf("%-14s compile error: %s\n", c.name,
                  program.status().ToString().c_str());
      continue;
    }
    size_t stmts = 0;
    for (const auto& t : program.value().triggers) {
      stmts += t.statements.size();
    }
    auto code = codegen::GenerateCpp(program.value());
    double t2 = NowSeconds();
    if (!code.ok()) {
      std::printf("%-14s codegen error: %s\n", c.name,
                  code.status().ToString().c_str());
      continue;
    }
    size_t loc = 0;
    for (char ch : code.value()) loc += ch == '\n';

    // Native compilation (the paper's JIT step, done ahead of time here).
    std::string dir =
        "/tmp/dbt_compile_bench_" + std::to_string(::getpid());
    (void)system(("mkdir -p " + dir).c_str());
    {
      std::ofstream f(dir + "/gen.hpp");
      f << code.value();
      std::ofstream m(dir + "/main.cc");
      m << "#include \"gen.hpp\"\n"
           "int main() { dbtoaster_gen::Program p; (void)p; return 0; }\n";
    }
    double t3 = NowSeconds();
    std::string cmd = "c++ -std=c++20 -O2 -pthread -I" + dir + " -I" +
                      std::string(DBT_RUNTIME_INCLUDE_DIR) + " " + dir +
                      "/main.cc -o " + dir + "/gen_bin 2>/dev/null";
    int rc = system(cmd.c_str());
    double t4 = NowSeconds();
    if (rc != 0) {
      std::printf("%-14s native compile FAILED (cmd: %s)\n", c.name,
                  cmd.c_str());
      continue;
    }
    long binary_bytes = 0;
    {
      std::ifstream bin(dir + "/gen_bin", std::ios::ate | std::ios::binary);
      binary_bytes = static_cast<long>(bin.tellg());
    }
    std::printf("%-14s %12.0f %12.0f %8zu %8zu %10zu %10zu %12.0f %12.1f\n",
                c.name, (t1 - t0) * 1e6, (t2 - t1) * 1e6,
                program.value().maps.size(), stmts, loc, code.value().size(),
                (t4 - t3) * 1e3, binary_bytes / 1024.0);
  }
  std::printf(
      "\nSQL->trigger-program and C++ emission are microseconds-to-"
      "milliseconds;\nthe native compiler dominates, as the paper's "
      "compile-time profile shows.\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
