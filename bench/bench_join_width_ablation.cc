// Ablation for the recursive-compilation design choice: per-event cost as a
// function of join width (2-, 3-, 4-, 5-way chain joins).
//
// Each extra relation adds one recursion level. Re-evaluation re-joins the
// whole chain per event; first-order IVM re-joins everything but the
// updated relation; DBToaster's recursion replaces every join with
// materialised maps, so per-event cost stays a small constant number of map
// operations regardless of width (more maps exist, but each event touches
// only the affected ones).
#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/str.h"

namespace dbtoaster::bench {
namespace {

/// Chain schema A1(X0,X1), A2(X1,X2), ..., Ak(X_{k-1},X_k);
/// query: sum(A1.X0 * Ak.Xk) joined along the chain.
Catalog ChainCatalog(int width) {
  Catalog cat;
  for (int i = 1; i <= width; ++i) {
    (void)cat.AddRelation(Schema(
        StrFormat("A%d", i),
        {{StrFormat("X%d", i - 1), Type::kInt}, {StrFormat("X%d", i), Type::kInt}}));
  }
  return cat;
}

std::string ChainQuery(int width) {
  std::string sql = StrFormat("select sum(A1.X0 * A%d.X%d) from ", width,
                              width);
  for (int i = 1; i <= width; ++i) {
    if (i > 1) sql += ", ";
    sql += StrFormat("A%d", i);
  }
  sql += " where ";
  for (int i = 1; i < width; ++i) {
    if (i > 1) sql += " and ";
    sql += StrFormat("A%d.X%d = A%d.X%d", i, i, i + 1, i);
  }
  return sql;
}

void RunWidth(int width) {
  Catalog cat = ChainCatalog(width);
  std::string sql = ChainQuery(width);
  Rng rng(31);
  // Keep the chain fan-out ~2 per level so join cardinality stays bounded
  // at every width (the point is per-event cost, not blow-up).
  const size_t preload_n = 400;
  const int64_t domain = static_cast<int64_t>(preload_n) / 2;
  std::vector<Event> preload, probe;
  for (size_t i = 0; i < preload_n; ++i) {
    for (int r = 1; r <= width; ++r) {
      preload.push_back(Event::Insert(
          StrFormat("A%d", r),
          {Value(rng.Range(0, domain)), Value(rng.Range(0, domain))}));
    }
  }
  for (int i = 0; i < 100; ++i) {
    probe.push_back(Event::Insert(
        StrFormat("A%d", 1 + static_cast<int>(rng.Uniform(width))),
        {Value(rng.Range(0, domain)), Value(rng.Range(0, domain))}));
  }
  auto measure = [&](auto&& on_event) {
    double t0 = NowSeconds();
    for (const Event& ev : probe) on_event(ev);
    return (NowSeconds() - t0) / probe.size() * 1e6;
  };

  double reeval_us, ivm1_us, toaster_us;
  size_t maps = 0;
  {
    baseline::ReevalEngine e(cat, /*eager=*/true);
    (void)e.AddQuery("q", sql);
    for (const Event& ev : preload) (void)e.database().Apply(ev);
    reeval_us = measure([&](const Event& ev) { (void)e.OnEvent(ev); });
  }
  {
    baseline::Ivm1Engine e(cat);
    (void)e.AddQuery("q", sql);
    for (const Event& ev : preload) (void)e.OnEvent(ev);
    ivm1_us = measure([&](const Event& ev) { (void)e.OnEvent(ev); });
  }
  {
    auto program = compiler::CompileQuery(cat, "q", sql);
    maps = program.value().maps.size();
    runtime::Engine e(std::move(program).value());
    for (const Event& ev : preload) (void)e.OnEvent(ev);
    toaster_us = measure([&](const Event& ev) { (void)e.OnEvent(ev); });
  }
  std::printf("%6d %8zu %16.1f %16.2f %16.2f\n", width, maps, reeval_us,
              ivm1_us, toaster_us);
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  std::printf(
      "== ablation: per-event latency vs join width (chain joins) ==\n");
  std::printf("%6s %8s %16s %16s %16s\n", "width", "maps", "reeval us/ev",
              "ivm1 us/ev", "toaster-i us/ev");
  for (int w : {2, 3, 4, 5}) dbtoaster::bench::RunWidth(w);
  std::printf(
      "\nshape check: reeval cost grows with every added join; the recursive\n"
      "compiler adds maps (compile-time state) instead of run-time joins.\n");
  return 0;
}
