// §2 data-model claims, on the unified StreamEngine API.
//
// Axis 1 — update mix: relations under *arbitrary* sequences of inserts,
// updates and deletes (no window semantics). Throughput across add/modify/
// withdraw mixes of the order-book stream — deletions are first-class (sum
// has an inverse), so the rate stays flat.
//
// Axis 2 — batch size: ApplyBatch amortizes dispatch, trigger lookup and
// profiler bookkeeping over vectors of deltas. Every engine class ingests
// the same stream through the same interface at batch sizes {1, 16, 256,
// 4096}; the interpreted engine must beat its own batch=1 rate at 4096.
//
// Axis 2b — boundary layout: toaster-c ingesting the same stream through
// the columnar batch path vs the per-event row shim at batch sizes {256,
// 4096} — the cost of rows at the boundary, isolated from query cost.
//
// Axis 3 — threads: the hash-sharded parallel ApplyBatch layer. The thread
// axis {1, 2, 4, 8} crosses the batch axis; per the determinism contract
// the views are identical at every point, only the rate moves. Speedup
// needs both a shardable query (market-maker partitions on BROKER_ID) and
// batches large enough to cross the shard cutoff — batch=1 rows are the
// control that cannot parallelize.
//
// Machine-readable results land in BENCH_update_mix.json (the recorded
// perf trajectory; CI uploads it as an artifact).
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/gen/mm.hpp"
#include "bench/gen/q12s.hpp"
#include "bench/gen/q13s.hpp"
#include "bench/gen/q3s.hpp"
#include "bench/gen/q6s.hpp"
#include "src/common/rng.h"
#include "src/sql/parser.h"
#include "src/workload/orderbook.h"

namespace dbtoaster::bench {
namespace {

struct Cell {
  std::string sweep;   // "batch" | "threads" | "batch-path[-<q>]" | ...
  std::string engine;
  size_t batch = 0;
  size_t threads = 1;
  size_t events = 0;
  double seconds = 0;
  double selectivity = -1;       // predicate hit-rate axis; -1 = n/a
  uint64_t selected_rows = 0;    // rows surviving selection passes
  uint64_t probe_runs = 0;       // run-batched map commits

  double Rate() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
};

std::vector<Cell> g_cells;

void RunMixSweep(bool quick) {
  Catalog catalog = workload::OrderBookCatalog();
  std::printf("== throughput vs update mix (market-maker query) ==\n");
  std::printf("%8s %8s %8s | %14s %14s\n", "add%", "modify%", "withdraw%",
              "toaster-i ev/s", "toaster-c ev/s");
  struct Mix {
    double modify, withdraw;
  };
  for (const Mix mix : {Mix{0.0, 0.0}, Mix{0.2, 0.1}, Mix{0.25, 0.25},
                        Mix{0.2, 0.5}, Mix{0.1, 0.7}}) {
    workload::OrderBookConfig cfg;
    cfg.p_modify = mix.modify;
    cfg.p_withdraw = mix.withdraw;
    workload::OrderBookGenerator gen(cfg);
    std::vector<Event> events = gen.Generate(quick ? 20000 : 150000);

    auto program =
        compiler::CompileQuery(catalog, "q", workload::MarketMakerQuery());
    runtime::Engine interpreted(std::move(program).value());
    auto [n1, s1] = TimedEngineRun(events, quick ? 0.2 : 1.5, &interpreted);

    dbtoaster_gen::mm_Program generated;
    runtime::CompiledProgramEngine compiled(&generated);
    auto [n2, s2] = TimedEngineRun(events, quick ? 0.2 : 1.5, &compiled);

    std::printf("%8.0f %8.0f %8.0f | %14.0f %14.0f\n",
                (1.0 - mix.modify - mix.withdraw) * 100, mix.modify * 100,
                mix.withdraw * 100, n1 / s1, n2 / s2);
  }
  std::printf(
      "\nshape check: throughput is flat across mixes — deletes cost the "
      "same\nas inserts under delta processing.\n");
}

void RunBatchSweep(bool quick) {
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookConfig cfg;
  cfg.p_modify = 0.2;
  cfg.p_withdraw = 0.1;
  workload::OrderBookGenerator gen(cfg);
  std::vector<Event> events = gen.Generate(quick ? 40000 : 400000);
  const std::string sql = workload::MarketMakerQuery();
  const double kBudget = quick ? 0.15 : 1.0;  // s per (engine, batch) cell
  const size_t kBatchSizes[] = {1, 16, 256, 4096};

  std::printf(
      "\n== events/sec vs batch size (market-maker query, unified "
      "StreamEngine API) ==\n");
  std::printf("%-12s", "engine");
  for (size_t bs : kBatchSizes) std::printf(" %13s=%-4zu", "batch", bs);
  std::printf(" %10s\n", "4096/1");
  std::printf("%s\n", std::string(92, '-').c_str());

  for (const char* name : {"toaster-i", "ivm1", "reeval", "toaster-c"}) {
    std::printf("%-12s", name);
    double rate_1 = 0, rate_max = 0;
    for (size_t bs : kBatchSizes) {
      // A fresh engine per cell: state growth must not leak across cells.
      dbtoaster_gen::mm_Program generated;
      std::unique_ptr<runtime::StreamEngine> engine =
          MakeBakeoffEngine(name, catalog, sql, &generated);
      if (engine == nullptr) {
        std::printf(" %18s", "n/a");
        continue;
      }
      auto [n, s] = TimedBatchRun(events, kBudget, bs, engine.get());
      double rate = s > 0 ? static_cast<double>(n) / s : 0;
      if (bs == 1) rate_1 = rate;
      rate_max = rate;
      g_cells.push_back(Cell{"batch", name, bs, 1, n, s});
      std::printf(" %18.0f", rate);
    }
    std::printf(" %9.2fx\n", rate_1 > 0 ? rate_max / rate_1 : 0.0);
  }
  std::printf(
      "\nshape check: batching amortizes per-event dispatch; the "
      "interpreted\nengine's batch=4096 rate must beat its batch=1 rate, "
      "and reeval gains\nthe most (one view refresh per batch instead of "
      "per event).\n");
}

// Axis 2b — boundary layout: the same generated program ingesting the same
// stream, once through the columnar batch path (typed column vectors moved
// straight into the generated on_batch_<R> handlers) and once through the
// per-event row shim (tuples reassembled and re-dispatched one at a time).
// The gap is the price of rows at the boundary, isolated from query cost.
void RunBatchPathSweep(bool quick) {
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookConfig cfg;
  cfg.p_modify = 0.2;
  cfg.p_withdraw = 0.1;
  workload::OrderBookGenerator gen(cfg);
  std::vector<Event> events = gen.Generate(quick ? 40000 : 400000);
  const double kBudget = quick ? 0.15 : 1.0;  // s per (path, batch) cell
  const size_t kBatchSizes[] = {256, 4096};

  std::printf(
      "\n== events/sec: columnar batch path vs row shim (market-maker "
      "query, toaster-c) ==\n");
  std::printf("%-20s", "path");
  for (size_t bs : kBatchSizes) std::printf(" %13s=%-4zu", "batch", bs);
  std::printf("\n%s\n", std::string(58, '-').c_str());

  struct Path {
    const char* name;
    runtime::CompiledProgramEngine::BatchPath path;
  };
  const Path kPaths[] = {
      {"toaster-c-columnar", runtime::CompiledProgramEngine::BatchPath::kColumnar},
      {"toaster-c-row", runtime::CompiledProgramEngine::BatchPath::kRow},
  };
  for (const Path& p : kPaths) {
    std::printf("%-20s", p.name);
    for (size_t bs : kBatchSizes) {
      dbtoaster_gen::mm_Program generated;
      runtime::CompiledProgramEngine engine(&generated, p.name, p.path);
      auto [n, s] = TimedBatchRun(events, kBudget, bs, &engine);
      double rate = s > 0 ? static_cast<double>(n) / s : 0;
      g_cells.push_back(Cell{"batch-path", p.name, bs, 1, n, s});
      std::printf(" %18.0f", rate);
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check: the columnar path skips one tuple materialization "
      "and\nre-dispatch per event; differential_test pins the two paths "
      "to\nbyte-identical views.\n");
}

void RunThreadSweep(bool quick) {
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookConfig cfg;
  cfg.p_modify = 0.2;
  cfg.p_withdraw = 0.1;
  workload::OrderBookGenerator gen(cfg);
  std::vector<Event> events = gen.Generate(quick ? 40000 : 400000);
  const std::string sql = workload::MarketMakerQuery();
  const double kBudget = quick ? 0.1 : 0.6;  // s per (engine, batch, T) cell
  const size_t kBatchSizes[] = {1, 256, 4096};
  const size_t kThreads[] = {1, 2, 4, 8};

  std::printf(
      "\n== events/sec vs threads x batch (market-maker query, "
      "hash-sharded ApplyBatch) ==\n");
  std::printf("%-12s %-6s", "engine", "batch");
  for (size_t t : kThreads) std::printf(" %12s=%-2zu", "threads", t);
  std::printf(" %10s\n", "8t/1t");
  std::printf("%s\n", std::string(90, '-').c_str());

  for (const char* name : {"toaster-i", "ivm1", "reeval", "toaster-c"}) {
    for (size_t bs : kBatchSizes) {
      std::printf("%-12s %-6zu", name, bs);
      double rate_1 = 0, rate_last = 0;
      for (size_t threads : kThreads) {
        runtime::shard_pool().set_threads(threads);
        dbtoaster_gen::mm_Program generated;
        std::unique_ptr<runtime::StreamEngine> engine =
            MakeBakeoffEngine(name, catalog, sql, &generated);
        if (engine == nullptr) {
          std::printf(" %15s", "n/a");
          continue;
        }
        auto [n, s] = TimedBatchRun(events, kBudget, bs, engine.get());
        double rate = s > 0 ? static_cast<double>(n) / s : 0;
        if (threads == 1) rate_1 = rate;
        rate_last = rate;
        g_cells.push_back(Cell{"threads", name, bs, threads, n, s});
        std::printf(" %15.0f", rate);
      }
      std::printf(" %9.2fx\n", rate_1 > 0 ? rate_last / rate_1 : 0.0);
    }
  }
  runtime::shard_pool().set_threads(1);
  std::printf(
      "\nshape check: the sharded engines (toaster-c, and toaster-i's "
      "parallel\ndelta phase) scale with threads at batch>=256 on "
      "multi-core hosts;\nbatch=1 rows are the no-parallelism control. "
      "Views are identical at\nevery cell (tests/shard_test.cc enforces "
      "it). On a single-core host\nthe 8t/1t column records the "
      "oversubscription overhead instead.\n");
}

// ---------------------------------------------------------------------------
// Axis 4 — SQL fragment: the TPC-H-shaped queries that exercise the grown
// grammar (LEFT JOIN + HAVING + NOT LIKE, CASE WHEN + IN-lists + EXTRACT,
// DATE arithmetic, string predicates) through every engine class. The
// streams are seeded random insert/delete mixes over each query's own
// schema (deletes target live tuples).
// ---------------------------------------------------------------------------

Value FragmentValue(Rng* rng, Type type) {
  switch (type) {
    case Type::kInt:
      return Value(rng->Range(0, 63));
    case Type::kDouble: {
      static const double kPool[] = {0.04, 0.05, 0.06, 0.07, 0.10, 1.5, 20.0};
      return Value(kPool[rng->Uniform(std::size(kPool))]);
    }
    case Type::kString: {
      static const char* kPool[] = {"BUILDING",  "AUTOMOBILE",
                                    "MAIL",      "SHIP",
                                    "RAIL",      "1-URGENT",
                                    "2-HIGH",    "3-MEDIUM",
                                    "no remarks", "customer special requests"};
      return Value(std::string(kPool[rng->Uniform(std::size(kPool))]));
    }
    case Type::kDate: {
      const int64_t lo = CivilToDays(1993, 6, 1);
      const int64_t hi = CivilToDays(1995, 6, 30);
      return Value(lo + rng->Range(0, hi - lo));
    }
  }
  return Value(int64_t{0});
}

std::vector<Event> FragmentStream(const Catalog& catalog, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  std::map<std::string, std::vector<Row>> live;
  std::vector<Event> out;
  out.reserve(n);
  while (out.size() < n) {
    const std::string& rel = rels[rng.Uniform(rels.size())];
    std::vector<Row>& rows = live[rel];
    if (!rows.empty() && rng.Chance(0.3)) {
      size_t pick = rng.Uniform(rows.size());
      out.push_back(Event::Delete(rel, rows[pick]));
      rows.erase(rows.begin() + static_cast<long>(pick));
      continue;
    }
    const Schema* schema = catalog.FindRelation(rel);
    Row tuple;
    for (size_t c = 0; c < schema->num_columns(); ++c) {
      tuple.push_back(FragmentValue(&rng, schema->column_type(c)));
    }
    rows.push_back(tuple);
    out.push_back(Event::Insert(rel, std::move(tuple)));
  }
  return out;
}

std::unique_ptr<dbt::StreamProgram> FragmentProgram(const std::string& name) {
  if (name == "q3s") return std::make_unique<dbtoaster_gen::q3s_Program>();
  if (name == "q6s") return std::make_unique<dbtoaster_gen::q6s_Program>();
  if (name == "q12s") return std::make_unique<dbtoaster_gen::q12s_Program>();
  if (name == "q13s") return std::make_unique<dbtoaster_gen::q13s_Program>();
  return nullptr;
}

void RunFragmentSweep(bool quick) {
  const double kBudget = quick ? 0.1 : 0.6;  // s per (query, engine, batch)
  const size_t kBatchSizes[] = {1, 256};

  std::printf(
      "\n== events/sec on the grown SQL fragment (LEFT JOIN / HAVING / "
      "CASE / IN / LIKE / dates) ==\n");
  std::printf("%-8s %-12s", "query", "engine");
  for (size_t bs : kBatchSizes) std::printf(" %13s=%-4zu", "batch", bs);
  std::printf("\n%s\n", std::string(56, '-').c_str());

  const char* kQueries[] = {"q3s", "q6s", "q12s", "q13s"};
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    const char* name = kQueries[qi];
    const std::string path =
        std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
    std::ifstream f(path);
    if (!f.good()) {
      std::fprintf(stderr, "missing query script %s\n", path.c_str());
      continue;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    auto script = sql::ParseScript(ss.str());
    if (!script.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   script.status().ToString().c_str());
      continue;
    }
    Catalog catalog;
    for (const auto& t : script.value().tables) {
      (void)catalog.AddRelation(t);
    }
    const std::string sql = script.value().queries[0].select->ToString();
    // Seed from the query index: distinct per query, stable across
    // machines and checkout paths.
    std::vector<Event> events = FragmentStream(
        catalog, quick ? 20000 : 150000, 0xf7a9 + qi * 0x9e3779b97f4aULL);

    for (const char* engine_name :
         {"toaster-i", "ivm1", "reeval", "toaster-c"}) {
      std::printf("%-8s %-12s", name, engine_name);
      for (size_t bs : kBatchSizes) {
        std::unique_ptr<dbt::StreamProgram> generated =
            FragmentProgram(name);
        std::unique_ptr<runtime::StreamEngine> engine =
            MakeBakeoffEngine(engine_name, catalog, sql, generated.get());
        if (engine == nullptr) {
          std::printf(" %18s", "n/a");
          continue;
        }
        auto [n, s] = TimedBatchRun(events, kBudget, bs, engine.get());
        double rate = s > 0 ? static_cast<double>(n) / s : 0;
        g_cells.push_back(Cell{std::string("fragment-") + name, engine_name,
                               bs, 1, n, s});
        std::printf(" %18.0f", rate);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: the compiled engines ingest the new fragment at "
      "delta-processing\nrates; ivm1 reports n/a on LEFT JOIN (first-order "
      "deltas cannot maintain the\nunmatched branch) and reeval pays a full "
      "re-evaluation per batch.\n");
}

// Parse a checked-in bench query script into its catalog (schema only; the
// generated program supplies the maintenance logic).
bool LoadQueryCatalog(const char* name, Catalog* catalog) {
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "missing query script %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  if (!script.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 script.status().ToString().c_str());
    return false;
  }
  for (const auto& t : script.value().tables) (void)catalog->AddRelation(t);
  return true;
}

// Axis 2c — per-query boundary layout on the predicate-heavy fragment
// queries: the acceptance meter for the vectorized-selection prologue.
// Each query's generated program ingests its own seeded random stream
// through the columnar batch path and the row shim at batch {256, 4096};
// the selection counters (selected_rows / probe_runs) land in the JSON.
void RunQueryBatchPathSweep(bool quick) {
  const double kBudget = quick ? 0.1 : 0.6;  // s per (query, path, batch)
  const size_t kBatchSizes[] = {256, 4096};

  std::printf(
      "\n== events/sec: columnar vs row shim on predicate-heavy queries "
      "(toaster-c) ==\n");
  std::printf("%-8s %-20s", "query", "path");
  for (size_t bs : kBatchSizes) std::printf(" %13s=%-4zu", "batch", bs);
  std::printf("\n%s\n", std::string(66, '-').c_str());

  struct Path {
    const char* name;
    runtime::CompiledProgramEngine::BatchPath path;
  };
  const Path kPaths[] = {
      {"toaster-c-columnar",
       runtime::CompiledProgramEngine::BatchPath::kColumnar},
      {"toaster-c-row", runtime::CompiledProgramEngine::BatchPath::kRow},
  };
  const char* kQueries[] = {"q3s", "q6s", "q12s"};
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    const char* name = kQueries[qi];
    Catalog catalog;
    if (!LoadQueryCatalog(name, &catalog)) continue;
    std::vector<Event> events = FragmentStream(
        catalog, quick ? 20000 : 150000, 0x5e1ec7 + qi * 0x9e3779b97f4aULL);
    for (const Path& p : kPaths) {
      std::printf("%-8s %-20s", name, p.name);
      for (size_t bs : kBatchSizes) {
        std::unique_ptr<dbt::StreamProgram> generated = FragmentProgram(name);
        runtime::CompiledProgramEngine engine(generated.get(), p.name,
                                              p.path);
        auto [n, s] = TimedBatchRun(events, kBudget, bs, &engine);
        Cell cell{std::string("batch-path-") + name, p.name, bs, 1, n, s};
        cell.selected_rows = generated->selected_rows();
        cell.probe_runs = generated->probe_runs();
        g_cells.push_back(cell);
        std::printf(" %18.0f", s > 0 ? static_cast<double>(n) / s : 0);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: selection passes + run-batched probes widen the "
      "columnar\nlead on low-selectivity queries; both paths stay "
      "byte-identical\n(tests/differential_test.cc).\n");
}

// Axis 5 — selectivity: q6s with its shipdate guard's hit-rate dialed from
// 0%% to 100%% (the other predicates always pass). The columnar path's
// selection prologue makes skipped rows nearly free; the row shim pays the
// full per-event dispatch either way.
void RunSelectivitySweep(bool quick) {
  Catalog catalog;
  if (!LoadQueryCatalog("q6s", &catalog)) return;
  const double kBudget = quick ? 0.1 : 0.6;  // s per (path, hit-rate) cell
  const size_t kBatch = 4096;
  const double kHitRates[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  // LINEITEM(orderkey, quantity, extendedprice, discount, shipdate):
  // quantity < 24, discount in [0.05, 0.07] always hold; shipdate lands in
  // [1994-01-01, 1995-01-01) with probability `hit`.
  const int64_t in_lo = CivilToDays(1994, 1, 1);
  const int64_t in_hi = CivilToDays(1995, 1, 1);
  auto make_stream = [&](double hit) {
    Rng rng(0xbadd1ce + static_cast<uint64_t>(hit * 1000));
    std::vector<Event> out;
    const size_t n = quick ? 20000 : 150000;
    out.reserve(n);
    static const double kDisc[] = {0.05, 0.06, 0.07};
    for (size_t i = 0; i < n; ++i) {
      const int64_t date = rng.Chance(hit)
                               ? in_lo + rng.Range(0, in_hi - in_lo - 1)
                               : in_hi + rng.Range(0, 364);
      Row tuple{Value(rng.Range(0, 63)), Value(rng.Range(0, 23)),
                Value(20.0), Value(kDisc[rng.Uniform(std::size(kDisc))]),
                Value(date)};
      out.push_back(Event::Insert("LINEITEM", std::move(tuple)));
    }
    return out;
  };

  std::printf(
      "\n== events/sec vs predicate hit-rate (q6s shipdate guard, batch "
      "%zu) ==\n", kBatch);
  std::printf("%-20s", "path");
  for (double h : kHitRates) std::printf(" %11s=%-3.0f%%", "hit", h * 100);
  std::printf("\n%s\n", std::string(100, '-').c_str());

  struct Path {
    const char* name;
    runtime::CompiledProgramEngine::BatchPath path;
  };
  const Path kPaths[] = {
      {"toaster-c-columnar",
       runtime::CompiledProgramEngine::BatchPath::kColumnar},
      {"toaster-c-row", runtime::CompiledProgramEngine::BatchPath::kRow},
  };
  for (const Path& p : kPaths) {
    std::printf("%-20s", p.name);
    for (double hit : kHitRates) {
      std::vector<Event> events = make_stream(hit);
      std::unique_ptr<dbt::StreamProgram> generated = FragmentProgram("q6s");
      runtime::CompiledProgramEngine engine(generated.get(), p.name, p.path);
      auto [n, s] = TimedBatchRun(events, kBudget, kBatch, &engine);
      Cell cell{"selectivity-q6s", p.name, kBatch, 1, n, s};
      cell.selectivity = hit;
      cell.selected_rows = generated->selected_rows();
      cell.probe_runs = generated->probe_runs();
      g_cells.push_back(cell);
      std::printf(" %16.0f", s > 0 ? static_cast<double>(n) / s : 0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check: the columnar rate rises as selectivity drops "
      "(skipped rows\ncost one branch-free lane compare); selected_rows "
      "in the JSON tracks the\nhit-rate linearly.\n");
}

bool WriteJson(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << "[\n";
  for (size_t i = 0; i < g_cells.size(); ++i) {
    const Cell& c = g_cells[i];
    f << "  {\"sweep\": \"" << c.sweep << "\", \"engine\": \"" << c.engine
      << "\", \"batch\": " << c.batch << ", \"threads\": " << c.threads
      << ", \"events\": " << c.events << ", \"seconds\": " << c.seconds
      << ", \"events_per_sec\": " << c.Rate();
    if (c.selectivity >= 0) f << ", \"selectivity\": " << c.selectivity;
    f << ", \"selected_rows\": " << c.selected_rows
      << ", \"probe_runs\": " << c.probe_runs << "}"
      << (i + 1 < g_cells.size() ? "," : "") << "\n";
  }
  f << "]\n";
  f.flush();
  if (!f) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("\nwrote %s (%zu cells)\n", path.c_str(), g_cells.size());
  return true;
}

}  // namespace
}  // namespace dbtoaster::bench

int main(int argc, char** argv) {
  // --quick: small stream + tight budgets, for the CI perf-smoke step
  // (asserts the benches still build and run, not timing thresholds).
  bool quick = false;
  std::string out_path = "BENCH_update_mix.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  dbtoaster::bench::RunMixSweep(quick);
  dbtoaster::bench::RunBatchSweep(quick);
  dbtoaster::bench::RunBatchPathSweep(quick);
  dbtoaster::bench::RunThreadSweep(quick);
  dbtoaster::bench::RunFragmentSweep(quick);
  dbtoaster::bench::RunQueryBatchPathSweep(quick);
  dbtoaster::bench::RunSelectivitySweep(quick);
  return dbtoaster::bench::WriteJson(out_path) ? 0 : 1;
}
