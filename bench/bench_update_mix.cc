// §2 data-model claim: relations under *arbitrary* sequences of inserts,
// updates and deletes (no window semantics). Throughput of the compiled
// engine across add/modify/withdraw mixes of the order-book stream —
// deletions are first-class (sum has an inverse), so the rate stays flat.
#include "bench/bench_common.h"
#include "bench/gen/mm.hpp"
#include "src/workload/orderbook.h"

namespace dbtoaster::bench {
namespace {

void Run() {
  Catalog catalog = workload::OrderBookCatalog();
  std::printf("== throughput vs update mix (market-maker query) ==\n");
  std::printf("%8s %8s %8s | %14s %14s\n", "add%", "modify%", "withdraw%",
              "toaster-i ev/s", "toaster-c ev/s");
  struct Mix {
    double modify, withdraw;
  };
  for (const Mix mix : {Mix{0.0, 0.0}, Mix{0.2, 0.1}, Mix{0.25, 0.25},
                        Mix{0.2, 0.5}, Mix{0.1, 0.7}}) {
    workload::OrderBookConfig cfg;
    cfg.p_modify = mix.modify;
    cfg.p_withdraw = mix.withdraw;
    workload::OrderBookGenerator gen(cfg);
    std::vector<Event> events = gen.Generate(150000);

    auto program =
        compiler::CompileQuery(catalog, "q", workload::MarketMakerQuery());
    runtime::Engine engine(std::move(program).value());
    auto [n1, s1] = TimedRun(events, 1.5, [&](const Event& ev) {
      (void)engine.OnEvent(ev);
    });

    dbtoaster_gen::mm_Program compiled;
    auto [n2, s2] = TimedCompiledRun(events, 1.5, &compiled);

    std::printf("%8.0f %8.0f %8.0f | %14.0f %14.0f\n",
                (1.0 - mix.modify - mix.withdraw) * 100, mix.modify * 100,
                mix.withdraw * 100, n1 / s1, n2 / s2);
  }
  std::printf(
      "\nshape check: throughput is flat across mixes — deletes cost the "
      "same\nas inserts under delta processing.\n");
}

}  // namespace
}  // namespace dbtoaster::bench

int main() {
  dbtoaster::bench::Run();
  return 0;
}
