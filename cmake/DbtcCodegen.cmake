# Build-time SQL-to-C++ codegen through the freshly built dbtc compiler.
#
#   dbtc_generate(<name> <script.sql>)
#     Registers a custom command that runs
#       dbtc <script.sql> -o <build>/generated/bench/gen/<name>.hpp --name <name>_Program
#     so consumers can `#include "bench/gen/<name>.hpp"` and use
#     `dbtoaster_gen::<name>_Program`.
#
#   dbtc_codegen_finalize()
#     Call once after all dbtc_generate() calls; creates the aggregate
#     `dbtc_gen` target that drives every registered generation.
#
#   dbtc_attach_generated(<target>)
#     Makes <target> depend on the generated headers and adds the generated
#     include root plus the runtime-header dir to its include path.

set(DBT_GEN_DIR "${CMAKE_BINARY_DIR}/generated")

# Where the generated-code support header (dbtoaster_runtime.h) lives.
# Owned here so codegen consumers and the tests/benches that shell out to
# the system compiler agree on one path.
set(DBT_RUNTIME_INCLUDE_DIR "${CMAKE_SOURCE_DIR}/src/codegen")

define_property(GLOBAL PROPERTY DBT_GEN_OUTPUTS
  BRIEF_DOCS "All dbtc-generated header paths"
  FULL_DOCS "Accumulated OUTPUT paths of dbtc_generate() custom commands")
set_property(GLOBAL PROPERTY DBT_GEN_OUTPUTS "")

function(dbtc_generate name script)
  set(out "${DBT_GEN_DIR}/bench/gen/${name}.hpp")
  add_custom_command(
    OUTPUT "${out}"
    COMMAND ${CMAKE_COMMAND} -E make_directory "${DBT_GEN_DIR}/bench/gen"
    COMMAND dbtc "${CMAKE_SOURCE_DIR}/${script}" -o "${out}"
            --name "${name}_Program"
    DEPENDS dbtc "${CMAKE_SOURCE_DIR}/${script}"
    COMMENT "dbtc: ${script} -> bench/gen/${name}.hpp"
    VERBATIM)
  set_property(GLOBAL APPEND PROPERTY DBT_GEN_OUTPUTS "${out}")
endfunction()

function(dbtc_codegen_finalize)
  get_property(outputs GLOBAL PROPERTY DBT_GEN_OUTPUTS)
  add_custom_target(dbtc_gen DEPENDS ${outputs})
endfunction()

function(dbtc_attach_generated target)
  add_dependencies(${target} dbtc_gen)
  target_include_directories(${target} PRIVATE
    "${DBT_GEN_DIR}"
    "${DBT_RUNTIME_INCLUDE_DIR}")
endfunction()
