// Multi-reader view-serving driver: measures writer throughput and publish
// latency while N snapshot readers and a delta subscriber run concurrently,
// quantifying reader/writer interference on the concurrent serving tier.
//
// For each reader count the driver replays the same seeded stream through a
// fresh engine with serving enabled, spins the readers on Snapshot()
// (verifying epoch monotonicity), polls one subscriber's delta stream, and
// reports:
//
//   - writer batches/s and mean per-batch latency (ingest + publish)
//   - reader snapshot reads/s (aggregate across readers)
//   - subscriber deltas received and total delta rows
//
// The readers=0 row plus the serving-off baseline isolate the cost of the
// publish section itself. Exit status is non-zero if any reader observes a
// non-monotonic epoch or the writer fails.
//
//   serve_views [--engine=toaster-i|toaster-c] [--batches=N] [--rows=N]
//               [--readers=0,1,2,8] [--seed=S]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/gen/mm.hpp"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::EventBatch;
using runtime::StreamEngine;
using runtime::ViewSnapshot;
using runtime::ViewSubscriber;

struct ScriptCase {
  std::string name;
  Catalog catalog;
  std::string sql;
};

bool LoadScript(const std::string& name, ScriptCase* out) {
  out->name = name;
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  if (!script.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 script.status().ToString().c_str());
    return false;
  }
  for (const sql::CreateTableStmt& t : script.value().tables) {
    if (!out->catalog.AddRelation(t).ok()) return false;
  }
  if (script.value().queries.size() != 1) return false;
  out->sql = script.value().queries[0].select->ToString();
  return true;
}

/// Seeded mixed insert/delete stream; all-int mm columns, bounded key space
/// so views stay small while churn stays high.
std::vector<EventBatch> MakeStream(const Catalog& catalog, uint64_t seed,
                                   size_t num_batches, size_t rows_per_batch) {
  Rng rng(seed);
  std::map<std::string, std::vector<Row>> live;
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  std::vector<EventBatch> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    for (size_t ev = 0; ev < rows_per_batch; ++ev) {
      const std::string& rel = rels[rng.Uniform(rels.size())];
      std::vector<Row>& rows = live[rel];
      if (!rows.empty() && rng.Chance(0.35)) {
        size_t pick = rng.Uniform(rows.size());
        Row victim = rows[pick];
        rows.erase(rows.begin() + static_cast<long>(pick));
        batches[b].AddDelete(rel, victim);
      } else {
        const Schema* schema = catalog.FindRelation(rel);
        Row tuple;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          tuple.push_back(Value(rng.Range(0, 63)));
        }
        rows.push_back(tuple);
        batches[b].AddInsert(rel, tuple);
      }
    }
  }
  return batches;
}

EventBatch CopyBatch(const EventBatch& src) {
  EventBatch out;
  for (const EventBatch::Group& g : src.groups()) {
    for (size_t i = 0; i < g.rows; ++i) out.Add(g.kind, g.relation, g.RowAt(i));
  }
  return out;
}

struct EngineInstance {
  std::unique_ptr<dbt::StreamProgram> program;
  std::unique_ptr<StreamEngine> engine;
  std::string view;
};

bool MakeEngine(const std::string& kind, const ScriptCase& sc,
                EngineInstance* out) {
  if (kind == "toaster-i") {
    auto program = compiler::CompileQuery(sc.catalog, "q", sc.sql);
    if (!program.ok()) {
      std::fprintf(stderr, "compile: %s\n",
                   program.status().ToString().c_str());
      return false;
    }
    out->engine = std::make_unique<runtime::Engine>(std::move(program).value());
    out->view = "q";
    return true;
  }
  if (kind == "toaster-c") {
    out->program = std::make_unique<dbtoaster_gen::mm_Program>();
    out->engine =
        std::make_unique<runtime::CompiledProgramEngine>(out->program.get());
    out->view = "q0";
    return true;
  }
  std::fprintf(stderr, "unknown engine kind '%s'\n", kind.c_str());
  return false;
}

struct RunResult {
  bool ok = false;
  double writer_secs = 0;
  uint64_t snapshot_reads = 0;
  uint64_t deltas = 0;
  uint64_t delta_rows = 0;
};

RunResult RunConfig(const std::string& kind, const ScriptCase& sc,
                    const std::vector<EventBatch>& stream, size_t num_readers,
                    bool serve) {
  RunResult out;
  EngineInstance inst;
  if (!MakeEngine(kind, sc, &inst)) return out;
  StreamEngine* engine = inst.engine.get();
  if (serve && !engine->EnableServing().ok()) return out;

  std::atomic<bool> done{false};
  std::atomic<bool> reader_error{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      uint64_t n = 0;
      while (!done.load(std::memory_order_acquire)) {
        ViewSnapshot snap = engine->Snapshot();
        if (!snap.valid() || snap.epoch() < last) {
          reader_error.store(true);
          break;
        }
        last = snap.epoch();
        ++n;
      }
      reads.fetch_add(n);
    });
  }

  ViewSubscriber sub;
  std::thread sub_thread;
  std::atomic<uint64_t> deltas{0}, delta_rows{0};
  if (serve) {
    auto s = engine->Subscribe();
    if (!s.ok()) {
      done.store(true);
      for (auto& t : readers) t.join();
      return out;
    }
    sub = std::move(s).value();
    sub_thread = std::thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (const auto& d : sub.Poll()) {
          deltas.fetch_add(1);
          for (const auto& v : d->views) {
            delta_rows.fetch_add(v.added.size() + v.removed.size());
          }
        }
        std::this_thread::yield();
      }
      for (const auto& d : sub.Poll()) {
        deltas.fetch_add(1);
        for (const auto& v : d->views) {
          delta_rows.fetch_add(v.added.size() + v.removed.size());
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  bool writer_ok = true;
  for (const EventBatch& b : stream) {
    if (!engine->ApplyBatch(CopyBatch(b)).ok()) {
      writer_ok = false;
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  if (sub_thread.joinable()) sub_thread.join();

  out.ok = writer_ok && !reader_error.load();
  out.writer_secs = std::chrono::duration<double>(t1 - t0).count();
  out.snapshot_reads = reads.load();
  out.deltas = deltas.load();
  out.delta_rows = delta_rows.load();
  return out;
}

int Run(int argc, char** argv) {
  std::string kind = "toaster-c";
  size_t batches = 400;
  size_t rows = 128;
  uint64_t seed = 1;
  std::vector<size_t> reader_counts = {0, 1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      kind = arg.substr(9);
    } else if (arg.rfind("--batches=", 0) == 0) {
      batches =
          static_cast<size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--rows=", 0) == 0) {
      rows = static_cast<size_t>(std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--readers=", 0) == 0) {
      reader_counts.clear();
      std::stringstream ss(arg.substr(10));
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        reader_counts.push_back(
            static_cast<size_t>(std::strtoull(tok.c_str(), nullptr, 10)));
      }
    } else {
      std::fprintf(stderr,
                   "usage: serve_views [--engine=toaster-i|toaster-c] "
                   "[--batches=N] [--rows=N] [--readers=0,1,2,8] [--seed=S]\n");
      return 2;
    }
  }

  ScriptCase sc;
  if (!LoadScript("mm", &sc)) return 2;
  const std::vector<EventBatch> stream = MakeStream(sc.catalog, seed, batches,
                                                    rows);

  std::printf("serve_views: engine=%s query=mm batches=%zu rows/batch=%zu\n",
              kind.c_str(), batches, rows);
  std::printf("%-14s %12s %12s %14s %10s %12s\n", "config", "batches/s",
              "us/batch", "snap reads/s", "deltas", "delta rows");

  bool ok = true;
  // Serving-off baseline: the pure ingest cost, no publish section.
  RunResult base = RunConfig(kind, sc, stream, 0, /*serve=*/false);
  ok = ok && base.ok;
  std::printf("%-14s %12.0f %12.1f %14s %10s %12s\n", "no-serving",
              batches / base.writer_secs,
              1e6 * base.writer_secs / static_cast<double>(batches), "-", "-",
              "-");

  for (size_t nr : reader_counts) {
    RunResult r = RunConfig(kind, sc, stream, nr, /*serve=*/true);
    ok = ok && r.ok;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu readers", nr);
    std::printf("%-14s %12.0f %12.1f %14.0f %10llu %12llu\n", label,
                batches / r.writer_secs,
                1e6 * r.writer_secs / static_cast<double>(batches),
                static_cast<double>(r.snapshot_reads) / r.writer_secs,
                static_cast<unsigned long long>(r.deltas),
                static_cast<unsigned long long>(r.delta_rows));
  }
  std::printf("-> %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dbtoaster

int main(int argc, char** argv) { return dbtoaster::Run(argc, argv); }
