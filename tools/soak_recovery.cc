// Fault-injection soak harness for the durability layer.
//
// Each iteration drives one bench query on one engine class through a
// seeded mixed insert/delete stream with write-ahead batch logging and
// checkpoints at random batch boundaries, then kills the engine at a random
// boundary. With --faults the "disk" also misbehaves: the log tail is torn
// mid-record, a bit is flipped anywhere in the file, or a checkpoint write
// is killed between its tmp-file fsync and the rename (the previous
// checkpoint must survive). Recovery = restore the latest checkpoint (if
// any), replay the
// log's valid prefix exactly-once, truncate the log to that prefix, resend
// the stream from the recovered epoch, and require the final views
// byte-identical to an uninterrupted reference engine of the same class.
//
// Exit status is non-zero on any mismatch, so CI can run this directly.
//
//   soak_recovery [--iters=N] [--seed=S] [--faults=0|1] [--dir=PATH]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/gen/mm.hpp"
#include "bench/gen/q3s.hpp"
#include "bench/gen/revenue.hpp"
#include "bench/gen/vwap.hpp"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/batch_log.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::BatchLogWriter;
using runtime::EventBatch;
using runtime::StreamEngine;

struct ScriptCase {
  std::string name;
  Catalog catalog;
  std::string sql;
};

bool LoadScript(const std::string& name, ScriptCase* out) {
  out->name = name;
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  if (!script.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 script.status().ToString().c_str());
    return false;
  }
  for (const sql::CreateTableStmt& t : script.value().tables) {
    if (!out->catalog.AddRelation(t).ok()) return false;
  }
  if (script.value().queries.size() != 1) return false;
  out->sql = script.value().queries[0].select->ToString();
  return true;
}

std::unique_ptr<dbt::StreamProgram> MakeGenerated(const std::string& name) {
  if (name == "vwap") return std::make_unique<dbtoaster_gen::vwap_Program>();
  if (name == "mm") return std::make_unique<dbtoaster_gen::mm_Program>();
  if (name == "q3s") return std::make_unique<dbtoaster_gen::q3s_Program>();
  if (name == "revenue") {
    return std::make_unique<dbtoaster_gen::revenue_Program>();
  }
  return nullptr;
}

Value RandomValue(Rng* rng, Type type) {
  switch (type) {
    case Type::kInt:
      return Value(rng->Range(0, 7));
    case Type::kDouble: {
      static const double kPool[] = {0.04, 0.05, 0.06, 0.07, 0.10, 1.5, 20.0};
      return Value(kPool[rng->Uniform(std::size(kPool))]);
    }
    case Type::kString: {
      static const char* kPool[] = {"BUILDING", "AUTOMOBILE", "MAIL", "SHIP",
                                    "RAIL",     "1-URGENT",   "2-HIGH"};
      return Value(std::string(kPool[rng->Uniform(std::size(kPool))]));
    }
    case Type::kDate: {
      const int64_t lo = CivilToDays(1993, 6, 1);
      const int64_t hi = CivilToDays(1995, 6, 30);
      return Value(lo + rng->Range(0, hi - lo));
    }
  }
  return Value(int64_t{0});
}

std::vector<EventBatch> MakeStream(const Catalog& catalog, uint64_t seed,
                                   size_t num_batches) {
  Rng rng(seed);
  std::map<std::string, std::vector<Row>> live;
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  const size_t kBatchSizes[] = {1, 7, 64, 150};
  std::vector<EventBatch> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t batch_size = kBatchSizes[b % std::size(kBatchSizes)];
    for (size_t ev = 0; ev < batch_size; ++ev) {
      const std::string& rel = rels[rng.Uniform(rels.size())];
      std::vector<Row>& rows = live[rel];
      if (!rows.empty() && rng.Chance(0.35)) {
        size_t pick = rng.Uniform(rows.size());
        Row victim = rows[pick];
        rows.erase(rows.begin() + static_cast<long>(pick));
        batches[b].AddDelete(rel, victim);
      } else {
        const Schema* schema = catalog.FindRelation(rel);
        Row tuple;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          tuple.push_back(RandomValue(&rng, schema->column_type(c)));
        }
        rows.push_back(tuple);
        batches[b].AddInsert(rel, tuple);
      }
    }
  }
  return batches;
}

EventBatch CopyBatch(const EventBatch& src) {
  EventBatch out;
  for (const EventBatch::Group& g : src.groups()) {
    for (size_t i = 0; i < g.rows; ++i) out.Add(g.kind, g.relation, g.RowAt(i));
  }
  return out;
}

struct EngineInstance {
  std::unique_ptr<dbt::StreamProgram> program;
  std::unique_ptr<StreamEngine> engine;
  std::string view;
};

bool MakeEngine(const std::string& kind, const ScriptCase& sc,
                EngineInstance* out) {
  if (kind == "toaster-i") {
    auto program = compiler::CompileQuery(sc.catalog, "q", sc.sql);
    if (!program.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", sc.name.c_str(),
                   program.status().ToString().c_str());
      return false;
    }
    out->engine = std::make_unique<runtime::Engine>(std::move(program).value());
    out->view = "q";
    return true;
  }
  out->program = MakeGenerated(sc.name);
  if (out->program == nullptr) return false;
  out->engine =
      std::make_unique<runtime::CompiledProgramEngine>(out->program.get());
  out->view = "q0";
  return true;
}

bool ViewsIdentical(const exec::QueryResult& a, const exec::QueryResult& b) {
  auto as = a.SortedRows();
  auto bs = b.SortedRows();
  if (as.size() != bs.size()) return false;
  for (size_t i = 0; i < as.size(); ++i) {
    if (!(as[i].first == bs[i].first) || as[i].second != bs[i].second) {
      return false;
    }
  }
  return true;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct SoakStats {
  size_t iterations = 0;
  size_t crashes = 0;
  size_t checkpoints = 0;
  size_t ckpt_crashes = 0;
  size_t torn_tails = 0;
  size_t bit_flips = 0;
  size_t replayed = 0;
  size_t resent = 0;
  size_t failures = 0;
};

/// One kill/recover cycle. Returns false on a view mismatch or an
/// unexpected error (fault-free operations failing).
bool RunIteration(const ScriptCase& sc, const std::string& kind,
                  uint64_t seed, bool faults, const std::string& dir,
                  SoakStats* stats) {
  const std::string label = sc.name + "/" + kind;
  const std::string ckpt = dir + "/soak_" + sc.name + "_" + kind + ".ckpt";
  const std::string log = dir + "/soak_" + sc.name + "_" + kind + ".log";
  std::remove(ckpt.c_str());
  std::remove(log.c_str());

  const size_t kBatches = 12;
  std::vector<EventBatch> batches = MakeStream(sc.catalog, seed, kBatches);
  Rng rng(seed ^ 0x50a6);

  EngineInstance reference;
  EngineInstance victim;
  if (!MakeEngine(kind, sc, &reference) || !MakeEngine(kind, sc, &victim)) {
    return false;
  }
  for (size_t i = 0; i < kBatches; ++i) {
    Status st = reference.engine->ApplyBatch(CopyBatch(batches[i]));
    if (!st.ok()) {
      std::fprintf(stderr, "[%s] reference apply: %s\n", label.c_str(),
                   st.ToString().c_str());
      return false;
    }
  }

  const size_t crash_at = 1 + rng.Uniform(kBatches - 1);
  bool have_ckpt = false;
  {
    BatchLogWriter w;
    if (!w.Open(log).ok()) return false;
    w.set_sync_every(1 + rng.Uniform(4));
    for (size_t i = 0; i < crash_at; ++i) {
      if (!w.Append(i + 1, batches[i]).ok()) return false;
      if (!victim.engine->ApplyBatch(CopyBatch(batches[i])).ok()) return false;
      if (rng.Chance(0.3)) {
        // With --faults, sometimes kill the checkpoint between the tmp-file
        // fsync and the rename: the write fails, a .tmp is left behind, and
        // the previously renamed checkpoint (if any) must keep carrying the
        // recovery — the rest of the iteration proves it survives.
        if (faults && rng.Chance(0.25)) {
          runtime::SetCheckpointCrashForTesting(
              runtime::CheckpointCrashPoint::kAfterTmpFsync);
          Status st = runtime::WriteCheckpoint(ckpt, *victim.engine);
          if (st.ok()) {
            std::fprintf(stderr,
                         "[%s] injected checkpoint crash did not fire\n",
                         label.c_str());
            return false;
          }
          ++stats->ckpt_crashes;
        } else {
          Status st = runtime::WriteCheckpoint(ckpt, *victim.engine);
          if (!st.ok()) {
            std::fprintf(stderr, "[%s] checkpoint: %s\n", label.c_str(),
                         st.ToString().c_str());
            return false;
          }
          have_ckpt = true;
          ++stats->checkpoints;
        }
      }
    }
    if (!w.Sync().ok()) return false;
  }
  victim.engine.reset();
  victim.program.reset();
  ++stats->crashes;

  // Fault injection: tear the tail mid-record or flip a bit anywhere in
  // the log (a mid-file flip loses the suffix; the resend path must cover
  // it).
  if (faults) {
    std::string bytes = ReadFile(log);
    if (!bytes.empty()) {
      if (rng.Chance(0.5)) {
        const size_t cut = 1 + rng.Uniform(std::min<size_t>(16, bytes.size()));
        WriteFile(log, bytes.substr(0, bytes.size() - cut));
        ++stats->torn_tails;
      } else {
        const size_t at = rng.Uniform(bytes.size());
        bytes[at] = static_cast<char>(bytes[at] ^ (1u << rng.Uniform(8)));
        WriteFile(log, bytes);
        ++stats->bit_flips;
      }
    }
  }

  // Recover.
  EngineInstance recovered;
  if (!MakeEngine(kind, sc, &recovered)) return false;
  if (have_ckpt) {
    Status st = runtime::RestoreCheckpoint(ckpt, recovered.engine.get());
    if (!st.ok()) {
      std::fprintf(stderr, "[%s] restore: %s\n", label.c_str(),
                   st.ToString().c_str());
      ++stats->failures;
      return false;
    }
  }
  const uint64_t ckpt_epoch = recovered.engine->epoch();
  auto replay = runtime::ReplayLog(log, recovered.engine.get());
  if (!replay.ok()) {
    // A bit flip can land inside a record at or below the checkpoint epoch
    // in a way the CRC catches (scan just stops early) — replay itself must
    // still never fail.
    std::fprintf(stderr, "[%s] replay: %s\n", label.c_str(),
                 replay.status().ToString().c_str());
    ++stats->failures;
    return false;
  }
  stats->replayed += replay.value().replayed;

  // The recovered log prefix is the new WAL head: truncate the torn tail
  // off so future appends never follow garbage (exercised, then discarded).
  {
    BatchLogWriter w;
    if (!w.Open(log, static_cast<int64_t>(replay.value().valid_bytes)).ok()) {
      return false;
    }
  }

  // The upstream resends everything after the recovery epoch.
  const size_t recovered_to = static_cast<size_t>(recovered.engine->epoch());
  if (recovered_to < ckpt_epoch || recovered_to > crash_at) {
    std::fprintf(stderr, "[%s] recovered to epoch %zu outside [%zu, %zu]\n",
                 label.c_str(), recovered_to,
                 static_cast<size_t>(ckpt_epoch), crash_at);
    ++stats->failures;
    return false;
  }
  for (size_t i = recovered_to; i < kBatches; ++i) {
    if (!recovered.engine->ApplyBatch(CopyBatch(batches[i])).ok()) {
      ++stats->failures;
      return false;
    }
    ++stats->resent;
  }

  auto want = reference.engine->View(reference.view);
  auto got = recovered.engine->View(recovered.view);
  if (!want.ok() || !got.ok()) {
    ++stats->failures;
    return false;
  }
  if (!ViewsIdentical(want.value(), got.value())) {
    std::fprintf(stderr,
                 "[%s] VIEW MISMATCH after recovery (seed %llu)\n"
                 "reference:\n%s\nrecovered:\n%s\n",
                 label.c_str(), static_cast<unsigned long long>(seed),
                 want.value().ToString().c_str(),
                 got.value().ToString().c_str());
    ++stats->failures;
    return false;
  }

  std::remove(ckpt.c_str());
  std::remove((ckpt + ".tmp").c_str());
  std::remove(log.c_str());
  return true;
}

int Run(int argc, char** argv) {
  size_t iters = 25;
  uint64_t seed = 1;
  bool faults = true;
  std::string dir = "/tmp";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iters=", 0) == 0) {
      iters = static_cast<size_t>(std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults = arg.c_str()[9] != '0';
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: soak_recovery [--iters=N] [--seed=S] "
                   "[--faults=0|1] [--dir=PATH]\n");
      return 2;
    }
  }

  const char* kQueries[] = {"vwap", "mm", "q3s", "revenue"};
  const char* kKinds[] = {"toaster-i", "toaster-c"};
  std::vector<ScriptCase> cases(std::size(kQueries));
  for (size_t i = 0; i < std::size(kQueries); ++i) {
    if (!LoadScript(kQueries[i], &cases[i])) return 2;
  }

  SoakStats stats;
  bool ok = true;
  for (size_t it = 0; it < iters; ++it) {
    const ScriptCase& sc = cases[it % cases.size()];
    const std::string kind = kKinds[(it / cases.size()) % std::size(kKinds)];
    ++stats.iterations;
    if (!RunIteration(sc, kind, seed + it * 7919, faults, dir, &stats)) {
      ok = false;
    }
  }

  std::printf(
      "soak_recovery: %zu iterations, %zu crashes, %zu checkpoints "
      "(%zu ckpt crashes), %zu torn tails, %zu bit flips, %zu batches "
      "replayed, %zu resent, %zu failures -> %s\n",
      stats.iterations, stats.crashes, stats.checkpoints, stats.ckpt_crashes,
      stats.torn_tails, stats.bit_flips, stats.replayed, stats.resent,
      stats.failures, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dbtoaster

int main(int argc, char** argv) { return dbtoaster::Run(argc, argv); }
