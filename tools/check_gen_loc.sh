#!/usr/bin/env bash
# Generated-header size gate for the ten checked-in bench queries.
#
# Counts the lines of every dbtc-generated header under
# <build>/generated/bench/gen/, writes the per-query breakdown to
# <build>/BENCH_gen_loc.json, and fails unless the total stays at least
# 25% below the pre-typed-IR seed (11384 lines, when each relation carried
# separate on_insert_/on_delete_ handler clones). The sign-parameterized
# trigger bodies are what pay for this — a regression here means the
# unification in src/compiler/tir.cc stopped firing for some query.
#
# The margin was 30% when the gate only covered trigger bodies; the
# checkpoint/restore surface (save_state/load_state/relation_schemas) and
# the serving hook (publish_snapshot) have since added fixed per-program
# boilerplate that lint_gen.sh *requires*, so the gate now allows for it
# while still capping handler-body growth.
#
# Usage: tools/check_gen_loc.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN_DIR="$BUILD_DIR/generated/bench/gen"
OUT="$BUILD_DIR/BENCH_gen_loc.json"

SEED_LOC=11384
# floor(seed * 0.75): the acceptance threshold for the drop.
MAX_LOC=8538

QUERIES="vwap sobi_bids mm best_bid q41 revenue q3s q6s q12s q13s"

total=0
entries=""
for q in $QUERIES; do
  hpp="$GEN_DIR/$q.hpp"
  if [ ! -f "$hpp" ]; then
    echo "check_gen_loc: FAIL — missing generated header $hpp" >&2
    echo "check_gen_loc: build the codegen targets first (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  loc=$(wc -l < "$hpp")
  total=$((total + loc))
  if [ -n "$entries" ]; then entries="$entries, "; fi
  entries="$entries\"$q\": $loc"
done

status=ok
if [ "$total" -gt "$MAX_LOC" ]; then status=fail; fi

cat > "$OUT" <<EOF
{
  "bench": "gen_loc",
  "unit": "lines",
  "queries": { $entries },
  "total": $total,
  "seed_total": $SEED_LOC,
  "max_total": $MAX_LOC,
  "reduction_vs_seed": $(awk "BEGIN { printf \"%.3f\", 1 - $total / $SEED_LOC }"),
  "status": "$status"
}
EOF

echo "generated-header LoC: $total (seed $SEED_LOC, gate <= $MAX_LOC) -> $OUT"
if [ "$status" = fail ]; then
  echo "check_gen_loc: FAIL — total $total exceeds $MAX_LOC (needs a >=25% drop vs seed)" >&2
  exit 1
fi
