#!/usr/bin/env bash
# Generated-header lint for the checked-in bench queries.
#
# dbtc output must hold three invariants that keep the compiled backends
# honest (run in the perf-smoke CI job, after the build):
#
#   1. no std::unordered_map — every aggregate store is a dbt::FlatMap (or a
#      dbt::Sharded wrapper); falling back to the node-based container is a
#      silent 2-3x regression on the map-ops microbenchmarks.
#   2. no raw `new` — generated programs own no heap allocations directly;
#      everything lives in value-semantic stores.
#   3. per-relation handler completeness — every relation dispatched in
#      on_batch()/on_event() has both its scalar handler (on_REL) and its
#      batch handler (on_batch_REL).
#   4. selection loops are kernel-only — the selection prologue of a vec_
#      handler may call dbt::Sel* kernels but must never compare strings
#      per row (== "...", dbt::Like, strcmp); string guards go through the
#      SelStrEq/SelStrNe kernels.
#   5. vectorized statement phases iterate selection vectors — a vec_
#      handler body must never materialize g.row() or rescan the raw group
#      0..n; every row loop walks a sel*/srt* index vector.
#   6. durability surface — every generated program overrides save_state()/
#      load_state() (and publishes relation_schemas() for the ingest
#      validator), so compiled programs participate in checkpoint/restore
#      like the interpreted engines.
#   7. serving surface — every generated program overrides
#      publish_snapshot(), the one-pass rendering hook the concurrent
#      snapshot-serving tier uses to publish epoch-stamped views.
#
# Usage: tools/lint_gen.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN_DIR="$BUILD_DIR/generated/bench/gen"

QUERIES="vwap sobi_bids mm best_bid q41 revenue q3s q6s q12s q13s"
QUERIES="$QUERIES selzero selhalf selall"

fail=0
checked=0
for q in $QUERIES; do
  hpp="$GEN_DIR/$q.hpp"
  if [ ! -f "$hpp" ]; then
    echo "lint_gen: FAIL — missing generated header $hpp" >&2
    echo "lint_gen: build the codegen targets first (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  checked=$((checked + 1))

  if grep -n 'std::unordered_map' "$hpp" >&2; then
    echo "lint_gen: FAIL — $q.hpp uses std::unordered_map (expected dbt::FlatMap)" >&2
    fail=1
  fi

  # Raw `new` expressions; word-boundary keeps 'newest'/placement-free code
  # in comments from tripping it.
  if grep -nE '(^|[^[:alnum:]_])new[[:space:]]+[[:alnum:]_:<]' "$hpp" >&2; then
    echo "lint_gen: FAIL — $q.hpp contains a raw new-expression" >&2
    fail=1
  fi

  # Selection prologues (between the two region markers inside each vec_
  # handler) must route every guard through a dbt::Sel* kernel; a per-row
  # string comparison there defeats the vectorized rewrite.
  prologue=$(awk '/--- selection prologue/,/--- statement phases/' "$hpp")
  if [ -n "$prologue" ] && \
     echo "$prologue" | grep -nE '== *"|!= *"|dbt::Like|strcmp' >&2; then
    echo "lint_gen: FAIL — $q.hpp has a per-row string comparison inside a selection loop" >&2
    fail=1
  fi

  # Vectorized statement phases iterate sel*/srt* index vectors; a g.row()
  # materialization or a raw 0..n rescan inside a vec_ handler means the
  # selection vector was computed and then ignored.
  vecbody=$(awk '/void vec_/,/probe_runs_\.fetch_add/' "$hpp")
  if [ -n "$vecbody" ] && \
     echo "$vecbody" | grep -nE 'g\.row\(|for \(size_t i = 0; i < n;' >&2; then
    echo "lint_gen: FAIL — $q.hpp vec handler iterates the raw group instead of a selection vector" >&2
    fail=1
  fi

  # Handlers for every dispatched relation.
  rels=$(grep -oE 'g\.relation == "[A-Za-z0-9_]+"' "$hpp" | \
         sed 's/.*"\(.*\)"/\1/' | sort -u)
  if [ -z "$rels" ]; then
    echo "lint_gen: FAIL — $q.hpp dispatches no relations" >&2
    fail=1
  fi
  for rel in $rels; do
    if ! grep -q "void on_${rel}(" "$hpp"; then
      echo "lint_gen: FAIL — $q.hpp dispatches $rel but has no on_${rel}() handler" >&2
      fail=1
    fi
    if ! grep -q "on_batch_${rel}(" "$hpp"; then
      echo "lint_gen: FAIL — $q.hpp dispatches $rel but has no on_batch_${rel}() handler" >&2
      fail=1
    fi
  done

  # Durability surface: snapshot/restore overrides + published schemas.
  for member in "bool save_state(" "bool load_state(" "relation_schemas("; do
    if ! grep -qF "$member" "$hpp"; then
      echo "lint_gen: FAIL — $q.hpp is missing the ${member%%(*}() durability member" >&2
      fail=1
    fi
  done

  # Serving surface: the snapshot-publish hook the concurrent view-serving
  # tier renders published epochs through.
  if ! grep -qF "publish_snapshot(" "$hpp"; then
    echo "lint_gen: FAIL — $q.hpp is missing the publish_snapshot() serving hook" >&2
    fail=1
  fi
done

if [ "$checked" -eq 0 ]; then
  echo "lint_gen: FAIL — no generated headers checked" >&2
  exit 1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint_gen: FAIL" >&2
  exit 1
fi
echo "lint_gen: OK — $checked generated headers clean"
