// Durability & recovery tests: serde round-trips, checkpoint envelope
// integrity, batch-log torn-tail handling, exactly-once replay, boundary
// validation of adversarial batches, upsert normalization — and the
// randomized crash-recovery property: for every bench query and every
// engine class, kill the engine at a random batch boundary (optionally
// corrupting the log tail), recover from checkpoint + log, continue the
// stream, and require views byte-identical to an uninterrupted replay of
// the same class at every recovery point.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/gen/best_bid.hpp"
#include "bench/gen/mm.hpp"
#include "bench/gen/q12s.hpp"
#include "bench/gen/q13s.hpp"
#include "bench/gen/q3s.hpp"
#include "bench/gen/q41.hpp"
#include "bench/gen/q6s.hpp"
#include "bench/gen/revenue.hpp"
#include "bench/gen/selall.hpp"
#include "bench/gen/selhalf.hpp"
#include "bench/gen/selzero.hpp"
#include "bench/gen/sobi_bids.hpp"
#include "bench/gen/vwap.hpp"
#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/batch_log.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::BatchLogReader;
using runtime::BatchLogWriter;
using runtime::EventBatch;
using runtime::StreamEngine;

// ---------------------------------------------------------------------------
// Small helpers.
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "dbt_recovery_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool ValuesClose(const Value& a, const Value& b) {
  if (a.is_double() || b.is_double()) {
    if (!a.is_numeric() || !b.is_numeric()) return false;
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    const double diff = x > y ? x - y : y - x;
    const double mag = (x < 0 ? -x : x) + (y < 0 ? -y : y);
    return diff <= 1e-9 * (mag + 1.0);
  }
  return a == b;
}

/// Sorted view comparison. Engines whose views ARE the maintained state
/// (toaster-i, ivm1, toaster-c) must come back byte-identical (`exact`).
/// The re-evaluation baseline recomputes views by scanning its base tables,
/// and a restored hash table may scan in a different slot order than the
/// uninterrupted one — the float sums then differ in the last ulp, so its
/// aggregates are compared at ulp-level tolerance (keys stay exact).
void ExpectViewMatch(const exec::QueryResult& want,
                     const exec::QueryResult& got, const std::string& label,
                     bool exact) {
  auto ws = want.SortedRows();
  auto gs = got.SortedRows();
  ASSERT_EQ(ws.size(), gs.size())
      << label << "\nwant:\n" << want.ToString() << "got:\n" << got.ToString();
  for (size_t i = 0; i < ws.size(); ++i) {
    bool same = ws[i].second == gs[i].second;
    if (same && exact) {
      same = ws[i].first == gs[i].first;
    } else if (same) {
      same = ws[i].first.size() == gs[i].first.size();
      for (size_t c = 0; same && c < ws[i].first.size(); ++c) {
        same = ValuesClose(ws[i].first[c], gs[i].first[c]);
      }
    }
    ASSERT_TRUE(same) << label << " row " << i << " differs\nwant:\n"
                      << want.ToString() << "got:\n" << got.ToString();
  }
}

/// Byte-identical comparison (no tolerance).
void ExpectIdenticalView(const exec::QueryResult& want,
                         const exec::QueryResult& got,
                         const std::string& label) {
  ExpectViewMatch(want, got, label, /*exact=*/true);
}

std::unique_ptr<dbt::StreamProgram> MakeGenerated(const std::string& name) {
  if (name == "vwap") return std::make_unique<dbtoaster_gen::vwap_Program>();
  if (name == "sobi_bids") {
    return std::make_unique<dbtoaster_gen::sobi_bids_Program>();
  }
  if (name == "mm") return std::make_unique<dbtoaster_gen::mm_Program>();
  if (name == "best_bid") {
    return std::make_unique<dbtoaster_gen::best_bid_Program>();
  }
  if (name == "q41") return std::make_unique<dbtoaster_gen::q41_Program>();
  if (name == "revenue") {
    return std::make_unique<dbtoaster_gen::revenue_Program>();
  }
  if (name == "q3s") return std::make_unique<dbtoaster_gen::q3s_Program>();
  if (name == "q6s") return std::make_unique<dbtoaster_gen::q6s_Program>();
  if (name == "q12s") return std::make_unique<dbtoaster_gen::q12s_Program>();
  if (name == "q13s") return std::make_unique<dbtoaster_gen::q13s_Program>();
  if (name == "selzero") {
    return std::make_unique<dbtoaster_gen::selzero_Program>();
  }
  if (name == "selhalf") {
    return std::make_unique<dbtoaster_gen::selhalf_Program>();
  }
  if (name == "selall") {
    return std::make_unique<dbtoaster_gen::selall_Program>();
  }
  return nullptr;
}

struct ScriptCase {
  std::string name;
  Catalog catalog;
  std::string sql;
};

ScriptCase LoadScript(const std::string& name) {
  ScriptCase out;
  out.name = name;
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  EXPECT_TRUE(script.ok()) << path << ": " << script.status().ToString();
  for (const sql::CreateTableStmt& t : script.value().tables) {
    EXPECT_TRUE(out.catalog.AddRelation(t).ok());
  }
  EXPECT_EQ(script.value().queries.size(), 1u) << path;
  out.sql = script.value().queries[0].select->ToString();
  return out;
}

Value RandomValue(Rng* rng, Type type) {
  switch (type) {
    case Type::kInt:
      return Value(rng->Range(0, 7));
    case Type::kDouble: {
      static const double kPool[] = {0.04, 0.05, 0.06, 0.07, 0.10, 1.5, 20.0};
      return Value(kPool[rng->Uniform(std::size(kPool))]);
    }
    case Type::kString: {
      static const char* kPool[] = {"BUILDING",  "AUTOMOBILE", "MAIL",
                                    "SHIP",      "RAIL",       "1-URGENT",
                                    "2-HIGH",    "3-MEDIUM",   "no remarks",
                                    "special requests"};
      return Value(std::string(kPool[rng->Uniform(std::size(kPool))]));
    }
    case Type::kDate: {
      const int64_t lo = CivilToDays(1993, 6, 1);
      const int64_t hi = CivilToDays(1995, 6, 30);
      return Value(lo + rng->Range(0, hi - lo));
    }
  }
  return Value(int64_t{0});
}

/// Seeded mixed insert/delete stream over the catalog, pre-split into
/// batches (deletes always target live tuples).
std::vector<EventBatch> MakeStream(const Catalog& catalog, uint64_t seed,
                                   size_t num_batches) {
  Rng rng(seed);
  std::map<std::string, std::vector<Row>> live;
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  const size_t kBatchSizes[] = {1, 7, 64, 150};
  std::vector<EventBatch> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t batch_size = kBatchSizes[b % std::size(kBatchSizes)];
    for (size_t ev = 0; ev < batch_size; ++ev) {
      const std::string& rel = rels[rng.Uniform(rels.size())];
      std::vector<Row>& rows = live[rel];
      if (!rows.empty() && rng.Chance(0.35)) {
        size_t pick = rng.Uniform(rows.size());
        Row victim = rows[pick];
        rows.erase(rows.begin() + static_cast<long>(pick));
        batches[b].AddDelete(rel, victim);
      } else {
        const Schema* schema = catalog.FindRelation(rel);
        Row tuple;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          tuple.push_back(RandomValue(&rng, schema->column_type(c)));
        }
        rows.push_back(tuple);
        batches[b].AddInsert(rel, tuple);
      }
    }
  }
  return batches;
}

/// Copy of a batch (EventBatch is move-ingested; tests replay the same
/// stream into several engines).
EventBatch CopyBatch(const EventBatch& src) {
  EventBatch out;
  for (const EventBatch::Group& g : src.groups()) {
    for (size_t i = 0; i < g.rows; ++i) out.Add(g.kind, g.relation, g.RowAt(i));
  }
  return out;
}

/// One engine instance of a given class for a bench query; the generated
/// program (when any) is owned alongside the engine.
struct EngineInstance {
  std::unique_ptr<dbt::StreamProgram> program;
  std::unique_ptr<StreamEngine> engine;
  std::string view;
};

/// Build a fresh engine of `kind` for the script. Returns an empty instance
/// when the engine class legitimately rejects the query (ivm1 outside the
/// first-order fragment, asserted as kNotSupported).
EngineInstance MakeEngine(const std::string& kind, const ScriptCase& sc) {
  EngineInstance out;
  if (kind == "toaster-i") {
    auto program = compiler::CompileQuery(sc.catalog, "q", sc.sql);
    EXPECT_TRUE(program.ok()) << sc.name << ": " << program.status().ToString();
    if (!program.ok()) return out;
    out.engine = std::make_unique<runtime::Engine>(std::move(program).value());
    out.view = "q";
  } else if (kind == "reeval") {
    auto e = std::make_unique<baseline::ReevalEngine>(sc.catalog,
                                                      /*eager=*/false);
    EXPECT_TRUE(e->AddQuery("q", sc.sql).ok()) << sc.name;
    out.engine = std::move(e);
    out.view = "q";
  } else if (kind == "ivm1") {
    auto e = std::make_unique<baseline::Ivm1Engine>(sc.catalog);
    Status st = e->AddQuery("q", sc.sql);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kNotSupported)
          << sc.name << ": " << st.ToString();
      return out;  // legitimately excluded
    }
    out.engine = std::move(e);
    out.view = "q";
  } else if (kind == "toaster-c") {
    out.program = MakeGenerated(sc.name);
    EXPECT_NE(out.program, nullptr) << sc.name;
    if (out.program == nullptr) return out;
    out.engine =
        std::make_unique<runtime::CompiledProgramEngine>(out.program.get());
    out.view = "q0";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serde round-trips.
// ---------------------------------------------------------------------------

TEST(StateSerde, SerDeserRoundTrip) {
  const std::string embedded_nul("hello \0 world", 13);
  dbt::Ser s;
  s.u8(7);
  s.u32(0xdeadbeef);
  s.u64(uint64_t{1} << 60);
  s.i64(-42);
  s.f64(3.25);
  s.str(embedded_nul);

  dbt::Deser d(s.data());
  EXPECT_EQ(d.u8(), 7u);
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), uint64_t{1} << 60);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_EQ(d.f64(), 3.25);
  EXPECT_EQ(d.str(), embedded_nul);
  EXPECT_TRUE(d.done());

  // Underrun flips ok() and sticks.
  dbt::Deser short_d(s.data().data(), 3);
  (void)short_d.u64();
  EXPECT_FALSE(short_d.ok());
  EXPECT_EQ(short_d.u64(), 0u);
  EXPECT_FALSE(short_d.done());
}

TEST(StateSerde, Crc32MatchesKnownVector) {
  // IEEE 802.3 CRC of "123456789" is the classic check value.
  EXPECT_EQ(dbt::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_NE(dbt::Crc32("123456788", 9), dbt::Crc32("123456789", 9));
}

TEST(StateSerde, ValueAndRowRoundTrip) {
  Row row{Value(int64_t{-5}), Value(2.5), Value(std::string("abc")),
          Value(int64_t{0})};
  dbt::Ser s;
  runtime::WriteRow(s, row);
  dbt::Deser d(s.data());
  Row back;
  ASSERT_TRUE(runtime::ReadRow(d, &back));
  EXPECT_TRUE(d.done());
  ASSERT_EQ(back.size(), row.size());
  EXPECT_TRUE(back == row);
  EXPECT_TRUE(back[1].is_double());
  EXPECT_TRUE(back[2].is_string());

  // A malformed tag is rejected, not misread.
  dbt::Ser bad;
  bad.u64(1);
  bad.u8(9);
  dbt::Deser bd(bad.data());
  Row out;
  EXPECT_FALSE(runtime::ReadRow(bd, &out));
}

TEST(StateSerde, MapRoundTripPreservesDoubleZeroEntries) {
  dbt::Map<std::tuple<int64_t>, double> m;
  m.restore_entry(std::make_tuple(INT64_C(7)), 0.0);
  m.restore_entry(std::make_tuple(INT64_C(8)), 1.5);
  dbt::Ser s;
  m.save(s);
  dbt::Map<std::tuple<int64_t>, double> back;
  dbt::Deser d(s.data());
  ASSERT_TRUE(back.load(d));
  EXPECT_TRUE(d.done());
  EXPECT_EQ(back.size(), 2u);
  // The double-zero entry's presence in the live key set is state and must
  // survive the round trip (set() would have interpreted and erased it).
  double* slot = back.find_value(std::make_tuple(INT64_C(7)));
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(*slot, 0.0);
}

TEST(StateSerde, ExtremeMapDebtSurvivesRoundTrip) {
  dbt::ExtremeMap<std::tuple<int64_t>, int64_t> em;
  const auto key = std::make_tuple(INT64_C(1));
  // A delete reordered ahead of its insert: pure debt, zero live values.
  em.remove(key, 5);
  int64_t v = 0;
  EXPECT_FALSE(em.min(key, &v));

  dbt::Ser s;
  em.save(s);
  dbt::ExtremeMap<std::tuple<int64_t>, int64_t> back;
  dbt::Deser d(s.data());
  ASSERT_TRUE(back.load(d));
  EXPECT_TRUE(d.done());
  EXPECT_FALSE(back.min(key, &v));
  // The late-arriving insert must cancel against the restored debt, not
  // resurrect the already-retracted value.
  back.add(key, 5);
  EXPECT_FALSE(back.min(key, &v));
  back.add(key, 9);
  ASSERT_TRUE(back.min(key, &v));
  EXPECT_EQ(v, 9);
}

TEST(StateSerde, BatchSerdeRoundTrip) {
  EventBatch b;
  b.AddInsert("R", {Value(int64_t{1}), Value(2.5), Value("x")});
  b.AddInsert("R", {Value(int64_t{2}), Value(0.5), Value("y")});
  b.AddDelete("R", {Value(int64_t{1}), Value(2.5), Value("x")});
  b.AddInsert("S", {Value(int64_t{9})});

  dbt::Ser s;
  runtime::SerializeBatch(b, &s);
  dbt::Deser d(s.data());
  EventBatch back;
  ASSERT_TRUE(runtime::DeserializeBatch(&d, &back).ok());
  EXPECT_TRUE(d.done());

  ASSERT_EQ(back.groups().size(), b.groups().size());
  EXPECT_EQ(back.size(), b.size());
  for (size_t g = 0; g < b.groups().size(); ++g) {
    const EventBatch::Group& want = b.groups()[g];
    const EventBatch::Group& got = back.groups()[g];
    EXPECT_EQ(got.relation, want.relation);
    EXPECT_EQ(got.kind, want.kind);
    ASSERT_EQ(got.rows, want.rows);
    for (size_t i = 0; i < want.rows; ++i) {
      EXPECT_TRUE(got.RowAt(i) == want.RowAt(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Boundary validation (adversarial batches).
// ---------------------------------------------------------------------------

Catalog MicroCatalog() {
  Catalog c;
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable("create table R(K int, TAG string, V int)")
               .value())
          .ok());
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable("create table S(K int, W double)").value())
          .ok());
  return c;
}

std::unique_ptr<runtime::Engine> MicroEngine() {
  Catalog c = MicroCatalog();
  auto program =
      compiler::CompileQuery(c, "q", "select sum(R.V) from R where R.K > 0");
  EXPECT_TRUE(program.ok());
  return std::make_unique<runtime::Engine>(std::move(program).value());
}

TEST(IngestValidation, UnknownRelationIsNotFoundWithContext) {
  auto e = MicroEngine();
  EventBatch b;
  b.AddInsert("NO_SUCH_REL", {Value(int64_t{1})});
  Status st = e->ApplyBatch(std::move(b));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("NO_SUCH_REL"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(e->epoch(), 0u);  // rejected batches do not advance the epoch
}

TEST(IngestValidation, ArityMismatchIsInvalidArgumentWithContext) {
  auto e = MicroEngine();
  EventBatch b;
  b.AddInsert("R", {Value(int64_t{1}), Value("x")});  // R has 3 columns
  Status st = e->ApplyBatch(std::move(b));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("'R'"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("3"), std::string::npos) << st.ToString();

  Status ste = e->OnInsert("R", {Value(int64_t{1})});
  ASSERT_FALSE(ste.ok());
  EXPECT_EQ(ste.code(), StatusCode::kInvalidArgument);
}

TEST(IngestValidation, LaneTypeMismatchIsTypeErrorWithColumn) {
  auto e = MicroEngine();
  // Column 1 of R is a string; an i64 lane there is a type error.
  EventBatch b;
  b.AddInsert("R", {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  Status st = e->ApplyBatch(std::move(b));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("column 1"), std::string::npos) << st.ToString();

  // Numeric lanes are interchangeable: ints into S's double column is fine.
  Status ok = e->OnInsert("S", {Value(int64_t{1}), Value(int64_t{4})});
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(IngestValidation, CatalogRelationWithoutTriggerIsAcceptedNoOp) {
  auto e = MicroEngine();
  // S is in the catalog but the query never reads it: validated, applied to
  // the base-table snapshot, no trigger fired.
  Status st = e->OnInsert("S", {Value(int64_t{1}), Value(2.5)});
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(e->epoch(), 1u);
}

TEST(IngestValidation, CompiledProgramRejectsMalformedBatches) {
  ScriptCase sc = LoadScript("vwap");
  EngineInstance inst = MakeEngine("toaster-c", sc);
  ASSERT_NE(inst.engine, nullptr);

  EventBatch unknown;
  unknown.AddInsert("NOT_A_RELATION", {Value(int64_t{1})});
  Status st = inst.engine->ApplyBatch(std::move(unknown));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("NOT_A_RELATION"), std::string::npos);

  const Schema& first = sc.catalog.relations()[0];
  if (first.num_columns() != 1) {
    EventBatch bad_arity;
    bad_arity.AddInsert(first.name(), {Value(1.0)});
    Status st2 = inst.engine->ApplyBatch(std::move(bad_arity));
    ASSERT_FALSE(st2.ok());
    EXPECT_EQ(st2.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(inst.engine->epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Upsert / primary-key normalization.
// ---------------------------------------------------------------------------

TEST(UpsertNormalizer, DedupsReplacesAndDropsUnknownDeletes) {
  runtime::UpsertNormalizer norm;
  norm.DeclareKey("R", {0});

  EventBatch in;
  in.AddInsert("R", {Value(int64_t{1}), Value("a")});
  in.AddInsert("R", {Value(int64_t{1}), Value("a")});   // exact duplicate
  in.AddInsert("R", {Value(int64_t{2}), Value("b")});
  in.AddDelete("R", {Value(int64_t{9}), Value("zz")});  // unknown key
  EventBatch out = norm.Normalize(std::move(in));
  // Duplicate dropped, unknown delete dropped -> two net inserts.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(norm.live_rows("R"), 2u);

  // Upsert: same key, new payload -> delete(old) + insert(new).
  EventBatch upd;
  upd.AddInsert("R", {Value(int64_t{1}), Value("a2")});
  EventBatch out2 = norm.Normalize(std::move(upd));
  EXPECT_EQ(out2.size(), 2u);
  bool saw_delete_old = false, saw_insert_new = false;
  for (const EventBatch::Group& g : out2.groups()) {
    for (size_t i = 0; i < g.rows; ++i) {
      Row r = g.RowAt(i);
      if (g.kind == EventKind::kDelete && r[1] == Value("a")) {
        saw_delete_old = true;
      }
      if (g.kind == EventKind::kInsert && r[1] == Value("a2")) {
        saw_insert_new = true;
      }
    }
  }
  EXPECT_TRUE(saw_delete_old && saw_insert_new);

  // A stale delete naming the replaced image is dropped; the live one lands.
  EventBatch dels;
  dels.AddDelete("R", {Value(int64_t{1}), Value("a")});   // stale image
  dels.AddDelete("R", {Value(int64_t{1}), Value("a2")});  // live image
  EventBatch out3 = norm.Normalize(std::move(dels));
  EXPECT_EQ(out3.size(), 1u);
  EXPECT_EQ(norm.live_rows("R"), 1u);

  // Undeclared relations pass through untouched.
  EventBatch other;
  other.AddInsert("S", {Value(int64_t{5})});
  other.AddInsert("S", {Value(int64_t{5})});
  EXPECT_EQ(norm.Normalize(std::move(other)).size(), 2u);
}

TEST(UpsertNormalizer, StateRoundTripsSoRecoveryDedupsIdentically) {
  runtime::UpsertNormalizer norm;
  norm.DeclareKey("R", {0});
  EventBatch in;
  in.AddInsert("R", {Value(int64_t{1}), Value("a")});
  in.AddInsert("R", {Value(int64_t{2}), Value("b")});
  (void)norm.Normalize(std::move(in));

  dbt::Ser s;
  norm.Save(&s);
  runtime::UpsertNormalizer back;
  dbt::Deser d(s.data());
  ASSERT_TRUE(back.Load(&d).ok());
  EXPECT_TRUE(d.done());
  EXPECT_EQ(back.live_rows("R"), 2u);

  // The restored table dedups exactly where the original would have.
  EventBatch dup;
  dup.AddInsert("R", {Value(int64_t{1}), Value("a")});
  EXPECT_EQ(back.Normalize(std::move(dup)).size(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint envelope.
// ---------------------------------------------------------------------------

TEST(Checkpoint, RoundTripRestoresViewsAndEpoch) {
  auto e = MicroEngine();
  ASSERT_TRUE(
      e->OnInsert("R", {Value(int64_t{1}), Value("a"), Value(int64_t{10})})
          .ok());
  ASSERT_TRUE(
      e->OnInsert("R", {Value(int64_t{2}), Value("b"), Value(int64_t{20})})
          .ok());
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(runtime::WriteCheckpoint(path, *e).ok());

  auto meta = runtime::ReadCheckpointMeta(path);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta.value().version, runtime::kCheckpointVersion);
  EXPECT_EQ(meta.value().engine_name, "toaster-i");
  EXPECT_EQ(meta.value().epoch, 2u);

  auto restored = MicroEngine();
  ASSERT_TRUE(runtime::RestoreCheckpoint(path, restored.get()).ok());
  EXPECT_EQ(restored->epoch(), 2u);
  auto want = e->View("q");
  auto got = restored->View("q");
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectIdenticalView(want.value(), got.value(), "checkpoint roundtrip");
  EXPECT_EQ(restored->TotalMapEntries(), e->TotalMapEntries());
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptionAndTruncationAreRejected) {
  auto e = MicroEngine();
  ASSERT_TRUE(
      e->OnInsert("R", {Value(int64_t{1}), Value("a"), Value(int64_t{5})})
          .ok());
  const std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(runtime::WriteCheckpoint(path, *e).ok());
  const std::string good = ReadBytes(path);

  // Bit flip in the body -> CRC failure.
  std::string flipped = good;
  flipped[good.size() / 2] =
      static_cast<char>(flipped[good.size() / 2] ^ 0x40);
  WriteBytes(path, flipped);
  auto r1 = MicroEngine();
  Status st1 = runtime::RestoreCheckpoint(path, r1.get());
  ASSERT_FALSE(st1.ok());
  EXPECT_EQ(st1.code(), StatusCode::kParseError);
  EXPECT_NE(st1.message().find("CRC"), std::string::npos) << st1.ToString();

  // Torn write: a truncated snapshot fails CRC/magic, never partially
  // restores.
  WriteBytes(path, good.substr(0, good.size() / 2));
  auto r2 = MicroEngine();
  EXPECT_FALSE(runtime::RestoreCheckpoint(path, r2.get()).ok());
  EXPECT_EQ(r2->epoch(), 0u);

  // Not a snapshot at all.
  WriteBytes(path, "definitely not a checkpoint");
  auto r3 = MicroEngine();
  EXPECT_FALSE(runtime::RestoreCheckpoint(path, r3.get()).ok());

  // Missing file.
  std::remove(path.c_str());
  auto r4 = MicroEngine();
  EXPECT_EQ(runtime::RestoreCheckpoint(path, r4.get()).code(),
            StatusCode::kNotFound);
}

TEST(Checkpoint, WrongEngineClassIsRejectedByName) {
  auto e = MicroEngine();
  const std::string path = TempPath("wrongname.ckpt");
  ASSERT_TRUE(runtime::WriteCheckpoint(path, *e).ok());
  baseline::ReevalEngine other(MicroCatalog());
  Status st = runtime::RestoreCheckpoint(path, &other);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("toaster-i"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Batch log.
// ---------------------------------------------------------------------------

TEST(BatchLog, AppendReadRoundTripAndTornTail) {
  const std::string path = TempPath("log_roundtrip.log");
  std::remove(path.c_str());
  Catalog cat = MicroCatalog();
  std::vector<EventBatch> batches = MakeStream(cat, 0xbeef, 5);
  {
    BatchLogWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    w.set_sync_every(2);
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_TRUE(w.Append(i + 1, batches[i]).ok());
    }
    ASSERT_TRUE(w.Sync().ok());
  }

  BatchLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  BatchLogReader::Record rec;
  size_t n = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec.epoch, n + 1);
    EXPECT_EQ(rec.batch.size(), batches[n].size());
    ++n;
  }
  EXPECT_EQ(n, batches.size());
  EXPECT_FALSE(reader.tail_torn());
  const std::string bytes = ReadBytes(path);
  EXPECT_EQ(reader.valid_bytes(), bytes.size());

  // Tear the last record: the reader recovers the prefix and flags the tail.
  WriteBytes(path, bytes.substr(0, bytes.size() - 3));
  BatchLogReader torn;
  ASSERT_TRUE(torn.Open(path).ok());
  size_t m = 0;
  while (torn.Next(&rec)) ++m;
  EXPECT_EQ(m, batches.size() - 1);
  EXPECT_TRUE(torn.tail_torn());
  EXPECT_LT(torn.valid_bytes(), bytes.size() - 3);

  // Bit flip inside the last record: CRC stops the scan at the same prefix.
  std::string flipped = bytes;
  flipped[bytes.size() - 2] = static_cast<char>(flipped[bytes.size() - 2] ^ 1);
  WriteBytes(path, flipped);
  BatchLogReader crc;
  ASSERT_TRUE(crc.Open(path).ok());
  size_t k = 0;
  while (crc.Next(&rec)) ++k;
  EXPECT_EQ(k, batches.size() - 1);
  EXPECT_TRUE(crc.tail_torn());

  // A writer reopening after recovery truncates to the valid prefix and
  // appends cleanly.
  {
    BatchLogWriter w;
    ASSERT_TRUE(w.Open(path, static_cast<int64_t>(crc.valid_bytes())).ok());
    ASSERT_TRUE(w.Append(batches.size(), batches.back()).ok());
  }
  BatchLogReader again;
  ASSERT_TRUE(again.Open(path).ok());
  size_t j = 0;
  while (again.Next(&rec)) ++j;
  EXPECT_EQ(j, batches.size());
  EXPECT_FALSE(again.tail_torn());
  std::remove(path.c_str());
}

/// A non-EINTR write failure mid-frame (simulated full disk) must not
/// strand later records behind a torn frame: the writer truncates back to
/// the pre-append offset, refuses appends until Sync() confirms the
/// rollback, and every record appended after recovery stays replayable.
TEST(BatchLog, MidFrameWriteFailureRollsBackTornFrame) {
  const std::string path = TempPath("log_midframe.log");
  std::remove(path.c_str());
  Catalog cat = MicroCatalog();
  std::vector<EventBatch> batches = MakeStream(cat, 0xd15c, 4);

  BatchLogWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  w.set_sync_every(100);  // keep Sync() out of the way of the fault
  ASSERT_TRUE(w.Append(1, batches[0]).ok());
  ASSERT_TRUE(w.Append(2, batches[1]).ok());
  const std::string before = ReadBytes(path);

  // Let the next frame get 5 bytes (a torn header) before writes fail.
  w.set_write_limit_for_testing(5);
  Status st = w.Append(3, batches[2]);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("rolled back"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(w.failed());

  // The torn frame is gone from the file, not sitting after the prefix.
  EXPECT_EQ(ReadBytes(path).size(), before.size());

  // Appends are refused until the rollback is confirmed durable.
  w.set_write_limit_for_testing(SIZE_MAX);
  EXPECT_FALSE(w.Append(3, batches[2]).ok());
  ASSERT_TRUE(w.Sync().ok());
  EXPECT_FALSE(w.failed());

  // Post-recovery appends land exactly after the valid prefix...
  ASSERT_TRUE(w.Append(3, batches[2]).ok());
  ASSERT_TRUE(w.Append(4, batches[3]).ok());
  ASSERT_TRUE(w.Sync().ok());
  w.Close();

  // ...and the untrusting reader reaches every record: no torn frame, no
  // unreachable tail.
  BatchLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  BatchLogReader::Record rec;
  size_t n = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec.epoch, n + 1);
    EXPECT_EQ(rec.batch.size(), batches[n].size());
    ++n;
  }
  EXPECT_EQ(n, batches.size());
  EXPECT_FALSE(reader.tail_torn());
  EXPECT_EQ(reader.valid_bytes(), ReadBytes(path).size());
  std::remove(path.c_str());
}

/// Crash injected between the tmp-file fsync and the rename: the
/// checkpoint write fails, the tmp file is left behind (as a real crash
/// would leave it), and the previous checkpoint remains fully restorable.
TEST(Checkpoint, CrashBetweenTmpFsyncAndRenamePreservesPrevious) {
  const std::string path = TempPath("crash.ckpt");
  std::remove(path.c_str());
  const std::string tmp = path + ".tmp";

  auto e = MicroEngine();
  ASSERT_TRUE(
      e->OnInsert("R", {Value(int64_t{1}), Value("a"), Value(int64_t{10})})
          .ok());
  ASSERT_TRUE(runtime::WriteCheckpoint(path, *e).ok());
  const std::string good = ReadBytes(path);

  ASSERT_TRUE(
      e->OnInsert("R", {Value(int64_t{2}), Value("b"), Value(int64_t{20})})
          .ok());
  runtime::SetCheckpointCrashForTesting(
      runtime::CheckpointCrashPoint::kAfterTmpFsync);
  Status st = runtime::WriteCheckpoint(path, *e);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected crash"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(ReadBytes(tmp).empty(), false) << "tmp file should be left behind";

  // The previous checkpoint is untouched and restores to epoch 1.
  EXPECT_EQ(ReadBytes(path), good);
  auto meta = runtime::ReadCheckpointMeta(path);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta.value().epoch, 1u);
  auto restored = MicroEngine();
  ASSERT_TRUE(runtime::RestoreCheckpoint(path, restored.get()).ok());
  EXPECT_EQ(restored->epoch(), 1u);

  // The injection is one-shot: a retry writes the epoch-2 snapshot.
  ASSERT_TRUE(runtime::WriteCheckpoint(path, *e).ok());
  auto meta2 = runtime::ReadCheckpointMeta(path);
  ASSERT_TRUE(meta2.ok());
  EXPECT_EQ(meta2.value().epoch, 2u);
  std::remove(path.c_str());
  std::remove(tmp.c_str());
}

TEST(BatchLog, ReplayIsExactlyOnceAndDetectsGaps) {
  const std::string path = TempPath("log_replay.log");
  std::remove(path.c_str());
  Catalog cat = MicroCatalog();
  std::vector<EventBatch> batches = MakeStream(cat, 0xfeed, 6);

  auto reference = MicroEngine();
  {
    BatchLogWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_TRUE(w.Append(i + 1, batches[i]).ok());
      ASSERT_TRUE(reference->ApplyBatch(CopyBatch(batches[i])).ok());
    }
  }

  // A fresh engine (epoch 0): replay applies everything.
  auto fresh = MicroEngine();
  auto stats = runtime::ReplayLog(path, fresh.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().replayed, batches.size());
  EXPECT_EQ(stats.value().skipped, 0u);
  EXPECT_EQ(fresh->epoch(), batches.size());
  auto want = reference->View("q");
  auto got = fresh->View("q");
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectIdenticalView(want.value(), got.value(), "full replay");

  // Replaying again over the same engine: every record is a duplicate.
  auto stats2 = runtime::ReplayLog(path, fresh.get());
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2.value().replayed, 0u);
  EXPECT_EQ(stats2.value().skipped, batches.size());
  auto got2 = fresh->View("q");
  ASSERT_TRUE(got2.ok());
  ExpectIdenticalView(want.value(), got2.value(), "idempotent replay");

  // An engine already ahead of part of the log: prefix skipped, rest
  // applied.
  auto partial = MicroEngine();
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(partial->ApplyBatch(CopyBatch(batches[i])).ok());
  }
  auto stats3 = runtime::ReplayLog(path, partial.get());
  ASSERT_TRUE(stats3.ok());
  EXPECT_EQ(stats3.value().skipped, 2u);
  EXPECT_EQ(stats3.value().replayed, batches.size() - 2);

  // A gap (engine behind the log's first record) is an error, not a silent
  // hole in the stream.
  {
    BatchLogWriter w;
    ASSERT_TRUE(w.Open(path, /*truncate_to=*/0).ok());
    ASSERT_TRUE(w.Append(5, batches[4]).ok());
  }
  auto behind = MicroEngine();
  auto gap = runtime::ReplayLog(path, behind.get());
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kInternal);
  EXPECT_NE(gap.status().message().find("gap"), std::string::npos);

  // Missing log: clean no-op recovery.
  std::remove(path.c_str());
  auto none = runtime::ReplayLog(path, behind.get());
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().replayed, 0u);
}

// ---------------------------------------------------------------------------
// Randomized crash-recovery property: all four engine classes, all 13 bench
// queries, kill/restore at random batch boundaries with log corruption.
// ---------------------------------------------------------------------------

void RunCrashRecovery(const ScriptCase& sc, const std::string& kind,
                      uint64_t seed, bool corrupt_tail) {
  EngineInstance reference = MakeEngine(kind, sc);
  if (reference.engine == nullptr) return;  // ivm1 legitimately excluded
  EngineInstance victim = MakeEngine(kind, sc);
  ASSERT_NE(victim.engine, nullptr);

  const std::string label =
      sc.name + "/" + kind + (corrupt_tail ? "/torn" : "/clean");
  const std::string ckpt = TempPath(sc.name + "_" + kind + ".ckpt");
  const std::string log = TempPath(sc.name + "_" + kind + ".log");
  std::remove(ckpt.c_str());
  std::remove(log.c_str());

  const size_t kBatches = 9;
  std::vector<EventBatch> batches = MakeStream(sc.catalog, seed, kBatches);

  Rng rng(seed ^ 0xc0ffee);
  const size_t crash_at = 1 + rng.Uniform(kBatches - 1);  // in [1, kBatches)
  const size_t ckpt_at = rng.Uniform(crash_at + 1);       // in [0, crash_at]

  // Uninterrupted reference: apply everything, remembering the view after
  // every batch boundary.
  std::vector<exec::QueryResult> reference_views;
  for (size_t i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(reference.engine->ApplyBatch(CopyBatch(batches[i])).ok())
        << label;
    auto v = reference.engine->View(reference.view);
    ASSERT_TRUE(v.ok()) << label << ": " << v.status().ToString();
    reference_views.push_back(std::move(v).value());
  }

  // Victim: write-ahead log + apply until the crash point, checkpointing
  // along the way.
  {
    BatchLogWriter w;
    ASSERT_TRUE(w.Open(log).ok());
    w.set_sync_every(2);
    if (ckpt_at == 0) {
      ASSERT_TRUE(runtime::WriteCheckpoint(ckpt, *victim.engine).ok())
          << label;
    }
    for (size_t i = 0; i < crash_at; ++i) {
      ASSERT_TRUE(w.Append(i + 1, batches[i]).ok()) << label;
      ASSERT_TRUE(victim.engine->ApplyBatch(CopyBatch(batches[i])).ok())
          << label;
      if (i + 1 == ckpt_at) {
        ASSERT_TRUE(runtime::WriteCheckpoint(ckpt, *victim.engine).ok())
            << label;
      }
    }
    ASSERT_TRUE(w.Sync().ok());
  }
  // Crash: the victim engine object dies here; optionally the failing disk
  // tears or bit-flips the last log record.
  victim.engine.reset();
  victim.program.reset();
  if (corrupt_tail) {
    std::string bytes = ReadBytes(log);
    ASSERT_FALSE(bytes.empty()) << label;
    if (rng.Chance(0.5)) {
      WriteBytes(log, bytes.substr(0, bytes.size() - 1 - rng.Uniform(4)));
    } else {
      const size_t at = bytes.size() - 1 - rng.Uniform(4);
      bytes[at] = static_cast<char>(bytes[at] ^ (1u << rng.Uniform(8)));
      WriteBytes(log, bytes);
    }
  }

  // Recover: fresh engine, checkpoint, exactly-once log replay.
  EngineInstance recovered = MakeEngine(kind, sc);
  ASSERT_NE(recovered.engine, nullptr);
  ASSERT_TRUE(runtime::RestoreCheckpoint(ckpt, recovered.engine.get()).ok())
      << label;
  EXPECT_EQ(recovered.engine->epoch(), ckpt_at) << label;
  auto stats = runtime::ReplayLog(log, recovered.engine.get());
  ASSERT_TRUE(stats.ok()) << label << ": " << stats.status().ToString();

  // Corruption costs at most the torn tail record; everything durable must
  // be back.
  const size_t recovered_to = static_cast<size_t>(recovered.engine->epoch());
  if (corrupt_tail) {
    EXPECT_TRUE(stats.value().tail_truncated) << label;
    ASSERT_EQ(recovered_to, std::max(ckpt_at, crash_at - 1)) << label;
  } else {
    EXPECT_EQ(stats.value().skipped, ckpt_at) << label;
    ASSERT_EQ(recovered_to, crash_at) << label;
  }

  // The recovered view must match the uninterrupted reference at the same
  // boundary: byte-identical for maintained views, ulp-tolerant for the
  // recomputing baseline (see ExpectViewMatch).
  const bool exact = kind != "reeval";
  if (recovered_to > 0) {
    auto got = recovered.engine->View(recovered.view);
    ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
    ExpectViewMatch(reference_views[recovered_to - 1], got.value(),
                    label + ": view after recovery", exact);
  }

  // The upstream resends from the recovery epoch (exactly-once cursor);
  // finish the stream and require the final views identical.
  for (size_t i = recovered_to; i < kBatches; ++i) {
    ASSERT_TRUE(recovered.engine->ApplyBatch(CopyBatch(batches[i])).ok())
        << label;
  }
  auto final_got = recovered.engine->View(recovered.view);
  ASSERT_TRUE(final_got.ok()) << label;
  ExpectViewMatch(reference_views.back(), final_got.value(),
                  label + ": final view", exact);

  // Recovery must not inflate resident state: within slack of the
  // uninterrupted engine (allocation history differs, so exact byte
  // equality is not required).
  EXPECT_LE(recovered.engine->StateBytes(),
            reference.engine->StateBytes() * 3 / 2 + 4096)
      << label;

  std::remove(ckpt.c_str());
  std::remove(log.c_str());
}

class CrashRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashRecovery, KillAndRecoverAtRandomBatchBoundaries) {
  ScriptCase sc = LoadScript(GetParam());
  const char* kinds[] = {"toaster-i", "reeval", "ivm1", "toaster-c"};
  for (const char* kind : kinds) {
    for (uint64_t trial = 0; trial < 2; ++trial) {
      RunCrashRecovery(sc, kind, 0xabc123 + trial * 77 + sc.name.size(),
                       /*corrupt_tail=*/false);
      RunCrashRecovery(sc, kind, 0xdef456 + trial * 31 + sc.name.size(),
                       /*corrupt_tail=*/true);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchQueries, CrashRecovery,
                         ::testing::Values("vwap", "sobi_bids", "mm",
                                           "best_bid", "q41", "revenue",
                                           "q3s", "q6s", "q12s", "q13s",
                                           "selzero", "selhalf", "selall"));

}  // namespace
}  // namespace dbtoaster
