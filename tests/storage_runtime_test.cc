// Unit tests for storage (multiset tables, hash indexes) and the runtime map
// structures (ValueMap erase-on-zero, ExtremeMap multiset semantics).
#include <gtest/gtest.h>

#include "src/catalog/catalog.h"
#include "src/runtime/value_map.h"
#include "src/storage/index.h"
#include "src/storage/table.h"

namespace dbtoaster {
namespace {

TEST(Catalog, RegistrationAndLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation(Schema("R", {{"A", Type::kInt}})).ok());
  EXPECT_TRUE(cat.FindRelation("r") != nullptr);  // case-insensitive
  EXPECT_EQ(cat.FindRelation("R")->num_columns(), 1u);
  EXPECT_FALSE(cat.AddRelation(Schema("r", {{"X", Type::kInt}})).ok());
  EXPECT_FALSE(
      cat.AddRelation(Schema("S", {{"A", Type::kInt}, {"a", Type::kInt}}))
          .ok());
}

TEST(Table, MultisetSemantics) {
  Table t(Schema("R", {{"A", Type::kInt}}));
  Row r{Value(1)};
  t.Insert(r);
  t.Insert(r);
  EXPECT_EQ(t.Multiplicity(r), 2);
  EXPECT_EQ(t.NumDistinct(), 1u);
  EXPECT_EQ(t.Cardinality(), 2);
  t.Delete(r);
  EXPECT_EQ(t.Multiplicity(r), 1);
  t.Delete(r);
  EXPECT_EQ(t.Multiplicity(r), 0);
  EXPECT_EQ(t.NumDistinct(), 0u);  // erased at zero
  // Deletes before inserts go negative (ring semantics, total engine).
  t.Delete(r);
  EXPECT_EQ(t.Multiplicity(r), -1);
  t.Insert(r);
  EXPECT_EQ(t.Multiplicity(r), 0);
}

TEST(Database, AppliesAndValidatesEvents) {
  Catalog cat;
  (void)cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  Database db(cat);
  EXPECT_TRUE(db.Apply(Event::Insert("R", {Value(1), Value(2)})).ok());
  EXPECT_EQ(db.Apply(Event::Insert("Z", {Value(1)})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Apply(Event::Insert("R", {Value(1)})).code(),
            StatusCode::kInvalidArgument);
}

TEST(HashIndex, MaintainsBuckets) {
  HashIndex idx({1});  // index on column 1
  idx.Apply({Value(1), Value(10)}, 1);
  idx.Apply({Value(2), Value(10)}, 1);
  idx.Apply({Value(3), Value(20)}, 1);
  const auto* bucket = idx.Lookup({Value(10)});
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 2u);
  idx.Apply({Value(1), Value(10)}, -1);
  bucket = idx.Lookup({Value(10)});
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 1u);
  idx.Apply({Value(3), Value(20)}, -1);
  EXPECT_EQ(idx.Lookup({Value(20)}), nullptr);  // empty bucket removed
}

TEST(ValueMap, EraseOnIntegerZero) {
  runtime::ValueMap m("m", 1, Type::kInt);
  Row k{Value(7)};
  m.Add(k, Value(3));
  m.Add(k, Value(-3));
  EXPECT_EQ(m.size(), 0u);  // support tracking
  EXPECT_EQ(m.Get(k), Value(0));
  m.Add(k, Value(0));
  EXPECT_EQ(m.size(), 0u);  // zero deltas do not materialise keys
}

TEST(ValueMap, DoubleTypedZero) {
  runtime::ValueMap m("m", 0, Type::kDouble);
  EXPECT_EQ(m.Get({}), Value(0.0));
  EXPECT_TRUE(m.Get({}).is_double());
  m.Add({}, Value(2));  // int delta promoted into a double-typed map
  EXPECT_TRUE(m.Get({}).is_double());
}

TEST(ValueMap, SetAndClear) {
  runtime::ValueMap m("m", 1, Type::kInt);
  m.Set({Value(1)}, Value(5));
  m.Set({Value(2)}, Value(6));
  EXPECT_EQ(m.size(), 2u);
  m.Set({Value(1)}, Value(0));  // set-to-zero erases
  EXPECT_EQ(m.size(), 1u);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
}

TEST(ExtremeMap, MinMaxUnderDeletes) {
  runtime::ExtremeMap m("x", 0, Type::kInt);
  m.Add({}, Value(5));
  m.Add({}, Value(3));
  m.Add({}, Value(9));
  m.Add({}, Value(3));  // duplicate
  EXPECT_EQ(*m.Min({}), Value(3));
  EXPECT_EQ(*m.Max({}), Value(9));
  m.Remove({}, Value(3));
  EXPECT_EQ(*m.Min({}), Value(3));  // one copy left
  m.Remove({}, Value(3));
  EXPECT_EQ(*m.Min({}), Value(5));
  m.Remove({}, Value(9));
  EXPECT_EQ(*m.Max({}), Value(5));
  m.Remove({}, Value(5));
  EXPECT_FALSE(m.Min({}).has_value());  // group gone
  // Counts are total: removing an absent value records a negative count (a
  // batch may reorder a delete ahead of its insert) that never surfaces as
  // a MIN/MAX candidate and cancels against the matching Add.
  m.Remove({}, Value(42));
  EXPECT_FALSE(m.Min({}).has_value());
  EXPECT_EQ(m.size(), 0u);
  m.Add({}, Value(42));
  EXPECT_EQ(m.NumGroups(), 0u);
}

TEST(ExtremeMap, PerGroupIsolation) {
  runtime::ExtremeMap m("x", 1, Type::kInt);
  m.Add({Value(1)}, Value(10));
  m.Add({Value(2)}, Value(20));
  EXPECT_EQ(*m.Max({Value(1)}), Value(10));
  EXPECT_EQ(*m.Max({Value(2)}), Value(20));
  EXPECT_FALSE(m.Max({Value(3)}).has_value());
}

}  // namespace
}  // namespace dbtoaster
