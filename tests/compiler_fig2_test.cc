// Reproduction of the paper's Figure 2: recursive compilation of
//   select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C
// We assert the structural content of the table: the set of maps produced
// (q, qD[b], qA[b], qD[c], qA[c], q1[b,c] — modulo naming), their recursion
// levels, their definitions, and the shape of the generated handlers.
#include <gtest/gtest.h>

#include <set>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"

namespace dbtoaster {
namespace {

Catalog Fig2Catalog() {
  Catalog cat;
  EXPECT_TRUE(cat.AddRelation(Schema("R", {{"A", Type::kInt},
                                           {"B", Type::kInt}}))
                  .ok());
  EXPECT_TRUE(cat.AddRelation(Schema("S", {{"B", Type::kInt},
                                           {"C", Type::kInt}}))
                  .ok());
  EXPECT_TRUE(cat.AddRelation(Schema("T", {{"C", Type::kInt},
                                           {"D", Type::kInt}}))
                  .ok());
  return cat;
}

constexpr char kFig2Query[] =
    "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C";

TEST(Fig2, MapInventoryMatchesPaper) {
  auto program =
      compiler::CompileQuery(Fig2Catalog(), "q", kFig2Query);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const compiler::Program& p = program.value();

  // The paper's Figure 2 produces exactly these map shapes:
  //   level 1: q        (no keys)
  //   level 2: qD[b]  = sum_D sigma_{B=b}(S) |><| T      (keys: 1)
  //            qA[b]  = sum_A sigma_{B=b}(R)             (keys: 1)
  //            qD[c]  = sum_D sigma_{C=c}(T)             (keys: 1)
  //            qA[c]  = sum_A R |><| sigma_{C=c}(S)      (keys: 1)
  //   level 3: q1[b,c] = count of (b,c) in S             (keys: 2)
  // Our compiler names them q, m1..; check by structure.
  std::multiset<std::pair<int, size_t>> level_arity;
  for (const auto& m : p.maps) {
    level_arity.insert({m.level, m.key_names.size()});
  }
  std::multiset<std::pair<int, size_t>> expected{
      {1, 0},  // q
      {2, 1},  // qD[b]
      {2, 1},  // qA[b]
      {2, 1},  // qD[c]
      {2, 1},  // qA[c]
      {3, 2},  // q1[b,c]
  };
  EXPECT_EQ(level_arity, expected) << p.ToString();

  // Map sharing: exactly 6 maps despite 3 relations x 2 signs x levels.
  EXPECT_EQ(p.maps.size(), 6u) << p.ToString();

  // Triggers for all three relations, both signs.
  EXPECT_EQ(p.triggers.size(), 6u);
  for (const auto& t : p.triggers) {
    EXPECT_FALSE(t.statements.empty())
        << "empty trigger " << t.Signature();
  }
}

TEST(Fig2, InsertHandlersComputeThePaperExample) {
  auto program = compiler::CompileQuery(Fig2Catalog(), "q", kFig2Query);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine engine(std::move(program).value());

  // Insert R(2,10), S(10,20), T(20,7): q = sum(A*D) = 2*7 = 14.
  ASSERT_TRUE(engine.OnInsert("R", {Value(2), Value(10)}).ok());
  ASSERT_TRUE(engine.OnInsert("S", {Value(10), Value(20)}).ok());
  ASSERT_TRUE(engine.OnInsert("T", {Value(20), Value(7)}).ok());
  auto v = engine.ViewScalar("q");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value(), Value(14));

  // Another R row joins through the same S tuple: q += 5*7.
  ASSERT_TRUE(engine.OnInsert("R", {Value(5), Value(10)}).ok());
  v = engine.ViewScalar("q");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value(14 + 35));

  // Deletion undoes it (sum has an inverse, as the paper notes).
  ASSERT_TRUE(engine.OnDelete("R", {Value(5), Value(10)}).ok());
  v = engine.ViewScalar("q");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value(14));

  // Non-joining tuples do not change the result.
  ASSERT_TRUE(engine.OnInsert("S", {Value(99), Value(98)}).ok());
  v = engine.ViewScalar("q");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value(14));
}

TEST(Fig2, TraceTableHasAllLevels) {
  auto program = compiler::CompileQuery(Fig2Catalog(), "q", kFig2Query);
  ASSERT_TRUE(program.ok());
  const compiler::Program& p = program.value();
  std::set<int> levels;
  for (const auto& row : p.trace) levels.insert(row.level);
  EXPECT_EQ(levels, (std::set<int>{1, 2, 3})) << p.TraceTable();
}

}  // namespace
}  // namespace dbtoaster
