// Static-verifier tests: every bench query and differential micro-query
// lowers to a module that verifies clean; every mutation in the
// tests/golden/bad/*.ir corpus is rejected with its pinned diagnostic; the
// liveness pass warns on a hand-built dead map.
//
// Corpus format (tests/golden/bad/<name>.ir):
//   # mutation: <registry name>
//   # expect: <diagnostic substring>
//   <full ToText() dump of the mutated module>
//
// Regenerate after an intentional IR change with:
//   DBT_REGEN_BAD=1 ./tir_verify_test
#include "src/compiler/tir_verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/compiler/tir.h"
#include "src/ring/expr.h"
#include "src/ring/term.h"
#include "src/sql/parser.h"

#ifndef DBT_QUERY_DIR
#define DBT_QUERY_DIR "bench/queries"
#endif
#ifndef DBT_GOLDEN_DIR
#define DBT_GOLDEN_DIR "tests/golden"
#endif

namespace dbtoaster {
namespace {

using compiler::Statement;
using ring::Term;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compile a dbtc-style script (CREATE TABLEs + SELECTs) like the driver.
compiler::Program CompileScript(const std::string& text) {
  auto script = sql::ParseScript(text);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  Catalog catalog;
  for (const auto& t : script.value().tables) {
    EXPECT_TRUE(catalog.AddRelation(t).ok());
  }
  compiler::Compiler c(catalog);
  size_t qi = 0;
  for (const auto& q : script.value().queries) {
    std::string name = q.name.empty() ? "q" + std::to_string(qi) : q.name;
    EXPECT_TRUE(c.AddQuery(name, *q.select).ok());
    ++qi;
  }
  auto program = c.Compile();
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// ---------------------------------------------------------------------------
// Clean verification: bench queries.
// ---------------------------------------------------------------------------

class BenchQueryVerifies : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchQueryVerifies, NoErrorsNoWarnings) {
  const std::string path =
      std::string(DBT_QUERY_DIR) + "/" + GetParam() + ".sql";
  compiler::Program p = CompileScript(ReadFile(path));
  tir::Module m = tir::Lower(p);
  tir::VerifyResult r = tir::Verify(m);
  EXPECT_EQ(r.num_errors, 0u) << r.ToString(path);
  EXPECT_EQ(r.num_warnings, 0u) << r.ToString(path);
  EXPECT_TRUE(tir::VerifyOrError(m, path, /*strict=*/true).ok());
}

INSTANTIATE_TEST_SUITE_P(AllBenchQueries, BenchQueryVerifies,
                         ::testing::Values("vwap", "sobi_bids", "mm",
                                           "best_bid", "q41", "revenue",
                                           "q3s", "q6s", "q12s", "q13s"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Clean verification: the differential harness's micro-queries.
// ---------------------------------------------------------------------------

Catalog MicroCatalog() {
  Catalog c;
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable(
               "create table R(K int, TAG string, V int, D date, X double)")
               .value())
          .ok());
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable("create table S(K int, NOTE string, W int)")
               .value())
          .ok());
  return c;
}

struct MicroCase {
  const char* label;
  const char* sql;
};

class MicroQueryVerifies : public ::testing::TestWithParam<MicroCase> {};

TEST_P(MicroQueryVerifies, NoErrors) {
  auto program = compiler::CompileQuery(MicroCatalog(), "q", GetParam().sql);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  tir::Module m = tir::Lower(program.value());
  tir::VerifyResult r = tir::Verify(m);
  EXPECT_EQ(r.num_errors, 0u) << r.ToString(GetParam().label);
  EXPECT_EQ(r.num_warnings, 0u) << r.ToString(GetParam().label);
}

INSTANTIATE_TEST_SUITE_P(
    AllMicroQueries, MicroQueryVerifies,
    ::testing::Values(
        MicroCase{"like", "select sum(R.V) from R where R.TAG like 'M%'"},
        MicroCase{"not_like",
                  "select R.K, count(*) from R where R.TAG not like "
                  "'%special%' group by R.K"},
        MicroCase{"in_list",
                  "select R.TAG, sum(R.V) from R where R.TAG in ('MAIL', "
                  "'SHIP', 'RAIL') group by R.TAG"},
        MicroCase{"case_when",
                  "select R.K, sum(case when R.TAG = 'MAIL' then R.V else 0 "
                  "end) from R group by R.K"},
        MicroCase{"case_chain",
                  "select sum(case when R.V < 2 then 10 when R.V < 5 then "
                  "R.V else 0 end) from R"},
        MicroCase{"extract_parts",
                  "select count(*) from R where EXTRACT(MONTH FROM R.D) = 3 "
                  "and EXTRACT(DAY FROM R.D) < 20"},
        MicroCase{"date_range",
                  "select R.K, sum(R.X) from R where R.D >= DATE "
                  "'1994-01-01' and R.D < DATE '1994-01-01' + INTERVAL '6' "
                  "MONTH group by R.K"},
        MicroCase{"between",
                  "select sum(R.V) from R where R.V between 2 and 5"},
        MicroCase{"having_hidden_agg",
                  "select R.K, sum(R.V) from R group by R.K having count(*) "
                  "> 3"},
        MicroCase{"having_with_min",
                  "select R.K, min(R.V) from R group by R.K having count(*) "
                  "> 2"},
        MicroCase{"having_bool",
                  "select R.TAG, count(*) from R group by R.TAG having "
                  "(sum(R.V) > 8 or count(*) > 5) and not (count(*) = 7)"},
        MicroCase{"string_group_eq",
                  "select R.TAG, count(*) from R, S where R.K = S.K and "
                  "R.TAG = S.NOTE group by R.TAG"},
        MicroCase{"left_join_count",
                  "select R.K, count(*) from R left outer join S on R.K = "
                  "S.K group by R.K"},
        MicroCase{"left_join_sum",
                  "select R.TAG, sum(R.V) from R left join S on R.K = S.K "
                  "and S.W > 3 group by R.TAG"},
        MicroCase{"left_join_having",
                  "select R.K, count(*) from R left outer join S on R.K = "
                  "S.K and S.NOTE like '%e%' group by R.K having count(*) > "
                  "2"},
        MicroCase{"left_join_degenerate",
                  "select R.K, count(*) from R left join S on R.K = S.K "
                  "where S.W > 2 group by R.K"},
        MicroCase{"left_join_global",
                  "select count(*) from R left join S on R.K = S.K"}),
    [](const ::testing::TestParamInfo<MicroCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Mutated-IR rejection corpus.
// ---------------------------------------------------------------------------

constexpr const char kSimpleScript[] =
    "create table R(A int, B int);\n"
    "select B, sum(A) from R group by B;\n";

/// Find the first delta statement of the first trigger (the group-by sum
/// maintenance statement in kSimpleScript).
tir::Stmt* FirstDelta(tir::Module* m) {
  for (tir::Trigger& t : m->triggers) {
    for (tir::Stmt& s : t.stmts) {
      if (s.stmt.kind == Statement::Kind::kDelta) return &s;
    }
  }
  ADD_FAILURE() << "module has no delta statement";
  return nullptr;
}

compiler::MapDecl* DeclOf(compiler::Program* p, const std::string& name) {
  for (compiler::MapDecl& d : p->maps) {
    if (d.name == name) return &d;
  }
  ADD_FAILURE() << "no map declaration " << name;
  return nullptr;
}

struct Mutation {
  const char* name;
  const char* base;  ///< "simple" or a bench query name
  const char* expect;
  std::function<void(compiler::Program*, tir::Module*)> apply;
};

const std::vector<Mutation>& Mutations() {
  static const std::vector<Mutation>* kMutations = new std::vector<Mutation>{
      {"map_arity_shrunk", "simple", "keys are given",
       [](compiler::Program* p, tir::Module* m) {
         tir::Stmt* s = FirstDelta(m);
         compiler::MapDecl* d = DeclOf(p, s->stmt.target);
         ASSERT_FALSE(d->key_names.empty()) << "need a keyed map";
         d->key_names.pop_back();
         d->key_types.pop_back();
       }},
      {"write_unknown_map", "simple", "writes undeclared map 'q0_missing'",
       [](compiler::Program*, tir::Module* m) {
         FirstDelta(m)->stmt.target = "q0_missing";
       }},
      {"unbound_target_key", "simple", "target key 'zz' is never bound",
       [](compiler::Program*, tir::Module* m) {
         tir::Stmt* s = FirstDelta(m);
         ASSERT_FALSE(s->stmt.target_keys.empty());
         s->stmt.target_keys[0] = "zz";
       }},
      {"key_lane_flipped", "simple", "key lane STRING",
       [](compiler::Program* p, tir::Module* m) {
         tir::Stmt* s = FirstDelta(m);
         compiler::MapDecl* d = DeclOf(p, s->stmt.target);
         ASSERT_FALSE(d->key_types.empty());
         d->key_types[0] = Type::kString;
       }},
      {"extreme_flag_flipped", "simple",
       "targets extreme (min/max multiset) map",
       [](compiler::Program* p, tir::Module* m) {
         DeclOf(p, FirstDelta(m)->stmt.target)->is_extreme = true;
       }},
      {"sign_flag_dropped", "simple",
       "reads __sign but is not marked sign-dependent",
       [](compiler::Program*, tir::Module* m) {
         tir::Stmt* s = FirstDelta(m);
         ASSERT_TRUE(s->sign_dependent) << "need a sign-dependent delta";
         s->sign_dependent = false;
       }},
      {"insert_only_mask", "simple", "written only on insert events",
       [](compiler::Program*, tir::Module* m) {
         // Masking the group maintenance statement to inserts leaves the
         // view-read map stale after every delete.
         tir::Stmt* s = FirstDelta(m);
         s->when = tir::Stmt::When::kInsertOnly;
         s->sign_dependent = false;
         // Drop the {__sign} factor so the only complaint is the mask
         // (a masked statement must not read the sign).
         s->stmt.rhs = ring::Expr::ValTerm(Term::Var("a"));
       }},
      {"sign_in_reeval", "vwap", "re-evaluation statement reads __sign",
       [](compiler::Program*, tir::Module* m) {
         for (tir::Trigger& t : m->triggers) {
           for (tir::Stmt& s : t.stmts) {
             if (s.stmt.kind != Statement::Kind::kReeval) continue;
             s.stmt.rhs = ring::Expr::Prod(
                 {ring::Expr::ValTerm(Term::Var(tir::kSignVar)), s.stmt.rhs});
             s.sign_dependent = true;
             return;
           }
         }
         ADD_FAILURE() << "vwap module has no re-evaluation statement";
       }},
      {"false_parallel_claim", "vwap",
       "claims parallel_safe but re-analysis",
       [](compiler::Program*, tir::Module* m) {
         // vwap's trigger re-evaluates against init-on-access state; no
         // honest analysis can call it parallel-safe.
         ASSERT_FALSE(m->triggers.empty());
         m->triggers[0].vectorizable = true;
         m->triggers[0].parallel_safe = true;
       }},
      {"pred_lane_flipped", "q6s", "do not match re-derivation",
       [](compiler::Program*, tir::Module* m) {
         for (tir::Trigger& t : m->triggers) {
           for (tir::Stmt& s : t.stmts) {
             if (s.preds.empty()) continue;
             // Redirect the quantity guard onto the orderkey lane. Both
             // lanes are INT, so the direct lane/type checks stay silent and
             // only the extraction re-derivation can refute the claim.
             ASSERT_EQ(s.preds[0].lane_type, Type::kInt);
             ASSERT_NE(s.preds[0].lane, 0u);
             s.preds[0].lane = 0;
             return;
           }
         }
         ADD_FAILURE() << "q6s module has no extracted predicates";
       }},
      {"pred_constant_altered", "q12s", "types lane",
       [](compiler::Program*, tir::Module* m) {
         for (tir::Trigger& t : m->triggers) {
           for (tir::Stmt& s : t.stmts) {
             for (tir::PredSpec& ps : s.preds) {
               if (ps.lane_type != Type::kString) continue;
               // Point the string-equality guard at the date lane: the
               // lane/type soundness check rejects it outright.
               ps.lane = 2;
               return;
             }
           }
         }
         ADD_FAILURE() << "q12s module has no string predicate";
       }},
      {"partition_col_uncovered", "simple",
       "does not cover partition column",
       [](compiler::Program*, tir::Module* m) {
         // Claim routing on parameter 0 (a): the group map is keyed on b.
         ASSERT_FALSE(m->triggers.empty());
         tir::Trigger& t = m->triggers[0];
         t.parallel_safe = true;
         t.partition_cols = {0};
       }},
  };
  return *kMutations;
}

compiler::Program CompileBase(const std::string& base) {
  if (base == "simple") return CompileScript(kSimpleScript);
  return CompileScript(
      ReadFile(std::string(DBT_QUERY_DIR) + "/" + base + ".sql"));
}

TEST(BadIrCorpus, EveryMutationIsRejectedWithItsPinnedDiagnostic) {
  const std::string dir = std::string(DBT_GOLDEN_DIR) + "/bad";
  const bool regen = ::getenv("DBT_REGEN_BAD") != nullptr;

  std::map<std::string, const Mutation*> registry;
  for (const Mutation& mu : Mutations()) registry[mu.name] = &mu;

  size_t corpus_files = 0;
  for (const auto& [name, mu] : registry) {
    compiler::Program p = CompileBase(mu->base);
    tir::Module m = tir::Lower(p);
    {
      SCOPED_TRACE(name);
      mu->apply(&p, &m);
      if (::testing::Test::HasFatalFailure()) return;
    }
    const std::string text = "# mutation: " + std::string(mu->name) +
                             "\n# expect: " + mu->expect + "\n" + m.ToText();
    const std::string path = dir + "/" + name + ".ir";
    if (regen) {
      std::filesystem::create_directories(dir);
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << text;
    } else {
      EXPECT_EQ(ReadFile(path), text)
          << name << ": mutated-IR dump drifted; regenerate with "
          << "DBT_REGEN_BAD=1 after verifying the change is intended";
    }
    ++corpus_files;

    // The actual gate: the verifier must reject the mutation, and one of
    // its diagnostics must carry the pinned substring.
    tir::VerifyResult r = tir::Verify(m);
    EXPECT_GT(r.num_errors, 0u) << name << ": mutation verified clean";
    bool matched = false;
    for (const tir::Diagnostic& d : r.diagnostics) {
      if (d.ToString().find(mu->expect) != std::string::npos) matched = true;
    }
    EXPECT_TRUE(matched) << name << ": no diagnostic contains \""
                         << mu->expect << "\"; got:\n"
                         << r.ToString();

    // And the hard-fail form used by the pipeline gates must trip too.
    EXPECT_FALSE(tir::VerifyOrError(m).ok()) << name;
  }

  // Every on-disk corpus file must correspond to a registered mutation —
  // a stray file would silently stop being exercised.
  if (!regen) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string stem = entry.path().stem().string();
      EXPECT_TRUE(registry.count(stem))
          << "tests/golden/bad/" << entry.path().filename().string()
          << " has no registered mutation";
    }
  }
  EXPECT_EQ(corpus_files, Mutations().size());
}

// ---------------------------------------------------------------------------
// Liveness: dead map warning on a hand-built module.
// ---------------------------------------------------------------------------

TEST(Liveness, DeadMapWarnsByDefaultAndFailsStrict) {
  compiler::Program p = CompileScript(kSimpleScript);
  tir::Module m = tir::Lower(p);
  ASSERT_TRUE(tir::Verify(m).ok(/*strict=*/true));

  // Graft a map no view or statement ever reads, maintained by an extra
  // delta statement on the existing trigger.
  compiler::MapDecl dead;
  dead.name = "m_dead";
  dead.value_type = Type::kInt;
  p.maps.push_back(dead);

  ASSERT_FALSE(m.triggers.empty());
  tir::Trigger& t = m.triggers[0];
  ASSERT_FALSE(t.stmts.empty());
  tir::Stmt extra = t.stmts[0];  // borrow var_types/env of a real statement
  extra.stmt.target = "m_dead";
  extra.stmt.target_keys.clear();
  extra.stmt.lhs_iterate.clear();
  extra.stmt.kind = Statement::Kind::kDelta;
  extra.stmt.rhs = ring::Expr::Prod(
      {ring::Expr::ValTerm(Term::Var(tir::kSignVar)),
       ring::Expr::ValTerm(Term::Var(t.params[0].name))});
  extra.sign_dependent = true;
  extra.when = tir::Stmt::When::kBoth;
  extra.rendering = extra.stmt.ToString();
  t.stmts.push_back(extra);
  // The grafted statement invalidates the previously derived shard plan;
  // under-claiming is always sound.
  t.vectorizable = false;
  t.parallel_safe = false;
  t.partition_cols.clear();

  tir::VerifyResult r = tir::Verify(m);
  EXPECT_EQ(r.num_errors, 0u) << r.ToString();
  ASSERT_GE(r.num_warnings, 1u);
  bool saw = false;
  for (const tir::Diagnostic& d : r.diagnostics) {
    if (d.message.find("'m_dead' is dead") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw) << r.ToString();

  // Default verification passes; strict promotes the warning to a failure.
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.ok(/*strict=*/true));
  EXPECT_TRUE(tir::VerifyOrError(m).ok());
  EXPECT_FALSE(tir::VerifyOrError(m, "", /*strict=*/true).ok());
}

TEST(Liveness, CancellingDeltaWarns) {
  compiler::Program p = CompileScript(kSimpleScript);
  tir::Module m = tir::Lower(p);
  ASSERT_FALSE(m.triggers.empty());
  tir::Trigger& t = m.triggers[0];
  ASSERT_FALSE(t.stmts.empty());

  // a + (-a): structurally cancelling delta.
  tir::Stmt& s = t.stmts[0];
  ASSERT_EQ(s.stmt.kind, Statement::Kind::kDelta);
  ring::ExprPtr a = ring::Expr::ValTerm(Term::Var(t.params[0].name));
  s.stmt.rhs = ring::Expr::Sum({a, ring::Expr::Neg(a)});
  s.sign_dependent = false;

  tir::VerifyResult r = tir::Verify(m);
  bool saw = false;
  for (const tir::Diagnostic& d : r.diagnostics) {
    if (d.message.find("provably cancels") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw) << r.ToString();
}

// ---------------------------------------------------------------------------
// Diagnostic rendering.
// ---------------------------------------------------------------------------

TEST(Diagnostics, ToStringCarriesRelationStmtAndCheck) {
  tir::Diagnostic d;
  d.check = "type";
  d.relation = "BIDS";
  d.stmt = 2;
  d.message = "boom";
  EXPECT_EQ(d.ToString(), "BIDS:stmt 2: error: [type] boom");

  d.severity = tir::Diagnostic::Severity::kWarning;
  d.relation.clear();
  d.stmt = -1;
  EXPECT_EQ(d.ToString(), "module: warning: [type] boom");
}

}  // namespace
}  // namespace dbtoaster
