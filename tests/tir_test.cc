// Typed trigger IR tests: sign unification semantics, the masked fallback
// for non-symmetric statement pairs, batch analysis carried on the IR, and
// golden-file checks pinning the stable `dbtc --emit-ir` text for two bench
// queries (vwap: hybrid re-evaluation + init-on-access map; best_bid:
// runtime-signed extreme).
#include "src/compiler/tir.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/ring/expr.h"
#include "src/sql/parser.h"

#ifndef DBT_QUERY_DIR
#define DBT_QUERY_DIR "bench/queries"
#endif
#ifndef DBT_GOLDEN_DIR
#define DBT_GOLDEN_DIR "tests/golden"
#endif

namespace dbtoaster {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compile a dbtc-style script (CREATE TABLEs + SELECTs) like the driver.
compiler::Program CompileScript(const std::string& text) {
  auto script = sql::ParseScript(text);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  Catalog catalog;
  for (const auto& t : script.value().tables) {
    EXPECT_TRUE(catalog.AddRelation(t).ok());
  }
  compiler::Compiler c(catalog);
  size_t qi = 0;
  for (const auto& q : script.value().queries) {
    std::string name = q.name.empty() ? "q" + std::to_string(qi) : q.name;
    EXPECT_TRUE(c.AddQuery(name, *q.select).ok());
    ++qi;
  }
  auto program = c.Compile();
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

compiler::Program CompileSingle(const std::string& schema,
                                const std::string& query) {
  return CompileScript(schema + "\n" + query + ";\n");
}

TEST(TirLower, UnifiesInsertAndDeleteIntoOneSignedTrigger) {
  compiler::Program p = CompileSingle(
      "create table R(A int, B int);",
      "select B, sum(A) from R group by B");
  tir::Module m = tir::Lower(p);
  ASSERT_EQ(m.triggers.size(), 1u);
  const tir::Trigger& t = m.triggers[0];
  EXPECT_EQ(t.relation, "R");
  EXPECT_TRUE(t.has_insert);
  EXPECT_TRUE(t.has_delete);
  ASSERT_EQ(t.params.size(), 2u);
  EXPECT_EQ(t.params[0].name, "a");
  EXPECT_EQ(t.params[0].type, Type::kInt);
  // Every statement unified: executes for both signs, RHS reads kSignVar.
  ASSERT_FALSE(t.stmts.empty());
  for (const tir::Stmt& s : t.stmts) {
    EXPECT_EQ(s.when, tir::Stmt::When::kBoth) << s.rendering;
    EXPECT_TRUE(s.sign_dependent) << s.rendering;
    EXPECT_TRUE(s.var_types.count(tir::kSignVar)) << s.rendering;
  }
  EXPECT_EQ(m.FindTrigger("R"), &t);
  EXPECT_EQ(m.FindTrigger("NOPE"), nullptr);
}

TEST(TirLower, TypesParametersFromCatalog) {
  compiler::Program p = CompileSingle(
      "create table S(NAME varchar, PRICE double, DAY date);",
      "select sum(PRICE) from S");
  tir::Module m = tir::Lower(p);
  ASSERT_EQ(m.triggers.size(), 1u);
  const tir::Trigger& t = m.triggers[0];
  ASSERT_EQ(t.params.size(), 3u);
  EXPECT_EQ(t.params[0].type, Type::kString);
  EXPECT_EQ(t.params[1].type, Type::kDouble);
  EXPECT_EQ(t.params[2].type, Type::kDate);
  for (const tir::Stmt& s : t.stmts) {
    auto it = s.var_types.find(t.params[1].name);
    ASSERT_NE(it, s.var_types.end());
    EXPECT_EQ(it->second, Type::kDouble);
  }
}

TEST(TirLower, ExtremeStatementsCarryRuntimeSign) {
  compiler::Program p = CompileSingle("create table R(A int);",
                                      "select max(A) from R");
  tir::Module m = tir::Lower(p);
  ASSERT_EQ(m.triggers.size(), 1u);
  bool saw_extreme = false;
  for (const tir::Stmt& s : m.triggers[0].stmts) {
    if (s.stmt.kind != compiler::Statement::Kind::kExtreme) continue;
    saw_extreme = true;
    EXPECT_EQ(s.when, tir::Stmt::When::kBoth);
    EXPECT_TRUE(s.extreme_runtime_sign);
  }
  EXPECT_TRUE(saw_extreme);
}

TEST(TirLower, BatchAnalysisMatchesTriggerShape) {
  // mm-style two-stream join: fully parameter-bound point accesses.
  compiler::Program p = CompileSingle(
      "create table R(A int, B int); create table S(B int, C int);",
      "select sum(R.A * S.C) from R, S where R.B = S.B");
  tir::Module m = tir::Lower(p);
  for (const tir::Trigger& t : m.triggers) {
    EXPECT_TRUE(t.vectorizable) << t.signature;
    EXPECT_TRUE(t.parallel_safe) << t.signature;
  }
}

TEST(TirLower, OrderProductFactorsIsDeterministic) {
  compiler::Program p = CompileSingle(
      "create table R(A int, B int); create table S(B int, C int);",
      "select sum(R.A * S.C) from R, S where R.B = S.B");
  for (const compiler::Trigger& t : p.triggers) {
    std::set<std::string> bound(t.params.begin(), t.params.end());
    bound.insert(tir::kSignVar);
    for (const compiler::Statement& st : t.statements) {
      if (st.rhs == nullptr || st.rhs->kind != ring::ExprKind::kProd) {
        continue;
      }
      auto a = tir::OrderProductFactors(st.rhs->children, bound);
      auto b = tir::OrderProductFactors(st.rhs->children, bound);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(ring::ExprEquals(*a[i], *b[i]));
      }
    }
  }
}

// ---- golden files: the stable `dbtc --emit-ir` dump --------------------

class TirGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(TirGolden, EmitIrTextMatchesGolden) {
  const std::string name = GetParam();
  compiler::Program p =
      CompileScript(ReadFile(std::string(DBT_QUERY_DIR) + "/" + name +
                             ".sql"));
  tir::Module m = tir::Lower(p);
  const std::string want =
      ReadFile(std::string(DBT_GOLDEN_DIR) + "/" + name + ".ir");
  EXPECT_EQ(m.ToText(), want)
      << "IR drift for " << name
      << "; if intentional, regenerate with: dbtc bench/queries/" << name
      << ".sql --emit-ir -o tests/golden/" << name << ".ir";
}

INSTANTIATE_TEST_SUITE_P(BenchQueries, TirGolden,
                         ::testing::Values("vwap", "best_bid", "q6s", "q12s"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace dbtoaster
