// Randomized property suite for the open-addressing map core
// (src/codegen/dbt_flat_map.h): FlatMap/FlatSet hammered against
// std::unordered_map/std::set reference models through interleaved
// add/set/erase/clear, across rehash boundaries, backward-shift deletion
// chains, string keys under the pool allocator, and the zero-erasure
// semantics of dbt::Map / runtime::ValueMap built on top.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/codegen/dbt_flat_map.h"
#include "src/codegen/dbtoaster_runtime.h"
#include "src/common/rng.h"
#include "src/common/value.h"
#include "src/runtime/value_map.h"

namespace dbtoaster {
namespace {

using IntKey = std::tuple<int64_t>;
using StrKey = std::tuple<std::string, int64_t>;

// ---------------------------------------------------------------------------
// Model equivalence helpers.
// ---------------------------------------------------------------------------

template <typename Flat, typename Ref>
void ExpectSameContents(const Flat& flat, const Ref& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  size_t seen = 0;
  for (const auto& e : flat) {
    auto it = ref.find(e.first);
    ASSERT_TRUE(it != ref.end());
    EXPECT_EQ(e.second, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, ref.size());
  for (const auto& [k, v] : ref) {
    const auto* got = flat.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, v);
  }
}

TEST(FlatMap, RandomizedAgainstUnorderedMapIntKeys) {
  Rng rng(101);
  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> flat;
  std::unordered_map<IntKey, int64_t, dbt::TupleHash> ref;

  for (int round = 0; round < 40000; ++round) {
    // Narrow key domain => plenty of hits, erases and probe-chain overlap.
    IntKey k{rng.Range(0, 200)};
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      int64_t v = rng.Range(-3, 3);
      auto [i, inserted] = flat.try_emplace(k, v);
      if (!inserted) flat.value_at(i) = v;
      ref[k] = v;
    } else if (dice < 0.75) {
      EXPECT_EQ(flat.erase(k), ref.erase(k) > 0);
    } else if (dice < 0.9975) {
      const int64_t* got = flat.find(k);
      auto it = ref.find(k);
      ASSERT_EQ(got != nullptr, it != ref.end());
      if (got != nullptr) {
        EXPECT_EQ(*got, it->second);
      }
      EXPECT_EQ(flat.contains(k), it != ref.end());
    } else {
      flat.clear();
      ref.clear();
    }
    if (round % 5000 == 0) ExpectSameContents(flat, ref);
  }
  ExpectSameContents(flat, ref);
}

TEST(FlatMap, RehashBoundariesPreserveContents) {
  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> flat;
  std::unordered_map<IntKey, int64_t, dbt::TupleHash> ref;
  // Push through many doublings, checking at each power-of-two boundary.
  for (int64_t i = 0; i < 5000; ++i) {
    flat.try_emplace(IntKey{i}, i * 7);
    ref[IntKey{i}] = i * 7;
    if ((i & (i + 1)) == 0) ExpectSameContents(flat, ref);
  }
  ExpectSameContents(flat, ref);
  // Then drain fully through backward-shift deletion.
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(flat.erase(IntKey{i}));
  }
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.find(IntKey{123}), nullptr);
}

TEST(FlatMap, BackwardShiftDeletionKeepsChainsReachable) {
  // Colliding-by-construction workload: a tiny table with dense keys forces
  // long probe chains; erasing from the middle must keep the tail findable.
  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> flat;
  for (int64_t i = 0; i < 64; ++i) flat.try_emplace(IntKey{i}, i);
  Rng rng(202);
  std::set<int64_t> live;
  for (int64_t i = 0; i < 64; ++i) live.insert(i);
  while (!live.empty()) {
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.Uniform(live.size())));
    ASSERT_TRUE(flat.erase(IntKey{*it}));
    live.erase(it);
    for (int64_t k : live) {
      const int64_t* v = flat.find(IntKey{k});
      ASSERT_NE(v, nullptr) << "lost key " << k;
      EXPECT_EQ(*v, k);
    }
  }
  EXPECT_TRUE(flat.empty());
}

TEST(FlatMap, StringKeysUnderPoolAllocator) {
  Rng rng(303);
  dbt::FlatMap<StrKey, int64_t, dbt::TupleHash> flat;
  std::map<StrKey, int64_t> ref;
  auto make_key = [&](int64_t i) {
    // Mix SSO-sized and spilled strings.
    std::string s = "k" + std::to_string(i % 97);
    if (i % 3 == 0) s += std::string(40, 'x');
    return StrKey{s, i % 11};
  };
  for (int round = 0; round < 20000; ++round) {
    StrKey k = make_key(rng.Range(0, 500));
    if (rng.Chance(0.6)) {
      int64_t v = rng.Range(1, 100);
      auto [i, inserted] = flat.try_emplace(k, v);
      if (!inserted) flat.value_at(i) = v;
      ref[k] = v;
    } else {
      EXPECT_EQ(flat.erase(k), ref.erase(k) > 0);
    }
  }
  ExpectSameContents(flat, ref);
  EXPECT_GT(flat.pool_bytes(), 0u);
}

TEST(FlatSet, RandomizedAgainstSet) {
  Rng rng(404);
  dbt::Slab slab;
  dbt::FlatSet<IntKey, dbt::TupleHash> fs(&slab);
  std::set<IntKey> ref;
  for (int round = 0; round < 20000; ++round) {
    IntKey k{rng.Range(0, 300)};
    if (rng.Chance(0.55)) {
      EXPECT_EQ(fs.insert(k), ref.insert(k).second);
    } else {
      EXPECT_EQ(fs.erase(k), ref.erase(k) > 0);
    }
    EXPECT_EQ(fs.contains(k), ref.count(k) > 0);
  }
  ASSERT_EQ(fs.size(), ref.size());
  for (const IntKey& k : fs) EXPECT_TRUE(ref.count(k) > 0);
  EXPECT_GT(slab.reserved_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// dbt::Map semantics (zero erasure, Upd results) on the flat core.
// ---------------------------------------------------------------------------

TEST(DbtMap, ZeroErasureMatchesReferenceCounts) {
  Rng rng(505);
  dbt::Map<IntKey, int64_t> m;
  std::unordered_map<IntKey, int64_t, dbt::TupleHash> ref;
  for (int round = 0; round < 30000; ++round) {
    IntKey k{rng.Range(0, 150)};
    int64_t d = rng.Range(-2, 2);
    dbt::Upd r = m.add(k, d);
    if (d == 0) {
      EXPECT_EQ(r, dbt::Upd::kUnchanged);
    } else {
      auto [it, inserted] = ref.try_emplace(k, 0);
      it->second += d;
      if (it->second == 0) {
        ref.erase(it);
        EXPECT_EQ(r, dbt::Upd::kErased);
      } else {
        EXPECT_EQ(r, dbt::Upd::kLive);
      }
    }
    EXPECT_EQ(m.get(k), ref.count(k) ? ref[k] : 0);
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& e : m.entries()) {
    ASSERT_TRUE(ref.count(e.first));
    EXPECT_NE(e.second, 0) << "zero entry retained";
    EXPECT_EQ(e.second, ref[e.first]);
  }
}

TEST(DbtMap, SetZeroErasesAndReportsUpd) {
  dbt::Map<IntKey, int64_t> m;
  EXPECT_EQ(m.set(IntKey{1}, 5), dbt::Upd::kLive);
  EXPECT_EQ(m.get(IntKey{1}), 5);
  EXPECT_EQ(m.set(IntKey{1}, 0), dbt::Upd::kErased);
  EXPECT_FALSE(m.contains(IntKey{1}));
  EXPECT_EQ(m.size(), 0u);
}

TEST(DbtSliceIndex, EagerEraseLeavesNoStaleKeys) {
  using Prefix = std::tuple<int64_t>;
  using Full = std::tuple<int64_t, int64_t>;
  dbt::SliceIndex<Prefix, Full> idx;
  idx.insert(Prefix{1}, Full{1, 10});
  idx.insert(Prefix{1}, Full{1, 11});
  idx.insert(Prefix{1}, Full{1, 10});  // duplicate insert dedups
  idx.insert(Prefix{2}, Full{2, 20});
  ASSERT_NE(idx.lookup(Prefix{1}), nullptr);
  EXPECT_EQ(idx.lookup(Prefix{1})->size(), 2u);

  idx.erase(Prefix{1}, Full{1, 10});
  ASSERT_NE(idx.lookup(Prefix{1}), nullptr);
  EXPECT_EQ(idx.lookup(Prefix{1})->size(), 1u);
  EXPECT_FALSE(idx.lookup(Prefix{1})->contains(Full{1, 10}));

  // Erasing the last full key removes the prefix entirely.
  idx.erase(Prefix{1}, Full{1, 11});
  EXPECT_EQ(idx.lookup(Prefix{1}), nullptr);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_GT(idx.bytes(), 0u);
}

TEST(DbtExtremeMap, LiveCountAnswersDebtGroupsWithoutValues) {
  dbt::ExtremeMap<IntKey, int64_t> m;
  int64_t out = 0;
  // A pure debt (delete before insert) must report "no live value".
  m.remove(IntKey{1}, 42);
  EXPECT_FALSE(m.min(IntKey{1}, &out));
  EXPECT_FALSE(m.max(IntKey{1}, &out));
  // The matching insert cancels the debt entirely.
  m.add(IntKey{1}, 42);
  EXPECT_FALSE(m.min(IntKey{1}, &out));
  EXPECT_EQ(m.size(), 0u);

  m.add(IntKey{2}, 5);
  m.add(IntKey{2}, 9);
  m.remove(IntKey{2}, 7);  // debt on 7 hides it from min/max
  ASSERT_TRUE(m.min(IntKey{2}, &out));
  EXPECT_EQ(out, 5);
  ASSERT_TRUE(m.max(IntKey{2}, &out));
  EXPECT_EQ(out, 9);
  m.remove(IntKey{2}, 5);
  ASSERT_TRUE(m.min(IntKey{2}, &out));
  EXPECT_EQ(out, 9);
}

// ---------------------------------------------------------------------------
// Interpreted layer: FlatValueMap-backed ValueMap with dynamic row keys.
// ---------------------------------------------------------------------------

TEST(FlatValueMap, RandomizedValueMapAgainstReference) {
  Rng rng(606);
  runtime::ValueMap m("m", 2, Type::kInt);
  std::map<std::pair<int64_t, int64_t>, int64_t> ref;
  for (int round = 0; round < 30000; ++round) {
    int64_t a = rng.Range(0, 40);
    int64_t b = rng.Range(0, 40);
    Row key{Value(a), Value(b)};
    int64_t d = rng.Range(-2, 2);
    if (rng.Chance(0.85)) {
      m.Add(key, Value(d));
      if (d != 0) {
        auto& slot = ref[{a, b}];
        slot += d;
        if (slot == 0) ref.erase({a, b});
      }
    } else {
      int64_t v = rng.Range(0, 5);
      m.Set(key, Value(v));
      if (v == 0) {
        ref.erase({a, b});
      } else {
        ref[{a, b}] = v;
      }
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  for (const auto& [key, value] : m.entries()) {
    auto it = ref.find({key[0].AsInt(), key[1].AsInt()});
    ASSERT_TRUE(it != ref.end());
    EXPECT_EQ(value.AsInt(), it->second);
  }
}

TEST(FlatValueMap, NumericKeyEquivalenceAcrossIntAndDouble) {
  runtime::ValueMap m("m", 1, Type::kInt);
  m.Set({Value(int64_t{2})}, Value(7));
  // 2.0 == 2 under Value::Compare, so it must hit the same entry.
  EXPECT_EQ(m.Get({Value(2.0)}).AsInt(), 7);
  m.Add({Value(2.0)}, Value(-7));
  EXPECT_EQ(m.size(), 0u);
}

TEST(RuntimeExtremeMap, LiveCountsAndO1Size) {
  runtime::ExtremeMap m("x", 1, Type::kInt);
  Row g{Value(1)};
  m.Remove(g, Value(10));  // debt
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.Min(g).has_value());
  m.Add(g, Value(3));
  m.Add(g, Value(8));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Min(g)->AsInt(), 3);
  EXPECT_EQ(m.Max(g)->AsInt(), 8);
  m.Add(g, Value(10));  // cancels the debt; still not live
  EXPECT_EQ(m.size(), 2u);
  m.Remove(g, Value(3));
  EXPECT_EQ(m.Min(g)->AsInt(), 8);
  EXPECT_EQ(m.size(), 1u);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.NumGroups(), 0u);
}

TEST(Slab, RecyclesChunksAndReleasesDedicatedBlocks) {
  dbt::Slab slab;
  void* a = slab.Allocate(100);  // 128-byte class
  ASSERT_NE(a, nullptr);
  const size_t live_after_a = slab.live_bytes();
  slab.Deallocate(a, 100);
  EXPECT_LT(slab.live_bytes(), live_after_a);
  void* b = slab.Allocate(100);
  EXPECT_EQ(a, b) << "freed chunk not recycled";
  slab.Deallocate(b, 100);

  // Large allocations get dedicated blocks, returned eagerly.
  const size_t reserved_before = slab.reserved_bytes();
  void* big = slab.Allocate(1 << 20);
  EXPECT_GE(slab.reserved_bytes(), reserved_before + (1u << 20));
  slab.Deallocate(big, 1 << 20);
  EXPECT_EQ(slab.reserved_bytes(), reserved_before);
}

TEST(FlatMap, CopyAndMoveSemantics) {
  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> a;
  for (int64_t i = 0; i < 100; ++i) a.try_emplace(IntKey{i}, i * 3);

  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> copy(a);
  ASSERT_EQ(copy.size(), 100u);
  copy.erase(IntKey{5});
  EXPECT_EQ(copy.size(), 99u);
  EXPECT_NE(a.find(IntKey{5}), nullptr) << "copy aliases source";

  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> moved(std::move(a));
  ASSERT_EQ(moved.size(), 100u);
  EXPECT_EQ(*moved.find(IntKey{42}), 126);

  dbt::FlatMap<IntKey, int64_t, dbt::TupleHash> assigned;
  assigned.try_emplace(IntKey{-1}, 1);
  assigned = copy;
  EXPECT_EQ(assigned.size(), 99u);
  EXPECT_EQ(assigned.find(IntKey{-1}), nullptr);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 100u);
  EXPECT_EQ(*assigned.find(IntKey{5}), 15);
}

}  // namespace
}  // namespace dbtoaster
