// String-typed columns through the whole pipeline (maps keyed by strings,
// string equality predicates), and the dbtc CLI surface (--trace/--program).
#include <gtest/gtest.h>

#include <cstdio>
#include <sys/wait.h>

#include "src/baseline/reeval_engine.h"
#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"

#ifndef DBTC_BINARY
#define DBTC_BINARY ""
#endif

namespace dbtoaster {
namespace {

Catalog EmployeeCatalog() {
  Catalog cat;
  (void)cat.AddRelation(Schema("E", {{"NAME", Type::kString},
                                     {"DEPT", Type::kString},
                                     {"SALARY", Type::kInt}}));
  return cat;
}

TEST(Strings, GroupByStringKeyMaintained) {
  Catalog cat = EmployeeCatalog();
  auto program = compiler::CompileQuery(
      cat, "q", "select DEPT, sum(SALARY), count(*) from E group by DEPT");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine e(std::move(program).value());

  (void)e.OnInsert("E", {Value("ann"), Value("eng"), Value(100)});
  (void)e.OnInsert("E", {Value("bob"), Value("eng"), Value(80)});
  (void)e.OnInsert("E", {Value("cat"), Value("ops"), Value(90)});
  auto v = e.View("q");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto rows = v.value().SortedRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, (Row{Value("eng"), Value(180), Value(2)}));
  EXPECT_EQ(rows[1].first, (Row{Value("ops"), Value(90), Value(1)}));

  (void)e.OnDelete("E", {Value("bob"), Value("eng"), Value(80)});
  rows = e.View("q").value().SortedRows();
  EXPECT_EQ(rows[0].first, (Row{Value("eng"), Value(100), Value(1)}));
}

TEST(Strings, StringFilterAndJoinAgainstOracle) {
  Catalog cat;
  (void)cat.AddRelation(Schema("E", {{"NAME", Type::kString},
                                     {"DEPT", Type::kString},
                                     {"SALARY", Type::kInt}}));
  (void)cat.AddRelation(
      Schema("D", {{"DEPT", Type::kString}, {"BUDGET", Type::kInt}}));
  const char* sql =
      "select sum(E.SALARY * D.BUDGET) from E, D "
      "where E.DEPT = D.DEPT and E.NAME <> 'temp'";
  auto program = compiler::CompileQuery(cat, "q", sql);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine engine(std::move(program).value());
  baseline::ReevalEngine oracle(cat, /*eager=*/false);
  ASSERT_TRUE(oracle.AddQuery("q", sql).ok());

  Rng rng(21);
  const char* names[] = {"ann", "bob", "temp", "dee"};
  const char* depts[] = {"eng", "ops", "hr"};
  std::vector<Event> live;
  for (int i = 0; i < 200; ++i) {
    Event ev = Event::Insert("", {});
    if (!live.empty() && rng.Chance(0.3)) {
      size_t pick = rng.Uniform(live.size());
      ev = Event::Delete(live[pick].relation, live[pick].tuple);
      live.erase(live.begin() + static_cast<long>(pick));
    } else if (rng.Chance(0.6)) {
      ev = Event::Insert("E", {Value(names[rng.Uniform(4)]),
                               Value(depts[rng.Uniform(3)]),
                               Value(rng.Range(1, 100))});
      live.push_back(ev);
    } else {
      ev = Event::Insert("D", {Value(depts[rng.Uniform(3)]),
                               Value(rng.Range(1, 10))});
      live.push_back(ev);
    }
    ASSERT_TRUE(engine.OnEvent(ev).ok());
    ASSERT_TRUE(oracle.OnEvent(ev).ok());
    auto got = engine.ViewScalar("q");
    auto want = oracle.View("q");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got.value(), want.value().rows[0].first[0])
        << "diverged at event " << i << ": " << ev.ToString();
  }
}

TEST(DbtcCli, TraceAndProgramModes) {
  if (std::string(DBTC_BINARY).empty()) {
    GTEST_SKIP() << "dbtc path not configured";
  }
  std::string dir = ::testing::TempDir() + "/dbtc_cli";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  {
    FILE* f = fopen((dir + "/s.sql").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("create table R(A int, B int);\nselect B, sum(A) from R group by B;\n",
          f);
    fclose(f);
  }
  auto run = [&](const std::string& args) {
    std::string cmd =
        std::string(DBTC_BINARY) + " " + dir + "/s.sql " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    std::string out;
    char buf[4096];
    while (fgets(buf, sizeof(buf), pipe)) out += buf;
    int rc = pclose(pipe);
    return std::make_pair(rc, out);
  };
  auto [rc1, trace] = run("--trace");
  EXPECT_EQ(rc1, 0);
  EXPECT_NE(trace.find("level"), std::string::npos);
  auto [rc2, listing] = run("--program");
  EXPECT_EQ(rc2, 0);
  EXPECT_NE(listing.find("on_insert_R"), std::string::npos);
  auto [rc3, code] = run("");
  EXPECT_EQ(rc3, 0);
  EXPECT_NE(code.find("struct Program"), std::string::npos);
  // The generated program implements the unified batch-driver interface.
  EXPECT_NE(code.find(": public dbt::StreamProgram"), std::string::npos);
  EXPECT_NE(code.find("size_t on_batch(const dbt::EventBatch& batch)"),
            std::string::npos);
  // Error paths exit non-zero with a message.
  std::string bad = std::string(DBTC_BINARY) + " /nonexistent.sql 2>&1";
  EXPECT_NE(system(bad.c_str()), 0);
}

TEST(DbtcCli, DiagnosticsAndVersion) {
  if (std::string(DBTC_BINARY).empty()) {
    GTEST_SKIP() << "dbtc path not configured";
  }
  std::string dir = ::testing::TempDir() + "/dbtc_cli_diag";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  auto run = [&](const std::string& args) {
    std::string cmd = std::string(DBTC_BINARY) + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    std::string out;
    char buf[4096];
    while (fgets(buf, sizeof(buf), pipe)) out += buf;
    int rc = pclose(pipe);
    return std::make_pair(WEXITSTATUS(rc), out);
  };

  // --version reports and exits cleanly.
  auto [rc_v, version] = run("--version");
  EXPECT_EQ(rc_v, 0);
  EXPECT_NE(version.find("dbtc "), std::string::npos);

  // Unknown options are named, with usage and exit code 2 — not a bare
  // usage line.
  auto [rc_u, unknown] = run("--frobnicate");
  EXPECT_EQ(rc_u, 2);
  EXPECT_NE(unknown.find("--frobnicate"), std::string::npos);
  EXPECT_NE(unknown.find("usage:"), std::string::npos);

  // Parse errors carry file and line:column and exit non-zero.
  {
    FILE* f = fopen((dir + "/bad.sql").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("create table R(A int, B int);\nselect B frm R;\n", f);
    fclose(f);
  }
  auto [rc_p, parse] = run(dir + "/bad.sql");
  EXPECT_EQ(rc_p, 1);
  EXPECT_NE(parse.find("bad.sql"), std::string::npos);
  EXPECT_NE(parse.find("line 2:"), std::string::npos);

  // Missing input: usage, exit 2.
  auto [rc_m, missing] = run("");
  EXPECT_EQ(rc_m, 2);
  EXPECT_NE(missing.find("usage:"), std::string::npos);
}

TEST(DbtcCli, VerifyModeExitCodesAndDiagnosticShape) {
  if (std::string(DBTC_BINARY).empty()) {
    GTEST_SKIP() << "dbtc path not configured";
  }
  std::string dir = ::testing::TempDir() + "/dbtc_cli_verify";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  auto run = [&](const std::string& args) {
    std::string cmd = std::string(DBTC_BINARY) + " " + args + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    std::string out;
    char buf[4096];
    while (fgets(buf, sizeof(buf), pipe)) out += buf;
    int rc = pclose(pipe);
    return std::make_pair(WEXITSTATUS(rc), out);
  };

  {
    FILE* f = fopen((dir + "/ok.sql").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("create table R(A int, B int);\nselect B, sum(A) from R group by B;\n",
          f);
    fclose(f);
  }

  // A sound script verifies clean: exit 0 with a summary naming the file,
  // matching the "dbtc: <file>: <message>" diagnostic shape of parse
  // errors.
  auto [rc_ok, ok_out] = run(dir + "/ok.sql --verify");
  EXPECT_EQ(rc_ok, 0);
  EXPECT_NE(ok_out.find("ok.sql"), std::string::npos);
  EXPECT_NE(ok_out.find("verification passed"), std::string::npos);
  EXPECT_NE(ok_out.find("0 errors"), std::string::npos);

  // Strict mode on a clean module still exits 0.
  auto [rc_strict, strict_out] = run(dir + "/ok.sql --verify=strict");
  EXPECT_EQ(rc_strict, 0);
  EXPECT_NE(strict_out.find("verification passed"), std::string::npos);

  // --verify on a script that does not compile reports like any other
  // input error: exit 1, file-prefixed diagnostic with line:column.
  {
    FILE* f = fopen((dir + "/bad.sql").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("create table R(A int);\nselect B frm R;\n", f);
    fclose(f);
  }
  auto [rc_bad, bad_out] = run(dir + "/bad.sql --verify");
  EXPECT_EQ(rc_bad, 1);
  EXPECT_NE(bad_out.find("bad.sql"), std::string::npos);
  EXPECT_NE(bad_out.find("line 2:"), std::string::npos);

  // Normal compilation also runs the verifier (hard gate) and still
  // succeeds end to end on a sound script.
  auto [rc_gen, gen_out] = run(dir + "/ok.sql");
  EXPECT_EQ(rc_gen, 0);
  EXPECT_NE(gen_out.find("struct Program"), std::string::npos);
}

}  // namespace
}  // namespace dbtoaster
