// Batch-ingestion semantics of the unified StreamEngine API: for every
// engine, interleaved insert/delete batches must leave exactly the views
// that one-at-a-time replay of the same events produces — including MIN/MAX
// under delete-heavy batches (where grouping reorders deletes ahead of
// inserts) and slice-index consistency after batched mutation of
// init-on-access maps.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/catalog/catalog.h"
#include "src/codegen/dbtoaster_runtime.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::EventBatch;
using runtime::StreamEngine;

std::string Canon(const exec::QueryResult& r) {
  std::string s;
  for (const auto& [row, mult] : r.SortedRows()) {
    s += "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      if (row[i].is_string()) {
        s += row[i].ToString();
      } else {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
        s += buf;
      }
    }
    s += ")";
  }
  return s;
}

Catalog MakeCatalog(const char* schema) {
  auto script = sql::ParseScript(schema);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  Catalog cat;
  for (const auto& t : script.value().tables) {
    EXPECT_TRUE(cat.AddRelation(t).ok());
  }
  return cat;
}

/// A well-formed random stream: inserts of random tuples, deletes only of
/// live tuples (arbitrary lifetimes).
std::vector<Event> RandomStream(const Catalog& cat, Rng* rng, int n,
                                int distinct, double p_delete) {
  std::vector<Event> events, live;
  for (int i = 0; i < n; ++i) {
    if (!live.empty() && rng->Chance(p_delete)) {
      size_t pick = rng->Uniform(live.size());
      events.push_back(
          Event::Delete(live[pick].relation, live[pick].tuple));
      live.erase(live.begin() + static_cast<long>(pick));
      continue;
    }
    const auto& rels = cat.relations();
    const Schema& schema = rels[rng->Uniform(rels.size())];
    Row tuple;
    for (size_t col = 0; col < schema.num_columns(); ++col) {
      tuple.push_back(Value(rng->Range(0, distinct - 1)));
    }
    events.push_back(Event::Insert(schema.name(), std::move(tuple)));
    live.push_back(events.back());
  }
  return events;
}

struct BatchCase {
  const char* name;
  const char* schema;
  const char* query;
  double p_delete;
};

// Cases chosen to hit every batching path: the vectorized group loop
// (fig2_join3, grouped), the sequential fallback for self-reading triggers
// (self_join), extreme multisets under delete-heavy mixes (max_grouped,
// min_global), and the hybrid/deferred-reeval path with slice indexes
// (vwap_shape).
const BatchCase kCases[] = {
    {"fig2_join3",
     "create table R(A int, B int); create table S(B int, C int); "
     "create table T(C int, D int);",
     "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C",
     0.35},
    {"grouped",
     "create table R(A int, B int);",
     "select B, sum(A), count(*) from R group by B", 0.35},
    {"self_join",
     "create table R(A int, B int);",
     "select sum(r1.A * r2.A) from R r1, R r2 where r1.B = r2.B", 0.35},
    {"max_grouped",
     "create table R(A int, B int);",
     "select B, max(A) from R group by B", 0.55},
    {"min_global",
     "create table R(A int, B int);",
     "select min(A) from R", 0.55},
    {"vwap_shape",
     "create table BIDS(PRICE int, VOLUME int);",
     "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 where "
     "(select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) < 10",
     0.35},
};

class BatchSemantics : public ::testing::TestWithParam<
                           std::tuple<size_t /*case*/, uint64_t /*seed*/>> {};

TEST_P(BatchSemantics, BatchedEqualsOneAtATimeReplay) {
  const BatchCase& c = kCases[std::get<0>(GetParam())];
  uint64_t seed = std::get<1>(GetParam());
  Catalog cat = MakeCatalog(c.schema);

  auto p1 = compiler::CompileQuery(cat, "q", c.query);
  auto p2 = compiler::CompileQuery(cat, "q", c.query);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  runtime::Engine batched(std::move(p1).value());
  runtime::Engine sequential(std::move(p2).value());

  Rng rng(seed);
  std::vector<Event> events = RandomStream(cat, &rng, 300, 4, c.p_delete);

  size_t i = 0;
  while (i < events.size()) {
    size_t batch_size = 1 + rng.Uniform(17);
    EventBatch batch;
    for (size_t j = 0; j < batch_size && i < events.size(); ++j, ++i) {
      ASSERT_TRUE(sequential.OnEvent(events[i]).ok())
          << c.name << " event " << i;
      batch.Add(events[i]);
    }
    ASSERT_TRUE(batched.ApplyBatch(std::move(batch)).ok())
        << c.name << " batch ending at event " << i;

    auto got = batched.View("q");
    auto want = sequential.View("q");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(Canon(got.value()), Canon(want.value()))
        << c.name << " diverged after batch ending at event " << i;
  }
  EXPECT_EQ(batched.profile().events, sequential.profile().events);
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
  return std::string(kCases[std::get<0>(info.param)].name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, BatchSemantics,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kCases)),
                       ::testing::Values(11u, 12u, 13u)),
    CaseName);

// A batch whose grouping reorders a delete ahead of its own insert: the
// delete group exists first (delete of a pre-batch tuple), so the in-batch
// insert+delete pair lands delete-first. The MIN/MAX multiset must tolerate
// the transient negative count and converge to the replayed state.
TEST(BatchSemantics, ExtremeMapSurvivesReorderedInBatchDelete) {
  Catalog cat = MakeCatalog("create table R(A int, B int);");
  auto p1 = compiler::CompileQuery(cat, "q", "select max(A) from R");
  auto p2 = compiler::CompileQuery(cat, "q", "select max(A) from R");
  ASSERT_TRUE(p1.ok() && p2.ok());
  runtime::Engine batched(std::move(p1).value());
  runtime::Engine sequential(std::move(p2).value());

  for (StreamEngine* e : {static_cast<StreamEngine*>(&batched),
                          static_cast<StreamEngine*>(&sequential)}) {
    ASSERT_TRUE(e->OnInsert("R", {Value(3), Value(0)}).ok());
  }

  // Sequential order: delete R(3,0), insert R(9,1), delete R(9,1).
  std::vector<Event> tail = {Event::Delete("R", {Value(3), Value(0)}),
                             Event::Insert("R", {Value(9), Value(1)}),
                             Event::Delete("R", {Value(9), Value(1)})};
  EventBatch batch;
  for (const Event& ev : tail) {
    batch.Add(ev);
    ASSERT_TRUE(sequential.OnEvent(ev).ok());
  }
  // Grouping puts both deletes before the insert.
  ASSERT_EQ(batch.groups().size(), 2u);
  ASSERT_EQ(batch.groups()[0].kind, EventKind::kDelete);
  ASSERT_TRUE(batched.ApplyBatch(std::move(batch)).ok());

  auto got = batched.View("q");
  auto want = sequential.View("q");
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(Canon(got.value()), Canon(want.value()));

  // Both books are empty again: max falls back to the typed zero.
  EXPECT_EQ(batched.ViewScalar("q").value(), Value(int64_t{0}));
}

TEST(ExtremeMap, TotalizedCounts) {
  runtime::ExtremeMap m("m", 1, Type::kInt);
  Row k = {Value(1)};
  // Remove before add: transient negative count, then cancellation.
  m.Remove(k, Value(7));
  EXPECT_FALSE(m.Min(k).has_value());
  m.Add(k, Value(7));
  EXPECT_FALSE(m.Min(k).has_value());  // -1 + 1 == 0: still absent
  m.Add(k, Value(7));
  ASSERT_TRUE(m.Min(k).has_value());
  EXPECT_EQ(m.Min(k).value(), Value(7));
  // A negative count never surfaces as a MIN/MAX candidate.
  m.Remove(k, Value(3));
  ASSERT_TRUE(m.Min(k).has_value());
  EXPECT_EQ(m.Min(k).value(), Value(7));
  EXPECT_EQ(m.size(), 1u);
}

// The baselines implement the same ApplyBatch contract: batched ingestion
// through the StreamEngine interface equals their own per-event replay.
TEST(BatchSemantics, BaselinesMatchOwnReplayAndEachOther) {
  const char* schema =
      "create table R(A int, B int); create table S(B int, C int);";
  const char* query =
      "select S.C, sum(R.A) from R, S where R.B = S.B group by S.C";
  Catalog cat = MakeCatalog(schema);

  baseline::ReevalEngine reeval_b(cat), reeval_s(cat);
  baseline::Ivm1Engine ivm1_b(cat), ivm1_s(cat);
  ASSERT_TRUE(reeval_b.AddQuery("q", query).ok());
  ASSERT_TRUE(reeval_s.AddQuery("q", query).ok());
  ASSERT_TRUE(ivm1_b.AddQuery("q", query).ok());
  ASSERT_TRUE(ivm1_s.AddQuery("q", query).ok());
  auto program = compiler::CompileQuery(cat, "q", query);
  ASSERT_TRUE(program.ok());
  runtime::Engine toaster(std::move(program).value());

  std::vector<StreamEngine*> batched = {&reeval_b, &ivm1_b, &toaster};
  std::vector<StreamEngine*> replayed = {&reeval_s, &ivm1_s};

  Rng rng(99);
  std::vector<Event> events = RandomStream(cat, &rng, 240, 3, 0.3);
  size_t i = 0;
  while (i < events.size()) {
    size_t batch_size = 1 + rng.Uniform(13);
    EventBatch batch;
    for (size_t j = 0; j < batch_size && i < events.size(); ++j, ++i) {
      batch.Add(events[i]);
      for (StreamEngine* e : replayed) {
        ASSERT_TRUE(e->OnEvent(events[i]).ok());
      }
    }
    for (StreamEngine* e : batched) {
      EventBatch copy = batch;
      ASSERT_TRUE(e->ApplyBatch(std::move(copy)).ok()) << e->Name();
    }
    std::string want = Canon(reeval_s.View("q").value());
    for (StreamEngine* e : batched) {
      auto got = e->View("q");
      ASSERT_TRUE(got.ok()) << e->Name() << ": " << got.status().ToString();
      ASSERT_EQ(Canon(got.value()), want)
          << e->Name() << " diverged after batch ending at event " << i;
    }
    ASSERT_EQ(Canon(ivm1_s.View("q").value()), want);
  }
}

TEST(EventBatch, GroupsByRelationAndOpInFirstEncounterOrder) {
  EventBatch b;
  b.AddInsert("R", {Value(1)});
  b.AddDelete("S", {Value(2)});
  b.AddInsert("R", {Value(3)});
  b.AddInsert("S", {Value(4)});
  EXPECT_EQ(b.size(), 4u);
  ASSERT_EQ(b.groups().size(), 3u);
  EXPECT_EQ(b.groups()[0].relation, "R");
  EXPECT_EQ(b.groups()[0].kind, EventKind::kInsert);
  EXPECT_EQ(b.groups()[0].rows, 2u);
  EXPECT_EQ(b.groups()[1].relation, "S");
  EXPECT_EQ(b.groups()[1].kind, EventKind::kDelete);
  EXPECT_EQ(b.groups()[2].relation, "S");
  EXPECT_EQ(b.groups()[2].kind, EventKind::kInsert);
  b.Clear();
  EXPECT_TRUE(b.empty());
}

// Round-trip property over the columnar layout on both sides of the
// boundary: random mixed-type tuples pushed through Group::Add/add must
// reassemble exactly via RowAt/row, with column tags fixed by the first
// tuple (later tuples coerce onto the column's type, never retag it).
TEST(EventBatch, ColumnarRoundTripPreservesRandomTypedTuples) {
  Rng rng(0xc01u);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t width = 1 + rng.Uniform(5);
    std::vector<int> kinds;  // 0 int, 1 double, 2 string, 3 date-as-days
    for (size_t c = 0; c < width; ++c) {
      kinds.push_back(static_cast<int>(rng.Uniform(4)));
    }
    auto make_value = [&](int kind) {
      switch (kind) {
        case 1: return Value(static_cast<double>(rng.Range(-50, 50)) / 8.0);
        case 2: return Value("s" + std::to_string(rng.Range(0, 9)));
        case 3: return Value(CivilToDays(1994, 1, 1) + rng.Range(0, 700));
        default: return Value(rng.Range(-100, 100));
      }
    };

    runtime::EventBatch::Group rgroup("R", EventKind::kInsert);
    dbt::EventBatch::Group dgroup;
    std::vector<Row> want;
    const size_t n = 1 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      Row tuple;
      std::vector<dbt::Value> dtuple;
      for (size_t c = 0; c < width; ++c) {
        Value v = make_value(kinds[c]);
        if (v.is_string()) {
          dtuple.emplace_back(v.AsString());
        } else if (v.is_int()) {
          dtuple.emplace_back(v.AsInt());
        } else {
          dtuple.emplace_back(v.AsDouble());
        }
        tuple.push_back(std::move(v));
      }
      rgroup.Add(tuple);
      dgroup.add(dtuple);
      want.push_back(std::move(tuple));
    }

    ASSERT_EQ(rgroup.rows, n);
    ASSERT_EQ(dgroup.rows, n);
    ASSERT_EQ(rgroup.cols.size(), width);
    for (size_t c = 0; c < width; ++c) {
      // Tag fixed by the first tuple; dates share the int64 lane.
      const auto expect_tag = kinds[c] == 1 ? runtime::EventColumn::Tag::kF64
                              : kinds[c] == 2
                                  ? runtime::EventColumn::Tag::kStr
                                  : runtime::EventColumn::Tag::kI64;
      EXPECT_EQ(rgroup.cols[c].tag, expect_tag) << "trial " << trial;
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(rgroup.RowAt(i), want[i]) << "trial " << trial << " row " << i;
      const std::vector<dbt::Value> dback = dgroup.row(i);
      ASSERT_EQ(dback.size(), width);
      for (size_t c = 0; c < width; ++c) {
        if (want[i][c].is_string()) {
          EXPECT_EQ(dbt::AsString(dback[c]), want[i][c].AsString());
        } else if (rgroup.cols[c].tag == runtime::EventColumn::Tag::kF64) {
          EXPECT_EQ(dbt::AsDouble(dback[c]), want[i][c].AsDouble());
        } else {
          EXPECT_EQ(dbt::AsInt(dback[c]), want[i][c].AsInt());
        }
      }
    }
    // The cached row-shim view equals element-wise reassembly.
    const std::vector<Row>& view = rgroup.rows_view();
    ASSERT_EQ(view.size(), n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(view[i], want[i]);
  }
}

// The dbt-side boundary: a hand-written StreamProgram sees the default
// on_batch dispatch exactly once per event, group-ordered.
TEST(DbtStreamProgram, DefaultOnBatchDispatchesGroupwise) {
  struct Recorder : dbt::StreamProgram {
    std::vector<std::string> log;
    bool on_event(const std::string& relation, bool is_insert,
                  const std::vector<dbt::Value>& /*tuple*/) override {
      log.push_back((is_insert ? "+" : "-") + relation);
      return relation != "IGNORED";
    }
    std::vector<std::string> view_names() const override { return {}; }
    std::vector<std::string> view_column_names(
        const std::string&) const override {
      return {};
    }
    std::vector<std::vector<dbt::Value>> view_rows(
        const std::string&) override {
      return {};
    }
    size_t total_map_entries() const override { return 0; }
    size_t state_bytes() const override { return 0; }
  };

  Recorder rec;
  dbt::EventBatch batch;
  batch.add("R", true, {dbt::Value{int64_t{1}}});
  batch.add("IGNORED", true, {});
  batch.add("R", true, {dbt::Value{int64_t{2}}});
  batch.add("R", false, {dbt::Value{int64_t{1}}});
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(rec.on_batch(batch), 3u);
  EXPECT_EQ(rec.log,
            (std::vector<std::string>{"+R", "+R", "+IGNORED", "-R"}));

  // The runtime-side shim drives the same program through StreamEngine.
  runtime::CompiledProgramEngine shim(&rec, "mock");
  EXPECT_EQ(shim.Name(), "mock");
  EXPECT_TRUE(shim.OnInsert("R", {Value(5)}).ok());
  EXPECT_EQ(rec.log.back(), "+R");
  EXPECT_EQ(shim.View("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(shim.StateBytes(), 0u);
}


// ---------------------------------------------------------------------------
// NULL/empty-group semantics at the HAVING / LEFT JOIN boundary: a group
// whose row count returns to zero must vanish from the view — even when the
// HAVING guard references its aggregates (the guard must never resurrect a
// dead group), and even when the group only ever existed through the
// unmatched branch of a LEFT JOIN.
// ---------------------------------------------------------------------------
TEST(BatchSemantics, InsertThenDeleteVanishesUnderHavingAndLeftJoin) {
  Catalog cat = MakeCatalog(
      "create table R(K int, TAG string, V int, D date);"
      "create table S(K int, W int);");
  struct Case {
    const char* label;
    const char* sql;
  };
  const Case kCases[] = {
      // HAVING guard that is TRUE on all-zero aggregates: only the domain
      // may decide liveness.
      {"having_true_on_zero",
       "select R.K, count(*) from R group by R.K having count(*) < 10000"},
      {"having_sum",
       "select R.K, sum(R.V) from R group by R.K having sum(R.V) > 1"},
      // Unmatched-branch-only groups (S stays empty).
      {"left_join",
       "select R.K, count(*) from R left join S on R.K = S.K group by R.K"},
      {"left_join_having",
       "select R.K, count(*) from R left join S on R.K = S.K group by R.K "
       "having count(*) < 10000"},
      // New predicate constructs in the WHERE clause.
      {"like_case",
       "select R.TAG, sum(case when R.V > 2 then R.V else 0 end) from R "
       "where R.TAG like '%a%' or R.D >= DATE '1994-01-01' group by R.TAG"},
  };
  Rng rng(2024);
  for (const Case& c : kCases) {
    for (size_t batch_size : {size_t{1}, size_t{5}, size_t{96}}) {
      auto program = compiler::CompileQuery(cat, "q", c.sql);
      ASSERT_TRUE(program.ok()) << c.label << ": "
                                << program.status().ToString();
      runtime::Engine engine(std::move(program).value());

      std::vector<Event> inserts;
      for (int i = 0; i < 200; ++i) {
        Row r_tuple{Value(rng.Range(0, 5)),
                    Value(std::string(rng.Chance(0.5) ? "alpha" : "BETA")),
                    Value(rng.Range(0, 9)),
                    Value(CivilToDays(1994, 1, 1) + rng.Range(-40, 40))};
        inserts.push_back(Event::Insert("R", std::move(r_tuple)));
        if (rng.Chance(0.3)) {
          inserts.push_back(Event::Insert(
              "S", Row{Value(rng.Range(0, 5)), Value(rng.Range(0, 9))}));
        }
      }
      auto apply_all = [&](bool insert) {
        for (size_t i = 0; i < inserts.size(); i += batch_size) {
          EventBatch batch;
          for (size_t j = i; j < std::min(inserts.size(), i + batch_size);
               ++j) {
            batch.Add(insert ? EventKind::kInsert : EventKind::kDelete,
                      inserts[j].relation, inserts[j].tuple);
          }
          ASSERT_TRUE(engine.ApplyBatch(std::move(batch)).ok()) << c.label;
        }
      };
      apply_all(/*insert=*/true);
      auto mid = engine.View("q");
      ASSERT_TRUE(mid.ok()) << c.label;
      EXPECT_FALSE(mid.value().rows.empty()) << c.label;

      apply_all(/*insert=*/false);
      auto fin = engine.View("q");
      ASSERT_TRUE(fin.ok()) << c.label;
      EXPECT_TRUE(fin.value().rows.empty())
          << c.label << " @batch " << batch_size
          << ": groups must vanish when their count returns to zero, got\n"
          << fin.value().ToString();
      // The maps themselves must prune to empty as well (no zombie keys
      // keeping state resident).
      EXPECT_EQ(engine.TotalMapEntries(), 0u)
          << c.label << " @batch " << batch_size;
    }
  }
}

}  // namespace
}  // namespace dbtoaster
