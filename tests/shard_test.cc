// Shard determinism contract of the parallel ApplyBatch layer: for every
// engine class, the same batched stream must produce byte-identical views
// and identical state_bytes at every worker-pool thread count (the logical
// shard count is fixed; threads only change who replays a shard), and the
// result must equal one-at-a-time sequential replay. Also unit-covers the
// ShardPool scheduling contract and the Sharded<Map> partitioned front.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/gen/mm.hpp"
#include "src/codegen/dbt_select.h"
#include "src/common/rng.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"
#include "src/workload/orderbook.h"

namespace dbtoaster {
namespace {

using runtime::EventBatch;
using runtime::StreamEngine;

std::string Canon(const exec::QueryResult& r) {
  std::string s;
  for (const auto& [row, mult] : r.SortedRows()) {
    s += "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      if (row[i].is_string()) {
        s += row[i].ToString();
      } else {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
        s += buf;
      }
    }
    s += ")";
  }
  return s;
}

/// Restores the pool to single-threaded when a test scope ends, so thread
/// state never leaks into other tests of this binary.
struct PoolGuard {
  ~PoolGuard() { runtime::shard_pool().set_threads(1); }
};

TEST(ShardPool, RunsEveryShardExactlyOnceAtEveryThreadCount) {
  PoolGuard guard;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    runtime::shard_pool().set_threads(threads);
    EXPECT_EQ(runtime::shard_pool().threads(), threads);
    std::atomic<int> counts[runtime::kNumShards] = {};
    runtime::shard_pool().RunShards(runtime::kNumShards, [&](size_t s) {
      counts[s].fetch_add(1);
    });
    for (size_t s = 0; s < runtime::kNumShards; ++s) {
      EXPECT_EQ(counts[s].load(), 1) << "threads=" << threads << " s=" << s;
    }
    // Repeated dispatch on the same persistent workers.
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
      runtime::shard_pool().RunShards(runtime::kNumShards,
                                      [&](size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 50 * static_cast<int>(runtime::kNumShards));
  }
}

TEST(ShardPool, ShardsWithinAWorkerRunInIncreasingOrder) {
  PoolGuard guard;
  runtime::shard_pool().set_threads(2);
  std::vector<std::vector<size_t>> per_thread_order(2);
  std::mutex mu;
  runtime::shard_pool().RunShards(runtime::kNumShards, [&](size_t s) {
    // Worker identity = s % threads under the static stripe schedule.
    std::lock_guard<std::mutex> lk(mu);
    per_thread_order[s % 2].push_back(s);
  });
  for (const std::vector<size_t>& order : per_thread_order) {
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

TEST(Sharded, RoutesByKeyComponentAndSumsAcrossParts) {
  dbt::Sharded<dbt::Map<std::tuple<int64_t, int64_t>, int64_t>, 0> m;
  for (int64_t k = 0; k < 200; ++k) {
    m.add(std::make_tuple(k, k * 7), k + 1);
  }
  EXPECT_EQ(m.size(), 200u);
  size_t parts_total = 0, nonempty = 0;
  for (size_t s = 0; s < dbt::kNumShards; ++s) {
    parts_total += m.part(s).size();
    if (m.part(s).size() > 0) ++nonempty;
    // Every key in part s routes to s: partition ownership is exact.
    for (const auto& e : m.part(s).entries()) {
      EXPECT_EQ(m.shard_of(e.first), s);
    }
  }
  EXPECT_EQ(parts_total, 200u);
  EXPECT_GT(nonempty, 1u) << "200 keys should spread across partitions";
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(m.contains(std::make_tuple(k, k * 7)));
    EXPECT_EQ(m.get(std::make_tuple(k, k * 7)), k + 1);
  }
  EXPECT_GT(m.bytes(), 0u);
  // Cancelling an entry erases it from its partition only.
  m.add(std::make_tuple(int64_t{3}, int64_t{21}), -4);
  EXPECT_FALSE(m.contains(std::make_tuple(int64_t{3}, int64_t{21})));
  EXPECT_EQ(m.size(), 199u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMap, ShrinksAfterMassDeletion) {
  dbt::FlatMap<std::tuple<int64_t>, int64_t> m;
  for (int64_t k = 0; k < 4096; ++k) m.try_emplace(std::make_tuple(k), k);
  const size_t peak = m.capacity();
  for (int64_t k = 0; k < 4090; ++k) m.erase(std::make_tuple(k));
  EXPECT_LT(m.capacity(), peak / 8) << "capacity must track live entries";
  for (int64_t k = 4090; k < 4096; ++k) {
    EXPECT_EQ(*m.find(std::make_tuple(k)), k);
  }
}

// ---------------------------------------------------------------------------
// The determinism property across all four engine classes.
// ---------------------------------------------------------------------------

struct RunOutput {
  std::string view;
  size_t state_bytes = 0;
};

/// Drives `engine` through the stream in fixed-size batches and returns the
/// final canonical view plus retained state.
RunOutput RunBatched(StreamEngine* engine, const std::vector<Event>& events,
                     size_t batch_size, const std::string& view_name = "q") {
  size_t i = 0;
  while (i < events.size()) {
    EventBatch batch;
    for (size_t j = 0; j < batch_size && i < events.size(); ++j, ++i) {
      batch.Add(events[i].kind, events[i].relation, events[i].tuple);
    }
    EXPECT_TRUE(engine->ApplyBatch(std::move(batch)).ok());
  }
  auto view = engine->View(view_name);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return RunOutput{view.ok() ? Canon(view.value()) : std::string(),
                   engine->StateBytes()};
}

std::unique_ptr<StreamEngine> MakeEngine(const std::string& name,
                                         const Catalog& catalog,
                                         const std::string& sql,
                                         dbt::StreamProgram* program) {
  auto engine = bench::MakeBakeoffEngine(name, catalog, sql, program);
  EXPECT_NE(engine, nullptr) << name;
  return engine;
}

TEST(ShardDeterminism, ViewsAndStateIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Catalog catalog = workload::OrderBookCatalog();
  const std::string sql = workload::MarketMakerQuery();

  workload::OrderBookConfig cfg;
  cfg.p_modify = 0.2;
  cfg.p_withdraw = 0.15;
  workload::OrderBookGenerator gen(cfg);
  const std::vector<Event> full_stream = gen.Generate(6000);

  // Per-engine stream lengths: the toaster engines replay the whole stream;
  // the baselines' one-at-a-time reference is O(|DB|) or worse per event
  // (that asymmetry is the paper's point), so they cover shorter prefixes.
  const std::map<std::string, size_t> stream_len = {
      {"toaster-i", full_stream.size()},
      {"toaster-c", full_stream.size()},
      {"ivm1", 2500},
      {"reeval", 400},
  };

  // Batched runs at 1, 2 and 8 threads vs a one-at-a-time sequential
  // replay reference: views equal to the replay, and byte-identical views
  // AND identical state_bytes across thread counts. Batch 512 puts the
  // per-(relation, op) groups across the shard cutoff.
  for (const char* name : {"toaster-i", "ivm1", "reeval", "toaster-c"}) {
    // dbtc names registered views q0, q1, ...; the engines use the given name.
    const std::string view_name =
        std::string(name) == "toaster-c" ? "q0" : "q";
    const std::vector<Event> events(
        full_stream.begin(),
        full_stream.begin() + static_cast<long>(stream_len.at(name)));

    runtime::shard_pool().set_threads(1);
    std::string reference;
    {
      dbtoaster_gen::mm_Program program;
      auto engine = MakeEngine(name, catalog, sql, &program);
      ASSERT_NE(engine, nullptr);
      for (const Event& ev : events) {
        ASSERT_TRUE(engine->OnEvent(ev).ok());
      }
      auto view = engine->View(view_name);
      ASSERT_TRUE(view.ok()) << name << ": " << view.status().ToString();
      reference = Canon(view.value());
    }

    RunOutput at_one;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      runtime::shard_pool().set_threads(threads);
      dbtoaster_gen::mm_Program program;
      auto engine = MakeEngine(name, catalog, sql, &program);
      ASSERT_NE(engine, nullptr);
      RunOutput out = RunBatched(engine.get(), events, 512, view_name);
      EXPECT_EQ(out.view, reference)
          << name << " diverged from sequential replay at threads=" << threads;
      if (threads == 1) {
        at_one = out;
      } else {
        EXPECT_EQ(out.view, at_one.view)
            << name << " view not thread-count invariant at " << threads;
        EXPECT_EQ(out.state_bytes, at_one.state_bytes)
            << name << " state not thread-count invariant at " << threads;
      }
    }
  }
}

// The interpreted engine's sharded path on a single-relation grouped
// aggregate (partition key = the group-by column), crossing the batch-size
// cutoff in both directions and under a delete-heavy mix.
TEST(ShardDeterminism, InterpretedGroupedAggregateAcrossCutoff) {
  PoolGuard guard;
  auto script = sql::ParseScript("create table R(A int, B int);");
  ASSERT_TRUE(script.ok());
  Catalog cat;
  for (const auto& t : script.value().tables) {
    ASSERT_TRUE(cat.AddRelation(t).ok());
  }
  const char* query = "select B, sum(A), count(*) from R group by B";

  Rng rng(42);
  std::vector<Event> events, live;
  for (int i = 0; i < 4000; ++i) {
    if (!live.empty() && rng.Chance(0.4)) {
      size_t pick = rng.Uniform(live.size());
      events.push_back(Event::Delete("R", live[pick].tuple));
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      Row tuple = {Value(rng.Range(0, 1000)), Value(rng.Range(0, 64))};
      events.push_back(Event::Insert("R", std::move(tuple)));
      live.push_back(events.back());
    }
  }

  auto ref_program = compiler::CompileQuery(cat, "q", query);
  ASSERT_TRUE(ref_program.ok());
  runtime::Engine reference(std::move(ref_program).value());
  runtime::shard_pool().set_threads(1);
  for (const Event& ev : events) ASSERT_TRUE(reference.OnEvent(ev).ok());
  auto ref_view = reference.View("q");
  ASSERT_TRUE(ref_view.ok());
  const std::string want = Canon(ref_view.value());

  for (size_t batch : {size_t{16}, size_t{63}, size_t{64}, size_t{1024}}) {
    RunOutput at_one;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      runtime::shard_pool().set_threads(threads);
      auto program = compiler::CompileQuery(cat, "q", query);
      ASSERT_TRUE(program.ok());
      runtime::Engine engine(std::move(program).value());
      RunOutput out = RunBatched(&engine, events, batch);
      EXPECT_EQ(out.view, want)
          << "batch=" << batch << " threads=" << threads;
      if (threads == 1) {
        at_one = out;
      } else {
        EXPECT_EQ(out.state_bytes, at_one.state_bytes)
            << "batch=" << batch << " threads=" << threads;
      }
    }
  }
}

/// Restores the process-wide selection toggle to its default (enabled) when
/// a test scope ends, mirroring PoolGuard for the worker pool.
struct SelectionGuard {
  ~SelectionGuard() { dbt::SetSelectionEnabled(true); }
};

// The selection-vector prologue must be a pure performance rewrite: with
// predicates extracted into kernels (selection on) or left to the per-row
// guard factors (selection off), views must be byte-identical at every
// thread count. Covers both the dbtc-generated sharded vec path (batch 512
// crosses dbt::kShardBatchCutoff, so selection runs after the shard split)
// and the interpreted engine's SelectionClasses mirror on a pred-guarded
// grouped aggregate, below and above the cutoff.
TEST(ShardDeterminism, SelectionToggleInvariantAcrossThreads) {
  PoolGuard pool_guard;
  SelectionGuard sel_guard;

  // Generated program: the market-maker query's guards feed the prologue.
  {
    Catalog catalog = workload::OrderBookCatalog();
    const std::string sql = workload::MarketMakerQuery();
    workload::OrderBookConfig cfg;
    cfg.p_modify = 0.2;
    cfg.p_withdraw = 0.15;
    workload::OrderBookGenerator gen(cfg);
    const std::vector<Event> events = gen.Generate(6000);

    std::string reference;
    RunOutput per_mode[2];
    for (bool selection : {true, false}) {
      RunOutput at_one;
      for (size_t threads : {size_t{1}, size_t{8}}) {
        dbt::SetSelectionEnabled(selection);
        runtime::shard_pool().set_threads(threads);
        dbtoaster_gen::mm_Program program;
        auto engine = MakeEngine("toaster-c", catalog, sql, &program);
        ASSERT_NE(engine, nullptr);
        RunOutput out = RunBatched(engine.get(), events, 512, "q0");
        if (reference.empty()) reference = out.view;
        EXPECT_EQ(out.view, reference)
            << "selection=" << selection << " threads=" << threads;
        if (threads == 1) {
          at_one = out;
        } else {
          EXPECT_EQ(out.state_bytes, at_one.state_bytes)
              << "selection=" << selection << " threads=" << threads;
        }
      }
      per_mode[selection ? 0 : 1] = at_one;
    }
    EXPECT_EQ(per_mode[0].view, per_mode[1].view)
        << "selection toggle changed the generated program's view";
  }

  // Interpreted engine: a guarded grouped aggregate through the
  // SelectionClasses skip (batch 16 = vectorized path, 1024 = sharded).
  {
    auto script = sql::ParseScript("create table R(A int, B int);");
    ASSERT_TRUE(script.ok());
    Catalog cat;
    for (const auto& t : script.value().tables) {
      ASSERT_TRUE(cat.AddRelation(t).ok());
    }
    const char* query =
        "select B, sum(A), count(*) from R where A < 500 group by B";

    Rng rng(17);
    std::vector<Event> events, live;
    for (int i = 0; i < 4000; ++i) {
      if (!live.empty() && rng.Chance(0.4)) {
        size_t pick = rng.Uniform(live.size());
        events.push_back(Event::Delete("R", live[pick].tuple));
        live.erase(live.begin() + static_cast<long>(pick));
      } else {
        Row tuple = {Value(rng.Range(0, 1000)), Value(rng.Range(0, 64))};
        events.push_back(Event::Insert("R", std::move(tuple)));
        live.push_back(events.back());
      }
    }

    dbt::SetSelectionEnabled(true);
    runtime::shard_pool().set_threads(1);
    auto ref_program = compiler::CompileQuery(cat, "q", query);
    ASSERT_TRUE(ref_program.ok());
    runtime::Engine reference(std::move(ref_program).value());
    for (const Event& ev : events) ASSERT_TRUE(reference.OnEvent(ev).ok());
    auto ref_view = reference.View("q");
    ASSERT_TRUE(ref_view.ok());
    const std::string want = Canon(ref_view.value());

    for (size_t batch : {size_t{16}, size_t{1024}}) {
      for (bool selection : {true, false}) {
        RunOutput at_one;
        for (size_t threads : {size_t{1}, size_t{8}}) {
          dbt::SetSelectionEnabled(selection);
          runtime::shard_pool().set_threads(threads);
          auto program = compiler::CompileQuery(cat, "q", query);
          ASSERT_TRUE(program.ok());
          runtime::Engine engine(std::move(program).value());
          RunOutput out = RunBatched(&engine, events, batch);
          EXPECT_EQ(out.view, want) << "batch=" << batch
                                    << " selection=" << selection
                                    << " threads=" << threads;
          if (threads == 1) {
            at_one = out;
          } else {
            EXPECT_EQ(out.state_bytes, at_one.state_bytes)
                << "batch=" << batch << " selection=" << selection
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

// The re-evaluation baseline refreshes multiple registered views on the
// worker pool (one task per query). Two standing queries at threads {1, 8}
// must agree with one-at-a-time replay and with each other — this is the
// only engine path where the pool runs whole Executor queries, so it needs
// its own coverage (and runs under the TSan CI job).
TEST(ShardDeterminism, ReevalRefreshesMultipleViewsInParallel) {
  PoolGuard guard;
  Catalog catalog = workload::OrderBookCatalog();
  workload::OrderBookGenerator gen(workload::OrderBookConfig{});
  std::vector<Event> events = gen.Generate(400);
  const char* kTotals = "select sum(PRICE * VOLUME), sum(VOLUME) from BIDS";

  runtime::shard_pool().set_threads(1);
  baseline::ReevalEngine reference(catalog);
  ASSERT_TRUE(reference.AddQuery("q", workload::MarketMakerQuery()).ok());
  ASSERT_TRUE(reference.AddQuery("totals", kTotals).ok());
  for (const Event& ev : events) ASSERT_TRUE(reference.OnEvent(ev).ok());
  const std::string want_q = Canon(reference.View("q").value());
  const std::string want_totals = Canon(reference.View("totals").value());

  for (size_t threads : {size_t{1}, size_t{8}}) {
    runtime::shard_pool().set_threads(threads);
    baseline::ReevalEngine engine(catalog);
    ASSERT_TRUE(engine.AddQuery("q", workload::MarketMakerQuery()).ok());
    ASSERT_TRUE(engine.AddQuery("totals", kTotals).ok());
    size_t i = 0;
    while (i < events.size()) {
      EventBatch batch;
      for (size_t j = 0; j < 128 && i < events.size(); ++j, ++i) {
        batch.Add(events[i]);
      }
      ASSERT_TRUE(engine.ApplyBatch(std::move(batch)).ok());
    }
    EXPECT_EQ(Canon(engine.View("q").value()), want_q)
        << "threads=" << threads;
    EXPECT_EQ(Canon(engine.View("totals").value()), want_totals)
        << "threads=" << threads;
  }
}

// Double-valued aggregates: a grouped double sum has a partition key, so
// per-key application order is preserved exactly and the sharded path runs;
// an ungrouped (scalar-target) double sum has none — shard-order merging
// would reorder non-associative float additions — so it must stay on the
// event-ordered path. The profiler's sharded_groups counter observes which
// path ran.
TEST(ShardDeterminism, DoubleTargetsShardOnlyWithPartitionKey) {
  PoolGuard guard;
  auto script = sql::ParseScript("create table R(A double, B int);");
  ASSERT_TRUE(script.ok());
  Catalog cat;
  for (const auto& t : script.value().tables) {
    ASSERT_TRUE(cat.AddRelation(t).ok());
  }

  Rng rng(7);
  std::vector<Event> events;
  for (int i = 0; i < 512; ++i) {
    events.push_back(Event::Insert(
        "R", {Value(rng.NextDouble() * 100.0), Value(rng.Range(0, 31))}));
  }

  auto run = [&](const char* query, size_t threads) -> std::string {
    runtime::shard_pool().set_threads(threads);
    auto program = compiler::CompileQuery(cat, "q", query);
    EXPECT_TRUE(program.ok());
    runtime::Engine engine(std::move(program).value());
    RunOutput out = RunBatched(&engine, events, 512);
    if (std::string(query).find("group by") != std::string::npos) {
      EXPECT_GT(engine.profile().sharded_groups, 0u)
          << "grouped double sum should take the sharded path";
    } else {
      EXPECT_EQ(engine.profile().sharded_groups, 0u)
          << "scalar double sum must stay event-ordered";
    }
    return out.view;
  };

  for (const char* query :
       {"select sum(A) from R", "select B, sum(A) from R group by B"}) {
    auto ref_program = compiler::CompileQuery(cat, "q", query);
    ASSERT_TRUE(ref_program.ok());
    runtime::Engine reference(std::move(ref_program).value());
    runtime::shard_pool().set_threads(1);
    for (const Event& ev : events) ASSERT_TRUE(reference.OnEvent(ev).ok());
    auto ref_view = reference.View("q");
    ASSERT_TRUE(ref_view.ok());
    const std::string want = Canon(ref_view.value());
    std::string at_one;
    for (size_t threads : {size_t{1}, size_t{8}}) {
      std::string got = run(query, threads);
      EXPECT_EQ(got, want) << query << " threads=" << threads;
      if (threads == 1) {
        at_one = got;
      } else {
        EXPECT_EQ(got, at_one) << query << " not thread-count invariant";
      }
    }
  }
}

}  // namespace
}  // namespace dbtoaster
