// Compiler-driver tests: translation details (variable prettifying, OR via
// inclusion–exclusion, AVG decomposition, domain maps), map sharing across
// queries, recursion levels, and the NotSupported boundary of the fragment.
#include <gtest/gtest.h>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/compiler/translate.h"
#include "src/sql/parser.h"

namespace dbtoaster::compiler {
namespace {

Catalog RST() {
  Catalog cat;
  (void)cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)cat.AddRelation(Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)cat.AddRelation(Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));
  return cat;
}

Result<std::unique_ptr<TranslatedQuery>> Tx(const Catalog& cat,
                                            const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  int counter = 0;
  return Translate(*stmt.value(), cat, "q", &counter);
}

TEST(Translate, PrettifiesJoinVariablesLikeThePaper) {
  auto tq = Tx(RST(),
               "select sum(R.A * T.D) from R, S, T "
               "where R.B = S.B and S.C = T.C");
  ASSERT_TRUE(tq.ok()) << tq.status().ToString();
  // Unified join variables shorten to bare column names: a, b, c, d.
  std::string s = tq.value()->aggregates[0].expr->ToString();
  EXPECT_NE(s.find("R(a, b)"), std::string::npos) << s;
  EXPECT_NE(s.find("S(b, c)"), std::string::npos) << s;
  EXPECT_NE(s.find("T(c, d)"), std::string::npos) << s;
}

TEST(Translate, AmbiguousShortNamesStayQualified) {
  // No join predicate: R.B and S.B must remain distinct variables.
  auto tq = Tx(RST(), "select sum(R.A) from R, S");
  ASSERT_TRUE(tq.ok());
  std::string s = tq.value()->aggregates[0].expr->ToString();
  EXPECT_EQ(s.find("S(b,"), std::string::npos) << s;
}

TEST(Translate, OrBecomesInclusionExclusion) {
  auto tq = Tx(RST(), "select count(*) from R where B = 1 or B = 2");
  ASSERT_TRUE(tq.ok());
  std::string s = tq.value()->aggregates[0].expr->ToString();
  // a + b - a*b over indicators.
  EXPECT_NE(s.find("[b = 1]"), std::string::npos) << s;
  EXPECT_NE(s.find("[b = 2]"), std::string::npos) << s;
  EXPECT_NE(s.find("-("), std::string::npos) << s;
}

TEST(Translate, AvgDecomposesIntoSumAndCount) {
  auto tq = Tx(RST(), "select avg(A) from R");
  ASSERT_TRUE(tq.ok());
  ASSERT_EQ(tq.value()->aggregates.size(), 2u);  // SUM + COUNT
  EXPECT_EQ(tq.value()->aggregates[0].kind, sql::AggKind::kSum);
  EXPECT_EQ(tq.value()->aggregates[1].kind, sql::AggKind::kCount);
  // The view column divides the two reads.
  EXPECT_EQ(tq.value()->columns[0].value->kind, ring::Term::Kind::kDiv);
}

TEST(Translate, SharedAggregatesAreDeduplicated) {
  auto tq = Tx(RST(), "select sum(A), avg(A), count(*) from R");
  ASSERT_TRUE(tq.ok());
  // sum(A) and count(*) are each registered once despite avg() needing both.
  EXPECT_EQ(tq.value()->aggregates.size(), 2u);
}

TEST(Translate, GroupedQueriesGetDomainExpr) {
  auto tq = Tx(RST(), "select B, sum(A) from R group by B");
  ASSERT_TRUE(tq.ok());
  ASSERT_NE(tq.value()->domain_expr, nullptr);
  EXPECT_EQ(tq.value()->domain_expr->group_vars.size(), 1u);
}

TEST(Translate, FragmentBoundaries) {
  Catalog cat = RST();
  EXPECT_EQ(Tx(cat, "select A, B from R").status().code(),
            StatusCode::kInvalidArgument);  // bare columns w/o GROUP BY
  EXPECT_EQ(Tx(cat, "select min(R.A) from R, S").status().code(),
            StatusCode::kNotSupported);  // MIN over a join
  EXPECT_EQ(
      Tx(cat, "select sum(A) + min(B) from R").status().code(),
      StatusCode::kNotSupported);  // MIN inside arithmetic
  EXPECT_EQ(Tx(cat,
               "select (select count(*) from S) from R")
                .status()
                .code(),
            StatusCode::kNotSupported);  // subquery in SELECT list
  EXPECT_EQ(Tx(cat,
               "select sum((select count(*) from S)) from R")
                .status()
                .code(),
            StatusCode::kNotSupported);  // subquery in aggregate argument
}

TEST(Compile, GroupedHybridIsRejectedWithClearMessage) {
  Catalog cat = RST();
  auto program = CompileQuery(
      cat, "q",
      "select B, sum(A) from R where A < (select count(*) from S) "
      "group by B");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(program.status().message().find("GROUP"), std::string::npos);
}

TEST(Compile, MapSharingAcrossQueries) {
  // Two queries over the same join share auxiliary maps when compiled
  // together (§3: "map sharing opportunities across event handler
  // functions").
  Catalog cat = RST();
  Compiler together(cat);
  ASSERT_TRUE(together
                  .AddQuery("q1",
                            "select sum(R.A) from R, S where R.B = S.B")
                  .ok());
  ASSERT_TRUE(together
                  .AddQuery("q2",
                            "select count(*) from R, S where R.B = S.B")
                  .ok());
  auto shared = together.Compile();
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();

  auto solo1 = CompileQuery(cat, "q1",
                            "select sum(R.A) from R, S where R.B = S.B");
  auto solo2 = CompileQuery(cat, "q2",
                            "select count(*) from R, S where R.B = S.B");
  ASSERT_TRUE(solo1.ok());
  ASSERT_TRUE(solo2.ok());
  EXPECT_LT(shared.value().maps.size(),
            solo1.value().maps.size() + solo2.value().maps.size());
}

TEST(Compile, RecursionLevelsAreMonotone) {
  auto program = CompileQuery(
      RST(), "q",
      "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C");
  ASSERT_TRUE(program.ok());
  for (const MapDecl& m : program.value().maps) {
    EXPECT_GE(m.level, 1);
    EXPECT_LE(m.level, 3);
  }
}

TEST(Compile, SelfJoinProducesCrossTerms) {
  auto program = CompileQuery(
      RST(), "q",
      "select sum(r1.A * r2.A) from R r1, R r2 where r1.B = r2.B");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // The insert trigger carries the dR*R, R*dR and dR*dR contributions.
  const Trigger* t = program.value().FindTrigger("R", EventKind::kInsert);
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->statements.size(), 3u) << t->ToString();
}

TEST(Compile, TriggerCoverageMatchesQueryRelations) {
  auto program = CompileQuery(
      RST(), "q", "select sum(R.A) from R, S where R.B = S.B");
  ASSERT_TRUE(program.ok());
  // Triggers exist exactly for the referenced relations, both signs.
  EXPECT_NE(program.value().FindTrigger("R", EventKind::kInsert), nullptr);
  EXPECT_NE(program.value().FindTrigger("S", EventKind::kDelete), nullptr);
  EXPECT_EQ(program.value().FindTrigger("T", EventKind::kInsert), nullptr);
}

TEST(Compile, DuplicateQueryNameRejected) {
  Compiler c(RST());
  ASSERT_TRUE(c.AddQuery("q", "select sum(A) from R").ok());
  EXPECT_EQ(c.AddQuery("q", "select count(*) from R").code(),
            StatusCode::kInvalidArgument);
}

TEST(Compile, UnknownRelationSurfacesEarly) {
  Compiler c(RST());
  EXPECT_EQ(c.AddQuery("q", "select sum(X) from NOPE").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dbtoaster::compiler
