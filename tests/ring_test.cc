// Unit tests for the ring calculus: variable analysis, constructors'
// normalisations, renaming, structural equality, and the delta rules.
#include <gtest/gtest.h>

#include "src/compiler/delta.h"
#include "src/ring/expr.h"

namespace dbtoaster::ring {
namespace {

using compiler::Delta;
using compiler::DeltaEvent;

TEST(Term, VarsAndTypes) {
  TermPtr t = Term::Mul(Term::Var("x"), Term::Add(Term::Var("y"), Term::Int(1)));
  EXPECT_EQ(t->Vars(), (std::set<std::string>{"x", "y"}));
  VarTypes types{{"x", Type::kInt}, {"y", Type::kDouble}};
  auto ty = t->TypeOf(types);
  ASSERT_TRUE(ty.ok());
  EXPECT_EQ(ty.value(), Type::kDouble);
  // Division is always double.
  auto d = Term::Div(Term::Var("x"), Term::Var("x"))->TypeOf(types);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), Type::kDouble);
}

TEST(Term, ConstantFolding) {
  EXPECT_EQ(Term::Add(Term::Int(2), Term::Int(3))->constant, Value(5));
  EXPECT_EQ(Term::Mul(Term::Int(2), Term::Int(3))->constant, Value(6));
}

TEST(Term, RenameAndSubstitute) {
  TermPtr t = Term::Mul(Term::Var("x"), Term::Var("y"));
  TermPtr r = t->Rename({{"x", "z"}});
  EXPECT_EQ(r->ToString(), "(z * y)");
  TermPtr s = t->Substitute({{"x", Term::Int(5)}});
  EXPECT_EQ(s->ToString(), "(5 * y)");
}

TEST(Expr, OutAndInVars) {
  // R(a,b) * (x := b+1) * [x > c] * {a}
  ExprPtr e = Expr::Prod({
      Expr::Rel("R", {"a", "b"}),
      Expr::Lift("x", Term::Add(Term::Var("b"), Term::Int(1))),
      Expr::Cmp(sql::BinOp::kGt, Term::Var("x"), Term::Var("c")),
      Expr::ValTerm(Term::Var("a")),
  });
  EXPECT_EQ(e->OutVars(), (std::set<std::string>{"a", "b", "x"}));
  // c is needed from outside; a, b, x are produced internally.
  EXPECT_EQ(e->InVars(), (std::set<std::string>{"c"}));
}

TEST(Expr, AggSumVars) {
  ExprPtr e = Expr::AggSum(
      {"g"}, Expr::Prod({Expr::Rel("R", {"g", "v"}),
                         Expr::ValTerm(Term::Var("v"))}));
  EXPECT_EQ(e->OutVars(), (std::set<std::string>{"g"}));
  EXPECT_TRUE(e->InVars().empty());
  // A group var the child cannot bind is an input (correlation parameter).
  ExprPtr corr = Expr::AggSum(
      {"p"}, Expr::Prod({Expr::Rel("R", {"a", "b"}),
                         Expr::Cmp(sql::BinOp::kGt, Term::Var("a"),
                                   Term::Var("p"))}));
  EXPECT_EQ(corr->InVars(), (std::set<std::string>{"p"}));
}

TEST(Expr, ConstructorsNormalize) {
  EXPECT_TRUE(Expr::Prod({Expr::One(), Expr::Zero()})->IsZero());
  EXPECT_TRUE(Expr::Sum({})->IsZero());
  EXPECT_TRUE(Expr::Prod({})->IsOne());
  // Nested sums/products flatten.
  ExprPtr e = Expr::Sum({Expr::Sum({Expr::ValTerm(Term::Var("x")),
                                    Expr::ValTerm(Term::Var("y"))}),
                         Expr::ValTerm(Term::Var("z"))});
  EXPECT_EQ(e->children.size(), 3u);
  // Constant comparisons fold.
  EXPECT_TRUE(Expr::Cmp(sql::BinOp::kLt, Term::Int(1), Term::Int(2))->IsOne());
  EXPECT_TRUE(Expr::Cmp(sql::BinOp::kGt, Term::Int(1), Term::Int(2))->IsZero());
  // Double negation cancels.
  ExprPtr r = Expr::Rel("R", {"x"});
  EXPECT_TRUE(ExprEquals(*Expr::Neg(Expr::Neg(r)), *r));
}

TEST(Expr, RenameAppliesEverywhere) {
  ExprPtr e = Expr::AggSum(
      {"b"}, Expr::Prod({Expr::Rel("S", {"b", "c"}),
                         Expr::ValTerm(Term::Var("c"))}));
  ExprPtr r = e->Rename({{"b", "k0"}, {"c", "k1"}});
  EXPECT_EQ(r->group_vars, std::vector<std::string>{"k0"});
  EXPECT_EQ(r->ToString(), "AggSum([k0], (S(k0, k1) * {k1}))");
}

TEST(Delta, RelAtomBecomesLifts) {
  ExprPtr e = Expr::Rel("R", {"x", "y"});
  DeltaEvent ev{"R", +1, {"p", "q"}};
  ExprPtr d = Delta(e, ev);
  EXPECT_EQ(d->ToString(), "((x := p) * (y := q))");
  DeltaEvent del{"R", -1, {"p", "q"}};
  ExprPtr dd = Delta(e, del);
  EXPECT_EQ(dd->ToString(), "(-1 * (x := p) * (y := q))");
}

TEST(Delta, OtherRelIsZero) {
  ExprPtr e = Expr::Rel("S", {"x"});
  EXPECT_TRUE(Delta(e, DeltaEvent{"R", +1, {"p"}})->IsZero());
  EXPECT_TRUE(Delta(Expr::ValTerm(Term::Var("x")),
                    DeltaEvent{"R", +1, {"p"}})
                  ->IsZero());
}

TEST(Delta, ProductRule) {
  // d(R * S) = dR*S + R*dS + dR*dS; with distinct relations only one delta
  // survives per event.
  ExprPtr e = Expr::Prod({Expr::Rel("R", {"x"}), Expr::Rel("S", {"x"})});
  ExprPtr d = Delta(e, DeltaEvent{"R", +1, {"p"}});
  EXPECT_EQ(d->ToString(), "((x := p) * S(x))");
  // Self-join: all three terms survive.
  ExprPtr self = Expr::Prod({Expr::Rel("R", {"x"}), Expr::Rel("R", {"y"})});
  ExprPtr ds = Delta(self, DeltaEvent{"R", +1, {"p"}});
  ASSERT_EQ(ds->kind, ExprKind::kSum);
  EXPECT_EQ(ds->children.size(), 3u);
}

TEST(Delta, PushesThroughSumAndAggSum) {
  ExprPtr e = Expr::AggSum(
      {"g"}, Expr::Sum({Expr::Rel("R", {"g"}), Expr::Rel("S", {"g"})}));
  ExprPtr d = Delta(e, DeltaEvent{"S", +1, {"p"}});
  ASSERT_EQ(d->kind, ExprKind::kAggSum);
  EXPECT_EQ(d->children[0]->ToString(), "(g := p)");
}

TEST(InferVarTypes, FromRelAtomsAndLifts) {
  std::map<std::string, std::vector<Type>> rels{
      {"R", {Type::kInt, Type::kDouble}}};
  ExprPtr e = Expr::Prod({Expr::Rel("R", {"a", "b"}),
                          Expr::Lift("x", Term::Mul(Term::Var("a"),
                                                    Term::Var("b")))});
  VarTypes types;
  ASSERT_TRUE(InferVarTypes(*e, rels, &types).ok());
  EXPECT_EQ(types.at("a"), Type::kInt);
  EXPECT_EQ(types.at("b"), Type::kDouble);
  EXPECT_EQ(types.at("x"), Type::kDouble);
}

}  // namespace
}  // namespace dbtoaster::ring
