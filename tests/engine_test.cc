// Runtime engine tests: snapshot (two-phase) statement semantics, the
// debugger/tracer callbacks, the profiler, view/Scalar APIs, the ad-hoc
// snapshot interface, and init-on-access behaviour.
#include <gtest/gtest.h>

#include "src/catalog/catalog.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"

namespace dbtoaster::runtime {
namespace {

Catalog RS() {
  Catalog cat;
  (void)cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)cat.AddRelation(Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  return cat;
}

Engine MakeEngine(const Catalog& cat, const std::string& sql) {
  auto program = compiler::CompileQuery(cat, "q", sql);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return Engine(std::move(program).value());
}

TEST(Engine, SnapshotSemanticsForSelfJoin) {
  // q = sum over R x R of r1.A*r2.A with r1.B = r2.B. On inserting (a,b)
  // the delta must use the PRE-state for the cross terms; the engine's
  // two-phase execution guarantees it. Verify against hand computation.
  Catalog cat = RS();
  Engine e = MakeEngine(
      cat, "select sum(r1.A * r2.A) from R r1, R r2 where r1.B = r2.B");
  ASSERT_TRUE(e.OnInsert("R", {Value(2), Value(1)}).ok());
  // R = {(2,1)}: q = 2*2 = 4.
  EXPECT_EQ(e.ViewScalar("q").value(), Value(4));
  ASSERT_TRUE(e.OnInsert("R", {Value(3), Value(1)}).ok());
  // q = (2+3)^2 = 25.
  EXPECT_EQ(e.ViewScalar("q").value(), Value(25));
  ASSERT_TRUE(e.OnDelete("R", {Value(2), Value(1)}).ok());
  EXPECT_EQ(e.ViewScalar("q").value(), Value(9));
}

TEST(Engine, EventValidation) {
  Catalog cat = RS();
  Engine e = MakeEngine(cat, "select sum(A) from R");
  EXPECT_EQ(e.OnInsert("R", {Value(1)}).code(),
            StatusCode::kInvalidArgument);  // arity
  // Events on relations the program ignores still update the snapshot.
  EXPECT_TRUE(e.OnInsert("S", {Value(1), Value(2)}).ok());
  EXPECT_EQ(e.database().FindTable("S")->Cardinality(), 1);
}

TEST(Engine, ViewScalarRequiresSingleValue) {
  Catalog cat = RS();
  Engine grouped = MakeEngine(cat, "select B, sum(A) from R group by B");
  (void)grouped.OnInsert("R", {Value(1), Value(2)});
  EXPECT_FALSE(grouped.ViewScalar("q").ok());
  EXPECT_FALSE(grouped.View("nope").ok());
}

TEST(Engine, GroupedViewDropsEmptyGroups) {
  Catalog cat = RS();
  Engine e = MakeEngine(cat, "select B, sum(A) from R group by B");
  (void)e.OnInsert("R", {Value(5), Value(1)});
  (void)e.OnInsert("R", {Value(7), Value(2)});
  EXPECT_EQ(e.View("q").value().rows.size(), 2u);
  (void)e.OnDelete("R", {Value(5), Value(1)});
  EXPECT_EQ(e.View("q").value().rows.size(), 1u);  // group 1 disappeared
}

TEST(Engine, AdhocSnapshotQueries) {
  Catalog cat = RS();
  Engine e = MakeEngine(cat, "select sum(A) from R");
  (void)e.OnInsert("R", {Value(1), Value(10)});
  (void)e.OnInsert("R", {Value(2), Value(20)});
  (void)e.OnInsert("S", {Value(10), Value(7)});
  auto r = e.AdhocQuery(
      "select sum(R.A) from R, S where R.B = S.B");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows[0].first[0], Value(1));
  EXPECT_FALSE(e.AdhocQuery("select broken from").ok());
}

class RecordingSink : public TraceSink {
 public:
  void OnEvent(const Event& /*event*/) override { events++; }
  void OnStatement(const compiler::Statement& /*stmt*/,
                   size_t updates_applied) override {
    statements++;
    updates += updates_applied;
  }
  void OnMapUpdate(const std::string& /*map*/, const Row& /*key*/,
                   const Value& old_value,
                   const Value& new_value) override {
    map_updates++;
    EXPECT_NE(old_value, new_value);
  }
  int events = 0, statements = 0, map_updates = 0;
  size_t updates = 0;
};

TEST(Engine, DebuggerSeesEveryStatementAndMapCell) {
  Catalog cat = RS();
  Engine e = MakeEngine(
      cat, "select sum(R.A * S.C) from R, S where R.B = S.B");
  RecordingSink sink;
  e.set_trace_sink(&sink);
  (void)e.OnInsert("R", {Value(2), Value(1)});
  (void)e.OnInsert("S", {Value(1), Value(5)});
  EXPECT_EQ(sink.events, 2);
  EXPECT_GT(sink.statements, 0);
  EXPECT_GT(sink.map_updates, 0);
}

TEST(Engine, ProfilerAccumulates) {
  Catalog cat = RS();
  Engine e = MakeEngine(cat, "select sum(A) from R");
  for (int i = 0; i < 10; ++i) {
    (void)e.OnInsert("R", {Value(i + 1), Value(i % 2)});
  }
  EXPECT_EQ(e.profile().events, 10u);
  ASSERT_FALSE(e.profile().by_statement.empty());
  size_t total_updates = 0;
  for (const auto& [k, st] : e.profile().by_statement) {
    total_updates += st.updates;
  }
  EXPECT_EQ(total_updates, 10u);  // one q update per insert (all non-zero)
  e.ResetProfile();
  EXPECT_EQ(e.profile().events, 0u);
}

TEST(Engine, InitOnAccessStoresPostStateReads) {
  // VWAP-shaped range map: reads of missing keys evaluate the definition
  // over the snapshot and are cached on post-state reads, after which
  // incremental maintenance keeps them fresh.
  Catalog cat;
  (void)cat.AddRelation(
      Schema("BIDS", {{"PRICE", Type::kInt}, {"VOLUME", Type::kInt}}));
  auto program = compiler::CompileQuery(
      cat, "q",
      "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 where "
      "(select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) < 5");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine e(std::move(program).value());
  (void)e.OnInsert("BIDS", {Value(10), Value(3)});
  (void)e.OnInsert("BIDS", {Value(20), Value(4)});
  // deeper volume for price 10 is 4 -> included iff 4 < 5; for price 20 is
  // 0 -> included. q = 10*3 + 20*4 = 110.
  EXPECT_EQ(e.ViewScalar("q").value(), Value(110));
  (void)e.OnInsert("BIDS", {Value(30), Value(2)});
  // deeper(10)=6 (out), deeper(20)=2 (in), deeper(30)=0 (in): 80+60=140.
  EXPECT_EQ(e.ViewScalar("q").value(), Value(140));
  (void)e.OnDelete("BIDS", {Value(30), Value(2)});
  EXPECT_EQ(e.ViewScalar("q").value(), Value(110));
}

TEST(Engine, MemoryAccountersAreMonotoneUnderInserts) {
  Catalog cat = RS();
  Engine e = MakeEngine(cat, "select B, sum(A) from R group by B");
  size_t prev = e.MapMemoryBytes();
  for (int i = 0; i < 50; ++i) {
    (void)e.OnInsert("R", {Value(i), Value(i)});
  }
  EXPECT_GT(e.MapMemoryBytes(), prev);
  EXPECT_GT(e.TotalMapEntries(), 50u);  // sum map + domain map entries
}

}  // namespace
}  // namespace dbtoaster::runtime
