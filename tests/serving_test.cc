// Concurrent view-serving tests: epoch-stamped snapshot consistency under
// a concurrent writer (the TSan stress lane), subscriber delta-stream
// replay, lag handling, and the generated programs' publish hook. The mm
// query is the workhorse: it is all-integer (sums of ints, int group
// keys), so all four engine classes render byte-identical sorted views at
// every epoch — the acceptance bar for cross-engine snapshot identity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/gen/mm.hpp"
#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::EpochDelta;
using runtime::EventBatch;
using runtime::StreamEngine;
using runtime::ViewSnapshot;
using runtime::ViewSubscriber;

// ---------------------------------------------------------------------------
// Helpers (stream construction mirrors recovery_test.cc).
// ---------------------------------------------------------------------------

struct ScriptCase {
  std::string name;
  Catalog catalog;
  std::string sql;
};

ScriptCase LoadScript(const std::string& name) {
  ScriptCase out;
  out.name = name;
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  EXPECT_TRUE(script.ok()) << path << ": " << script.status().ToString();
  for (const sql::CreateTableStmt& t : script.value().tables) {
    EXPECT_TRUE(out.catalog.AddRelation(t).ok());
  }
  EXPECT_EQ(script.value().queries.size(), 1u) << path;
  out.sql = script.value().queries[0].select->ToString();
  return out;
}

/// Seeded mixed insert/delete stream (deletes always target live tuples).
/// mm's columns are all ints, so Range(0, 7) keeps the group count small
/// and the delete rate meaningful.
std::vector<EventBatch> MakeStream(const Catalog& catalog, uint64_t seed,
                                   size_t num_batches) {
  Rng rng(seed);
  std::map<std::string, std::vector<Row>> live;
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  const size_t kBatchSizes[] = {1, 7, 64, 150};
  std::vector<EventBatch> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t batch_size = kBatchSizes[b % std::size(kBatchSizes)];
    for (size_t ev = 0; ev < batch_size; ++ev) {
      const std::string& rel = rels[rng.Uniform(rels.size())];
      std::vector<Row>& rows = live[rel];
      if (!rows.empty() && rng.Chance(0.35)) {
        size_t pick = rng.Uniform(rows.size());
        Row victim = rows[pick];
        rows.erase(rows.begin() + static_cast<long>(pick));
        batches[b].AddDelete(rel, victim);
      } else {
        const Schema* schema = catalog.FindRelation(rel);
        Row tuple;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          tuple.push_back(Value(rng.Range(0, 7)));
        }
        rows.push_back(tuple);
        batches[b].AddInsert(rel, tuple);
      }
    }
  }
  return batches;
}

EventBatch CopyBatch(const EventBatch& src) {
  EventBatch out;
  for (const EventBatch::Group& g : src.groups()) {
    for (size_t i = 0; i < g.rows; ++i) out.Add(g.kind, g.relation, g.RowAt(i));
  }
  return out;
}

struct EngineInstance {
  std::unique_ptr<dbt::StreamProgram> program;
  std::unique_ptr<StreamEngine> engine;
  std::string view;
};

/// Fresh engine of `kind` for the script (empty when the class legitimately
/// rejects the query — ivm1 outside its fragment).
EngineInstance MakeEngine(const std::string& kind, const ScriptCase& sc) {
  EngineInstance out;
  if (kind == "toaster-i") {
    auto program = compiler::CompileQuery(sc.catalog, "q", sc.sql);
    EXPECT_TRUE(program.ok()) << sc.name << ": " << program.status().ToString();
    if (!program.ok()) return out;
    out.engine = std::make_unique<runtime::Engine>(std::move(program).value());
    out.view = "q";
  } else if (kind == "reeval") {
    auto e = std::make_unique<baseline::ReevalEngine>(sc.catalog,
                                                      /*eager=*/false);
    EXPECT_TRUE(e->AddQuery("q", sc.sql).ok()) << sc.name;
    out.engine = std::move(e);
    out.view = "q";
  } else if (kind == "ivm1") {
    auto e = std::make_unique<baseline::Ivm1Engine>(sc.catalog);
    Status st = e->AddQuery("q", sc.sql);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kNotSupported)
          << sc.name << ": " << st.ToString();
      return out;  // legitimately excluded
    }
    out.engine = std::move(e);
    out.view = "q";
  } else if (kind == "toaster-c") {
    out.program = std::make_unique<dbtoaster_gen::mm_Program>();
    out.engine =
        std::make_unique<runtime::CompiledProgramEngine>(out.program.get());
    out.view = "q0";  // dbtc scripts auto-name their first query q0
  }
  return out;
}

/// Canonical multiset rendering of a view's rows: sorted, equal rows
/// merged, multiplicities explicit. Engine-agnostic (column names and the
/// view's registered name are excluded), so equal canon strings mean
/// byte-identical view content.
std::string CanonRows(const std::vector<std::pair<Row, int64_t>>& rows) {
  exec::QueryResult tmp;
  tmp.rows = rows;
  auto sorted = tmp.SortedRows();
  std::string s;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    int64_t mult = 0;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) {
      mult += sorted[j].second;
      ++j;
    }
    if (mult != 0) {
      s += RowToString(sorted[i].first);
      s += " x" + std::to_string(mult) + "\n";
    }
    i = j;
  }
  return s;
}

std::string CanonView(const exec::QueryResult& r) { return CanonRows(r.rows); }

std::string CanonMultiset(
    const std::unordered_map<Row, int64_t, RowHash, RowEq>& rows) {
  std::vector<std::pair<Row, int64_t>> flat(rows.begin(), rows.end());
  return CanonRows(flat);
}

/// Uninterrupted single-threaded replay of the stream: canon of the view
/// after each prefix. ref[e] is the (only possible) epoch-e rendering.
std::vector<std::string> BuildReference(const std::string& kind,
                                        const ScriptCase& sc,
                                        const std::vector<EventBatch>& stream) {
  EngineInstance inst = MakeEngine(kind, sc);
  if (inst.engine == nullptr) return {};
  std::vector<std::string> ref;
  ref.reserve(stream.size() + 1);
  auto v0 = inst.engine->View(inst.view);
  EXPECT_TRUE(v0.ok()) << kind << ": " << v0.status().ToString();
  ref.push_back(CanonView(v0.value()));
  for (const EventBatch& b : stream) {
    Status st = inst.engine->ApplyBatch(CopyBatch(b));
    EXPECT_TRUE(st.ok()) << kind << ": " << st.ToString();
    auto v = inst.engine->View(inst.view);
    EXPECT_TRUE(v.ok()) << kind << ": " << v.status().ToString();
    ref.push_back(CanonView(v.value()));
  }
  return ref;
}

const char* kEngineKinds[] = {"toaster-i", "reeval", "ivm1", "toaster-c"};

// ---------------------------------------------------------------------------
// Snapshot consistency under a concurrent writer (the TSan stress lane).
// ---------------------------------------------------------------------------

/// For every engine class and reader count in {1, 2, 8}: reader threads
/// spin on Snapshot() while the writer ingests the whole stream. Every
/// snapshot any reader observes must be exactly the epoch-e reference
/// rendering (never a half-applied batch), epochs must be monotone per
/// reader, and the reference renderings themselves are byte-identical
/// across all engine classes.
TEST(ServingStress, EpochConsistentSnapshotsAcrossEngines) {
  const ScriptCase sc = LoadScript("mm");
  const size_t kBatches = 48;
  const std::vector<EventBatch> stream = MakeStream(sc.catalog, 0x5eed, kBatches);

  std::map<std::string, std::vector<std::string>> refs;
  for (const char* kind : kEngineKinds) {
    std::vector<std::string> ref = BuildReference(kind, sc, stream);
    if (!ref.empty()) refs[kind] = std::move(ref);
  }
  ASSERT_GE(refs.size(), 4u) << "expected all four engine classes to run mm";

  // Cross-engine: the published rendering at each epoch is byte-identical
  // across engine classes (mm is all-integer; no float tolerance needed).
  const std::vector<std::string>& base = refs.begin()->second;
  for (const auto& [kind, ref] : refs) {
    ASSERT_EQ(ref.size(), kBatches + 1) << kind;
    for (size_t e = 0; e <= kBatches; ++e) {
      ASSERT_EQ(ref[e], base[e])
          << kind << " vs " << refs.begin()->first << " at epoch " << e;
    }
  }

  for (const char* kind : kEngineKinds) {
    for (const size_t num_readers : {size_t{1}, size_t{2}, size_t{8}}) {
      EngineInstance inst = MakeEngine(kind, sc);
      ASSERT_NE(inst.engine, nullptr) << kind;
      StreamEngine* engine = inst.engine.get();
      const std::vector<std::string>& ref = refs[kind];
      const std::string label =
          std::string(kind) + " x" + std::to_string(num_readers) + " readers";

      ASSERT_FALSE(engine->Snapshot().valid()) << label;
      ASSERT_TRUE(engine->EnableServing().ok()) << label;
      ASSERT_TRUE(engine->serving()) << label;

      std::atomic<bool> done{false};
      std::atomic<uint64_t> snapshots_seen{0};
      std::vector<std::thread> readers;
      readers.reserve(num_readers);
      for (size_t r = 0; r < num_readers; ++r) {
        readers.emplace_back([&, r] {
          uint64_t last_epoch = 0;
          uint64_t seen = 0;
          bool stop = false;
          while (!stop) {
            // One extra pass after the writer finishes so every reader
            // also checks the final snapshot.
            stop = done.load(std::memory_order_acquire);
            ViewSnapshot snap = engine->Snapshot();
            EXPECT_TRUE(snap.valid()) << label << " reader " << r;
            if (!snap.valid()) break;
            const uint64_t e = snap.epoch();
            EXPECT_GE(e, last_epoch) << label << " reader " << r
                                     << ": epoch went backwards";
            EXPECT_LE(e, kBatches) << label << " reader " << r;
            last_epoch = e;
            const exec::QueryResult* v = snap.Find(inst.view);
            EXPECT_NE(v, nullptr) << label << " reader " << r;
            if (v != nullptr) {
              EXPECT_EQ(CanonView(*v), ref[e])
                  << label << " reader " << r
                  << ": snapshot at epoch " << e
                  << " is not the epoch-consistent rendering";
            }
            ++seen;
          }
          snapshots_seen.fetch_add(seen);
        });
      }

      for (const EventBatch& b : stream) {
        Status st = engine->ApplyBatch(CopyBatch(b));
        ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
        // Give readers a slice between publishes so they interleave with
        // the writer instead of racing it only at the end.
        std::this_thread::yield();
      }
      done.store(true, std::memory_order_release);
      for (std::thread& t : readers) t.join();

      EXPECT_GE(snapshots_seen.load(), num_readers) << label;
      ViewSnapshot fin = engine->Snapshot();
      ASSERT_TRUE(fin.valid()) << label;
      EXPECT_EQ(fin.epoch(), kBatches) << label;
      const exec::QueryResult* v = fin.Find(inst.view);
      ASSERT_NE(v, nullptr) << label;
      EXPECT_EQ(CanonView(*v), ref[kBatches]) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Subscriber delta streams.
// ---------------------------------------------------------------------------

/// base + deltas(base.epoch()+1 .. e) replays to exactly the published
/// rendering at every epoch, for every engine class; a subscriber attached
/// mid-stream starts from the then-current snapshot.
TEST(Serving, SubscriberDeltaReplayReconstructsEveryEpoch) {
  const ScriptCase sc = LoadScript("mm");
  const size_t kBatches = 32;
  const size_t kMidEpoch = 17;
  const std::vector<EventBatch> stream = MakeStream(sc.catalog, 99, kBatches);

  for (const char* kind : kEngineKinds) {
    const std::vector<std::string> ref = BuildReference(kind, sc, stream);
    if (ref.empty()) continue;  // class excluded for this query
    EngineInstance inst = MakeEngine(kind, sc);
    StreamEngine* engine = inst.engine.get();

    ASSERT_FALSE(engine->Subscribe().ok()) << kind << ": not serving yet";
    ASSERT_TRUE(engine->EnableServing().ok()) << kind;

    auto sub = engine->Subscribe();
    ASSERT_TRUE(sub.ok()) << kind << ": " << sub.status().ToString();
    ASSERT_TRUE(sub.value().valid()) << kind;
    EXPECT_EQ(sub.value().base().epoch(), 0u) << kind;

    ViewSubscriber mid;
    for (size_t b = 0; b < stream.size(); ++b) {
      ASSERT_TRUE(engine->ApplyBatch(CopyBatch(stream[b])).ok()) << kind;
      if (b + 1 == kMidEpoch) {
        auto m = engine->Subscribe();
        ASSERT_TRUE(m.ok()) << kind;
        mid = std::move(m).value();
        EXPECT_EQ(mid.base().epoch(), kMidEpoch) << kind;
      }
    }

    auto replay = [&](ViewSubscriber& s, uint64_t from) {
      const exec::QueryResult* bv = s.base().Find(inst.view);
      ASSERT_NE(bv, nullptr) << kind;
      EXPECT_EQ(CanonView(*bv), ref[from]) << kind << " base epoch " << from;
      std::unordered_map<Row, int64_t, RowHash, RowEq> rows;
      for (const auto& [row, mult] : bv->rows) rows[row] += mult;

      auto deltas = s.Poll();
      EXPECT_FALSE(s.lagged()) << kind;
      ASSERT_EQ(deltas.size(), kBatches - from) << kind;
      uint64_t expect_epoch = from;
      for (const auto& d : deltas) {
        ASSERT_EQ(d->epoch, ++expect_epoch) << kind << ": epoch gap";
        ASSERT_EQ(d->views.size(), 1u) << kind;
        EXPECT_EQ(d->views[0].view, inst.view) << kind;
        runtime::ApplyViewDelta(d->views[0], &rows);
        EXPECT_EQ(CanonMultiset(rows), ref[expect_epoch])
            << kind << ": replay diverges from the published rendering at "
            << "epoch " << expect_epoch;
      }
      EXPECT_TRUE(s.Poll().empty()) << kind << ": drained stream not empty";
    };
    replay(sub.value(), 0);
    replay(mid, kMidEpoch);
  }
}

/// A subscriber that stops polling past the queue bound is marked lagged,
/// its stale queue is dropped, and a fresh Subscribe() recovers.
TEST(Serving, SlowSubscriberLags) {
  const ScriptCase sc = LoadScript("mm");
  const std::vector<EventBatch> stream = MakeStream(sc.catalog, 7, 8);
  EngineInstance inst = MakeEngine("toaster-i", sc);
  StreamEngine* engine = inst.engine.get();
  engine->set_max_queued_deltas(2);
  ASSERT_TRUE(engine->EnableServing().ok());

  auto sub = engine->Subscribe();
  ASSERT_TRUE(sub.ok());
  for (const EventBatch& b : stream) {
    ASSERT_TRUE(engine->ApplyBatch(CopyBatch(b)).ok());
  }
  EXPECT_TRUE(sub.value().lagged());
  EXPECT_TRUE(sub.value().Poll().empty()) << "lagged queue must be dropped";

  auto fresh = engine->Subscribe();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().base().epoch(), engine->epoch());
  EXPECT_FALSE(fresh.value().lagged());
}

// ---------------------------------------------------------------------------
// API edges and the generated publish hook.
// ---------------------------------------------------------------------------

TEST(Serving, EnableServingRejectsUnknownView) {
  const ScriptCase sc = LoadScript("mm");
  EngineInstance inst = MakeEngine("toaster-i", sc);
  Status st = inst.engine->EnableServing({"no_such_view"});
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(inst.engine->serving());
}

TEST(Serving, ViewNamesCoverAllEngineClasses) {
  const ScriptCase sc = LoadScript("mm");
  for (const char* kind : kEngineKinds) {
    EngineInstance inst = MakeEngine(kind, sc);
    if (inst.engine == nullptr) continue;
    EXPECT_EQ(inst.engine->ViewNames(),
              std::vector<std::string>{inst.view})
        << kind;
  }
}

/// The generated programs' publish_snapshot() hook (asserted on by
/// lint_gen.sh) renders exactly what View() reports, and the snapshot path
/// uses it.
TEST(Serving, CompiledPublishSnapshotMatchesView) {
  const ScriptCase sc = LoadScript("mm");
  const std::vector<EventBatch> stream = MakeStream(sc.catalog, 3, 12);
  EngineInstance inst = MakeEngine("toaster-c", sc);
  StreamEngine* engine = inst.engine.get();
  ASSERT_TRUE(engine->EnableServing().ok());
  for (const EventBatch& b : stream) {
    ASSERT_TRUE(engine->ApplyBatch(CopyBatch(b)).ok());
  }

  auto direct = engine->View("q0");
  ASSERT_TRUE(direct.ok());
  ViewSnapshot snap = engine->Snapshot();
  ASSERT_TRUE(snap.valid());
  const exec::QueryResult* served = snap.Find("q0");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(CanonView(*served), CanonView(direct.value()));

  // The raw hook agrees with the registered view list.
  std::vector<dbt::ViewRows> published = inst.program->publish_snapshot();
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0].name, "q0");
  EXPECT_EQ(published[0].rows.size(), direct.value().rows.size());
}

}  // namespace
}  // namespace dbtoaster
