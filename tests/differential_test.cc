// Cross-engine differential harness for the SQL fragment.
//
// Seeded random insert/delete streams are replayed batch-by-batch through
// every engine class — toaster-i (recursive delta compilation, interpreted),
// ivm1 (first-order IVM), reeval (full re-evaluation through the Volcano
// executor) and, for the checked-in bench queries, toaster-c (dbtc-generated
// C++) — asserting view equality after every batch. Batch sizes straddle
// dbt::kShardBatchCutoff so both the sequential and the sharded ApplyBatch
// paths are exercised.
//
// For bench queries the generated program runs twice: once through the
// native columnar batch path and once through the per-event row shim
// (toaster-c-row), and the two views must match byte for byte — same code,
// same arrival order, so not even float tolerance applies.
//
// Engines that reject a query (ivm1 on LEFT JOIN, for example) are excluded
// for that query — but only with an explicit kNotSupported status, logged
// per case; any other rejection is a test failure. Enough engines must
// remain that every case is still a real differential.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/gen/best_bid.hpp"
#include "bench/gen/mm.hpp"
#include "bench/gen/q12s.hpp"
#include "bench/gen/q13s.hpp"
#include "bench/gen/q3s.hpp"
#include "bench/gen/q41.hpp"
#include "bench/gen/q6s.hpp"
#include "bench/gen/revenue.hpp"
#include "bench/gen/selall.hpp"
#include "bench/gen/selhalf.hpp"
#include "bench/gen/selzero.hpp"
#include "bench/gen/sobi_bids.hpp"
#include "bench/gen/vwap.hpp"
#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/compiler/translate.h"
#include "src/exec/binder.h"
#include "src/runtime/engine.h"
#include "src/runtime/stream_engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

using runtime::EventBatch;
using runtime::StreamEngine;

// ---------------------------------------------------------------------------
// Generated-program factory for the checked-in bench queries.
// ---------------------------------------------------------------------------
std::unique_ptr<dbt::StreamProgram> MakeGenerated(const std::string& name) {
  if (name == "vwap") return std::make_unique<dbtoaster_gen::vwap_Program>();
  if (name == "sobi_bids") {
    return std::make_unique<dbtoaster_gen::sobi_bids_Program>();
  }
  if (name == "mm") return std::make_unique<dbtoaster_gen::mm_Program>();
  if (name == "best_bid") {
    return std::make_unique<dbtoaster_gen::best_bid_Program>();
  }
  if (name == "q41") return std::make_unique<dbtoaster_gen::q41_Program>();
  if (name == "revenue") {
    return std::make_unique<dbtoaster_gen::revenue_Program>();
  }
  if (name == "q3s") return std::make_unique<dbtoaster_gen::q3s_Program>();
  if (name == "q6s") return std::make_unique<dbtoaster_gen::q6s_Program>();
  if (name == "q12s") return std::make_unique<dbtoaster_gen::q12s_Program>();
  if (name == "q13s") return std::make_unique<dbtoaster_gen::q13s_Program>();
  if (name == "selzero") {
    return std::make_unique<dbtoaster_gen::selzero_Program>();
  }
  if (name == "selhalf") {
    return std::make_unique<dbtoaster_gen::selhalf_Program>();
  }
  if (name == "selall") {
    return std::make_unique<dbtoaster_gen::selall_Program>();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Typed random tuples: small domains so joins hit, predicates stay partially
// selective, and deletions find prior inserts.
// ---------------------------------------------------------------------------
Value RandomValue(Rng* rng, const std::string& /*column*/, Type type) {
  switch (type) {
    case Type::kInt:
      return Value(rng->Range(0, 7));
    case Type::kDouble: {
      static const double kPool[] = {0.04, 0.05, 0.06, 0.07, 0.10, 1.5, 20.0};
      return Value(kPool[rng->Uniform(std::size(kPool))]);
    }
    case Type::kString: {
      // Includes the literals the queries compare against, plus strings
      // around the LIKE pattern boundaries.
      static const char* kPool[] = {
          "BUILDING",        "AUTOMOBILE",
          "MAIL",            "SHIP",
          "RAIL",            "1-URGENT",
          "2-HIGH",          "3-MEDIUM",
          "no remarks",      "customer special requests noted",
          "special requests", "requests special"};
      return Value(std::string(kPool[rng->Uniform(std::size(kPool))]));
    }
    case Type::kDate: {
      const int64_t lo = CivilToDays(1993, 6, 1);
      const int64_t hi = CivilToDays(1995, 6, 30);
      return Value(lo + rng->Range(0, hi - lo));
    }
  }
  return Value(int64_t{0});
}

// ---------------------------------------------------------------------------
// Row comparison with a floating-point tolerance (engines sum doubles in
// different orders).
// ---------------------------------------------------------------------------
bool ValuesClose(const Value& a, const Value& b) {
  if (a.is_string() || b.is_string()) return a == b;
  if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
  const double x = a.AsDouble(), y = b.AsDouble();
  const double tol = 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
  return std::fabs(x - y) <= tol;
}

void ExpectSameView(const exec::QueryResult& want,
                    const exec::QueryResult& got, const std::string& label) {
  auto ws = want.SortedRows();
  auto gs = got.SortedRows();
  ASSERT_EQ(ws.size(), gs.size())
      << label << "\nwant:\n" << want.ToString() << "got:\n" << got.ToString();
  for (size_t i = 0; i < ws.size(); ++i) {
    ASSERT_EQ(ws[i].first.size(), gs[i].first.size()) << label;
    for (size_t c = 0; c < ws[i].first.size(); ++c) {
      ASSERT_TRUE(ValuesClose(ws[i].first[c], gs[i].first[c]))
          << label << " row " << i << " col " << c << "\nwant:\n"
          << want.ToString() << "got:\n" << got.ToString();
    }
  }
}

/// Exact comparison for the row-shim vs columnar replay of the *same*
/// generated program: both process the same events in the same order with
/// the same code, so the views must match without any float tolerance.
void ExpectIdenticalView(const exec::QueryResult& want,
                         const exec::QueryResult& got,
                         const std::string& label) {
  auto ws = want.SortedRows();
  auto gs = got.SortedRows();
  ASSERT_EQ(ws.size(), gs.size())
      << label << "\nwant:\n" << want.ToString() << "got:\n" << got.ToString();
  for (size_t i = 0; i < ws.size(); ++i) {
    ASSERT_TRUE(ws[i].first == gs[i].first && ws[i].second == gs[i].second)
        << label << " row " << i << " differs\nwant:\n" << want.ToString()
        << "got:\n" << got.ToString();
  }
}

// ---------------------------------------------------------------------------
// The harness: build the engine lineup for (catalog, sql), replay a seeded
// stream in batches, compare views after every batch.
// ---------------------------------------------------------------------------
struct EngineUnderTest {
  std::string name;
  std::unique_ptr<StreamEngine> engine;
  std::string view;  ///< this engine's registered view name
  std::unique_ptr<dbt::StreamProgram> program;  ///< toaster-c backing object
};

void RunDifferential(const Catalog& catalog, const std::string& sql,
                     const std::string& label, uint64_t seed,
                     const std::string& generated_name = "",
                     size_t num_batches = 18) {
  std::vector<EngineUnderTest> engines;

  {
    auto program = compiler::CompileQuery(catalog, "q", sql);
    ASSERT_TRUE(program.ok()) << label << ": toaster-i compile failed: "
                              << program.status().ToString();
    engines.push_back(
        {"toaster-i",
         std::make_unique<runtime::Engine>(std::move(program).value()), "q",
         nullptr});
  }
  {
    auto e = std::make_unique<baseline::ReevalEngine>(catalog,
                                                      /*eager=*/false);
    ASSERT_TRUE(e->AddQuery("q", sql).ok()) << label << ": reeval rejected";
    engines.push_back({"reeval", std::move(e), "q", nullptr});
  }
  bool ivm1_excluded = false;
  {
    auto e = std::make_unique<baseline::Ivm1Engine>(catalog);
    Status st = e->AddQuery("q", sql);
    if (st.ok()) {
      engines.push_back({"ivm1", std::move(e), "q", nullptr});
    } else {
      // Only "outside the first-order fragment" is a legitimate reason to
      // drop an engine from the lineup; anything else (parse error, binder
      // bug) must fail loudly instead of silently shrinking the cross-check.
      ASSERT_EQ(st.code(), StatusCode::kNotSupported)
          << label << ": ivm1 rejected for an unexpected reason: "
          << st.ToString();
      ivm1_excluded = true;
      std::printf("[differential] %s: ivm1 excluded (%s)\n", label.c_str(),
                  st.ToString().c_str());
    }
  }
  // Index of the columnar toaster-c engine, when a generated program runs.
  size_t columnar_at = 0, row_shim_at = 0;
  if (!generated_name.empty()) {
    std::unique_ptr<dbt::StreamProgram> program =
        MakeGenerated(generated_name);
    ASSERT_NE(program, nullptr) << generated_name;
    EngineUnderTest e;
    e.name = "toaster-c";
    e.engine = std::make_unique<runtime::CompiledProgramEngine>(program.get());
    e.view = "q0";  // dbtc scripts auto-name their first query q0
    e.program = std::move(program);
    columnar_at = engines.size();
    engines.push_back(std::move(e));

    // The same generated program again, but every batch crosses the
    // boundary through the per-event row shim instead of the columnar
    // fast path. Identical code and arrival order, so the two views must
    // agree exactly (see ExpectIdenticalView below).
    std::unique_ptr<dbt::StreamProgram> row_program =
        MakeGenerated(generated_name);
    EngineUnderTest r;
    r.name = "toaster-c-row";
    r.engine = std::make_unique<runtime::CompiledProgramEngine>(
        row_program.get(), "toaster-c-row",
        runtime::CompiledProgramEngine::BatchPath::kRow);
    r.view = "q0";
    r.program = std::move(row_program);
    row_shim_at = engines.size();
    engines.push_back(std::move(r));
  }
  // Even with ivm1 out, every bench case still cross-checks four ways
  // (toaster-i, reeval, toaster-c, toaster-c-row) and every micro case at
  // least two (toaster-i vs reeval).
  const size_t min_engines = generated_name.empty() ? 2u : 4u;
  ASSERT_GE(engines.size(), min_engines)
      << label << (ivm1_excluded ? " (ivm1 excluded)" : "");

  // Seeded stream: random inserts plus deletions of live tuples. Batch
  // sizes cycle through values straddling dbt::kShardBatchCutoff (64).
  Rng rng(seed);
  std::map<std::string, std::vector<Row>> live;
  std::vector<std::string> rels;
  for (const Schema& s : catalog.relations()) rels.push_back(s.name());
  const size_t kBatchSizes[] = {1, 7, dbt::kShardBatchCutoff,
                                2 * dbt::kShardBatchCutoff + 22};

  for (size_t b = 0; b < num_batches; ++b) {
    const size_t batch_size = kBatchSizes[b % std::size(kBatchSizes)];
    std::vector<EventBatch> batches(engines.size());
    for (size_t ev = 0; ev < batch_size; ++ev) {
      const std::string& rel = rels[rng.Uniform(rels.size())];
      std::vector<Row>& rows = live[rel];
      const bool do_delete = !rows.empty() && rng.Chance(0.35);
      if (do_delete) {
        size_t pick = rng.Uniform(rows.size());
        Row victim = rows[pick];
        rows.erase(rows.begin() + static_cast<long>(pick));
        for (EventBatch& eb : batches) eb.AddDelete(rel, victim);
      } else {
        const Schema* schema = catalog.FindRelation(rel);
        Row tuple;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          tuple.push_back(
              RandomValue(&rng, schema->column_name(c),
                          schema->column_type(c)));
        }
        rows.push_back(tuple);
        for (EventBatch& eb : batches) eb.AddInsert(rel, tuple);
      }
    }
    for (size_t e = 0; e < engines.size(); ++e) {
      Status st = engines[e].engine->ApplyBatch(std::move(batches[e]));
      ASSERT_TRUE(st.ok()) << label << " " << engines[e].name << ": "
                           << st.ToString();
    }

    auto want = engines[0].engine->View(engines[0].view);
    ASSERT_TRUE(want.ok()) << label << " " << engines[0].name << ": "
                           << want.status().ToString();
    for (size_t e = 1; e < engines.size(); ++e) {
      auto got = engines[e].engine->View(engines[e].view);
      ASSERT_TRUE(got.ok()) << label << " " << engines[e].name << ": "
                            << got.status().ToString();
      ExpectSameView(want.value(), got.value(),
                     label + ": " + engines[0].name + " vs " +
                         engines[e].name + " after batch " +
                         std::to_string(b));
    }

    if (!generated_name.empty()) {
      auto cv = engines[columnar_at].engine->View("q0");
      auto rv = engines[row_shim_at].engine->View("q0");
      ASSERT_TRUE(cv.ok() && rv.ok()) << label;
      ExpectIdenticalView(cv.value(), rv.value(),
                          label + ": toaster-c columnar vs row shim after "
                          "batch " + std::to_string(b));
    }
  }
}

// ---------------------------------------------------------------------------
// Every checked-in bench query, five engines where applicable.
// ---------------------------------------------------------------------------
struct ScriptCase {
  std::string name;
  Catalog catalog;
  std::string sql;
};

ScriptCase LoadScript(const std::string& name) {
  ScriptCase out;
  out.name = name;
  const std::string path = std::string(DBT_QUERY_DIR) + "/" + name + ".sql";
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  auto script = sql::ParseScript(ss.str());
  EXPECT_TRUE(script.ok()) << path << ": " << script.status().ToString();
  for (const sql::CreateTableStmt& t : script.value().tables) {
    EXPECT_TRUE(out.catalog.AddRelation(t).ok());
  }
  EXPECT_EQ(script.value().queries.size(), 1u) << path;
  out.sql = script.value().queries[0].select->ToString();
  return out;
}

class BenchQueryDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchQueryDifferential, AllEnginesAgreeOnSeededStreams) {
  ScriptCase sc = LoadScript(GetParam());
  RunDifferential(sc.catalog, sc.sql, sc.name, /*seed=*/0xd1f * 31 + 7,
                  /*generated_name=*/sc.name);
}

// selzero/selhalf/selall pin the selectivity extremes of the selection
// prologue: guards passing 0%, ~50% (date range), and 100% of the seeded
// rows (IN-list and comparison kernels), each replayed through columnar,
// row-shim, and interpreted paths with byte-identical views.
INSTANTIATE_TEST_SUITE_P(AllBenchQueries, BenchQueryDifferential,
                         ::testing::Values("vwap", "sobi_bids", "mm",
                                           "best_bid", "q41", "revenue",
                                           "q3s", "q6s", "q12s", "q13s",
                                           "selzero", "selhalf", "selall"));

// ivm1's first-order rewrite cannot express LEFT JOIN, so its exclusion on
// q13s must be a clean kNotSupported — never a crash or a stray error code
// that RunDifferential would (rightly) turn into a hard failure.
TEST(EngineLineup, Ivm1ExcludedOnLeftJoinWithNotSupported) {
  ScriptCase sc = LoadScript("q13s");
  baseline::Ivm1Engine e(sc.catalog);
  Status st = e.AddQuery("q", sc.sql);
  ASSERT_FALSE(st.ok()) << "ivm1 unexpectedly supports LEFT JOIN now; "
                           "update the lineup assertions in RunDifferential";
  EXPECT_EQ(st.code(), StatusCode::kNotSupported) << st.ToString();
}

// ---------------------------------------------------------------------------
// New-construct micro-queries (interpreted engines; no checked-in header).
// ---------------------------------------------------------------------------
Catalog MicroCatalog() {
  Catalog c;
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable(
               "create table R(K int, TAG string, V int, D date, X double)")
               .value())
          .ok());
  EXPECT_TRUE(
      c.AddRelation(
           sql::ParseCreateTable("create table S(K int, NOTE string, W int)")
               .value())
          .ok());
  return c;
}

struct MicroCase {
  const char* label;
  const char* sql;
};

class MicroQueryDifferential : public ::testing::TestWithParam<MicroCase> {};

TEST_P(MicroQueryDifferential, EnginesAgreeOnSeededStreams) {
  RunDifferential(MicroCatalog(), GetParam().sql, GetParam().label,
                  /*seed=*/0x5eed + std::string(GetParam().label).size());
}

INSTANTIATE_TEST_SUITE_P(
    NewConstructs, MicroQueryDifferential,
    ::testing::Values(
        MicroCase{"like", "select sum(R.V) from R where R.TAG like 'M%'"},
        MicroCase{"not_like",
                  "select R.K, count(*) from R where R.TAG not like "
                  "'%special%' group by R.K"},
        MicroCase{"in_list",
                  "select R.TAG, sum(R.V) from R where R.TAG in ('MAIL', "
                  "'SHIP', 'RAIL') group by R.TAG"},
        MicroCase{"case_when",
                  "select R.K, sum(case when R.TAG = 'MAIL' then R.V else 0 "
                  "end) from R group by R.K"},
        MicroCase{"case_chain",
                  "select sum(case when R.V < 2 then 10 when R.V < 5 then "
                  "R.V else 0 end) from R"},
        MicroCase{"extract_parts",
                  "select count(*) from R where EXTRACT(MONTH FROM R.D) = 3 "
                  "and EXTRACT(DAY FROM R.D) < 20"},
        MicroCase{"date_range",
                  "select R.K, sum(R.X) from R where R.D >= DATE "
                  "'1994-01-01' and R.D < DATE '1994-01-01' + INTERVAL '6' "
                  "MONTH group by R.K"},
        MicroCase{"between",
                  "select sum(R.V) from R where R.V between 2 and 5"},
        MicroCase{"having_hidden_agg",
                  "select R.K, sum(R.V) from R group by R.K having count(*) "
                  "> 3"},
        MicroCase{"having_with_min",
                  "select R.K, min(R.V) from R group by R.K having count(*) "
                  "> 2"},
        MicroCase{"having_bool",
                  "select R.TAG, count(*) from R group by R.TAG having "
                  "(sum(R.V) > 8 or count(*) > 5) and not (count(*) = 7)"},
        MicroCase{"string_group_eq",
                  "select R.TAG, count(*) from R, S where R.K = S.K and "
                  "R.TAG = S.NOTE group by R.TAG"},
        MicroCase{"left_join_count",
                  "select R.K, count(*) from R left outer join S on R.K = "
                  "S.K group by R.K"},
        MicroCase{"left_join_sum",
                  "select R.TAG, sum(R.V) from R left join S on R.K = S.K "
                  "and S.W > 3 group by R.TAG"},
        MicroCase{"left_join_having",
                  "select R.K, count(*) from R left outer join S on R.K = "
                  "S.K and S.NOTE like '%e%' group by R.K having count(*) > "
                  "2"},
        MicroCase{"left_join_degenerate",
                  "select R.K, count(*) from R left join S on R.K = S.K "
                  "where S.W > 2 group by R.K"},
        MicroCase{"left_join_global",
                  "select count(*) from R left join S on R.K = S.K"}),
    [](const ::testing::TestParamInfo<MicroCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Fragment boundaries: shapes with NULL-dependent semantics must be
// rejected by BOTH pipelines (never accepted with non-SQL answers by one
// while the other rejects — the differential would otherwise go blind).
// ---------------------------------------------------------------------------
TEST(FragmentBoundaries, BothPipelinesRejectIdentically) {
  Catalog cat = MicroCatalog();
  const char* kRejected[] = {
      // Grouping by the left-joined table's join-key column: unmatched rows
      // would group under NULL even though the key is equated to R.K.
      "select S.K, count(*) from R left join S on R.K = S.K group by S.K",
      // Subqueries in a LEFT JOIN query's predicates.
      "select count(*) from R left join S on R.K = S.K where R.V < (select "
      "sum(S.W) from S)",
      // Aggregates over the left-joined relation's columns.
      "select R.K, sum(S.W) from R left join S on R.K = S.K group by R.K",
      // Subqueries inside the LEFT JOIN's ON clause.
      "select count(*) from R left join S on S.K = (select sum(R.V) from R)",
      // Type-mismatched HAVING comparisons (string vs numeric, LIKE over
      // numbers) — must not fall through to cross-type Value ordering.
      "select R.TAG, count(*) from R group by R.TAG having R.TAG > 5",
      "select R.K, count(*) from R group by R.K having R.K like 'x%'",
  };
  int var_counter = 0;
  for (const char* q : kRejected) {
    auto stmt = sql::ParseSelect(q);
    ASSERT_TRUE(stmt.ok()) << q;
    auto translated =
        compiler::Translate(*stmt.value(), cat, "q", &var_counter);
    EXPECT_FALSE(translated.ok()) << "translator accepted: " << q;
    auto bound = exec::Bind(*stmt.value(), cat);
    EXPECT_FALSE(bound.ok()) << "binder accepted: " << q;
  }
}

}  // namespace
}  // namespace dbtoaster
