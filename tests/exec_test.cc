// Unit tests for the interpreted executor (the oracle): operators, planner
// behaviour, aggregation semantics, subqueries, and binder diagnostics.
#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/sql/parser.h"
#include "src/storage/table.h"

namespace dbtoaster::exec {
namespace {

Catalog TestCatalog() {
  Catalog cat;
  (void)cat.AddRelation(Schema(
      "R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)cat.AddRelation(Schema(
      "S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)cat.AddRelation(Schema(
      "E", {{"NAME", Type::kString}, {"DEPT", Type::kString},
            {"SALARY", Type::kDouble}}));
  return cat;
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : cat_(TestCatalog()), db_(cat_) {
    Ins("R", {Value(1), Value(10)});
    Ins("R", {Value(2), Value(10)});
    Ins("R", {Value(3), Value(20)});
    Ins("S", {Value(10), Value(100)});
    Ins("S", {Value(20), Value(200)});
    Ins("S", {Value(30), Value(300)});
    Ins("E", {Value("ann"), Value("eng"), Value(100.0)});
    Ins("E", {Value("bob"), Value("eng"), Value(80.0)});
    Ins("E", {Value("cat"), Value("ops"), Value(90.0)});
  }
  void Ins(const std::string& rel, Row row) {
    ASSERT_TRUE(db_.Apply(Event::Insert(rel, std::move(row))).ok());
  }
  QueryResult Run(const std::string& sql) {
    auto r = Executor::Query(sql, cat_, db_);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }
  Catalog cat_;
  Database db_;
};

TEST_F(ExecTest, GlobalAggregates) {
  auto r = Run("select sum(A), count(*), avg(A), min(A), max(A) from R");
  ASSERT_EQ(r.rows.size(), 1u);
  const Row& row = r.rows[0].first;
  EXPECT_EQ(row[0], Value(6));
  EXPECT_EQ(row[1], Value(3));
  EXPECT_EQ(row[2], Value(2.0));
  EXPECT_EQ(row[3], Value(1));
  EXPECT_EQ(row[4], Value(3));
}

TEST_F(ExecTest, EmptyInputYieldsZeroRow) {
  Database empty(cat_);
  auto r = Executor::Query("select sum(A), count(*) from R", cat_, empty);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0].first[0], Value(0));
}

TEST_F(ExecTest, GroupBy) {
  auto r = Run("select B, sum(A) from R group by B");
  auto rows = r.SortedRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, (Row{Value(10), Value(3)}));
  EXPECT_EQ(rows[1].first, (Row{Value(20), Value(3)}));
}

TEST_F(ExecTest, HashJoin) {
  auto r = Run("select sum(R.A * S.C) from R, S where R.B = S.B");
  // (1+2)*100 + 3*200 = 900.
  EXPECT_EQ(r.rows[0].first[0], Value(900));
}

TEST_F(ExecTest, CrossJoin) {
  auto r = Run("select count(*) from R, S");
  EXPECT_EQ(r.rows[0].first[0], Value(9));
}

TEST_F(ExecTest, StringPredicates) {
  auto r = Run("select count(*), sum(SALARY) from E where DEPT = 'eng'");
  EXPECT_EQ(r.rows[0].first[0], Value(2));
  EXPECT_EQ(r.rows[0].first[1], Value(180.0));
}

TEST_F(ExecTest, StringGroupBy) {
  auto r = Run("select DEPT, max(SALARY) from E group by DEPT");
  auto rows = r.SortedRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first[0], Value("eng"));
  EXPECT_EQ(rows[0].first[1], Value(100.0));
}

TEST_F(ExecTest, MultiplicityAwareAggregation) {
  Ins("R", {Value(1), Value(10)});  // duplicate row: multiplicity 2
  auto r = Run("select sum(A), count(*) from R");
  EXPECT_EQ(r.rows[0].first[0], Value(7));
  EXPECT_EQ(r.rows[0].first[1], Value(4));
}

TEST_F(ExecTest, ScalarSubquery) {
  auto r = Run("select sum(A) from R where B < (select max(B) from R)");
  EXPECT_EQ(r.rows[0].first[0], Value(3));  // rows with B=10
}

TEST_F(ExecTest, CorrelatedSubquery) {
  // For each R row: count of S rows with S.B = R.B (correlated).
  auto r = Run(
      "select sum(A) from R r where "
      "(select count(*) from S s where s.B = r.B) > 0");
  EXPECT_EQ(r.rows[0].first[0], Value(6));  // all rows have a match
}

TEST_F(ExecTest, PlainProjection) {
  auto r = Run("select A, B from R where B = 10");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecTest, SelfJoinWithAliases) {
  auto r = Run(
      "select count(*) from R r1, R r2 where r1.B = r2.B");
  EXPECT_EQ(r.rows[0].first[0], Value(5));  // 2x2 + 1x1
}

TEST_F(ExecTest, BinderErrors) {
  auto unknown_table = Executor::Query("select sum(A) from Z", cat_, db_);
  EXPECT_EQ(unknown_table.status().code(), StatusCode::kNotFound);

  auto unknown_col = Executor::Query("select sum(Z) from R", cat_, db_);
  EXPECT_EQ(unknown_col.status().code(), StatusCode::kNotFound);

  auto ambiguous =
      Executor::Query("select sum(B) from R, S", cat_, db_);
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);

  auto type_err = Executor::Query(
      "select sum(NAME) from E", cat_, db_);
  EXPECT_EQ(type_err.status().code(), StatusCode::kNotSupported);

  auto mixed_cmp = Executor::Query(
      "select count(*) from E where NAME = 3", cat_, db_);
  EXPECT_EQ(mixed_cmp.status().code(), StatusCode::kTypeError);

  auto non_grouped = Executor::Query(
      "select A, sum(B) from R", cat_, db_);
  EXPECT_EQ(non_grouped.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecTest, DeletionsFlowThroughMultisets) {
  ASSERT_TRUE(db_.Apply(Event::Delete("R", {Value(2), Value(10)})).ok());
  auto r = Run("select sum(A) from R");
  EXPECT_EQ(r.rows[0].first[0], Value(4));
}

}  // namespace
}  // namespace dbtoaster::exec
