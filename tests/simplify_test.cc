// Unit tests for the map-algebra simplification rules: polynomial
// expansion, lift unification, and AggSum factorisation — one test per rule
// family, mirroring §3's rewrite steps.
#include <gtest/gtest.h>

#include "src/compiler/delta.h"
#include "src/compiler/simplify.h"

namespace dbtoaster::compiler {
namespace {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;

TEST(Expansion, DistributesProductsOverSums) {
  // (A + B) * C -> AC + BC
  ExprPtr e = Expr::Prod({
      Expr::Sum({Expr::Rel("A", {"x"}), Expr::Rel("B", {"x"})}),
      Expr::Rel("C", {"x"}),
  });
  auto ms = ExpandToMonomials(e);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].factors.size(), 2u);
  EXPECT_EQ(ms[1].factors.size(), 2u);
}

TEST(Expansion, SplitsValueTermsMultiplicativelyAndAdditively) {
  // {a * d} -> two value factors; {x + y} -> two monomials (the SSB
  // sum(price - cost) shape).
  auto ms1 = ExpandToMonomials(
      Expr::ValTerm(Term::Mul(Term::Var("a"), Term::Var("d"))));
  ASSERT_EQ(ms1.size(), 1u);
  EXPECT_EQ(ms1[0].factors.size(), 2u);

  auto ms2 = ExpandToMonomials(
      Expr::ValTerm(Term::Sub(Term::Var("x"), Term::Var("y"))));
  ASSERT_EQ(ms2.size(), 2u);
  EXPECT_EQ(ms2[1].coeff, Value(-1));
}

TEST(Expansion, FoldsNegationIntoCoefficients) {
  auto ms = ExpandToMonomials(Expr::Neg(Expr::Rel("R", {"x"})));
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].coeff, Value(-1));
}

TEST(Expansion, DropsZeroMonomials) {
  auto ms = ExpandToMonomials(
      Expr::Sum({Expr::Zero(), Expr::Prod({Expr::Zero(), Expr::Rel("R", {"x"})})}));
  EXPECT_TRUE(ms.empty());
}

TEST(UnifyLifts, SubstitutesParametersThroughMonomial) {
  // (x := p) * S(x, c) * {x}  ==>  S(p, c) * {p}
  Monomial m;
  m.factors = {Expr::Lift("x", Term::Var("p")), Expr::Rel("S", {"x", "c"}),
               Expr::ValTerm(Term::Var("x"))};
  std::vector<std::string> keys;
  ASSERT_TRUE(UnifyLifts(&m, &keys, {"p"}).ok());
  ASSERT_EQ(m.factors.size(), 2u);
  EXPECT_EQ(m.factors[0]->ToString(), "S(p, c)");
  EXPECT_EQ(m.factors[1]->ToString(), "{p}");
}

TEST(UnifyLifts, RenamesGroupKeysToParameters) {
  // Target key k0 renamed by (k0 := b): the statement targets M[b].
  Monomial m;
  m.factors = {Expr::Lift("k0", Term::Var("b"))};
  std::vector<std::string> keys{"k0"};
  ASSERT_TRUE(UnifyLifts(&m, &keys, {"b"}).ok());
  EXPECT_TRUE(m.factors.empty());
  EXPECT_EQ(keys, std::vector<std::string>{"b"});
}

TEST(UnifyLifts, KeepsSelfJoinEqualityFilters) {
  // Lift onto an already-bound parameter stays as an equality filter
  // (dR * dR cross terms of self-joins).
  Monomial m;
  m.factors = {Expr::Lift("p", Term::Var("q"))};
  std::vector<std::string> keys;
  ASSERT_TRUE(UnifyLifts(&m, &keys, {"p", "q"}).ok());
  ASSERT_EQ(m.factors.size(), 1u);
  EXPECT_EQ(m.factors[0]->kind, ring::ExprKind::kLift);
}

TEST(Factorize, SplitsIndependentComponents) {
  // After unifying ΔS in R⋈S⋈T: R(a, b) {a}  and  T(c, d) {d} are
  // independent given params {b, c} — the paper's qA[b] * qD[c] step.
  Monomial m;
  m.factors = {
      Expr::Rel("R", {"a", "b"}), Expr::ValTerm(Term::Var("a")),
      Expr::Rel("T", {"c", "d"}), Expr::ValTerm(Term::Var("d"))};
  auto rhs = Factorize(m, {}, {"b", "c"});
  ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();
  ASSERT_EQ(rhs.value()->kind, ring::ExprKind::kProd);
  int aggsums = 0;
  for (const auto& f : rhs.value()->children) {
    if (f->kind == ring::ExprKind::kAggSum) ++aggsums;
  }
  EXPECT_EQ(aggsums, 2);  // join eliminated: two independent AggSum factors
}

TEST(Factorize, PullsParamOnlyFactorsOut) {
  // {p} has no summed vars: it stays a direct factor of the statement.
  Monomial m;
  m.factors = {Expr::ValTerm(Term::Var("p")), Expr::Rel("S", {"b", "c"}),
               Expr::ValTerm(Term::Var("c"))};
  auto rhs = Factorize(m, {"b"}, {"p"});
  ASSERT_TRUE(rhs.ok());
  bool has_bare_valterm = false;
  for (const auto& f : rhs.value()->children) {
    if (f->kind == ring::ExprKind::kValTerm) has_bare_valterm = true;
  }
  EXPECT_TRUE(has_bare_valterm) << rhs.value()->ToString();
}

TEST(Factorize, ReportsUnboundSummedVariables) {
  // A summed variable produced only by a non-atom factor (a residual lift
  // with no relation/map in its component) is a compilation error, not a
  // silent wrong answer.
  Monomial m;
  m.factors = {Expr::Lift("z", Term::Add(Term::Var("p"), Term::Int(1))),
               Expr::ValTerm(Term::Var("z"))};
  auto rhs = Factorize(m, {}, {"p"});
  ASSERT_FALSE(rhs.ok());
  EXPECT_EQ(rhs.status().code(), StatusCode::kInternal);
}

TEST(SimplifyDelta, Fig2InsertS) {
  // Δ+S of AggSum([], R(a,b) S(b,c) T(c,d) {a}{d}) must become the
  // parameter-keyed product of two independent maps (no join!).
  ExprPtr q = Expr::AggSum(
      {}, Expr::Prod({Expr::Rel("R", {"a", "b"}), Expr::Rel("S", {"b", "c"}),
                      Expr::Rel("T", {"c", "d"}),
                      Expr::ValTerm(Term::Var("a")),
                      Expr::ValTerm(Term::Var("d"))}));
  DeltaEvent ev{"S", +1, {"b", "c"}};
  auto units = SimplifyDelta(Delta(q, ev), {"b", "c"});
  ASSERT_TRUE(units.ok()) << units.status().ToString();
  ASSERT_EQ(units.value().size(), 1u);
  const DeltaUnit& u = units.value()[0];
  EXPECT_TRUE(u.keys.empty());
  // Two independent AggSum components (qA[b] and qD[c]).
  ASSERT_EQ(u.rhs->kind, ring::ExprKind::kProd);
  EXPECT_EQ(u.rhs->children.size(), 2u) << u.rhs->ToString();
}

TEST(SimplifyDelta, TerminalCountDelta) {
  // Δ+S of the q1[b,c] count map is the constant 1 at key (b, c).
  ExprPtr q1 = Expr::AggSum({"k0", "k1"}, Expr::Rel("S", {"k0", "k1"}));
  DeltaEvent ev{"S", +1, {"b", "c"}};
  auto units = SimplifyDelta(Delta(q1, ev), {"b", "c"});
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units.value().size(), 1u);
  EXPECT_EQ(units.value()[0].keys, (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(units.value()[0].rhs->IsOne());
}

TEST(SimplifyDelta, RangePredicateKeepsParameterFree) {
  // The VWAP inner map: delta leaves the comparison over the unbound key —
  // the LHS-iteration case.
  ExprPtr n = Expr::AggSum(
      {"p"}, Expr::Prod({Expr::Rel("B", {"q", "v"}),
                         Expr::Cmp(sql::BinOp::kGt, Term::Var("q"),
                                   Term::Var("p")),
                         Expr::ValTerm(Term::Var("v"))}));
  DeltaEvent ev{"B", +1, {"q", "v"}};
  auto units = SimplifyDelta(Delta(n, ev), {"q", "v"});
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units.value().size(), 1u);
  const DeltaUnit& u = units.value()[0];
  EXPECT_EQ(u.keys, std::vector<std::string>{"p"});
  // p is not bindable from the RHS.
  EXPECT_FALSE(u.rhs->OutVars().count("p"));
}

}  // namespace
}  // namespace dbtoaster::compiler
