// Code generator tests: structural checks on the emitted C++, plus a full
// integration loop — dbtc-generate, compile with the system C++ compiler,
// run against an event stream, and compare with the trigger interpreter
// (the paper's standalone-mode pipeline end to end).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unistd.h>
#include <sstream>

#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/codegen/cpp_gen.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/sql/parser.h"
#include "src/workload/orderbook.h"

#ifndef DBTC_BINARY
#define DBTC_BINARY "dbtc"
#endif
#ifndef DBT_RUNTIME_INCLUDE_DIR
#define DBT_RUNTIME_INCLUDE_DIR "."
#endif

namespace dbtoaster {
namespace {

Catalog Fig2Catalog() {
  Catalog cat;
  (void)cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}));
  (void)cat.AddRelation(Schema("S", {{"B", Type::kInt}, {"C", Type::kInt}}));
  (void)cat.AddRelation(Schema("T", {{"C", Type::kInt}, {"D", Type::kInt}}));
  return cat;
}

TEST(CodegenStructure, Fig2HandlersMatchPaperShape) {
  auto program = compiler::CompileQuery(
      Fig2Catalog(), "q",
      "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C");
  ASSERT_TRUE(program.ok());
  auto code = codegen::GenerateCpp(program.value());
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  const std::string& src = code.value();

  // The §3 listing: declarations for q and the four auxiliary maps plus the
  // count map, and one sign-parameterized handler per relation (the insert
  // and delete bodies of the paper unified over the event multiplicity).
  EXPECT_NE(src.find("void on_R([[maybe_unused]] int64_t"),
            std::string::npos);
  EXPECT_NE(src.find("void on_T([[maybe_unused]] int64_t"),
            std::string::npos);
  EXPECT_EQ(src.find("void on_insert_"), std::string::npos);
  EXPECT_EQ(src.find("void on_delete_"), std::string::npos);
  EXPECT_NE(src.find(", const int64_t sign)"), std::string::npos);
  EXPECT_NE(src.find("dbt::Map<std::tuple<int64_t, int64_t>, int64_t> m5_"),
            std::string::npos);
  // Inlined straight-line code: the q update is a single map lookup.
  EXPECT_NE(src.find("m1_.get(std::make_tuple(arg_b))"), std::string::npos);
  // The foreach from the paper's on_insert_R: slice iteration over q1,
  // compiled through a secondary slice index (the paper's nested-map
  // layout, q_1_bc[b][c]).
  EXPECT_NE(src.find("dbt::SliceIndex<"), std::string::npos);
  EXPECT_NE(src.find(".lookup(std::make_tuple("), std::string::npos);
}

TEST(CodegenStructure, RejectsNothingInSupportedFragment) {
  Catalog cat = workload::OrderBookCatalog();
  for (const std::string& q :
       {workload::VwapQuery(), workload::MarketMakerQuery(),
        workload::BestBidQuery()}) {
    auto program = compiler::CompileQuery(cat, "q", q);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    auto code = codegen::GenerateCpp(program.value());
    EXPECT_TRUE(code.ok()) << q << ": " << code.status().ToString();
  }
}

// ---------- integration: generate -> g++ -> run -> compare ----------

struct IntegrationCase {
  const char* name;
  std::string schema_sql;
  std::string query;
  std::string stream_schema;  // relations to generate random events for
};

std::string RunCommand(const std::string& cmd, int* exit_code) {
  std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  *exit_code = pclose(pipe);
  return output;
}

/// Generic standalone harness: reads events from stdin ("I|D <REL> <v>..."),
/// dispatches them, prints every view's rows sorted at EOF.
const char kHarness[] = R"cpp(
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>
#include "generated.hpp"

template <typename Tuple, size_t... I>
void PrintTupleImpl(std::ostream& os, const Tuple& t,
                    std::index_sequence<I...>) {
  ((os << (I ? "," : "") << std::get<I>(t)), ...);
}
template <typename... Ts>
std::string TupleString(const std::tuple<Ts...>& t) {
  std::ostringstream os;
  os.precision(9);
  PrintTupleImpl(os, t, std::make_index_sequence<sizeof...(Ts)>());
  return os.str();
}
template <typename RowVec>
void PrintRows(const RowVec& rows) {
  std::vector<std::string> out;
  for (const auto& r : rows) out.push_back(TupleString(r));
  std::sort(out.begin(), out.end());
  for (const auto& s : out) std::cout << "(" << s << ")";
  std::cout << "\n";
}

int main() {
  dbtoaster_gen::Program p;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string op, rel;
    is >> op >> rel;
    std::vector<dbt::Value> tuple;
    int64_t v;
    while (is >> v) tuple.emplace_back(v);
    p.on_event(rel, op == "I", tuple);
  }
  PrintRows(p.view_q0());
  return 0;
}
)cpp";

class CodegenIntegration : public ::testing::TestWithParam<int> {};

TEST_P(CodegenIntegration, GeneratedBinaryMatchesInterpreter) {
  std::vector<IntegrationCase> cases = {
      {"fig2",
       "create table R(A int, B int); create table S(B int, C int); "
       "create table T(C int, D int);",
       "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C",
       ""},
      {"grouped_minmax",
       "create table R(A int, B int);",
       "select B, sum(A), count(*) from R group by B", ""},
      {"vwap_hybrid",
       "create table BIDS(ID int, BROKER_ID int, PRICE int, VOLUME int);",
       workload::VwapQuery(), ""},
  };
  const IntegrationCase& c = cases[static_cast<size_t>(GetParam())];

  std::string dir =
      ::testing::TempDir() + "/dbtc_it_" + c.name + "_" +
      std::to_string(::getpid());
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);

  // 1. Write the script and run dbtc.
  {
    std::ofstream f(dir + "/script.sql");
    f << c.schema_sql << "\n" << c.query << ";\n";
  }
  int rc = 0;
  std::string out = RunCommand(std::string(DBTC_BINARY) + " " + dir +
                                   "/script.sql -o " + dir + "/generated.hpp",
                               &rc);
  ASSERT_EQ(rc, 0) << out;

  // 2. Compile the harness with the system compiler.
  {
    std::ofstream f(dir + "/harness.cc");
    f << kHarness;
  }
  // -pthread: generated sharded programs reference the worker pool (inert
  // at the default single thread, but the symbols must link).
  out = RunCommand("c++ -std=c++20 -O1 -pthread -I" + dir + " -I" +
                       std::string(DBT_RUNTIME_INCLUDE_DIR) + " " + dir +
                       "/harness.cc -o " + dir + "/harness",
                   &rc);
  ASSERT_EQ(rc, 0) << out;

  // 3. Build the interpreter-side engine and a random stream.
  auto script = sql::ParseScript(c.schema_sql);
  ASSERT_TRUE(script.ok());
  Catalog cat;
  for (const auto& t : script.value().tables) {
    ASSERT_TRUE(cat.AddRelation(t).ok());
  }
  auto program = compiler::CompileQuery(cat, "q0", c.query);
  ASSERT_TRUE(program.ok());
  runtime::Engine engine(std::move(program).value());

  Rng rng(1234);
  std::vector<Event> live;
  std::ofstream stream(dir + "/stream.txt");
  for (int i = 0; i < 300; ++i) {
    Event ev = Event::Insert("", {});
    if (!live.empty() && rng.Chance(0.3)) {
      size_t pick = rng.Uniform(live.size());
      ev = Event::Delete(live[pick].relation, live[pick].tuple);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const auto& rels = cat.relations();
      const Schema& schema = rels[rng.Uniform(rels.size())];
      Row tuple;
      for (size_t col = 0; col < schema.num_columns(); ++col) {
        tuple.push_back(Value(rng.Range(0, 5)));
      }
      ev = Event::Insert(schema.name(), std::move(tuple));
      live.push_back(ev);
    }
    ASSERT_TRUE(engine.OnEvent(ev).ok());
    stream << (ev.kind == EventKind::kInsert ? "I " : "D ") << ev.relation;
    for (const Value& v : ev.tuple) stream << " " << v.AsInt();
    stream << "\n";
  }
  stream.close();

  // 4. Run the generated binary and compare against the interpreter's view.
  out = RunCommand(dir + "/harness < " + dir + "/stream.txt", &rc);
  ASSERT_EQ(rc, 0) << out;

  auto view = engine.View("q0");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  std::vector<std::string> rows;
  for (const auto& [row, mult] : view.value().rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      char buf[64];
      snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
      s += buf;
    }
    rows.push_back(s);
  }
  std::sort(rows.begin(), rows.end());
  std::string want;
  for (const auto& r : rows) want += "(" + r + ")";
  want += "\n";
  EXPECT_EQ(out, want) << c.name;
}

std::string IntegrationCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fig2", "grouped_minmax", "vwap_hybrid"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(All, CodegenIntegration, ::testing::Range(0, 3),
                         IntegrationCaseName);

}  // namespace
}  // namespace dbtoaster
