// Lexer and parser unit tests, including failure paths with actionable
// error messages.
#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace dbtoaster::sql {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  auto toks = Lex("SELECT a1.x, 3.5e2, 'it''s' <> <= >= < > = != -- cmt\n;");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : toks.value()) kinds.push_back(t.kind);
  std::vector<TokenKind> want = {
      TokenKind::kIdent, TokenKind::kIdent, TokenKind::kDot,
      TokenKind::kIdent, TokenKind::kComma, TokenKind::kDoubleLit,
      TokenKind::kComma, TokenKind::kStringLit, TokenKind::kNeq,
      TokenKind::kLe,    TokenKind::kGe,    TokenKind::kLt,
      TokenKind::kGt,    TokenKind::kEq,    TokenKind::kNeq,
      TokenKind::kSemicolon, TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(Lexer, StringEscapeAndValues) {
  auto toks = Lex("'it''s' 42 2.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].text, "it's");
  EXPECT_EQ(toks.value()[1].int_value, 42);
  EXPECT_DOUBLE_EQ(toks.value()[2].double_value, 2.5);
}

TEST(Lexer, ReportsPositions) {
  auto toks = Lex("a\n  @");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(Lexer, UnterminatedString) {
  auto toks = Lex("'abc");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("unterminated"), std::string::npos);
}

TEST(Parser, SimpleAggregate) {
  auto stmt = ParseSelect("select sum(a) from R");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->items.size(), 1u);
  EXPECT_EQ(stmt.value()->items[0].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(stmt.value()->from.size(), 1u);
}

TEST(Parser, FullQueryRoundTrips) {
  const char* sql =
      "SELECT b.X, SUM((b.Y * 2)) AS total FROM T1 b, T2 c WHERE "
      "((b.X = c.X) AND (c.Z > 3)) GROUP BY b.X";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->ToString(), sql);
}

TEST(Parser, Precedence) {
  auto stmt = ParseSelect("select sum(a + b * c) from R");
  ASSERT_TRUE(stmt.ok());
  // a + (b * c), not (a + b) * c.
  EXPECT_EQ(stmt.value()->items[0].expr->ToString(),
            "SUM((a + (b * c)))");
}

TEST(Parser, OrBindsLooserThanAnd) {
  auto stmt = ParseSelect("select count(*) from R where a=1 and b=2 or c=3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->where->op, BinOp::kOr);
}

TEST(Parser, ScalarSubquery) {
  auto stmt = ParseSelect(
      "select sum(a) from R where b < (select count(*) from S)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value()->where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(stmt.value()->where->rhs->kind, Expr::Kind::kSubquery);
}

TEST(Parser, TableAliases) {
  auto stmt = ParseSelect("select sum(b1.x) from B b1, B as b2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->from[0].alias, "b1");
  EXPECT_EQ(stmt.value()->from[1].alias, "b2");
}

TEST(Parser, UnaryMinusFoldsLiterals) {
  auto stmt = ParseSelect("select sum(-3 * a) from R");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->items[0].expr->ToString(), "SUM((-3 * a))");
}

TEST(Parser, ErrorsAreActionable) {
  auto r1 = ParseSelect("select from R");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);

  auto r2 = ParseSelect("select sum(a) R");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("FROM"), std::string::npos);

  auto r3 = ParseSelect("select sum(a) from R where");
  ASSERT_FALSE(r3.ok());

  auto r4 = ParseSelect("select sum(a) from R group by sum(b)");
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("GROUP BY"), std::string::npos);
}

TEST(Parser, CreateTable) {
  auto stmt = ParseCreateTable(
      "create table T(a int, b double, c varchar(20), d date, e decimal(10,2))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value().columns.size(), 5u);
  EXPECT_EQ(stmt.value().columns[0].second, Type::kInt);
  EXPECT_EQ(stmt.value().columns[1].second, Type::kDouble);
  EXPECT_EQ(stmt.value().columns[2].second, Type::kString);
  EXPECT_EQ(stmt.value().columns[3].second, Type::kDate);
  EXPECT_EQ(stmt.value().columns[4].second, Type::kDouble);
}

TEST(Parser, UnknownColumnType) {
  auto stmt = ParseCreateTable("create table T(a blob)");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("BLOB"), std::string::npos);
}

TEST(Parser, Script) {
  auto script = ParseScript(
      "create table R(a int); create table S(b int);"
      "select sum(a) from R; select count(*) from S;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script.value().tables.size(), 2u);
  ASSERT_EQ(script.value().queries.size(), 2u);
  EXPECT_EQ(script.value().queries[0].name, "q0");
  EXPECT_EQ(script.value().queries[1].name, "q1");
}

TEST(Parser, CountStar) {
  auto stmt = ParseSelect("select count(*) from R");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->items[0].expr->agg_arg, nullptr);
}

TEST(Parser, KeywordsCaseInsensitive) {
  // Parsing is purely syntactic; semantic checks live in the binder.
  auto stmt = ParseSelect("SeLeCt SuM(a) FrOm R wHeRe b = 1 GrOuP bY a");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto stmt2 = ParseSelect("SeLeCt a, SuM(b) FrOm R GrOuP bY a");
  EXPECT_TRUE(stmt2.ok()) << stmt2.status().ToString();
}


// ---------------------------------------------------------------------------
// Grown fragment: LEFT JOIN, HAVING, LIKE, IN, BETWEEN, CASE, EXTRACT,
// DATE/INTERVAL literals — positive round-trips plus grammar fuzzing.
// ---------------------------------------------------------------------------

TEST(Parser, LeftJoinRoundTrip) {
  const char* sql =
      "SELECT C.K, COUNT(*) FROM T1 C LEFT JOIN T2 O ON (C.K = O.K) "
      "GROUP BY C.K";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value()->from.size(), 2u);
  EXPECT_EQ(stmt.value()->from[1].join, TableRef::Join::kLeft);
  ASSERT_NE(stmt.value()->from[1].on, nullptr);
  EXPECT_EQ(stmt.value()->ToString(), sql);
}

TEST(Parser, InnerJoinOnParsesLikeWhere) {
  auto stmt = ParseSelect(
      "select sum(a.X) from T1 a inner join T2 b on a.K = b.K");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->from[1].join, TableRef::Join::kInner);
  // LEFT OUTER JOIN spelled with OUTER also parses.
  auto stmt2 = ParseSelect(
      "select count(*) from T1 a left outer join T2 b on a.K = b.K");
  ASSERT_TRUE(stmt2.ok()) << stmt2.status().ToString();
  EXPECT_EQ(stmt2.value()->from[1].join, TableRef::Join::kLeft);
}

TEST(Parser, HavingRoundTrip) {
  const char* sql =
      "SELECT K, SUM(V) FROM R GROUP BY K HAVING (COUNT(*) > 3)";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt.value()->having, nullptr);
  EXPECT_EQ(stmt.value()->ToString(), sql);
}

TEST(Parser, LikeAndNotLike) {
  auto stmt = ParseSelect(
      "select count(*) from R where TAG like 'M%' and NOTE not like '%x_'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE(stmt.value()->ToString().find("LIKE 'M%'"), std::string::npos);
  EXPECT_NE(stmt.value()->ToString().find("NOT LIKE '%x_'"),
            std::string::npos);
}

TEST(Parser, InListDesugarsToDisjunction) {
  auto stmt = ParseSelect(
      "select count(*) from R where TAG in ('A', 'B', 'C')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Desugars to (TAG = 'A' OR TAG = 'B') OR TAG = 'C'.
  std::string s = stmt.value()->ToString();
  EXPECT_NE(s.find("OR"), std::string::npos);
  EXPECT_NE(s.find("= 'C'"), std::string::npos);
  auto neg = ParseSelect("select count(*) from R where K not in (1, 2)");
  ASSERT_TRUE(neg.ok()) << neg.status().ToString();
  EXPECT_NE(neg.value()->ToString().find("NOT"), std::string::npos);
}

TEST(Parser, BetweenDesugarsToRange) {
  auto stmt = ParseSelect(
      "select sum(V) from R where V between 2 and 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::string s = stmt.value()->ToString();
  EXPECT_NE(s.find(">= 2"), std::string::npos);
  EXPECT_NE(s.find("<= 5"), std::string::npos);
}

TEST(Parser, CaseWhenRoundTrip) {
  const char* sql =
      "SELECT SUM(CASE WHEN (TAG = 'A') THEN 1 ELSE 0 END) FROM R";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->ToString(), sql);
  const auto& agg = *stmt.value()->items[0].expr;
  ASSERT_EQ(agg.kind, Expr::Kind::kAggregate);
  ASSERT_EQ(agg.agg_arg->kind, Expr::Kind::kCase);
  EXPECT_EQ(agg.agg_arg->case_branches.size(), 1u);
}

TEST(Parser, ExtractRoundTrip) {
  const char* sql = "SELECT COUNT(*) FROM R WHERE (EXTRACT(YEAR FROM D) = 1994)";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->ToString(), sql);
}

TEST(Parser, DateLiteralFoldsToDays) {
  auto stmt = ParseSelect("select count(*) from R where D >= DATE '1970-01-02'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Expr& cmp = *stmt.value()->where;
  ASSERT_EQ(cmp.rhs->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(cmp.rhs->literal.AsInt(), 1);  // one day after the epoch
}

TEST(Parser, IntervalArithmeticFolds) {
  auto stmt = ParseSelect(
      "select count(*) from R where D < DATE '1994-01-01' + INTERVAL '1' YEAR");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Expr& cmp = *stmt.value()->where;
  ASSERT_EQ(cmp.rhs->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(cmp.rhs->literal.AsInt(), CivilToDays(1995, 1, 1));
  auto minus = ParseSelect(
      "select count(*) from R where D < DATE '1994-03-31' - INTERVAL '1' MONTH");
  ASSERT_TRUE(minus.ok()) << minus.status().ToString();
  EXPECT_EQ(minus.value()->where->rhs->literal.AsInt(),
            CivilToDays(1994, 2, 28));  // day clamped to month length
}

// Every malformed input must produce a diagnostic carrying a line:column
// position — never a crash, never silent acceptance.
TEST(Parser, GrammarFuzzNewConstructs) {
  const char* kMalformed[] = {
      // LEFT JOIN clause shapes.
      "select count(*) from R left join",
      "select count(*) from R left join S",
      "select count(*) from R left outer S on R.K = S.K",
      "select count(*) from R left join S on",
      "select count(*) from R join S",
      // HAVING shapes.
      "select sum(V) from R group by K having",
      "select sum(V) from R having group by K",
      // LIKE / IN / BETWEEN shapes.
      "select count(*) from R where TAG like",
      "select count(*) from R where TAG not like like 'x'",
      "select count(*) from R where TAG not 'x'",
      "select count(*) from R where K in ()",
      "select count(*) from R where K in (1, 2",
      "select count(*) from R where K in 1, 2)",
      "select count(*) from R where V between 2",
      "select count(*) from R where V between 2 or 5",
      // CASE shapes.
      "select sum(case when TAG = 'A' then 1 else 0) from R",
      "select sum(case TAG = 'A' then 1 end) from R",
      "select sum(case when TAG = 'A' 1 end) from R",
      "select sum(case when then 1 end) from R",
      // EXTRACT shapes.
      "select count(*) from R where extract(CENTURY from D) = 19",
      "select count(*) from R where extract(YEAR D) = 1994",
      "select count(*) from R where extract(YEAR from) = 1994",
      "select count(*) from R where extract YEAR from D = 1994",
      // DATE / INTERVAL literal shapes.
      "select count(*) from R where D = DATE '1994-13-01'",
      "select count(*) from R where D = DATE '1994-02-30'",
      "select count(*) from R where D = DATE 'yesterday'",
      "select count(*) from R where D = DATE '1994-1-1'",
      "select count(*) from R where D < DATE '1994-01-01' + INTERVAL '1' WEEK",
      "select count(*) from R where D < DATE '1994-01-01' + INTERVAL 'x' YEAR",
      "select count(*) from R where D < DATE '1994-01-01' + INTERVAL '1-2' DAY",
      "select count(*) from R where D < DATE '1994-01-01' + INTERVAL '-' YEAR",
      "select count(*) from R where D < D + INTERVAL '1' YEAR",
  };
  for (const char* sql : kMalformed) {
    auto stmt = ParseSelect(sql);
    ASSERT_FALSE(stmt.ok()) << "accepted: " << sql;
    const std::string msg = stmt.status().ToString();
    EXPECT_NE(msg.find("line "), std::string::npos)
        << sql << " -> " << msg;
  }
}

}  // namespace
}  // namespace dbtoaster::sql
