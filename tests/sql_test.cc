// Lexer and parser unit tests, including failure paths with actionable
// error messages.
#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace dbtoaster::sql {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  auto toks = Lex("SELECT a1.x, 3.5e2, 'it''s' <> <= >= < > = != -- cmt\n;");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : toks.value()) kinds.push_back(t.kind);
  std::vector<TokenKind> want = {
      TokenKind::kIdent, TokenKind::kIdent, TokenKind::kDot,
      TokenKind::kIdent, TokenKind::kComma, TokenKind::kDoubleLit,
      TokenKind::kComma, TokenKind::kStringLit, TokenKind::kNeq,
      TokenKind::kLe,    TokenKind::kGe,    TokenKind::kLt,
      TokenKind::kGt,    TokenKind::kEq,    TokenKind::kNeq,
      TokenKind::kSemicolon, TokenKind::kEnd};
  EXPECT_EQ(kinds, want);
}

TEST(Lexer, StringEscapeAndValues) {
  auto toks = Lex("'it''s' 42 2.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].text, "it's");
  EXPECT_EQ(toks.value()[1].int_value, 42);
  EXPECT_DOUBLE_EQ(toks.value()[2].double_value, 2.5);
}

TEST(Lexer, ReportsPositions) {
  auto toks = Lex("a\n  @");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(Lexer, UnterminatedString) {
  auto toks = Lex("'abc");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("unterminated"), std::string::npos);
}

TEST(Parser, SimpleAggregate) {
  auto stmt = ParseSelect("select sum(a) from R");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->items.size(), 1u);
  EXPECT_EQ(stmt.value()->items[0].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(stmt.value()->from.size(), 1u);
}

TEST(Parser, FullQueryRoundTrips) {
  const char* sql =
      "SELECT b.X, SUM((b.Y * 2)) AS total FROM T1 b, T2 c WHERE "
      "((b.X = c.X) AND (c.Z > 3)) GROUP BY b.X";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->ToString(), sql);
}

TEST(Parser, Precedence) {
  auto stmt = ParseSelect("select sum(a + b * c) from R");
  ASSERT_TRUE(stmt.ok());
  // a + (b * c), not (a + b) * c.
  EXPECT_EQ(stmt.value()->items[0].expr->ToString(),
            "SUM((a + (b * c)))");
}

TEST(Parser, OrBindsLooserThanAnd) {
  auto stmt = ParseSelect("select count(*) from R where a=1 and b=2 or c=3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->where->op, BinOp::kOr);
}

TEST(Parser, ScalarSubquery) {
  auto stmt = ParseSelect(
      "select sum(a) from R where b < (select count(*) from S)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value()->where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(stmt.value()->where->rhs->kind, Expr::Kind::kSubquery);
}

TEST(Parser, TableAliases) {
  auto stmt = ParseSelect("select sum(b1.x) from B b1, B as b2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->from[0].alias, "b1");
  EXPECT_EQ(stmt.value()->from[1].alias, "b2");
}

TEST(Parser, UnaryMinusFoldsLiterals) {
  auto stmt = ParseSelect("select sum(-3 * a) from R");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->items[0].expr->ToString(), "SUM((-3 * a))");
}

TEST(Parser, ErrorsAreActionable) {
  auto r1 = ParseSelect("select from R");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kParseError);

  auto r2 = ParseSelect("select sum(a) R");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("FROM"), std::string::npos);

  auto r3 = ParseSelect("select sum(a) from R where");
  ASSERT_FALSE(r3.ok());

  auto r4 = ParseSelect("select sum(a) from R group by sum(b)");
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("GROUP BY"), std::string::npos);
}

TEST(Parser, CreateTable) {
  auto stmt = ParseCreateTable(
      "create table T(a int, b double, c varchar(20), d date, e decimal(10,2))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt.value().columns.size(), 5u);
  EXPECT_EQ(stmt.value().columns[0].second, Type::kInt);
  EXPECT_EQ(stmt.value().columns[1].second, Type::kDouble);
  EXPECT_EQ(stmt.value().columns[2].second, Type::kString);
  EXPECT_EQ(stmt.value().columns[3].second, Type::kDate);
  EXPECT_EQ(stmt.value().columns[4].second, Type::kDouble);
}

TEST(Parser, UnknownColumnType) {
  auto stmt = ParseCreateTable("create table T(a blob)");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("BLOB"), std::string::npos);
}

TEST(Parser, Script) {
  auto script = ParseScript(
      "create table R(a int); create table S(b int);"
      "select sum(a) from R; select count(*) from S;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script.value().tables.size(), 2u);
  ASSERT_EQ(script.value().queries.size(), 2u);
  EXPECT_EQ(script.value().queries[0].name, "q0");
  EXPECT_EQ(script.value().queries[1].name, "q1");
}

TEST(Parser, CountStar) {
  auto stmt = ParseSelect("select count(*) from R");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->items[0].expr->agg_arg, nullptr);
}

TEST(Parser, KeywordsCaseInsensitive) {
  // Parsing is purely syntactic; semantic checks live in the binder.
  auto stmt = ParseSelect("SeLeCt SuM(a) FrOm R wHeRe b = 1 GrOuP bY a");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto stmt2 = ParseSelect("SeLeCt a, SuM(b) FrOm R GrOuP bY a");
  EXPECT_TRUE(stmt2.ok()) << stmt2.status().ToString();
}

}  // namespace
}  // namespace dbtoaster::sql
