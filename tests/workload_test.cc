// End-to-end tests of the paper's two application workloads: the finance
// queries on the synthetic order-book stream, and SSB Q4.1 on the warehouse
// loading stream — each cross-checked against the re-evaluation oracle.
#include <gtest/gtest.h>

#include "src/baseline/reeval_engine.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/workload/orderbook.h"
#include "src/workload/tpch.h"

namespace dbtoaster {
namespace {

std::string Canon(const exec::QueryResult& r) {
  std::string s;
  for (const auto& [row, mult] : r.SortedRows()) {
    s += "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      char buf[64];
      snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
      s += buf;
    }
    s += ")";
  }
  return s;
}

TEST(OrderBookWorkload, GeneratorProducesConsistentBook) {
  workload::OrderBookConfig cfg;
  cfg.seed = 11;
  cfg.book_soft_cap = 100;
  workload::OrderBookGenerator gen(cfg);
  Catalog cat = workload::OrderBookCatalog();
  Database db(cat);
  auto events = gen.Generate(3000);
  for (const Event& ev : events) ASSERT_TRUE(db.Apply(ev).ok());
  // Every live row has multiplicity exactly one (ids unique), and the book
  // stayed bounded.
  for (const char* rel : {"BIDS", "ASKS"}) {
    const Table* t = db.FindTable(rel);
    ASSERT_NE(t, nullptr);
    for (const auto& [row, mult] : t->rows()) {
      EXPECT_EQ(mult, 1) << RowToString(row);
    }
    EXPECT_LT(t->NumDistinct(), 2000u);
  }
  EXPECT_EQ(db.FindTable("BIDS")->Cardinality(),
            static_cast<int64_t>(gen.live_bids()));
}

struct FinanceCase {
  const char* name;
  std::string query;
};

class FinanceQueries : public ::testing::TestWithParam<int> {};

TEST_P(FinanceQueries, MatchOracleOnOrderBookStream) {
  std::vector<FinanceCase> cases = {
      {"vwap", workload::VwapQuery()},
      {"sobi_bids", workload::SobiBidLeg()},
      {"sobi_asks", workload::SobiAskLeg()},
      {"market_maker", workload::MarketMakerQuery()},
      {"best_bid", workload::BestBidQuery()},
      {"best_ask", workload::BestAskQuery()},
  };
  const FinanceCase& c = cases[static_cast<size_t>(GetParam())];

  Catalog cat = workload::OrderBookCatalog();
  auto program = compiler::CompileQuery(cat, "q", c.query);
  ASSERT_TRUE(program.ok()) << c.name << ": " << program.status().ToString();
  runtime::Engine engine(std::move(program).value());

  baseline::ReevalEngine oracle(cat, /*eager=*/false);
  ASSERT_TRUE(oracle.AddQuery("q", c.query).ok());

  workload::OrderBookConfig cfg;
  cfg.seed = 5;
  cfg.num_brokers = 4;
  cfg.tick_spread = 10;
  cfg.book_soft_cap = 60;
  workload::OrderBookGenerator gen(cfg);
  auto events = gen.Generate(400);
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(engine.OnEvent(events[i]).ok()) << i;
    ASSERT_TRUE(oracle.OnEvent(events[i]).ok());
    // Check every 7th event (plus the last) to keep runtime reasonable
    // while still exercising mid-stream states.
    if (i % 7 != 0 && i + 1 != events.size()) continue;
    auto got = engine.View("q");
    auto want = oracle.View("q");
    ASSERT_TRUE(got.ok()) << c.name << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(Canon(got.value()), Canon(want.value()))
        << c.name << " diverged at event " << i << " ("
        << events[i].ToString() << ")";
  }
}

std::string FinanceCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"vwap",         "sobi_bids", "sobi_asks",
                                "market_maker", "best_bid",  "best_ask"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(All, FinanceQueries, ::testing::Range(0, 6),
                         FinanceCaseName);

TEST(WarehouseWorkload, SsbQ41MatchesOracle) {
  Catalog cat = workload::TpchCatalog();
  auto program = compiler::CompileQuery(cat, "q41", workload::SsbQ41Query());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine engine(std::move(program).value());

  baseline::ReevalEngine oracle(cat, /*eager=*/false);
  ASSERT_TRUE(oracle.AddQuery("q41", workload::SsbQ41Query()).ok());

  workload::TpchConfig cfg;
  cfg.seed = 3;
  cfg.num_customers = 40;
  cfg.num_suppliers = 10;
  cfg.num_parts = 20;
  workload::TpchGenerator gen(cfg);
  auto events = gen.Generate(600);
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(engine.OnEvent(events[i]).ok()) << i;
    ASSERT_TRUE(oracle.OnEvent(events[i]).ok());
    if (i % 23 != 0 && i + 1 != events.size()) continue;
    auto got = engine.View("q41");
    auto want = oracle.View("q41");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(Canon(got.value()), Canon(want.value()))
        << "diverged at event " << i << " (" << events[i].ToString() << ")";
  }
}

TEST(WarehouseWorkload, RevenueByYearMatchesOracle) {
  Catalog cat = workload::TpchCatalog();
  auto program =
      compiler::CompileQuery(cat, "rev", workload::RevenueByYearQuery());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine engine(std::move(program).value());

  baseline::ReevalEngine oracle(cat, /*eager=*/false);
  ASSERT_TRUE(oracle.AddQuery("rev", workload::RevenueByYearQuery()).ok());

  workload::TpchGenerator gen;
  auto events = gen.Generate(400);
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(engine.OnEvent(events[i]).ok());
    ASSERT_TRUE(oracle.OnEvent(events[i]).ok());
  }
  auto got = engine.View("rev");
  auto want = oracle.View("rev");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Canon(got.value()), Canon(want.value()));
}

}  // namespace
}  // namespace dbtoaster
