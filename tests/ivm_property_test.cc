// Property tests: for a suite of queries and seeded random update streams
// (inserts and deletes with arbitrary tuple lifetimes, per the paper's data
// model), the compiled trigger program's view must equal full re-evaluation
// by the Volcano oracle after EVERY event.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/exec/executor.h"
#include "src/runtime/engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

struct Case {
  const char* name;
  const char* schema;  // CREATE TABLE script
  const char* query;
  int distinct_values;  // key space size; small => many joins/collisions
};

const Case kCases[] = {
    {"fig2_sum_join3",
     "create table R(A int, B int); create table S(B int, C int); "
     "create table T(C int, D int);",
     "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C", 4},
    {"global_sum_single",
     "create table R(A int, B int);",
     "select sum(A) from R", 6},
    {"global_count",
     "create table R(A int, B int);",
     "select count(*) from R", 6},
    {"group_by_sum",
     "create table R(A int, B int);",
     "select B, sum(A) from R group by B", 4},
    {"group_by_count_avg",
     "create table R(A int, B int);",
     "select B, count(*), avg(A) from R group by B", 4},
    {"join2_group",
     "create table R(A int, B int); create table S(B int, C int);",
     "select S.C, sum(R.A) from R, S where R.B = S.B group by S.C", 3},
    {"filter_const",
     "create table R(A int, B int);",
     "select sum(A) from R where B = 2", 4},
    {"filter_range",
     "create table R(A int, B int);",
     "select sum(A) from R where A > 2 and B < 3", 5},
    {"disjunction",
     "create table R(A int, B int);",
     "select sum(A) from R where B = 1 or B = 3", 5},
    {"negation",
     "create table R(A int, B int);",
     "select sum(A) from R where not (B = 2)", 4},
    {"self_join",
     "create table R(A int, B int);",
     "select sum(r1.A * r2.A) from R r1, R r2 where r1.B = r2.B", 3},
    {"cross_product",
     "create table R(A int, B int); create table S(B int, C int);",
     "select sum(R.A * S.C) from R, S", 3},
    {"theta_join",
     "create table R(A int, B int); create table S(B int, C int);",
     "select sum(R.A) from R, S where R.B < S.B", 3},
    {"sum_expression",
     "create table L(QTY int, PRICE int, DISC int);",
     "select sum(QTY * (PRICE - DISC)) from L", 5},
    {"multi_agg",
     "create table R(A int, B int);",
     "select sum(A), count(*), avg(A) from R", 5},
    {"join4_chain",
     "create table A1(X int, Y int); create table A2(Y int, Z int); "
     "create table A3(Z int, W int); create table A4(W int, V int);",
     "select sum(A1.X * A4.V) from A1, A2, A3, A4 "
     "where A1.Y = A2.Y and A2.Z = A3.Z and A3.W = A4.W",
     3},
    {"group_two_keys",
     "create table R(A int, B int, C int);",
     "select B, C, sum(A) from R group by B, C", 3},
    {"min_single_table",
     "create table R(A int, B int);",
     "select min(A) from R", 5},
    {"max_grouped",
     "create table R(A int, B int);",
     "select B, max(A) from R group by B", 4},
    {"correlated_subquery_vwap_shape",
     "create table BIDS(PRICE int, VOLUME int);",
     "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 where "
     "(select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) < 10",
     5},
    {"uncorrelated_subquery",
     "create table R(A int, B int); create table S(B int, C int);",
     "select sum(R.A) from R where R.B < (select count(*) from S)", 4},
};

class IvmProperty : public ::testing::TestWithParam<
                        std::tuple<size_t /*case*/, uint64_t /*seed*/>> {};

std::string Canon(const exec::QueryResult& r) {
  std::string s;
  for (const auto& [row, mult] : r.SortedRows()) {
    // Compare numerically: render doubles with tolerance-aware formatting.
    s += "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      if (row[i].is_string()) {
        s += row[i].ToString();
      } else {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
        s += buf;
      }
    }
    s += ")";
  }
  return s;
}

/// The oracle result restricted to live groups: SQL group-by semantics
/// already omit empty groups; for global aggregates both sides emit a row.
TEST_P(IvmProperty, MatchesOracleAfterEveryEvent) {
  const Case& c = kCases[std::get<0>(GetParam())];
  uint64_t seed = std::get<1>(GetParam());

  auto script = sql::ParseScript(c.schema);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  Catalog cat;
  for (const auto& t : script.value().tables) {
    ASSERT_TRUE(cat.AddRelation(t).ok());
  }

  auto program = compiler::CompileQuery(cat, "q", c.query);
  ASSERT_TRUE(program.ok()) << c.name << ": " << program.status().ToString();
  runtime::Engine engine(std::move(program).value());

  // Oracle setup.
  Database oracle_db(cat);
  auto stmt = sql::ParseSelect(c.query);
  ASSERT_TRUE(stmt.ok());
  auto bound = exec::Bind(*stmt.value(), cat);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  exec::Executor oracle(&oracle_db);

  Rng rng(seed);
  std::vector<Event> live;  // inserted tuples eligible for deletion
  const int kEvents = 120;
  for (int i = 0; i < kEvents; ++i) {
    // 65% inserts / 35% deletes of a live tuple (arbitrary lifetimes).
    Event ev = Event::Insert("", {});
    if (!live.empty() && rng.Chance(0.35)) {
      size_t pick = rng.Uniform(live.size());
      ev = Event::Delete(live[pick].relation, live[pick].tuple);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const auto& rels = cat.relations();
      const Schema& schema = rels[rng.Uniform(rels.size())];
      Row tuple;
      for (size_t col = 0; col < schema.num_columns(); ++col) {
        tuple.push_back(Value(rng.Range(0, c.distinct_values - 1)));
      }
      ev = Event::Insert(schema.name(), std::move(tuple));
      live.push_back(ev);
    }

    ASSERT_TRUE(engine.OnEvent(ev).ok()) << c.name << " event " << i;
    ASSERT_TRUE(oracle_db.Apply(ev).ok());

    auto got = engine.View("q");
    ASSERT_TRUE(got.ok()) << c.name << ": " << got.status().ToString();
    auto want = oracle.Run(*bound.value());
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(Canon(got.value()), Canon(want.value()))
        << c.name << " diverged at event " << i << " (" << ev.ToString()
        << ")\n engine:\n" << got.value().ToString() << "\n oracle:\n"
        << want.value().ToString();
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
  return std::string(kCases[std::get<0>(info.param)].name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, IvmProperty,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kCases)),
                       ::testing::Values(1u, 2u, 3u)),
    CaseName);

}  // namespace
}  // namespace dbtoaster
