// Per-kernel coverage for the branch-free selection kernels in
// src/codegen/dbt_select.h. Every kernel is checked against a scalar
// reference over both the identity base (nullptr) and an explicit
// selection vector, including in-place refinement (out aliasing base).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "src/codegen/dbt_select.h"

namespace {

using dbt::SelOp;

template <typename T>
std::vector<uint32_t> Reference(const std::vector<T>& lane,
                                const std::vector<uint32_t>* base,
                                std::function<bool(const T&)> pred) {
  std::vector<uint32_t> out;
  if (base == nullptr) {
    for (uint32_t i = 0; i < lane.size(); ++i)
      if (pred(lane[i])) out.push_back(i);
  } else {
    for (uint32_t r : *base)
      if (pred(lane[r])) out.push_back(r);
  }
  return out;
}

std::vector<int64_t> I64Lane(uint32_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<int64_t> lane(n);
  for (auto& v : lane) v = static_cast<int64_t>(rng() % 17) - 4;
  return lane;
}

std::vector<double> F64Lane(uint32_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<double> lane(n);
  for (auto& v : lane) v = 0.25 * (static_cast<int>(rng() % 33) - 16);
  return lane;
}

template <typename T>
std::function<bool(const T&)> OpPred(SelOp op, T c) {
  switch (op) {
    case SelOp::kEq: return [c](const T& v) { return v == c; };
    case SelOp::kNe: return [c](const T& v) { return v != c; };
    case SelOp::kLt: return [c](const T& v) { return v < c; };
    case SelOp::kLe: return [c](const T& v) { return v <= c; };
    case SelOp::kGt: return [c](const T& v) { return v > c; };
    case SelOp::kGe: return [c](const T& v) { return v >= c; };
  }
  return [](const T&) { return false; };
}

const SelOp kAllOps[] = {SelOp::kEq, SelOp::kNe, SelOp::kLt,
                         SelOp::kLe, SelOp::kGt, SelOp::kGe};

TEST(SelectKernel, CmpI64AllOpsIdentityBase) {
  const auto lane = I64Lane(203, 1);
  std::vector<uint32_t> out(lane.size());
  for (SelOp op : kAllOps) {
    const int64_t c = 3;
    uint32_t k = dbt::SelCmp(lane.data(), op, c, nullptr,
                             static_cast<uint32_t>(lane.size()), out.data());
    auto want = Reference<int64_t>(lane, nullptr, OpPred<int64_t>(op, c));
    ASSERT_EQ(k, want.size()) << static_cast<int>(op);
    EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k), want);
  }
}

TEST(SelectKernel, CmpF64AllOpsExplicitBase) {
  const auto lane = F64Lane(211, 2);
  std::vector<uint32_t> base;
  for (uint32_t i = 0; i < lane.size(); i += 2) base.push_back(i);
  std::vector<uint32_t> out(base.size());
  for (SelOp op : kAllOps) {
    const double c = 0.5;
    uint32_t k = dbt::SelCmp(lane.data(), op, c, base.data(),
                             static_cast<uint32_t>(base.size()), out.data());
    auto want = Reference<double>(lane, &base, OpPred<double>(op, c));
    ASSERT_EQ(k, want.size()) << static_cast<int>(op);
    EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k), want);
  }
}

TEST(SelectKernel, RangeHalfOpen) {
  const auto lane = I64Lane(157, 3);
  std::vector<uint32_t> out(lane.size());
  uint32_t k = dbt::SelRange<int64_t>(lane.data(), -1, 4, nullptr,
                                      static_cast<uint32_t>(lane.size()),
                                      out.data());
  auto want = Reference<int64_t>(
      lane, nullptr, [](const int64_t& v) { return -1 <= v && v < 4; });
  ASSERT_EQ(k, want.size());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k), want);
  // Bounds are half-open: lo survives, hi does not.
  std::vector<int64_t> edges = {-2, -1, 3, 4};
  k = dbt::SelRange<int64_t>(edges.data(), -1, 4, nullptr, 4, out.data());
  EXPECT_EQ(k, 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
}

TEST(SelectKernel, InListI64AndF64) {
  const auto ilane = I64Lane(190, 4);
  const int64_t ivals[] = {0, 5, 9};
  std::vector<uint32_t> out(ilane.size());
  uint32_t k = dbt::SelIn(ilane.data(), ivals, 3, nullptr,
                          static_cast<uint32_t>(ilane.size()), out.data());
  auto want = Reference<int64_t>(ilane, nullptr, [&](const int64_t& v) {
    return v == 0 || v == 5 || v == 9;
  });
  ASSERT_EQ(k, want.size());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k), want);

  const auto dlane = F64Lane(190, 5);
  const double dvals[] = {0.0, 0.25};
  out.assign(dlane.size(), 0);
  k = dbt::SelIn(dlane.data(), dvals, 2, nullptr,
                 static_cast<uint32_t>(dlane.size()), out.data());
  auto dwant = Reference<double>(
      dlane, nullptr, [&](const double& v) { return v == 0.0 || v == 0.25; });
  ASSERT_EQ(k, dwant.size());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k), dwant);

  // Empty IN-list selects nothing.
  k = dbt::SelIn(ilane.data(), ivals, 0, nullptr,
                 static_cast<uint32_t>(ilane.size()), out.data());
  EXPECT_EQ(k, 0u);
}

TEST(SelectKernel, StringEqNe) {
  std::vector<std::string> lane = {"MAIL", "SHIP", "MAIL", "RAIL",
                                   "",     "MAILX", "MAIL"};
  std::vector<uint32_t> out(lane.size());
  uint32_t k = dbt::SelStrEq(lane.data(), "MAIL", nullptr,
                             static_cast<uint32_t>(lane.size()), out.data());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k),
            (std::vector<uint32_t>{0, 2, 6}));
  k = dbt::SelStrNe(lane.data(), "MAIL", nullptr,
                    static_cast<uint32_t>(lane.size()), out.data());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k),
            (std::vector<uint32_t>{1, 3, 4, 5}));
  // Base-restricted string pass.
  std::vector<uint32_t> base = {1, 2, 5};
  k = dbt::SelStrEq(lane.data(), "MAIL", base.data(), 3, out.data());
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + k),
            (std::vector<uint32_t>{2}));
}

TEST(SelectKernel, AndCompositionInPlace) {
  // Refinement chain with out aliasing base, mirroring generated prologues.
  const auto date = I64Lane(512, 7);
  const auto qty = I64Lane(512, 8);
  const auto disc = F64Lane(512, 9);
  std::vector<uint32_t> sel(date.size());
  uint32_t k = dbt::SelCmp<int64_t>(date.data(), SelOp::kGe, 0, nullptr,
                                    static_cast<uint32_t>(date.size()),
                                    sel.data());
  k = dbt::SelCmp<int64_t>(date.data(), SelOp::kLt, 6, sel.data(), k,
                           sel.data());
  k = dbt::SelCmp<int64_t>(qty.data(), SelOp::kLt, 2, sel.data(), k,
                           sel.data());
  k = dbt::SelCmp<double>(disc.data(), SelOp::kGe, -0.5, sel.data(), k,
                          sel.data());
  auto want = Reference<int64_t>(date, nullptr, [&](const int64_t&) {
    return false;  // replaced below; Reference needs index-based pred here
  });
  want.clear();
  for (uint32_t i = 0; i < date.size(); ++i) {
    if (date[i] >= 0 && date[i] < 6 && qty[i] < 2 && disc[i] >= -0.5)
      want.push_back(i);
  }
  ASSERT_EQ(k, want.size());
  EXPECT_EQ(std::vector<uint32_t>(sel.begin(), sel.begin() + k), want);
}

TEST(SelectKernel, EmptyAndFullSelectivity) {
  const auto lane = I64Lane(300, 11);
  std::vector<uint32_t> out(lane.size());
  uint32_t k = dbt::SelCmp<int64_t>(lane.data(), SelOp::kLt, -100, nullptr,
                                    static_cast<uint32_t>(lane.size()),
                                    out.data());
  EXPECT_EQ(k, 0u);
  k = dbt::SelCmp<int64_t>(lane.data(), SelOp::kLt, 100, nullptr,
                           static_cast<uint32_t>(lane.size()), out.data());
  EXPECT_EQ(k, lane.size());
  for (uint32_t i = 0; i < k; ++i) EXPECT_EQ(out[i], i);
}

TEST(SelectKernel, ZeroRows) {
  std::vector<uint32_t> out(1);
  uint32_t k =
      dbt::SelCmp<int64_t>(nullptr, SelOp::kEq, 0, nullptr, 0, out.data());
  EXPECT_EQ(k, 0u);
}

TEST(SelectKernel, SelBufStackAndHeap) {
  dbt::SelBuf buf;
  uint32_t* small = buf.data(64);
  ASSERT_NE(small, nullptr);
  small[63] = 42;  // in-bounds write on the inline buffer
  uint32_t* big = buf.data(4096);
  ASSERT_NE(big, nullptr);
  big[4095] = 7;
  EXPECT_NE(small, big);
}

TEST(SelectKernel, SelectionToggleRoundTrip) {
  EXPECT_TRUE(dbt::SelectionEnabled());  // default on
  dbt::SetSelectionEnabled(false);
  EXPECT_FALSE(dbt::SelectionEnabled());
  dbt::SetSelectionEnabled(true);
  EXPECT_TRUE(dbt::SelectionEnabled());
}

}  // namespace
