// Unit tests for the common kernel: Status/Result, Value semantics, hashing,
// string helpers, deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/str.h"
#include "src/common/value.h"

namespace dbtoaster {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("x"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_GT(Value(2.5), Value(2));
  // Equal values must hash equally (2 == 2.0).
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(Value, StringsCompareSeparately) {
  EXPECT_EQ(Value("abc"), Value(std::string("abc")));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_NE(Value("1"), Value(1));  // numerics sort before strings
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(Value::Add(Value(2), Value(3)), Value(5));
  EXPECT_TRUE(Value::Add(Value(2), Value(0.5)).is_double());
  EXPECT_EQ(Value::Mul(Value(4), Value(-3)), Value(-12));
  EXPECT_EQ(Value::Div(Value(1), Value(0)), Value(0.0));  // SQL-style
  EXPECT_EQ(Value::Neg(Value(7)), Value(-7));
}

TEST(Value, ToStringShowsType) {
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
  EXPECT_EQ(Value("x").ToString(), "'x'");
}

TEST(Row, HashAndEquality) {
  RowHash h;
  RowEq eq;
  Row a{Value(1), Value("x")};
  Row b{Value(1), Value("x")};
  Row c{Value(1), Value("y")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_FALSE(eq(a, c));
  EXPECT_EQ(h(a), h(b));
}

TEST(Str, Helpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());

  Rng r(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit

  double mean = 0;
  for (int i = 0; i < 10000; ++i) mean += r.NextDouble();
  mean /= 10000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

}  // namespace
}  // namespace dbtoaster
