// Unit tests for the common kernel: Status/Result, Value semantics, hashing,
// string helpers, deterministic RNG.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/str.h"
#include "src/common/value.h"

namespace dbtoaster {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("x"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_GT(Value(2.5), Value(2));
  // Equal values must hash equally (2 == 2.0).
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(Value, StringsCompareSeparately) {
  EXPECT_EQ(Value("abc"), Value(std::string("abc")));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_NE(Value("1"), Value(1));  // numerics sort before strings
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(Value::Add(Value(2), Value(3)), Value(5));
  EXPECT_TRUE(Value::Add(Value(2), Value(0.5)).is_double());
  EXPECT_EQ(Value::Mul(Value(4), Value(-3)), Value(-12));
  EXPECT_EQ(Value::Div(Value(1), Value(0)), Value(0.0));  // SQL-style
  EXPECT_EQ(Value::Neg(Value(7)), Value(-7));
}

TEST(Value, ToStringShowsType) {
  EXPECT_EQ(Value(3).ToString(), "3");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
  EXPECT_EQ(Value("x").ToString(), "'x'");
}

TEST(Row, HashAndEquality) {
  RowHash h;
  RowEq eq;
  Row a{Value(1), Value("x")};
  Row b{Value(1), Value("x")};
  Row c{Value(1), Value("y")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_FALSE(eq(a, c));
  EXPECT_EQ(h(a), h(b));
}

TEST(Str, Helpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());

  Rng r(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit

  double mean = 0;
  for (int i = 0; i < 10000; ++i) mean += r.NextDouble();
  mean /= 10000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

// Exact cross-type numeric comparison at the double-precision boundary:
// int64 2^53 + 1 is not representable as a double, so the old AsDouble()
// shortcut equated it with 2^53 (while their hashes differed — a broken
// map-key equivalence). Comparison must be exact, and equal cross-type
// values must still hash identically.
TEST(ValueCompare, ExactAtDoublePrecisionBoundary) {
  const int64_t p53 = int64_t{1} << 53;  // 9007199254740992
  EXPECT_EQ(Value::Compare(Value(p53), Value(static_cast<double>(p53))), 0);
  EXPECT_GT(Value::Compare(Value(p53 + 1), Value(static_cast<double>(p53))),
            0);
  EXPECT_LT(Value::Compare(Value(static_cast<double>(p53)), Value(p53 + 1)),
            0);
  EXPECT_LT(Value::Compare(Value(p53 - 1), Value(static_cast<double>(p53))),
            0);
  // Transitivity at the boundary: 2^53 < 2^53 + 1 < 2^53 + 2 (the double
  // between them equals only its exact twin).
  const double d53p2 = static_cast<double>(p53 + 2);  // representable
  EXPECT_EQ(Value::Compare(Value(p53 + 2), Value(d53p2)), 0);
  EXPECT_GT(Value::Compare(Value(p53 + 3), Value(d53p2)), 0);

  // Values that compare equal across types hash identically.
  EXPECT_EQ(Value(p53).Hash(), Value(static_cast<double>(p53)).Hash());
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
  // ... and unequal boundary neighbours may now coexist as distinct keys.
  EXPECT_NE(Value(p53 + 1), Value(static_cast<double>(p53)));
}

TEST(ValueCompare, ExactOutsideInt64Range) {
  const double two63 = 9223372036854775808.0;  // 2^63
  EXPECT_LT(Value::Compare(Value(INT64_MAX), Value(two63)), 0);
  EXPECT_GT(Value::Compare(Value(two63), Value(INT64_MAX)), 0);
  EXPECT_GT(Value::Compare(Value(INT64_MIN), Value(-two63 * 2)), 0);
  // -2^63 is exactly representable and in range: equal across types, and
  // equal values hash identically even at the extreme edge.
  EXPECT_EQ(Value::Compare(Value(INT64_MIN), Value(-two63)), 0);
  EXPECT_EQ(Value(INT64_MIN).Hash(), Value(-two63).Hash());
  // Fractions near an integer compare by the exact fractional part.
  EXPECT_LT(Value::Compare(Value(int64_t{5}), Value(5.5)), 0);
  EXPECT_GT(Value::Compare(Value(int64_t{6}), Value(5.5)), 0);
}

// NaN (reachable through SQL division) must order consistently in both the
// mixed int/double and double/double paths — after every number, equal to
// itself — so comparators built on Compare keep strict weak ordering.
TEST(ValueCompare, NanOrdersAfterEveryNumberConsistently) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_LT(Value::Compare(Value(int64_t{1}), Value(nan)), 0);
  EXPECT_GT(Value::Compare(Value(nan), Value(int64_t{1})), 0);
  EXPECT_LT(Value::Compare(Value(1.0), Value(nan)), 0);
  EXPECT_GT(Value::Compare(Value(nan), Value(1.0)), 0);
  EXPECT_EQ(Value::Compare(Value(nan), Value(nan)), 0);
  // Transitivity probe across the representations of 1: int 1 == 1.0, and
  // both sort before NaN.
  EXPECT_EQ(Value::Compare(Value(int64_t{1}), Value(1.0)), 0);
}

}  // namespace
}  // namespace dbtoaster
