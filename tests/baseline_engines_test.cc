// Cross-engine equivalence: re-evaluation, first-order IVM and the DBToaster
// runtime must agree on every view after every event of a random stream.
#include <gtest/gtest.h>

#include "src/baseline/ivm1_engine.h"
#include "src/baseline/reeval_engine.h"
#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/compiler/compile.h"
#include "src/runtime/engine.h"
#include "src/sql/parser.h"

namespace dbtoaster {
namespace {

std::string Canon(const exec::QueryResult& r) {
  std::string s;
  for (const auto& [row, mult] : r.SortedRows()) {
    s += "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) s += ",";
      char buf[64];
      snprintf(buf, sizeof(buf), "%.9g", row[i].AsDouble());
      s += buf;
    }
    s += ")";
  }
  return s;
}

struct EngineCase {
  const char* name;
  const char* schema;
  const char* query;
};

const EngineCase kCases[] = {
    {"fig2",
     "create table R(A int, B int); create table S(B int, C int); "
     "create table T(C int, D int);",
     "select sum(R.A * T.D) from R, S, T where R.B = S.B and S.C = T.C"},
    {"grouped",
     "create table R(A int, B int);",
     "select B, sum(A), count(*) from R group by B"},
    {"filtered_join",
     "create table R(A int, B int); create table S(B int, C int);",
     "select sum(R.A * S.C) from R, S where R.B = S.B and S.C > 1"},
};

class BaselineAgreement
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(BaselineAgreement, AllEnginesAgree) {
  const EngineCase& c = kCases[std::get<0>(GetParam())];
  uint64_t seed = std::get<1>(GetParam());

  auto script = sql::ParseScript(c.schema);
  ASSERT_TRUE(script.ok());
  Catalog cat;
  for (const auto& t : script.value().tables) ASSERT_TRUE(cat.AddRelation(t).ok());

  baseline::ReevalEngine reeval(cat, /*eager=*/false);
  ASSERT_TRUE(reeval.AddQuery("q", c.query).ok());

  baseline::Ivm1Engine ivm1(cat);
  ASSERT_TRUE(ivm1.AddQuery("q", c.query).ok());

  auto program = compiler::CompileQuery(cat, "q", c.query);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  runtime::Engine toaster(std::move(program).value());

  Rng rng(seed);
  std::vector<Event> live;
  for (int i = 0; i < 150; ++i) {
    Event ev = Event::Insert("", {});
    if (!live.empty() && rng.Chance(0.3)) {
      size_t pick = rng.Uniform(live.size());
      ev = Event::Delete(live[pick].relation, live[pick].tuple);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const auto& rels = cat.relations();
      const Schema& schema = rels[rng.Uniform(rels.size())];
      Row tuple;
      for (size_t col = 0; col < schema.num_columns(); ++col) {
        tuple.push_back(Value(rng.Range(0, 3)));
      }
      ev = Event::Insert(schema.name(), std::move(tuple));
      live.push_back(ev);
    }
    ASSERT_TRUE(reeval.OnEvent(ev).ok());
    ASSERT_TRUE(ivm1.OnEvent(ev).ok());
    ASSERT_TRUE(toaster.OnEvent(ev).ok());

    auto r1 = reeval.View("q");
    auto r2 = ivm1.View("q");
    auto r3 = toaster.View("q");
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ASSERT_TRUE(r3.ok()) << r3.status().ToString();
    EXPECT_EQ(Canon(r1.value()), Canon(r2.value()))
        << c.name << " reeval vs ivm1 at event " << i << " " << ev.ToString();
    EXPECT_EQ(Canon(r1.value()), Canon(r3.value()))
        << c.name << " reeval vs toaster at event " << i << " "
        << ev.ToString();
    if (HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, BaselineAgreement,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kCases)),
                       ::testing::Values(7u, 8u)));

TEST(Ivm1, RejectsSubqueriesAndExtremes) {
  Catalog cat;
  ASSERT_TRUE(
      cat.AddRelation(Schema("R", {{"A", Type::kInt}, {"B", Type::kInt}}))
          .ok());
  baseline::Ivm1Engine ivm1(cat);
  EXPECT_EQ(ivm1.AddQuery("q1", "select min(A) from R").code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(ivm1.AddQuery(
                    "q2",
                    "select sum(A) from R where B < (select count(*) from R)")
                .code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace dbtoaster
