#include "src/workload/tpch.h"

namespace dbtoaster::workload {

Catalog TpchCatalog() {
  Catalog cat;
  (void)cat.AddRelation(Schema("CUSTOMER", {{"CUSTKEY", Type::kInt},
                                            {"NATION", Type::kInt},
                                            {"REGION", Type::kInt}}));
  (void)cat.AddRelation(Schema("SUPPLIER", {{"SUPPKEY", Type::kInt},
                                            {"NATION", Type::kInt},
                                            {"REGION", Type::kInt}}));
  (void)cat.AddRelation(
      Schema("PART", {{"PARTKEY", Type::kInt}, {"MFGR", Type::kInt}}));
  (void)cat.AddRelation(Schema("ORDERS", {{"ORDERKEY", Type::kInt},
                                          {"CUSTKEY", Type::kInt},
                                          {"OYEAR", Type::kInt}}));
  (void)cat.AddRelation(Schema("LINEITEM", {{"ORDERKEY", Type::kInt},
                                            {"PARTKEY", Type::kInt},
                                            {"SUPPKEY", Type::kInt},
                                            {"QUANTITY", Type::kInt},
                                            {"EXTENDEDPRICE", Type::kInt},
                                            {"SUPPLYCOST", Type::kInt}}));
  return cat;
}

std::string SsbQ41Query() {
  return "select O.OYEAR, C.NATION, sum(L.EXTENDEDPRICE - L.SUPPLYCOST) "
         "from LINEITEM L, ORDERS O, CUSTOMER C, SUPPLIER S, PART P "
         "where L.ORDERKEY = O.ORDERKEY and O.CUSTKEY = C.CUSTKEY "
         "and L.SUPPKEY = S.SUPPKEY and L.PARTKEY = P.PARTKEY "
         "and C.REGION = 1 and S.REGION = 1 "
         "and (P.MFGR = 1 or P.MFGR = 2) "
         "group by O.OYEAR, C.NATION";
}

std::string RevenueByYearQuery() {
  return "select O.OYEAR, sum(L.EXTENDEDPRICE * L.QUANTITY) "
         "from LINEITEM L, ORDERS O where L.ORDERKEY = O.ORDERKEY "
         "group by O.OYEAR";
}

TpchGenerator::TpchGenerator(TpchConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<Event> TpchGenerator::DimensionLoad() {
  std::vector<Event> out;
  for (int c = 1; c <= config_.num_customers; ++c) {
    int64_t nation = rng_.Range(0, config_.num_nations - 1);
    out.push_back(Event::Insert(
        "CUSTOMER", {Value(int64_t{c}), Value(nation),
                     Value(nation % config_.num_regions)}));
  }
  for (int s = 1; s <= config_.num_suppliers; ++s) {
    int64_t nation = rng_.Range(0, config_.num_nations - 1);
    out.push_back(Event::Insert(
        "SUPPLIER", {Value(int64_t{s}), Value(nation),
                     Value(nation % config_.num_regions)}));
  }
  for (int p = 1; p <= config_.num_parts; ++p) {
    out.push_back(Event::Insert(
        "PART",
        {Value(int64_t{p}), Value(rng_.Range(1, config_.num_mfgrs))}));
  }
  return out;
}

size_t TpchGenerator::NextOrder(std::vector<Event>* out) {
  size_t start = out->size();
  int64_t orderkey = next_orderkey_++;
  int64_t custkey = rng_.Range(1, config_.num_customers);
  int64_t year = rng_.Range(config_.years_from, config_.years_to);
  out->push_back(
      Event::Insert("ORDERS", {Value(orderkey), Value(custkey), Value(year)}));
  int lines = static_cast<int>(rng_.Range(1, config_.lines_per_order_max));
  for (int l = 0; l < lines; ++l) {
    Row li{Value(orderkey),
           Value(rng_.Range(1, config_.num_parts)),
           Value(rng_.Range(1, config_.num_suppliers)),
           Value(rng_.Range(1, 50)),
           Value(rng_.Range(100, 10000)),
           Value(rng_.Range(50, 5000))};
    out->push_back(Event::Insert("LINEITEM", li));
    if (rng_.Chance(config_.p_correction)) {
      // Correction: the loaded fact row is amended (delete + reinsert with a
      // fixed price) — the update pattern that forces general deletes.
      out->push_back(Event::Delete("LINEITEM", li));
      li[4] = Value(rng_.Range(100, 10000));
      out->push_back(Event::Insert("LINEITEM", li));
    }
  }
  return out->size() - start;
}

std::vector<Event> TpchGenerator::Generate(size_t n) {
  std::vector<Event> out = DimensionLoad();
  size_t dims = out.size();
  while (out.size() - dims < n) NextOrder(&out);
  return out;
}

}  // namespace dbtoaster::workload
