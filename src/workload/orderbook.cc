#include "src/workload/orderbook.h"

#include <algorithm>

namespace dbtoaster::workload {

Catalog OrderBookCatalog() {
  Catalog cat;
  std::vector<std::pair<std::string, Type>> cols = {
      {"ID", Type::kInt},
      {"BROKER_ID", Type::kInt},
      {"PRICE", Type::kInt},
      {"VOLUME", Type::kInt},
  };
  (void)cat.AddRelation(Schema("BIDS", cols));
  (void)cat.AddRelation(Schema("ASKS", cols));
  return cat;
}

std::string VwapQuery() {
  // sum of price*volume over the bids whose deeper book (orders at higher
  // prices) holds less than 25% of total bid volume — the paper's VWAP
  // metric for the SOBI strategy.
  return "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 where "
         "(select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) * 4 "
         "< (select sum(b3.VOLUME) from BIDS b3)";
}

std::string SobiBidLeg() {
  return "select sum(PRICE * VOLUME), sum(VOLUME) from BIDS";
}

std::string SobiAskLeg() {
  return "select sum(PRICE * VOLUME), sum(VOLUME) from ASKS";
}

std::string MarketMakerQuery() {
  return "select b.BROKER_ID, sum(a.VOLUME - b.VOLUME) "
         "from BIDS b, ASKS a where b.BROKER_ID = a.BROKER_ID "
         "group by b.BROKER_ID";
}

std::string BestBidQuery() { return "select max(PRICE) from BIDS"; }
std::string BestAskQuery() { return "select min(PRICE) from ASKS"; }

OrderBookGenerator::OrderBookGenerator(OrderBookConfig config)
    : config_(config), rng_(config.seed), mid_(config.initial_price) {}

Row OrderBookGenerator::ToRow(const Order& o) const {
  return Row{Value(o.id), Value(o.broker), Value(o.price), Value(o.volume)};
}

size_t OrderBookGenerator::EmitAdd(bool bid, std::vector<Event>* out) {
  Order o;
  o.id = next_id_++;
  o.broker = rng_.Range(0, config_.num_brokers - 1);
  int64_t offset = rng_.Range(0, config_.tick_spread);
  o.price = bid ? mid_ - offset : mid_ + offset;
  o.volume = rng_.Range(1, config_.max_volume);
  (bid ? bids_ : asks_).push_back(o);
  out->push_back(Event::Insert(bid ? "BIDS" : "ASKS", ToRow(o)));
  return 1;
}

size_t OrderBookGenerator::Next(std::vector<Event>* out) {
  // Price random walk.
  mid_ += rng_.Range(-2, 2);
  bool bid = rng_.Chance(0.5);
  std::vector<Order>& side = bid ? bids_ : asks_;
  const char* rel = bid ? "BIDS" : "ASKS";

  double roll = rng_.NextDouble();
  // Soft cap: when the book is large, bias strongly toward withdrawals so
  // the state stays bounded (the paper's "self-managing" property).
  double p_withdraw = config_.p_withdraw;
  if (side.size() > config_.book_soft_cap) p_withdraw = 0.75;

  if (!side.empty() && roll < p_withdraw) {
    size_t pick = rng_.Uniform(side.size());
    out->push_back(Event::Delete(rel, ToRow(side[pick])));
    side.erase(side.begin() + static_cast<long>(pick));
    return 1;
  }
  if (!side.empty() && roll < p_withdraw + config_.p_modify) {
    // Modify = delete + insert with a new price/volume (same id/broker).
    size_t pick = rng_.Uniform(side.size());
    Order o = side[pick];
    out->push_back(Event::Delete(rel, ToRow(o)));
    int64_t offset = rng_.Range(0, config_.tick_spread);
    o.price = bid ? mid_ - offset : mid_ + offset;
    o.volume = rng_.Range(1, config_.max_volume);
    side[pick] = o;
    out->push_back(Event::Insert(rel, ToRow(o)));
    return 2;
  }
  return EmitAdd(bid, out);
}

std::vector<Event> OrderBookGenerator::Generate(size_t n) {
  std::vector<Event> out;
  out.reserve(n + 1);
  while (out.size() < n) Next(&out);
  return out;
}

}  // namespace dbtoaster::workload
