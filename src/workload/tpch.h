// TPC-H-shaped data generator and the star-schema (SSB) warehouse-loading
// workload (§4: "Data warehouse loading").
//
// The paper emulates data integration by transforming a TPC-H dataset into
// the Star Schema Benchmark's star schema and evaluating SSB query 4.1 on
// the result, processing loading and analysis jointly. We reproduce that:
// the generator emits a deterministic TPC-H-shaped update stream (dimension
// loads, then fact inserts with occasional corrections as delete+insert),
// and the standing query is SSB Q4.1 expressed directly over the normalized
// tables — compiling integration (the 5-way join) and aggregation together,
// which is exactly the paper's "avoid materializing large intermediate
// results" argument.
#ifndef DBTOASTER_WORKLOAD_TPCH_H_
#define DBTOASTER_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/storage/table.h"

namespace dbtoaster::workload {

/// Normalized (TPC-H-shaped) schemas:
///   CUSTOMER(CUSTKEY, NATION, REGION)
///   SUPPLIER(SUPPKEY, NATION, REGION)
///   PART(PARTKEY, MFGR)
///   ORDERS(ORDERKEY, CUSTKEY, OYEAR)
///   LINEITEM(ORDERKEY, PARTKEY, SUPPKEY, QUANTITY, EXTENDEDPRICE,
///            SUPPLYCOST)
Catalog TpchCatalog();

/// SSB Q4.1 ("profit by year and customer nation") over the normalized
/// schema — the data-integration join and the aggregation in one query:
///   select O.OYEAR, C.NATION, sum(L.EXTENDEDPRICE - L.SUPPLYCOST)
///   from LINEITEM L, ORDERS O, CUSTOMER C, SUPPLIER S, PART P
///   where joins... and C.REGION = 1 and S.REGION = 1
///     and (P.MFGR = 1 or P.MFGR = 2)
///   group by O.OYEAR, C.NATION
std::string SsbQ41Query();

/// A smaller 2-way loading probe (lineitem revenue by order year).
std::string RevenueByYearQuery();

struct TpchConfig {
  uint64_t seed = 7;
  int num_customers = 200;
  int num_suppliers = 50;
  int num_parts = 100;
  int num_regions = 5;
  int num_nations = 25;
  int num_mfgrs = 5;
  int years_from = 1992;
  int years_to = 1998;
  int lines_per_order_max = 7;
  double p_correction = 0.05;  ///< fact corrections: delete + reinsert
};

/// Deterministic warehouse-loading stream: all dimension inserts first, then
/// order/lineitem inserts with occasional corrections.
class TpchGenerator {
 public:
  explicit TpchGenerator(TpchConfig config = {});

  /// Dimension-load events (CUSTOMER, SUPPLIER, PART).
  std::vector<Event> DimensionLoad();

  /// Appends events for one order (1 ORDERS insert + k LINEITEM inserts,
  /// possibly with corrections). Returns number of events appended.
  size_t NextOrder(std::vector<Event>* out);

  /// Convenience: dimension load + enough orders for >= n fact events.
  std::vector<Event> Generate(size_t n);

 private:
  TpchConfig config_;
  Rng rng_;
  int64_t next_orderkey_ = 1;
};

}  // namespace dbtoaster::workload

#endif  // DBTOASTER_WORKLOAD_TPCH_H_
