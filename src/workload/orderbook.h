// Synthetic NASDAQ-TotalView-style limit order book stream (§4: "Processing
// order books in equities trading").
//
// Investors continually add, modify and withdraw limit orders; the paper
// models the bid/ask books as relations under high-volume deltas whose state
// stays bounded in practice but cannot be expressed as windows. The
// generator reproduces those dynamics deterministically: a price random
// walk, configurable add/modify/withdraw mix, and a book-size soft cap
// (self-managing state).
#ifndef DBTOASTER_WORKLOAD_ORDERBOOK_H_
#define DBTOASTER_WORKLOAD_ORDERBOOK_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/rng.h"
#include "src/storage/table.h"

namespace dbtoaster::workload {

/// Order book schemas: BIDS(ID, BROKER_ID, PRICE, VOLUME) and ASKS(...).
/// Prices are integer ticks; volumes integer lots (exact arithmetic keeps
/// the correctness oracle byte-identical).
Catalog OrderBookCatalog();

/// The paper's finance standing queries.
///
/// VWAP: the volume-weighted average price query over the bid book — the
/// orders making up the top quarter of total volume (nested, correlated
/// aggregates; DBToaster's hybrid compilation path).
std::string VwapQuery();

/// SOBI legs: price-volume sums per book side; the static order book
/// imbalance signal is computed from the two view values.
std::string SobiBidLeg();
std::string SobiAskLeg();

/// Market-maker detection: brokers active on both sides, with their net
/// posted volume (flat equi-join with GROUP BY).
std::string MarketMakerQuery();

/// Best bid / best ask (MIN/MAX ordered-multiset path).
std::string BestBidQuery();
std::string BestAskQuery();

struct OrderBookConfig {
  uint64_t seed = 42;
  int num_brokers = 10;
  int64_t initial_price = 10000;  ///< ticks
  int64_t tick_spread = 50;       ///< max distance from mid for new orders
  int64_t max_volume = 500;
  size_t book_soft_cap = 2000;    ///< per side; beyond it deletes dominate
  double p_modify = 0.25;         ///< modify = delete + insert
  double p_withdraw = 0.25;       ///< withdraw/execute = delete
};

/// Deterministic order book stream generator.
class OrderBookGenerator {
 public:
  explicit OrderBookGenerator(OrderBookConfig config = {});

  /// Appends the events for one order action (1 event for add/withdraw,
  /// 2 for modify) to `out`. Returns the number of events appended.
  size_t Next(std::vector<Event>* out);

  /// Convenience: a stream of at least `n` events.
  std::vector<Event> Generate(size_t n);

  size_t live_bids() const { return bids_.size(); }
  size_t live_asks() const { return asks_.size(); }

 private:
  struct Order {
    int64_t id, broker, price, volume;
  };
  Row ToRow(const Order& o) const;
  size_t EmitAdd(bool bid, std::vector<Event>* out);

  OrderBookConfig config_;
  Rng rng_;
  int64_t next_id_ = 1;
  int64_t mid_;
  std::vector<Order> bids_, asks_;
};

}  // namespace dbtoaster::workload

#endif  // DBTOASTER_WORKLOAD_ORDERBOOK_H_
