// Deterministic pseudo-random number generation for workload generators and
// property tests. Seeded runs are reproducible across platforms (we do not
// rely on std::uniform_* distribution implementations, whose outputs are not
// standardised across library vendors).
#ifndef DBTOASTER_COMMON_RNG_H_
#define DBTOASTER_COMMON_RNG_H_

#include <cstdint>

#include "src/common/hash.h"

namespace dbtoaster {

/// xoshiro256**-style generator seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x = Mix64(x);
      si = x;
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Gaussian via Box–Muller (one value per call; simple and deterministic).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_RNG_H_
