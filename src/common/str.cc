#include "src/common/str.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dbtoaster {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative two-pointer matcher with single-level '%' backtracking (the
  // classic wildcard algorithm; linear in |s|*segments, no recursion).
  size_t si = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_si = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      si = ++star_si;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

}  // namespace dbtoaster
