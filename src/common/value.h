// Dynamic runtime value used throughout the system: tuple fields, map keys,
// aggregate values. Supports the paper's data model: 64-bit integers,
// doubles, strings, and dates (stored as days-since-epoch integers but kept
// as a distinct logical type in the catalog).
#ifndef DBTOASTER_COMMON_VALUE_H_
#define DBTOASTER_COMMON_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "src/common/hash.h"

namespace dbtoaster {

/// Logical column / expression type.
enum class Type : uint8_t {
  kInt = 0,     ///< 64-bit signed integer
  kDouble = 1,  ///< IEEE double
  kString = 2,  ///< variable-length string
  kDate = 3,    ///< days since 1970-01-01, stored as int64
};

const char* TypeName(Type t);

/// True when `t` is summable/orderable as a number (kInt, kDouble, kDate).
bool IsNumeric(Type t);

/// Result type of an arithmetic operation over two numeric types:
/// double wins over int; dates decay to int under arithmetic.
Type PromoteNumeric(Type a, Type b);

/// A dynamically-typed scalar value.
///
/// Values order and compare across numeric types (2 == 2.0). Strings compare
/// only with strings. Arithmetic helpers implement the SQL numeric promotion
/// used by the executor, the trigger interpreter and generated code.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(bool b) : v_(static_cast<int64_t>(b ? 1 : 0)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return !is_string(); }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric truthiness: nonzero numeric, or nonempty string.
  bool IsZero() const;

  /// SQL-style literal rendering ('abc' quoted, doubles shortest-round-trip).
  std::string ToString() const;

  /// Total ordering: numerics by value, strings lexicographic; numerics sort
  /// before strings (only reachable in heterogeneous debug dumps).
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return Compare(a, b) >= 0;
  }

  /// Arithmetic with numeric promotion. String operands are an internal
  /// error (the type checker rejects them before execution).
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  /// Division always yields double; division by zero yields 0.0 (SQL NULL is
  /// out of scope; aggregate reads over empty groups behave the same way).
  static Value Div(const Value& a, const Value& b);
  static Value Neg(const Value& a);

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

// ---- calendar dates ---------------------------------------------------
//
// Dates are stored as days since 1970-01-01 in plain int64 Values (the
// catalog keeps kDate as a distinct logical type). The civil-calendar
// conversions below are exact over the proleptic Gregorian calendar.

/// Days since epoch for a civil date (y-m-d). No range validation beyond
/// what the caller provides.
int64_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int64_t days, int* year, int* month, int* day);

/// Parse an ISO 'YYYY-MM-DD' date literal body into days since epoch.
/// Returns false on malformed input (wrong shape or out-of-range fields).
bool ParseDateLiteral(const std::string& text, int64_t* days);

/// EXTRACT fields over days-since-epoch dates.
int64_t ExtractYear(int64_t days);
int64_t ExtractMonth(int64_t days);
int64_t ExtractDay(int64_t days);

/// DATE +/- INTERVAL arithmetic: add n years/months/days (unit is one of
/// "YEAR", "MONTH", "DAY"; callers pass uppercase). Month/year addition
/// clamps the day-of-month to the target month's length (SQL behavior).
int64_t AddInterval(int64_t days, int64_t n, const std::string& unit);

/// A row of values (tuple). Also used as a composite map key.
using Row = std::vector<Value>;

std::string RowToString(const Row& row);

struct RowHash {
  size_t operator()(const Row& r) const {
    // Same seed and fold as the compiled path's TupleHash: a Row and the
    // equivalent typed tuple produce identical finalized hashes.
    size_t h = kHashSeed;
    for (const Value& v : r) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_VALUE_H_
