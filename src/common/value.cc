#include "src/common/value.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <ostream>
#include <sstream>

namespace dbtoaster {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kInt:
      return "INT";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
    case Type::kDate:
      return "DATE";
  }
  return "?";
}

bool IsNumeric(Type t) { return t != Type::kString; }

Type PromoteNumeric(Type a, Type b) {
  if (a == Type::kDouble || b == Type::kDouble) return Type::kDouble;
  return Type::kInt;
}

int64_t Value::AsInt() const {
  if (is_int()) return std::get<int64_t>(v_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
  assert(false && "AsInt on string value");
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  assert(false && "AsDouble on string value");
  return 0.0;
}

const std::string& Value::AsString() const {
  assert(is_string());
  return std::get<std::string>(v_);
}

bool Value::IsZero() const {
  if (is_int()) return std::get<int64_t>(v_) == 0;
  if (is_double()) return std::get<double>(v_) == 0.0;
  return std::get<std::string>(v_).empty();
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) {
    double d = std::get<double>(v_);
    // Render integral doubles as "x.0" so the type is visible in traces.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", d);
      return buf;
    }
    std::ostringstream os;
    os.precision(15);
    os << d;
    return os.str();
  }
  return "'" + std::get<std::string>(v_) + "'";
}

namespace {

/// Exact comparison of an int64 against a double. Converting the int to
/// double (the pre-existing shortcut) rounds above 2^53, equating values
/// that hash differently — and the lossy relation is not even transitive —
/// so the comparison must stay in exact arithmetic instead.
int CompareIntDouble(int64_t i, double d) {
  if (std::isnan(d)) return -1;  // NaN sorts after every number
  // Outside int64's range the sign of d decides (the bounds are exact
  // powers of two, representable as doubles).
  if (d >= 9223372036854775808.0) return -1;   // d >= 2^63 > any int64
  if (d < -9223372036854775808.0) return 1;    // d < -2^63 <= any int64
  // |d| < 2^63: truncation is exact-representable both ways. Below 2^53
  // every integer is a double; at or above, doubles are already integral,
  // so trunc(d) == d and the fractional tie-break is zero.
  const int64_t di = static_cast<int64_t>(d);
  if (i < di) return -1;
  if (i > di) return 1;
  const double frac = d - static_cast<double>(di);  // exact
  if (frac > 0) return -1;
  if (frac < 0) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  const bool as = a.is_string(), bs = b.is_string();
  if (as != bs) return as ? 1 : -1;  // numerics before strings
  if (as) {
    const std::string& x = a.AsString();
    const std::string& y = b.AsString();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_int()) return CompareIntDouble(std::get<int64_t>(a.v_), b.AsDouble());
  if (b.is_int()) return -CompareIntDouble(std::get<int64_t>(b.v_), a.AsDouble());
  double x = a.AsDouble(), y = b.AsDouble();
  // NaN sorts after every number and equals itself — consistent with the
  // mixed int/double path above, keeping Compare a total order (strict
  // weak ordering for the sorts and sets built on it).
  const bool xn = std::isnan(x), yn = std::isnan(y);
  if (xn || yn) return xn == yn ? 0 : (xn ? 1 : -1);
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

Value Value::Add(const Value& a, const Value& b) {
  assert(a.is_numeric() && b.is_numeric());
  if (a.is_int() && b.is_int()) return Value(a.AsInt() + b.AsInt());
  return Value(a.AsDouble() + b.AsDouble());
}

Value Value::Sub(const Value& a, const Value& b) {
  assert(a.is_numeric() && b.is_numeric());
  if (a.is_int() && b.is_int()) return Value(a.AsInt() - b.AsInt());
  return Value(a.AsDouble() - b.AsDouble());
}

Value Value::Mul(const Value& a, const Value& b) {
  assert(a.is_numeric() && b.is_numeric());
  if (a.is_int() && b.is_int()) return Value(a.AsInt() * b.AsInt());
  return Value(a.AsDouble() * b.AsDouble());
}

Value Value::Div(const Value& a, const Value& b) {
  assert(a.is_numeric() && b.is_numeric());
  double denom = b.AsDouble();
  if (denom == 0.0) return Value(0.0);
  return Value(a.AsDouble() / denom);
}

Value Value::Neg(const Value& a) {
  assert(a.is_numeric());
  if (a.is_int()) return Value(-a.AsInt());
  return Value(-a.AsDouble());
}

size_t Value::Hash() const {
  // Shared scalar hashing (src/codegen/dbt_flat_map.h): integral doubles
  // hash identically to the equal int (2 == 2.0 must imply equal hashes
  // because Compare treats them as equal), and the same finalized values
  // appear in the compiled path's tuple keys.
  if (is_int()) return HashScalar(std::get<int64_t>(v_));
  if (is_double()) return HashScalar(std::get<double>(v_));
  return HashScalar(std::get<std::string>(v_));
}

// Howard Hinnant's days_from_civil / civil_from_days (public-domain
// algorithms), exact over the proleptic Gregorian calendar.
int64_t CivilToDays(int year, int month, int day) {
  const int64_t y = year - (month <= 2 ? 1 : 0);
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                               // [0, 399]
  const int64_t doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;    // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;       // [0,146096]
  return era * 146097 + doe - 719468;
}

void DaysToCivil(int64_t days, int* year, int* month, int* day) {
  const int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                            // [0,146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;       // [0, 399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);     // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                          // [0, 11]
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2 ? 1 : 0));
}

namespace {
int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}
}  // namespace

bool ParseDateLiteral(const std::string& text, int64_t* days) {
  // Strict YYYY-MM-DD shape (4-2-2 digits).
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (text[i] < '0' || text[i] > '9') return false;
  }
  const int y = (text[0] - '0') * 1000 + (text[1] - '0') * 100 +
                (text[2] - '0') * 10 + (text[3] - '0');
  const int m = (text[5] - '0') * 10 + (text[6] - '0');
  const int d = (text[8] - '0') * 10 + (text[9] - '0');
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) return false;
  *days = CivilToDays(y, m, d);
  return true;
}

int64_t ExtractYear(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return y;
}

int64_t ExtractMonth(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return m;
}

int64_t ExtractDay(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return d;
}

int64_t AddInterval(int64_t days, int64_t n, const std::string& unit) {
  if (unit == "DAY") return days + n;
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  int64_t months = (unit == "YEAR" ? n * 12 : n) + (y * 12 + (m - 1));
  int64_t ny = months >= 0 ? months / 12 : (months - 11) / 12;
  int nm = static_cast<int>(months - ny * 12) + 1;
  int nd = std::min(d, DaysInMonth(static_cast<int>(ny), nm));
  return CivilToDays(static_cast<int>(ny), nm, nd);
}

std::string RowToString(const Row& row) {
  std::string s = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) s += ", ";
    s += row[i].ToString();
  }
  s += ")";
  return s;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace dbtoaster
