// Error handling for DBToaster. The codebase does not use C++ exceptions
// (Google C++ style); fallible operations return Status or Result<T>.
#ifndef DBTOASTER_COMMON_STATUS_H_
#define DBTOASTER_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dbtoaster {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< SQL text could not be parsed
  kTypeError,         ///< type checking failed
  kNotSupported,      ///< outside the supported SQL fragment
  kNotFound,          ///< missing relation / column / map
  kInternal,          ///< invariant violation inside the system
};

/// Human-readable name of a StatusCode (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "ParseError: unexpected token ..." form.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Deliberately minimal: `ok()`, `value()`, `status()`.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(implicit)
    assert(!std::get<Status>(v_).ok() && "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from the current function.
#define DBT_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::dbtoaster::Status _dbt_st = (expr);          \
    if (!_dbt_st.ok()) return _dbt_st;             \
  } while (0)

/// Evaluate a Result<T> expression; bind its value or propagate its Status.
#define DBT_ASSIGN_OR_RETURN(lhs, expr)            \
  auto DBT_CONCAT_(_dbt_res, __LINE__) = (expr);   \
  if (!DBT_CONCAT_(_dbt_res, __LINE__).ok())       \
    return DBT_CONCAT_(_dbt_res, __LINE__).status(); \
  lhs = std::move(DBT_CONCAT_(_dbt_res, __LINE__)).value()

#define DBT_CONCAT_INNER_(a, b) a##b
#define DBT_CONCAT_(a, b) DBT_CONCAT_INNER_(a, b)

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_STATUS_H_
