// Small string helpers used by the lexer, printers and code generator.
#ifndef DBTOASTER_COMMON_STR_H_
#define DBTOASTER_COMMON_STR_H_

#include <string>
#include <string_view>
#include <vector>

namespace dbtoaster {

/// Uppercase ASCII copy (SQL keywords are case-insensitive).
std::string ToUpper(std::string_view s);

/// Lowercase ASCII copy.
std::string ToLower(std::string_view s);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Split on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL LIKE pattern match: '%' matches any run (including empty), '_' any
/// single character, everything else literally. Case-sensitive, no escape
/// character (out of the supported fragment).
bool LikeMatch(std::string_view s, std::string_view pattern);

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_STR_H_
