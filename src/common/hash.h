// Hash utilities shared by map keys, interning tables and test helpers.
//
// The actual implementations live in src/codegen/dbt_flat_map.h — the
// standalone collection core shipped with dbtc-generated sources — and are
// re-exported here so the interpreted runtime and the generated code agree
// on every finalized hash (rows and key tuples fold identically, integral
// doubles collide with their int64 twin in both layers).
#ifndef DBTOASTER_COMMON_HASH_H_
#define DBTOASTER_COMMON_HASH_H_

#include "src/codegen/dbt_flat_map.h"

namespace dbtoaster {

using dbt::HashCombine;
using dbt::HashScalar;
using dbt::kHashSeed;
using dbt::Mix64;

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_HASH_H_
