// Hash utilities shared by map keys, interning tables and test helpers.
#ifndef DBTOASTER_COMMON_HASH_H_
#define DBTOASTER_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dbtoaster {

/// 64-bit mix (splitmix64 finalizer); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost-style, with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace dbtoaster

#endif  // DBTOASTER_COMMON_HASH_H_
