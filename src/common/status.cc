#include "src/common/status.h"

namespace dbtoaster {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace dbtoaster
