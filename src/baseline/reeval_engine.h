// Full re-evaluation baseline: the "query plan interpreter" architecture of
// conventional DBMSes (PostgreSQL / HSQLDB / commercial DBMS 'A' in the
// paper's bakeoff), implemented honestly on our in-memory substrate — every
// event updates the base tables and the standing query is re-run through the
// Volcano executor on read (or per event in eager mode). A batch refreshes
// the views once after all its table updates, like a DBMS applying a
// transaction's statements before firing the view refresh.
#ifndef DBTOASTER_BASELINE_REEVAL_ENGINE_H_
#define DBTOASTER_BASELINE_REEVAL_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/exec/binder.h"
#include "src/runtime/stream_engine.h"

namespace dbtoaster::baseline {

class ReevalEngine : public runtime::StreamEngine {
 public:
  /// `eager`: re-evaluate all queries on every event (what a trigger-driven
  /// DBMS view refresh does; this is the bakeoff configuration). Non-eager
  /// evaluates lazily on View().
  explicit ReevalEngine(const Catalog& catalog, bool eager = true);

  Status AddQuery(const std::string& name, const std::string& sql);

  std::string Name() const override { return "reeval"; }
  Result<exec::QueryResult> View(const std::string& name) override;
  std::vector<std::string> ViewNames() const override;
  size_t StateBytes() const override;

  /// Snapshot / restore: the base tables are the whole dynamic state (views
  /// re-derive; eager mode refreshes them right after restore).
  Status SaveState(dbt::Ser* out) const override;
  Status LoadState(dbt::Deser* in) override;

  Database& database() { return db_; }

 protected:
  Status DoApplyBatch(runtime::EventBatch&& batch) override;
  Status DoOnEvent(const Event& event) override;

 private:
  /// Eager mode: refresh all registered views from the current tables.
  Status RefreshViews();

  Catalog catalog_;
  Database db_;
  bool eager_;
  std::map<std::string, std::shared_ptr<exec::BoundSelect>> queries_;
  std::map<std::string, exec::QueryResult> last_results_;
};

}  // namespace dbtoaster::baseline

#endif  // DBTOASTER_BASELINE_REEVAL_ENGINE_H_
