#include "src/baseline/reeval_engine.h"

#include "src/sql/parser.h"

namespace dbtoaster::baseline {

ReevalEngine::ReevalEngine(const Catalog& catalog, bool eager)
    : catalog_(catalog), db_(catalog), eager_(eager) {
  RegisterIngestCatalog(catalog_);
}

Status ReevalEngine::AddQuery(const std::string& name,
                              const std::string& sql) {
  if (queries_.count(name)) {
    return Status::InvalidArgument("duplicate query name: " + name);
  }
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                       sql::ParseSelect(sql));
  DBT_ASSIGN_OR_RETURN(std::shared_ptr<exec::BoundSelect> bound,
                       exec::Bind(*stmt, catalog_));
  queries_[name] = std::move(bound);
  return Status::OK();
}

Status ReevalEngine::RefreshViews() {
  // Multiple standing queries refresh concurrently on the shared worker
  // pool: each query owns its BoundSelect (and its lazily built plan), all
  // of them only read the tables, and every result lands in its own
  // pre-created slot — so the refresh is embarrassingly parallel and its
  // outcome is independent of the thread count.
  if (queries_.size() > 1 && runtime::shard_pool().threads() > 1) {
    struct Task {
      const exec::BoundSelect* bound;
      exec::QueryResult* slot;
      Status status;
    };
    std::vector<Task> tasks;
    tasks.reserve(queries_.size());
    for (const auto& [name, bound] : queries_) {
      tasks.push_back(Task{bound.get(), &last_results_[name], Status::OK()});
    }
    runtime::shard_pool().RunShards(tasks.size(), [&](size_t i) {
      exec::Executor ex(&db_);
      auto r = ex.Run(*tasks[i].bound);
      if (r.ok()) {
        *tasks[i].slot = std::move(r).value();
      } else {
        tasks[i].status = r.status();
      }
    });
    for (const Task& t : tasks) {
      DBT_RETURN_IF_ERROR(t.status);
    }
    return Status::OK();
  }
  exec::Executor ex(&db_);
  for (const auto& [name, bound] : queries_) {
    DBT_ASSIGN_OR_RETURN(exec::QueryResult r, ex.Run(*bound));
    last_results_[name] = std::move(r);
  }
  return Status::OK();
}

Status ReevalEngine::DoOnEvent(const Event& event) {
  DBT_RETURN_IF_ERROR(db_.Apply(event));
  if (!eager_) return Status::OK();
  return RefreshViews();
}

Status ReevalEngine::DoApplyBatch(runtime::EventBatch&& batch) {
  // All table updates first, then one view refresh for the whole batch:
  // this is exactly the amortization a DBMS gets from transaction batching.
  for (const runtime::EventBatch::Group& g : batch.groups()) {
    for (size_t i = 0; i < g.rows; ++i) {
      DBT_RETURN_IF_ERROR(db_.Apply(g.kind, g.relation, g.RowAt(i)));
    }
  }
  if (!eager_ || batch.empty()) return Status::OK();
  return RefreshViews();
}

Result<exec::QueryResult> ReevalEngine::View(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query: " + name);
  }
  if (eager_) {
    auto rit = last_results_.find(name);
    if (rit != last_results_.end()) return rit->second;
  }
  exec::Executor ex(&db_);
  return ex.Run(*it->second);
}

std::vector<std::string> ReevalEngine::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, query] : queries_) names.push_back(name);
  return names;
}

size_t ReevalEngine::StateBytes() const { return db_.MemoryBytes(); }

Status ReevalEngine::SaveState(dbt::Ser* out) const {
  out->u64(catalog_.relations().size());
  for (const Schema& schema : catalog_.relations()) {
    out->str(schema.name());
    const Table* table = db_.FindTable(schema.name());
    if (table == nullptr) {
      return Status::Internal("save: missing table " + schema.name());
    }
    out->u64(table->rows().size());
    for (const auto& [row, mult] : table->rows()) {
      runtime::WriteRow(*out, row);
      out->i64(mult);
    }
  }
  return Status::OK();
}

Status ReevalEngine::LoadState(dbt::Deser* in) {
  db_.Clear();
  last_results_.clear();
  const uint64_t ntables = in->u64();
  for (uint64_t t = 0; t < ntables && in->ok(); ++t) {
    const std::string name = in->str();
    Table* table = db_.FindTable(name);
    if (table == nullptr) {
      return Status::ParseError("restore: snapshot names unknown relation '" +
                                name + "'");
    }
    const uint64_t nrows = in->u64();
    for (uint64_t i = 0; i < nrows && in->ok(); ++i) {
      Row row;
      if (!runtime::ReadRow(*in, &row)) {
        return Status::ParseError("restore: corrupt row in table " + name);
      }
      table->Apply(row, in->i64());
    }
  }
  if (!in->ok()) return Status::ParseError("restore: truncated snapshot");
  // Eager mode serves views from last_results_; rebuild them from the
  // restored tables so the first View() after recovery is already fresh.
  if (eager_ && !queries_.empty()) return RefreshViews();
  return Status::OK();
}

}  // namespace dbtoaster::baseline
