#include "src/baseline/ivm1_engine.h"

#include <algorithm>
#include <cassert>

#include "src/common/str.h"
#include "src/compiler/delta.h"
#include "src/compiler/simplify.h"
#include "src/sql/parser.h"

namespace dbtoaster::baseline {

using compiler::DeltaEvent;
using compiler::Statement;
using ring::ExprPtr;

namespace {
std::string ParamName(const std::string& column) {
  return "p_" + ToLower(column);
}
}  // namespace

Ivm1Engine::Ivm1Engine(const Catalog& catalog)
    : catalog_(catalog), db_(catalog) {
  RegisterIngestCatalog(catalog_);
  eval_ = std::make_unique<runtime::RingEvaluator>(this);
}

Status Ivm1Engine::AddQuery(const std::string& name, const std::string& sql) {
  if (queries_.count(name)) {
    return Status::InvalidArgument("duplicate query name: " + name);
  }
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                       sql::ParseSelect(sql));
  DBT_ASSIGN_OR_RETURN(
      std::unique_ptr<compiler::TranslatedQuery> tq,
      compiler::Translate(*stmt, catalog_, name, &var_counter_));
  if (tq->hybrid) {
    return Status::NotSupported(
        "first-order IVM cannot maintain nested aggregates");
  }
  if (tq->left_join != nullptr) {
    return Status::NotSupported(
        "first-order IVM cannot maintain the outer-join unmatched branch "
        "(its delta reads a maintained match-count map)");
  }
  for (const auto& agg : tq->aggregates) {
    if (agg.is_extreme) {
      return Status::NotSupported(
          "first-order IVM cannot maintain MIN/MAX under deletions");
    }
  }

  RegisteredQuery rq;
  rq.result_maps.reserve(tq->aggregates.size());
  for (size_t a = 0; a < tq->aggregates.size(); ++a) {
    rq.result_maps.emplace_back(StrFormat("%s_a%zu", name.c_str(), a),
                                tq->group_vars.size(),
                                tq->aggregates[a].value_type);
    DBT_RETURN_IF_ERROR(CompileDeltas(&rq, a, tq->group_vars,
                                      tq->aggregates[a].expr));
  }
  if (!tq->group_vars.empty()) {
    rq.domain_map = runtime::ValueMap(name + "_dom", tq->group_vars.size(),
                                      Type::kInt);
    DBT_RETURN_IF_ERROR(
        CompileDeltas(&rq, kDomainSlot, tq->group_vars, tq->domain_expr));
  }
  rq.translated = std::move(tq);
  queries_.emplace(name, std::move(rq));
  return Status::OK();
}

Status Ivm1Engine::CompileDeltas(RegisteredQuery* rq, size_t slot,
                                 const std::vector<std::string>& /*group_vars*/,
                                 const ExprPtr& defn) {
  std::set<std::string> rels;
  defn->CollectRels(&rels);
  for (const std::string& rel : rels) {
    const Schema* schema = catalog_.FindRelation(rel);
    if (schema == nullptr) return Status::NotFound("unknown relation: " + rel);
    for (int sign : {+1, -1}) {
      DeltaEvent ev;
      ev.relation = schema->name();
      ev.sign = sign;
      for (size_t c = 0; c < schema->num_columns(); ++c) {
        ev.params.push_back(ParamName(schema->column_name(c)));
      }
      ExprPtr delta = compiler::Delta(defn, ev);
      std::set<std::string> params(ev.params.begin(), ev.params.end());
      DBT_ASSIGN_OR_RETURN(std::vector<compiler::DeltaUnit> units,
                           compiler::SimplifyDelta(delta, params));
      auto& bucket = rq->deltas[{schema->name(), sign}];
      for (compiler::DeltaUnit& u : units) {
        // First-order IVM: the RHS stays a query over base tables — no
        // materialisation, no recursion. The evaluator resolves relation
        // atoms through maintained hash indexes.
        bucket.push_back({slot, DeltaStatement{u.keys, u.rhs}});
      }
    }
  }
  return Status::OK();
}

Status Ivm1Engine::ApplyGroup(const std::string& relation, EventKind kind,
                              const Row* tuples, size_t count) {
  if (count == 0) return Status::OK();
  const Schema* schema = catalog_.FindRelation(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation: " + relation);
  }
  int sign = kind == EventKind::kInsert ? +1 : -1;

  // Hoist the per-event lookups out of the group loop: parameter names and
  // the (relation, sign) delta buckets are shared by every tuple. The delta
  // queries themselves still run one event at a time — first-order deltas
  // read the base tables (including the triggering relation), so events
  // within a group carry a sequential dependency.
  std::vector<std::string> params;
  params.reserve(schema->num_columns());
  for (size_t c = 0; c < schema->num_columns(); ++c) {
    params.push_back(ParamName(schema->column_name(c)));
  }
  struct Bucket {
    RegisteredQuery* rq;
    const std::vector<std::pair<size_t, DeltaStatement>>* stmts;
  };
  std::vector<Bucket> buckets;
  for (auto& [name, rq] : queries_) {
    auto it = rq.deltas.find({schema->name(), sign});
    if (it != rq.deltas.end()) buckets.push_back({&rq, &it->second});
  }

  struct PendingUpdate {
    runtime::ValueMap* target;
    Row key;
    Value delta;
  };
  std::vector<PendingUpdate> pending;
  runtime::Bindings env;
  for (size_t e = 0; e < count; ++e) {
    const Row& tuple = tuples[e];
    if (tuple.size() != schema->num_columns()) {
      return Status::InvalidArgument(
          StrFormat("event arity %zu does not match schema %s", tuple.size(),
                    schema->ToString().c_str()));
    }
    for (size_t c = 0; c < params.size(); ++c) env[params[c]] = tuple[c];

    // Evaluate all delta statements against the pre-state.
    pending.clear();
    for (const Bucket& bucket : buckets) {
      for (const auto& [slot, stmt] : *bucket.stmts) {
        runtime::ValueMap* target = slot == kDomainSlot
                                        ? &bucket.rq->domain_map
                                        : &bucket.rq->result_maps[slot];
        DBT_ASSIGN_OR_RETURN(runtime::Keyed result,
                             eval_->Eval(stmt.rhs, env, /*store_init=*/false));
        for (auto& [row, value] : result.entries) {
          Row key;
          key.reserve(stmt.keys.size());
          for (const std::string& kv : stmt.keys) {
            auto eit = env.find(kv);
            if (eit != env.end()) {
              key.push_back(eit->second);
              continue;
            }
            auto pos = std::find(result.vars.begin(), result.vars.end(), kv);
            if (pos == result.vars.end()) {
              return Status::Internal("ivm1 cannot bind group key: " + kv);
            }
            key.push_back(row[static_cast<size_t>(pos - result.vars.begin())]);
          }
          pending.push_back({target, std::move(key), std::move(value)});
        }
      }
    }

    // Apply the event to base tables + indexes, then the deltas.
    DBT_RETURN_IF_ERROR(db_.Apply(kind, relation, tuple));
    auto iit = indexes_.find(schema->name());
    if (iit != indexes_.end()) {
      for (auto& [positions, index] : iit->second) {
        index.Apply(tuple, sign);
      }
    }
    for (PendingUpdate& p : pending) p.target->Add(p.key, p.delta);
  }
  return Status::OK();
}

Status Ivm1Engine::DoOnEvent(const Event& event) {
  return ApplyGroup(event.relation, event.kind, &event.tuple, 1);
}

Status Ivm1Engine::DoApplyBatch(runtime::EventBatch&& batch) {
  for (const runtime::EventBatch::Group& g : batch.groups()) {
    DBT_RETURN_IF_ERROR(
        ApplyGroup(g.relation, g.kind, g.rows_view().data(), g.rows));
  }
  return Status::OK();
}

Status Ivm1Engine::SaveState(dbt::Ser* out) const {
  out->u64(catalog_.relations().size());
  for (const Schema& schema : catalog_.relations()) {
    out->str(schema.name());
    const Table* table = db_.FindTable(schema.name());
    if (table == nullptr) {
      return Status::Internal("save: missing table " + schema.name());
    }
    out->u64(table->rows().size());
    for (const auto& [row, mult] : table->rows()) {
      runtime::WriteRow(*out, row);
      out->i64(mult);
    }
  }
  // Per registered query: the materialized aggregate maps and the group
  // domain map (query registration itself is reconstructed by the caller,
  // not snapshotted).
  out->u64(queries_.size());
  for (const auto& [name, rq] : queries_) {
    out->str(name);
    auto save_map = [&out](const runtime::ValueMap& m) {
      out->u64(m.size());
      for (const auto& [key, value] : m.entries()) {
        runtime::WriteRow(*out, key);
        runtime::WriteValue(*out, value);
      }
    };
    out->u64(rq.result_maps.size());
    for (const runtime::ValueMap& m : rq.result_maps) save_map(m);
    save_map(rq.domain_map);
  }
  return Status::OK();
}

Status Ivm1Engine::LoadState(dbt::Deser* in) {
  db_.Clear();
  // Hash indexes are derived from the tables; drop them and let the first
  // indexed lookup rebuild from restored rows.
  indexes_.clear();
  for (auto& [name, rq] : queries_) {
    for (runtime::ValueMap& m : rq.result_maps) m.Clear();
    rq.domain_map.Clear();
  }

  const uint64_t ntables = in->u64();
  for (uint64_t t = 0; t < ntables && in->ok(); ++t) {
    const std::string name = in->str();
    Table* table = db_.FindTable(name);
    if (table == nullptr) {
      return Status::ParseError("restore: snapshot names unknown relation '" +
                                name + "'");
    }
    const uint64_t nrows = in->u64();
    for (uint64_t i = 0; i < nrows && in->ok(); ++i) {
      Row row;
      if (!runtime::ReadRow(*in, &row)) {
        return Status::ParseError("restore: corrupt row in table " + name);
      }
      table->Apply(row, in->i64());
    }
  }

  const uint64_t nqueries = in->u64();
  for (uint64_t q = 0; q < nqueries && in->ok(); ++q) {
    const std::string name = in->str();
    auto it = queries_.find(name);
    if (it == queries_.end()) {
      return Status::ParseError(
          "restore: snapshot names unregistered query '" + name +
          "' — register the same queries before restoring");
    }
    auto load_map = [in](runtime::ValueMap* m) -> bool {
      const uint64_t n = in->u64();
      for (uint64_t i = 0; i < n && in->ok(); ++i) {
        Row key;
        Value value;
        if (!runtime::ReadRow(*in, &key) || !runtime::ReadValue(*in, &value)) {
          return false;
        }
        m->Set(key, std::move(value));
      }
      return in->ok();
    };
    const uint64_t nmaps = in->u64();
    if (nmaps != it->second.result_maps.size()) {
      return Status::ParseError("restore: aggregate map count mismatch for " +
                                name);
    }
    for (runtime::ValueMap& m : it->second.result_maps) {
      if (!load_map(&m)) {
        return Status::ParseError("restore: corrupt aggregate map in " + name);
      }
    }
    if (!load_map(&it->second.domain_map)) {
      return Status::ParseError("restore: corrupt domain map in " + name);
    }
  }

  if (!in->ok()) return Status::ParseError("restore: truncated snapshot");
  return Status::OK();
}

Result<exec::QueryResult> Ivm1Engine::View(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query: " + name);
  }
  RegisteredQuery& rq = it->second;
  const compiler::TranslatedQuery& tq = *rq.translated;

  exec::QueryResult out;
  for (const auto& c : tq.columns) out.column_names.push_back(c.name);

  // Resolve the "$<q>_agg<i>" placeholder reads against our result maps.
  std::map<std::string, std::string> names;
  for (size_t a = 0; a < rq.result_maps.size(); ++a) {
    names[StrFormat("$%s_agg%zu", tq.name.c_str(), a)] =
        rq.result_maps[a].name();
  }

  auto emit = [&](const runtime::Bindings& env) -> Status {
    Row row;
    for (const auto& c : tq.columns) {
      ring::TermPtr t = c.value->RenameMaps(names);
      DBT_ASSIGN_OR_RETURN(Value v,
                           eval_->EvalTerm(t, env, /*store_init=*/false));
      row.push_back(std::move(v));
    }
    out.rows.emplace_back(std::move(row), 1);
    return Status::OK();
  };

  // HAVING: view-time guard over this engine's result maps.
  ring::ExprPtr having =
      tq.having != nullptr ? tq.having->RenameMaps(names) : nullptr;
  auto passes_having = [&](const runtime::Bindings& env) -> Result<bool> {
    if (having == nullptr) return true;
    DBT_ASSIGN_OR_RETURN(
        Value v, eval_->EvalScalar(having, env, /*store_init=*/false));
    return !(v.is_numeric() && v.IsZero());
  };

  if (tq.group_vars.empty()) {
    runtime::Bindings env;
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (pass) {
      DBT_RETURN_IF_ERROR(emit(env));
    }
    return out;
  }
  for (const auto& [key, count] : rq.domain_map.entries()) {
    if (count.is_numeric() && count.IsZero()) continue;
    runtime::Bindings env;
    for (size_t i = 0; i < tq.group_vars.size(); ++i) {
      env[tq.group_vars[i]] = key[i];
    }
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (!pass) continue;
    DBT_RETURN_IF_ERROR(emit(env));
  }
  return out;
}

std::vector<std::string> Ivm1Engine::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, rq] : queries_) names.push_back(name);
  return names;
}

size_t Ivm1Engine::StateBytes() const {
  size_t bytes = db_.MemoryBytes();
  for (const auto& [rel, by_pos] : indexes_) {
    for (const auto& [positions, index] : by_pos) {
      bytes += index.MemoryBytes();
    }
  }
  for (const auto& [name, rq] : queries_) {
    for (const auto& m : rq.result_maps) bytes += m.MemoryBytes();
    bytes += rq.domain_map.MemoryBytes();
  }
  return bytes;
}

Result<Value> Ivm1Engine::ReadMap(const std::string& map, const Row& key,
                                  bool /*store_init*/) {
  // Result maps are readable by name (used by View's term evaluation).
  for (auto& [name, rq] : queries_) {
    for (auto& m : rq.result_maps) {
      if (m.name() == map) return m.Get(key);
    }
    if (rq.domain_map.name() == map) return rq.domain_map.Get(key);
  }
  return Status::NotFound("unknown map in ivm1 engine: " + map);
}

const runtime::ValueMap* Ivm1Engine::FindMap(const std::string& map) const {
  for (const auto& [name, rq] : queries_) {
    for (const auto& m : rq.result_maps) {
      if (m.name() == map) return &m;
    }
    if (rq.domain_map.name() == map) return &rq.domain_map;
  }
  return nullptr;
}

const Table* Ivm1Engine::FindRelation(const std::string& rel) const {
  return db_.FindTable(rel);
}

const Multiset* Ivm1Engine::LookupRelIndex(
    const std::string& rel, const std::vector<size_t>& positions,
    const Row& key) {
  const Table* table = db_.FindTable(rel);
  if (table == nullptr) return nullptr;
  auto& by_pos = indexes_[table->schema().name()];
  auto it = by_pos.find(positions);
  if (it == by_pos.end()) {
    // Build the index lazily from the current (pre-event) table state.
    HashIndex index(positions);
    for (const auto& [row, mult] : table->rows()) index.Apply(row, mult);
    it = by_pos.emplace(positions, std::move(index)).first;
  }
  return it->second.Lookup(key);
}

}  // namespace dbtoaster::baseline
