// Common interface for the engines compared in the §4.2 bakeoff: full
// re-evaluation (DBMS-class), first-order IVM (stream-engine-class), and the
// DBToaster runtime (runtime::Engine gets a thin adapter in bench code).
#ifndef DBTOASTER_BASELINE_VIEW_ENGINE_H_
#define DBTOASTER_BASELINE_VIEW_ENGINE_H_

#include <string>

#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/storage/table.h"

namespace dbtoaster::baseline {

/// A continuously-maintained standing-query engine.
class ViewEngine {
 public:
  virtual ~ViewEngine() = default;

  /// Short label for bench tables ("reeval", "ivm1", ...).
  virtual std::string Name() const = 0;

  /// Process one delta.
  virtual Status OnEvent(const Event& event) = 0;

  /// Current result of the registered query `name`.
  virtual Result<exec::QueryResult> View(const std::string& name) = 0;

  /// Retained bytes attributable to the engine's state (tables, indexes,
  /// maps), for the memory bench.
  virtual size_t StateBytes() const = 0;
};

}  // namespace dbtoaster::baseline

#endif  // DBTOASTER_BASELINE_VIEW_ENGINE_H_
