// Classical first-order incremental view maintenance: the technique of
// stream engines (Stanford STREAM / commercial stream processor 'B' in the
// paper's bakeoff). One delta query per event, evaluated by the interpreter
// against the *base tables* with maintained hash indexes — one level of
// incrementalisation, no recursive compilation, no auxiliary aggregate maps.
//
// This sits exactly between full re-evaluation and DBToaster: per-event cost
// is proportional to the delta query's join fan-out over indexed base
// tables, rather than O(1)-ish map lookups (DBToaster) or O(|DB|^k) rescans
// (re-evaluation).
#ifndef DBTOASTER_BASELINE_IVM1_ENGINE_H_
#define DBTOASTER_BASELINE_IVM1_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/compiler/program.h"
#include "src/compiler/translate.h"
#include "src/runtime/ring_eval.h"
#include "src/runtime/stream_engine.h"
#include "src/runtime/value_map.h"
#include "src/storage/index.h"

namespace dbtoaster::baseline {

class Ivm1Engine : public runtime::StreamEngine, public runtime::MapStore {
 public:
  explicit Ivm1Engine(const Catalog& catalog);

  /// Registers a query. Supports the non-hybrid SUM/COUNT/AVG fragment
  /// (subqueries and MIN/MAX would require recursive techniques — exactly
  /// the paper's point); unsupported queries return NotSupported so callers
  /// can fall back to re-evaluation.
  Status AddQuery(const std::string& name, const std::string& sql);

  std::string Name() const override { return "ivm1"; }
  Result<exec::QueryResult> View(const std::string& name) override;
  std::vector<std::string> ViewNames() const override;
  size_t StateBytes() const override;

  /// Snapshot / restore: base tables plus per-query result and domain maps.
  /// Hash indexes are derived state and rebuild lazily after restore.
  Status SaveState(dbt::Ser* out) const override;
  Status LoadState(dbt::Deser* in) override;

  // runtime::MapStore (reads resolve against base tables + indexes only):
  Result<Value> ReadMap(const std::string& map, const Row& key,
                        bool store_init) override;
  const runtime::ValueMap* FindMap(const std::string& map) const override;
  const Table* FindRelation(const std::string& rel) const override;
  const Multiset* LookupRelIndex(const std::string& rel,
                                 const std::vector<size_t>& positions,
                                 const Row& key) override;

 protected:
  Status DoApplyBatch(runtime::EventBatch&& batch) override;
  Status DoOnEvent(const Event& event) override;

 private:
  struct DeltaStatement {
    std::vector<std::string> keys;  ///< target group keys (may be params)
    ring::ExprPtr rhs;              ///< first-order delta over base tables
  };
  struct RegisteredQuery {
    std::unique_ptr<compiler::TranslatedQuery> translated;
    // Per aggregate: result map + per-(relation, sign) delta statements.
    std::vector<runtime::ValueMap> result_maps;
    runtime::ValueMap domain_map;
    std::map<std::pair<std::string, int>,
             std::vector<std::pair<size_t, DeltaStatement>>>
        deltas;  ///< (relation, sign) -> [(aggregate idx or domain, stmt)]
  };

  Catalog catalog_;
  Database db_;
  std::map<std::string, RegisteredQuery> queries_;
  std::map<std::string, std::map<std::vector<size_t>, HashIndex>> indexes_;
  std::unique_ptr<runtime::RingEvaluator> eval_;
  int var_counter_ = 0;

  static constexpr size_t kDomainSlot = static_cast<size_t>(-1);

  Status CompileDeltas(RegisteredQuery* rq, size_t slot,
                       const std::vector<std::string>& group_vars,
                       const ring::ExprPtr& defn);

  /// Process one (relation, op) group, hoisting the per-event dispatch
  /// (schema, parameter names, delta buckets) out of the tuple loop.
  Status ApplyGroup(const std::string& relation, EventKind kind,
                    const Row* tuples, size_t count);
};

}  // namespace dbtoaster::baseline

#endif  // DBTOASTER_BASELINE_IVM1_ENGINE_H_
