// Token model for the SQL lexer.
#ifndef DBTOASTER_SQL_TOKEN_H_
#define DBTOASTER_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace dbtoaster::sql {

enum class TokenKind : uint8_t {
  kEnd,
  kIdent,      ///< identifier or keyword (keywords resolved by the parser)
  kIntLit,
  kDoubleLit,
  kStringLit,  ///< 'quoted', quotes stripped, '' escape supported
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,         ///< =
  kNeq,        ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< raw text (identifier spelling, literal body)
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;          ///< 1-based position for error messages
  int column = 1;

  std::string Describe() const;
};

}  // namespace dbtoaster::sql

#endif  // DBTOASTER_SQL_TOKEN_H_
