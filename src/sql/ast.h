// Abstract syntax tree for the supported SQL fragment.
//
// The fragment (the paper's data/query model, §2):
//   CREATE TABLE name (col type, ...);
//   SELECT [expr [AS alias], ...]
//   FROM   table [alias], ...
//   [WHERE pred]
//   [GROUP BY col, ...]
// with aggregates SUM/COUNT/AVG/MIN/MAX, arithmetic (+ - * /), comparisons
// (= <> < <= > >=), AND/OR/NOT, and scalar subqueries (possibly correlated)
// usable inside arithmetic and comparisons.
#ifndef DBTOASTER_SQL_AST_H_
#define DBTOASTER_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace dbtoaster::sql {

struct SelectStmt;

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike,  ///< string pattern predicates (lhs LIKE rhs)
};

const char* BinOpName(BinOp op);
bool IsComparison(BinOp op);
bool IsArithmetic(BinOp op);
/// Mirror a comparison across its operands (a < b  ==>  b > a).
BinOp FlipComparison(BinOp op);

enum class AggKind : uint8_t { kSum, kCount, kAvg, kMin, kMax };
const char* AggKindName(AggKind k);

/// Built-in scalar functions (currently the EXTRACT family over dates).
enum class FuncKind : uint8_t { kExtractYear, kExtractMonth, kExtractDay };
const char* FuncKindName(FuncKind k);

/// Scalar expression node.
struct Expr {
  enum class Kind : uint8_t {
    kLiteral,    ///< constant Value
    kColumnRef,  ///< [qualifier.]column
    kBinary,     ///< lhs op rhs
    kUnaryMinus, ///< -operand
    kNot,        ///< NOT operand
    kAggregate,  ///< SUM(arg) etc.; arg null for COUNT(*)
    kSubquery,   ///< scalar subquery (SELECT ...)
    kCase,       ///< CASE WHEN ... THEN ... [ELSE ...] END
    kFunc,       ///< built-in scalar function (EXTRACT); arg in lhs
  };

  /// One CASE branch.
  struct CaseBranch {
    std::unique_ptr<Expr> when;
    std::unique_ptr<Expr> then;
  };

  Kind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string column;

  // kBinary
  BinOp op = BinOp::kAdd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;   // also operand of kUnaryMinus / kNot (in lhs)

  // kAggregate
  AggKind agg = AggKind::kSum;
  std::unique_ptr<Expr> agg_arg;  ///< null for COUNT(*)

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kCase
  std::vector<CaseBranch> case_branches;
  std::unique_ptr<Expr> case_else;  ///< null means ELSE 0

  // kFunc (argument in lhs)
  FuncKind func = FuncKind::kExtractYear;

  /// SQL-ish rendering for diagnostics and golden tests.
  std::string ToString() const;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  // -- constructors --------------------------------------------------------
  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string qualifier,
                                          std::string column);
  static std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeUnaryMinus(std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> MakeNot(std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> MakeAggregate(AggKind k,
                                             std::unique_ptr<Expr> arg);
  static std::unique_ptr<Expr> MakeSubquery(std::unique_ptr<SelectStmt> q);
  static std::unique_ptr<Expr> MakeCase(std::vector<CaseBranch> branches,
                                        std::unique_ptr<Expr> else_expr);
  static std::unique_ptr<Expr> MakeFunc(FuncKind k, std::unique_ptr<Expr> arg);
};

/// FROM-clause entry: `table [alias]`, optionally joined to the preceding
/// entries with an explicit JOIN ... ON clause.
struct TableRef {
  enum class Join : uint8_t {
    kCross,  ///< comma-separated (or the first FROM entry)
    kInner,  ///< [INNER] JOIN ... ON cond
    kLeft,   ///< LEFT [OUTER] JOIN ... ON cond
  };

  std::string table;
  std::string alias;  ///< equals `table` when no alias given
  Join join = Join::kCross;
  std::unique_ptr<Expr> on;  ///< null iff join == kCross

  TableRef Clone() const;
  std::string ToString() const;
};

/// One SELECT-list item: `expr [AS name]`.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< empty when not named

  SelectItem Clone() const;
};

/// A SELECT statement (also used for subqueries).
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;            ///< null when absent
  std::vector<std::unique_ptr<Expr>> group_by;  ///< column refs
  std::unique_ptr<Expr> having;           ///< null when absent

  std::string ToString() const;
  std::unique_ptr<SelectStmt> Clone() const;
};

/// CREATE TABLE statement.
struct CreateTableStmt {
  std::string name;
  std::vector<std::pair<std::string, Type>> columns;

  std::string ToString() const;
};

/// A parsed script: any number of CREATE TABLEs and SELECTs, in order.
struct Script {
  std::vector<CreateTableStmt> tables;
  struct NamedQuery {
    std::string name;  ///< auto-assigned q0, q1, ... unless annotated
    std::unique_ptr<SelectStmt> select;
  };
  std::vector<NamedQuery> queries;
};

}  // namespace dbtoaster::sql

#endif  // DBTOASTER_SQL_AST_H_
