#include "src/sql/parser.h"

#include <cassert>
#include <cstdlib>

#include "src/common/str.h"
#include "src/sql/lexer.h"

namespace dbtoaster::sql {
namespace {

// Keywords recognised by the parser (SQL is case-insensitive).
bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdent && ToUpper(t.text) == kw;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }

  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool Match(TokenKind k) {
    if (Peek().kind == k) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchKeyword(const char* kw) {
    if (IsKeyword(Peek(), kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind k, const char* what) {
    if (Peek().kind != k) {
      return Err(StrFormat("expected %s but found %s", what,
                           Peek().Describe().c_str()));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Err(StrFormat("expected keyword %s but found %s", kw,
                           Peek().Describe().c_str()));
    }
    Advance();
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s (at line %d:%d)", msg.c_str(), Peek().line,
                  Peek().column));
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  // ---- grammar ----------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> Select() {
    DBT_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    // select list
    do {
      SelectItem item;
      DBT_ASSIGN_OR_RETURN(item.expr, Expression());
      if (MatchKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));

    DBT_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    do {
      DBT_ASSIGN_OR_RETURN(TableRef ref, TableName(TableRef::Join::kCross));
      stmt->from.push_back(std::move(ref));
      // Explicit JOIN chain: [INNER] JOIN t ON cond | LEFT [OUTER] JOIN ...
      for (;;) {
        TableRef::Join join;
        if (MatchKeyword("LEFT")) {
          MatchKeyword("OUTER");
          DBT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          join = TableRef::Join::kLeft;
        } else if (IsKeyword(Peek(), "INNER") || IsKeyword(Peek(), "JOIN")) {
          MatchKeyword("INNER");
          DBT_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          join = TableRef::Join::kInner;
        } else {
          break;
        }
        DBT_ASSIGN_OR_RETURN(TableRef joined, TableName(join));
        DBT_RETURN_IF_ERROR(ExpectKeyword("ON"));
        DBT_ASSIGN_OR_RETURN(joined.on, Expression());
        stmt->from.push_back(std::move(joined));
      }
    } while (Match(TokenKind::kComma));

    if (MatchKeyword("WHERE")) {
      DBT_ASSIGN_OR_RETURN(stmt->where, Expression());
    }
    if (MatchKeyword("GROUP")) {
      DBT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        std::unique_ptr<Expr> col;
        DBT_ASSIGN_OR_RETURN(col, Primary());
        if (col->kind != Expr::Kind::kColumnRef) {
          return Err("GROUP BY supports column references only");
        }
        stmt->group_by.push_back(std::move(col));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("HAVING")) {
      DBT_ASSIGN_OR_RETURN(stmt->having, Expression());
    }
    return stmt;
  }

  Result<TableRef> TableName(TableRef::Join join) {
    if (Peek().kind != TokenKind::kIdent || IsReserved(Peek())) {
      return Err("expected table name in FROM");
    }
    TableRef ref;
    ref.table = Advance().text;
    ref.alias = ref.table;
    ref.join = join;
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<CreateTableStmt> CreateTable() {
    DBT_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    DBT_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    if (Peek().kind != TokenKind::kIdent) return Err("expected table name");
    stmt.name = Advance().text;
    DBT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    do {
      if (Peek().kind != TokenKind::kIdent) return Err("expected column name");
      std::string col = Advance().text;
      if (Peek().kind != TokenKind::kIdent) return Err("expected column type");
      std::string ty = ToUpper(Advance().text);
      Type type;
      if (ty == "INT" || ty == "INTEGER" || ty == "BIGINT" || ty == "LONG") {
        type = Type::kInt;
      } else if (ty == "DOUBLE" || ty == "FLOAT" || ty == "REAL" ||
                 ty == "DECIMAL" || ty == "NUMERIC") {
        type = Type::kDouble;
        // Optional precision: DECIMAL(10,2)
        if (Match(TokenKind::kLParen)) {
          while (Peek().kind != TokenKind::kRParen && !AtEnd()) Advance();
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        }
      } else if (ty == "STRING" || ty == "VARCHAR" || ty == "CHAR" ||
                 ty == "TEXT") {
        type = Type::kString;
        if (Match(TokenKind::kLParen)) {
          while (Peek().kind != TokenKind::kRParen && !AtEnd()) Advance();
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        }
      } else if (ty == "DATE") {
        type = Type::kDate;
      } else {
        return Err(StrFormat("unknown column type '%s'", ty.c_str()));
      }
      stmt.columns.emplace_back(std::move(col), type);
    } while (Match(TokenKind::kComma));
    DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return stmt;
  }

  // Precedence: OR < AND < NOT < comparison < add/sub < mul/div < unary.
  Result<std::unique_ptr<Expr>> Expression() { return OrExpr(); }

 private:
  static bool IsReserved(const Token& t) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE",   "GROUP",   "BY",      "AS",   "AND",
        "OR",     "NOT",   "SUM",     "COUNT",   "AVG",     "MIN",  "MAX",
        "CREATE", "TABLE", "ON",      "JOIN",    "INNER",   "LEFT", "OUTER",
        "HAVING", "LIKE",  "IN",      "BETWEEN", "CASE",    "WHEN", "THEN",
        "ELSE",   "END",   "EXTRACT", "DATE",    "INTERVAL"};
    if (t.kind != TokenKind::kIdent) return false;
    std::string up = ToUpper(t.text);
    for (const char* r : kReserved) {
      if (up == r) return true;
    }
    return false;
  }

  Result<std::unique_ptr<Expr>> OrExpr() {
    std::unique_ptr<Expr> lhs;
    DBT_ASSIGN_OR_RETURN(lhs, AndExpr());
    while (MatchKeyword("OR")) {
      std::unique_ptr<Expr> rhs;
      DBT_ASSIGN_OR_RETURN(rhs, AndExpr());
      lhs = Expr::MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> AndExpr() {
    std::unique_ptr<Expr> lhs;
    DBT_ASSIGN_OR_RETURN(lhs, NotExpr());
    while (MatchKeyword("AND")) {
      std::unique_ptr<Expr> rhs;
      DBT_ASSIGN_OR_RETURN(rhs, NotExpr());
      lhs = Expr::MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> NotExpr() {
    if (MatchKeyword("NOT")) {
      std::unique_ptr<Expr> sub;
      DBT_ASSIGN_OR_RETURN(sub, NotExpr());
      return Expr::MakeNot(std::move(sub));
    }
    return Comparison();
  }

  Result<std::unique_ptr<Expr>> Comparison() {
    std::unique_ptr<Expr> lhs;
    DBT_ASSIGN_OR_RETURN(lhs, Additive());

    // Negated predicate forms: `x NOT LIKE p`, `x NOT IN (...)`,
    // `x NOT BETWEEN a AND b`.
    bool negated = false;
    if (IsKeyword(Peek(), "NOT") &&
        (IsKeyword(Peek(1), "LIKE") || IsKeyword(Peek(1), "IN") ||
         IsKeyword(Peek(1), "BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("LIKE")) {
      std::unique_ptr<Expr> pattern;
      DBT_ASSIGN_OR_RETURN(pattern, Additive());
      return Expr::MakeBinary(negated ? BinOp::kNotLike : BinOp::kLike,
                              std::move(lhs), std::move(pattern));
    }
    if (MatchKeyword("IN")) {
      DBT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after IN"));
      if (Peek().kind == TokenKind::kRParen) {
        return Err("IN list must not be empty");
      }
      // Desugar to a disjunction of equalities (values are scalar
      // expressions; duplicates are harmless under OR).
      std::unique_ptr<Expr> disjunction;
      do {
        std::unique_ptr<Expr> value;
        DBT_ASSIGN_OR_RETURN(value, Expression());
        auto eq = Expr::MakeBinary(BinOp::kEq, lhs->Clone(), std::move(value));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : Expr::MakeBinary(BinOp::kOr,
                                             std::move(disjunction),
                                             std::move(eq));
      } while (Match(TokenKind::kComma));
      DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' closing IN list"));
      if (negated) return Expr::MakeNot(std::move(disjunction));
      return disjunction;
    }
    if (MatchKeyword("BETWEEN")) {
      std::unique_ptr<Expr> lo, hi;
      DBT_ASSIGN_OR_RETURN(lo, Additive());
      DBT_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DBT_ASSIGN_OR_RETURN(hi, Additive());
      auto ge = Expr::MakeBinary(BinOp::kGe, lhs->Clone(), std::move(lo));
      auto le = Expr::MakeBinary(BinOp::kLe, std::move(lhs), std::move(hi));
      auto both =
          Expr::MakeBinary(BinOp::kAnd, std::move(ge), std::move(le));
      if (negated) return Expr::MakeNot(std::move(both));
      return both;
    }
    if (negated) {
      return Err("expected LIKE, IN or BETWEEN after NOT");
    }

    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinOp::kEq; break;
      case TokenKind::kNeq: op = BinOp::kNeq; break;
      case TokenKind::kLt: op = BinOp::kLt; break;
      case TokenKind::kLe: op = BinOp::kLe; break;
      case TokenKind::kGt: op = BinOp::kGt; break;
      case TokenKind::kGe: op = BinOp::kGe; break;
      default:
        return lhs;
    }
    Advance();
    std::unique_ptr<Expr> rhs;
    DBT_ASSIGN_OR_RETURN(rhs, Additive());
    return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<std::unique_ptr<Expr>> Additive() {
    std::unique_ptr<Expr> lhs;
    DBT_ASSIGN_OR_RETURN(lhs, Multiplicative());
    for (;;) {
      BinOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      if (IsKeyword(Peek(), "INTERVAL")) {
        // DATE 'lit' +/- INTERVAL 'n' YEAR|MONTH|DAY: folded to a literal at
        // parse time (interval arithmetic over columns is out of fragment).
        DBT_ASSIGN_OR_RETURN(lhs,
                             FoldInterval(std::move(lhs), op == BinOp::kSub));
        continue;
      }
      std::unique_ptr<Expr> rhs;
      DBT_ASSIGN_OR_RETURN(rhs, Multiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> FoldInterval(std::unique_ptr<Expr> lhs,
                                             bool subtract) {
    DBT_RETURN_IF_ERROR(ExpectKeyword("INTERVAL"));
    if (lhs->kind != Expr::Kind::kLiteral || !lhs->literal.is_int()) {
      return Err(
          "INTERVAL arithmetic is supported on DATE literals only (fold "
          "into a constant)");
    }
    if (Peek().kind != TokenKind::kStringLit && Peek().kind != TokenKind::kIntLit) {
      return Err("expected interval magnitude like '1' after INTERVAL");
    }
    int64_t n = 0;
    if (Peek().kind == TokenKind::kStringLit) {
      const std::string& body = Peek().text;
      // Optional leading sign, then digits only — partial strtoll parses
      // ('1-2', '-') must not slip through as truncated magnitudes.
      const size_t digits_from = body.size() > 0 && body[0] == '-' ? 1 : 0;
      if (body.size() == digits_from ||
          body.find_first_not_of("0123456789", digits_from) !=
              std::string::npos) {
        return Err("malformed INTERVAL magnitude '" + body + "'");
      }
      n = std::strtoll(body.c_str(), nullptr, 10);
    } else {
      n = Peek().int_value;
    }
    Advance();
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected interval unit YEAR, MONTH or DAY");
    }
    std::string unit = ToUpper(Advance().text);
    if (unit != "YEAR" && unit != "MONTH" && unit != "DAY") {
      return Err("unsupported interval unit '" + unit +
                 "' (expected YEAR, MONTH or DAY)");
    }
    int64_t days =
        AddInterval(lhs->literal.AsInt(), subtract ? -n : n, unit);
    return Expr::MakeLiteral(Value(days));
  }

  Result<std::unique_ptr<Expr>> Multiplicative() {
    std::unique_ptr<Expr> lhs;
    DBT_ASSIGN_OR_RETURN(lhs, Unary());
    for (;;) {
      BinOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinOp::kDiv;
      } else {
        return lhs;
      }
      Advance();
      std::unique_ptr<Expr> rhs;
      DBT_ASSIGN_OR_RETURN(rhs, Unary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> Unary() {
    if (Match(TokenKind::kMinus)) {
      std::unique_ptr<Expr> sub;
      DBT_ASSIGN_OR_RETURN(sub, Unary());
      // Fold -literal immediately (keeps printed trees tidy).
      if (sub->kind == Expr::Kind::kLiteral && sub->literal.is_numeric()) {
        return Expr::MakeLiteral(Value::Neg(sub->literal));
      }
      return Expr::MakeUnaryMinus(std::move(sub));
    }
    if (Match(TokenKind::kPlus)) return Unary();
    return Primary();
  }

  Result<std::unique_ptr<Expr>> Primary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLit: {
        int64_t v = t.int_value;
        Advance();
        return Expr::MakeLiteral(Value(v));
      }
      case TokenKind::kDoubleLit: {
        double v = t.double_value;
        Advance();
        return Expr::MakeLiteral(Value(v));
      }
      case TokenKind::kStringLit: {
        std::string v = t.text;
        Advance();
        return Expr::MakeLiteral(Value(std::move(v)));
      }
      case TokenKind::kLParen: {
        // Either a parenthesised expression or a scalar subquery.
        if (IsKeyword(Peek(1), "SELECT")) {
          Advance();  // (
          std::unique_ptr<SelectStmt> sub;
          DBT_ASSIGN_OR_RETURN(sub, Select());
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::MakeSubquery(std::move(sub));
        }
        Advance();  // (
        std::unique_ptr<Expr> inner;
        DBT_ASSIGN_OR_RETURN(inner, Expression());
        DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        std::string up = ToUpper(t.text);
        if (up == "DATE" && Peek(1).kind == TokenKind::kStringLit) {
          // DATE 'YYYY-MM-DD' literal (stored as days since epoch).
          Advance();  // DATE
          int64_t days = 0;
          if (!ParseDateLiteral(Peek().text, &days)) {
            return Err("malformed date literal '" + Peek().text +
                       "' (expected 'YYYY-MM-DD')");
          }
          Advance();  // the literal
          return Expr::MakeLiteral(Value(days));
        }
        if (up == "CASE") {
          Advance();
          std::vector<Expr::CaseBranch> branches;
          while (MatchKeyword("WHEN")) {
            Expr::CaseBranch b;
            DBT_ASSIGN_OR_RETURN(b.when, Expression());
            DBT_RETURN_IF_ERROR(ExpectKeyword("THEN"));
            DBT_ASSIGN_OR_RETURN(b.then, Expression());
            branches.push_back(std::move(b));
          }
          if (branches.empty()) {
            return Err("CASE requires at least one WHEN branch");
          }
          std::unique_ptr<Expr> else_expr;
          if (MatchKeyword("ELSE")) {
            DBT_ASSIGN_OR_RETURN(else_expr, Expression());
          }
          DBT_RETURN_IF_ERROR(ExpectKeyword("END"));
          return Expr::MakeCase(std::move(branches), std::move(else_expr));
        }
        if (up == "EXTRACT") {
          Advance();
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after EXTRACT"));
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected EXTRACT field YEAR, MONTH or DAY");
          }
          std::string field = ToUpper(Advance().text);
          FuncKind fk;
          if (field == "YEAR") {
            fk = FuncKind::kExtractYear;
          } else if (field == "MONTH") {
            fk = FuncKind::kExtractMonth;
          } else if (field == "DAY") {
            fk = FuncKind::kExtractDay;
          } else {
            return Err("unsupported EXTRACT field '" + field +
                       "' (expected YEAR, MONTH or DAY)");
          }
          DBT_RETURN_IF_ERROR(ExpectKeyword("FROM"));
          std::unique_ptr<Expr> arg;
          DBT_ASSIGN_OR_RETURN(arg, Expression());
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::MakeFunc(fk, std::move(arg));
        }
        if (up == "SUM" || up == "COUNT" || up == "AVG" || up == "MIN" ||
            up == "MAX") {
          AggKind kind = up == "SUM"     ? AggKind::kSum
                         : up == "COUNT" ? AggKind::kCount
                         : up == "AVG"   ? AggKind::kAvg
                         : up == "MIN"   ? AggKind::kMin
                                         : AggKind::kMax;
          Advance();
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after aggregate"));
          std::unique_ptr<Expr> arg;
          if (kind == AggKind::kCount && Peek().kind == TokenKind::kStar) {
            Advance();
          } else {
            DBT_ASSIGN_OR_RETURN(arg, Expression());
          }
          DBT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::MakeAggregate(kind, std::move(arg));
        }
        // Column reference: ident or ident.ident
        std::string first = Advance().text;
        if (Match(TokenKind::kDot)) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected column name after '.'");
          }
          std::string col = Advance().text;
          return Expr::MakeColumn(std::move(first), std::move(col));
        }
        return Expr::MakeColumn("", std::move(first));
      }
      default:
        return Err(StrFormat("expected expression but found %s",
                             t.Describe().c_str()));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view text) {
  DBT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  std::unique_ptr<SelectStmt> stmt;
  DBT_ASSIGN_OR_RETURN(stmt, p.Select());
  p.Match(TokenKind::kSemicolon);
  if (!p.AtEnd()) {
    return p.Err("trailing input after SELECT statement");
  }
  return stmt;
}

Result<CreateTableStmt> ParseCreateTable(std::string_view text) {
  DBT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  CreateTableStmt stmt;
  DBT_ASSIGN_OR_RETURN(stmt, p.CreateTable());
  p.Match(TokenKind::kSemicolon);
  if (!p.AtEnd()) {
    return p.Err("trailing input after CREATE TABLE statement");
  }
  return stmt;
}

Result<Script> ParseScript(std::string_view text) {
  DBT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  Script script;
  int qid = 0;
  while (!p.AtEnd()) {
    if (p.Match(TokenKind::kSemicolon)) continue;
    if (IsKeyword(p.Peek(), "CREATE")) {
      CreateTableStmt stmt;
      DBT_ASSIGN_OR_RETURN(stmt, p.CreateTable());
      script.tables.push_back(std::move(stmt));
    } else if (IsKeyword(p.Peek(), "SELECT")) {
      Script::NamedQuery q;
      q.name = StrFormat("q%d", qid++);
      DBT_ASSIGN_OR_RETURN(q.select, p.Select());
      script.queries.push_back(std::move(q));
    } else {
      return p.Err("expected CREATE TABLE or SELECT");
    }
  }
  return script;
}

}  // namespace dbtoaster::sql
