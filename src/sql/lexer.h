// Hand-written SQL lexer. Produces the token stream consumed by Parser.
#ifndef DBTOASTER_SQL_LEXER_H_
#define DBTOASTER_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sql/token.h"

namespace dbtoaster::sql {

/// Tokenize `text`. Supports: identifiers (letters, digits, '_', '#'),
/// integer and decimal literals, 'string' literals with '' escapes,
/// `--` line comments, and the operator/punctuation set in TokenKind.
/// The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace dbtoaster::sql

#endif  // DBTOASTER_SQL_LEXER_H_
