#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/str.h"

namespace dbtoaster::sql {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kDoubleLit: return "decimal literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdent) return "identifier '" + text + "'";
  if (kind == TokenKind::kIntLit || kind == TokenKind::kDoubleLit ||
      kind == TokenKind::kStringLit) {
    return std::string(TokenKindName(kind)) + " '" + text + "'";
  }
  return TokenKindName(kind);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  auto make = [&](TokenKind kind, std::string t) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(t);
    tok.line = line;
    tok.column = col;
    return tok;
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment: -- ... \n
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      Token tok = make(TokenKind::kIdent, "");
      while (i < text.size() && IsIdentCont(text[i])) advance(1);
      tok.text = std::string(text.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      Token tok = make(TokenKind::kIntLit, "");
      bool is_double = false;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        advance(1);
      }
      if (i < text.size() && text[i] == '.') {
        is_double = true;
        advance(1);
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          advance(1);
        }
      }
      if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
        is_double = true;
        advance(1);
        if (i < text.size() && (text[i] == '+' || text[i] == '-')) advance(1);
        if (i >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[i]))) {
          return Status::ParseError(
              StrFormat("malformed exponent at line %d", line));
        }
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          advance(1);
        }
      }
      tok.text = std::string(text.substr(start, i - start));
      if (is_double) {
        tok.kind = TokenKind::kDoubleLit;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      Token tok = make(TokenKind::kStringLit, "");
      advance(1);
      std::string body;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            body += '\'';
            advance(2);
            continue;
          }
          advance(1);
          closed = true;
          break;
        }
        body += text[i];
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at line %d", tok.line));
      }
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }
    auto single = [&](TokenKind k) {
      tokens.push_back(make(k, std::string(1, c)));
      advance(1);
    };
    switch (c) {
      case '(': single(TokenKind::kLParen); break;
      case ')': single(TokenKind::kRParen); break;
      case ',': single(TokenKind::kComma); break;
      case ';': single(TokenKind::kSemicolon); break;
      case '.': single(TokenKind::kDot); break;
      case '*': single(TokenKind::kStar); break;
      case '+': single(TokenKind::kPlus); break;
      case '-': single(TokenKind::kMinus); break;
      case '/': single(TokenKind::kSlash); break;
      case '=': single(TokenKind::kEq); break;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(make(TokenKind::kNeq, "!="));
          advance(2);
        } else {
          return Status::ParseError(
              StrFormat("unexpected character '!' at line %d:%d", line, col));
        }
        break;
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(make(TokenKind::kLe, "<="));
          advance(2);
        } else if (i + 1 < text.size() && text[i + 1] == '>') {
          tokens.push_back(make(TokenKind::kNeq, "<>"));
          advance(2);
        } else {
          single(TokenKind::kLt);
        }
        break;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(make(TokenKind::kGe, ">="));
          advance(2);
        } else {
          single(TokenKind::kGt);
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at line %d:%d", c, line, col));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  tokens.push_back(end);
  return tokens;
}

}  // namespace dbtoaster::sql
