// Recursive-descent parser for the supported SQL fragment.
#ifndef DBTOASTER_SQL_PARSER_H_
#define DBTOASTER_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/status.h"
#include "src/sql/ast.h"

namespace dbtoaster::sql {

/// Parse a single SELECT statement (optionally ';'-terminated).
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view text);

/// Parse a single CREATE TABLE statement (optionally ';'-terminated).
Result<CreateTableStmt> ParseCreateTable(std::string_view text);

/// Parse a script of ';'-separated CREATE TABLE and SELECT statements.
/// Queries are named q0, q1, ... in order of appearance.
Result<Script> ParseScript(std::string_view text);

}  // namespace dbtoaster::sql

#endif  // DBTOASTER_SQL_PARSER_H_
