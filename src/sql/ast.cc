#include "src/sql/ast.h"

#include <cassert>

#include "src/common/str.h"

namespace dbtoaster::sql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "=";
    case BinOp::kNeq: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kLike: return "LIKE";
    case BinOp::kNotLike: return "NOT LIKE";
  }
  return "?";
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNeq:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kLike:
    case BinOp::kNotLike:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
      return true;
    default:
      return false;
  }
}

BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq: return BinOp::kEq;
    case BinOp::kNeq: return BinOp::kNeq;
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default:
      assert(false && "FlipComparison on non-comparison");
      return op;
  }
}

const char* FuncKindName(FuncKind k) {
  switch (k) {
    case FuncKind::kExtractYear: return "EXTRACT(YEAR FROM ";
    case FuncKind::kExtractMonth: return "EXTRACT(MONTH FROM ";
    case FuncKind::kExtractDay: return "EXTRACT(DAY FROM ";
  }
  return "?";
}

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kSum: return "SUM";
    case AggKind::kCount: return "COUNT";
    case AggKind::kAvg: return "AVG";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kUnaryMinus:
      return "(-" + lhs->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->ToString() + ")";
    case Kind::kAggregate:
      return std::string(AggKindName(agg)) + "(" +
             (agg_arg ? agg_arg->ToString() : "*") + ")";
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ")";
    case Kind::kCase: {
      std::string s = "CASE";
      for (const CaseBranch& b : case_branches) {
        s += " WHEN " + b.when->ToString() + " THEN " + b.then->ToString();
      }
      if (case_else) s += " ELSE " + case_else->ToString();
      s += " END";
      return s;
    }
    case Kind::kFunc:
      return std::string(FuncKindName(func)) + lhs->ToString() + ")";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->op = op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->agg = agg;
  if (agg_arg) e->agg_arg = agg_arg->Clone();
  if (subquery) e->subquery = subquery->Clone();
  for (const CaseBranch& b : case_branches) {
    e->case_branches.push_back(CaseBranch{b.when->Clone(), b.then->Clone()});
  }
  if (case_else) e->case_else = case_else->Clone();
  e->func = func;
  return e;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string qualifier,
                                       std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::MakeUnaryMinus(std::unique_ptr<Expr> sub) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnaryMinus;
  e->lhs = std::move(sub);
  return e;
}

std::unique_ptr<Expr> Expr::MakeNot(std::unique_ptr<Expr> sub) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(sub);
  return e;
}

std::unique_ptr<Expr> Expr::MakeAggregate(AggKind k,
                                          std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = k;
  e->agg_arg = std::move(arg);
  return e;
}

std::unique_ptr<Expr> Expr::MakeSubquery(std::unique_ptr<SelectStmt> q) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kSubquery;
  e->subquery = std::move(q);
  return e;
}

std::unique_ptr<Expr> Expr::MakeCase(std::vector<CaseBranch> branches,
                                     std::unique_ptr<Expr> else_expr) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCase;
  e->case_branches = std::move(branches);
  e->case_else = std::move(else_expr);
  return e;
}

std::unique_ptr<Expr> Expr::MakeFunc(FuncKind k, std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunc;
  e->func = k;
  e->lhs = std::move(arg);
  return e;
}

TableRef TableRef::Clone() const {
  TableRef t;
  t.table = table;
  t.alias = alias;
  t.join = join;
  if (on) t.on = on->Clone();
  return t;
}

std::string TableRef::ToString() const {
  std::string s = alias == table ? table : table + " " + alias;
  if (join == Join::kInner) {
    return "JOIN " + s + " ON " + on->ToString();
  }
  if (join == Join::kLeft) {
    return "LEFT JOIN " + s + " ON " + on->ToString();
  }
  return s;
}

SelectItem SelectItem::Clone() const {
  SelectItem it;
  it.expr = expr->Clone();
  it.alias = alias;
  return it;
}

std::string SelectStmt::ToString() const {
  std::string s = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) s += ", ";
    s += items[i].expr->ToString();
    if (!items[i].alias.empty()) s += " AS " + items[i].alias;
  }
  s += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) s += from[i].join == TableRef::Join::kCross ? ", " : " ";
    s += from[i].ToString();
  }
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) s += ", ";
      s += group_by[i]->ToString();
    }
  }
  if (having) s += " HAVING " + having->ToString();
  return s;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto q = std::make_unique<SelectStmt>();
  for (const auto& it : items) q->items.push_back(it.Clone());
  for (const auto& t : from) q->from.push_back(t.Clone());
  if (where) q->where = where->Clone();
  for (const auto& g : group_by) q->group_by.push_back(g->Clone());
  if (having) q->having = having->Clone();
  return q;
}

std::string CreateTableStmt::ToString() const {
  std::string s = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ", ";
    s += columns[i].first;
    s += " ";
    s += TypeName(columns[i].second);
  }
  s += ")";
  return s;
}

}  // namespace dbtoaster::sql
