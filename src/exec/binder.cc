#include "src/exec/binder.h"

#include <cassert>

#include "src/common/str.h"

namespace dbtoaster::exec {
namespace {

using sql::BinOp;
using sql::Expr;

/// Binds scalar expressions within one SELECT scope.
class Binder {
 public:
  Binder(const Catalog& catalog, BoundSelect* target,
         std::vector<const BoundSelect*> scopes)
      : catalog_(catalog), target_(target), scopes_(std::move(scopes)) {}

  Status BindFrom(const sql::SelectStmt& stmt) {
    size_t offset = 0;
    for (const sql::TableRef& ref : stmt.from) {
      const Schema* schema = catalog_.FindRelation(ref.table);
      if (schema == nullptr) {
        return Status::NotFound("unknown relation: " + ref.table);
      }
      for (const BoundTable& existing : target_->tables) {
        if (ToUpper(existing.alias) == ToUpper(ref.alias)) {
          return Status::InvalidArgument("duplicate table alias: " +
                                         ref.alias);
        }
      }
      target_->tables.push_back(
          BoundTable{ref.alias, schema->name(), schema, offset});
      offset += schema->num_columns();
    }
    target_->wide_width = offset;
    return Status::OK();
  }

  /// Resolve a column reference; searches this scope, then outer scopes.
  Result<std::unique_ptr<ScalarExpr>> ResolveColumn(const Expr& e) {
    assert(e.kind == Expr::Kind::kColumnRef);
    // Try each scope from innermost out.
    std::vector<const BoundSelect*> all;
    all.push_back(target_);
    for (const BoundSelect* s : scopes_) all.push_back(s);
    for (size_t depth = 0; depth < all.size(); ++depth) {
      const BoundSelect* scope = all[depth];
      const BoundTable* found_table = nullptr;
      size_t found_col = 0;
      for (const BoundTable& t : scope->tables) {
        if (!e.qualifier.empty() &&
            ToUpper(t.alias) != ToUpper(e.qualifier)) {
          continue;
        }
        auto col = t.schema->FindColumn(e.column);
        if (!col.has_value()) continue;
        if (found_table != nullptr) {
          return Status::InvalidArgument(
              StrFormat("ambiguous column reference '%s'",
                        e.ToString().c_str()));
        }
        found_table = &t;
        found_col = *col;
      }
      if (found_table != nullptr) {
        Type type = found_table->schema->column_type(found_col);
        std::string name = found_table->alias + "." +
                           found_table->schema->column_name(found_col);
        return ScalarExpr::Column(static_cast<int>(depth),
                                  found_table->flat_offset + found_col, type,
                                  std::move(name));
      }
    }
    return Status::NotFound(
        StrFormat("unresolved column '%s'", e.ToString().c_str()));
  }

  /// Bind an expression. `allow_aggregates`: true in SELECT-item position.
  Result<std::unique_ptr<ScalarExpr>> BindExpr(const Expr& e,
                                               bool allow_aggregates) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return ScalarExpr::Const(e.literal);
      case Expr::Kind::kColumnRef:
        return ResolveColumn(e);
      case Expr::Kind::kUnaryMinus: {
        DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> sub,
                             BindExpr(*e.lhs, allow_aggregates));
        if (!IsNumeric(sub->type)) {
          return Status::TypeError("unary minus on non-numeric operand: " +
                                   e.ToString());
        }
        auto out = std::make_unique<ScalarExpr>();
        out->kind = ScalarExpr::Kind::kUnaryMinus;
        out->type = sub->type == Type::kDouble ? Type::kDouble : Type::kInt;
        out->lhs = std::move(sub);
        return out;
      }
      case Expr::Kind::kNot: {
        DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> sub,
                             BindExpr(*e.lhs, allow_aggregates));
        auto out = std::make_unique<ScalarExpr>();
        out->kind = ScalarExpr::Kind::kNot;
        out->type = Type::kInt;
        out->lhs = std::move(sub);
        return out;
      }
      case Expr::Kind::kFunc: {
        DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> sub,
                             BindExpr(*e.lhs, allow_aggregates));
        if (!IsNumeric(sub->type)) {
          return Status::TypeError("EXTRACT over non-date operand: " +
                                   e.ToString());
        }
        auto out = std::make_unique<ScalarExpr>();
        out->kind = ScalarExpr::Kind::kFunc;
        out->func = e.func;
        out->type = Type::kInt;
        out->lhs = std::move(sub);
        return out;
      }
      case Expr::Kind::kCase: {
        // Desugar over 0/1 indicators:
        //   CASE WHEN p1 THEN v1 ... ELSE z END
        //     == p1·v1 + (¬p1)·(p2·v2 + ... + (¬pn)·z)
        // Branch values must be numeric (string-valued CASE is out of the
        // fragment).
        std::unique_ptr<ScalarExpr> acc;
        if (e.case_else != nullptr) {
          DBT_ASSIGN_OR_RETURN(acc, BindExpr(*e.case_else, allow_aggregates));
        } else {
          acc = ScalarExpr::Const(Value(int64_t{0}));
        }
        if (!IsNumeric(acc->type)) {
          return Status::TypeError(
              "CASE branches must be numeric: " + e.ToString());
        }
        for (size_t i = e.case_branches.size(); i-- > 0;) {
          const sql::Expr::CaseBranch& b = e.case_branches[i];
          DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> when,
                               BindExpr(*b.when, allow_aggregates));
          DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> then,
                               BindExpr(*b.then, allow_aggregates));
          if (!IsNumeric(then->type)) {
            return Status::TypeError(
                "CASE branches must be numeric: " + e.ToString());
          }
          Type t = PromoteNumeric(then->type, acc->type);
          // Re-bind the condition for the negated factor (ScalarExprs are
          // single-owner trees).
          auto not_when = std::make_unique<ScalarExpr>();
          not_when->kind = ScalarExpr::Kind::kNot;
          not_when->type = Type::kInt;
          DBT_ASSIGN_OR_RETURN(not_when->lhs,
                               BindExpr(*b.when, allow_aggregates));
          auto pos = ScalarExpr::Binary(sql::BinOp::kMul, t, std::move(when),
                                        std::move(then));
          auto neg = ScalarExpr::Binary(sql::BinOp::kMul, t,
                                        std::move(not_when), std::move(acc));
          acc = ScalarExpr::Binary(sql::BinOp::kAdd, t, std::move(pos),
                                   std::move(neg));
        }
        return acc;
      }
      case Expr::Kind::kBinary: {
        DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> l,
                             BindExpr(*e.lhs, allow_aggregates));
        DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> r,
                             BindExpr(*e.rhs, allow_aggregates));
        Type type;
        if (sql::IsArithmetic(e.op)) {
          if (!IsNumeric(l->type) || !IsNumeric(r->type)) {
            return Status::TypeError("arithmetic on non-numeric operands: " +
                                     e.ToString());
          }
          type = e.op == BinOp::kDiv ? Type::kDouble
                                     : PromoteNumeric(l->type, r->type);
        } else if (sql::IsComparison(e.op)) {
          bool ls = l->type == Type::kString, rs = r->type == Type::kString;
          if (e.op == BinOp::kLike || e.op == BinOp::kNotLike) {
            if (!ls || !rs) {
              return Status::TypeError("LIKE requires string operands: " +
                                       e.ToString());
            }
          } else if (ls != rs) {
            return Status::TypeError(
                "comparison between string and numeric operands: " +
                e.ToString());
          }
          type = Type::kInt;
        } else {  // AND / OR
          type = Type::kInt;
        }
        return ScalarExpr::Binary(e.op, type, std::move(l), std::move(r));
      }
      case Expr::Kind::kAggregate: {
        if (!allow_aggregates) {
          return Status::NotSupported(
              "aggregates are only supported in the SELECT list: " +
              e.ToString());
        }
        std::unique_ptr<ScalarExpr> arg;
        Type result_type = Type::kInt;
        if (e.agg_arg != nullptr) {
          // Aggregate arguments may not nest aggregates.
          DBT_ASSIGN_OR_RETURN(arg, BindExpr(*e.agg_arg, false));
          if (e.agg != sql::AggKind::kCount && !IsNumeric(arg->type)) {
            return Status::NotSupported(
                std::string(sql::AggKindName(e.agg)) +
                " over non-numeric argument: " + e.ToString());
          }
        } else if (e.agg != sql::AggKind::kCount) {
          return Status::InvalidArgument(
              "only COUNT may omit its argument: " + e.ToString());
        }
        switch (e.agg) {
          case sql::AggKind::kSum:
            result_type = arg->type == Type::kDouble ? Type::kDouble
                                                     : Type::kInt;
            break;
          case sql::AggKind::kCount:
            result_type = Type::kInt;
            break;
          case sql::AggKind::kAvg:
            result_type = Type::kDouble;
            break;
          case sql::AggKind::kMin:
          case sql::AggKind::kMax:
            result_type = arg->type;
            break;
        }
        std::string label = std::string(sql::AggKindName(e.agg)) + "(" +
                            (arg ? arg->ToString() : "*") + ")";
        // Deduplicate structurally identical aggregates.
        size_t index = target_->aggregates.size();
        for (size_t i = 0; i < target_->aggregates.size(); ++i) {
          if (target_->aggregates[i].kind == e.agg &&
              target_->aggregates[i].label == label) {
            index = i;
            break;
          }
        }
        if (index == target_->aggregates.size()) {
          target_->aggregates.push_back(
              AggSpec{e.agg, std::move(arg), result_type, label});
        }
        auto out = std::make_unique<ScalarExpr>();
        out->kind = ScalarExpr::Kind::kAggRef;
        out->type = result_type;
        out->agg_index = index;
        out->debug_name = label;
        return out;
      }
      case Expr::Kind::kSubquery: {
        std::vector<const BoundSelect*> inner_scopes;
        inner_scopes.push_back(target_);
        for (const BoundSelect* s : scopes_) inner_scopes.push_back(s);
        DBT_ASSIGN_OR_RETURN(std::shared_ptr<BoundSelect> sub,
                             Bind(*e.subquery, catalog_, inner_scopes));
        if (!sub->is_aggregate || sub->items.size() != 1 ||
            !sub->group_by.empty()) {
          return Status::NotSupported(
              "scalar subqueries must be single-value aggregate queries "
              "without GROUP BY: " +
              e.subquery->ToString());
        }
        auto out = std::make_unique<ScalarExpr>();
        out->kind = ScalarExpr::Kind::kSubquery;
        out->type = sub->items[0].expr->type;
        out->subquery = std::move(sub);
        return out;
      }
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  const Catalog& catalog_;
  BoundSelect* target_;
  std::vector<const BoundSelect*> scopes_;
};

/// Split an expression on top-level ANDs into conjuncts.
void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kAnd) {
    SplitConjuncts(*e.lhs, out);
    SplitConjuncts(*e.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Does a bound expression reference the current scope's group-by columns
/// only (outside aggregate references)? Used to validate SELECT items.
bool UsesOnlyGroupColumns(const ScalarExpr& e,
                          const std::vector<std::unique_ptr<ScalarExpr>>& gb,
                          std::vector<size_t>* rewrites) {
  switch (e.kind) {
    case ScalarExpr::Kind::kConst:
    case ScalarExpr::Kind::kAggRef:
      return true;
    case ScalarExpr::Kind::kColumn: {
      if (e.scope_up > 0) return true;  // outer correlation: always available
      for (size_t i = 0; i < gb.size(); ++i) {
        if (gb[i]->kind == ScalarExpr::Kind::kColumn &&
            gb[i]->offset == e.offset) {
          rewrites->push_back(i);
          return true;
        }
      }
      return false;
    }
    case ScalarExpr::Kind::kSubquery:
      return true;  // subquery references resolve through their own scopes
    default:
      if (e.lhs && !UsesOnlyGroupColumns(*e.lhs, gb, rewrites)) return false;
      if (e.rhs && !UsesOnlyGroupColumns(*e.rhs, gb, rewrites)) return false;
      return true;
  }
}

/// Rewrite scope-0 column refs in an item of an aggregate query to index the
/// group-key row (scopes[0] during finalization).
void RewriteToGroupKey(ScalarExpr* e,
                       const std::vector<std::unique_ptr<ScalarExpr>>& gb) {
  if (e->kind == ScalarExpr::Kind::kColumn && e->scope_up == 0) {
    for (size_t i = 0; i < gb.size(); ++i) {
      if (gb[i]->kind == ScalarExpr::Kind::kColumn &&
          gb[i]->offset == e->offset) {
        e->offset = i;
        return;
      }
    }
    assert(false && "item column not in GROUP BY (validated earlier)");
  }
  if (e->lhs) RewriteToGroupKey(e->lhs.get(), gb);
  if (e->rhs) RewriteToGroupKey(e->rhs.get(), gb);
  // Subquery internals reference their own scope chain; the group-key
  // rewrite applies only at finalization depth and correlated references
  // inside subqueries point at the *wide* row, which the executor also
  // provides during finalization (see executor.cc).
}

bool ContainsAggRef(const ScalarExpr& e) {
  if (e.kind == ScalarExpr::Kind::kAggRef) return true;
  if (e.lhs && ContainsAggRef(*e.lhs)) return true;
  if (e.rhs && ContainsAggRef(*e.rhs)) return true;
  return false;
}

}  // namespace

std::string BoundSelect::ToString() const {
  std::string s = "BoundSelect{tables=[";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i) s += ", ";
    s += tables[i].alias + ":" + tables[i].table;
  }
  s += "], where=[";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i) s += " AND ";
    s += conjuncts[i]->ToString();
  }
  s += "], group_by=[";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i) s += ", ";
    s += group_by[i]->ToString();
  }
  s += "], aggs=[";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i) s += ", ";
    s += aggregates[i].label;
  }
  s += "]}";
  return s;
}

namespace {

/// Does a bound expression reference any scope-0 column of table `t`?
bool RefsTableRange(const ScalarExpr& e, size_t lo, size_t hi) {
  if (e.kind == ScalarExpr::Kind::kSubquery) return true;  // conservative
  if (e.kind == ScalarExpr::Kind::kColumn && e.scope_up == 0 &&
      e.offset >= lo && e.offset < hi) {
    return true;
  }
  if (e.lhs && RefsTableRange(*e.lhs, lo, hi)) return true;
  if (e.rhs && RefsTableRange(*e.rhs, lo, hi)) return true;
  return false;
}

}  // namespace

Result<std::shared_ptr<BoundSelect>> Bind(
    const sql::SelectStmt& stmt, const Catalog& catalog,
    const std::vector<const BoundSelect*>& outer) {
  auto bound = std::make_shared<BoundSelect>();
  bound->sql_text = stmt.ToString();
  Binder binder(catalog, bound.get(), outer);
  DBT_RETURN_IF_ERROR(binder.BindFrom(stmt));

  int left_idx = -1;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (stmt.from[i].join == sql::TableRef::Join::kLeft) {
      if (left_idx >= 0) {
        return Status::NotSupported(
            "at most one LEFT JOIN per query is supported");
      }
      if (i + 1 != stmt.from.size()) {
        return Status::NotSupported("LEFT JOIN must be the last FROM entry");
      }
      left_idx = static_cast<int>(i);
    }
  }
  size_t right_lo = 0, right_hi = 0;
  if (left_idx >= 0) {
    right_lo = bound->tables[left_idx].flat_offset;
    right_hi = right_lo + bound->tables[left_idx].schema->num_columns();
  }

  if (stmt.where != nullptr) {
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.where, &parts);
    for (const Expr* part : parts) {
      DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> bound_pred,
                           binder.BindExpr(*part, /*allow_aggregates=*/false));
      bound->conjuncts.push_back(std::move(bound_pred));
    }
  }
  // Inner-JOIN ON conditions join the WHERE conjuncts (same semantics).
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (stmt.from[i].join != sql::TableRef::Join::kInner) continue;
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.from[i].on, &parts);
    for (const Expr* part : parts) {
      DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> bound_pred,
                           binder.BindExpr(*part, /*allow_aggregates=*/false));
      bound->conjuncts.push_back(std::move(bound_pred));
    }
  }
  if (left_idx >= 0) {
    // SQL NULL semantics: a WHERE conjunct over the right side filters out
    // unmatched rows, so the LEFT JOIN degenerates to an inner join.
    bool degenerate = false;
    for (const auto& c : bound->conjuncts) {
      if (RefsTableRange(*c, right_lo, right_hi)) {
        degenerate = true;
        break;
      }
    }
    std::vector<const Expr*> parts;
    SplitConjuncts(*stmt.from[left_idx].on, &parts);
    for (const Expr* part : parts) {
      DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> bound_pred,
                           binder.BindExpr(*part, /*allow_aggregates=*/false));
      if (degenerate) {
        bound->conjuncts.push_back(std::move(bound_pred));
      } else {
        bound->left_on.push_back(std::move(bound_pred));
      }
    }
    // Subqueries anywhere in a LEFT JOIN query's predicates (WHERE,
    // inner-JOIN ON, or the LEFT ON clause itself) are out of the fragment,
    // mirroring the translator so both pipelines reject identically rather
    // than silently degrading the join.
    for (const auto& c : bound->conjuncts) {
      if (!c->IsSubqueryFree()) {
        return Status::NotSupported(
            "LEFT JOIN cannot be combined with subqueries");
      }
    }
    for (const auto& c : bound->left_on) {
      if (!c->IsSubqueryFree()) {
        return Status::NotSupported(
            "LEFT JOIN cannot be combined with subqueries");
      }
    }
    if (!degenerate) bound->left_table = left_idx;
  }

  for (const auto& g : stmt.group_by) {
    DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> col,
                         binder.BindExpr(*g, /*allow_aggregates=*/false));
    if (col->kind != ScalarExpr::Kind::kColumn || col->scope_up != 0) {
      return Status::NotSupported("GROUP BY must name columns of this query");
    }
    if (bound->left_table >= 0 &&
        RefsTableRange(*col, right_lo, right_hi)) {
      return Status::NotSupported(
          "GROUP BY over the left-joined relation's columns is not "
          "supported (unmatched rows would group under NULL)");
    }
    bound->group_by.push_back(std::move(col));
  }

  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    DBT_ASSIGN_OR_RETURN(std::unique_ptr<ScalarExpr> e,
                         binder.BindExpr(*stmt.items[i].expr,
                                         /*allow_aggregates=*/true));
    std::string name = stmt.items[i].alias;
    if (name.empty()) {
      if (stmt.items[i].expr->kind == Expr::Kind::kColumnRef) {
        name = stmt.items[i].expr->column;
      } else {
        name = StrFormat("col%zu", i);
      }
    }
    bound->column_names.push_back(name);
    bound->items.push_back(BoundItem{std::move(e), name});
  }

  if (stmt.having != nullptr) {
    DBT_ASSIGN_OR_RETURN(bound->having,
                         binder.BindExpr(*stmt.having,
                                         /*allow_aggregates=*/true));
  }

  bound->is_aggregate = !bound->aggregates.empty() || !bound->group_by.empty();

  if (bound->left_table >= 0) {
    // Unmatched rows carry no right-side values; aggregate arguments over
    // them would need NULL semantics, which the data model omits.
    for (const AggSpec& spec : bound->aggregates) {
      if (spec.arg != nullptr &&
          RefsTableRange(*spec.arg, right_lo, right_hi)) {
        return Status::NotSupported(
            "aggregates over the left-joined relation's columns are not "
            "supported (unmatched rows contribute NULL): " + spec.label);
      }
    }
  }

  if (bound->is_aggregate) {
    // Validate + rewrite items: non-aggregate column uses must be group keys.
    for (BoundItem& item : bound->items) {
      std::vector<size_t> rewrites;
      if (!UsesOnlyGroupColumns(*item.expr, bound->group_by, &rewrites)) {
        return Status::InvalidArgument(
            "SELECT item references a column that is neither aggregated nor "
            "in GROUP BY: " +
            item.expr->ToString());
      }
      RewriteToGroupKey(item.expr.get(), bound->group_by);
    }
    if (bound->having != nullptr) {
      std::vector<size_t> rewrites;
      if (!UsesOnlyGroupColumns(*bound->having, bound->group_by, &rewrites)) {
        return Status::InvalidArgument(
            "HAVING references a column that is neither aggregated nor in "
            "GROUP BY: " +
            bound->having->ToString());
      }
      RewriteToGroupKey(bound->having.get(), bound->group_by);
    }
  } else {
    if (bound->having != nullptr) {
      return Status::NotSupported(
          "HAVING requires aggregation or GROUP BY");
    }
    for (BoundItem& item : bound->items) {
      if (ContainsAggRef(*item.expr)) {
        return Status::Internal("aggregate reference in non-aggregate query");
      }
    }
  }
  return bound;
}

}  // namespace dbtoaster::exec
