// Binder: resolves and type-checks a sql::SelectStmt against a Catalog,
// producing a BoundSelect ready for execution by the Volcano-style executor.
#ifndef DBTOASTER_EXEC_BINDER_H_
#define DBTOASTER_EXEC_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/exec/scalar.h"
#include "src/sql/ast.h"

namespace dbtoaster::exec {

/// One FROM-clause table with its slice of the wide (joined) row.
struct BoundTable {
  std::string alias;
  std::string table;       ///< base relation name (catalog key)
  const Schema* schema;
  size_t flat_offset;      ///< first column's offset in the wide row
};

/// One aggregate computation (SUM/COUNT/AVG/MIN/MAX over a bound argument).
struct AggSpec {
  sql::AggKind kind;
  std::unique_ptr<ScalarExpr> arg;  ///< null for COUNT(*)
  Type result_type;
  std::string label;                ///< e.g. "SUM(b.price * b.volume)"
};

/// One output column.
struct BoundItem {
  std::unique_ptr<ScalarExpr> expr;  ///< may contain kAggRef nodes
  std::string name;
};

/// Fully bound SELECT. For aggregate queries, `items` are evaluated after
/// grouping with scopes[0] = the group-key row and ctx.aggregates set; for
/// plain queries they are evaluated per joined row.
struct BoundSelect {
  std::vector<BoundTable> tables;
  size_t wide_width = 0;

  /// WHERE conjuncts (split on AND).
  std::vector<std::unique_ptr<ScalarExpr>> conjuncts;

  /// Grouping expressions (always columns in the supported fragment),
  /// evaluated over the wide row.
  std::vector<std::unique_ptr<ScalarExpr>> group_by;

  std::vector<AggSpec> aggregates;
  std::vector<BoundItem> items;
  std::vector<std::string> column_names;

  /// HAVING guard (may contain kAggRef nodes); evaluated per group after
  /// aggregation. Null when absent.
  std::unique_ptr<ScalarExpr> having;

  /// LEFT [OUTER] JOIN: index of the left-joined table (always the last
  /// FROM entry), or -1. Its ON conjuncts live in `left_on`; they reference
  /// the wide row. When a WHERE conjunct touches the right side the join
  /// degenerates to an inner join at bind time (left_table stays -1 and the
  /// ON conjuncts merge into `conjuncts`).
  int left_table = -1;
  std::vector<std::unique_ptr<ScalarExpr>> left_on;

  bool is_aggregate = false;

  /// Original statement text (for diagnostics / codegen banners).
  std::string sql_text;

  /// Executor-owned physical plan, built lazily on first Run and reused.
  /// Opaque here to keep the binder independent of plan internals.
  mutable std::shared_ptr<void> exec_plan;

  std::string ToString() const;
};

/// Bind `stmt` against `catalog`. `outer` is the enclosing scope chain for
/// correlated subqueries (innermost first); top-level callers pass {}.
Result<std::shared_ptr<BoundSelect>> Bind(
    const sql::SelectStmt& stmt, const Catalog& catalog,
    const std::vector<const BoundSelect*>& outer = {});

}  // namespace dbtoaster::exec

#endif  // DBTOASTER_EXEC_BINDER_H_
