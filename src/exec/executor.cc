#include "src/exec/executor.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <unordered_map>

#include "src/common/str.h"
#include "src/sql/parser.h"

namespace dbtoaster::exec {
namespace {

using sql::BinOp;

/// Typed zero for aggregate results over empty inputs.
Value TypedZero(Type t) {
  return t == Type::kDouble ? Value(0.0) : Value(int64_t{0});
}

/// Which tables (indices into BoundSelect::tables) does `e` touch at scope 0?
void CollectTables(const ScalarExpr& e, const BoundSelect& q,
                   std::vector<bool>* used, bool* has_subquery) {
  if (e.kind == ScalarExpr::Kind::kSubquery) {
    *has_subquery = true;
    return;  // correlated refs inside need the full wide row anyway
  }
  if (e.kind == ScalarExpr::Kind::kColumn && e.scope_up == 0) {
    for (size_t t = 0; t < q.tables.size(); ++t) {
      size_t lo = q.tables[t].flat_offset;
      size_t hi = lo + q.tables[t].schema->num_columns();
      if (e.offset >= lo && e.offset < hi) (*used)[t] = true;
    }
  }
  if (e.lhs) CollectTables(*e.lhs, q, used, has_subquery);
  if (e.rhs) CollectTables(*e.rhs, q, used, has_subquery);
}

struct ConjunctInfo {
  const ScalarExpr* expr;
  std::vector<bool> tables;  ///< tables referenced at scope 0
  bool has_subquery = false;
  int arity = 0;             ///< number of referenced tables
};

/// An equi-join edge t_a.col_a = t_b.col_b.
struct JoinEdge {
  size_t table_a, offset_a;
  size_t table_b, offset_b;
  const ScalarExpr* expr;
};

/// Execution plan for one BoundSelect, built once and reused.
struct Plan {
  std::vector<ConjunctInfo> conjuncts;
  std::vector<JoinEdge> edges;
  std::vector<size_t> join_order;      ///< permutation of table indices
  // conjunct assignment:
  std::vector<const ScalarExpr*> table_filters_flat;  // per join step
  std::vector<std::vector<const ScalarExpr*>> step_filters;  // after step i
  std::vector<const ScalarExpr*> residual;  ///< subquery/complex conjuncts
};

size_t TableOfOffset(const BoundSelect& q, size_t offset) {
  for (size_t t = 0; t < q.tables.size(); ++t) {
    size_t lo = q.tables[t].flat_offset;
    size_t hi = lo + q.tables[t].schema->num_columns();
    if (offset >= lo && offset < hi) return t;
  }
  assert(false && "offset outside wide row");
  return 0;
}

Plan BuildPlan(const BoundSelect& q) {
  Plan plan;
  // A LEFT JOIN's right table (always the last FROM entry) stays out of the
  // reorderable inner pipeline; its dedicated probe step runs afterwards.
  const size_t plan_tables =
      q.left_table >= 0 ? q.tables.size() - 1 : q.tables.size();
  for (const auto& c : q.conjuncts) {
    ConjunctInfo info;
    info.expr = c.get();
    info.tables.assign(q.tables.size(), false);
    CollectTables(*c, q, &info.tables, &info.has_subquery);
    info.arity = static_cast<int>(
        std::count(info.tables.begin(), info.tables.end(), true));
    plan.conjuncts.push_back(std::move(info));
  }
  // Identify equi-join edges: column = column across two distinct tables,
  // subquery-free.
  for (ConjunctInfo& info : plan.conjuncts) {
    const ScalarExpr* e = info.expr;
    if (info.has_subquery || info.arity != 2) continue;
    if (e->kind != ScalarExpr::Kind::kBinary || e->op != BinOp::kEq) continue;
    const ScalarExpr* l = e->lhs.get();
    const ScalarExpr* r = e->rhs.get();
    if (l->kind != ScalarExpr::Kind::kColumn || l->scope_up != 0) continue;
    if (r->kind != ScalarExpr::Kind::kColumn || r->scope_up != 0) continue;
    size_t ta = TableOfOffset(q, l->offset);
    size_t tb = TableOfOffset(q, r->offset);
    if (ta == tb) continue;
    plan.edges.push_back(JoinEdge{ta, l->offset, tb, r->offset, e});
  }
  // Greedy join order: start at table 0, prefer connected tables.
  std::vector<bool> placed(q.tables.size(), false);
  if (plan_tables > 0) {
    plan.join_order.push_back(0);
    placed[0] = true;
  }
  while (plan.join_order.size() < plan_tables) {
    size_t next = plan_tables;
    for (const JoinEdge& edge : plan.edges) {
      if (placed[edge.table_a] && !placed[edge.table_b]) {
        next = edge.table_b;
        break;
      }
      if (placed[edge.table_b] && !placed[edge.table_a]) {
        next = edge.table_a;
        break;
      }
    }
    if (next == plan_tables) {
      for (size_t t = 0; t < plan_tables; ++t) {
        if (!placed[t]) {
          next = t;
          break;
        }
      }
    }
    plan.join_order.push_back(next);
    placed[next] = true;
  }
  // Assign conjuncts to the earliest join step after which all their tables
  // are placed; subquery conjuncts go to the residual stage.
  std::vector<size_t> step_of_table(q.tables.size(), 0);
  for (size_t step = 0; step < plan.join_order.size(); ++step) {
    step_of_table[plan.join_order[step]] = step;
  }
  plan.step_filters.resize(std::max<size_t>(1, plan.join_order.size()));
  std::vector<bool> edge_conjunct(q.conjuncts.size(), false);
  for (size_t i = 0; i < plan.conjuncts.size(); ++i) {
    for (const JoinEdge& edge : plan.edges) {
      if (edge.expr == plan.conjuncts[i].expr) edge_conjunct[i] = true;
    }
  }
  for (size_t i = 0; i < plan.conjuncts.size(); ++i) {
    const ConjunctInfo& info = plan.conjuncts[i];
    if (info.has_subquery) {
      plan.residual.push_back(info.expr);
      continue;
    }
    // Equi-join edges are enforced by hash probing at their join step.
    if (edge_conjunct[i]) continue;
    size_t last_step = 0;
    for (size_t t = 0; t < info.tables.size(); ++t) {
      if (info.tables[t]) last_step = std::max(last_step, step_of_table[t]);
    }
    plan.step_filters[last_step].push_back(info.expr);
  }
  return plan;
}

/// Plan is built lazily per BoundSelect and stored on it so the cache's
/// lifetime is tied to the query object (no global pointer-keyed cache).
Plan& CachedPlan(const BoundSelect& q) {
  if (q.exec_plan == nullptr) {
    q.exec_plan = std::make_shared<Plan>(BuildPlan(q));
  }
  return *static_cast<Plan*>(q.exec_plan.get());
}

/// min/max accumulation uses an ordered multiset so the oracle semantics
/// match the runtime's OrderedAggMap under deletions.
struct GroupAccum {
  std::vector<Value> sums;          // SUM / AVG numerator (per agg)
  std::vector<int64_t> counts;      // COUNT / AVG denominator
  std::vector<std::map<Value, int64_t>> extremes;  // MIN / MAX multisets
};

}  // namespace

std::vector<std::pair<Row, int64_t>> QueryResult::SortedRows() const {
  std::vector<std::pair<Row, int64_t>> sorted = rows;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    const Row& x = a.first;
    const Row& y = b.first;
    for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
      int c = Value::Compare(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return x.size() < y.size();
  });
  return sorted;
}

Result<Value> QueryResult::ScalarValue() const {
  if (rows.size() != 1 || rows[0].first.size() != 1) {
    return Status::InvalidArgument(StrFormat(
        "expected a 1x1 result, got %zu rows", rows.size()));
  }
  return rows[0].first[0];
}

std::string QueryResult::ToString() const {
  std::string s = Join(column_names, ", ") + "\n";
  for (const auto& [row, mult] : SortedRows()) {
    s += RowToString(row);
    if (mult != 1) s += StrFormat(" x%lld", static_cast<long long>(mult));
    s += "\n";
  }
  return s;
}

Result<QueryResult> Executor::Run(const BoundSelect& q,
                                  const std::vector<const Row*>& outer) {
  Plan& plan = CachedPlan(q);

  // Resolve the tables up front.
  std::vector<const Table*> tables;
  for (const BoundTable& bt : q.tables) {
    const Table* t = db_->FindTable(bt.table);
    if (t == nullptr) {
      return Status::NotFound("relation not in database: " + bt.table);
    }
    tables.push_back(t);
  }

  auto subquery_eval = [this](const BoundSelect& sub, const EvalContext& ctx) {
    // Correlated evaluation: the subquery sees the enclosing rows.
    std::vector<const Row*> outer_rows(ctx.scopes.begin(), ctx.scopes.end());
    auto res = const_cast<Executor*>(this)->RunScalar(sub, outer_rows);
    // Scalar subquery failures are binder-prevented; treat any residual
    // failure as typed zero to keep evaluation total.
    return res.ok() ? res.value() : Value(int64_t{0});
  };

  auto eval = [&](const ScalarExpr& e, const Row& wide) {
    EvalContext ctx;
    ctx.scopes.push_back(&wide);
    for (const Row* r : outer) ctx.scopes.push_back(r);
    return e.Eval(ctx, subquery_eval);
  };

  // --- join pipeline over (wide row, multiplicity) ---
  std::vector<std::pair<Row, int64_t>> current;
  if (q.tables.empty()) {
    return Status::NotSupported("queries must have a FROM clause");
  }
  {
    size_t t0 = plan.join_order[0];
    const BoundTable& bt = q.tables[t0];
    for (const auto& [row, mult] : tables[t0]->rows()) {
      Row wide(q.wide_width);
      std::copy(row.begin(), row.end(), wide.begin() + bt.flat_offset);
      bool pass = true;
      for (const ScalarExpr* f : plan.step_filters[0]) {
        if (eval(*f, wide).IsZero()) {
          pass = false;
          break;
        }
      }
      if (pass) current.emplace_back(std::move(wide), mult);
    }
  }
  std::vector<bool> placed(q.tables.size(), false);
  placed[plan.join_order[0]] = true;
  for (size_t step = 1; step < plan.join_order.size(); ++step) {
    size_t tn = plan.join_order[step];
    const BoundTable& bt = q.tables[tn];
    // Hash keys: all edges connecting tn to placed tables.
    std::vector<size_t> new_offsets, old_offsets;
    for (const JoinEdge& edge : plan.edges) {
      size_t ta = edge.table_a, tb = edge.table_b;
      if (ta == tn && placed[tb]) {
        new_offsets.push_back(edge.offset_a);
        old_offsets.push_back(edge.offset_b);
      } else if (tb == tn && placed[ta]) {
        new_offsets.push_back(edge.offset_b);
        old_offsets.push_back(edge.offset_a);
      }
    }
    // Build hash table over the new table keyed by its join columns.
    std::unordered_map<Row, std::vector<std::pair<const Row*, int64_t>>,
                       RowHash, RowEq>
        build;
    for (const auto& [row, mult] : tables[tn]->rows()) {
      Row key;
      key.reserve(new_offsets.size());
      for (size_t off : new_offsets) key.push_back(row[off - bt.flat_offset]);
      build[key].emplace_back(&row, mult);
    }
    std::vector<std::pair<Row, int64_t>> next;
    for (auto& [wide, mult] : current) {
      Row key;
      key.reserve(old_offsets.size());
      for (size_t off : old_offsets) key.push_back(wide[off]);
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (const auto& [row_ptr, row_mult] : it->second) {
        Row combined = wide;
        std::copy(row_ptr->begin(), row_ptr->end(),
                  combined.begin() + bt.flat_offset);
        bool pass = true;
        for (const ScalarExpr* f : plan.step_filters[step]) {
          if (eval(*f, combined).IsZero()) {
            pass = false;
            break;
          }
        }
        if (pass) next.emplace_back(std::move(combined), mult * row_mult);
      }
    }
    current = std::move(next);
    placed[tn] = true;
  }
  // LEFT JOIN probe: match each inner-pipeline row against the right table
  // through the ON conjuncts; rows with no match are emitted once with the
  // right slice left at defaults (binder guarantees nothing reads it).
  if (q.left_table >= 0) {
    const BoundTable& bt = q.tables[static_cast<size_t>(q.left_table)];
    const Table* right = tables[static_cast<size_t>(q.left_table)];
    std::vector<std::pair<Row, int64_t>> next;
    for (auto& [wide, mult] : current) {
      int64_t matched = 0;
      // The ON conjuncts are evaluated over the combined wide row; right
      // tables are small relative to the stream in this fragment, so a scan
      // per probe keeps the oracle simple and obviously correct.
      for (const auto& [row, row_mult] : right->rows()) {
        Row combined = wide;
        std::copy(row.begin(), row.end(), combined.begin() + bt.flat_offset);
        bool pass = true;
        for (const auto& f : q.left_on) {
          if (eval(*f, combined).IsZero()) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        matched += row_mult;
        next.emplace_back(std::move(combined), mult * row_mult);
      }
      if (matched == 0) {
        next.emplace_back(wide, mult);
      }
    }
    current = std::move(next);
  }

  // Residual predicates (subqueries, cross-scope conditions).
  if (!plan.residual.empty()) {
    std::vector<std::pair<Row, int64_t>> filtered;
    filtered.reserve(current.size());
    for (auto& [wide, mult] : current) {
      bool pass = true;
      for (const ScalarExpr* f : plan.residual) {
        if (eval(*f, wide).IsZero()) {
          pass = false;
          break;
        }
      }
      if (pass) filtered.emplace_back(std::move(wide), mult);
    }
    current = std::move(filtered);
  }

  QueryResult result;
  result.column_names = q.column_names;

  if (!q.is_aggregate) {
    for (auto& [wide, mult] : current) {
      Row out;
      out.reserve(q.items.size());
      for (const BoundItem& item : q.items) {
        out.push_back(eval(*item.expr, wide));
      }
      result.rows.emplace_back(std::move(out), mult);
    }
    return result;
  }

  // --- aggregation ---
  std::unordered_map<Row, GroupAccum, RowHash, RowEq> groups;
  for (auto& [wide, mult] : current) {
    Row key;
    key.reserve(q.group_by.size());
    for (const auto& g : q.group_by) key.push_back(eval(*g, wide));
    auto [it, inserted] = groups.try_emplace(key);
    GroupAccum& acc = it->second;
    if (inserted) {
      acc.sums.resize(q.aggregates.size());
      acc.counts.assign(q.aggregates.size(), 0);
      acc.extremes.resize(q.aggregates.size());
      for (size_t a = 0; a < q.aggregates.size(); ++a) {
        acc.sums[a] = TypedZero(q.aggregates[a].result_type);
      }
    }
    for (size_t a = 0; a < q.aggregates.size(); ++a) {
      const AggSpec& spec = q.aggregates[a];
      switch (spec.kind) {
        case sql::AggKind::kCount:
          // No NULLs in this data model: COUNT(expr) == COUNT(*).
          acc.counts[a] += mult;
          break;
        case sql::AggKind::kSum:
        case sql::AggKind::kAvg: {
          Value v = eval(*spec.arg, wide);
          Value weighted = Value::Mul(v, Value(mult));
          acc.sums[a] = Value::Add(acc.sums[a], weighted);
          acc.counts[a] += mult;
          break;
        }
        case sql::AggKind::kMin:
        case sql::AggKind::kMax: {
          Value v = eval(*spec.arg, wide);
          auto& ms = acc.extremes[a];
          ms[v] += mult;
          if (ms[v] == 0) ms.erase(v);
          break;
        }
      }
    }
  }

  // Global aggregates over empty input still emit one all-zero row, matching
  // the incremental engines' map semantics (missing key == 0).
  if (groups.empty() && q.group_by.empty()) {
    GroupAccum acc;
    acc.sums.resize(q.aggregates.size());
    acc.counts.assign(q.aggregates.size(), 0);
    acc.extremes.resize(q.aggregates.size());
    for (size_t a = 0; a < q.aggregates.size(); ++a) {
      acc.sums[a] = TypedZero(q.aggregates[a].result_type);
    }
    groups.emplace(Row{}, std::move(acc));
  }

  for (auto& [key, acc] : groups) {
    // Finalize aggregate values.
    Row agg_values(q.aggregates.size());
    for (size_t a = 0; a < q.aggregates.size(); ++a) {
      const AggSpec& spec = q.aggregates[a];
      switch (spec.kind) {
        case sql::AggKind::kCount:
          agg_values[a] = Value(acc.counts[a]);
          break;
        case sql::AggKind::kSum:
          agg_values[a] = acc.sums[a];
          break;
        case sql::AggKind::kAvg:
          agg_values[a] = acc.counts[a] == 0
                              ? Value(0.0)
                              : Value::Div(acc.sums[a], Value(acc.counts[a]));
          break;
        case sql::AggKind::kMin:
        case sql::AggKind::kMax: {
          const auto& ms = acc.extremes[a];
          if (ms.empty()) {
            agg_values[a] = TypedZero(spec.result_type);
          } else {
            agg_values[a] = spec.kind == sql::AggKind::kMin
                                ? ms.begin()->first
                                : ms.rbegin()->first;
          }
          break;
        }
      }
    }
    EvalContext ctx;
    ctx.scopes.push_back(&key);
    for (const Row* r : outer) ctx.scopes.push_back(r);
    ctx.aggregates = &agg_values;
    // HAVING: post-aggregation guard.
    if (q.having != nullptr &&
        q.having->Eval(ctx, subquery_eval).IsZero()) {
      continue;
    }
    Row out;
    out.reserve(q.items.size());
    for (const BoundItem& item : q.items) {
      out.push_back(item.expr->Eval(ctx, subquery_eval));
    }
    result.rows.emplace_back(std::move(out), 1);
  }
  return result;
}

Result<Value> Executor::RunScalar(const BoundSelect& q,
                                  const std::vector<const Row*>& outer) {
  DBT_ASSIGN_OR_RETURN(QueryResult r, Run(q, outer));
  if (r.rows.empty()) {
    return Value(int64_t{0});
  }
  if (r.rows.size() != 1 || r.rows[0].first.size() != 1) {
    return Status::Internal("scalar subquery produced a non-scalar result");
  }
  return r.rows[0].first[0];
}

Result<QueryResult> Executor::Query(const std::string& sql, const Catalog& cat,
                                    const Database& db) {
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                       sql::ParseSelect(sql));
  DBT_ASSIGN_OR_RETURN(std::shared_ptr<BoundSelect> bound, Bind(*stmt, cat));
  Executor ex(&db);
  return ex.Run(*bound);
}

}  // namespace dbtoaster::exec
