#include "src/exec/scalar.h"

#include <cassert>
#include <functional>

#include "src/common/str.h"

namespace dbtoaster::exec {

Value ScalarExpr::Eval(
    const EvalContext& ctx,
    const std::function<Value(const BoundSelect&, const EvalContext&)>&
        subquery_eval) const {
  switch (kind) {
    case Kind::kConst:
      return constant;
    case Kind::kColumn: {
      assert(scope_up >= 0 &&
             static_cast<size_t>(scope_up) < ctx.scopes.size());
      const Row* row = ctx.scopes[static_cast<size_t>(scope_up)];
      assert(row != nullptr && offset < row->size());
      return (*row)[offset];
    }
    case Kind::kAggRef:
      assert(ctx.aggregates != nullptr && agg_index < ctx.aggregates->size());
      return (*ctx.aggregates)[agg_index];
    case Kind::kUnaryMinus:
      return Value::Neg(lhs->Eval(ctx, subquery_eval));
    case Kind::kNot: {
      Value v = lhs->Eval(ctx, subquery_eval);
      return Value(v.IsZero() ? int64_t{1} : int64_t{0});
    }
    case Kind::kSubquery:
      return subquery_eval(*subquery, ctx);
    case Kind::kFunc: {
      Value a = lhs->Eval(ctx, subquery_eval);
      const int64_t days = a.is_numeric() ? a.AsInt() : 0;
      switch (func) {
        case sql::FuncKind::kExtractYear: return Value(ExtractYear(days));
        case sql::FuncKind::kExtractMonth: return Value(ExtractMonth(days));
        case sql::FuncKind::kExtractDay: return Value(ExtractDay(days));
      }
      return Value(int64_t{0});
    }
    case Kind::kBinary: {
      using sql::BinOp;
      // Short-circuit logical ops.
      if (op == BinOp::kAnd) {
        Value l = lhs->Eval(ctx, subquery_eval);
        if (l.IsZero()) return Value(int64_t{0});
        Value r = rhs->Eval(ctx, subquery_eval);
        return Value(r.IsZero() ? int64_t{0} : int64_t{1});
      }
      if (op == BinOp::kOr) {
        Value l = lhs->Eval(ctx, subquery_eval);
        if (!l.IsZero()) return Value(int64_t{1});
        Value r = rhs->Eval(ctx, subquery_eval);
        return Value(r.IsZero() ? int64_t{0} : int64_t{1});
      }
      Value l = lhs->Eval(ctx, subquery_eval);
      Value r = rhs->Eval(ctx, subquery_eval);
      switch (op) {
        case BinOp::kAdd: return Value::Add(l, r);
        case BinOp::kSub: return Value::Sub(l, r);
        case BinOp::kMul: return Value::Mul(l, r);
        case BinOp::kDiv: return Value::Div(l, r);
        case BinOp::kEq: return Value(l == r);
        case BinOp::kNeq: return Value(l != r);
        case BinOp::kLt: return Value(l < r);
        case BinOp::kLe: return Value(l <= r);
        case BinOp::kGt: return Value(l > r);
        case BinOp::kGe: return Value(l >= r);
        case BinOp::kLike:
          return Value(l.is_string() && r.is_string() &&
                       LikeMatch(l.AsString(), r.AsString()));
        case BinOp::kNotLike:
          return Value(l.is_string() && r.is_string() &&
                       !LikeMatch(l.AsString(), r.AsString()));
        default:
          assert(false && "unhandled binary op");
          return Value();
      }
    }
  }
  assert(false && "unhandled scalar kind");
  return Value();
}

bool ScalarExpr::IsSubqueryFree() const {
  if (kind == Kind::kSubquery) return false;
  if (lhs && !lhs->IsSubqueryFree()) return false;
  if (rhs && !rhs->IsSubqueryFree()) return false;
  return true;
}

std::string ScalarExpr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kColumn:
      if (scope_up > 0) {
        return debug_name + "^" + std::to_string(scope_up);
      }
      return debug_name;
    case Kind::kAggRef:
      return "agg#" + std::to_string(agg_index);
    case Kind::kUnaryMinus:
      return "(-" + lhs->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs->ToString() + ")";
    case Kind::kSubquery:
      return "(<subquery>)";
    case Kind::kFunc:
      return std::string(sql::FuncKindName(func)) + lhs->ToString() + ")";
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + sql::BinOpName(op) + " " +
             rhs->ToString() + ")";
  }
  return "?";
}

std::unique_ptr<ScalarExpr> ScalarExpr::Const(Value v) {
  auto e = std::make_unique<ScalarExpr>();
  e->kind = Kind::kConst;
  e->type = v.is_string() ? Type::kString
                          : (v.is_double() ? Type::kDouble : Type::kInt);
  e->constant = std::move(v);
  return e;
}

std::unique_ptr<ScalarExpr> ScalarExpr::Column(int scope_up, size_t offset,
                                               Type type, std::string name) {
  auto e = std::make_unique<ScalarExpr>();
  e->kind = Kind::kColumn;
  e->scope_up = scope_up;
  e->offset = offset;
  e->type = type;
  e->debug_name = std::move(name);
  return e;
}

std::unique_ptr<ScalarExpr> ScalarExpr::Binary(sql::BinOp op, Type type,
                                               std::unique_ptr<ScalarExpr> l,
                                               std::unique_ptr<ScalarExpr> r) {
  auto e = std::make_unique<ScalarExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->type = type;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

}  // namespace dbtoaster::exec
