// Typed, bound scalar expressions evaluated by the relational executor.
//
// The binder (binder.h) compiles sql::Expr trees into ScalarExpr trees with
// column references resolved to (scope depth, flat offset) pairs, so that
// evaluation is interpretation over indices rather than name lookup — this is
// the "query plan interpreter" architecture the paper's compiled code is
// benchmarked against, implemented honestly.
#ifndef DBTOASTER_EXEC_SCALAR_H_
#define DBTOASTER_EXEC_SCALAR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/sql/ast.h"

namespace dbtoaster::exec {

struct BoundSelect;  // binder.h

/// Evaluation context: one wide row per query-nesting level.
/// scopes[0] is the innermost (current) query's joined row.
struct EvalContext {
  std::vector<const Row*> scopes;

  /// Values of the current group's aggregates (set during final projection
  /// of an aggregate query; indexed by ScalarExpr::agg_index).
  const Row* aggregates = nullptr;
};

/// Bound scalar expression.
struct ScalarExpr {
  enum class Kind : uint8_t {
    kConst,
    kColumn,     ///< scopes[scope_up][offset]
    kBinary,
    kUnaryMinus,
    kNot,
    kAggRef,     ///< aggregates[agg_index] (only valid post-aggregation)
    kSubquery,   ///< scalar subquery, evaluated via Subquery callback
    kFunc,       ///< built-in scalar function (EXTRACT); argument in lhs
  };

  Kind kind;
  Type type = Type::kInt;
  sql::FuncKind func = sql::FuncKind::kExtractYear;  // kFunc

  Value constant;                     // kConst
  int scope_up = 0;                   // kColumn: how many scopes up
  size_t offset = 0;                  // kColumn: flat offset in the wide row
  std::string debug_name;             // kColumn: "alias.COL" for printing
  sql::BinOp op = sql::BinOp::kAdd;   // kBinary
  std::unique_ptr<ScalarExpr> lhs;    // kBinary / kUnaryMinus / kNot
  std::unique_ptr<ScalarExpr> rhs;    // kBinary
  size_t agg_index = 0;               // kAggRef
  std::shared_ptr<BoundSelect> subquery;  // kSubquery (shared: plans cache it)

  /// Evaluate against `ctx`. `subquery_eval` is invoked for kSubquery nodes;
  /// it must return the scalar value of the subquery under the given context.
  /// Deterministic and total (div-by-zero yields 0.0, see Value::Div).
  Value Eval(const EvalContext& ctx,
             const std::function<Value(const BoundSelect&, const EvalContext&)>&
                 subquery_eval) const;

  /// True if no kSubquery node appears in the tree.
  bool IsSubqueryFree() const;

  std::string ToString() const;

  static std::unique_ptr<ScalarExpr> Const(Value v);
  static std::unique_ptr<ScalarExpr> Column(int scope_up, size_t offset,
                                            Type type, std::string name);
  static std::unique_ptr<ScalarExpr> Binary(sql::BinOp op, Type type,
                                            std::unique_ptr<ScalarExpr> l,
                                            std::unique_ptr<ScalarExpr> r);
};

}  // namespace dbtoaster::exec

#endif  // DBTOASTER_EXEC_SCALAR_H_
