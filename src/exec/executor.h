// Interpreted query execution over Database tables.
//
// This is the classical "query plan interpreter" architecture the paper
// compares against: plans are built once per query (greedy equi-join
// ordering, pushed-down single-table filters, hash joins, hash aggregation)
// and interpreted per evaluation. It serves three roles in this repository:
//   1. the full re-evaluation baseline (ReevalEngine),
//   2. the correctness oracle for the delta compiler's property tests,
//   3. the evaluator for map initialisers (init-on-first-access).
#ifndef DBTOASTER_EXEC_EXECUTOR_H_
#define DBTOASTER_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/exec/binder.h"
#include "src/storage/table.h"

namespace dbtoaster::exec {

/// Result of a query: named columns plus (row, multiplicity) entries.
/// Aggregate queries emit multiplicity-1 rows (one per group).
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<std::pair<Row, int64_t>> rows;

  /// Rows sorted lexicographically — stable representation for comparisons.
  std::vector<std::pair<Row, int64_t>> SortedRows() const;

  /// For single-row single-column results (global aggregates).
  Result<Value> ScalarValue() const;

  std::string ToString() const;
};

/// Executes bound queries against a database. Stateless apart from the
/// database pointer; safe to reuse across queries and evaluations.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Evaluate a bound query. `outer_scopes` supplies wide rows of enclosing
  /// queries for correlated subqueries (innermost first); top-level callers
  /// pass nothing.
  Result<QueryResult> Run(const BoundSelect& query,
                          const std::vector<const Row*>& outer_scopes = {});

  /// Evaluate a scalar subquery to a single value (typed zero when empty).
  Result<Value> RunScalar(const BoundSelect& query,
                          const std::vector<const Row*>& outer_scopes);

  /// Parse + bind + run in one step (convenience for tests and the ad-hoc
  /// snapshot interface).
  static Result<QueryResult> Query(const std::string& sql, const Catalog& cat,
                                   const Database& db);

 private:
  const Database* db_;
};

}  // namespace dbtoaster::exec

#endif  // DBTOASTER_EXEC_EXECUTOR_H_
