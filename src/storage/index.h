// Hash index over a column subset of a Table's multiset, maintained
// incrementally. Used by the first-order IVM baseline to evaluate delta
// queries with index lookups instead of scans.
#ifndef DBTOASTER_STORAGE_INDEX_H_
#define DBTOASTER_STORAGE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/storage/table.h"

namespace dbtoaster {

/// Secondary hash index: key columns -> multiset of full rows. Both levels
/// are open-addressing tables; the per-key multisets draw from the index's
/// shared slab so retired probe arrays are recycled across buckets.
class HashIndex {
 public:
  /// `key_columns` are positions into the indexed relation's rows.
  explicit HashIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)),
        slab_(new dbt::Slab),
        buckets_(slab_.get()) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Mirror a base-table change into the index.
  void Apply(const Row& row, int64_t mult);

  /// All (row, multiplicity) entries matching `key`, or nullptr.
  const Multiset* Lookup(const Row& key) const;

  Row ExtractKey(const Row& row) const;

  size_t NumKeys() const { return buckets_.size(); }

  size_t MemoryBytes() const;

 private:
  std::vector<size_t> key_columns_;
  std::unique_ptr<dbt::Slab> slab_;  // stable address shared with buckets
  dbt::FlatMap<Row, Multiset, RowHash, RowEq> buckets_;
};

}  // namespace dbtoaster

#endif  // DBTOASTER_STORAGE_INDEX_H_
