// Hash index over a column subset of a Table's multiset, maintained
// incrementally. Used by the first-order IVM baseline to evaluate delta
// queries with index lookups instead of scans.
#ifndef DBTOASTER_STORAGE_INDEX_H_
#define DBTOASTER_STORAGE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"

namespace dbtoaster {

/// Secondary hash index: key columns -> multiset of full rows.
class HashIndex {
 public:
  /// `key_columns` are positions into the indexed relation's rows.
  explicit HashIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Mirror a base-table change into the index.
  void Apply(const Row& row, int64_t mult);

  /// All (row, multiplicity) entries matching `key`, or nullptr.
  const std::unordered_map<Row, int64_t, RowHash, RowEq>* Lookup(
      const Row& key) const;

  Row ExtractKey(const Row& row) const;

  size_t NumKeys() const { return buckets_.size(); }

  size_t MemoryBytes() const;

 private:
  std::vector<size_t> key_columns_;
  std::unordered_map<Row, std::unordered_map<Row, int64_t, RowHash, RowEq>,
                     RowHash, RowEq>
      buckets_;
};

}  // namespace dbtoaster

#endif  // DBTOASTER_STORAGE_INDEX_H_
