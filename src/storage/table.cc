#include "src/storage/table.h"

#include "src/common/str.h"

namespace dbtoaster {

void Table::Apply(const Row& row, int64_t mult) {
  if (mult == 0) return;
  auto [i, inserted] = rows_.try_emplace(row, mult);
  if (inserted) return;
  int64_t& m = rows_.value_at(i);
  m += mult;
  if (m == 0) rows_.erase_at(i);
}

int64_t Table::Multiplicity(const Row& row) const {
  const int64_t* m = rows_.find(row);
  return m == nullptr ? 0 : *m;
}

int64_t Table::Cardinality() const {
  int64_t total = 0;
  for (const auto& [row, mult] : rows_) total += mult;
  return total;
}

size_t Table::MemoryBytes() const {
  // Slab-resident probe/slot arrays plus per-row heap payloads.
  size_t bytes = sizeof(Table) + rows_.pool_bytes();
  for (const auto& [row, mult] : rows_) {
    bytes += row.capacity() * sizeof(Value);
    for (const Value& v : row) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kInsert:
      return "insert";
    case EventKind::kDelete:
      return "delete";
  }
  return "?";
}

std::string Event::ToString() const {
  return StrFormat("%s %s%s", EventKindName(kind), relation.c_str(),
                   RowToString(tuple).c_str());
}

Database::Database(const Catalog& catalog) : catalog_(catalog) {
  for (const Schema& s : catalog_.relations()) {
    by_name_[ToUpper(s.name())] = tables_.size();
    tables_.emplace_back(s);
  }
}

Table* Database::FindTable(const std::string& name) {
  auto it = by_name_.find(ToUpper(name));
  return it == by_name_.end() ? nullptr : &tables_[it->second];
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(ToUpper(name));
  return it == by_name_.end() ? nullptr : &tables_[it->second];
}

Status Database::Apply(EventKind kind, const std::string& relation,
                       const Row& tuple) {
  Table* t = FindTable(relation);
  if (t == nullptr) {
    return Status::NotFound("unknown relation in event: " + relation);
  }
  if (tuple.size() != t->schema().num_columns()) {
    return Status::InvalidArgument(
        StrFormat("event arity %zu does not match schema %s", tuple.size(),
                  t->schema().ToString().c_str()));
  }
  t->Apply(tuple, kind == EventKind::kInsert ? 1 : -1);
  return Status::OK();
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const Table& t : tables_) bytes += t.MemoryBytes();
  return bytes;
}

void Database::Clear() {
  for (Table& t : tables_) t.Clear();
}

}  // namespace dbtoaster
