#include "src/storage/index.h"

namespace dbtoaster {

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Apply(const Row& row, int64_t mult) {
  if (mult == 0) return;
  Row key = ExtractKey(row);
  auto& bucket = buckets_[key];
  auto it = bucket.find(row);
  if (it == bucket.end()) {
    bucket.emplace(row, mult);
  } else {
    it->second += mult;
    if (it->second == 0) bucket.erase(it);
  }
  if (bucket.empty()) buckets_.erase(key);
}

const std::unordered_map<Row, int64_t, RowHash, RowEq>* HashIndex::Lookup(
    const Row& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

size_t HashIndex::MemoryBytes() const {
  size_t bytes = sizeof(HashIndex);
  for (const auto& [key, bucket] : buckets_) {
    bytes += key.capacity() * sizeof(Value) + 16;
    for (const auto& [row, mult] : bucket) {
      bytes += row.capacity() * sizeof(Value) + sizeof(int64_t) + 16;
    }
  }
  return bytes;
}

}  // namespace dbtoaster
