#include "src/storage/index.h"

namespace dbtoaster {

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Apply(const Row& row, int64_t mult) {
  if (mult == 0) return;
  Row key = ExtractKey(row);
  auto [bi, binserted] =
      buckets_.try_emplace_with(key, [&] { return Multiset(slab_.get()); });
  Multiset& bucket = buckets_.value_at(bi);
  auto [ri, rinserted] = bucket.try_emplace(row, mult);
  if (!rinserted) {
    int64_t& m = bucket.value_at(ri);
    m += mult;
    if (m == 0) bucket.erase_at(ri);
  }
  if (bucket.empty()) buckets_.erase_at(bi);
}

const Multiset* HashIndex::Lookup(const Row& key) const {
  return buckets_.find(key);
}

size_t HashIndex::MemoryBytes() const {
  size_t bytes =
      sizeof(HashIndex) + sizeof(dbt::Slab) + slab_->reserved_bytes();
  for (const auto& [key, bucket] : buckets_) {
    bytes += key.capacity() * sizeof(Value);
    for (const auto& [row, mult] : bucket) {
      bytes += row.capacity() * sizeof(Value);
    }
  }
  return bytes;
}

}  // namespace dbtoaster
