// In-memory storage for base relations.
//
// The paper's data model (§2): a database is a set of relations, each subject
// to an arbitrary sequence of inserts, updates and deletes, with arbitrary
// tuple lifetimes. We therefore store relations as generalized multisets:
// a hash map from tuple to multiplicity. Updates are modelled as
// delete+insert pairs, exactly as in the paper.
#ifndef DBTOASTER_STORAGE_TABLE_H_
#define DBTOASTER_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/codegen/dbt_flat_map.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace dbtoaster {

/// A multiset of rows: tuple -> multiplicity (> 0), stored in the shared
/// open-addressing table (pooled slots, tombstone-free deletion).
using Multiset = dbt::FlatMap<Row, int64_t, RowHash, RowEq>;

/// One stored relation: schema + multiset contents.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Add `mult` copies of `row` (mult may be negative for deletion).
  /// Entries reaching multiplicity 0 are erased. Multiplicities may go
  /// negative transiently if a delete precedes its insert; this mirrors the
  /// ring semantics and keeps the engine total.
  void Apply(const Row& row, int64_t mult);

  void Insert(const Row& row) { Apply(row, 1); }
  void Delete(const Row& row) { Apply(row, -1); }

  int64_t Multiplicity(const Row& row) const;

  /// Number of distinct rows.
  size_t NumDistinct() const { return rows_.size(); }

  /// Total multiplicity (sum over entries).
  int64_t Cardinality() const;

  const Multiset& rows() const { return rows_; }

  void Clear() { rows_.clear(); }

  /// Rough retained-bytes estimate (used by the memory bench).
  size_t MemoryBytes() const;

 private:
  Schema schema_;
  Multiset rows_;
};

/// Stream event kinds supported by the data model.
enum class EventKind : uint8_t { kInsert, kDelete };

const char* EventKindName(EventKind k);

/// One delta on a base relation.
struct Event {
  EventKind kind;
  std::string relation;
  Row tuple;

  std::string ToString() const;

  static Event Insert(std::string relation, Row tuple) {
    return Event{EventKind::kInsert, std::move(relation), std::move(tuple)};
  }
  static Event Delete(std::string relation, Row tuple) {
    return Event{EventKind::kDelete, std::move(relation), std::move(tuple)};
  }
};

/// A named collection of tables; the "main-memory database snapshot" of the
/// paper's architecture diagram.
class Database {
 public:
  explicit Database(const Catalog& catalog);

  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Apply one event; fails if the relation is unknown or the tuple arity
  /// does not match the schema.
  Status Apply(const Event& event) {
    return Apply(event.kind, event.relation, event.tuple);
  }

  /// Same, without requiring an Event to be materialized (the batched
  /// ingestion path applies whole vectors of tuples per relation).
  Status Apply(EventKind kind, const std::string& relation, const Row& tuple);

  const Catalog& catalog() const { return catalog_; }

  size_t MemoryBytes() const;

  void Clear();

 private:
  Catalog catalog_;
  std::vector<Table> tables_;
  std::unordered_map<std::string, size_t> by_name_;  // upper-cased
};

}  // namespace dbtoaster

#endif  // DBTOASTER_STORAGE_TABLE_H_
