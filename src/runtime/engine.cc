#include "src/runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "src/common/str.h"

namespace dbtoaster::runtime {

using compiler::MapDecl;
using compiler::Statement;

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::string ProfileStats::ToString() const {
  std::string s = StrFormat("events processed: %llu (total %.3f ms)\n",
                            static_cast<unsigned long long>(events),
                            static_cast<double>(event_nanos) / 1e6);
  for (const auto& [rendering, st] : by_statement) {
    s += StrFormat("  %8llu exec  %10llu updates  %10.3f ms   %s\n",
                   static_cast<unsigned long long>(st.executions),
                   static_cast<unsigned long long>(st.updates),
                   static_cast<double>(st.nanos) / 1e6, rendering.c_str());
  }
  return s;
}

Engine::Engine(compiler::Program program)
    : program_(std::move(program)), db_(program_.catalog), eval_(this) {
  for (const MapDecl& decl : program_.maps) {
    decls_[decl.name] = &decl;
    if (decl.is_extreme) {
      extremes_.emplace(decl.name, ExtremeMap(decl.name, decl.key_names.size(),
                                              decl.value_type));
    } else {
      maps_.emplace(decl.name, ValueMap(decl.name, decl.key_names.size(),
                                        decl.value_type));
    }
  }
}

const ValueMap* Engine::value_map(const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : &it->second;
}

const ExtremeMap* Engine::extreme_map(const std::string& name) const {
  auto it = extremes_.find(name);
  return it == extremes_.end() ? nullptr : &it->second;
}

size_t Engine::MapMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [name, m] : maps_) bytes += m.MemoryBytes();
  for (const auto& [name, m] : extremes_) bytes += m.MemoryBytes();
  return bytes;
}

size_t Engine::TotalMapEntries() const {
  size_t n = 0;
  for (const auto& [name, m] : maps_) n += m.size();
  for (const auto& [name, m] : extremes_) n += m.size();
  return n;
}

Result<Value> Engine::ReadMap(const std::string& map, const Row& key,
                              bool store_init) {
  auto it = maps_.find(map);
  if (it == maps_.end()) {
    return Status::NotFound("unknown map: " + map);
  }
  ValueMap& vm = it->second;
  if (vm.Contains(key)) return vm.Get(key);
  const MapDecl* decl = decls_.at(map);
  if (!decl->needs_init || decl->definition == nullptr || in_init_) {
    return vm.TypedZero();
  }
  // Init-on-first-access: evaluate the definition over the base tables with
  // the canonical keys bound to the requested key.
  in_init_ = true;
  Bindings env;
  for (size_t i = 0; i < decl->key_names.size(); ++i) {
    env[decl->key_names[i]] = key[i];
  }
  auto value = eval_.EvalScalar(decl->definition, env, /*store_init=*/false);
  in_init_ = false;
  if (!value.ok()) return value.status();
  Value v = value.value();
  if (vm.value_type() == Type::kDouble && v.is_int()) {
    v = Value(v.AsDouble());
  }
  if (store_init) {
    ApplyMapSet(&vm, key, v);
  }
  return v;
}

const ValueMap* Engine::FindMap(const std::string& map) const {
  return value_map(map);
}

void Engine::ApplyMapAdd(ValueMap* target, const Row& key,
                         const Value& delta) {
  target->Add(key, delta);
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

void Engine::ApplyMapSet(ValueMap* target, const Row& key, Value value) {
  target->Set(key, std::move(value));
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

const std::unordered_set<Row, RowHash, RowEq>* Engine::LookupMapSlice(
    const std::string& map, const std::vector<size_t>& positions,
    const Row& key) {
  auto mit = maps_.find(map);
  if (mit == maps_.end()) return nullptr;
  auto& indexes = slice_indexes_[map];
  SliceIndex* idx = nullptr;
  for (SliceIndex& existing : indexes) {
    if (existing.positions == positions) {
      idx = &existing;
      break;
    }
  }
  if (idx == nullptr) {
    // Build lazily from the current live entries.
    indexes.push_back(SliceIndex{positions, {}});
    idx = &indexes.back();
    for (const auto& [full_key, value] : mit->second.entries()) {
      idx->Insert(full_key);
    }
  }
  auto bit = idx->buckets.find(key);
  if (bit == idx->buckets.end()) {
    static const std::unordered_set<Row, RowHash, RowEq> kEmpty;
    return &kEmpty;
  }
  return &bit->second;
}

const Table* Engine::FindRelation(const std::string& rel) const {
  return db_.FindTable(rel);
}

Status Engine::RunDeltaStatement(
    const Statement& stmt, const Bindings& env,
    std::vector<std::tuple<ValueMap*, Row, Value>>* pending) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("delta statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;

  // LHS-driven iteration: bind the un-derivable target keys from the live
  // key set of the target map.
  std::vector<Bindings> envs;
  if (stmt.lhs_iterate.empty()) {
    envs.push_back(env);
  } else {
    std::set<Row, bool (*)(const Row&, const Row&)> distinct(
        +[](const Row& a, const Row& b) {
          if (a.size() != b.size()) return a.size() < b.size();
          for (size_t i = 0; i < a.size(); ++i) {
            int c = Value::Compare(a[i], b[i]);
            if (c != 0) return c < 0;
          }
          return false;
        });
    for (const auto& [key, value] : target->entries()) {
      Row sub;
      sub.reserve(stmt.lhs_iterate.size());
      for (size_t pos : stmt.lhs_iterate) sub.push_back(key[pos]);
      distinct.insert(std::move(sub));
    }
    for (const Row& sub : distinct) {
      Bindings e2 = env;
      for (size_t i = 0; i < stmt.lhs_iterate.size(); ++i) {
        e2[stmt.target_keys[stmt.lhs_iterate[i]]] = sub[i];
      }
      envs.push_back(std::move(e2));
    }
  }

  size_t updates = 0;
  for (const Bindings& e2 : envs) {
    DBT_ASSIGN_OR_RETURN(Keyed result,
                         eval_.Eval(stmt.rhs, e2, /*store_init=*/false));
    for (auto& [row, value] : result.entries) {
      // Build the target key from the environment and the result row.
      Row key;
      key.reserve(stmt.target_keys.size());
      bool ok = true;
      for (const std::string& kv : stmt.target_keys) {
        auto eit = e2.find(kv);
        if (eit != e2.end()) {
          key.push_back(eit->second);
          continue;
        }
        auto pos = std::find(result.vars.begin(), result.vars.end(), kv);
        if (pos == result.vars.end()) {
          ok = false;
          break;
        }
        key.push_back(row[static_cast<size_t>(pos - result.vars.begin())]);
      }
      if (!ok) {
        return Status::Internal("statement cannot bind target key: " +
                                stmt.ToString());
      }
      pending->emplace_back(target, std::move(key), std::move(value));
      ++updates;
    }
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, updates);
  return Status::OK();
}

Status Engine::RunReevalStatement(const Statement& stmt, const Bindings& env) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("reeval statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;
  DBT_ASSIGN_OR_RETURN(Keyed result,
                       eval_.Eval(stmt.rhs, env, /*store_init=*/true));
  target->Clear();
  slice_indexes_.erase(stmt.target);  // rebuilt lazily on next slice access
  if (result.vars.empty()) {
    Value sum = target->TypedZero();
    for (const auto& [row, v] : result.entries) sum = Value::Add(sum, v);
    ApplyMapSet(target, {}, sum);
    if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
    return Status::OK();
  }
  for (auto& [row, v] : result.entries) ApplyMapAdd(target, row, v);
  if (trace_ != nullptr) trace_->OnStatement(stmt, result.entries.size());
  return Status::OK();
}

Status Engine::RunExtremeStatement(const Statement& stmt,
                                   const Bindings& env) {
  auto it = extremes_.find(stmt.target);
  if (it == extremes_.end()) {
    return Status::Internal("extreme statement on unknown map: " +
                            stmt.target);
  }
  ExtremeMap* target = &it->second;
  if (stmt.extreme_guard != nullptr) {
    DBT_ASSIGN_OR_RETURN(Value g, eval_.EvalScalar(stmt.extreme_guard, env,
                                                   /*store_init=*/false));
    if (g.IsZero()) {
      if (trace_ != nullptr) trace_->OnStatement(stmt, 0);
      return Status::OK();
    }
  }
  Row key;
  key.reserve(stmt.target_keys.size());
  for (const std::string& kv : stmt.target_keys) {
    auto eit = env.find(kv);
    if (eit == env.end()) {
      return Status::Internal("unbound extreme key variable: " + kv);
    }
    key.push_back(eit->second);
  }
  DBT_ASSIGN_OR_RETURN(Value v, eval_.EvalTerm(stmt.extreme_value, env,
                                               /*store_init=*/false));
  if (stmt.extreme_sign > 0) {
    target->Add(key, v);
  } else {
    target->Remove(key, v);
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
  return Status::OK();
}

Status Engine::OnEvent(const Event& event) {
  uint64_t start = NowNanos();
  if (trace_ != nullptr) trace_->OnEvent(event);

  const compiler::Trigger* trigger =
      program_.FindTrigger(event.relation, event.kind);

  Bindings env;
  if (trigger != nullptr) {
    if (trigger->params.size() != event.tuple.size()) {
      return Status::InvalidArgument(
          StrFormat("event arity %zu does not match trigger %s",
                    event.tuple.size(), trigger->Signature().c_str()));
    }
    for (size_t i = 0; i < trigger->params.size(); ++i) {
      env[trigger->params[i]] = event.tuple[i];
    }
  }

  // Phase 1: evaluate all delta statements against the pre-state.
  std::vector<std::tuple<ValueMap*, Row, Value>> pending;
  if (trigger != nullptr) {
    for (const Statement& stmt : trigger->statements) {
      if (stmt.kind != Statement::Kind::kDelta) continue;
      uint64_t t0 = NowNanos();
      size_t before = pending.size();
      DBT_RETURN_IF_ERROR(RunDeltaStatement(stmt, env, &pending));
      auto& st = profile_.by_statement[stmt.ToString()];
      st.rendering = stmt.ToString();
      st.executions++;
      st.updates += pending.size() - before;
      st.nanos += NowNanos() - t0;
    }
  }

  // Phase 2: apply the event to the base tables, then the map deltas.
  DBT_RETURN_IF_ERROR(db_.Apply(event));
  for (auto& [target, key, value] : pending) {
    if (trace_ != nullptr) {
      Value old_value = target->Get(key);
      ApplyMapAdd(target, key, value);
      trace_->OnMapUpdate(target->name(), key, old_value, target->Get(key));
    } else {
      ApplyMapAdd(target, key, value);
    }
  }

  if (trigger != nullptr) {
    // Phase 2b: extreme (MIN/MAX multiset) statements over the post-state.
    for (const Statement& stmt : trigger->statements) {
      if (stmt.kind != Statement::Kind::kExtreme) continue;
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunExtremeStatement(stmt, env));
      auto& st = profile_.by_statement[stmt.ToString()];
      st.rendering = stmt.ToString();
      st.executions++;
      st.nanos += NowNanos() - t0;
    }
    // Phase 3: hybrid re-evaluation statements over the post-state. They
    // depend only on the maintained maps and base tables, never on the event
    // parameters — an empty environment also prevents accidental capture of
    // query variables that share a name with trigger parameters.
    Bindings empty_env;
    for (const Statement& stmt : trigger->statements) {
      if (stmt.kind != Statement::Kind::kReeval) continue;
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunReevalStatement(stmt, empty_env));
      auto& st = profile_.by_statement[stmt.ToString()];
      st.rendering = stmt.ToString();
      st.executions++;
      st.nanos += NowNanos() - t0;
    }
  }

  profile_.events++;
  profile_.event_nanos += NowNanos() - start;
  return Status::OK();
}

Result<exec::QueryResult> Engine::View(const std::string& view_name) {
  const compiler::ViewSpec* view = program_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("unknown view: " + view_name);
  }
  exec::QueryResult out;
  // The view's columns are exactly the query's SELECT items (group keys
  // appear here iff the query selected them), matching SQL output schema.
  for (const compiler::ViewColumn& c : view->columns) {
    out.column_names.push_back(c.name);
  }

  auto emit_row = [&](const Bindings& env, const Row& key) -> Status {
    Row row;
    row.reserve(view->columns.size());
    for (const compiler::ViewColumn& c : view->columns) {
      if (c.kind == compiler::ViewColumn::Kind::kTerm) {
        DBT_ASSIGN_OR_RETURN(Value v,
                             eval_.EvalTerm(c.value, env, /*store_init=*/true));
        row.push_back(std::move(v));
      } else {
        const ExtremeMap* em = extreme_map(c.extreme_map);
        if (em == nullptr) {
          return Status::Internal("missing extreme map: " + c.extreme_map);
        }
        const compiler::MapDecl* decl = decls_.at(c.extreme_map);
        auto v = decl->extreme_kind == sql::AggKind::kMin ? em->Min(key)
                                                          : em->Max(key);
        row.push_back(v.has_value()
                          ? *v
                          : (c.type == Type::kDouble ? Value(0.0)
                                                     : Value(int64_t{0})));
      }
    }
    out.rows.emplace_back(std::move(row), 1);
    return Status::OK();
  };

  if (view->key_vars.empty()) {
    Bindings env;
    DBT_RETURN_IF_ERROR(emit_row(env, {}));
    return out;
  }
  const ValueMap* domain = value_map(view->domain_map);
  if (domain == nullptr) {
    return Status::Internal("missing domain map for view: " + view_name);
  }
  for (const auto& [key, count] : domain->entries()) {
    if (count.is_numeric() && count.IsZero()) continue;
    Bindings env;
    for (size_t i = 0; i < view->key_vars.size(); ++i) {
      env[view->key_vars[i]] = key[i];
    }
    DBT_RETURN_IF_ERROR(emit_row(env, key));
  }
  return out;
}

Result<Value> Engine::ViewScalar(const std::string& view_name) {
  DBT_ASSIGN_OR_RETURN(exec::QueryResult r, View(view_name));
  if (r.rows.size() != 1 || r.rows[0].first.size() != 1) {
    return Status::InvalidArgument("view is not single-valued: " + view_name);
  }
  return r.rows[0].first[0];
}

Result<exec::QueryResult> Engine::AdhocQuery(const std::string& sql) {
  return exec::Executor::Query(sql, program_.catalog, db_);
}

}  // namespace dbtoaster::runtime
