#include "src/runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <set>

#include "src/codegen/dbt_select.h"
#include "src/common/str.h"
#include "src/compiler/tir_verify.h"

namespace dbtoaster::runtime {

using compiler::MapDecl;
using compiler::Statement;

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Evaluate one extracted guard against a row's lane value — the
/// interpreter mirror of the dbt_select.h kernels. Value comparisons
/// promote across numeric types exactly like the scalar evaluator, so a
/// skipped row is precisely one whose statement RHS multiplies to zero
/// (ValueMap::Add drops zero deltas, making the skip unobservable).
bool PredMatches(const tir::PredSpec& ps, const Value& v) {
  switch (ps.kind) {
    case tir::PredSpec::Kind::kCmp:
      switch (ps.op) {
        case sql::BinOp::kEq: return v == ps.values[0];
        case sql::BinOp::kNeq: return v != ps.values[0];
        case sql::BinOp::kLt: return v < ps.values[0];
        case sql::BinOp::kLe: return v <= ps.values[0];
        case sql::BinOp::kGt: return v > ps.values[0];
        case sql::BinOp::kGe: return v >= ps.values[0];
        default: return true;  // extraction emits comparisons only
      }
    case tir::PredSpec::Kind::kRange:
      return ps.values[0] <= v && v < ps.values[1];
    case tir::PredSpec::Kind::kIn:
      for (const Value& c : ps.values) {
        if (v == c) return true;
      }
      return false;
  }
  return true;
}

/// Selection classes over a trigger's active delta statements: statements
/// with equal extracted pred lists share one survivor index vector,
/// mirroring the generated selection-vector prologue.
struct SelectionClasses {
  std::vector<const std::vector<tir::PredSpec>*> preds;  ///< per class
  std::vector<size_t> cls;  ///< per statement; SIZE_MAX = no guards

  /// Assign each statement (by position in `stmts`) to a pred class.
  explicit SelectionClasses(const std::vector<const tir::Stmt*>& stmts) {
    cls.assign(stmts.size(), SIZE_MAX);
    for (size_t d = 0; d < stmts.size(); ++d) {
      const std::vector<tir::PredSpec>& p = stmts[d]->preds;
      if (p.empty()) continue;
      for (size_t c = 0; c < preds.size(); ++c) {
        if (preds[c]->size() != p.size()) continue;
        bool same = true;
        for (size_t i = 0; i < p.size(); ++i) {
          if (!tir::PredSpecEquals((*preds[c])[i], p[i])) {
            same = false;
            break;
          }
        }
        if (same) {
          cls[d] = c;
          break;
        }
      }
      if (cls[d] == SIZE_MAX) {
        cls[d] = preds.size();
        preds.push_back(&p);
      }
    }
  }

  /// Survivor indices per class over `rows` (row indices into `tuples`).
  std::vector<std::vector<uint32_t>> Select(
      const Row* tuples, const std::vector<uint32_t>& rows) const {
    std::vector<std::vector<uint32_t>> sel(preds.size());
    for (size_t c = 0; c < preds.size(); ++c) {
      for (uint32_t i : rows) {
        bool pass = true;
        for (const tir::PredSpec& ps : *preds[c]) {
          if (!PredMatches(ps, tuples[i][ps.lane])) {
            pass = false;
            break;
          }
        }
        if (pass) sel[c].push_back(i);
      }
    }
    return sel;
  }
};
}  // namespace

std::string ProfileStats::ToString() const {
  std::string s = StrFormat("events processed: %llu (total %.3f ms)\n",
                            static_cast<unsigned long long>(events),
                            static_cast<double>(event_nanos) / 1e6);
  if (sharded_groups > 0) {
    s += StrFormat("  sharded groups: %llu\n",
                   static_cast<unsigned long long>(sharded_groups));
  }
  for (const auto& [rendering, st] : by_statement) {
    s += StrFormat("  %8llu exec  %10llu updates  %10.3f ms   %s\n",
                   static_cast<unsigned long long>(st.executions),
                   static_cast<unsigned long long>(st.updates),
                   static_cast<double>(st.nanos) / 1e6, rendering.c_str());
  }
  return s;
}

Engine::Engine(compiler::Program program)
    : program_(std::move(program)),
      tir_(tir::Lower(program_)),
      db_(program_.catalog),
      eval_(this) {
#ifndef NDEBUG
  // Debug builds refuse to interpret an unverified module; release builds
  // trust the dbtc pipeline gate.
  {
    Status verified = tir::VerifyOrError(tir_, "runtime::Engine");
    if (!verified.ok()) {
      std::fprintf(stderr, "%s\n", verified.ToString().c_str());
      assert(false && "tir module failed static verification");
    }
  }
#endif
  // Arm the boundary validator with the catalog: malformed batches bounce
  // with a structured Status before any trigger runs.
  RegisterIngestCatalog(program_.catalog);
  for (const MapDecl& decl : program_.maps) {
    decls_[decl.name] = &decl;
    if (decl.is_extreme) {
      extremes_.emplace(decl.name, ExtremeMap(decl.name, decl.key_names.size(),
                                              decl.value_type));
    } else {
      maps_.emplace(decl.name, ValueMap(decl.name, decl.key_names.size(),
                                        decl.value_type));
    }
  }
}

const ValueMap* Engine::value_map(const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : &it->second;
}

const ExtremeMap* Engine::extreme_map(const std::string& name) const {
  auto it = extremes_.find(name);
  return it == extremes_.end() ? nullptr : &it->second;
}

size_t Engine::MapMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [name, m] : maps_) bytes += m.MemoryBytes();
  for (const auto& [name, m] : extremes_) bytes += m.MemoryBytes();
  return bytes;
}

size_t Engine::TotalMapEntries() const {
  size_t n = 0;
  for (const auto& [name, m] : maps_) n += m.size();
  for (const auto& [name, m] : extremes_) n += m.size();
  return n;
}

size_t Engine::StateBytes() const { return MapMemoryBytes() + db_.MemoryBytes(); }

Result<Value> Engine::ReadMap(const std::string& map, const Row& key,
                              bool store_init) {
  auto it = maps_.find(map);
  if (it == maps_.end()) {
    return Status::NotFound("unknown map: " + map);
  }
  ValueMap& vm = it->second;
  if (vm.Contains(key)) return vm.Get(key);
  const MapDecl* decl = decls_.at(map);
  if (!decl->needs_init || decl->definition == nullptr || in_init_) {
    return vm.TypedZero();
  }
  // Init-on-first-access: evaluate the definition over the base tables with
  // the canonical keys bound to the requested key.
  in_init_ = true;
  Bindings env;
  for (size_t i = 0; i < decl->key_names.size(); ++i) {
    env[decl->key_names[i]] = key[i];
  }
  auto value = eval_.EvalScalar(decl->definition, env, /*store_init=*/false);
  in_init_ = false;
  if (!value.ok()) return value.status();
  Value v = value.value();
  if (vm.value_type() == Type::kDouble && v.is_int()) {
    v = Value(v.AsDouble());
  }
  if (store_init) {
    ApplyMapSet(&vm, key, v);
  }
  return v;
}

const ValueMap* Engine::FindMap(const std::string& map) const {
  return value_map(map);
}

void Engine::ApplyMapAdd(ValueMap* target, const Row& key,
                         const Value& delta) {
  target->Add(key, delta);
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

void Engine::ApplyMapSet(ValueMap* target, const Row& key, Value value) {
  target->Set(key, std::move(value));
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

namespace {
const std::unordered_set<Row, RowHash, RowEq>* SliceBuckets(
    const std::unordered_map<Row, std::unordered_set<Row, RowHash, RowEq>,
                             RowHash, RowEq>& buckets,
    const Row& key) {
  auto bit = buckets.find(key);
  if (bit == buckets.end()) {
    static const std::unordered_set<Row, RowHash, RowEq> kEmpty;
    return &kEmpty;
  }
  return &bit->second;
}
}  // namespace

const std::unordered_set<Row, RowHash, RowEq>* Engine::LookupMapSlice(
    const std::string& map, const std::vector<size_t>& positions,
    const Row& key) {
  auto mit = maps_.find(map);
  if (mit == maps_.end()) return nullptr;
  if (parallel_region_) {
    // Shard workers: lookups share the lock; a missing index upgrades to
    // exclusive and builds once. Returned bucket sets live in stable
    // unordered_map nodes, so they survive later index additions.
    {
      std::shared_lock<std::shared_mutex> read_lock(slice_mu_);
      auto it = slice_indexes_.find(map);
      if (it != slice_indexes_.end()) {
        for (SliceIndex& existing : it->second) {
          if (existing.positions == positions) {
            return SliceBuckets(existing.buckets, key);
          }
        }
      }
    }
    std::unique_lock<std::shared_mutex> write_lock(slice_mu_);
    auto& indexes = slice_indexes_[map];
    for (SliceIndex& existing : indexes) {
      if (existing.positions == positions) {
        return SliceBuckets(existing.buckets, key);
      }
    }
    indexes.push_back(SliceIndex{positions, {}});
    SliceIndex* idx = &indexes.back();
    for (const auto& [full_key, value] : mit->second.entries()) {
      idx->Insert(full_key);
    }
    return SliceBuckets(idx->buckets, key);
  }
  auto& indexes = slice_indexes_[map];
  SliceIndex* idx = nullptr;
  for (SliceIndex& existing : indexes) {
    if (existing.positions == positions) {
      idx = &existing;
      break;
    }
  }
  if (idx == nullptr) {
    // Build lazily from the current live entries.
    indexes.push_back(SliceIndex{positions, {}});
    idx = &indexes.back();
    for (const auto& [full_key, value] : mit->second.entries()) {
      idx->Insert(full_key);
    }
  }
  return SliceBuckets(idx->buckets, key);
}

const Table* Engine::FindRelation(const std::string& rel) const {
  return db_.FindTable(rel);
}

Status Engine::RunDeltaStatement(
    const Statement& stmt, const Bindings& env,
    std::vector<std::tuple<ValueMap*, Row, Value>>* pending) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("delta statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;

  // LHS-driven iteration: bind the un-derivable target keys from the live
  // key set of the target map.
  std::vector<Bindings> envs;
  if (stmt.lhs_iterate.empty()) {
    envs.push_back(env);
  } else {
    std::set<Row, bool (*)(const Row&, const Row&)> distinct(
        +[](const Row& a, const Row& b) {
          if (a.size() != b.size()) return a.size() < b.size();
          for (size_t i = 0; i < a.size(); ++i) {
            int c = Value::Compare(a[i], b[i]);
            if (c != 0) return c < 0;
          }
          return false;
        });
    for (const auto& [key, value] : target->entries()) {
      Row sub;
      sub.reserve(stmt.lhs_iterate.size());
      for (size_t pos : stmt.lhs_iterate) sub.push_back(key[pos]);
      distinct.insert(std::move(sub));
    }
    for (const Row& sub : distinct) {
      Bindings e2 = env;
      for (size_t i = 0; i < stmt.lhs_iterate.size(); ++i) {
        e2[stmt.target_keys[stmt.lhs_iterate[i]]] = sub[i];
      }
      envs.push_back(std::move(e2));
    }
  }

  size_t updates = 0;
  for (const Bindings& e2 : envs) {
    DBT_ASSIGN_OR_RETURN(Keyed result,
                         eval_.Eval(stmt.rhs, e2, /*store_init=*/false));
    for (auto& [row, value] : result.entries) {
      // Build the target key from the environment and the result row.
      Row key;
      key.reserve(stmt.target_keys.size());
      bool ok = true;
      for (const std::string& kv : stmt.target_keys) {
        auto eit = e2.find(kv);
        if (eit != e2.end()) {
          key.push_back(eit->second);
          continue;
        }
        auto pos = std::find(result.vars.begin(), result.vars.end(), kv);
        if (pos == result.vars.end()) {
          ok = false;
          break;
        }
        key.push_back(row[static_cast<size_t>(pos - result.vars.begin())]);
      }
      if (!ok) {
        return Status::Internal("statement cannot bind target key: " +
                                stmt.ToString());
      }
      pending->emplace_back(target, std::move(key), std::move(value));
      ++updates;
    }
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, updates);
  return Status::OK();
}

Status Engine::RunReevalStatement(const Statement& stmt, const Bindings& env) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("reeval statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;
  DBT_ASSIGN_OR_RETURN(Keyed result,
                       eval_.Eval(stmt.rhs, env, /*store_init=*/true));
  target->Clear();
  slice_indexes_.erase(stmt.target);  // rebuilt lazily on next slice access
  if (result.vars.empty()) {
    Value sum = target->TypedZero();
    for (const auto& [row, v] : result.entries) sum = Value::Add(sum, v);
    ApplyMapSet(target, {}, sum);
    if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
    return Status::OK();
  }
  for (auto& [row, v] : result.entries) ApplyMapAdd(target, row, v);
  if (trace_ != nullptr) trace_->OnStatement(stmt, result.entries.size());
  return Status::OK();
}

Status Engine::RunExtremeStatement(const Statement& stmt,
                                   const Bindings& env, int sign) {
  auto it = extremes_.find(stmt.target);
  if (it == extremes_.end()) {
    return Status::Internal("extreme statement on unknown map: " +
                            stmt.target);
  }
  ExtremeMap* target = &it->second;
  if (stmt.extreme_guard != nullptr) {
    DBT_ASSIGN_OR_RETURN(Value g, eval_.EvalScalar(stmt.extreme_guard, env,
                                                   /*store_init=*/false));
    if (g.IsZero()) {
      if (trace_ != nullptr) trace_->OnStatement(stmt, 0);
      return Status::OK();
    }
  }
  Row key;
  key.reserve(stmt.target_keys.size());
  for (const std::string& kv : stmt.target_keys) {
    auto eit = env.find(kv);
    if (eit == env.end()) {
      return Status::Internal("unbound extreme key variable: " + kv);
    }
    key.push_back(eit->second);
  }
  DBT_ASSIGN_OR_RETURN(Value v, eval_.EvalTerm(stmt.extreme_value, env,
                                               /*store_init=*/false));
  if (sign > 0) {
    target->Add(key, v);
  } else {
    target->Remove(key, v);
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
  return Status::OK();
}

void Engine::Defer(const Statement* stmt, const std::string* rendering,
                   DeferredReevals* deferred) {
  // Dedup by target: the compiler emits one kReeval statement per
  // (relation, op) trigger for the same hybrid target, all with identical
  // RHS — one refresh per batch covers them all.
  for (const auto& [s, r] : *deferred) {
    if (s->target == stmt->target) return;
  }
  deferred->emplace_back(stmt, rendering);
}

Status Engine::FlushDeferredReevals(DeferredReevals* deferred) {
  Bindings empty_env;
  uint64_t start = NowNanos();
  for (const auto& [stmt, rendering] : *deferred) {
    uint64_t t0 = NowNanos();
    DBT_RETURN_IF_ERROR(RunReevalStatement(*stmt, empty_env));
    auto& st = profile_.by_statement[*rendering];
    st.rendering = *rendering;
    st.executions++;
    st.nanos += NowNanos() - t0;
  }
  if (!deferred->empty()) profile_.event_nanos += NowNanos() - start;
  deferred->clear();
  return Status::OK();
}

Status Engine::CheckGroupArity(const tir::Trigger& trigger, const Row* tuples,
                               size_t count) const {
  for (size_t e = 0; e < count; ++e) {
    if (trigger.params.size() != tuples[e].size()) {
      return Status::InvalidArgument(StrFormat(
          "event arity %zu does not match trigger %s", tuples[e].size(),
          trigger.signature.c_str()));
    }
  }
  return Status::OK();
}

std::vector<ProfileStats::StatementStats*> Engine::ResolveStats(
    const tir::Trigger& trigger) {
  std::vector<ProfileStats::StatementStats*> stats(trigger.stmts.size());
  for (size_t si = 0; si < trigger.stmts.size(); ++si) {
    ProfileStats::StatementStats& st =
        profile_.by_statement[trigger.stmts[si].rendering];
    st.rendering = trigger.stmts[si].rendering;
    stats[si] = &st;
  }
  return stats;
}

Status Engine::ApplyGroupSequential(const tir::Trigger& trigger,
                                    EventKind kind, const Row* tuples,
                                    size_t count, DeferredReevals* deferred) {
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(trigger);
  const int sign = kind == EventKind::kInsert ? +1 : -1;

  Bindings env;
  env[tir::kSignVar] = Value(static_cast<int64_t>(sign));
  for (size_t e = 0; e < count; ++e) {
    const Row& tuple = tuples[e];
    if (trace_ != nullptr) {
      trace_->OnEvent(Event{kind, trigger.relation, tuple});
    }
    if (trigger.params.size() != tuple.size()) {
      return Status::InvalidArgument(
          StrFormat("event arity %zu does not match trigger %s", tuple.size(),
                    trigger.signature.c_str()));
    }
    for (size_t i = 0; i < trigger.params.size(); ++i) {
      env[trigger.params[i].name] = tuple[i];
    }

    // Phase 1: evaluate all delta statements against the pre-state.
    pending_.clear();
    for (size_t si = 0; si < trigger.stmts.size(); ++si) {
      const tir::Stmt& s = trigger.stmts[si];
      if (s.stmt.kind != Statement::Kind::kDelta || !StmtActive(s, kind)) {
        continue;
      }
      uint64_t t0 = NowNanos();
      size_t before = pending_.size();
      DBT_RETURN_IF_ERROR(RunDeltaStatement(s.stmt, env, &pending_));
      stats[si]->executions++;
      stats[si]->updates += pending_.size() - before;
      stats[si]->nanos += NowNanos() - t0;
    }

    // Phase 2: apply the event to the base tables, then the map deltas.
    DBT_RETURN_IF_ERROR(db_.Apply(kind, trigger.relation, tuple));
    for (auto& [target, key, value] : pending_) {
      if (trace_ != nullptr) {
        Value old_value = target->Get(key);
        ApplyMapAdd(target, key, value);
        trace_->OnMapUpdate(target->name(), key, old_value, target->Get(key));
      } else {
        ApplyMapAdd(target, key, value);
      }
    }

    // Phase 2b: extreme (MIN/MAX multiset) statements over the post-state.
    for (size_t si = 0; si < trigger.stmts.size(); ++si) {
      const tir::Stmt& s = trigger.stmts[si];
      if (s.stmt.kind != Statement::Kind::kExtreme || !StmtActive(s, kind)) {
        continue;
      }
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunExtremeStatement(
          s.stmt, env, s.extreme_runtime_sign ? sign : s.stmt.extreme_sign));
      stats[si]->executions++;
      stats[si]->nanos += NowNanos() - t0;
    }

    // Phase 3: hybrid re-evaluation statements over the post-state. They
    // depend only on the maintained maps and base tables, never on the
    // event parameters — an empty environment also prevents accidental
    // capture of query variables that share a name with trigger parameters.
    // Statements whose target nothing reads are deferred to the batch end.
    Bindings empty_env;
    for (size_t si = 0; si < trigger.stmts.size(); ++si) {
      const tir::Stmt& s = trigger.stmts[si];
      if (s.stmt.kind != Statement::Kind::kReeval || !StmtActive(s, kind)) {
        continue;
      }
      if (s.reeval_deferrable && trace_ == nullptr) {
        Defer(&s.stmt, &s.rendering, deferred);
        continue;
      }
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunReevalStatement(s.stmt, empty_env));
      stats[si]->executions++;
      stats[si]->nanos += NowNanos() - t0;
    }
  }
  return Status::OK();
}

Status Engine::ApplyGroupVectorized(const tir::Trigger& trigger,
                                    EventKind kind, const Row* tuples,
                                    size_t count, DeferredReevals* deferred) {
  DBT_RETURN_IF_ERROR(CheckGroupArity(trigger, tuples, count));
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(trigger);
  const int sign = kind == EventKind::kInsert ? +1 : -1;

  // Phase 1: each delta statement runs once over the vector of bindings,
  // all against the group pre-state (safe per the trigger's IR analysis).
  // Statically-zero statements are dropped up front; extracted guards run
  // once per distinct pred list as a selection prologue (the interpreter
  // mirror of the generated vec_<R> handlers), and each guarded statement
  // then visits only its surviving rows.
  pending_.clear();
  Bindings env;
  env[tir::kSignVar] = Value(static_cast<int64_t>(sign));
  std::vector<const tir::Stmt*> deltas;
  std::vector<size_t> delta_si;
  for (size_t si = 0; si < trigger.stmts.size(); ++si) {
    const tir::Stmt& s = trigger.stmts[si];
    if (s.stmt.kind != Statement::Kind::kDelta || !StmtActive(s, kind) ||
        s.statically_zero) {
      continue;
    }
    deltas.push_back(&s);
    delta_si.push_back(si);
  }
  std::vector<uint32_t> all(count);
  for (size_t e = 0; e < count; ++e) all[e] = static_cast<uint32_t>(e);
  const bool use_sel = dbt::SelectionEnabled();
  SelectionClasses classes(deltas);
  std::vector<std::vector<uint32_t>> sel;
  if (use_sel) sel = classes.Select(tuples, all);

  for (size_t d = 0; d < deltas.size(); ++d) {
    const tir::Stmt& s = *deltas[d];
    const size_t si = delta_si[d];
    uint64_t t0 = NowNanos();
    size_t before = pending_.size();
    const std::vector<uint32_t>& rows =
        use_sel && classes.cls[d] != SIZE_MAX ? sel[classes.cls[d]] : all;
    for (uint32_t e : rows) {
      for (size_t i = 0; i < trigger.params.size(); ++i) {
        env[trigger.params[i].name] = tuples[e][i];
      }
      DBT_RETURN_IF_ERROR(RunDeltaStatement(s.stmt, env, &pending_));
    }
    stats[si]->executions += rows.size();
    stats[si]->updates += pending_.size() - before;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 2: flush the whole group — base tables first, then the map
  // deltas (additive, so application order within the group is free).
  for (size_t e = 0; e < count; ++e) {
    DBT_RETURN_IF_ERROR(db_.Apply(kind, trigger.relation, tuples[e]));
  }
  for (auto& [target, key, value] : pending_) ApplyMapAdd(target, key, value);

  // Phase 2b: extreme statements (parameter-only, order-independent).
  for (size_t si = 0; si < trigger.stmts.size(); ++si) {
    const tir::Stmt& s = trigger.stmts[si];
    if (s.stmt.kind != Statement::Kind::kExtreme || !StmtActive(s, kind)) {
      continue;
    }
    uint64_t t0 = NowNanos();
    for (size_t e = 0; e < count; ++e) {
      for (size_t i = 0; i < trigger.params.size(); ++i) {
        env[trigger.params[i].name] = tuples[e][i];
      }
      DBT_RETURN_IF_ERROR(RunExtremeStatement(
          s.stmt, env, s.extreme_runtime_sign ? sign : s.stmt.extreme_sign));
    }
    stats[si]->executions += count;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 3: re-evaluation statements are all deferrable here (that is part
  // of being vectorizable); they run once at the end of the batch.
  for (const tir::Stmt& s : trigger.stmts) {
    if (s.stmt.kind != Statement::Kind::kReeval || !StmtActive(s, kind)) {
      continue;
    }
    Defer(&s.stmt, &s.rendering, deferred);
  }
  return Status::OK();
}

Status Engine::ApplyGroupSharded(const tir::Trigger& trigger, EventKind kind,
                                 const Row* tuples, size_t count,
                                 DeferredReevals* deferred) {
  DBT_RETURN_IF_ERROR(CheckGroupArity(trigger, tuples, count));
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(trigger);
  const int sign = kind == EventKind::kInsert ? +1 : -1;

  std::vector<size_t> delta_stmts;
  std::vector<const tir::Stmt*> deltas;
  for (size_t si = 0; si < trigger.stmts.size(); ++si) {
    if (trigger.stmts[si].stmt.kind == Statement::Kind::kDelta &&
        StmtActive(trigger.stmts[si], kind) &&
        !trigger.stmts[si].statically_zero) {
      delta_stmts.push_back(si);
      deltas.push_back(&trigger.stmts[si]);
    }
  }

  profile_.sharded_groups++;
  const ShardPlan plan =
      ShardPlan::Partition(tuples, count, trigger.partition_cols);

  // Phase 1 fan-out: each worker evaluates its shards' bindings against the
  // shared pre-state (reads only; parallel_safe guarantees no initializer
  // evaluation) into private per-statement pending vectors.
  struct ShardOut {
    std::vector<std::vector<std::tuple<ValueMap*, Row, Value>>> pending;
    std::vector<uint64_t> nanos;
    Status status = Status::OK();
  };
  std::array<ShardOut, kNumShards> outs;
  for (ShardOut& out : outs) {
    out.pending.resize(delta_stmts.size());
    out.nanos.assign(delta_stmts.size(), 0);
  }

  const bool use_sel = dbt::SelectionEnabled();
  const SelectionClasses classes(deltas);
  parallel_region_ = true;
  shard_pool().RunShards(kNumShards, [&](size_t s) {
    ShardOut& out = outs[s];
    Bindings env;
    env[tir::kSignVar] = Value(static_cast<int64_t>(sign));
    // Selection runs after the shard split: guards filter this worker's
    // private sub-range only, so per-shard work (and therefore the merged
    // state) is independent of the pool's thread count.
    std::vector<std::vector<uint32_t>> sel;
    if (use_sel) sel = classes.Select(tuples, plan.shards[s]);
    for (size_t d = 0; d < delta_stmts.size(); ++d) {
      const Statement& stmt = trigger.stmts[delta_stmts[d]].stmt;
      const std::vector<uint32_t>& rows =
          use_sel && classes.cls[d] != SIZE_MAX ? sel[classes.cls[d]]
                                                : plan.shards[s];
      const uint64_t t0 = NowNanos();
      for (uint32_t i : rows) {
        const Row& tuple = tuples[i];
        for (size_t p = 0; p < trigger.params.size(); ++p) {
          env[trigger.params[p].name] = tuple[p];
        }
        Status st = RunDeltaStatement(stmt, env, &out.pending[d]);
        if (!st.ok()) {
          out.status = std::move(st);
          out.nanos[d] += NowNanos() - t0;
          return;
        }
      }
      out.nanos[d] += NowNanos() - t0;
    }
  });
  parallel_region_ = false;
  for (const ShardOut& out : outs) {
    if (!out.status.ok()) return out.status;
  }

  for (size_t d = 0; d < delta_stmts.size(); ++d) {
    ProfileStats::StatementStats* st = stats[delta_stmts[d]];
    st->executions += count;
    for (const ShardOut& out : outs) {
      st->updates += out.pending[d].size();
      st->nanos += out.nanos[d];  // CPU time, summed across workers
    }
  }

  // Merge: base tables in group order, then pendings statement-major in
  // logical-shard order — fixed by the plan, so the application sequence
  // (and therefore every map, byte for byte) is identical at any thread
  // count, including the inline threads=1 run.
  for (size_t e = 0; e < count; ++e) {
    DBT_RETURN_IF_ERROR(db_.Apply(kind, trigger.relation, tuples[e]));
  }
  for (size_t d = 0; d < delta_stmts.size(); ++d) {
    for (ShardOut& out : outs) {
      for (auto& [target, key, value] : out.pending[d]) {
        ApplyMapAdd(target, key, value);
      }
    }
  }

  // Phase 2b: extreme statements (parameter-only), in group order.
  Bindings env;
  env[tir::kSignVar] = Value(static_cast<int64_t>(sign));
  for (size_t si = 0; si < trigger.stmts.size(); ++si) {
    const tir::Stmt& s = trigger.stmts[si];
    if (s.stmt.kind != Statement::Kind::kExtreme || !StmtActive(s, kind)) {
      continue;
    }
    uint64_t t0 = NowNanos();
    for (size_t e = 0; e < count; ++e) {
      for (size_t p = 0; p < trigger.params.size(); ++p) {
        env[trigger.params[p].name] = tuples[e][p];
      }
      DBT_RETURN_IF_ERROR(RunExtremeStatement(
          s.stmt, env, s.extreme_runtime_sign ? sign : s.stmt.extreme_sign));
    }
    stats[si]->executions += count;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 3: deferrable re-evaluations, once at batch end.
  for (const tir::Stmt& s : trigger.stmts) {
    if (s.stmt.kind != Statement::Kind::kReeval || !StmtActive(s, kind)) {
      continue;
    }
    Defer(&s.stmt, &s.rendering, deferred);
  }
  return Status::OK();
}

Status Engine::ApplyGroup(const std::string& relation, EventKind kind,
                          const Row* tuples, size_t count,
                          DeferredReevals* deferred) {
  if (count == 0) return Status::OK();
  uint64_t start = NowNanos();
  const tir::Trigger* trigger = tir_.FindTrigger(relation);
  const bool has_side =
      trigger != nullptr && (kind == EventKind::kInsert ? trigger->has_insert
                                                        : trigger->has_delete);

  Status status = Status::OK();
  if (!has_side) {
    // No trigger for this (relation, op): the event still updates the
    // base-table snapshot.
    for (size_t e = 0; e < count; ++e) {
      if (trace_ != nullptr) trace_->OnEvent(Event{kind, relation, tuples[e]});
      status = db_.Apply(kind, relation, tuples[e]);
      if (!status.ok()) break;
    }
  } else if (trace_ == nullptr && trigger->vectorizable && count > 1) {
    // The sharded path is chosen by group size alone — never by the pool's
    // thread count — so a batch sequence produces identical state at every
    // thread count (threads=1 runs the same shard order inline).
    if (trigger->parallel_safe && count >= dbt::kShardBatchCutoff) {
      status = ApplyGroupSharded(*trigger, kind, tuples, count, deferred);
    } else {
      status = ApplyGroupVectorized(*trigger, kind, tuples, count, deferred);
    }
  } else {
    status = ApplyGroupSequential(*trigger, kind, tuples, count, deferred);
  }

  if (!status.ok()) return status;
  profile_.events += count;
  profile_.event_nanos += NowNanos() - start;
  return Status::OK();
}

Status Engine::DoApplyBatch(EventBatch&& batch) {
  DeferredReevals deferred;
  for (const EventBatch::Group& g : batch.groups()) {
    DBT_RETURN_IF_ERROR(
        ApplyGroup(g.relation, g.kind, g.rows_view().data(), g.rows,
                   &deferred));
  }
  return FlushDeferredReevals(&deferred);
}

Status Engine::DoOnEvent(const Event& event) {
  DeferredReevals deferred;
  DBT_RETURN_IF_ERROR(
      ApplyGroup(event.relation, event.kind, &event.tuple, 1, &deferred));
  return FlushDeferredReevals(&deferred);
}

Status Engine::SaveState(dbt::Ser* out) const {
  // Base tables by relation name, in catalog order.
  const Catalog& catalog = program_.catalog;
  out->u64(catalog.relations().size());
  for (const Schema& schema : catalog.relations()) {
    out->str(schema.name());
    const Table* table = db_.FindTable(schema.name());
    if (table == nullptr) {
      return Status::Internal("save: missing table " + schema.name());
    }
    out->u64(table->rows().size());
    for (const auto& [row, mult] : table->rows()) {
      WriteRow(*out, row);
      out->i64(mult);
    }
  }
  // Aggregate maps by name (std::map order is deterministic).
  out->u64(maps_.size());
  for (const auto& [name, m] : maps_) {
    out->str(name);
    out->u64(m.size());
    for (const auto& [key, value] : m.entries()) {
      WriteRow(*out, key);
      WriteValue(*out, value);
    }
  }
  // MIN/MAX multisets: per group the full signed count histogram (negative
  // "debt" counts are part of the state and must round-trip).
  out->u64(extremes_.size());
  for (const auto& [name, m] : extremes_) {
    out->str(name);
    out->u64(m.groups().size());
    for (const auto& [key, group] : m.groups()) {
      WriteRow(*out, key);
      out->u64(group.counts.size());
      for (const auto& [value, count] : group.counts) {
        WriteValue(*out, value);
        out->i64(count);
      }
    }
  }
  return Status::OK();
}

Status Engine::LoadState(dbt::Deser* in) {
  db_.Clear();
  for (auto& [name, m] : maps_) m.Clear();
  for (auto& [name, m] : extremes_) m.Clear();
  // Slice indexes are derived from the maps; drop them and let the first
  // slice access rebuild from restored state.
  slice_indexes_.clear();

  const uint64_t ntables = in->u64();
  for (uint64_t t = 0; t < ntables && in->ok(); ++t) {
    const std::string name = in->str();
    Table* table = db_.FindTable(name);
    if (table == nullptr) {
      return Status::ParseError("restore: snapshot names unknown relation '" +
                                name + "'");
    }
    const uint64_t nrows = in->u64();
    for (uint64_t i = 0; i < nrows && in->ok(); ++i) {
      Row row;
      if (!ReadRow(*in, &row)) {
        return Status::ParseError("restore: corrupt row in table " + name);
      }
      table->Apply(row, in->i64());
    }
  }

  const uint64_t nmaps = in->u64();
  for (uint64_t t = 0; t < nmaps && in->ok(); ++t) {
    const std::string name = in->str();
    auto it = maps_.find(name);
    if (it == maps_.end()) {
      return Status::ParseError("restore: snapshot names unknown map '" +
                                name + "'");
    }
    const uint64_t n = in->u64();
    for (uint64_t i = 0; i < n && in->ok(); ++i) {
      Row key;
      Value value;
      if (!ReadRow(*in, &key) || !ReadValue(*in, &value)) {
        return Status::ParseError("restore: corrupt entry in map " + name);
      }
      it->second.Set(key, std::move(value));
    }
  }

  const uint64_t nextremes = in->u64();
  for (uint64_t t = 0; t < nextremes && in->ok(); ++t) {
    const std::string name = in->str();
    auto it = extremes_.find(name);
    if (it == extremes_.end()) {
      return Status::ParseError(
          "restore: snapshot names unknown extreme map '" + name + "'");
    }
    const uint64_t ngroups = in->u64();
    for (uint64_t g = 0; g < ngroups && in->ok(); ++g) {
      Row key;
      if (!ReadRow(*in, &key)) {
        return Status::ParseError("restore: corrupt key in extreme map " +
                                  name);
      }
      const uint64_t nvalues = in->u64();
      for (uint64_t v = 0; v < nvalues && in->ok(); ++v) {
        Value value;
        if (!ReadValue(*in, &value)) {
          return Status::ParseError("restore: corrupt value in extreme map " +
                                    name);
        }
        it->second.AddCount(key, value, in->i64());
      }
    }
  }

  if (!in->ok()) return Status::ParseError("restore: truncated snapshot");
  return Status::OK();
}

std::vector<std::string> Engine::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(program_.views.size());
  for (const compiler::ViewSpec& v : program_.views) names.push_back(v.name);
  return names;
}

Result<exec::QueryResult> Engine::View(const std::string& view_name) {
  const compiler::ViewSpec* view = program_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("unknown view: " + view_name);
  }
  exec::QueryResult out;
  // The view's columns are exactly the query's SELECT items (group keys
  // appear here iff the query selected them), matching SQL output schema.
  for (const compiler::ViewColumn& c : view->columns) {
    out.column_names.push_back(c.name);
  }

  auto emit_row = [&](const Bindings& env, const Row& key) -> Status {
    Row row;
    row.reserve(view->columns.size());
    for (const compiler::ViewColumn& c : view->columns) {
      if (c.kind == compiler::ViewColumn::Kind::kTerm) {
        DBT_ASSIGN_OR_RETURN(Value v,
                             eval_.EvalTerm(c.value, env, /*store_init=*/true));
        row.push_back(std::move(v));
      } else {
        const ExtremeMap* em = extreme_map(c.extreme_map);
        if (em == nullptr) {
          return Status::Internal("missing extreme map: " + c.extreme_map);
        }
        const compiler::MapDecl* decl = decls_.at(c.extreme_map);
        auto v = decl->extreme_kind == sql::AggKind::kMin ? em->Min(key)
                                                          : em->Max(key);
        row.push_back(v.has_value()
                          ? *v
                          : (c.type == Type::kDouble ? Value(0.0)
                                                     : Value(int64_t{0})));
      }
    }
    out.rows.emplace_back(std::move(row), 1);
    return Status::OK();
  };

  // HAVING: post-aggregation guard over the materialized group maps.
  auto passes_having = [&](const Bindings& env) -> Result<bool> {
    if (view->having == nullptr) return true;
    DBT_ASSIGN_OR_RETURN(
        Value v, eval_.EvalScalar(view->having, env, /*store_init=*/true));
    return !(v.is_numeric() && v.IsZero());
  };

  if (view->key_vars.empty()) {
    Bindings env;
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (pass) {
      DBT_RETURN_IF_ERROR(emit_row(env, {}));
    }
    return out;
  }
  const ValueMap* domain = value_map(view->domain_map);
  if (domain == nullptr) {
    return Status::Internal("missing domain map for view: " + view_name);
  }
  for (const auto& [key, count] : domain->entries()) {
    if (count.is_numeric() && count.IsZero()) continue;
    Bindings env;
    for (size_t i = 0; i < view->key_vars.size(); ++i) {
      env[view->key_vars[i]] = key[i];
    }
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (!pass) continue;
    DBT_RETURN_IF_ERROR(emit_row(env, key));
  }
  return out;
}

Result<exec::QueryResult> Engine::AdhocQuery(const std::string& sql) {
  return exec::Executor::Query(sql, program_.catalog, db_);
}

}  // namespace dbtoaster::runtime
