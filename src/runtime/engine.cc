#include "src/runtime/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

#include "src/common/str.h"

namespace dbtoaster::runtime {

using compiler::MapDecl;
using compiler::Statement;
using compiler::Trigger;

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::string ProfileStats::ToString() const {
  std::string s = StrFormat("events processed: %llu (total %.3f ms)\n",
                            static_cast<unsigned long long>(events),
                            static_cast<double>(event_nanos) / 1e6);
  if (sharded_groups > 0) {
    s += StrFormat("  sharded groups: %llu\n",
                   static_cast<unsigned long long>(sharded_groups));
  }
  for (const auto& [rendering, st] : by_statement) {
    s += StrFormat("  %8llu exec  %10llu updates  %10.3f ms   %s\n",
                   static_cast<unsigned long long>(st.executions),
                   static_cast<unsigned long long>(st.updates),
                   static_cast<double>(st.nanos) / 1e6, rendering.c_str());
  }
  return s;
}

Engine::Engine(compiler::Program program)
    : program_(std::move(program)), db_(program_.catalog), eval_(this) {
  for (const MapDecl& decl : program_.maps) {
    decls_[decl.name] = &decl;
    if (decl.is_extreme) {
      extremes_.emplace(decl.name, ExtremeMap(decl.name, decl.key_names.size(),
                                              decl.value_type));
    } else {
      maps_.emplace(decl.name, ValueMap(decl.name, decl.key_names.size(),
                                        decl.value_type));
    }
  }
  BuildTriggerInfo();
}

void Engine::BuildTriggerInfo() {
  // Transitive read footprint of each map's definition: reading an
  // init-on-access map evaluates its definition against the base tables,
  // which may read further relations and maps (themselves init-on-access).
  std::map<std::string, std::set<std::string>> def_rels, def_maps;
  for (const MapDecl& m : program_.maps) {
    auto& rels = def_rels[m.name];
    auto& maps = def_maps[m.name];
    if (m.definition != nullptr) {
      m.definition->CollectRels(&rels);
      m.definition->CollectMapRefs(&maps);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const MapDecl& m : program_.maps) {
      auto& rels = def_rels[m.name];
      auto& maps = def_maps[m.name];
      size_t r0 = rels.size(), m0 = maps.size();
      std::vector<std::string> deps(maps.begin(), maps.end());
      for (const std::string& dep : deps) {
        auto rit = def_rels.find(dep);
        if (rit != def_rels.end()) {
          rels.insert(rit->second.begin(), rit->second.end());
        }
        auto mit = def_maps.find(dep);
        if (mit != def_maps.end()) {
          maps.insert(mit->second.begin(), mit->second.end());
        }
      }
      changed = changed || rels.size() != r0 || maps.size() != m0;
    }
  }

  /// Everything `e` may read, including through init-on-access cascades.
  auto expand_reads = [&](const ring::ExprPtr& e, std::set<std::string>* rels,
                          std::set<std::string>* maps) {
    if (e == nullptr) return;
    e->CollectRels(rels);
    std::set<std::string> direct;
    e->CollectMapRefs(&direct);
    for (const std::string& m : direct) {
      maps->insert(m);
      auto rit = def_rels.find(m);
      if (rit != def_rels.end()) {
        rels->insert(rit->second.begin(), rit->second.end());
      }
      auto mit = def_maps.find(m);
      if (mit != def_maps.end()) {
        maps->insert(mit->second.begin(), mit->second.end());
      }
    }
  };

  // Maps read by any statement or initializer: a re-evaluation statement
  // whose target nobody reads may run once per batch instead of per event
  // (views read it only after the batch has flushed).
  std::set<std::string> read_anywhere;
  for (const auto& [name, maps] : def_maps) {
    read_anywhere.insert(maps.begin(), maps.end());
  }
  for (const Trigger& t : program_.triggers) {
    for (const Statement& st : t.statements) {
      if (st.rhs != nullptr) st.rhs->CollectMapRefs(&read_anywhere);
      if (st.extreme_guard != nullptr) {
        st.extreme_guard->CollectMapRefs(&read_anywhere);
      }
      if (st.extreme_value != nullptr) {
        st.extreme_value->CollectMapReads(&read_anywhere);
      }
    }
  }

  for (const Trigger& t : program_.triggers) {
    TriggerInfo info;
    info.trigger = &t;
    info.renderings.reserve(t.statements.size());
    info.reeval_deferrable.assign(t.statements.size(), false);
    std::set<std::string> delta_targets;
    for (const Statement& st : t.statements) {
      info.renderings.push_back(st.ToString());
      if (st.kind == Statement::Kind::kDelta) delta_targets.insert(st.target);
    }
    bool vectorizable = true;
    bool reads_init_map = false;
    size_t num_delta = 0;
    for (size_t si = 0; si < t.statements.size(); ++si) {
      const Statement& st = t.statements[si];
      switch (st.kind) {
        case Statement::Kind::kDelta: {
          ++num_delta;
          if (!st.lhs_iterate.empty()) {
            vectorizable = false;  // iterates the live keys it also writes
            break;
          }
          std::set<std::string> rels, maps;
          expand_reads(st.rhs, &rels, &maps);
          if (rels.count(t.relation) > 0) vectorizable = false;
          for (const std::string& m : maps) {
            if (delta_targets.count(m) > 0) {
              vectorizable = false;
              break;
            }
          }
          for (const std::string& m : maps) {
            auto dit = decls_.find(m);
            if (dit != decls_.end() && dit->second->needs_init) {
              reads_init_map = true;  // ReadMap may evaluate an initializer
            }
          }
          break;
        }
        case Statement::Kind::kExtreme: {
          // Vectorizable only when guard and value depend on the event
          // parameters alone (which compile.cc guarantees today; verified
          // here so future compilation changes degrade safely).
          std::set<std::string> rels, maps;
          expand_reads(st.extreme_guard, &rels, &maps);
          if (st.extreme_value != nullptr) {
            st.extreme_value->CollectMapReads(&maps);
          }
          if (!rels.empty() || !maps.empty()) vectorizable = false;
          break;
        }
        case Statement::Kind::kReeval: {
          info.reeval_deferrable[si] = read_anywhere.count(st.target) == 0;
          if (!info.reeval_deferrable[si]) vectorizable = false;
          break;
        }
      }
    }
    info.vectorizable = vectorizable;
    // Parallel-safe: the delta phase against the pre-state is pure (no
    // init-on-access evaluation), so shards of the binding vector can run
    // on concurrent workers. The partition key is the param subset present
    // in every delta target key — bindings sharing it write the same map
    // keys, so routing by it preserves per-key application order exactly.
    info.parallel_safe = vectorizable && !reads_init_map && num_delta > 0;
    if (info.parallel_safe) {
      for (size_t p = 0; p < t.params.size(); ++p) {
        bool in_every_target = true;
        for (const Statement& st : t.statements) {
          if (st.kind != Statement::Kind::kDelta) continue;
          if (std::find(st.target_keys.begin(), st.target_keys.end(),
                        t.params[p]) == st.target_keys.end()) {
            in_every_target = false;
            break;
          }
        }
        if (in_every_target) info.partition_cols.push_back(p);
      }
      // Without a partition key in the target, same-key updates from
      // different shards merge in shard order rather than event order.
      // Integer sums commute exactly; double sums do not (addition is not
      // associative), so a double-valued target would drift from
      // one-at-a-time replay in the low bits. Keep those sequential.
      if (info.partition_cols.empty()) {
        for (const Statement& st : t.statements) {
          if (st.kind != Statement::Kind::kDelta) continue;
          auto dit = decls_.find(st.target);
          if (dit != decls_.end() &&
              dit->second->value_type == Type::kDouble) {
            info.parallel_safe = false;
            break;
          }
        }
      }
    }
    trigger_info_[{t.relation, static_cast<int>(t.event)}] = std::move(info);
  }
}

const Engine::TriggerInfo* Engine::FindTriggerInfo(const std::string& relation,
                                                   EventKind kind) const {
  auto it = trigger_info_.find({relation, static_cast<int>(kind)});
  return it == trigger_info_.end() ? nullptr : &it->second;
}

const ValueMap* Engine::value_map(const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : &it->second;
}

const ExtremeMap* Engine::extreme_map(const std::string& name) const {
  auto it = extremes_.find(name);
  return it == extremes_.end() ? nullptr : &it->second;
}

size_t Engine::MapMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [name, m] : maps_) bytes += m.MemoryBytes();
  for (const auto& [name, m] : extremes_) bytes += m.MemoryBytes();
  return bytes;
}

size_t Engine::TotalMapEntries() const {
  size_t n = 0;
  for (const auto& [name, m] : maps_) n += m.size();
  for (const auto& [name, m] : extremes_) n += m.size();
  return n;
}

size_t Engine::StateBytes() const { return MapMemoryBytes() + db_.MemoryBytes(); }

Result<Value> Engine::ReadMap(const std::string& map, const Row& key,
                              bool store_init) {
  auto it = maps_.find(map);
  if (it == maps_.end()) {
    return Status::NotFound("unknown map: " + map);
  }
  ValueMap& vm = it->second;
  if (vm.Contains(key)) return vm.Get(key);
  const MapDecl* decl = decls_.at(map);
  if (!decl->needs_init || decl->definition == nullptr || in_init_) {
    return vm.TypedZero();
  }
  // Init-on-first-access: evaluate the definition over the base tables with
  // the canonical keys bound to the requested key.
  in_init_ = true;
  Bindings env;
  for (size_t i = 0; i < decl->key_names.size(); ++i) {
    env[decl->key_names[i]] = key[i];
  }
  auto value = eval_.EvalScalar(decl->definition, env, /*store_init=*/false);
  in_init_ = false;
  if (!value.ok()) return value.status();
  Value v = value.value();
  if (vm.value_type() == Type::kDouble && v.is_int()) {
    v = Value(v.AsDouble());
  }
  if (store_init) {
    ApplyMapSet(&vm, key, v);
  }
  return v;
}

const ValueMap* Engine::FindMap(const std::string& map) const {
  return value_map(map);
}

void Engine::ApplyMapAdd(ValueMap* target, const Row& key,
                         const Value& delta) {
  target->Add(key, delta);
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

void Engine::ApplyMapSet(ValueMap* target, const Row& key, Value value) {
  target->Set(key, std::move(value));
  auto it = slice_indexes_.find(target->name());
  if (it != slice_indexes_.end()) {
    for (SliceIndex& idx : it->second) idx.Insert(key);
  }
}

namespace {
const std::unordered_set<Row, RowHash, RowEq>* SliceBuckets(
    const std::unordered_map<Row, std::unordered_set<Row, RowHash, RowEq>,
                             RowHash, RowEq>& buckets,
    const Row& key) {
  auto bit = buckets.find(key);
  if (bit == buckets.end()) {
    static const std::unordered_set<Row, RowHash, RowEq> kEmpty;
    return &kEmpty;
  }
  return &bit->second;
}
}  // namespace

const std::unordered_set<Row, RowHash, RowEq>* Engine::LookupMapSlice(
    const std::string& map, const std::vector<size_t>& positions,
    const Row& key) {
  auto mit = maps_.find(map);
  if (mit == maps_.end()) return nullptr;
  if (parallel_region_) {
    // Shard workers: lookups share the lock; a missing index upgrades to
    // exclusive and builds once. Returned bucket sets live in stable
    // unordered_map nodes, so they survive later index additions.
    {
      std::shared_lock<std::shared_mutex> read_lock(slice_mu_);
      auto it = slice_indexes_.find(map);
      if (it != slice_indexes_.end()) {
        for (SliceIndex& existing : it->second) {
          if (existing.positions == positions) {
            return SliceBuckets(existing.buckets, key);
          }
        }
      }
    }
    std::unique_lock<std::shared_mutex> write_lock(slice_mu_);
    auto& indexes = slice_indexes_[map];
    for (SliceIndex& existing : indexes) {
      if (existing.positions == positions) {
        return SliceBuckets(existing.buckets, key);
      }
    }
    indexes.push_back(SliceIndex{positions, {}});
    SliceIndex* idx = &indexes.back();
    for (const auto& [full_key, value] : mit->second.entries()) {
      idx->Insert(full_key);
    }
    return SliceBuckets(idx->buckets, key);
  }
  auto& indexes = slice_indexes_[map];
  SliceIndex* idx = nullptr;
  for (SliceIndex& existing : indexes) {
    if (existing.positions == positions) {
      idx = &existing;
      break;
    }
  }
  if (idx == nullptr) {
    // Build lazily from the current live entries.
    indexes.push_back(SliceIndex{positions, {}});
    idx = &indexes.back();
    for (const auto& [full_key, value] : mit->second.entries()) {
      idx->Insert(full_key);
    }
  }
  return SliceBuckets(idx->buckets, key);
}

const Table* Engine::FindRelation(const std::string& rel) const {
  return db_.FindTable(rel);
}

Status Engine::RunDeltaStatement(
    const Statement& stmt, const Bindings& env,
    std::vector<std::tuple<ValueMap*, Row, Value>>* pending) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("delta statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;

  // LHS-driven iteration: bind the un-derivable target keys from the live
  // key set of the target map.
  std::vector<Bindings> envs;
  if (stmt.lhs_iterate.empty()) {
    envs.push_back(env);
  } else {
    std::set<Row, bool (*)(const Row&, const Row&)> distinct(
        +[](const Row& a, const Row& b) {
          if (a.size() != b.size()) return a.size() < b.size();
          for (size_t i = 0; i < a.size(); ++i) {
            int c = Value::Compare(a[i], b[i]);
            if (c != 0) return c < 0;
          }
          return false;
        });
    for (const auto& [key, value] : target->entries()) {
      Row sub;
      sub.reserve(stmt.lhs_iterate.size());
      for (size_t pos : stmt.lhs_iterate) sub.push_back(key[pos]);
      distinct.insert(std::move(sub));
    }
    for (const Row& sub : distinct) {
      Bindings e2 = env;
      for (size_t i = 0; i < stmt.lhs_iterate.size(); ++i) {
        e2[stmt.target_keys[stmt.lhs_iterate[i]]] = sub[i];
      }
      envs.push_back(std::move(e2));
    }
  }

  size_t updates = 0;
  for (const Bindings& e2 : envs) {
    DBT_ASSIGN_OR_RETURN(Keyed result,
                         eval_.Eval(stmt.rhs, e2, /*store_init=*/false));
    for (auto& [row, value] : result.entries) {
      // Build the target key from the environment and the result row.
      Row key;
      key.reserve(stmt.target_keys.size());
      bool ok = true;
      for (const std::string& kv : stmt.target_keys) {
        auto eit = e2.find(kv);
        if (eit != e2.end()) {
          key.push_back(eit->second);
          continue;
        }
        auto pos = std::find(result.vars.begin(), result.vars.end(), kv);
        if (pos == result.vars.end()) {
          ok = false;
          break;
        }
        key.push_back(row[static_cast<size_t>(pos - result.vars.begin())]);
      }
      if (!ok) {
        return Status::Internal("statement cannot bind target key: " +
                                stmt.ToString());
      }
      pending->emplace_back(target, std::move(key), std::move(value));
      ++updates;
    }
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, updates);
  return Status::OK();
}

Status Engine::RunReevalStatement(const Statement& stmt, const Bindings& env) {
  auto it = maps_.find(stmt.target);
  if (it == maps_.end()) {
    return Status::Internal("reeval statement on unknown map: " + stmt.target);
  }
  ValueMap* target = &it->second;
  DBT_ASSIGN_OR_RETURN(Keyed result,
                       eval_.Eval(stmt.rhs, env, /*store_init=*/true));
  target->Clear();
  slice_indexes_.erase(stmt.target);  // rebuilt lazily on next slice access
  if (result.vars.empty()) {
    Value sum = target->TypedZero();
    for (const auto& [row, v] : result.entries) sum = Value::Add(sum, v);
    ApplyMapSet(target, {}, sum);
    if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
    return Status::OK();
  }
  for (auto& [row, v] : result.entries) ApplyMapAdd(target, row, v);
  if (trace_ != nullptr) trace_->OnStatement(stmt, result.entries.size());
  return Status::OK();
}

Status Engine::RunExtremeStatement(const Statement& stmt,
                                   const Bindings& env) {
  auto it = extremes_.find(stmt.target);
  if (it == extremes_.end()) {
    return Status::Internal("extreme statement on unknown map: " +
                            stmt.target);
  }
  ExtremeMap* target = &it->second;
  if (stmt.extreme_guard != nullptr) {
    DBT_ASSIGN_OR_RETURN(Value g, eval_.EvalScalar(stmt.extreme_guard, env,
                                                   /*store_init=*/false));
    if (g.IsZero()) {
      if (trace_ != nullptr) trace_->OnStatement(stmt, 0);
      return Status::OK();
    }
  }
  Row key;
  key.reserve(stmt.target_keys.size());
  for (const std::string& kv : stmt.target_keys) {
    auto eit = env.find(kv);
    if (eit == env.end()) {
      return Status::Internal("unbound extreme key variable: " + kv);
    }
    key.push_back(eit->second);
  }
  DBT_ASSIGN_OR_RETURN(Value v, eval_.EvalTerm(stmt.extreme_value, env,
                                               /*store_init=*/false));
  if (stmt.extreme_sign > 0) {
    target->Add(key, v);
  } else {
    target->Remove(key, v);
  }
  if (trace_ != nullptr) trace_->OnStatement(stmt, 1);
  return Status::OK();
}

void Engine::Defer(const Statement* stmt, const std::string* rendering,
                   DeferredReevals* deferred) {
  // Dedup by target: the compiler emits one kReeval statement per
  // (relation, op) trigger for the same hybrid target, all with identical
  // RHS — one refresh per batch covers them all.
  for (const auto& [s, r] : *deferred) {
    if (s->target == stmt->target) return;
  }
  deferred->emplace_back(stmt, rendering);
}

Status Engine::FlushDeferredReevals(DeferredReevals* deferred) {
  Bindings empty_env;
  uint64_t start = NowNanos();
  for (const auto& [stmt, rendering] : *deferred) {
    uint64_t t0 = NowNanos();
    DBT_RETURN_IF_ERROR(RunReevalStatement(*stmt, empty_env));
    auto& st = profile_.by_statement[*rendering];
    st.rendering = *rendering;
    st.executions++;
    st.nanos += NowNanos() - t0;
  }
  if (!deferred->empty()) profile_.event_nanos += NowNanos() - start;
  deferred->clear();
  return Status::OK();
}

Status Engine::CheckGroupArity(const Trigger& trigger, const Row* tuples,
                               size_t count) const {
  for (size_t e = 0; e < count; ++e) {
    if (trigger.params.size() != tuples[e].size()) {
      return Status::InvalidArgument(StrFormat(
          "event arity %zu does not match trigger %s", tuples[e].size(),
          trigger.Signature().c_str()));
    }
  }
  return Status::OK();
}

std::vector<ProfileStats::StatementStats*> Engine::ResolveStats(
    const TriggerInfo& info) {
  const Trigger& trigger = *info.trigger;
  std::vector<ProfileStats::StatementStats*> stats(trigger.statements.size());
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    ProfileStats::StatementStats& st =
        profile_.by_statement[info.renderings[si]];
    st.rendering = info.renderings[si];
    stats[si] = &st;
  }
  return stats;
}

Status Engine::ApplyGroupSequential(const TriggerInfo& info, EventKind kind,
                                    const std::string& relation,
                                    const Row* tuples, size_t count,
                                    DeferredReevals* deferred) {
  const Trigger& trigger = *info.trigger;
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(info);

  Bindings env;
  for (size_t e = 0; e < count; ++e) {
    const Row& tuple = tuples[e];
    if (trace_ != nullptr) trace_->OnEvent(Event{kind, relation, tuple});
    if (trigger.params.size() != tuple.size()) {
      return Status::InvalidArgument(
          StrFormat("event arity %zu does not match trigger %s", tuple.size(),
                    trigger.Signature().c_str()));
    }
    for (size_t i = 0; i < trigger.params.size(); ++i) {
      env[trigger.params[i]] = tuple[i];
    }

    // Phase 1: evaluate all delta statements against the pre-state.
    pending_.clear();
    for (size_t si = 0; si < trigger.statements.size(); ++si) {
      const Statement& stmt = trigger.statements[si];
      if (stmt.kind != Statement::Kind::kDelta) continue;
      uint64_t t0 = NowNanos();
      size_t before = pending_.size();
      DBT_RETURN_IF_ERROR(RunDeltaStatement(stmt, env, &pending_));
      stats[si]->executions++;
      stats[si]->updates += pending_.size() - before;
      stats[si]->nanos += NowNanos() - t0;
    }

    // Phase 2: apply the event to the base tables, then the map deltas.
    DBT_RETURN_IF_ERROR(db_.Apply(kind, relation, tuple));
    for (auto& [target, key, value] : pending_) {
      if (trace_ != nullptr) {
        Value old_value = target->Get(key);
        ApplyMapAdd(target, key, value);
        trace_->OnMapUpdate(target->name(), key, old_value, target->Get(key));
      } else {
        ApplyMapAdd(target, key, value);
      }
    }

    // Phase 2b: extreme (MIN/MAX multiset) statements over the post-state.
    for (size_t si = 0; si < trigger.statements.size(); ++si) {
      const Statement& stmt = trigger.statements[si];
      if (stmt.kind != Statement::Kind::kExtreme) continue;
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunExtremeStatement(stmt, env));
      stats[si]->executions++;
      stats[si]->nanos += NowNanos() - t0;
    }

    // Phase 3: hybrid re-evaluation statements over the post-state. They
    // depend only on the maintained maps and base tables, never on the
    // event parameters — an empty environment also prevents accidental
    // capture of query variables that share a name with trigger parameters.
    // Statements whose target nothing reads are deferred to the batch end.
    Bindings empty_env;
    for (size_t si = 0; si < trigger.statements.size(); ++si) {
      const Statement& stmt = trigger.statements[si];
      if (stmt.kind != Statement::Kind::kReeval) continue;
      if (info.reeval_deferrable[si] && trace_ == nullptr) {
        Defer(&stmt, &info.renderings[si], deferred);
        continue;
      }
      uint64_t t0 = NowNanos();
      DBT_RETURN_IF_ERROR(RunReevalStatement(stmt, empty_env));
      stats[si]->executions++;
      stats[si]->nanos += NowNanos() - t0;
    }
  }
  return Status::OK();
}

Status Engine::ApplyGroupVectorized(const TriggerInfo& info,
                                    const Row* tuples, size_t count,
                                    DeferredReevals* deferred) {
  const Trigger& trigger = *info.trigger;
  const EventKind kind = trigger.event;
  DBT_RETURN_IF_ERROR(CheckGroupArity(trigger, tuples, count));
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(info);

  // Phase 1: each delta statement runs once over the vector of bindings,
  // all against the group pre-state (safe per the TriggerInfo analysis).
  pending_.clear();
  Bindings env;
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    const Statement& stmt = trigger.statements[si];
    if (stmt.kind != Statement::Kind::kDelta) continue;
    uint64_t t0 = NowNanos();
    size_t before = pending_.size();
    for (size_t e = 0; e < count; ++e) {
      for (size_t i = 0; i < trigger.params.size(); ++i) {
        env[trigger.params[i]] = tuples[e][i];
      }
      DBT_RETURN_IF_ERROR(RunDeltaStatement(stmt, env, &pending_));
    }
    stats[si]->executions += count;
    stats[si]->updates += pending_.size() - before;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 2: flush the whole group — base tables first, then the map
  // deltas (additive, so application order within the group is free).
  for (size_t e = 0; e < count; ++e) {
    DBT_RETURN_IF_ERROR(db_.Apply(kind, trigger.relation, tuples[e]));
  }
  for (auto& [target, key, value] : pending_) ApplyMapAdd(target, key, value);

  // Phase 2b: extreme statements (parameter-only, order-independent).
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    const Statement& stmt = trigger.statements[si];
    if (stmt.kind != Statement::Kind::kExtreme) continue;
    uint64_t t0 = NowNanos();
    for (size_t e = 0; e < count; ++e) {
      for (size_t i = 0; i < trigger.params.size(); ++i) {
        env[trigger.params[i]] = tuples[e][i];
      }
      DBT_RETURN_IF_ERROR(RunExtremeStatement(stmt, env));
    }
    stats[si]->executions += count;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 3: re-evaluation statements are all deferrable here (that is part
  // of being vectorizable); they run once at the end of the batch.
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    const Statement& stmt = trigger.statements[si];
    if (stmt.kind != Statement::Kind::kReeval) continue;
    Defer(&stmt, &info.renderings[si], deferred);
  }
  return Status::OK();
}

Status Engine::ApplyGroupSharded(const TriggerInfo& info, const Row* tuples,
                                 size_t count, DeferredReevals* deferred) {
  const Trigger& trigger = *info.trigger;
  const EventKind kind = trigger.event;
  DBT_RETURN_IF_ERROR(CheckGroupArity(trigger, tuples, count));
  std::vector<ProfileStats::StatementStats*> stats = ResolveStats(info);

  std::vector<size_t> delta_stmts;
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    if (trigger.statements[si].kind == Statement::Kind::kDelta) {
      delta_stmts.push_back(si);
    }
  }

  profile_.sharded_groups++;
  const ShardPlan plan =
      ShardPlan::Partition(tuples, count, info.partition_cols);

  // Phase 1 fan-out: each worker evaluates its shards' bindings against the
  // shared pre-state (reads only; parallel_safe guarantees no initializer
  // evaluation) into private per-statement pending vectors.
  struct ShardOut {
    std::vector<std::vector<std::tuple<ValueMap*, Row, Value>>> pending;
    std::vector<uint64_t> nanos;
    Status status = Status::OK();
  };
  std::array<ShardOut, kNumShards> outs;
  for (ShardOut& out : outs) {
    out.pending.resize(delta_stmts.size());
    out.nanos.assign(delta_stmts.size(), 0);
  }

  parallel_region_ = true;
  shard_pool().RunShards(kNumShards, [&](size_t s) {
    ShardOut& out = outs[s];
    Bindings env;
    for (uint32_t i : plan.shards[s]) {
      const Row& tuple = tuples[i];
      for (size_t p = 0; p < trigger.params.size(); ++p) {
        env[trigger.params[p]] = tuple[p];
      }
      for (size_t d = 0; d < delta_stmts.size(); ++d) {
        const Statement& stmt = trigger.statements[delta_stmts[d]];
        const uint64_t t0 = NowNanos();
        Status st = RunDeltaStatement(stmt, env, &out.pending[d]);
        out.nanos[d] += NowNanos() - t0;
        if (!st.ok()) {
          out.status = std::move(st);
          return;
        }
      }
    }
  });
  parallel_region_ = false;
  for (const ShardOut& out : outs) {
    if (!out.status.ok()) return out.status;
  }

  for (size_t d = 0; d < delta_stmts.size(); ++d) {
    ProfileStats::StatementStats* st = stats[delta_stmts[d]];
    st->executions += count;
    for (const ShardOut& out : outs) {
      st->updates += out.pending[d].size();
      st->nanos += out.nanos[d];  // CPU time, summed across workers
    }
  }

  // Merge: base tables in group order, then pendings statement-major in
  // logical-shard order — fixed by the plan, so the application sequence
  // (and therefore every map, byte for byte) is identical at any thread
  // count, including the inline threads=1 run.
  for (size_t e = 0; e < count; ++e) {
    DBT_RETURN_IF_ERROR(db_.Apply(kind, trigger.relation, tuples[e]));
  }
  for (size_t d = 0; d < delta_stmts.size(); ++d) {
    for (ShardOut& out : outs) {
      for (auto& [target, key, value] : out.pending[d]) {
        ApplyMapAdd(target, key, value);
      }
    }
  }

  // Phase 2b: extreme statements (parameter-only), in group order.
  Bindings env;
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    const Statement& stmt = trigger.statements[si];
    if (stmt.kind != Statement::Kind::kExtreme) continue;
    uint64_t t0 = NowNanos();
    for (size_t e = 0; e < count; ++e) {
      for (size_t p = 0; p < trigger.params.size(); ++p) {
        env[trigger.params[p]] = tuples[e][p];
      }
      DBT_RETURN_IF_ERROR(RunExtremeStatement(stmt, env));
    }
    stats[si]->executions += count;
    stats[si]->nanos += NowNanos() - t0;
  }

  // Phase 3: deferrable re-evaluations, once at batch end.
  for (size_t si = 0; si < trigger.statements.size(); ++si) {
    const Statement& stmt = trigger.statements[si];
    if (stmt.kind != Statement::Kind::kReeval) continue;
    Defer(&stmt, &info.renderings[si], deferred);
  }
  return Status::OK();
}

Status Engine::ApplyGroup(const std::string& relation, EventKind kind,
                          const Row* tuples, size_t count,
                          DeferredReevals* deferred) {
  if (count == 0) return Status::OK();
  uint64_t start = NowNanos();
  const TriggerInfo* info = FindTriggerInfo(relation, kind);

  Status status = Status::OK();
  if (info == nullptr) {
    // No trigger for this (relation, op): the event still updates the
    // base-table snapshot.
    for (size_t e = 0; e < count; ++e) {
      if (trace_ != nullptr) trace_->OnEvent(Event{kind, relation, tuples[e]});
      status = db_.Apply(kind, relation, tuples[e]);
      if (!status.ok()) break;
    }
  } else if (trace_ == nullptr && info->vectorizable && count > 1) {
    // The sharded path is chosen by group size alone — never by the pool's
    // thread count — so a batch sequence produces identical state at every
    // thread count (threads=1 runs the same shard order inline).
    if (info->parallel_safe && count >= dbt::kShardBatchCutoff) {
      status = ApplyGroupSharded(*info, tuples, count, deferred);
    } else {
      status = ApplyGroupVectorized(*info, tuples, count, deferred);
    }
  } else {
    status = ApplyGroupSequential(*info, kind, relation, tuples, count,
                                  deferred);
  }

  if (!status.ok()) return status;
  profile_.events += count;
  profile_.event_nanos += NowNanos() - start;
  return Status::OK();
}

Status Engine::ApplyBatch(EventBatch&& batch) {
  DeferredReevals deferred;
  for (const EventBatch::Group& g : batch.groups()) {
    DBT_RETURN_IF_ERROR(
        ApplyGroup(g.relation, g.kind, g.tuples.data(), g.tuples.size(),
                   &deferred));
  }
  return FlushDeferredReevals(&deferred);
}

Status Engine::OnEvent(const Event& event) {
  DeferredReevals deferred;
  DBT_RETURN_IF_ERROR(
      ApplyGroup(event.relation, event.kind, &event.tuple, 1, &deferred));
  return FlushDeferredReevals(&deferred);
}

Result<exec::QueryResult> Engine::View(const std::string& view_name) {
  const compiler::ViewSpec* view = program_.FindView(view_name);
  if (view == nullptr) {
    return Status::NotFound("unknown view: " + view_name);
  }
  exec::QueryResult out;
  // The view's columns are exactly the query's SELECT items (group keys
  // appear here iff the query selected them), matching SQL output schema.
  for (const compiler::ViewColumn& c : view->columns) {
    out.column_names.push_back(c.name);
  }

  auto emit_row = [&](const Bindings& env, const Row& key) -> Status {
    Row row;
    row.reserve(view->columns.size());
    for (const compiler::ViewColumn& c : view->columns) {
      if (c.kind == compiler::ViewColumn::Kind::kTerm) {
        DBT_ASSIGN_OR_RETURN(Value v,
                             eval_.EvalTerm(c.value, env, /*store_init=*/true));
        row.push_back(std::move(v));
      } else {
        const ExtremeMap* em = extreme_map(c.extreme_map);
        if (em == nullptr) {
          return Status::Internal("missing extreme map: " + c.extreme_map);
        }
        const compiler::MapDecl* decl = decls_.at(c.extreme_map);
        auto v = decl->extreme_kind == sql::AggKind::kMin ? em->Min(key)
                                                          : em->Max(key);
        row.push_back(v.has_value()
                          ? *v
                          : (c.type == Type::kDouble ? Value(0.0)
                                                     : Value(int64_t{0})));
      }
    }
    out.rows.emplace_back(std::move(row), 1);
    return Status::OK();
  };

  // HAVING: post-aggregation guard over the materialized group maps.
  auto passes_having = [&](const Bindings& env) -> Result<bool> {
    if (view->having == nullptr) return true;
    DBT_ASSIGN_OR_RETURN(
        Value v, eval_.EvalScalar(view->having, env, /*store_init=*/true));
    return !(v.is_numeric() && v.IsZero());
  };

  if (view->key_vars.empty()) {
    Bindings env;
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (pass) {
      DBT_RETURN_IF_ERROR(emit_row(env, {}));
    }
    return out;
  }
  const ValueMap* domain = value_map(view->domain_map);
  if (domain == nullptr) {
    return Status::Internal("missing domain map for view: " + view_name);
  }
  for (const auto& [key, count] : domain->entries()) {
    if (count.is_numeric() && count.IsZero()) continue;
    Bindings env;
    for (size_t i = 0; i < view->key_vars.size(); ++i) {
      env[view->key_vars[i]] = key[i];
    }
    DBT_ASSIGN_OR_RETURN(bool pass, passes_having(env));
    if (!pass) continue;
    DBT_RETURN_IF_ERROR(emit_row(env, key));
  }
  return out;
}

Result<exec::QueryResult> Engine::AdhocQuery(const std::string& sql) {
  return exec::Executor::Query(sql, program_.catalog, db_);
}

}  // namespace dbtoaster::runtime
