// Durable engine snapshots: a versioned, checksummed binary envelope around
// StreamEngine::SaveState/LoadState.
//
// File layout (little-endian):
//
//   bytes [0, 8)    magic "DBTCKPT\n"
//   bytes [8, n-4)  body, Ser-encoded:
//                     u32  format version (kCheckpointVersion)
//                     str  engine name (Name() of the writing engine)
//                     u64  epoch (successfully applied ingest calls)
//                     str  engine-specific state payload (SaveState output)
//   bytes [n-4, n)  u32 CRC-32 over bytes [8, n-4)
//
// Writes are atomic: the snapshot is written to `<path>.tmp`, fsync'd,
// renamed over `path`, and the parent directory is fsync'd so the rename
// itself is durable; a crash mid-checkpoint leaves the previous snapshot
// intact. Restore verifies magic, CRC, version and engine name
// before any state is touched, and requires the payload to decode exactly
// (no trailing bytes), so a torn or bit-flipped snapshot is rejected with a
// Status instead of silently corrupting views.
//
// The envelope owns the epoch: RestoreCheckpoint sets the engine's epoch
// cursor, which the batch-log replay (src/runtime/batch_log.h) then uses
// for exactly-once recovery.
#ifndef DBTOASTER_RUNTIME_CHECKPOINT_H_
#define DBTOASTER_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/runtime/stream_engine.h"

namespace dbtoaster::runtime {

inline constexpr uint32_t kCheckpointVersion = 1;

/// Envelope fields of a snapshot, readable without restoring it.
struct CheckpointMeta {
  uint32_t version = 0;
  std::string engine_name;
  uint64_t epoch = 0;
};

/// Snapshot `engine`'s state to `path` (atomic tmp + fsync + rename +
/// parent-directory fsync).
Status WriteCheckpoint(const std::string& path, const StreamEngine& engine);

/// fsync the directory containing `path`, making a just-completed rename or
/// create of `path` durable. Shared by checkpoint and batch-log writers.
Status FsyncParentDir(const std::string& path);

/// Crash injection for durability tests: the next WriteCheckpoint aborts at
/// the chosen point (one-shot; resets to kNone once it fires).
enum class CheckpointCrashPoint {
  kNone,
  kAfterTmpFsync,  // tmp file written + fsync'd, rename not yet issued
};
void SetCheckpointCrashForTesting(CheckpointCrashPoint point);

/// Validate the envelope (magic, CRC, version) and return its fields.
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& path);

/// Restore `engine` from the snapshot at `path`. The engine must be
/// freshly constructed the same way as the writer (same program / queries):
/// snapshots carry dynamic state, not query registration. On success the
/// engine's epoch equals the snapshot's. Rejects wrong-engine snapshots by
/// name.
Status RestoreCheckpoint(const std::string& path, StreamEngine* engine);

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_CHECKPOINT_H_
