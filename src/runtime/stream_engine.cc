#include "src/runtime/stream_engine.h"

#include "src/codegen/dbtoaster_runtime.h"
#include "src/common/str.h"

namespace dbtoaster::runtime {

ShardPlan ShardPlan::Partition(const Row* tuples, size_t count,
                               const std::vector<size_t>& partition_cols) {
  ShardPlan plan;
  const size_t reserve = count / kNumShards + 4;
  for (auto& shard : plan.shards) shard.reserve(reserve);
  for (size_t i = 0; i < count; ++i) {
    size_t h;
    if (partition_cols.empty()) {
      h = RowHash{}(tuples[i]);
    } else {
      h = kHashSeed;
      for (size_t c : partition_cols) {
        h = HashCombine(h, tuples[i][c].Hash());
      }
    }
    plan.shards[dbt::ShardOfHash(h)].push_back(static_cast<uint32_t>(i));
  }
  return plan;
}

EventBatch EventBatch::Of(const Event& event) {
  EventBatch batch;
  batch.Add(event.kind, event.relation, event.tuple);
  return batch;
}

void EventBatch::Add(EventKind kind, const std::string& relation, Row tuple) {
  // Streams run long (relation, op) bursts; check the most recent group
  // first, then fall back to a scan (the group count is bounded by
  // 2 * #relations).
  if (!groups_.empty() && groups_.back().kind == kind &&
      groups_.back().relation == relation) {
    groups_.back().Add(tuple);
    ++events_;
    return;
  }
  for (Group& g : groups_) {
    if (g.kind == kind && g.relation == relation) {
      g.Add(tuple);
      ++events_;
      return;
    }
  }
  groups_.emplace_back(relation, kind);
  groups_.back().Add(tuple);
  ++events_;
}

// ---- dynamic value serde ------------------------------------------------

void WriteValue(dbt::Ser& out, const Value& v) {
  if (v.is_string()) {
    out.u8(2);
    out.str(v.AsString());
  } else if (v.is_double()) {
    out.u8(1);
    out.f64(v.AsDouble());
  } else {
    out.u8(0);
    out.i64(v.AsInt());
  }
}

bool ReadValue(dbt::Deser& in, Value* v) {
  switch (in.u8()) {
    case 0: *v = Value(in.i64()); break;
    case 1: *v = Value(in.f64()); break;
    case 2: *v = Value(in.str()); break;
    default: return false;
  }
  return in.ok();
}

void WriteRow(dbt::Ser& out, const Row& row) {
  out.u64(row.size());
  for (const Value& v : row) WriteValue(out, v);
}

bool ReadRow(dbt::Deser& in, Row* row) {
  row->clear();
  const uint64_t n = in.u64();
  // Arity bound: a row longer than the remaining bytes is corrupt (every
  // value encodes to >= 1 byte), so a garbage length cannot OOM us.
  if (!in.ok() || n > in.remaining()) return false;
  row->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    if (!ReadValue(in, &v)) return false;
    row->push_back(std::move(v));
  }
  return true;
}

// ---- IngestValidator ----------------------------------------------------

namespace {

const char* TagName(EventColumn::Tag t) {
  switch (t) {
    case EventColumn::Tag::kF64: return "f64";
    case EventColumn::Tag::kStr: return "str";
    default: return "i64";
  }
}

EventColumn::Tag TagOfType(Type t) {
  switch (t) {
    case Type::kString: return EventColumn::Tag::kStr;
    case Type::kDouble: return EventColumn::Tag::kF64;
    default: return EventColumn::Tag::kI64;  // ints and dates ride i64 lanes
  }
}

/// String lanes and numeric lanes never mix; the two numeric lanes do
/// (dates and widened ints legally feed double columns via promotion).
bool LaneCompatible(EventColumn::Tag want, EventColumn::Tag got) {
  const bool want_str = want == EventColumn::Tag::kStr;
  const bool got_str = got == EventColumn::Tag::kStr;
  return want_str == got_str;
}

}  // namespace

void IngestValidator::Register(const std::string& relation,
                               std::vector<EventColumn::Tag> lanes) {
  schemas_[ToUpper(relation)] = std::move(lanes);
}

void IngestValidator::RegisterCatalog(const Catalog& catalog) {
  for (const Schema& schema : catalog.relations()) {
    std::vector<EventColumn::Tag> lanes;
    lanes.reserve(schema.num_columns());
    for (const auto& [col, type] : schema.columns()) {
      (void)col;
      lanes.push_back(TagOfType(type));
    }
    Register(schema.name(), std::move(lanes));
  }
}

const std::vector<EventColumn::Tag>* IngestValidator::Find(
    const std::string& relation) const {
  auto it = schemas_.find(ToUpper(relation));
  return it == schemas_.end() ? nullptr : &it->second;
}

Status IngestValidator::ValidateBatch(const EventBatch& batch) const {
  if (schemas_.empty()) return Status::OK();
  for (const EventBatch::Group& g : batch.groups()) {
    if (g.rows == 0) continue;
    const std::vector<EventColumn::Tag>* lanes = Find(g.relation);
    if (lanes == nullptr) {
      return Status::NotFound(
          StrFormat("ingest: unknown relation '%s'", g.relation.c_str()));
    }
    if (g.cols.size() != lanes->size()) {
      return Status::InvalidArgument(StrFormat(
          "ingest: relation '%s' expects arity %zu, batch group has %zu "
          "columns",
          g.relation.c_str(), lanes->size(), g.cols.size()));
    }
    for (size_t c = 0; c < g.cols.size(); ++c) {
      if (!LaneCompatible((*lanes)[c], g.cols[c].tag)) {
        return Status::TypeError(StrFormat(
            "ingest: relation '%s' column %zu expects %s lane, batch "
            "carries %s",
            g.relation.c_str(), c, TagName((*lanes)[c]),
            TagName(g.cols[c].tag)));
      }
    }
  }
  return Status::OK();
}

Status IngestValidator::ValidateEvent(const Event& event) const {
  if (schemas_.empty()) return Status::OK();
  const std::vector<EventColumn::Tag>* lanes = Find(event.relation);
  if (lanes == nullptr) {
    return Status::NotFound(
        StrFormat("ingest: unknown relation '%s'", event.relation.c_str()));
  }
  if (event.tuple.size() != lanes->size()) {
    return Status::InvalidArgument(StrFormat(
        "ingest: relation '%s' expects arity %zu, event tuple has %zu",
        event.relation.c_str(), lanes->size(), event.tuple.size()));
  }
  for (size_t c = 0; c < event.tuple.size(); ++c) {
    const EventColumn::Tag got = EventColumn::TagOf(event.tuple[c]);
    if (!LaneCompatible((*lanes)[c], got)) {
      return Status::TypeError(StrFormat(
          "ingest: relation '%s' column %zu expects %s lane, event "
          "carries %s",
          event.relation.c_str(), c, TagName((*lanes)[c]), TagName(got)));
    }
  }
  return Status::OK();
}

// ---- concurrent view serving ----------------------------------------------

namespace {

/// Rendering diffs fan out over the worker pool past this many total rows;
/// below it the per-shard loop runs inline (pool dispatch costs more than
/// the diff itself for small views).
constexpr size_t kParallelDiffCutoff = 512;

/// Diff one logical shard's rows of `prev` vs `next` into `out`. Row order
/// inside a shard follows the rendering order, so the result is
/// deterministic for a given pair of renderings.
void DiffShard(const exec::QueryResult& prev, const exec::QueryResult& next,
               const std::vector<uint32_t>& prev_rows,
               const std::vector<uint32_t>& next_rows, ViewDelta* out) {
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(prev_rows.size() + next_rows.size());
  for (uint32_t i : prev_rows) {
    counts[prev.rows[i].first] += prev.rows[i].second;
  }
  for (uint32_t i : next_rows) {
    counts[next.rows[i].first] -= next.rows[i].second;
  }
  for (uint32_t i : next_rows) {
    auto it = counts.find(next.rows[i].first);
    if (it != counts.end() && it->second < 0) {
      out->added.emplace_back(next.rows[i].first, -it->second);
      it->second = 0;
    }
  }
  for (uint32_t i : prev_rows) {
    auto it = counts.find(prev.rows[i].first);
    if (it != counts.end() && it->second > 0) {
      out->removed.emplace_back(prev.rows[i].first, it->second);
      it->second = 0;
    }
  }
}

std::array<std::vector<uint32_t>, kNumShards> ShardRows(
    const exec::QueryResult& r) {
  std::array<std::vector<uint32_t>, kNumShards> shards;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    shards[dbt::ShardOfHash(RowHash{}(r.rows[i].first))].push_back(
        static_cast<uint32_t>(i));
  }
  return shards;
}

}  // namespace

ViewDelta DiffViewRendering(const std::string& name,
                            const exec::QueryResult& prev,
                            const exec::QueryResult& next) {
  ViewDelta delta;
  delta.view = name;
  const auto prev_shards = ShardRows(prev);
  const auto next_shards = ShardRows(next);
  std::array<ViewDelta, kNumShards> per_shard;
  if (prev.rows.size() + next.rows.size() >= kParallelDiffCutoff) {
    dbt::shard_pool().RunShards(kNumShards, [&](size_t s) {
      DiffShard(prev, next, prev_shards[s], next_shards[s], &per_shard[s]);
    });
  } else {
    for (size_t s = 0; s < kNumShards; ++s) {
      DiffShard(prev, next, prev_shards[s], next_shards[s], &per_shard[s]);
    }
  }
  for (ViewDelta& d : per_shard) {
    delta.added.insert(delta.added.end(),
                       std::make_move_iterator(d.added.begin()),
                       std::make_move_iterator(d.added.end()));
    delta.removed.insert(delta.removed.end(),
                         std::make_move_iterator(d.removed.begin()),
                         std::make_move_iterator(d.removed.end()));
  }
  return delta;
}

void ApplyViewDelta(const ViewDelta& delta,
                    std::unordered_map<Row, int64_t, RowHash, RowEq>* rows) {
  for (const auto& [row, count] : delta.removed) {
    auto it = rows->find(row);
    if (it == rows->end()) continue;
    it->second -= count;
    if (it->second == 0) rows->erase(it);
  }
  for (const auto& [row, count] : delta.added) {
    (*rows)[row] += count;
  }
}

std::vector<std::string> ViewSnapshot::view_names() const {
  std::vector<std::string> out;
  if (data_ == nullptr) return out;
  out.reserve(data_->views.size());
  for (const ViewRendering& v : data_->views) out.push_back(v.name);
  return out;
}

const exec::QueryResult* ViewSnapshot::Find(const std::string& name) const {
  if (data_ == nullptr) return nullptr;
  for (const ViewRendering& v : data_->views) {
    if (v.name == name) return &v.result;
  }
  return nullptr;
}

Result<exec::QueryResult> ViewSnapshot::View(const std::string& name) const {
  const exec::QueryResult* r = Find(name);
  if (r == nullptr) return Status::NotFound("snapshot has no view: " + name);
  return *r;
}

std::vector<std::shared_ptr<const EpochDelta>> ViewSubscriber::Poll() {
  std::vector<std::shared_ptr<const EpochDelta>> out;
  if (chan_ == nullptr) return out;
  std::lock_guard<std::mutex> lock(chan_->mu);
  out.assign(chan_->queue.begin(), chan_->queue.end());
  chan_->queue.clear();
  return out;
}

bool ViewSubscriber::lagged() const {
  if (chan_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(chan_->mu);
  return chan_->lagged;
}

Status StreamEngine::RenderViews(const std::vector<std::string>& names,
                                 std::vector<ViewRendering>* out) {
  out->reserve(names.size());
  for (const std::string& name : names) {
    DBT_ASSIGN_OR_RETURN(exec::QueryResult r, View(name));
    ViewRendering rendering;
    rendering.name = name;
    rendering.result = std::move(r);
    out->push_back(std::move(rendering));
  }
  return Status::OK();
}

Status StreamEngine::EnableServing(std::vector<std::string> views) {
  if (views.empty()) views = ViewNames();
  if (views.empty()) {
    return Status::InvalidArgument("serving: engine exposes no views");
  }
  auto data = std::make_shared<ViewSnapshot::Data>();
  data->epoch = epoch_;
  DBT_RETURN_IF_ERROR(RenderViews(views, &data->views));
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    serving_views_ = std::move(views);
    published_ = std::move(data);
  }
  serving_enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

ViewSnapshot StreamEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(serving_mu_);
  return ViewSnapshot(published_);
}

Result<ViewSubscriber> StreamEngine::Subscribe() {
  if (!serving()) {
    return Status::InvalidArgument(
        "serving: EnableServing() before subscribing");
  }
  ViewSubscriber sub;
  sub.chan_ = std::make_shared<ViewSubscriber::Channel>();
  std::lock_guard<std::mutex> lock(serving_mu_);
  sub.base_ = ViewSnapshot(published_);
  subscribers_.push_back(sub.chan_);
  return sub;
}

Status StreamEngine::PublishSnapshot() {
  // Render outside any lock: the writer thread has exclusive access to the
  // live state, and readers keep using the previously published snapshot
  // until the swap below.
  auto data = std::make_shared<ViewSnapshot::Data>();
  data->epoch = epoch_;
  DBT_RETURN_IF_ERROR(RenderViews(serving_views_, &data->views));

  // Short publish section: swap the snapshot in and collect the live
  // subscriber channels as of the swap (a subscriber registered before it
  // has base == prev and needs this delta; one registered after has base ==
  // data and does not).
  std::shared_ptr<const ViewSnapshot::Data> prev;
  std::vector<std::shared_ptr<ViewSubscriber::Channel>> live;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    prev = std::move(published_);
    published_ = data;
    size_t kept = 0;
    for (size_t i = 0; i < subscribers_.size(); ++i) {
      if (auto chan = subscribers_[i].lock()) {
        live.push_back(std::move(chan));
        // Guard the compaction against self-move: a weak_ptr move-assigned
        // onto itself is left empty.
        if (kept != i) subscribers_[kept] = std::move(subscribers_[i]);
        ++kept;
      }
    }
    subscribers_.resize(kept);
  }
  if (live.empty()) return Status::OK();

  // Delta computation happens off the publish lock; readers are already on
  // the new snapshot.
  auto delta = std::make_shared<EpochDelta>();
  delta->epoch = data->epoch;
  delta->views.reserve(data->views.size());
  for (size_t i = 0; i < data->views.size(); ++i) {
    delta->views.push_back(DiffViewRendering(
        data->views[i].name, prev->views[i].result, data->views[i].result));
  }
  for (auto& chan : live) {
    std::lock_guard<std::mutex> lock(chan->mu);
    if (chan->lagged) continue;
    if (chan->queue.size() >= max_queued_deltas_) {
      // The subscriber fell behind the bound: its stream now has a gap, so
      // the queued prefix is useless — drop it and mark the lag.
      chan->queue.clear();
      chan->lagged = true;
      continue;
    }
    chan->queue.push_back(delta);
  }
  return Status::OK();
}

// ---- StreamEngine wrappers ----------------------------------------------

Status StreamEngine::ApplyBatch(EventBatch&& batch) {
  DBT_RETURN_IF_ERROR(validator_.ValidateBatch(batch));
  DBT_RETURN_IF_ERROR(DoApplyBatch(std::move(batch)));
  ++epoch_;
  if (serving_enabled_.load(std::memory_order_relaxed)) {
    DBT_RETURN_IF_ERROR(PublishSnapshot());
  }
  return Status::OK();
}

Status StreamEngine::OnEvent(const Event& event) {
  DBT_RETURN_IF_ERROR(validator_.ValidateEvent(event));
  DBT_RETURN_IF_ERROR(DoOnEvent(event));
  ++epoch_;
  if (serving_enabled_.load(std::memory_order_relaxed)) {
    DBT_RETURN_IF_ERROR(PublishSnapshot());
  }
  return Status::OK();
}

Result<Value> StreamEngine::ViewScalar(const std::string& name) {
  DBT_ASSIGN_OR_RETURN(exec::QueryResult r, View(name));
  if (r.rows.size() != 1 || r.rows[0].first.size() != 1) {
    return Status::InvalidArgument("view is not single-valued: " + name);
  }
  return r.rows[0].first[0];
}

Status StreamEngine::SaveState(dbt::Ser* out) const {
  (void)out;
  return Status::NotSupported("engine '" + Name() +
                              "' does not implement state capture");
}

Status StreamEngine::LoadState(dbt::Deser* in) {
  (void)in;
  return Status::NotSupported("engine '" + Name() +
                              "' does not implement state restore");
}

// ---- UpsertNormalizer ---------------------------------------------------

void UpsertNormalizer::DeclareKey(const std::string& relation,
                                  std::vector<size_t> key_cols) {
  KeyedRelation& kr = keyed_[ToUpper(relation)];
  kr.key_cols = std::move(key_cols);
}

EventBatch UpsertNormalizer::Normalize(EventBatch&& batch) {
  EventBatch out;
  for (EventBatch::Group& g : batch.groups()) {
    auto it = keyed_.find(ToUpper(g.relation));
    if (it == keyed_.end()) {
      for (size_t i = 0; i < g.rows; ++i) {
        out.Add(g.kind, g.relation, g.RowAt(i));
      }
      continue;
    }
    KeyedRelation& kr = it->second;
    for (size_t i = 0; i < g.rows; ++i) {
      Row row = g.RowAt(i);
      Row key;
      key.reserve(kr.key_cols.size());
      for (size_t c : kr.key_cols) {
        key.push_back(c < row.size() ? row[c] : Value(int64_t{0}));
      }
      auto cur = kr.current.find(key);
      if (g.kind == EventKind::kInsert) {
        if (cur != kr.current.end()) {
          if (RowEq{}(cur->second, row)) continue;  // duplicate insert
          out.AddDelete(g.relation, cur->second);   // upsert: replace
          cur->second = row;
        } else {
          kr.current.emplace(std::move(key), row);
        }
        out.AddInsert(g.relation, std::move(row));
      } else {
        // Deletes must name the live row; late/duplicated/reordered
        // deletes (unknown key or stale image) are dropped.
        if (cur == kr.current.end() || !RowEq{}(cur->second, row)) continue;
        kr.current.erase(cur);
        out.AddDelete(g.relation, std::move(row));
      }
    }
  }
  return out;
}

void UpsertNormalizer::Save(dbt::Ser* out) const {
  out->u64(keyed_.size());
  for (const auto& [name, kr] : keyed_) {
    out->str(name);
    out->u64(kr.key_cols.size());
    for (size_t c : kr.key_cols) out->u64(c);
    out->u64(kr.current.size());
    // std::unordered_map iteration order is not stable across processes;
    // the table is rebuilt entry-by-entry, so order does not matter.
    for (const auto& [key, row] : kr.current) {
      (void)key;  // keys re-derive by projection
      WriteRow(*out, row);
    }
  }
}

Status UpsertNormalizer::Load(dbt::Deser* in) {
  keyed_.clear();
  const uint64_t nrel = in->u64();
  for (uint64_t r = 0; r < nrel && in->ok(); ++r) {
    const std::string name = in->str();
    KeyedRelation& kr = keyed_[name];
    const uint64_t nkeys = in->u64();
    if (!in->ok() || nkeys > in->remaining()) {
      return Status::ParseError("upsert state: corrupt key column list");
    }
    kr.key_cols.reserve(static_cast<size_t>(nkeys));
    for (uint64_t k = 0; k < nkeys; ++k) {
      kr.key_cols.push_back(static_cast<size_t>(in->u64()));
    }
    const uint64_t nrows = in->u64();
    for (uint64_t i = 0; i < nrows && in->ok(); ++i) {
      Row row;
      if (!ReadRow(*in, &row)) {
        return Status::ParseError("upsert state: corrupt row");
      }
      Row key;
      key.reserve(kr.key_cols.size());
      for (size_t c : kr.key_cols) {
        key.push_back(c < row.size() ? row[c] : Value(int64_t{0}));
      }
      kr.current[std::move(key)] = std::move(row);
    }
  }
  if (!in->ok()) return Status::ParseError("upsert state: truncated");
  return Status::OK();
}

size_t UpsertNormalizer::live_rows(const std::string& relation) const {
  auto it = keyed_.find(ToUpper(relation));
  return it == keyed_.end() ? 0 : it->second.current.size();
}

// ---- CompiledProgramEngine ----------------------------------------------

namespace {

/// Convert a storage row to the generated-code value vector.
std::vector<dbt::Value> ToDbtValues(const Row& row) {
  std::vector<dbt::Value> out;
  out.reserve(row.size());
  for (const Value& v : row) {
    if (v.is_string()) {
      out.emplace_back(v.AsString());
    } else if (v.is_double()) {
      out.emplace_back(v.AsDouble());
    } else {
      out.emplace_back(v.AsInt());
    }
  }
  return out;
}

Value FromDbtValue(const dbt::Value& v) {
  if (std::holds_alternative<std::string>(v)) {
    return Value(std::get<std::string>(v));
  }
  if (std::holds_alternative<double>(v)) return Value(std::get<double>(v));
  return Value(std::get<int64_t>(v));
}

EventColumn::Tag FromDbtTag(dbt::EventColumn::Tag t) {
  switch (t) {
    case dbt::EventColumn::Tag::kF64: return EventColumn::Tag::kF64;
    case dbt::EventColumn::Tag::kStr: return EventColumn::Tag::kStr;
    default: return EventColumn::Tag::kI64;
  }
}

}  // namespace

CompiledProgramEngine::CompiledProgramEngine(dbt::StreamProgram* program,
                                             std::string name, BatchPath path)
    : program_(program), name_(std::move(name)), path_(path) {
  // Generated programs publish the catalog's relation layouts; arm the
  // boundary validator with them so malformed batches are rejected before
  // the typed handlers. Programs predating schema emission publish none
  // and keep the permissive boundary.
  for (const dbt::RelationSchema& rs : program_->relation_schemas()) {
    std::vector<EventColumn::Tag> lanes;
    lanes.reserve(rs.lanes.size());
    for (dbt::EventColumn::Tag t : rs.lanes) lanes.push_back(FromDbtTag(t));
    RegisterIngestSchema(rs.name, std::move(lanes));
  }
}

size_t CompiledProgramEngine::StateBytes() const {
  return program_->state_bytes();
}

Status CompiledProgramEngine::DoApplyBatch(EventBatch&& batch) {
  if (path_ == BatchPath::kRow) {
    // Reference path: per-event string dispatch through the row shim,
    // exercised by the differential harness and the row-vs-columnar bench.
    for (const EventBatch::Group& g : batch.groups()) {
      for (size_t i = 0; i < g.rows; ++i) {
        program_->on_event(g.relation, g.kind == EventKind::kInsert,
                           ToDbtValues(g.RowAt(i)));
      }
    }
    return Status::OK();
  }
  // Columnar path: the typed column storage moves across the boundary
  // unchanged (tags align by construction), no per-row Value conversion.
  dbt::EventBatch out;
  for (EventBatch::Group& g : batch.groups()) {
    dbt::EventBatch::Group og;
    og.relation = g.relation;
    og.is_insert = g.kind == EventKind::kInsert;
    og.rows = g.rows;
    og.cols.resize(g.cols.size());
    for (size_t c = 0; c < g.cols.size(); ++c) {
      EventColumn& in = g.cols[c];
      dbt::EventColumn& col = og.cols[c];
      switch (in.tag) {
        case EventColumn::Tag::kI64:
          col.tag = dbt::EventColumn::Tag::kI64;
          col.i64 = std::move(in.i64);
          break;
        case EventColumn::Tag::kF64:
          col.tag = dbt::EventColumn::Tag::kF64;
          col.f64 = std::move(in.f64);
          break;
        case EventColumn::Tag::kStr:
          col.tag = dbt::EventColumn::Tag::kStr;
          col.str = std::move(in.str);
          break;
      }
    }
    out.add_group(std::move(og));
  }
  program_->on_batch(out);
  return Status::OK();
}

Status CompiledProgramEngine::DoOnEvent(const Event& event) {
  program_->on_event(event.relation, event.kind == EventKind::kInsert,
                     ToDbtValues(event.tuple));
  return Status::OK();
}

Status CompiledProgramEngine::SaveState(dbt::Ser* out) const {
  if (!program_->save_state(*out)) {
    return Status::NotSupported("program '" + name_ +
                                "' was generated without state capture");
  }
  return Status::OK();
}

Status CompiledProgramEngine::LoadState(dbt::Deser* in) {
  if (!program_->load_state(*in)) {
    return Status::ParseError("program '" + name_ +
                              "' state restore failed (corrupt snapshot or "
                              "program generated without state capture)");
  }
  return Status::OK();
}

Result<exec::QueryResult> CompiledProgramEngine::View(
    const std::string& name) {
  bool known = false;
  for (const std::string& v : program_->view_names()) {
    if (v == name) {
      known = true;
      break;
    }
  }
  if (!known) return Status::NotFound("unknown view: " + name);
  exec::QueryResult out;
  out.column_names = program_->view_column_names(name);
  for (std::vector<dbt::Value>& row : program_->view_rows(name)) {
    Row r;
    r.reserve(row.size());
    for (const dbt::Value& v : row) r.push_back(FromDbtValue(v));
    out.rows.emplace_back(std::move(r), 1);
  }
  return out;
}

std::vector<std::string> CompiledProgramEngine::ViewNames() const {
  return program_->view_names();
}

Status CompiledProgramEngine::RenderViews(
    const std::vector<std::string>& names, std::vector<ViewRendering>* out) {
  // One pass over the program's maps via the generated snapshot-publish
  // hook, instead of a string-dispatched view_rows call per view.
  std::vector<dbt::ViewRows> snap = program_->publish_snapshot();
  out->reserve(names.size());
  for (const std::string& name : names) {
    dbt::ViewRows* found = nullptr;
    for (dbt::ViewRows& vr : snap) {
      if (vr.name == name) {
        found = &vr;
        break;
      }
    }
    if (found == nullptr) {
      return Status::NotFound("unknown view: " + name);
    }
    ViewRendering rendering;
    rendering.name = name;
    rendering.result.column_names = program_->view_column_names(name);
    rendering.result.rows.reserve(found->rows.size());
    for (std::vector<dbt::Value>& row : found->rows) {
      Row r;
      r.reserve(row.size());
      for (const dbt::Value& v : row) r.push_back(FromDbtValue(v));
      rendering.result.rows.emplace_back(std::move(r), 1);
    }
    out->push_back(std::move(rendering));
  }
  return Status::OK();
}

}  // namespace dbtoaster::runtime
