#include "src/runtime/stream_engine.h"

#include "src/codegen/dbtoaster_runtime.h"

namespace dbtoaster::runtime {

ShardPlan ShardPlan::Partition(const Row* tuples, size_t count,
                               const std::vector<size_t>& partition_cols) {
  ShardPlan plan;
  const size_t reserve = count / kNumShards + 4;
  for (auto& shard : plan.shards) shard.reserve(reserve);
  for (size_t i = 0; i < count; ++i) {
    size_t h;
    if (partition_cols.empty()) {
      h = RowHash{}(tuples[i]);
    } else {
      h = kHashSeed;
      for (size_t c : partition_cols) {
        h = HashCombine(h, tuples[i][c].Hash());
      }
    }
    plan.shards[dbt::ShardOfHash(h)].push_back(static_cast<uint32_t>(i));
  }
  return plan;
}

EventBatch EventBatch::Of(const Event& event) {
  EventBatch batch;
  batch.Add(event.kind, event.relation, event.tuple);
  return batch;
}

void EventBatch::Add(EventKind kind, const std::string& relation, Row tuple) {
  // Streams run long (relation, op) bursts; check the most recent group
  // first, then fall back to a scan (the group count is bounded by
  // 2 * #relations).
  if (!groups_.empty() && groups_.back().kind == kind &&
      groups_.back().relation == relation) {
    groups_.back().Add(tuple);
    ++events_;
    return;
  }
  for (Group& g : groups_) {
    if (g.kind == kind && g.relation == relation) {
      g.Add(tuple);
      ++events_;
      return;
    }
  }
  groups_.emplace_back(relation, kind);
  groups_.back().Add(tuple);
  ++events_;
}

Result<Value> StreamEngine::ViewScalar(const std::string& name) {
  DBT_ASSIGN_OR_RETURN(exec::QueryResult r, View(name));
  if (r.rows.size() != 1 || r.rows[0].first.size() != 1) {
    return Status::InvalidArgument("view is not single-valued: " + name);
  }
  return r.rows[0].first[0];
}

namespace {

/// Convert a storage row to the generated-code value vector.
std::vector<dbt::Value> ToDbtValues(const Row& row) {
  std::vector<dbt::Value> out;
  out.reserve(row.size());
  for (const Value& v : row) {
    if (v.is_string()) {
      out.emplace_back(v.AsString());
    } else if (v.is_double()) {
      out.emplace_back(v.AsDouble());
    } else {
      out.emplace_back(v.AsInt());
    }
  }
  return out;
}

Value FromDbtValue(const dbt::Value& v) {
  if (std::holds_alternative<std::string>(v)) {
    return Value(std::get<std::string>(v));
  }
  if (std::holds_alternative<double>(v)) return Value(std::get<double>(v));
  return Value(std::get<int64_t>(v));
}

}  // namespace

size_t CompiledProgramEngine::StateBytes() const {
  return program_->state_bytes();
}

Status CompiledProgramEngine::ApplyBatch(EventBatch&& batch) {
  if (path_ == BatchPath::kRow) {
    // Reference path: per-event string dispatch through the row shim,
    // exercised by the differential harness and the row-vs-columnar bench.
    for (const EventBatch::Group& g : batch.groups()) {
      for (size_t i = 0; i < g.rows; ++i) {
        program_->on_event(g.relation, g.kind == EventKind::kInsert,
                           ToDbtValues(g.RowAt(i)));
      }
    }
    return Status::OK();
  }
  // Columnar path: the typed column storage moves across the boundary
  // unchanged (tags align by construction), no per-row Value conversion.
  dbt::EventBatch out;
  for (EventBatch::Group& g : batch.groups()) {
    dbt::EventBatch::Group og;
    og.relation = g.relation;
    og.is_insert = g.kind == EventKind::kInsert;
    og.rows = g.rows;
    og.cols.resize(g.cols.size());
    for (size_t c = 0; c < g.cols.size(); ++c) {
      EventColumn& in = g.cols[c];
      dbt::EventColumn& col = og.cols[c];
      switch (in.tag) {
        case EventColumn::Tag::kI64:
          col.tag = dbt::EventColumn::Tag::kI64;
          col.i64 = std::move(in.i64);
          break;
        case EventColumn::Tag::kF64:
          col.tag = dbt::EventColumn::Tag::kF64;
          col.f64 = std::move(in.f64);
          break;
        case EventColumn::Tag::kStr:
          col.tag = dbt::EventColumn::Tag::kStr;
          col.str = std::move(in.str);
          break;
      }
    }
    out.add_group(std::move(og));
  }
  program_->on_batch(out);
  return Status::OK();
}

Status CompiledProgramEngine::OnEvent(const Event& event) {
  program_->on_event(event.relation, event.kind == EventKind::kInsert,
                     ToDbtValues(event.tuple));
  return Status::OK();
}

Result<exec::QueryResult> CompiledProgramEngine::View(
    const std::string& name) {
  bool known = false;
  for (const std::string& v : program_->view_names()) {
    if (v == name) {
      known = true;
      break;
    }
  }
  if (!known) return Status::NotFound("unknown view: " + name);
  exec::QueryResult out;
  out.column_names = program_->view_column_names(name);
  for (std::vector<dbt::Value>& row : program_->view_rows(name)) {
    Row r;
    r.reserve(row.size());
    for (const dbt::Value& v : row) r.push_back(FromDbtValue(v));
    out.rows.emplace_back(std::move(r), 1);
  }
  return out;
}

}  // namespace dbtoaster::runtime
