#include "src/runtime/ring_eval.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/str.h"

namespace dbtoaster::runtime {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

namespace {

bool IsZeroValue(const Value& v) { return v.is_numeric() && v.IsZero(); }

Value CompareValues(sql::BinOp op, const Value& l, const Value& r) {
  bool truth = false;
  switch (op) {
    case sql::BinOp::kEq: truth = l == r; break;
    case sql::BinOp::kNeq: truth = l != r; break;
    case sql::BinOp::kLt: truth = l < r; break;
    case sql::BinOp::kLe: truth = l <= r; break;
    case sql::BinOp::kGt: truth = l > r; break;
    case sql::BinOp::kGe: truth = l >= r; break;
    case sql::BinOp::kLike:
      truth = l.is_string() && r.is_string() &&
              LikeMatch(l.AsString(), r.AsString());
      break;
    case sql::BinOp::kNotLike:
      truth = l.is_string() && r.is_string() &&
              !LikeMatch(l.AsString(), r.AsString());
      break;
    default:
      assert(false && "non-comparison op");
  }
  return Value(truth ? int64_t{1} : int64_t{0});
}

}  // namespace

std::string Keyed::ToString() const {
  std::string s = "[" + Join(vars, ", ") + "] {";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i) s += ", ";
    s += RowToString(entries[i].first) + " -> " +
         entries[i].second.ToString();
  }
  s += "}";
  return s;
}

Result<Value> RingEvaluator::EvalTerm(const TermPtr& t, const Bindings& env,
                                      bool store_init) {
  switch (t->kind) {
    case Term::Kind::kConst:
      return t->constant;
    case Term::Kind::kVar: {
      auto it = env.find(t->var);
      if (it == env.end()) {
        return Status::Internal("unbound variable in term: " + t->var);
      }
      return it->second;
    }
    case Term::Kind::kMapRead: {
      Row key;
      key.reserve(t->args.size());
      for (const TermPtr& a : t->args) {
        DBT_ASSIGN_OR_RETURN(Value v, EvalTerm(a, env, store_init));
        key.push_back(std::move(v));
      }
      return store_->ReadMap(t->map_name, key, store_init);
    }
    case Term::Kind::kFunc1: {
      DBT_ASSIGN_OR_RETURN(Value a, EvalTerm(t->lhs, env, store_init));
      if (!a.is_numeric()) {
        return Status::TypeError("EXTRACT over non-date value");
      }
      return ring::EvalFunc1(t->func, a);
    }
    default: {
      DBT_ASSIGN_OR_RETURN(Value l, EvalTerm(t->lhs, env, store_init));
      DBT_ASSIGN_OR_RETURN(Value r, EvalTerm(t->rhs, env, store_init));
      switch (t->kind) {
        case Term::Kind::kAdd: return Value::Add(l, r);
        case Term::Kind::kSub: return Value::Sub(l, r);
        case Term::Kind::kMul: return Value::Mul(l, r);
        case Term::Kind::kDiv: return Value::Div(l, r);
        default:
          return Status::Internal("unhandled term kind");
      }
    }
  }
}

Result<Keyed> RingEvaluator::Eval(const ExprPtr& e, const Bindings& env,
                                  bool store_init) {
  switch (e->kind) {
    case ring::ExprKind::kConst: {
      Keyed out;
      if (!IsZeroValue(e->constant)) out.entries.push_back({{}, e->constant});
      return out;
    }
    case ring::ExprKind::kValTerm: {
      DBT_ASSIGN_OR_RETURN(Value v, EvalTerm(e->term, env, store_init));
      Keyed out;
      if (!IsZeroValue(v)) out.entries.push_back({{}, v});
      return out;
    }
    case ring::ExprKind::kCmp: {
      DBT_ASSIGN_OR_RETURN(Value l, EvalTerm(e->cmp_lhs, env, store_init));
      DBT_ASSIGN_OR_RETURN(Value r, EvalTerm(e->cmp_rhs, env, store_init));
      Keyed out;
      Value v = CompareValues(e->cmp_op, l, r);
      if (!IsZeroValue(v)) out.entries.push_back({{}, v});
      return out;
    }
    case ring::ExprKind::kLift: {
      DBT_ASSIGN_OR_RETURN(Value v, EvalTerm(e->term, env, store_init));
      auto it = env.find(e->var);
      Keyed out;
      if (it != env.end()) {
        // Bound target: equality filter.
        if (it->second == v) out.entries.push_back({{}, Value(int64_t{1})});
        return out;
      }
      out.vars.push_back(e->var);
      out.entries.push_back({{std::move(v)}, Value(int64_t{1})});
      return out;
    }
    case ring::ExprKind::kRel: {
      const Table* table = store_->FindRelation(e->name);
      if (table == nullptr) {
        return Status::NotFound("unknown relation at runtime: " + e->name);
      }
      // Determine bound positions; detect intra-atom duplicates.
      std::vector<const Value*> bound(e->args.size(), nullptr);
      std::vector<int> first_pos(e->args.size(), -1);
      Keyed out;
      std::vector<size_t> unbound_pos;
      std::map<std::string, size_t> seen_var;
      for (size_t i = 0; i < e->args.size(); ++i) {
        auto it = env.find(e->args[i]);
        if (it != env.end()) {
          bound[i] = &it->second;
          continue;
        }
        auto sv = seen_var.find(e->args[i]);
        if (sv != seen_var.end()) {
          first_pos[i] = static_cast<int>(sv->second);
          continue;
        }
        seen_var[e->args[i]] = i;
        unbound_pos.push_back(i);
        out.vars.push_back(e->args[i]);
      }
      // Fully bound and no duplicates: direct multiplicity lookup.
      if (unbound_pos.empty() &&
          std::all_of(first_pos.begin(), first_pos.end(),
                      [](int p) { return p < 0; })) {
        Row key;
        key.reserve(e->args.size());
        for (size_t i = 0; i < e->args.size(); ++i) key.push_back(*bound[i]);
        int64_t mult = table->Multiplicity(key);
        if (mult != 0) out.entries.push_back({{}, Value(mult)});
        return out;
      }
      // Partially bound: prefer an index lookup when the store offers one.
      const Multiset* rows = &table->rows();
      std::vector<size_t> bpos;
      Row bkey;
      for (size_t i = 0; i < e->args.size(); ++i) {
        if (bound[i] != nullptr) {
          bpos.push_back(i);
          bkey.push_back(*bound[i]);
        }
      }
      const Multiset* indexed =
          bpos.empty() ? nullptr : store_->LookupRelIndex(e->name, bpos, bkey);
      if (indexed != nullptr) rows = indexed;
      for (const auto& [row, mult] : *rows) {
        bool ok = true;
        for (size_t i = 0; i < e->args.size() && ok; ++i) {
          if (bound[i] != nullptr) {
            ok = row[i] == *bound[i];
          } else if (first_pos[i] >= 0) {
            ok = row[i] == row[static_cast<size_t>(first_pos[i])];
          }
        }
        if (!ok) continue;
        Row key;
        key.reserve(unbound_pos.size());
        for (size_t p : unbound_pos) key.push_back(row[p]);
        out.entries.push_back({std::move(key), Value(mult)});
      }
      return out;
    }
    case ring::ExprKind::kMapRef: {
      // Like kRel but values come from the aggregate map.
      std::vector<const Value*> bound(e->args.size(), nullptr);
      std::vector<int> first_pos(e->args.size(), -1);
      Keyed out;
      std::vector<size_t> unbound_pos;
      std::map<std::string, size_t> seen_var;
      for (size_t i = 0; i < e->args.size(); ++i) {
        auto it = env.find(e->args[i]);
        if (it != env.end()) {
          bound[i] = &it->second;
          continue;
        }
        auto sv = seen_var.find(e->args[i]);
        if (sv != seen_var.end()) {
          first_pos[i] = static_cast<int>(sv->second);
          continue;
        }
        seen_var[e->args[i]] = i;
        unbound_pos.push_back(i);
        out.vars.push_back(e->args[i]);
      }
      if (unbound_pos.empty() &&
          std::all_of(first_pos.begin(), first_pos.end(),
                      [](int p) { return p < 0; })) {
        Row key;
        key.reserve(e->args.size());
        for (size_t i = 0; i < e->args.size(); ++i) key.push_back(*bound[i]);
        DBT_ASSIGN_OR_RETURN(Value v,
                             store_->ReadMap(e->name, key, store_init));
        if (!IsZeroValue(v)) out.entries.push_back({{}, std::move(v)});
        return out;
      }
      const ValueMap* vm = store_->FindMap(e->name);
      if (vm == nullptr) {
        return Status::NotFound("unknown map at runtime: " + e->name);
      }
      // Prefer a slice index for the bound positions (the generated code's
      // secondary indexes; the interpreter gets the same structure from the
      // engine). Index entries may be stale — values are re-read.
      std::vector<size_t> bpos;
      Row bkey;
      for (size_t i = 0; i < e->args.size(); ++i) {
        if (bound[i] != nullptr) {
          bpos.push_back(i);
          bkey.push_back(*bound[i]);
        }
      }
      if (!bpos.empty()) {
        const auto* slice = store_->LookupMapSlice(e->name, bpos, bkey);
        if (slice != nullptr) {
          for (const Row& row : *slice) {
            Value value = vm->Get(row);
            if (value.is_numeric() && value.IsZero()) continue;  // stale
            bool ok = true;
            for (size_t i = 0; i < e->args.size() && ok; ++i) {
              if (first_pos[i] >= 0) {
                ok = row[i] == row[static_cast<size_t>(first_pos[i])];
              }
            }
            if (!ok) continue;
            Row key;
            key.reserve(unbound_pos.size());
            for (size_t p : unbound_pos) key.push_back(row[p]);
            out.entries.push_back({std::move(key), std::move(value)});
          }
          return out;
        }
      }
      for (const auto& [row, value] : vm->entries()) {
        bool ok = true;
        for (size_t i = 0; i < e->args.size() && ok; ++i) {
          if (bound[i] != nullptr) {
            ok = row[i] == *bound[i];
          } else if (first_pos[i] >= 0) {
            ok = row[i] == row[static_cast<size_t>(first_pos[i])];
          }
        }
        if (!ok) continue;
        Row key;
        key.reserve(unbound_pos.size());
        for (size_t p : unbound_pos) key.push_back(row[p]);
        out.entries.push_back({std::move(key), value});
      }
      return out;
    }
    case ring::ExprKind::kNeg: {
      DBT_ASSIGN_OR_RETURN(Keyed k, Eval(e->children[0], env, store_init));
      for (auto& [row, v] : k.entries) v = Value::Neg(v);
      return k;
    }
    case ring::ExprKind::kSum: {
      // All children must agree on their unbound variable sets.
      Keyed out;
      bool first = true;
      for (const ExprPtr& c : e->children) {
        DBT_ASSIGN_OR_RETURN(Keyed k, Eval(c, env, store_init));
        if (first) {
          out.vars = k.vars;
          first = false;
        }
        if (k.vars == out.vars) {
          for (auto& entry : k.entries) out.entries.push_back(std::move(entry));
          continue;
        }
        // An empty branch may have lost its variable schema (empty scans
        // short-circuit the product evaluator); it contributes nothing.
        if (k.entries.empty()) continue;
        if (out.entries.empty() && out.vars.empty()) {
          out.vars = k.vars;
          for (auto& entry : k.entries) out.entries.push_back(std::move(entry));
          continue;
        }
        // Variable sets may differ in order; reorder columns.
        std::set<std::string> a(k.vars.begin(), k.vars.end());
        std::set<std::string> b(out.vars.begin(), out.vars.end());
        if (a != b) {
          return Status::Internal(
              "heterogeneous sum branches at runtime: [" +
              Join(k.vars, ",") + "] vs [" + Join(out.vars, ",") + "]");
        }
        std::vector<size_t> perm;
        for (const std::string& v : out.vars) {
          perm.push_back(static_cast<size_t>(
              std::find(k.vars.begin(), k.vars.end(), v) - k.vars.begin()));
        }
        for (auto& [row, val] : k.entries) {
          Row reordered;
          reordered.reserve(row.size());
          for (size_t p : perm) reordered.push_back(row[p]);
          out.entries.push_back({std::move(reordered), std::move(val)});
        }
      }
      return out;
    }
    case ring::ExprKind::kProd:
      return EvalProd(e->children, env, store_init);
    case ring::ExprKind::kAggSum: {
      DBT_ASSIGN_OR_RETURN(Keyed inner,
                           Eval(e->children[0], env, store_init));
      Keyed out;
      // An empty inner result may have lost its variable schema (empty
      // scans short-circuit the product evaluator): reconstruct the output
      // schema from the group list so enclosing sums stay well-formed.
      if (inner.entries.empty()) {
        for (const std::string& g : e->group_vars) {
          if (std::find(inner.vars.begin(), inner.vars.end(), g) !=
                  inner.vars.end() ||
              env.find(g) == env.end()) {
            out.vars.push_back(g);
          }
        }
        return out;
      }
      // Group variables bound by the environment are constants here; only
      // unbound ones key the result.
      std::vector<int> src;  // position in inner.vars, or -1 (env-bound)
      std::vector<const Value*> env_vals;
      for (const std::string& g : e->group_vars) {
        auto pos = std::find(inner.vars.begin(), inner.vars.end(), g);
        if (pos != inner.vars.end()) {
          out.vars.push_back(g);
          src.push_back(static_cast<int>(pos - inner.vars.begin()));
        } else {
          auto it = env.find(g);
          if (it == env.end()) {
            return Status::Internal("unbound group variable at runtime: " + g);
          }
          // Env-bound: constant across all entries; skip from the key.
        }
      }
      std::unordered_map<Row, Value, RowHash, RowEq> groups;
      for (auto& [row, val] : inner.entries) {
        Row key;
        key.reserve(src.size());
        for (int p : src) key.push_back(row[static_cast<size_t>(p)]);
        auto [it, inserted] = groups.emplace(std::move(key), val);
        if (!inserted) it->second = Value::Add(it->second, val);
      }
      out.entries.reserve(groups.size());
      for (auto& [key, val] : groups) {
        if (IsZeroValue(val)) continue;
        out.entries.push_back({key, std::move(val)});
      }
      return out;
    }
  }
  return Status::Internal("unhandled expression kind at runtime");
}

Result<Keyed> RingEvaluator::EvalProd(const std::vector<ExprPtr>& factors,
                                      const Bindings& env, bool store_init) {
  // Greedy factor ordering: repeatedly pick the cheapest evaluable factor.
  std::set<std::string> bound;
  for (const auto& [k, v] : env) bound.insert(k);

  std::vector<bool> placed(factors.size(), false);
  std::vector<size_t> order;
  for (size_t step = 0; step < factors.size(); ++step) {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < factors.size(); ++i) {
      if (placed[i]) continue;
      const ExprPtr& f = factors[i];
      bool inputs_ok = true;
      for (const std::string& v : f->InVars()) {
        if (!bound.count(v)) {
          inputs_ok = false;
          break;
        }
      }
      if (!inputs_ok) continue;
      bool outputs_bound = true;
      for (const std::string& v : f->OutVars()) {
        if (!bound.count(v)) {
          outputs_bound = false;
          break;
        }
      }
      // Scores: filters/lookups (all vars bound) first, then binders
      // (lifts), then keyed atoms, then scans.
      int score;
      if (outputs_bound) {
        score = 100;  // pure filter or lookup
      } else if (f->kind == ring::ExprKind::kLift) {
        score = 90;
      } else if (f->kind == ring::ExprKind::kMapRef ||
                 f->kind == ring::ExprKind::kRel) {
        // Prefer more-bound atoms (fewer unbound args => smaller slice).
        int bound_args = 0;
        for (const std::string& v : f->args) {
          if (bound.count(v)) ++bound_args;
        }
        score = 50 + bound_args;
      } else {
        score = 40;  // AggSum or others that bind
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      return Status::Internal(
          "no evaluable factor (unbound inputs) in product");
    }
    placed[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
    for (const std::string& v : factors[static_cast<size_t>(best)]->OutVars()) {
      bound.insert(v);
    }
  }

  Keyed acc;
  acc.entries.push_back({{}, Value(int64_t{1})});
  Bindings scratch = env;
  for (size_t fi : order) {
    const ExprPtr& f = factors[fi];
    Keyed next;
    // The accumulated variables stay; the factor appends its unbound vars.
    for (auto& [row, val] : acc.entries) {
      // Bind accumulated values.
      for (size_t i = 0; i < acc.vars.size(); ++i) {
        scratch[acc.vars[i]] = row[i];
      }
      DBT_ASSIGN_OR_RETURN(Keyed sub, Eval(f, scratch, store_init));
      if (next.vars.empty() && !sub.vars.empty()) {
        next.vars = acc.vars;
        next.vars.insert(next.vars.end(), sub.vars.begin(), sub.vars.end());
      }
      for (auto& [srow, sval] : sub.entries) {
        Value combined = Value::Mul(val, sval);
        if (IsZeroValue(combined)) continue;
        Row nrow = row;
        nrow.insert(nrow.end(), srow.begin(), srow.end());
        next.entries.push_back({std::move(nrow), std::move(combined)});
      }
      // Restore scratch bindings for the next accumulated row (values are
      // overwritten on each iteration; no removal needed since vars are
      // identical across rows).
    }
    if (next.vars.empty()) next.vars = acc.vars;
    // Remove bindings of accumulated vars from scratch for correctness of
    // future iterations (vars persist across factors, so keep them).
    acc = std::move(next);
    if (acc.entries.empty()) break;
  }
  return acc;
}

Result<Value> RingEvaluator::EvalScalar(const ExprPtr& e, const Bindings& env,
                                        bool store_init) {
  DBT_ASSIGN_OR_RETURN(Keyed k, Eval(e, env, store_init));
  if (!k.vars.empty()) {
    return Status::Internal("EvalScalar on expression with unbound outputs");
  }
  Value sum(int64_t{0});
  for (const auto& [row, v] : k.entries) sum = Value::Add(sum, v);
  return sum;
}

}  // namespace dbtoaster::runtime
