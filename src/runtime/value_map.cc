#include "src/runtime/value_map.h"

namespace dbtoaster::runtime {

Value ValueMap::Get(const Row& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return TypedZero();
  return it->second;
}

void ValueMap::Add(const Row& key, const Value& delta) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (delta.is_numeric() && delta.IsZero()) return;
    Value v = value_type_ == Type::kDouble ? Value(delta.AsDouble()) : delta;
    entries_.emplace(key, std::move(v));
    return;
  }
  it->second = Value::Add(it->second, delta);
  if (it->second.is_int() && it->second.AsInt() == 0) entries_.erase(it);
}

void ValueMap::Set(const Row& key, Value value) {
  if (value.is_int() && value.AsInt() == 0) {
    entries_.erase(key);
    return;
  }
  entries_[key] = std::move(value);
}

size_t ValueMap::MemoryBytes() const {
  size_t bytes = sizeof(ValueMap);
  for (const auto& [key, value] : entries_) {
    bytes += key.capacity() * sizeof(Value) + sizeof(Value) + 16;
    for (const Value& v : key) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
    if (value.is_string()) bytes += value.AsString().capacity();
  }
  return bytes;
}

void ExtremeMap::Add(const Row& key, const Value& v) {
  groups_[key][v] += 1;
}

void ExtremeMap::Remove(const Row& key, const Value& v) {
  auto git = groups_.find(key);
  if (git == groups_.end()) return;
  auto vit = git->second.find(v);
  if (vit == git->second.end()) return;
  if (--vit->second <= 0) git->second.erase(vit);
  if (git->second.empty()) groups_.erase(git);
}

std::optional<Value> ExtremeMap::Min(const Row& key) const {
  auto git = groups_.find(key);
  if (git == groups_.end() || git->second.empty()) return std::nullopt;
  return git->second.begin()->first;
}

std::optional<Value> ExtremeMap::Max(const Row& key) const {
  auto git = groups_.find(key);
  if (git == groups_.end() || git->second.empty()) return std::nullopt;
  return git->second.rbegin()->first;
}

size_t ExtremeMap::size() const {
  size_t n = 0;
  for (const auto& [key, ms] : groups_) n += ms.size();
  return n;
}

size_t ExtremeMap::MemoryBytes() const {
  size_t bytes = sizeof(ExtremeMap);
  for (const auto& [key, ms] : groups_) {
    bytes += key.capacity() * sizeof(Value) + 16;
    bytes += ms.size() * (sizeof(Value) + sizeof(int64_t) + 48);
  }
  return bytes;
}

}  // namespace dbtoaster::runtime
