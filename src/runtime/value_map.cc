#include "src/runtime/value_map.h"

namespace dbtoaster::runtime {

Value ValueMap::Get(const Row& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return TypedZero();
  return it->second;
}

void ValueMap::Add(const Row& key, const Value& delta) {
  // Zero deltas never change an entry (stored int values are nonzero by
  // invariant, double entries are kept): skip the probe entirely.
  if (delta.is_numeric() && delta.IsZero()) return;
  // Single find-or-insert probe: updates are the hot path of every trigger
  // execution (bench_map_ops measures this directly).
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    it->second =
        value_type_ == Type::kDouble ? Value(delta.AsDouble()) : delta;
    return;
  }
  it->second = Value::Add(it->second, delta);
  if (it->second.is_int() && it->second.AsInt() == 0) entries_.erase(it);
}

void ValueMap::Set(const Row& key, Value value) {
  if (value.is_int() && value.AsInt() == 0) {
    entries_.erase(key);
    return;
  }
  entries_.insert_or_assign(key, std::move(value));
}

size_t ValueMap::MemoryBytes() const {
  size_t bytes = sizeof(ValueMap);
  for (const auto& [key, value] : entries_) {
    bytes += key.capacity() * sizeof(Value) + sizeof(Value) + 16;
    for (const Value& v : key) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
    if (value.is_string()) bytes += value.AsString().capacity();
  }
  return bytes;
}

void ExtremeMap::Add(const Row& key, const Value& v) { Bump(key, v, +1); }

void ExtremeMap::Remove(const Row& key, const Value& v) { Bump(key, v, -1); }

void ExtremeMap::Bump(const Row& key, const Value& v, int64_t delta) {
  auto& group = groups_[key];
  auto [it, inserted] = group.try_emplace(v, delta);
  if (!inserted && (it->second += delta) == 0) group.erase(it);
  if (group.empty()) groups_.erase(key);
}

std::optional<Value> ExtremeMap::Min(const Row& key) const {
  auto git = groups_.find(key);
  if (git == groups_.end()) return std::nullopt;
  for (const auto& [value, count] : git->second) {
    if (count > 0) return value;
  }
  return std::nullopt;
}

std::optional<Value> ExtremeMap::Max(const Row& key) const {
  auto git = groups_.find(key);
  if (git == groups_.end()) return std::nullopt;
  for (auto it = git->second.rbegin(); it != git->second.rend(); ++it) {
    if (it->second > 0) return it->first;
  }
  return std::nullopt;
}

size_t ExtremeMap::size() const {
  size_t n = 0;
  for (const auto& [key, ms] : groups_) {
    for (const auto& [value, count] : ms) {
      if (count > 0) ++n;
    }
  }
  return n;
}

size_t ExtremeMap::MemoryBytes() const {
  size_t bytes = sizeof(ExtremeMap);
  for (const auto& [key, ms] : groups_) {
    bytes += key.capacity() * sizeof(Value) + 16;
    bytes += ms.size() * (sizeof(Value) + sizeof(int64_t) + 48);
  }
  return bytes;
}

}  // namespace dbtoaster::runtime
