#include "src/runtime/value_map.h"

namespace dbtoaster::runtime {

Value ValueMap::Get(const Row& key) const {
  const Value* v = entries_.find(key);
  return v == nullptr ? TypedZero() : *v;
}

void ValueMap::Add(const Row& key, const Value& delta) {
  // Zero deltas never change an entry (stored int values are nonzero by
  // invariant, double entries are kept): skip the probe entirely.
  if (delta.is_numeric() && delta.IsZero()) return;
  // Single find-or-insert probe: updates are the hot path of every trigger
  // execution (bench_map_ops measures this directly).
  auto [i, inserted] = entries_.try_emplace(key);
  if (inserted) {
    entries_.value_at(i) =
        value_type_ == Type::kDouble ? Value(delta.AsDouble()) : delta;
    return;
  }
  Value& val = entries_.value_at(i);
  val = Value::Add(val, delta);
  if (val.is_int() && val.AsInt() == 0) entries_.erase_at(i);
}

void ValueMap::Set(const Row& key, Value value) {
  if (value.is_int() && value.AsInt() == 0) {
    entries_.erase(key);
    return;
  }
  auto [i, inserted] =
      entries_.try_emplace_with(key, [&] { return std::move(value); });
  if (!inserted) entries_.value_at(i) = std::move(value);
}

size_t ValueMap::MemoryBytes() const {
  // Slab-resident footprint (probe arrays, recycled chunks) plus the heap
  // payloads reachable from the entries: row storage and spilled strings.
  size_t bytes = sizeof(ValueMap) + entries_.pool_bytes();
  for (const auto& [key, value] : entries_) {
    bytes += key.capacity() * sizeof(Value);
    for (const Value& v : key) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
    if (value.is_string()) bytes += value.AsString().capacity();
  }
  return bytes;
}

void ExtremeMap::Add(const Row& key, const Value& v) { Bump(key, v, +1); }

void ExtremeMap::Remove(const Row& key, const Value& v) { Bump(key, v, -1); }

void ExtremeMap::Bump(const Row& key, const Value& v, int64_t delta) {
  auto [i, inserted] = groups_.try_emplace(key);
  Group& g = groups_.value_at(i);
  auto [it, vnew] = g.counts.try_emplace(v, 0);
  const int64_t before = it->second;
  const int64_t after = (it->second += delta);
  const int64_t live_delta =
      static_cast<int64_t>(after > 0) - static_cast<int64_t>(before > 0);
  g.live += live_delta;
  total_live_ += live_delta;
  if (after == 0) g.counts.erase(it);
  if (g.counts.empty()) groups_.erase_at(i);
}

std::optional<Value> ExtremeMap::Min(const Row& key) const {
  const Group* g = groups_.find(key);
  if (g == nullptr || g->live == 0) return std::nullopt;
  for (const auto& [value, count] : g->counts) {
    if (count > 0) return value;
  }
  return std::nullopt;
}

std::optional<Value> ExtremeMap::Max(const Row& key) const {
  const Group* g = groups_.find(key);
  if (g == nullptr || g->live == 0) return std::nullopt;
  for (auto it = g->counts.rbegin(); it != g->counts.rend(); ++it) {
    if (it->second > 0) return it->first;
  }
  return std::nullopt;
}

size_t ExtremeMap::MemoryBytes() const {
  size_t bytes = sizeof(ExtremeMap) + groups_.pool_bytes();
  for (const auto& [key, g] : groups_) {
    bytes += key.capacity() * sizeof(Value);
    bytes += g.counts.size() * (sizeof(Value) + sizeof(int64_t) + 40);
  }
  return bytes;
}

}  // namespace dbtoaster::runtime
