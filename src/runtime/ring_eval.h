// Ring-expression evaluator: the interpreter for trigger right-hand sides,
// map initialisers, hybrid re-evaluation statements and view column terms.
//
// An expression is evaluated under an environment of bound variables to a
// keyed multiset: entries over the expression's unbound output variables,
// each carrying a ring value. Products are evaluated as generalized joins
// with a greedy factor ordering (bound atoms become lookups, unbound atoms
// become scans/slices, lifts bind, comparisons filter).
#ifndef DBTOASTER_RUNTIME_RING_EVAL_H_
#define DBTOASTER_RUNTIME_RING_EVAL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/ring/expr.h"
#include "src/runtime/value_map.h"
#include "src/storage/table.h"

namespace dbtoaster::runtime {

/// Variable environment.
using Bindings = std::unordered_map<std::string, Value>;

/// Read access to maps and base relations during evaluation. Implemented by
/// the Engine (with init-on-first-access) and by tests directly.
class MapStore {
 public:
  virtual ~MapStore() = default;

  /// Value of map[key]; missing keys yield the map's typed zero, or its
  /// evaluated initialiser for init-on-access maps. `store_init` controls
  /// whether a computed initialiser may be cached into the map (true only
  /// in post-state phases).
  virtual Result<Value> ReadMap(const std::string& map, const Row& key,
                                bool store_init) = 0;

  /// The live map for slice iteration; null if unknown.
  virtual const ValueMap* FindMap(const std::string& map) const = 0;

  /// Base relation multiset for Rel atoms; null if unknown.
  virtual const Table* FindRelation(const std::string& rel) const = 0;

  /// Optional secondary-index hook: the sub-multiset of `rel` whose columns
  /// at `positions` equal `key`, or null when no index is available (the
  /// evaluator then scans). Engines that maintain base-table indexes (the
  /// IVM-1 baseline) override this.
  virtual const Multiset* LookupRelIndex(
      const std::string& /*rel*/, const std::vector<size_t>& /*positions*/,
      const Row& /*key*/) {
    return nullptr;
  }

  /// Optional map slice index: the set of full keys of `map` whose positions
  /// `positions` equal `key`. May contain stale keys for erased entries
  /// (callers re-check values); null when unavailable (evaluator scans).
  virtual const std::unordered_set<Row, RowHash, RowEq>* LookupMapSlice(
      const std::string& /*map*/, const std::vector<size_t>& /*positions*/,
      const Row& /*key*/) {
    return nullptr;
  }
};

/// Evaluation result: entries over `vars` (possibly with duplicate keys;
/// callers aggregate as needed).
struct Keyed {
  std::vector<std::string> vars;
  std::vector<std::pair<Row, Value>> entries;

  std::string ToString() const;
};

class RingEvaluator {
 public:
  explicit RingEvaluator(MapStore* store) : store_(store) {}

  /// Evaluate `e` under `env`. `store_init` is forwarded to map reads.
  Result<Keyed> Eval(const ring::ExprPtr& e, const Bindings& env,
                     bool store_init);

  /// Evaluate a fully-bound expression to a single value (entries summed).
  Result<Value> EvalScalar(const ring::ExprPtr& e, const Bindings& env,
                           bool store_init);

  /// Evaluate a value term (variables + map reads).
  Result<Value> EvalTerm(const ring::TermPtr& t, const Bindings& env,
                         bool store_init);

 private:
  Result<Keyed> EvalProd(const std::vector<ring::ExprPtr>& factors,
                         const Bindings& env, bool store_init);

  MapStore* store_;
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_RING_EVAL_H_
