#include "src/runtime/batch_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/str.h"
#include "src/runtime/checkpoint.h"

namespace dbtoaster::runtime {

void SerializeBatch(const EventBatch& batch, dbt::Ser* out) {
  out->u64(batch.groups().size());
  for (const EventBatch::Group& g : batch.groups()) {
    out->str(g.relation);
    out->u8(g.kind == EventKind::kInsert ? 0 : 1);
    out->u64(g.rows);
    out->u64(g.cols.size());
    for (const EventColumn& c : g.cols) {
      out->u8(static_cast<uint8_t>(c.tag));
      switch (c.tag) {
        case EventColumn::Tag::kI64:
          for (int64_t v : c.i64) out->i64(v);
          break;
        case EventColumn::Tag::kF64:
          for (double v : c.f64) out->f64(v);
          break;
        case EventColumn::Tag::kStr:
          for (const std::string& v : c.str) out->str(v);
          break;
      }
    }
  }
}

Status DeserializeBatch(dbt::Deser* in, EventBatch* out) {
  out->Clear();
  const uint64_t ngroups = in->u64();
  if (!in->ok() || ngroups > in->remaining()) {
    return Status::ParseError("batch: corrupt group count");
  }
  for (uint64_t gi = 0; gi < ngroups; ++gi) {
    const std::string relation = in->str();
    const uint8_t kind_tag = in->u8();
    const uint64_t rows = in->u64();
    const uint64_t ncols = in->u64();
    if (!in->ok() || kind_tag > 1 || ncols > in->remaining()) {
      return Status::ParseError("batch: corrupt group header");
    }
    const EventKind kind =
        kind_tag == 0 ? EventKind::kInsert : EventKind::kDelete;
    // Decode typed lanes, then re-add row-wise: groups are unique per
    // (relation, op), so Add() reassembles the identical batch.
    std::vector<EventColumn> cols(static_cast<size_t>(ncols));
    for (EventColumn& c : cols) {
      const uint8_t tag = in->u8();
      if (!in->ok() || tag > 2) {
        return Status::ParseError("batch: corrupt column tag");
      }
      c.tag = static_cast<EventColumn::Tag>(tag);
      switch (c.tag) {
        case EventColumn::Tag::kI64:
          if (rows * sizeof(int64_t) > in->remaining()) {
            return Status::ParseError("batch: truncated i64 lane");
          }
          c.i64.reserve(static_cast<size_t>(rows));
          for (uint64_t i = 0; i < rows; ++i) c.i64.push_back(in->i64());
          break;
        case EventColumn::Tag::kF64:
          if (rows * sizeof(double) > in->remaining()) {
            return Status::ParseError("batch: truncated f64 lane");
          }
          c.f64.reserve(static_cast<size_t>(rows));
          for (uint64_t i = 0; i < rows; ++i) c.f64.push_back(in->f64());
          break;
        case EventColumn::Tag::kStr:
          for (uint64_t i = 0; i < rows && in->ok(); ++i) {
            c.str.push_back(in->str());
          }
          break;
      }
      if (!in->ok()) return Status::ParseError("batch: truncated lane");
    }
    for (uint64_t i = 0; i < rows; ++i) {
      Row row;
      row.reserve(cols.size());
      for (const EventColumn& c : cols) {
        row.push_back(c.Get(static_cast<size_t>(i)));
      }
      out->Add(kind, relation, std::move(row));
    }
  }
  return Status::OK();
}

// ---- BatchLogWriter -----------------------------------------------------

Status BatchLogWriter::Open(const std::string& path, int64_t truncate_to) {
  Close();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("batch log: cannot open '%s': %s",
                                      path.c_str(), std::strerror(errno)));
  }
  if (truncate_to >= 0) {
    if (::ftruncate(fd, truncate_to) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("batch log: truncate '%s' failed: %s",
                                        path.c_str(), std::strerror(err)));
    }
    // Make the truncation durable before new records land after it.
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("batch log: fsync '%s' failed: %s",
                                        path.c_str(), std::strerror(err)));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("batch log: seek '%s' failed: %s",
                                      path.c_str(), std::strerror(err)));
  }
  // A freshly created log only survives a crash once its directory entry
  // is on disk, same as the checkpoint rename.
  Status dir = FsyncParentDir(path);
  if (!dir.ok()) {
    ::close(fd);
    return dir;
  }
  fd_ = fd;
  since_sync_ = 0;
  failed_ = false;
  rollback_ok_ = true;
  return Status::OK();
}

Status BatchLogWriter::Append(uint64_t epoch, const EventBatch& batch) {
  if (fd_ < 0) return Status::Internal("batch log: append on closed log");
  if (failed_) {
    return Status::Internal(
        rollback_ok_
            ? "batch log: writer failed; Sync() to confirm rollback first"
            : "batch log: writer failed and rollback failed; reopen the log");
  }
  dbt::Ser payload;
  payload.u64(epoch);
  SerializeBatch(batch, &payload);

  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = dbt::Crc32(payload.data().data(), payload.size());
  std::string frame;
  frame.reserve(sizeof(len) + sizeof(crc) + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(payload.data());

  const off_t start = ::lseek(fd_, 0, SEEK_CUR);
  if (start < 0) {
    return Status::Internal(
        StrFormat("batch log: tell failed: %s", std::strerror(errno)));
  }
  size_t off = 0;
  while (off < frame.size()) {
    size_t want = frame.size() - off;
    ssize_t n;
    if (write_limit_ == 0) {  // injected full-disk: write() rejects outright
      errno = ENOSPC;
      n = -1;
    } else {
      if (want > write_limit_) want = write_limit_;
      n = ::write(fd_, frame.data() + off, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      // Roll the partial frame back: leaving it in place would strand every
      // later record behind a frame the untrusting reader refuses to cross.
      failed_ = true;
      rollback_ok_ = ::ftruncate(fd_, start) == 0 &&
                     ::lseek(fd_, start, SEEK_SET) == start;
      return Status::Internal(StrFormat(
          "batch log: write failed: %s (%s)", std::strerror(err),
          rollback_ok_ ? "partial frame rolled back; Sync() to resume"
                       : "rollback failed; reopen the log"));
    }
    off += static_cast<size_t>(n);
    if (write_limit_ != SIZE_MAX) write_limit_ -= static_cast<size_t>(n);
  }
  if (++since_sync_ >= sync_every_) return Sync();
  return Status::OK();
}

Status BatchLogWriter::Sync() {
  if (fd_ < 0) return Status::OK();
  if (failed_ && !rollback_ok_) {
    return Status::Internal(
        "batch log: torn frame could not be rolled back; reopen the log");
  }
  since_sync_ = 0;
  if (::fsync(fd_) != 0) {
    return Status::Internal(
        StrFormat("batch log: fsync failed: %s", std::strerror(errno)));
  }
  failed_ = false;
  return Status::OK();
}

void BatchLogWriter::Close() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- BatchLogReader -----------------------------------------------------

Status BatchLogReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(StrFormat("batch log: cannot open '%s': %s",
                                      path.c_str(), std::strerror(errno)));
  }
  bytes_.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("batch log: read '%s' failed: %s",
                                        path.c_str(), std::strerror(err)));
    }
    if (n == 0) break;
    bytes_.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  pos_ = 0;
  valid_bytes_ = 0;
  tail_torn_ = false;
  return Status::OK();
}

bool BatchLogReader::Next(Record* out) {
  const size_t header = 2 * sizeof(uint32_t);
  if (pos_ == bytes_.size()) return false;  // clean end
  if (bytes_.size() - pos_ < header) {
    tail_torn_ = true;  // partial frame header
    return false;
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes_.data() + pos_, sizeof(len));
  std::memcpy(&crc, bytes_.data() + pos_ + sizeof(len), sizeof(crc));
  if (len > bytes_.size() - pos_ - header) {
    tail_torn_ = true;  // record extends past end of file
    return false;
  }
  const char* payload = bytes_.data() + pos_ + header;
  if (dbt::Crc32(payload, len) != crc) {
    tail_torn_ = true;  // bit rot or torn write inside the record
    return false;
  }
  dbt::Deser d(payload, len);
  out->epoch = d.u64();
  if (!DeserializeBatch(&d, &out->batch).ok() || !d.done()) {
    // CRC passed but the payload doesn't decode: a framing/format bug or a
    // crafted record. Treat like a torn tail — stop at the valid prefix.
    tail_torn_ = true;
    return false;
  }
  pos_ += header + len;
  valid_bytes_ = pos_;
  return true;
}

// ---- recovery -----------------------------------------------------------

Result<RecoveryStats> ReplayLog(const std::string& path,
                                StreamEngine* engine) {
  RecoveryStats stats;
  BatchLogReader reader;
  Status open = reader.Open(path);
  if (open.code() == StatusCode::kNotFound) return stats;  // no log: no-op
  DBT_RETURN_IF_ERROR(open);

  BatchLogReader::Record rec;
  while (reader.Next(&rec)) {
    if (rec.epoch <= engine->epoch()) {
      ++stats.skipped;  // already captured by the checkpoint
      continue;
    }
    if (rec.epoch != engine->epoch() + 1) {
      return Status::Internal(StrFormat(
          "batch log: epoch gap during replay (log record %llu, engine at "
          "%llu) — log does not continue this checkpoint",
          static_cast<unsigned long long>(rec.epoch),
          static_cast<unsigned long long>(engine->epoch())));
    }
    DBT_RETURN_IF_ERROR(engine->ApplyBatch(std::move(rec.batch)));
    ++stats.replayed;
  }
  stats.valid_bytes = reader.valid_bytes();
  stats.tail_truncated = reader.tail_torn();
  return stats;
}

}  // namespace dbtoaster::runtime
