// In-memory aggregate map structures maintained by the runtime: the
// key->value hash maps backing compiled views, and ordered multisets for
// MIN/MAX groups (correct under deletions). Both are backed by the shared
// open-addressing core (dbt::FlatMap, src/codegen/dbt_flat_map.h) — the
// same table the compiled path uses, with pooled slot storage.
#ifndef DBTOASTER_RUNTIME_VALUE_MAP_H_
#define DBTOASTER_RUNTIME_VALUE_MAP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/codegen/dbt_flat_map.h"
#include "src/common/value.h"

namespace dbtoaster::runtime {

/// Open-addressing map from dynamic row keys to aggregate values.
using FlatValueMap = dbt::FlatMap<Row, Value, RowHash, RowEq>;

/// Hash map from composite key to aggregate value.
///
/// Integer-typed maps erase entries that reach exactly 0, keeping the live
/// key set equal to the support of the aggregate (this drives group-domain
/// enumeration). Double-typed maps keep entries (floating-point cancellation
/// is not exact); domain decisions always consult integer COUNT maps.
class ValueMap {
 public:
  ValueMap() = default;
  ValueMap(std::string name, size_t key_arity, Type value_type)
      : name_(std::move(name)),
        key_arity_(key_arity),
        value_type_(value_type) {}

  const std::string& name() const { return name_; }
  size_t key_arity() const { return key_arity_; }
  Type value_type() const { return value_type_; }

  /// Value at `key`, or a typed zero when absent.
  Value Get(const Row& key) const;

  bool Contains(const Row& key) const { return entries_.contains(key); }

  /// entry += delta (entries reaching int 0 are erased).
  void Add(const Row& key, const Value& delta);

  /// entry := value.
  void Set(const Row& key, Value value);

  void Erase(const Row& key) { entries_.erase(key); }
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }

  /// Iterable view of live (key, value) entries.
  const FlatValueMap& entries() const { return entries_; }

  Value TypedZero() const {
    return value_type_ == Type::kDouble ? Value(0.0) : Value(int64_t{0});
  }

  size_t MemoryBytes() const;

 private:
  std::string name_;
  size_t key_arity_ = 0;
  Type value_type_ = Type::kInt;
  FlatValueMap entries_;
};

/// Per-key ordered multiset, supporting MIN/MAX maintenance under inserts
/// and deletes (the classic counterexample to pure delta processing).
///
/// Counts are total: removing a value that is not (yet) present records a
/// negative count, so a batch that reorders a delete ahead of its insert
/// still converges (the base-table ring semantics). Min/Max and size() see
/// only values with positive counts; counts returning to zero are erased.
/// Each group tracks its live-value count, so debt-only groups answer
/// Min/Max without scanning and size() is O(1).
class ExtremeMap {
 public:
  /// One group's ordered value multiset plus its live (positive) count.
  struct Group {
    std::map<Value, int64_t> counts;
    int64_t live = 0;
  };
  using GroupMap = dbt::FlatMap<Row, Group, RowHash, RowEq>;

  ExtremeMap() = default;
  ExtremeMap(std::string name, size_t key_arity, Type value_type)
      : name_(std::move(name)),
        key_arity_(key_arity),
        value_type_(value_type) {}

  const std::string& name() const { return name_; }
  size_t key_arity() const { return key_arity_; }
  Type value_type() const { return value_type_; }

  void Add(const Row& key, const Value& v);
  void Remove(const Row& key, const Value& v);

  /// Apply a full signed count delta for (key, v) — the restore path, which
  /// must reconstruct negative "debt" counts exactly, not add occurrences
  /// one at a time.
  void AddCount(const Row& key, const Value& v, int64_t count) {
    Bump(key, v, count);
  }

  /// Smallest / largest live value for `key`.
  std::optional<Value> Min(const Row& key) const;
  std::optional<Value> Max(const Row& key) const;

  size_t NumGroups() const { return groups_.size(); }
  /// Total number of live (positive-count) values across groups.
  size_t size() const { return static_cast<size_t>(total_live_); }
  void Clear() {
    groups_.clear();
    total_live_ = 0;
  }

  const GroupMap& groups() const { return groups_; }

  size_t MemoryBytes() const;

 private:
  void Bump(const Row& key, const Value& v, int64_t delta);

  std::string name_;
  size_t key_arity_ = 0;
  Type value_type_ = Type::kInt;
  int64_t total_live_ = 0;
  GroupMap groups_;
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_VALUE_MAP_H_
