#include "src/runtime/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/codegen/dbt_serialize.h"
#include "src/common/str.h"

namespace dbtoaster::runtime {

namespace {

constexpr char kMagic[8] = {'D', 'B', 'T', 'C', 'K', 'P', 'T', '\n'};

CheckpointCrashPoint g_crash_point = CheckpointCrashPoint::kNone;

Status ReadFileBytes(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(
        StrFormat("checkpoint: cannot open '%s': %s", path.c_str(),
                  std::strerror(errno)));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal(StrFormat("checkpoint: read '%s' failed: %s",
                                        path.c_str(), std::strerror(err)));
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("checkpoint: cannot create '%s': %s",
                                      tmp.c_str(), std::strerror(errno)));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal(StrFormat("checkpoint: write '%s' failed: %s",
                                        tmp.c_str(), std::strerror(err)));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(StrFormat("checkpoint: fsync '%s' failed: %s",
                                      tmp.c_str(), std::strerror(err)));
  }
  ::close(fd);
  if (g_crash_point == CheckpointCrashPoint::kAfterTmpFsync) {
    // Simulated crash: the tmp file is durable but the rename never happens.
    // The tmp file is deliberately left behind, as a real crash would.
    g_crash_point = CheckpointCrashPoint::kNone;
    return Status::Internal(
        StrFormat("checkpoint: injected crash after tmp fsync, before rename "
                  "('%s' left behind)",
                  tmp.c_str()));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal(StrFormat("checkpoint: rename to '%s' failed: %s",
                                      path.c_str(), std::strerror(err)));
  }
  // The rename is only durable once the directory entry itself reaches disk;
  // without this a crash after rename can roll back to the old (or no)
  // checkpoint despite the atomic-write contract.
  return FsyncParentDir(path);
}

/// Validate magic + CRC and return the body byte range [8, n-4).
Status CheckEnvelope(const std::string& path, const std::string& bytes,
                     const char** body, size_t* body_len) {
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError(
        StrFormat("checkpoint: '%s' is not a snapshot (bad magic or "
                  "truncated header)",
                  path.c_str()));
  }
  *body = bytes.data() + sizeof(kMagic);
  *body_len = bytes.size() - sizeof(kMagic) - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual = dbt::Crc32(*body, *body_len);
  if (stored != actual) {
    return Status::ParseError(
        StrFormat("checkpoint: '%s' failed CRC check (stored %08x, "
                  "computed %08x) — torn or corrupted snapshot",
                  path.c_str(), stored, actual));
  }
  return Status::OK();
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string dir;
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrFormat("fsync dir: cannot open '%s': %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("fsync dir '%s' failed: %s", dir.c_str(),
                                      std::strerror(err)));
  }
  ::close(fd);
  return Status::OK();
}

void SetCheckpointCrashForTesting(CheckpointCrashPoint point) {
  g_crash_point = point;
}

Status WriteCheckpoint(const std::string& path, const StreamEngine& engine) {
  dbt::Ser payload;
  DBT_RETURN_IF_ERROR(engine.SaveState(&payload));

  dbt::Ser body;
  body.u32(kCheckpointVersion);
  body.str(engine.Name());
  body.u64(engine.epoch());
  body.str(payload.data());

  std::string bytes;
  bytes.reserve(sizeof(kMagic) + body.size() + sizeof(uint32_t));
  bytes.append(kMagic, sizeof(kMagic));
  bytes.append(body.data());
  const uint32_t crc = dbt::Crc32(body.data().data(), body.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  return WriteFileAtomic(path, bytes);
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& path) {
  std::string bytes;
  DBT_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  const char* body = nullptr;
  size_t body_len = 0;
  DBT_RETURN_IF_ERROR(CheckEnvelope(path, bytes, &body, &body_len));

  dbt::Deser d(body, body_len);
  CheckpointMeta meta;
  meta.version = d.u32();
  meta.engine_name = d.str();
  meta.epoch = d.u64();
  (void)d.str();  // payload
  if (!d.done()) {
    return Status::ParseError(
        StrFormat("checkpoint: '%s' body does not decode", path.c_str()));
  }
  return meta;
}

Status RestoreCheckpoint(const std::string& path, StreamEngine* engine) {
  std::string bytes;
  DBT_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  const char* body = nullptr;
  size_t body_len = 0;
  DBT_RETURN_IF_ERROR(CheckEnvelope(path, bytes, &body, &body_len));

  dbt::Deser d(body, body_len);
  const uint32_t version = d.u32();
  const std::string name = d.str();
  const uint64_t epoch = d.u64();
  const std::string payload = d.str();
  if (!d.done()) {
    return Status::ParseError(
        StrFormat("checkpoint: '%s' body does not decode", path.c_str()));
  }
  if (version != kCheckpointVersion) {
    return Status::NotSupported(
        StrFormat("checkpoint: '%s' has format version %u, this build "
                  "reads version %u",
                  path.c_str(), version, kCheckpointVersion));
  }
  if (name != engine->Name()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint: '%s' was written by engine '%s', cannot "
                  "restore into '%s'",
                  path.c_str(), name.c_str(), engine->Name().c_str()));
  }

  dbt::Deser state(payload);
  DBT_RETURN_IF_ERROR(engine->LoadState(&state));
  if (!state.done()) {
    return Status::ParseError(
        StrFormat("checkpoint: '%s' payload has trailing bytes after "
                  "restore — snapshot/engine format mismatch",
                  path.c_str()));
  }
  engine->set_epoch(epoch);
  return Status::OK();
}

}  // namespace dbtoaster::runtime
