// The DBToaster runtime engine: executes a compiled trigger Program over an
// update stream, maintaining the in-memory aggregate maps and exposing
// continuously-fresh view results, a read-only snapshot interface, a
// profiler, and a step debugger (the paper's §2 system model).
//
// Implements the unified StreamEngine surface: ApplyBatch groups events by
// (relation, op) and — when the trigger's statements permit — runs each
// delta statement once over the whole vector of bindings against the batch
// pre-state, flushing base-table updates and map/slice-index mutations per
// batch instead of per event.
#ifndef DBTOASTER_RUNTIME_ENGINE_H_
#define DBTOASTER_RUNTIME_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/compiler/tir.h"
#include "src/exec/executor.h"
#include "src/runtime/ring_eval.h"
#include "src/runtime/stream_engine.h"
#include "src/runtime/value_map.h"
#include "src/storage/table.h"

namespace dbtoaster::runtime {

/// Observer interface for the debugger/tracer: receives every event,
/// statement execution and map update. Implementations must not mutate the
/// engine. A registered sink forces per-event (non-vectorized) batch
/// processing so callbacks keep their one-event granularity.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& /*event*/) {}
  virtual void OnStatement(const compiler::Statement& /*stmt*/,
                           size_t /*updates_applied*/) {}
  virtual void OnMapUpdate(const std::string& /*map*/, const Row& /*key*/,
                           const Value& /*old_value*/,
                           const Value& /*new_value*/) {}
};

/// Per-statement and per-map execution statistics (the paper's profiler,
/// used by bench_map_profile).
struct ProfileStats {
  struct StatementStats {
    std::string rendering;
    uint64_t executions = 0;
    uint64_t updates = 0;
    uint64_t nanos = 0;
  };
  std::map<std::string, StatementStats> by_statement;  // keyed by rendering
  uint64_t events = 0;
  uint64_t event_nanos = 0;
  /// Groups whose delta phase ran on the shard pool (parallel ApplyBatch).
  uint64_t sharded_groups = 0;

  std::string ToString() const;
};

class Engine : public StreamEngine, public MapStore {
 public:
  explicit Engine(compiler::Program program);

  std::string Name() const override { return "toaster-i"; }

  /// Current content of a registered view (fresh as of the last event).
  Result<exec::QueryResult> View(const std::string& view_name) override;
  std::vector<std::string> ViewNames() const override;

  /// Read-only snapshot interface: ad-hoc SQL over the base-table snapshot.
  Result<exec::QueryResult> AdhocQuery(const std::string& sql);

  const compiler::Program& program() const { return program_; }
  const tir::Module& tir() const { return tir_; }
  Database& database() { return db_; }
  const Database& database() const { return db_; }

  /// Map access (read-only) for tooling and tests.
  const ValueMap* value_map(const std::string& name) const;
  const ExtremeMap* extreme_map(const std::string& name) const;

  /// Total retained bytes across aggregate maps (excl. base tables).
  size_t MapMemoryBytes() const;
  size_t TotalMapEntries() const;

  /// Aggregate maps plus the base-table snapshot.
  size_t StateBytes() const override;

  /// Snapshot / restore dynamic state: base tables, aggregate maps and
  /// MIN/MAX multisets. Slice indexes are derived state and rebuild lazily
  /// after a restore.
  Status SaveState(dbt::Ser* out) const override;
  Status LoadState(dbt::Deser* in) override;

  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  const ProfileStats& profile() const { return profile_; }
  std::string Profile() const override { return profile_.ToString(); }
  void ResetProfile() { profile_ = ProfileStats(); }

  // MapStore:
  Result<Value> ReadMap(const std::string& map, const Row& key,
                        bool store_init) override;
  const ValueMap* FindMap(const std::string& map) const override;
  const Table* FindRelation(const std::string& rel) const override;
  const std::unordered_set<Row, RowHash, RowEq>* LookupMapSlice(
      const std::string& map, const std::vector<size_t>& positions,
      const Row& key) override;

 protected:
  /// Process one batch of deltas (see stream_engine.h for semantics).
  Status DoApplyBatch(EventBatch&& batch) override;

  /// Process one delta. Updates base tables, aggregate maps and views.
  Status DoOnEvent(const Event& event) override;

 private:
  /// Secondary slice index: prefix key -> full keys (possibly stale; values
  /// are re-read at use). Built lazily on the first slice access with a
  /// given position pattern and maintained on every map mutation.
  struct SliceIndex {
    std::vector<size_t> positions;
    std::unordered_map<Row, std::unordered_set<Row, RowHash, RowEq>, RowHash,
                       RowEq>
        buckets;

    void Insert(const Row& full_key) {
      Row prefix;
      prefix.reserve(positions.size());
      for (size_t p : positions) prefix.push_back(full_key[p]);
      buckets[prefix].insert(full_key);
    }
  };

  /// Re-evaluation statements postponed to the end of the current batch.
  using DeferredReevals = std::vector<std::pair<const compiler::Statement*,
                                                const std::string*>>;

  /// True when the unified statement executes for events of `kind`.
  static bool StmtActive(const tir::Stmt& s, EventKind kind) {
    switch (s.when) {
      case tir::Stmt::When::kBoth: return true;
      case tir::Stmt::When::kInsertOnly: return kind == EventKind::kInsert;
      case tir::Stmt::When::kDeleteOnly: return kind == EventKind::kDelete;
    }
    return true;
  }

  /// Whole-group arity validation (the batch paths check up front; the
  /// sequential path validates per event so trace callbacks keep order).
  Status CheckGroupArity(const tir::Trigger& trigger, const Row* tuples,
                         size_t count) const;
  /// Resolve each statement's profiler slot once per group (std::map nodes
  /// are stable, so the pointers stay valid for the group's lifetime).
  std::vector<ProfileStats::StatementStats*> ResolveStats(
      const tir::Trigger& trigger);

  /// Apply a map mutation, keeping slice indexes in sync.
  void ApplyMapAdd(ValueMap* target, const Row& key, const Value& delta);
  void ApplyMapSet(ValueMap* target, const Row& key, Value value);
  Status RunDeltaStatement(const compiler::Statement& stmt,
                           const Bindings& env,
                           std::vector<std::tuple<ValueMap*, Row, Value>>*
                               pending);
  Status RunReevalStatement(const compiler::Statement& stmt,
                            const Bindings& env);
  /// `sign` is the multiset op to apply: +1 add, -1 remove (for
  /// runtime-signed statements this is the event sign itself).
  Status RunExtremeStatement(const compiler::Statement& stmt,
                             const Bindings& env, int sign);

  /// Process one (relation, op) group of `count` tuples; deferrable
  /// re-evaluation statements are appended to `deferred` instead of run.
  Status ApplyGroup(const std::string& relation, EventKind kind,
                    const Row* tuples, size_t count,
                    DeferredReevals* deferred);
  Status ApplyGroupVectorized(const tir::Trigger& trigger, EventKind kind,
                              const Row* tuples, size_t count,
                              DeferredReevals* deferred);
  /// Vectorized processing with the delta phase fanned out over the shard
  /// pool: tuples are partitioned by target-key hash into the fixed logical
  /// shards, each worker evaluates its shards' bindings against the batch
  /// pre-state into private pending vectors, and the merge applies them in
  /// shard order — the same order at every thread count.
  Status ApplyGroupSharded(const tir::Trigger& trigger, EventKind kind,
                           const Row* tuples, size_t count,
                           DeferredReevals* deferred);
  Status ApplyGroupSequential(const tir::Trigger& trigger, EventKind kind,
                              const Row* tuples, size_t count,
                              DeferredReevals* deferred);
  Status FlushDeferredReevals(DeferredReevals* deferred);
  void Defer(const compiler::Statement* stmt, const std::string* rendering,
             DeferredReevals* deferred);

  compiler::Program program_;
  /// Typed trigger IR lowered once from program_ (sign-unified triggers,
  /// per-trigger batch analysis). Every trigger lookup goes through it.
  tir::Module tir_;
  Database db_;
  std::map<std::string, ValueMap> maps_;
  std::map<std::string, std::vector<SliceIndex>> slice_indexes_;
  std::map<std::string, ExtremeMap> extremes_;
  std::map<std::string, const compiler::MapDecl*> decls_;
  RingEvaluator eval_;
  TraceSink* trace_ = nullptr;
  ProfileStats profile_;
  std::vector<std::tuple<ValueMap*, Row, Value>> pending_;  ///< scratch
  bool in_init_ = false;  ///< re-entrancy guard for init-on-access

  /// True while shard workers are evaluating phase 1: lazy slice-index
  /// builds then serialize on slice_mu_ (the only mutation a parallel-safe
  /// delta evaluation can reach). Toggled exclusively on the driver thread,
  /// outside the parallel region.
  bool parallel_region_ = false;
  std::shared_mutex slice_mu_;
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_ENGINE_H_
