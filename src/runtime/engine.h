// The DBToaster runtime engine: executes a compiled trigger Program over an
// update stream, maintaining the in-memory aggregate maps and exposing
// continuously-fresh view results, a read-only snapshot interface, a
// profiler, and a step debugger (the paper's §2 system model).
#ifndef DBTOASTER_RUNTIME_ENGINE_H_
#define DBTOASTER_RUNTIME_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/exec/executor.h"
#include "src/runtime/ring_eval.h"
#include "src/runtime/value_map.h"
#include "src/storage/table.h"

namespace dbtoaster::runtime {

/// Observer interface for the debugger/tracer: receives every event,
/// statement execution and map update. Implementations must not mutate the
/// engine.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& event) {}
  virtual void OnStatement(const compiler::Statement& stmt,
                           size_t updates_applied) {}
  virtual void OnMapUpdate(const std::string& map, const Row& key,
                           const Value& old_value, const Value& new_value) {}
};

/// Per-statement and per-map execution statistics (the paper's profiler,
/// used by bench_map_profile).
struct ProfileStats {
  struct StatementStats {
    std::string rendering;
    uint64_t executions = 0;
    uint64_t updates = 0;
    uint64_t nanos = 0;
  };
  std::map<std::string, StatementStats> by_statement;  // keyed by rendering
  uint64_t events = 0;
  uint64_t event_nanos = 0;

  std::string ToString() const;
};

class Engine : public MapStore {
 public:
  explicit Engine(compiler::Program program);

  /// Process one delta. Updates base tables, aggregate maps and views.
  Status OnEvent(const Event& event);

  Status OnInsert(const std::string& relation, Row tuple) {
    return OnEvent(Event::Insert(relation, std::move(tuple)));
  }
  Status OnDelete(const std::string& relation, Row tuple) {
    return OnEvent(Event::Delete(relation, std::move(tuple)));
  }

  /// Current content of a registered view (fresh as of the last event).
  Result<exec::QueryResult> View(const std::string& view_name);

  /// Single-valued convenience for global aggregate views.
  Result<Value> ViewScalar(const std::string& view_name);

  /// Read-only snapshot interface: ad-hoc SQL over the base-table snapshot.
  Result<exec::QueryResult> AdhocQuery(const std::string& sql);

  const compiler::Program& program() const { return program_; }
  Database& database() { return db_; }
  const Database& database() const { return db_; }

  /// Map access (read-only) for tooling and tests.
  const ValueMap* value_map(const std::string& name) const;
  const ExtremeMap* extreme_map(const std::string& name) const;

  /// Total retained bytes across aggregate maps (excl. base tables).
  size_t MapMemoryBytes() const;
  size_t TotalMapEntries() const;

  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  const ProfileStats& profile() const { return profile_; }
  void ResetProfile() { profile_ = ProfileStats(); }

  // MapStore:
  Result<Value> ReadMap(const std::string& map, const Row& key,
                        bool store_init) override;
  const ValueMap* FindMap(const std::string& map) const override;
  const Table* FindRelation(const std::string& rel) const override;
  const std::unordered_set<Row, RowHash, RowEq>* LookupMapSlice(
      const std::string& map, const std::vector<size_t>& positions,
      const Row& key) override;

 private:
  /// Secondary slice index: prefix key -> full keys (possibly stale; values
  /// are re-read at use). Built lazily on the first slice access with a
  /// given position pattern and maintained on every map mutation.
  struct SliceIndex {
    std::vector<size_t> positions;
    std::unordered_map<Row, std::unordered_set<Row, RowHash, RowEq>, RowHash,
                       RowEq>
        buckets;

    void Insert(const Row& full_key) {
      Row prefix;
      prefix.reserve(positions.size());
      for (size_t p : positions) prefix.push_back(full_key[p]);
      buckets[prefix].insert(full_key);
    }
  };

  /// Apply a map mutation, keeping slice indexes in sync.
  void ApplyMapAdd(ValueMap* target, const Row& key, const Value& delta);
  void ApplyMapSet(ValueMap* target, const Row& key, Value value);
  Status RunDeltaStatement(const compiler::Statement& stmt,
                           const Bindings& env,
                           std::vector<std::tuple<ValueMap*, Row, Value>>*
                               pending);
  Status RunReevalStatement(const compiler::Statement& stmt,
                            const Bindings& env);
  Status RunExtremeStatement(const compiler::Statement& stmt,
                             const Bindings& env);

  compiler::Program program_;
  Database db_;
  std::map<std::string, ValueMap> maps_;
  std::map<std::string, std::vector<SliceIndex>> slice_indexes_;
  std::map<std::string, ExtremeMap> extremes_;
  std::map<std::string, const compiler::MapDecl*> decls_;
  RingEvaluator eval_;
  TraceSink* trace_ = nullptr;
  ProfileStats profile_;
  bool in_init_ = false;  ///< re-entrancy guard for init-on-access
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_ENGINE_H_
