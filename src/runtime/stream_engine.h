// The unified engine surface of the paper's §2 system model: every consumer
// of an update stream — the trigger interpreter (runtime::Engine), the
// bakeoff baselines (re-evaluation, first-order IVM) and dbtc-generated
// programs — is a standing-query engine fed deltas. StreamEngine is that
// contract; EventBatch is its vectorized unit of ingestion, grouping deltas
// per (relation, op) so engines can amortize dispatch, trigger lookup and
// index maintenance over whole vectors of bindings.
//
// Batch semantics: ApplyBatch(b) is equivalent to sequentially replaying
// b's events grouped by (relation, op) in first-encounter group order. For
// well-formed streams (a delete targets a tuple that is live at batch
// start, or inserted earlier in the same batch) the final views equal those
// of one-at-a-time replay in the original order: views are functions of the
// final database state, which is order-independent under multiset
// semantics, and MIN/MAX multisets tolerate transient negative counts
// (see ExtremeMap).
//
// The ingest boundary is treated as untrusted: ApplyBatch and OnEvent are
// non-virtual wrappers that validate relation names, arity and lane types
// against the engine's registered schemas (returning a structured Status —
// never UB or a silent skip) before handing the batch to the engine's
// DoApplyBatch, and count successfully applied calls as the engine's epoch
// (the exactly-once cursor of the batch-log recovery protocol, see
// src/runtime/batch_log.h).
#ifndef DBTOASTER_RUNTIME_STREAM_ENGINE_H_
#define DBTOASTER_RUNTIME_STREAM_ENGINE_H_

#include <array>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/codegen/dbt_flat_map.h"
#include "src/codegen/dbt_serialize.h"
#include "src/codegen/dbt_shard_pool.h"
#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/storage/table.h"

namespace dbt {
class StreamProgram;  // src/codegen/dbtoaster_runtime.h (self-contained)
}  // namespace dbt

namespace dbtoaster::runtime {

/// The process-wide worker pool and logical shard count, shared by the
/// interpreted engine, the baselines and dbtc-generated programs (see
/// dbt::ShardPool). Thread count is a pool property, not an engine one:
/// every engine reads it at batch time.
using ShardPool = dbt::ShardPool;
inline ShardPool& shard_pool() { return dbt::shard_pool(); }
inline constexpr size_t kNumShards = dbt::kNumShards;

/// Partition of one (relation, op) group's tuples into the fixed logical
/// shards, by finalized hash of the partition columns (or of the whole
/// tuple when no partition-key subset was derivable). Tuple order within a
/// shard preserves group order, so per-shard replay is deterministic and
/// independent of the worker count.
struct ShardPlan {
  std::array<std::vector<uint32_t>, kNumShards> shards;

  static ShardPlan Partition(const Row* tuples, size_t count,
                             const std::vector<size_t>& partition_cols);
};

/// One typed column of a batch group: int64 (also carrying dates as days
/// since epoch), double, or string, fixed by the first appended value and
/// coerced thereafter. Mirrors dbt::EventColumn so the compiled path can
/// move column storage across the boundary without touching rows.
struct EventColumn {
  enum class Tag : uint8_t { kI64 = 0, kF64 = 1, kStr = 2 };

  Tag tag = Tag::kI64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  static Tag TagOf(const Value& v) {
    if (v.is_double()) return Tag::kF64;
    if (v.is_string()) return Tag::kStr;
    return Tag::kI64;
  }

  void Push(const Value& v) {
    switch (tag) {
      case Tag::kI64: i64.push_back(v.AsInt()); break;
      case Tag::kF64: f64.push_back(v.AsDouble()); break;
      case Tag::kStr: str.push_back(v.AsString()); break;
    }
  }

  Value Get(size_t i) const {
    switch (tag) {
      case Tag::kF64: return Value(f64[i]);
      case Tag::kStr: return Value(str[i]);
      default: return Value(i64[i]);
    }
  }
};

/// One batch of deltas, grouped per (relation, op) with per-group typed
/// column storage: the columnar unit all engines ingest. Groups keep
/// first-encounter order. Interpreted engines that want whole tuples use
/// the rows() shim, which materializes (and caches) the row view.
class EventBatch {
 public:
  struct Group {
    std::string relation;
    EventKind kind = EventKind::kInsert;
    std::vector<EventColumn> cols;
    size_t rows = 0;

    Group() = default;
    Group(std::string rel, EventKind k)
        : relation(std::move(rel)), kind(k) {}

    /// Append one tuple, splitting it across the typed columns.
    void Add(const Row& tuple) {
      if (cols.size() < tuple.size()) {
        const size_t old = cols.size();
        cols.resize(tuple.size());
        for (size_t c = old; c < tuple.size(); ++c) {
          cols[c].tag = EventColumn::TagOf(tuple[c]);
        }
      }
      for (size_t c = 0; c < cols.size(); ++c) {
        cols[c].Push(c < tuple.size() ? tuple[c] : Value(int64_t{0}));
      }
      ++rows;
      row_cache_.clear();
    }

    /// Reassemble tuple `i` from the columns.
    Row RowAt(size_t i) const {
      Row out;
      out.reserve(cols.size());
      for (const EventColumn& c : cols) out.push_back(c.Get(i));
      return out;
    }

    /// Row-shim view of the whole group, materialized on first use and
    /// cached (engines call it once per group, on the driver thread).
    const std::vector<Row>& rows_view() const {
      if (row_cache_.size() != rows) {
        row_cache_.clear();
        row_cache_.reserve(rows);
        for (size_t i = 0; i < rows; ++i) row_cache_.push_back(RowAt(i));
      }
      return row_cache_;
    }

   private:
    mutable std::vector<Row> row_cache_;
  };

  EventBatch() = default;

  /// A one-element batch (the OnEvent convenience path).
  static EventBatch Of(const Event& event);

  /// Append one delta, coalescing into an existing (relation, op) group.
  void Add(EventKind kind, const std::string& relation, Row tuple);
  void Add(Event event) {
    Add(event.kind, event.relation, std::move(event.tuple));
  }
  void AddInsert(const std::string& relation, Row tuple) {
    Add(EventKind::kInsert, relation, std::move(tuple));
  }
  void AddDelete(const std::string& relation, Row tuple) {
    Add(EventKind::kDelete, relation, std::move(tuple));
  }

  const std::vector<Group>& groups() const { return groups_; }
  std::vector<Group>& groups() { return groups_; }

  /// Total number of events across groups.
  size_t size() const { return events_; }
  bool empty() const { return events_ == 0; }
  void Clear() {
    groups_.clear();
    events_ = 0;
  }

 private:
  std::vector<Group> groups_;
  size_t events_ = 0;
};

// ---- dynamic value serde (shared by checkpoints, the batch log and the
// ---- upsert adapter) ---------------------------------------------------

/// Tagged encoding of one dynamic Value: u8 tag (0 = int64, 1 = double,
/// 2 = string) + payload. ReadValue/ReadRow return false on a malformed
/// tag; truncation surfaces through the reader's ok() as usual.
void WriteValue(dbt::Ser& out, const Value& v);
bool ReadValue(dbt::Deser& in, Value* v);
void WriteRow(dbt::Ser& out, const Row& row);
bool ReadRow(dbt::Deser& in, Row* row);

/// Boundary validation of untrusted batches against registered relation
/// schemas. An engine registers the lane layout of every relation it is
/// willing to ingest (from its catalog, or from a generated program's
/// published schemas); Validate then rejects, with relation and column
/// context:
///   - unknown relations               -> kNotFound
///   - group arity != schema arity     -> kInvalidArgument
///   - string lane where the schema has a numeric column (or vice versa)
///                                     -> kTypeError
/// Numeric lanes are interchangeable (kI64 carries dates and widened ints;
/// engines promote), so only string/numeric confusion — the one shape the
/// typed handlers cannot absorb — is a type error. A validator with no
/// registered schemas passes everything through (opt-in hardening).
class IngestValidator {
 public:
  void Register(const std::string& relation,
                std::vector<EventColumn::Tag> lanes);
  void RegisterCatalog(const Catalog& catalog);
  bool empty() const { return schemas_.empty(); }

  Status ValidateBatch(const EventBatch& batch) const;
  Status ValidateEvent(const Event& event) const;

 private:
  const std::vector<EventColumn::Tag>* Find(const std::string& relation) const;

  /// Keyed by upper-cased relation name (catalog semantics).
  std::map<std::string, std::vector<EventColumn::Tag>> schemas_;
};

// ---- concurrent view serving --------------------------------------------
//
// The serving tier decouples view reads from the single-threaded ingest
// path: after every successful ingest call the writer renders each
// registered view into an immutable, epoch-stamped snapshot
// (copy-on-publish) and swaps it in under a short mutex section. Readers on
// any thread grab the current ViewSnapshot handle — a shared_ptr copy —
// and read it without ever touching live engine state, so they can never
// observe a half-applied batch and never block the writer beyond the
// pointer swap. Subscribers receive the per-epoch *deltas* between
// consecutive published renderings instead (computed by a per-shard diff,
// the same fixed logical shards the parallel ApplyBatch uses), which
// replay to exactly the published view at every epoch.

/// One registered view's materialized content inside a snapshot.
struct ViewRendering {
  std::string name;
  exec::QueryResult result;
};

/// Rows added/removed in one view between two consecutive published
/// epochs, with multiplicities (a count change from 2 to 3 is one added
/// row). Concatenated in logical-shard order, deterministic for a given
/// engine replay.
struct ViewDelta {
  std::string view;
  std::vector<std::pair<Row, int64_t>> added;
  std::vector<std::pair<Row, int64_t>> removed;
};

/// All view deltas of one published epoch.
struct EpochDelta {
  uint64_t epoch = 0;
  std::vector<ViewDelta> views;
};

/// Per-shard diff of two renderings of the same view: rows are partitioned
/// into the fixed logical shards by row hash (large renderings fan the
/// shard diffs out over the worker pool) and each shard is diffed
/// independently; results concatenate in shard order. Exposed for tests
/// and serving tools.
ViewDelta DiffViewRendering(const std::string& name,
                            const exec::QueryResult& prev,
                            const exec::QueryResult& next);

/// Replay helper: apply one view delta to a row->count multiset (zero
/// counts are erased). base + deltas(1..e) == the published rendering at
/// epoch e.
void ApplyViewDelta(const ViewDelta& delta,
                    std::unordered_map<Row, int64_t, RowHash, RowEq>* rows);

/// An immutable, epoch-stamped rendering of every served view. Cheap to
/// copy (shared_ptr); safe to read from any thread, concurrently with the
/// writer, for as long as the handle lives.
class ViewSnapshot {
 public:
  struct Data {
    uint64_t epoch = 0;
    std::vector<ViewRendering> views;
  };

  ViewSnapshot() = default;

  /// False until the engine has published (serving not enabled).
  bool valid() const { return data_ != nullptr; }
  /// Ingest epoch this snapshot is fresh as of.
  uint64_t epoch() const { return data_ ? data_->epoch : 0; }

  std::vector<std::string> view_names() const;
  /// Borrowed pointer into the snapshot (nullptr for unknown views); valid
  /// for the handle's lifetime.
  const exec::QueryResult* Find(const std::string& name) const;
  /// Copying convenience over Find.
  Result<exec::QueryResult> View(const std::string& name) const;

 private:
  friend class StreamEngine;
  explicit ViewSnapshot(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}

  std::shared_ptr<const Data> data_;
};

/// A subscription to the engine's per-epoch view delta stream. Created by
/// StreamEngine::Subscribe; dropping the handle unsubscribes. The handle
/// carries the base snapshot it was seeded with: base + the polled deltas
/// (epochs base.epoch()+1, +2, ...) reconstruct the published view at
/// every epoch. Poll may be called from any thread.
class ViewSubscriber {
 public:
  ViewSubscriber() = default;

  bool valid() const { return chan_ != nullptr; }

  /// The snapshot this subscription started from (reconstruction base).
  const ViewSnapshot& base() const { return base_; }

  /// Drain every delta published since the last poll, in epoch order.
  std::vector<std::shared_ptr<const EpochDelta>> Poll();

  /// True once the engine dropped deltas because the subscriber fell more
  /// than the queue bound behind. A lagged stream has a gap and cannot be
  /// replayed; re-subscribe for a fresh base.
  bool lagged() const;

 private:
  friend class StreamEngine;
  struct Channel {
    std::mutex mu;
    std::deque<std::shared_ptr<const EpochDelta>> queue;
    bool lagged = false;
  };

  std::shared_ptr<Channel> chan_;
  ViewSnapshot base_;
};

/// A continuously-maintained standing-query engine fed delta batches.
///
/// ApplyBatch / OnEvent are deliberately non-virtual: they validate the
/// input, delegate to the engine's DoApplyBatch / DoOnEvent, and advance
/// the epoch on success, so every engine shares one hardened boundary and
/// one recovery cursor. Engine classes implement the Do* hooks.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Short label for bench tables ("reeval", "ivm1", "toaster-i", ...).
  virtual std::string Name() const = 0;

  /// Ingest one batch of deltas (see the file comment for semantics).
  Status ApplyBatch(EventBatch&& batch);

  /// One-element convenience; engines may override DoOnEvent with a leaner
  /// path than the one-element-batch default.
  Status OnEvent(const Event& event);

  Status OnInsert(const std::string& relation, Row tuple) {
    return OnEvent(Event::Insert(relation, std::move(tuple)));
  }
  Status OnDelete(const std::string& relation, Row tuple) {
    return OnEvent(Event::Delete(relation, std::move(tuple)));
  }

  /// Current content of the registered view `name` (fresh as of the last
  /// batch). Writer-thread access to live state; concurrent readers use
  /// Snapshot() instead.
  virtual Result<exec::QueryResult> View(const std::string& name) = 0;

  /// Single-valued convenience for global aggregate views.
  virtual Result<Value> ViewScalar(const std::string& name);

  /// Names of the views this engine serves, in registration order (empty
  /// when the engine exposes none).
  virtual std::vector<std::string> ViewNames() const { return {}; }

  // ---- concurrent view serving (see the section comment above) ----

  /// Start publishing epoch-stamped snapshots of `views` (all ViewNames()
  /// when empty) after every ingest call, beginning with an immediate
  /// publish at the current epoch. Call from the writer thread before
  /// concurrent readers attach; each subsequent ApplyBatch/OnEvent pays
  /// one rendering pass per registered view.
  Status EnableServing(std::vector<std::string> views = {});
  bool serving() const {
    return serving_enabled_.load(std::memory_order_acquire);
  }

  /// The latest published snapshot (invalid handle before EnableServing).
  /// Safe from any thread; cost is one mutex-guarded shared_ptr copy.
  ViewSnapshot Snapshot() const;

  /// Register a subscriber for per-epoch view deltas, seeded with the
  /// current snapshot as its base. Registration is atomic with respect to
  /// publishes: the first delta a subscriber sees is for base.epoch()+1.
  Result<ViewSubscriber> Subscribe();

  /// Per-subscriber queue bound; past it a slow subscriber is marked
  /// lagged and its queued deltas are dropped (it must re-subscribe).
  size_t max_queued_deltas() const { return max_queued_deltas_; }
  void set_max_queued_deltas(size_t n) { max_queued_deltas_ = n == 0 ? 1 : n; }

  /// Retained bytes attributable to the engine's state (tables, indexes,
  /// maps), for the memory bench.
  virtual size_t StateBytes() const = 0;

  /// Human-readable execution statistics; empty when the engine keeps none.
  virtual std::string Profile() const { return std::string(); }

  /// Serialize the engine's dynamic state (base tables, aggregate maps,
  /// multisets) into `out` / restore it from `in`. Engines that implement
  /// state capture override both; the default reports kNotSupported.
  /// Restore protocol: construct the engine the same way (same program /
  /// registered queries), then LoadState — snapshots capture dynamic state,
  /// not query registration. The epoch is owned by the checkpoint envelope
  /// (src/runtime/checkpoint.h), not the payload.
  virtual Status SaveState(dbt::Ser* out) const;
  virtual Status LoadState(dbt::Deser* in);

  /// Number of successfully applied ingest calls (batches or single
  /// events). Monotonic; the batch-log recovery protocol uses it as the
  /// exactly-once replay cursor.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t e) { epoch_ = e; }

  const IngestValidator& ingest_validator() const { return validator_; }

 protected:
  /// Engine-specific batch ingestion; input has passed boundary validation.
  virtual Status DoApplyBatch(EventBatch&& batch) = 0;
  virtual Status DoOnEvent(const Event& event) {
    return DoApplyBatch(EventBatch::Of(event));
  }

  /// Render each named view for a snapshot publish (writer thread, engine
  /// quiescent). The default calls View() per name; engines with a cheaper
  /// one-pass rendering (generated programs' publish_snapshot hook)
  /// override it.
  virtual Status RenderViews(const std::vector<std::string>& names,
                             std::vector<ViewRendering>* out);

  /// Schema registration for the boundary validator (typically from the
  /// engine's constructor).
  void RegisterIngestCatalog(const Catalog& catalog) {
    validator_.RegisterCatalog(catalog);
  }
  void RegisterIngestSchema(const std::string& relation,
                            std::vector<EventColumn::Tag> lanes) {
    validator_.Register(relation, std::move(lanes));
  }

 private:
  /// Render, diff against the previous rendering, and publish the new
  /// snapshot + per-epoch delta (writer thread, after a successful ingest).
  Status PublishSnapshot();

  IngestValidator validator_;
  uint64_t epoch_ = 0;

  // Serving state. Only the writer thread mutates published_ (publish) and
  // serving_views_ (EnableServing); serving_mu_ orders those writes against
  // reader Snapshot()/Subscribe() calls. Subscriber channels are held
  // weakly so dropping a ViewSubscriber handle unsubscribes it.
  std::atomic<bool> serving_enabled_{false};
  mutable std::mutex serving_mu_;
  std::shared_ptr<const ViewSnapshot::Data> published_;
  std::vector<std::weak_ptr<ViewSubscriber::Channel>> subscribers_;
  std::vector<std::string> serving_views_;
  size_t max_queued_deltas_ = 4096;
};

/// Upsert/primary-key ingestion adapter: rewrites a raw, possibly
/// duplicated or reordered stream into the exact multiset deltas the
/// engines consume. For each relation declared with a key:
///   - an insert whose key is already live replaces the old row
///     (delete(old) + insert(new));
///   - a byte-identical duplicate insert is dropped;
///   - a delete whose key is not live (late, duplicated, or reordered
///     ahead of its insert) is dropped.
/// Undeclared relations pass through untouched. The adapter's key->row
/// table is itself engine state for recovery purposes (Save/Load), so a
/// restored pipeline dedups exactly where the crashed one would have.
class UpsertNormalizer {
 public:
  void DeclareKey(const std::string& relation, std::vector<size_t> key_cols);

  /// Rewrite `batch` into normalized deltas, in group order, row order
  /// within each group (deterministic for a given input).
  EventBatch Normalize(EventBatch&& batch);

  void Save(dbt::Ser* out) const;
  Status Load(dbt::Deser* in);

  size_t live_rows(const std::string& relation) const;

 private:
  struct KeyedRelation {
    std::vector<size_t> key_cols;
    std::unordered_map<Row, Row, RowHash, RowEq> current;  ///< key -> row
  };

  std::map<std::string, KeyedRelation> keyed_;
};

/// Drives a dbtc-generated program (any dbt::StreamProgram) through the
/// same interface as the interpreted engines, via the generated program's
/// string-dispatch shim. The program's published relation schemas (when
/// present) arm the boundary validator, so malformed batches are rejected
/// before they reach the typed handlers; relations the program knows but
/// has no trigger for remain counted no-ops, matching the generated
/// dispatcher's behaviour.
class CompiledProgramEngine final : public StreamEngine {
 public:
  /// How batches cross the boundary into the generated program.
  enum class BatchPath {
    kColumnar,  ///< move typed columns straight into dbt::EventBatch groups
    kRow,       ///< replay through the per-event row shim (reference path)
  };

  explicit CompiledProgramEngine(dbt::StreamProgram* program,
                                 std::string name = "toaster-c",
                                 BatchPath path = BatchPath::kColumnar);

  std::string Name() const override { return name_; }
  Result<exec::QueryResult> View(const std::string& name) override;
  std::vector<std::string> ViewNames() const override;
  size_t StateBytes() const override;

  Status SaveState(dbt::Ser* out) const override;
  Status LoadState(dbt::Deser* in) override;

  dbt::StreamProgram* program() { return program_; }

 protected:
  Status DoApplyBatch(EventBatch&& batch) override;
  Status DoOnEvent(const Event& event) override;

  /// Snapshot publishing goes through the generated program's one-pass
  /// publish_snapshot hook instead of per-view string dispatch.
  Status RenderViews(const std::vector<std::string>& names,
                     std::vector<ViewRendering>* out) override;

 private:
  dbt::StreamProgram* program_;
  std::string name_;
  BatchPath path_;
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_STREAM_ENGINE_H_
