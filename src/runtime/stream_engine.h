// The unified engine surface of the paper's §2 system model: every consumer
// of an update stream — the trigger interpreter (runtime::Engine), the
// bakeoff baselines (re-evaluation, first-order IVM) and dbtc-generated
// programs — is a standing-query engine fed deltas. StreamEngine is that
// contract; EventBatch is its vectorized unit of ingestion, grouping deltas
// per (relation, op) so engines can amortize dispatch, trigger lookup and
// index maintenance over whole vectors of bindings.
//
// Batch semantics: ApplyBatch(b) is equivalent to sequentially replaying
// b's events grouped by (relation, op) in first-encounter group order. For
// well-formed streams (a delete targets a tuple that is live at batch
// start, or inserted earlier in the same batch) the final views equal those
// of one-at-a-time replay in the original order: views are functions of the
// final database state, which is order-independent under multiset
// semantics, and MIN/MAX multisets tolerate transient negative counts
// (see ExtremeMap).
#ifndef DBTOASTER_RUNTIME_STREAM_ENGINE_H_
#define DBTOASTER_RUNTIME_STREAM_ENGINE_H_

#include <array>
#include <string>
#include <vector>

#include "src/codegen/dbt_flat_map.h"
#include "src/codegen/dbt_shard_pool.h"
#include "src/common/status.h"
#include "src/exec/executor.h"
#include "src/storage/table.h"

namespace dbt {
class StreamProgram;  // src/codegen/dbtoaster_runtime.h (self-contained)
}  // namespace dbt

namespace dbtoaster::runtime {

/// The process-wide worker pool and logical shard count, shared by the
/// interpreted engine, the baselines and dbtc-generated programs (see
/// dbt::ShardPool). Thread count is a pool property, not an engine one:
/// every engine reads it at batch time.
using ShardPool = dbt::ShardPool;
inline ShardPool& shard_pool() { return dbt::shard_pool(); }
inline constexpr size_t kNumShards = dbt::kNumShards;

/// Partition of one (relation, op) group's tuples into the fixed logical
/// shards, by finalized hash of the partition columns (or of the whole
/// tuple when no partition-key subset was derivable). Tuple order within a
/// shard preserves group order, so per-shard replay is deterministic and
/// independent of the worker count.
struct ShardPlan {
  std::array<std::vector<uint32_t>, kNumShards> shards;

  static ShardPlan Partition(const Row* tuples, size_t count,
                             const std::vector<size_t>& partition_cols);
};

/// One typed column of a batch group: int64 (also carrying dates as days
/// since epoch), double, or string, fixed by the first appended value and
/// coerced thereafter. Mirrors dbt::EventColumn so the compiled path can
/// move column storage across the boundary without touching rows.
struct EventColumn {
  enum class Tag : uint8_t { kI64 = 0, kF64 = 1, kStr = 2 };

  Tag tag = Tag::kI64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  static Tag TagOf(const Value& v) {
    if (v.is_double()) return Tag::kF64;
    if (v.is_string()) return Tag::kStr;
    return Tag::kI64;
  }

  void Push(const Value& v) {
    switch (tag) {
      case Tag::kI64: i64.push_back(v.AsInt()); break;
      case Tag::kF64: f64.push_back(v.AsDouble()); break;
      case Tag::kStr: str.push_back(v.AsString()); break;
    }
  }

  Value Get(size_t i) const {
    switch (tag) {
      case Tag::kF64: return Value(f64[i]);
      case Tag::kStr: return Value(str[i]);
      default: return Value(i64[i]);
    }
  }
};

/// One batch of deltas, grouped per (relation, op) with per-group typed
/// column storage: the columnar unit all engines ingest. Groups keep
/// first-encounter order. Interpreted engines that want whole tuples use
/// the rows() shim, which materializes (and caches) the row view.
class EventBatch {
 public:
  struct Group {
    std::string relation;
    EventKind kind = EventKind::kInsert;
    std::vector<EventColumn> cols;
    size_t rows = 0;

    Group() = default;
    Group(std::string rel, EventKind k)
        : relation(std::move(rel)), kind(k) {}

    /// Append one tuple, splitting it across the typed columns.
    void Add(const Row& tuple) {
      if (cols.size() < tuple.size()) {
        const size_t old = cols.size();
        cols.resize(tuple.size());
        for (size_t c = old; c < tuple.size(); ++c) {
          cols[c].tag = EventColumn::TagOf(tuple[c]);
        }
      }
      for (size_t c = 0; c < cols.size(); ++c) {
        cols[c].Push(c < tuple.size() ? tuple[c] : Value(int64_t{0}));
      }
      ++rows;
      row_cache_.clear();
    }

    /// Reassemble tuple `i` from the columns.
    Row RowAt(size_t i) const {
      Row out;
      out.reserve(cols.size());
      for (const EventColumn& c : cols) out.push_back(c.Get(i));
      return out;
    }

    /// Row-shim view of the whole group, materialized on first use and
    /// cached (engines call it once per group, on the driver thread).
    const std::vector<Row>& rows_view() const {
      if (row_cache_.size() != rows) {
        row_cache_.clear();
        row_cache_.reserve(rows);
        for (size_t i = 0; i < rows; ++i) row_cache_.push_back(RowAt(i));
      }
      return row_cache_;
    }

   private:
    mutable std::vector<Row> row_cache_;
  };

  EventBatch() = default;

  /// A one-element batch (the OnEvent convenience path).
  static EventBatch Of(const Event& event);

  /// Append one delta, coalescing into an existing (relation, op) group.
  void Add(EventKind kind, const std::string& relation, Row tuple);
  void Add(Event event) {
    Add(event.kind, event.relation, std::move(event.tuple));
  }
  void AddInsert(const std::string& relation, Row tuple) {
    Add(EventKind::kInsert, relation, std::move(tuple));
  }
  void AddDelete(const std::string& relation, Row tuple) {
    Add(EventKind::kDelete, relation, std::move(tuple));
  }

  const std::vector<Group>& groups() const { return groups_; }
  std::vector<Group>& groups() { return groups_; }

  /// Total number of events across groups.
  size_t size() const { return events_; }
  bool empty() const { return events_ == 0; }
  void Clear() {
    groups_.clear();
    events_ = 0;
  }

 private:
  std::vector<Group> groups_;
  size_t events_ = 0;
};

/// A continuously-maintained standing-query engine fed delta batches.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Short label for bench tables ("reeval", "ivm1", "toaster-i", ...).
  virtual std::string Name() const = 0;

  /// Ingest one batch of deltas (see the file comment for semantics).
  virtual Status ApplyBatch(EventBatch&& batch) = 0;

  /// One-element convenience; engines may override with a leaner path.
  virtual Status OnEvent(const Event& event) {
    return ApplyBatch(EventBatch::Of(event));
  }

  Status OnInsert(const std::string& relation, Row tuple) {
    return OnEvent(Event::Insert(relation, std::move(tuple)));
  }
  Status OnDelete(const std::string& relation, Row tuple) {
    return OnEvent(Event::Delete(relation, std::move(tuple)));
  }

  /// Current content of the registered view `name` (fresh as of the last
  /// batch).
  virtual Result<exec::QueryResult> View(const std::string& name) = 0;

  /// Single-valued convenience for global aggregate views.
  virtual Result<Value> ViewScalar(const std::string& name);

  /// Retained bytes attributable to the engine's state (tables, indexes,
  /// maps), for the memory bench.
  virtual size_t StateBytes() const = 0;

  /// Human-readable execution statistics; empty when the engine keeps none.
  virtual std::string Profile() const { return std::string(); }
};

/// Drives a dbtc-generated program (any dbt::StreamProgram) through the
/// same interface as the interpreted engines, via the generated program's
/// string-dispatch shim. Events not handled by the program (no trigger for
/// that relation/op) are counted but otherwise ignored, matching the
/// generated dispatcher's behaviour.
class CompiledProgramEngine final : public StreamEngine {
 public:
  /// How batches cross the boundary into the generated program.
  enum class BatchPath {
    kColumnar,  ///< move typed columns straight into dbt::EventBatch groups
    kRow,       ///< replay through the per-event row shim (reference path)
  };

  explicit CompiledProgramEngine(dbt::StreamProgram* program,
                                 std::string name = "toaster-c",
                                 BatchPath path = BatchPath::kColumnar)
      : program_(program), name_(std::move(name)), path_(path) {}

  std::string Name() const override { return name_; }
  Status ApplyBatch(EventBatch&& batch) override;
  Status OnEvent(const Event& event) override;
  Result<exec::QueryResult> View(const std::string& name) override;
  size_t StateBytes() const override;

  dbt::StreamProgram* program() { return program_; }

 private:
  dbt::StreamProgram* program_;
  std::string name_;
  BatchPath path_;
};

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_STREAM_ENGINE_H_
