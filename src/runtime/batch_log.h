// Append-only EventBatch log and replay-from-checkpoint recovery.
//
// Record framing (little-endian):
//
//   u32  payload length
//   u32  CRC-32 of the payload bytes
//   payload:
//     u64  epoch — ordinal of this ingest call (1-based; the engine's
//          epoch after the batch applies)
//     serialized EventBatch (see SerializeBatch)
//
// The log is written before the batch is applied (write-ahead), fsync'd
// every `sync_every` records. The reader trusts nothing: it stops at the
// first record whose length overruns the file, whose CRC mismatches, or
// whose payload does not decode exactly — everything before that point is
// the valid prefix (`valid_bytes()`), everything after is a torn tail from
// a crash mid-append (or deliberate corruption) and is discarded. A writer
// reopening a recovered log truncates to the valid prefix first, so the
// file never contains garbage between records.
//
// Exactly-once replay: ReplayLog applies a record iff its epoch is exactly
// engine->epoch() + 1, skips records at or below the engine's epoch (they
// are already in the checkpoint), and fails on a gap. Restoring a
// checkpoint and replaying the same log is therefore idempotent, and a
// checkpoint taken at any batch boundary composes with the log written
// across it.
#ifndef DBTOASTER_RUNTIME_BATCH_LOG_H_
#define DBTOASTER_RUNTIME_BATCH_LOG_H_

#include <cstdint>
#include <string>

#include "src/codegen/dbt_serialize.h"
#include "src/common/status.h"
#include "src/runtime/stream_engine.h"

namespace dbtoaster::runtime {

/// Columnar EventBatch serde: group count, then per group relation / op /
/// row count / typed lanes. DeserializeBatch rebuilds an identical batch
/// (groups are unique per (relation, op) and keep first-encounter order).
void SerializeBatch(const EventBatch& batch, dbt::Ser* out);
Status DeserializeBatch(dbt::Deser* in, EventBatch* out);

/// Appender. Not thread-safe (the ingest path is single-driver).
class BatchLogWriter {
 public:
  BatchLogWriter() = default;
  ~BatchLogWriter() { Close(); }
  BatchLogWriter(const BatchLogWriter&) = delete;
  BatchLogWriter& operator=(const BatchLogWriter&) = delete;

  /// Open for append, creating the file if needed. When `truncate_to` is
  /// non-negative the file is first cut to that many bytes (the valid
  /// prefix reported by a reader after a crash).
  Status Open(const std::string& path, int64_t truncate_to = -1);

  /// Append one record (framed + CRC'd); fsyncs every `sync_every()`
  /// appends. `epoch` is the batch's ordinal (engine epoch after apply).
  /// On a mid-frame write failure the partial frame is truncated away so
  /// later records stay reachable; the writer is marked failed() and
  /// refuses further appends until a successful Sync() (rollback worked)
  /// or a fresh Open() (rollback itself failed).
  Status Append(uint64_t epoch, const EventBatch& batch);

  /// Force an fsync of everything appended so far. Clears a failed() state
  /// whose torn frame was successfully rolled back.
  Status Sync();

  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// True after a mid-frame append failure; cleared by Sync()/Open().
  bool failed() const { return failed_; }

  /// Records per fsync; 1 = sync every append (max durability).
  size_t sync_every() const { return sync_every_; }
  void set_sync_every(size_t n) { sync_every_ = n == 0 ? 1 : n; }

  /// Fault injection: cap total bytes this writer may write before
  /// write() starts failing with ENOSPC (simulates a full disk mid-frame).
  void set_write_limit_for_testing(size_t bytes) { write_limit_ = bytes; }

 private:
  int fd_ = -1;
  size_t sync_every_ = 16;
  size_t since_sync_ = 0;
  bool failed_ = false;
  bool rollback_ok_ = true;
  size_t write_limit_ = SIZE_MAX;
};

/// Sequential reader over a log file (loaded whole; logs are bounded by
/// checkpoint cadence). Next() yields valid records until the valid prefix
/// ends.
class BatchLogReader {
 public:
  struct Record {
    uint64_t epoch = 0;
    EventBatch batch;
  };

  /// Loads and scans nothing yet; returns NotFound if the file is absent.
  Status Open(const std::string& path);

  /// Advance to the next valid record. Returns false at end of the valid
  /// prefix (clean end or torn tail — check tail_torn()).
  bool Next(Record* out);

  /// Bytes of the longest valid record prefix seen so far; final once
  /// Next() has returned false.
  uint64_t valid_bytes() const { return valid_bytes_; }

  /// True when scanning stopped because of a torn/corrupt record rather
  /// than a clean end of file.
  bool tail_torn() const { return tail_torn_; }

 private:
  std::string bytes_;
  size_t pos_ = 0;
  uint64_t valid_bytes_ = 0;
  bool tail_torn_ = false;
};

/// Outcome of a recovery replay.
struct RecoveryStats {
  uint64_t replayed = 0;       ///< records applied to the engine
  uint64_t skipped = 0;        ///< records already covered by the checkpoint
  uint64_t valid_bytes = 0;    ///< valid log prefix (truncation point)
  bool tail_truncated = false; ///< a torn/corrupt tail was discarded
};

/// Replay the log at `path` into `engine` with exactly-once epoch
/// semantics (see the file comment). A missing log file is a clean no-op
/// recovery. Fails on an epoch gap (a lost log segment) or if the engine
/// rejects a batch.
Result<RecoveryStats> ReplayLog(const std::string& path, StreamEngine* engine);

}  // namespace dbtoaster::runtime

#endif  // DBTOASTER_RUNTIME_BATCH_LOG_H_
