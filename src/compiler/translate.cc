#include "src/compiler/translate.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "src/common/str.h"

namespace dbtoaster::compiler {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;
using sql::BinOp;

namespace {

void SplitConjuncts(const sql::Expr& e, std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::Expr::Kind::kBinary && e.op == BinOp::kAnd) {
    SplitConjuncts(*e.lhs, out);
    SplitConjuncts(*e.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Union-find over variable names.
class VarUnionFind {
 public:
  void Add(const std::string& v) { parent_.emplace(v, v); }
  std::string Find(const std::string& v) {
    Add(v);
    std::string root = v;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    std::string cur = v;
    while (parent_[cur] != root) {
      std::string next = parent_[cur];
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }
  std::map<std::string, std::vector<std::string>> Classes() {
    std::map<std::string, std::vector<std::string>> out;
    for (const auto& [v, p] : parent_) out[Find(v)].push_back(v);
    return out;
  }

 private:
  std::map<std::string, std::string> parent_;
};

class Translator {
 public:
  Translator(const Catalog& catalog, int* counter)
      : catalog_(catalog), counter_(counter) {}

  struct ScopeTable {
    std::string alias;
    const Schema* schema;
    std::vector<std::string> vars;  ///< one per column
  };
  struct Scope {
    std::vector<ScopeTable> tables;
  };

  Result<std::unique_ptr<TranslatedQuery>> Run(
      const sql::SelectStmt& stmt, const std::string& name,
      std::vector<Scope*> outer, std::set<std::string>* free_outer_used);

 private:
  struct ResolvedVar {
    std::string var;
    Type type;
    std::string column;  ///< original column name (for prettifying)
    int depth;
  };

  std::string FreshName(const std::string& base) {
    if (used_names_.insert(base).second) return base;
    for (;;) {
      std::string cand = StrFormat("%s_%d", base.c_str(), (*counter_)++);
      if (used_names_.insert(cand).second) return cand;
    }
  }

  Result<ResolvedVar> ResolveColumn(const sql::Expr& e,
                                    const std::vector<Scope*>& scopes) {
    assert(e.kind == sql::Expr::Kind::kColumnRef);
    for (size_t depth = 0; depth < scopes.size(); ++depth) {
      const Scope* scope = scopes[depth];
      const ScopeTable* found = nullptr;
      size_t col = 0;
      for (const ScopeTable& t : scope->tables) {
        if (!e.qualifier.empty() && ToUpper(t.alias) != ToUpper(e.qualifier)) {
          continue;
        }
        auto c = t.schema->FindColumn(e.column);
        if (!c.has_value()) continue;
        if (found != nullptr) {
          return Status::InvalidArgument("ambiguous column reference: " +
                                         e.ToString());
        }
        found = &t;
        col = *c;
      }
      if (found != nullptr) {
        return ResolvedVar{found->vars[col], found->schema->column_type(col),
                           found->schema->column_name(col),
                           static_cast<int>(depth)};
      }
    }
    return Status::NotFound("unresolved column: " + e.ToString());
  }

  // -- term translation ----------------------------------------------------

  Result<TermPtr> TranslateTerm(const sql::Expr& e,
                                const std::vector<Scope*>& scopes,
                                TranslatedQuery* out,
                                std::set<std::string>* free_outer,
                                bool allow_subqueries) {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral:
        return Term::Const(e.literal);
      case sql::Expr::Kind::kColumnRef: {
        DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(e, scopes));
        out->var_types[rv.var] = rv.type;
        if (rv.depth > 0) free_outer->insert(rv.var);
        return Term::Var(rv.var);
      }
      case sql::Expr::Kind::kUnaryMinus: {
        DBT_ASSIGN_OR_RETURN(
            TermPtr t, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                     allow_subqueries));
        return Term::Mul(Term::Int(-1), t);
      }
      case sql::Expr::Kind::kBinary: {
        if (!sql::IsArithmetic(e.op)) {
          return Status::NotSupported(
              "boolean expression used as a value: " + e.ToString());
        }
        DBT_ASSIGN_OR_RETURN(
            TermPtr l, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                     allow_subqueries));
        DBT_ASSIGN_OR_RETURN(
            TermPtr r, TranslateTerm(*e.rhs, scopes, out, free_outer,
                                     allow_subqueries));
        switch (e.op) {
          case BinOp::kAdd: return Term::Add(l, r);
          case BinOp::kSub: return Term::Sub(l, r);
          case BinOp::kMul: return Term::Mul(l, r);
          case BinOp::kDiv: return Term::Div(l, r);
          default: break;
        }
        return Status::Internal("unreachable arithmetic op");
      }
      case sql::Expr::Kind::kSubquery: {
        if (!allow_subqueries) {
          return Status::NotSupported(
              "scalar subqueries are supported in WHERE predicates only: " +
              e.ToString());
        }
        return HoistSubquery(*e.subquery, scopes, out, free_outer);
      }
      case sql::Expr::Kind::kAggregate:
        return Status::NotSupported(
            "aggregates may only appear in the SELECT list: " + e.ToString());
      case sql::Expr::Kind::kNot:
        return Status::NotSupported("NOT used as a value: " + e.ToString());
    }
    return Status::Internal("unhandled expression kind in term translation");
  }

  Result<TermPtr> HoistSubquery(const sql::SelectStmt& sub,
                                const std::vector<Scope*>& scopes,
                                TranslatedQuery* out,
                                std::set<std::string>* free_outer) {
    size_t idx = out->subqueries.size();
    std::string sub_name = StrFormat("%s_sub%zu", out->name.c_str(), idx);
    std::set<std::string> inner_free;
    DBT_ASSIGN_OR_RETURN(
        std::unique_ptr<TranslatedQuery> inner,
        Run(sub, sub_name, scopes, &inner_free));
    if (!inner->group_vars.empty()) {
      return Status::NotSupported(
          "scalar subqueries must not use GROUP BY: " + sub.ToString());
    }
    if (inner->columns.size() != 1 ||
        inner->columns[0].kind != ViewColumn::Kind::kTerm) {
      return Status::NotSupported(
          "scalar subqueries must compute a single (non-MIN/MAX) aggregate "
          "value: " +
          sub.ToString());
    }
    if (inner->hybrid) {
      return Status::NotSupported(
          "nested subqueries inside subqueries are not supported: " +
          sub.ToString());
    }
    // Correlation variables: outer variables the inner query references.
    // Those belonging to scopes above *this* query propagate further out.
    std::vector<std::string> corr;
    for (const std::string& v : inner_free) {
      corr.push_back(v);
      bool is_local = out->var_types.count(v) > 0 && !free_outer->count(v);
      // Determine locality precisely: v is local iff it names a column of
      // this query's own scope (depth 0).
      bool local = false;
      for (const ScopeTable& t : scopes[0]->tables) {
        if (std::find(t.vars.begin(), t.vars.end(), v) != t.vars.end()) {
          local = true;
          break;
        }
      }
      (void)is_local;
      if (!local) free_outer->insert(v);
    }
    std::sort(corr.begin(), corr.end());

    // Re-key the inner aggregates by the correlation variables.
    for (TranslatedAggregate& agg : inner->aggregates) {
      if (agg.expr != nullptr) {
        assert(agg.expr->kind == ring::ExprKind::kAggSum);
        agg.expr = Expr::AggSum(corr, agg.expr->children[0]);
      }
    }
    inner->group_vars = corr;
    for (const std::string& v : corr) {
      inner->key_column_names.push_back(v);
      auto it = out->var_types.find(v);
      inner->key_types.push_back(it != out->var_types.end() ? it->second
                                                            : Type::kDouble);
      // The inner query needs the corr var types too.
      if (it != out->var_types.end()) inner->var_types[v] = it->second;
    }

    // Build the reference term: the inner item with its aggregate
    // placeholders re-keyed by the correlation variables.
    std::map<std::string, TermPtr> repl;
    std::vector<TermPtr> key_terms;
    for (const std::string& v : corr) key_terms.push_back(Term::Var(v));
    for (size_t i = 0; i < inner->aggregates.size(); ++i) {
      std::string ph = StrFormat("$%s_agg%zu", sub_name.c_str(), i);
      repl[ph] = Term::MapRead(ph, key_terms);
    }
    TermPtr ref = inner->columns[0].value->ReplaceMapReads(repl);

    for (const std::string& r : inner->relations) out->relations.insert(r);
    TranslatedSubquery ts;
    ts.inner = std::move(inner);
    ts.corr_vars = corr;
    ts.placeholder = StrFormat("$%s", sub_name.c_str());
    out->subqueries.push_back(std::move(ts));
    out->hybrid = true;
    return ref;
  }

  // -- predicate translation -----------------------------------------------

  Result<ExprPtr> PredToRing(const sql::Expr& e,
                             const std::vector<Scope*>& scopes,
                             TranslatedQuery* out,
                             std::set<std::string>* free_outer) {
    switch (e.kind) {
      case sql::Expr::Kind::kBinary: {
        if (e.op == BinOp::kAnd) {
          DBT_ASSIGN_OR_RETURN(ExprPtr l,
                               PredToRing(*e.lhs, scopes, out, free_outer));
          DBT_ASSIGN_OR_RETURN(ExprPtr r,
                               PredToRing(*e.rhs, scopes, out, free_outer));
          return Expr::Prod({l, r});
        }
        if (e.op == BinOp::kOr) {
          DBT_ASSIGN_OR_RETURN(ExprPtr l,
                               PredToRing(*e.lhs, scopes, out, free_outer));
          DBT_ASSIGN_OR_RETURN(ExprPtr r,
                               PredToRing(*e.rhs, scopes, out, free_outer));
          // A OR B  ==  A + B - A*B  over 0/1 indicators.
          return Expr::Sum({l, r, Expr::Neg(Expr::Prod({l, r}))});
        }
        if (sql::IsComparison(e.op)) {
          DBT_ASSIGN_OR_RETURN(
              TermPtr l, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                       /*allow_subqueries=*/true));
          DBT_ASSIGN_OR_RETURN(
              TermPtr r, TranslateTerm(*e.rhs, scopes, out, free_outer,
                                       /*allow_subqueries=*/true));
          return Expr::Cmp(e.op, l, r);
        }
        return Status::NotSupported("unsupported predicate: " + e.ToString());
      }
      case sql::Expr::Kind::kNot: {
        DBT_ASSIGN_OR_RETURN(ExprPtr a,
                             PredToRing(*e.lhs, scopes, out, free_outer));
        return Expr::Sum({Expr::One(), Expr::Neg(a)});
      }
      default:
        return Status::NotSupported("unsupported predicate: " + e.ToString());
    }
  }

  const Catalog& catalog_;
  int* counter_;
  std::set<std::string> used_names_;
};

Result<std::unique_ptr<TranslatedQuery>> Translator::Run(
    const sql::SelectStmt& stmt, const std::string& name,
    std::vector<Scope*> outer, std::set<std::string>* free_outer_used) {
  auto out = std::make_unique<TranslatedQuery>();
  out->name = name;
  out->sql = stmt.ToString();

  // 1. Scope: one fresh variable per (table alias, column).
  Scope scope;
  if (stmt.from.empty()) {
    return Status::NotSupported("standing queries must have a FROM clause");
  }
  for (const sql::TableRef& ref : stmt.from) {
    const Schema* schema = catalog_.FindRelation(ref.table);
    if (schema == nullptr) {
      return Status::NotFound("unknown relation: " + ref.table);
    }
    for (const ScopeTable& t : scope.tables) {
      if (ToUpper(t.alias) == ToUpper(ref.alias)) {
        return Status::InvalidArgument("duplicate table alias: " + ref.alias);
      }
    }
    ScopeTable st;
    st.alias = ref.alias;
    st.schema = schema;
    for (size_t c = 0; c < schema->num_columns(); ++c) {
      st.vars.push_back(FreshName(ToLower(ref.alias) + "_" +
                                  ToLower(schema->column_name(c))));
    }
    out->relations.insert(schema->name());
    scope.tables.push_back(std::move(st));
  }
  std::vector<Scope*> scopes;
  scopes.push_back(&scope);
  scopes.insert(scopes.end(), outer.begin(), outer.end());

  // 2. WHERE conjuncts: local column equalities unify variables; the rest
  //    become indicator predicates.
  std::vector<const sql::Expr*> conjuncts;
  if (stmt.where != nullptr) SplitConjuncts(*stmt.where, &conjuncts);

  VarUnionFind uf;
  std::map<std::string, std::string> var_column;  // var -> column name
  for (const ScopeTable& t : scope.tables) {
    for (size_t c = 0; c < t.vars.size(); ++c) {
      uf.Add(t.vars[c]);
      var_column[t.vars[c]] = ToLower(t.schema->column_name(c));
      out->var_types[t.vars[c]] = t.schema->column_type(c);
    }
  }
  std::vector<const sql::Expr*> predicates;
  for (const sql::Expr* c : conjuncts) {
    bool unified = false;
    if (c->kind == sql::Expr::Kind::kBinary && c->op == BinOp::kEq &&
        c->lhs->kind == sql::Expr::Kind::kColumnRef &&
        c->rhs->kind == sql::Expr::Kind::kColumnRef) {
      auto l = ResolveColumn(*c->lhs, scopes);
      auto r = ResolveColumn(*c->rhs, scopes);
      if (l.ok() && r.ok() && l.value().depth == 0 && r.value().depth == 0) {
        if (!IsNumeric(l.value().type) == IsNumeric(r.value().type)) {
          return Status::TypeError("join between incompatible column types: " +
                                   c->ToString());
        }
        uf.Union(l.value().var, r.value().var);
        unified = true;
      }
    }
    if (!unified) predicates.push_back(c);
  }

  // 3. Canonical + prettified names for unified classes. A class shortens to
  //    the bare column name when every member shares it and no other class
  //    wants the same short name (this reproduces the paper's a/b/c/d naming).
  auto classes = uf.Classes();
  std::map<std::string, int> short_name_claims;
  for (const auto& [root, members] : classes) {
    std::string col = var_column.count(members[0]) ? var_column.at(members[0])
                                                   : std::string();
    bool uniform = !col.empty();
    for (const std::string& m : members) {
      if (!var_column.count(m) || var_column.at(m) != col) uniform = false;
    }
    if (uniform) short_name_claims[col]++;
  }
  std::map<std::string, std::string> rename;
  for (const auto& [root, members] : classes) {
    std::string col = var_column.count(members[0]) ? var_column.at(members[0])
                                                   : std::string();
    bool uniform = !col.empty();
    for (const std::string& m : members) {
      if (!var_column.count(m) || var_column.at(m) != col) uniform = false;
    }
    std::string target = root;
    if (uniform && short_name_claims[col] == 1 &&
        used_names_.insert(col).second) {
      target = col;
    }
    for (const std::string& m : members) {
      if (m != target) rename[m] = target;
    }
    if (target != root) {
      // Keep types for the new name.
      out->var_types[target] = out->var_types[root];
    }
  }
  for (ScopeTable& t : scope.tables) {
    for (std::string& v : t.vars) {
      auto it = rename.find(v);
      if (it != rename.end()) {
        out->var_types[it->second] = out->var_types[v];
        v = it->second;
      }
    }
  }

  // 4. Predicates to ring indicators.
  std::vector<ExprPtr> pred_exprs;
  for (const sql::Expr* p : predicates) {
    DBT_ASSIGN_OR_RETURN(ExprPtr e,
                         PredToRing(*p, scopes, out.get(), free_outer_used));
    pred_exprs.push_back(std::move(e));
  }

  // 5. GROUP BY columns.
  for (const auto& g : stmt.group_by) {
    DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(*g, scopes));
    if (rv.depth != 0) {
      return Status::NotSupported("GROUP BY must use this query's columns");
    }
    out->group_vars.push_back(rv.var);
    out->key_column_names.push_back(rv.column);
    out->key_types.push_back(rv.type);
  }

  // 6. Relation atoms.
  std::vector<ExprPtr> rel_atoms;
  for (const ScopeTable& t : scope.tables) {
    rel_atoms.push_back(Expr::Rel(t.schema->name(), t.vars));
  }

  // 7. SELECT items: aggregates and output columns.
  auto make_body = [&](TermPtr value) {
    std::vector<ExprPtr> fs = rel_atoms;
    fs.insert(fs.end(), pred_exprs.begin(), pred_exprs.end());
    if (value != nullptr) fs.push_back(Expr::ValTerm(value));
    return Expr::Prod(std::move(fs));
  };

  // Translates one item expression into a view-column term, creating
  // aggregate entries on demand.
  std::function<Result<TermPtr>(const sql::Expr&)> item_term =
      [&](const sql::Expr& e) -> Result<TermPtr> {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral:
        return Term::Const(e.literal);
      case sql::Expr::Kind::kColumnRef: {
        DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(e, scopes));
        if (std::find(out->group_vars.begin(), out->group_vars.end(),
                      rv.var) == out->group_vars.end()) {
          return Status::InvalidArgument(
              "SELECT column is neither aggregated nor in GROUP BY: " +
              e.ToString());
        }
        return Term::Var(rv.var);
      }
      case sql::Expr::Kind::kUnaryMinus: {
        DBT_ASSIGN_OR_RETURN(TermPtr t, item_term(*e.lhs));
        return Term::Mul(Term::Int(-1), t);
      }
      case sql::Expr::Kind::kBinary: {
        if (!sql::IsArithmetic(e.op)) {
          return Status::NotSupported(
              "boolean SELECT items are not supported: " + e.ToString());
        }
        DBT_ASSIGN_OR_RETURN(TermPtr l, item_term(*e.lhs));
        DBT_ASSIGN_OR_RETURN(TermPtr r, item_term(*e.rhs));
        switch (e.op) {
          case BinOp::kAdd: return Term::Add(l, r);
          case BinOp::kSub: return Term::Sub(l, r);
          case BinOp::kMul: return Term::Mul(l, r);
          case BinOp::kDiv: return Term::Div(l, r);
          default: break;
        }
        return Status::Internal("unreachable");
      }
      case sql::Expr::Kind::kAggregate: {
        if (e.agg == sql::AggKind::kMin || e.agg == sql::AggKind::kMax) {
          return Status::NotSupported(
              "MIN/MAX must be a whole SELECT item (no arithmetic around "
              "them): " +
              e.ToString());
        }
        // SUM / COUNT / AVG over the ring.
        auto add_agg = [&](sql::AggKind kind,
                           TermPtr arg) -> Result<TermPtr> {
          std::string label = std::string(sql::AggKindName(kind)) + "(" +
                              (arg ? arg->ToString() : "*") + ")";
          size_t idx = out->aggregates.size();
          for (size_t i = 0; i < out->aggregates.size(); ++i) {
            if (out->aggregates[i].label == label) {
              idx = i;
              break;
            }
          }
          if (idx == out->aggregates.size()) {
            TranslatedAggregate ta;
            ta.label = label;
            ta.kind = kind;
            if (kind == sql::AggKind::kCount) {
              ta.value_type = Type::kInt;
              ta.expr = Expr::AggSum(out->group_vars, make_body(nullptr));
            } else {
              DBT_ASSIGN_OR_RETURN(Type at, arg->TypeOf(out->var_types));
              if (!IsNumeric(at)) {
                return Status::NotSupported("SUM over non-numeric argument: " +
                                            label);
              }
              ta.value_type = at == Type::kDouble ? Type::kDouble : Type::kInt;
              ta.expr = Expr::AggSum(out->group_vars, make_body(arg));
            }
            out->aggregates.push_back(std::move(ta));
          }
          std::vector<TermPtr> key_terms;
          for (const std::string& v : out->group_vars) {
            key_terms.push_back(Term::Var(v));
          }
          return Term::MapRead(
              StrFormat("$%s_agg%zu", out->name.c_str(), idx),
              std::move(key_terms));
        };
        TermPtr arg;
        if (e.agg_arg != nullptr) {
          size_t subs_before = out->subqueries.size();
          DBT_ASSIGN_OR_RETURN(
              arg, TranslateTerm(*e.agg_arg, scopes, out.get(),
                                 free_outer_used, /*allow_subqueries=*/false));
          if (out->subqueries.size() != subs_before) {
            return Status::NotSupported(
                "subqueries inside aggregate arguments are not supported");
          }
        } else if (e.agg != sql::AggKind::kCount) {
          return Status::InvalidArgument("only COUNT may omit its argument");
        }
        switch (e.agg) {
          case sql::AggKind::kSum:
            return add_agg(sql::AggKind::kSum, arg);
          case sql::AggKind::kCount:
            return add_agg(sql::AggKind::kCount, nullptr);
          case sql::AggKind::kAvg: {
            DBT_ASSIGN_OR_RETURN(TermPtr s, add_agg(sql::AggKind::kSum, arg));
            DBT_ASSIGN_OR_RETURN(TermPtr c,
                                 add_agg(sql::AggKind::kCount, nullptr));
            return Term::Div(s, c);
          }
          default:
            return Status::Internal("unreachable aggregate kind");
        }
      }
      case sql::Expr::Kind::kSubquery:
        return Status::NotSupported(
            "subqueries in the SELECT list are not supported");
      case sql::Expr::Kind::kNot:
        return Status::NotSupported("boolean SELECT items are not supported");
    }
    return Status::Internal("unhandled item expression");
  };

  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    std::string col_name = item.alias;
    if (col_name.empty()) {
      col_name = item.expr->kind == sql::Expr::Kind::kColumnRef
                     ? item.expr->column
                     : StrFormat("col%zu", i);
    }
    // MIN/MAX as a whole item: the ordered-multiset path.
    if (item.expr->kind == sql::Expr::Kind::kAggregate &&
        (item.expr->agg == sql::AggKind::kMin ||
         item.expr->agg == sql::AggKind::kMax)) {
      if (scope.tables.size() != 1) {
        return Status::NotSupported(
            "MIN/MAX views are supported over a single relation only "
            "(deletions require an ordered multiset per group): " +
            item.expr->ToString());
      }
      if (out->hybrid) {
        return Status::NotSupported(
            "MIN/MAX cannot be combined with subqueries");
      }
      if (item.expr->agg_arg == nullptr) {
        return Status::InvalidArgument("MIN/MAX requires an argument");
      }
      DBT_ASSIGN_OR_RETURN(
          TermPtr arg, TranslateTerm(*item.expr->agg_arg, scopes, out.get(),
                                     free_outer_used,
                                     /*allow_subqueries=*/false));
      DBT_ASSIGN_OR_RETURN(Type at, arg->TypeOf(out->var_types));
      TranslatedAggregate ta;
      ta.label = std::string(sql::AggKindName(item.expr->agg)) + "(" +
                 arg->ToString() + ")";
      ta.kind = item.expr->agg;
      ta.value_type = at;
      ta.is_extreme = true;
      ta.extreme_relation = scope.tables[0].schema->name();
      ta.extreme_rel_vars = scope.tables[0].vars;
      ta.extreme_value = arg;
      if (!pred_exprs.empty()) {
        std::vector<ExprPtr> g = pred_exprs;
        ta.extreme_guard = Expr::Prod(std::move(g));
      }
      size_t agg_idx = out->aggregates.size();
      out->aggregates.push_back(std::move(ta));

      ViewColumn vc;
      vc.kind = ViewColumn::Kind::kExtremeRead;
      vc.name = col_name;
      vc.extreme_map = StrFormat("$%s_agg%zu", out->name.c_str(), agg_idx);
      vc.type = at;
      out->columns.push_back(std::move(vc));
      continue;
    }

    DBT_ASSIGN_OR_RETURN(TermPtr t, item_term(*item.expr));
    ViewColumn vc;
    vc.kind = ViewColumn::Kind::kTerm;
    vc.name = col_name;
    vc.value = t;
    ring::VarTypes tt = out->var_types;
    for (size_t a = 0; a < out->aggregates.size(); ++a) {
      tt[StrFormat("@$%s_agg%zu", out->name.c_str(), a)] =
          out->aggregates[a].value_type;
    }
    auto ty = t->TypeOf(tt);
    vc.type = ty.ok() ? ty.value() : Type::kDouble;
    out->columns.push_back(std::move(vc));
  }

  if (out->aggregates.empty() && out->group_vars.empty()) {
    return Status::NotSupported(
        "standing queries must aggregate or group (plain projections are "
        "served by the snapshot interface)");
  }

  if (!out->group_vars.empty()) {
    out->domain_expr = Expr::AggSum(out->group_vars, make_body(nullptr));
  }

  // Guard rails for extreme aggregates: guards must not read subquery maps.
  for (const TranslatedAggregate& a : out->aggregates) {
    if (a.is_extreme && a.extreme_guard != nullptr) {
      std::set<std::string> reads;
      a.extreme_guard->CollectMapRefs(&reads);
      if (!reads.empty()) {
        return Status::NotSupported(
            "MIN/MAX cannot be combined with subqueries");
      }
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<TranslatedQuery>> Translate(const sql::SelectStmt& stmt,
                                                   const Catalog& catalog,
                                                   const std::string& name,
                                                   int* var_counter) {
  Translator tr(catalog, var_counter);
  std::set<std::string> free_outer;
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<TranslatedQuery> q,
                       tr.Run(stmt, name, {}, &free_outer));
  if (!free_outer.empty()) {
    return Status::Internal("top-level query has unresolved outer variables");
  }
  return q;
}

}  // namespace dbtoaster::compiler
