#include "src/compiler/translate.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "src/common/str.h"

namespace dbtoaster::compiler {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;
using sql::BinOp;

namespace {

void SplitConjuncts(const sql::Expr& e, std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::Expr::Kind::kBinary && e.op == BinOp::kAnd) {
    SplitConjuncts(*e.lhs, out);
    SplitConjuncts(*e.rhs, out);
    return;
  }
  out->push_back(&e);
}

/// Union-find over variable names.
class VarUnionFind {
 public:
  void Add(const std::string& v) { parent_.emplace(v, v); }
  std::string Find(const std::string& v) {
    Add(v);
    std::string root = v;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    std::string cur = v;
    while (parent_[cur] != root) {
      std::string next = parent_[cur];
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }
  std::map<std::string, std::vector<std::string>> Classes() {
    std::map<std::string, std::vector<std::string>> out;
    for (const auto& [v, p] : parent_) out[Find(v)].push_back(v);
    return out;
  }

 private:
  std::map<std::string, std::string> parent_;
};

class Translator {
 public:
  Translator(const Catalog& catalog, int* counter)
      : catalog_(catalog), counter_(counter) {}

  struct ScopeTable {
    std::string alias;
    const Schema* schema;
    std::vector<std::string> vars;  ///< one per column
  };
  struct Scope {
    std::vector<ScopeTable> tables;
  };

  Result<std::unique_ptr<TranslatedQuery>> Run(
      const sql::SelectStmt& stmt, const std::string& name,
      std::vector<Scope*> outer, std::set<std::string>* free_outer_used);

 private:
  struct ResolvedVar {
    std::string var;
    Type type;
    std::string column;  ///< original column name (for prettifying)
    int depth;
    const ScopeTable* table = nullptr;  ///< owning scope table
  };

  std::string FreshName(const std::string& base) {
    if (used_names_.insert(base).second) return base;
    for (;;) {
      std::string cand = StrFormat("%s_%d", base.c_str(), (*counter_)++);
      if (used_names_.insert(cand).second) return cand;
    }
  }

  Result<ResolvedVar> ResolveColumn(const sql::Expr& e,
                                    const std::vector<Scope*>& scopes) {
    assert(e.kind == sql::Expr::Kind::kColumnRef);
    for (size_t depth = 0; depth < scopes.size(); ++depth) {
      const Scope* scope = scopes[depth];
      const ScopeTable* found = nullptr;
      size_t col = 0;
      for (const ScopeTable& t : scope->tables) {
        if (!e.qualifier.empty() && ToUpper(t.alias) != ToUpper(e.qualifier)) {
          continue;
        }
        auto c = t.schema->FindColumn(e.column);
        if (!c.has_value()) continue;
        if (found != nullptr) {
          return Status::InvalidArgument("ambiguous column reference: " +
                                         e.ToString());
        }
        found = &t;
        col = *c;
      }
      if (found != nullptr) {
        return ResolvedVar{found->vars[col], found->schema->column_type(col),
                           found->schema->column_name(col),
                           static_cast<int>(depth), found};
      }
    }
    return Status::NotFound("unresolved column: " + e.ToString());
  }

  // -- term translation ----------------------------------------------------

  Result<TermPtr> TranslateTerm(const sql::Expr& e,
                                const std::vector<Scope*>& scopes,
                                TranslatedQuery* out,
                                std::set<std::string>* free_outer,
                                bool allow_subqueries) {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral:
        return Term::Const(e.literal);
      case sql::Expr::Kind::kColumnRef: {
        DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(e, scopes));
        out->var_types[rv.var] = rv.type;
        if (rv.depth > 0) free_outer->insert(rv.var);
        return Term::Var(rv.var);
      }
      case sql::Expr::Kind::kUnaryMinus: {
        DBT_ASSIGN_OR_RETURN(
            TermPtr t, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                     allow_subqueries));
        return Term::Mul(Term::Int(-1), t);
      }
      case sql::Expr::Kind::kBinary: {
        if (!sql::IsArithmetic(e.op)) {
          return Status::NotSupported(
              "boolean expression used as a value: " + e.ToString());
        }
        DBT_ASSIGN_OR_RETURN(
            TermPtr l, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                     allow_subqueries));
        DBT_ASSIGN_OR_RETURN(
            TermPtr r, TranslateTerm(*e.rhs, scopes, out, free_outer,
                                     allow_subqueries));
        switch (e.op) {
          case BinOp::kAdd: return Term::Add(l, r);
          case BinOp::kSub: return Term::Sub(l, r);
          case BinOp::kMul: return Term::Mul(l, r);
          case BinOp::kDiv: return Term::Div(l, r);
          default: break;
        }
        return Status::Internal("unreachable arithmetic op");
      }
      case sql::Expr::Kind::kSubquery: {
        if (!allow_subqueries) {
          return Status::NotSupported(
              "scalar subqueries are supported in WHERE predicates only: " +
              e.ToString());
        }
        return HoistSubquery(*e.subquery, scopes, out, free_outer);
      }
      case sql::Expr::Kind::kFunc: {
        DBT_ASSIGN_OR_RETURN(
            TermPtr arg, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                       allow_subqueries));
        return Term::Func1(e.func, arg);
      }
      case sql::Expr::Kind::kAggregate:
        return Status::NotSupported(
            "aggregates may only appear in the SELECT list: " + e.ToString());
      case sql::Expr::Kind::kCase:
        return Status::NotSupported(
            "CASE is supported as a whole aggregate argument only: " +
            e.ToString());
      case sql::Expr::Kind::kNot:
        return Status::NotSupported("NOT used as a value: " + e.ToString());
    }
    return Status::Internal("unhandled expression kind in term translation");
  }

  Result<TermPtr> HoistSubquery(const sql::SelectStmt& sub,
                                const std::vector<Scope*>& scopes,
                                TranslatedQuery* out,
                                std::set<std::string>* free_outer) {
    size_t idx = out->subqueries.size();
    std::string sub_name = StrFormat("%s_sub%zu", out->name.c_str(), idx);
    std::set<std::string> inner_free;
    DBT_ASSIGN_OR_RETURN(
        std::unique_ptr<TranslatedQuery> inner,
        Run(sub, sub_name, scopes, &inner_free));
    if (!inner->group_vars.empty()) {
      return Status::NotSupported(
          "scalar subqueries must not use GROUP BY: " + sub.ToString());
    }
    if (inner->columns.size() != 1 ||
        inner->columns[0].kind != ViewColumn::Kind::kTerm) {
      return Status::NotSupported(
          "scalar subqueries must compute a single (non-MIN/MAX) aggregate "
          "value: " +
          sub.ToString());
    }
    if (inner->hybrid) {
      return Status::NotSupported(
          "nested subqueries inside subqueries are not supported: " +
          sub.ToString());
    }
    // Correlation variables: outer variables the inner query references.
    // Those belonging to scopes above *this* query propagate further out.
    std::vector<std::string> corr;
    for (const std::string& v : inner_free) {
      corr.push_back(v);
      bool is_local = out->var_types.count(v) > 0 && !free_outer->count(v);
      // Determine locality precisely: v is local iff it names a column of
      // this query's own scope (depth 0).
      bool local = false;
      for (const ScopeTable& t : scopes[0]->tables) {
        if (std::find(t.vars.begin(), t.vars.end(), v) != t.vars.end()) {
          local = true;
          break;
        }
      }
      (void)is_local;
      if (!local) free_outer->insert(v);
    }
    std::sort(corr.begin(), corr.end());

    // Re-key the inner aggregates by the correlation variables.
    for (TranslatedAggregate& agg : inner->aggregates) {
      if (agg.expr != nullptr) {
        assert(agg.expr->kind == ring::ExprKind::kAggSum);
        agg.expr = Expr::AggSum(corr, agg.expr->children[0]);
      }
    }
    inner->group_vars = corr;
    for (const std::string& v : corr) {
      inner->key_column_names.push_back(v);
      auto it = out->var_types.find(v);
      inner->key_types.push_back(it != out->var_types.end() ? it->second
                                                            : Type::kDouble);
      // The inner query needs the corr var types too.
      if (it != out->var_types.end()) inner->var_types[v] = it->second;
    }

    // Build the reference term: the inner item with its aggregate
    // placeholders re-keyed by the correlation variables.
    std::map<std::string, TermPtr> repl;
    std::vector<TermPtr> key_terms;
    for (const std::string& v : corr) key_terms.push_back(Term::Var(v));
    for (size_t i = 0; i < inner->aggregates.size(); ++i) {
      std::string ph = StrFormat("$%s_agg%zu", sub_name.c_str(), i);
      repl[ph] = Term::MapRead(ph, key_terms);
    }
    TermPtr ref = inner->columns[0].value->ReplaceMapReads(repl);

    for (const std::string& r : inner->relations) out->relations.insert(r);
    TranslatedSubquery ts;
    ts.inner = std::move(inner);
    ts.corr_vars = corr;
    ts.placeholder = StrFormat("$%s", sub_name.c_str());
    out->subqueries.push_back(std::move(ts));
    out->hybrid = true;
    return ref;
  }

  // -- predicate translation -----------------------------------------------

  Result<ExprPtr> PredToRing(const sql::Expr& e,
                             const std::vector<Scope*>& scopes,
                             TranslatedQuery* out,
                             std::set<std::string>* free_outer) {
    switch (e.kind) {
      case sql::Expr::Kind::kBinary: {
        if (e.op == BinOp::kAnd) {
          DBT_ASSIGN_OR_RETURN(ExprPtr l,
                               PredToRing(*e.lhs, scopes, out, free_outer));
          DBT_ASSIGN_OR_RETURN(ExprPtr r,
                               PredToRing(*e.rhs, scopes, out, free_outer));
          return Expr::Prod({l, r});
        }
        if (e.op == BinOp::kOr) {
          DBT_ASSIGN_OR_RETURN(ExprPtr l,
                               PredToRing(*e.lhs, scopes, out, free_outer));
          DBT_ASSIGN_OR_RETURN(ExprPtr r,
                               PredToRing(*e.rhs, scopes, out, free_outer));
          // A OR B  ==  A + B - A*B  over 0/1 indicators.
          return Expr::Sum({l, r, Expr::Neg(Expr::Prod({l, r}))});
        }
        if (sql::IsComparison(e.op)) {
          DBT_ASSIGN_OR_RETURN(
              TermPtr l, TranslateTerm(*e.lhs, scopes, out, free_outer,
                                       /*allow_subqueries=*/true));
          DBT_ASSIGN_OR_RETURN(
              TermPtr r, TranslateTerm(*e.rhs, scopes, out, free_outer,
                                       /*allow_subqueries=*/true));
          // Type discipline: strings compare with strings only, and LIKE
          // requires string operands. Placeholder map reads type as numeric,
          // which is what they hold.
          auto lt = l->TypeOf(out->var_types);
          auto rt = r->TypeOf(out->var_types);
          if (lt.ok() && rt.ok()) {
            const bool ls = lt.value() == Type::kString;
            const bool rs = rt.value() == Type::kString;
            if (e.op == BinOp::kLike || e.op == BinOp::kNotLike) {
              if (!ls || !rs) {
                return Status::TypeError(
                    "LIKE requires string operands: " + e.ToString());
              }
            } else if (ls != rs) {
              return Status::TypeError(
                  "comparison between string and numeric operands: " +
                  e.ToString());
            }
          }
          return Expr::Cmp(e.op, l, r);
        }
        return Status::NotSupported("unsupported predicate: " + e.ToString());
      }
      case sql::Expr::Kind::kNot: {
        DBT_ASSIGN_OR_RETURN(ExprPtr a,
                             PredToRing(*e.lhs, scopes, out, free_outer));
        return Expr::Sum({Expr::One(), Expr::Neg(a)});
      }
      default:
        return Status::NotSupported("unsupported predicate: " + e.ToString());
    }
  }

  const Catalog& catalog_;
  int* counter_;
  std::set<std::string> used_names_;
};

Result<std::unique_ptr<TranslatedQuery>> Translator::Run(
    const sql::SelectStmt& stmt, const std::string& name,
    std::vector<Scope*> outer, std::set<std::string>* free_outer_used) {
  auto out = std::make_unique<TranslatedQuery>();
  out->name = name;
  out->sql = stmt.ToString();

  // 1. Scope: one fresh variable per (table alias, column). LEFT JOIN: at
  //    most one, and it must be the last FROM entry (the supported shape of
  //    the outer-join rewrite).
  Scope scope;
  if (stmt.from.empty()) {
    return Status::NotSupported("standing queries must have a FROM clause");
  }
  int left_idx = -1;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    const sql::TableRef& ref = stmt.from[i];
    const Schema* schema = catalog_.FindRelation(ref.table);
    if (schema == nullptr) {
      return Status::NotFound("unknown relation: " + ref.table);
    }
    if (ref.join == sql::TableRef::Join::kLeft) {
      if (left_idx >= 0) {
        return Status::NotSupported(
            "at most one LEFT JOIN per query is supported");
      }
      if (i + 1 != stmt.from.size()) {
        return Status::NotSupported(
            "LEFT JOIN must be the last FROM entry");
      }
      left_idx = static_cast<int>(i);
    }
    for (const ScopeTable& t : scope.tables) {
      if (ToUpper(t.alias) == ToUpper(ref.alias)) {
        return Status::InvalidArgument("duplicate table alias: " + ref.alias);
      }
    }
    ScopeTable st;
    st.alias = ref.alias;
    st.schema = schema;
    for (size_t c = 0; c < schema->num_columns(); ++c) {
      st.vars.push_back(FreshName(ToLower(ref.alias) + "_" +
                                  ToLower(schema->column_name(c))));
    }
    out->relations.insert(schema->name());
    scope.tables.push_back(std::move(st));
  }
  if (left_idx >= 0) {
    // The unmatched branch derives deltas assuming left and right sides
    // change independently; a self-outer-join breaks that.
    const Schema* right_schema = scope.tables[left_idx].schema;
    for (int i = 0; i < left_idx; ++i) {
      if (scope.tables[i].schema->name() == right_schema->name()) {
        return Status::NotSupported(
            "LEFT JOIN of a relation with itself is not supported");
      }
    }
  }
  std::vector<Scope*> scopes;
  scopes.push_back(&scope);
  scopes.insert(scopes.end(), outer.begin(), outer.end());

  const ScopeTable* right_table =
      left_idx >= 0 ? &scope.tables[left_idx] : nullptr;
  // Does `e` reference a column of `t` (at this query's depth)?
  std::function<bool(const sql::Expr&, const ScopeTable&)> refs_table =
      [&](const sql::Expr& e, const ScopeTable& t) -> bool {
    if (e.kind == sql::Expr::Kind::kColumnRef) {
      auto rv = ResolveColumn(e, scopes);
      return rv.ok() && rv.value().depth == 0 && rv.value().table == &t;
    }
    if (e.kind == sql::Expr::Kind::kSubquery) return true;  // conservative
    if (e.lhs && refs_table(*e.lhs, t)) return true;
    if (e.rhs && refs_table(*e.rhs, t)) return true;
    if (e.agg_arg && refs_table(*e.agg_arg, t)) return true;
    for (const sql::Expr::CaseBranch& b : e.case_branches) {
      if (refs_table(*b.when, t) || refs_table(*b.then, t)) return true;
    }
    if (e.case_else && refs_table(*e.case_else, t)) return true;
    return false;
  };

  // 2. WHERE conjuncts (plus inner-JOIN ON conditions, which have identical
  //    semantics): local column equalities unify variables; the rest become
  //    indicator predicates. The LEFT JOIN's ON conjuncts are kept apart —
  //    they define the match, not a filter.
  std::vector<const sql::Expr*> conjuncts;
  if (stmt.where != nullptr) SplitConjuncts(*stmt.where, &conjuncts);
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (stmt.from[i].join == sql::TableRef::Join::kInner) {
      SplitConjuncts(*stmt.from[i].on, &conjuncts);
    }
  }
  std::vector<const sql::Expr*> on_conjuncts;
  if (left_idx >= 0) SplitConjuncts(*stmt.from[left_idx].on, &on_conjuncts);

  // Subqueries anywhere in a LEFT JOIN query's predicates are rejected
  // outright: treating them as "references the right side" would silently
  // degrade the join to an inner join and drop unmatched rows SQL keeps.
  if (left_idx >= 0) {
    std::function<bool(const sql::Expr&)> has_subquery =
        [&](const sql::Expr& e) -> bool {
      if (e.kind == sql::Expr::Kind::kSubquery) return true;
      if (e.lhs && has_subquery(*e.lhs)) return true;
      if (e.rhs && has_subquery(*e.rhs)) return true;
      if (e.agg_arg && has_subquery(*e.agg_arg)) return true;
      for (const sql::Expr::CaseBranch& b : e.case_branches) {
        if (has_subquery(*b.when) || has_subquery(*b.then)) return true;
      }
      return e.case_else && has_subquery(*e.case_else);
    };
    for (const sql::Expr* c : conjuncts) {
      if (has_subquery(*c)) {
        return Status::NotSupported(
            "LEFT JOIN cannot be combined with subqueries");
      }
    }
  }

  // SQL NULL semantics make the unmatched branch vanish when any WHERE
  // conjunct touches the right side (a comparison with NULL is never true):
  // the LEFT JOIN then degenerates to an inner join.
  bool unmatched_possible = left_idx >= 0;
  if (unmatched_possible) {
    for (const sql::Expr* c : conjuncts) {
      if (refs_table(*c, *right_table)) {
        unmatched_possible = false;
        break;
      }
    }
  }

  VarUnionFind uf;
  std::map<std::string, std::string> var_column;  // var -> column name
  for (const ScopeTable& t : scope.tables) {
    for (size_t c = 0; c < t.vars.size(); ++c) {
      uf.Add(t.vars[c]);
      var_column[t.vars[c]] = ToLower(t.schema->column_name(c));
      out->var_types[t.vars[c]] = t.schema->column_type(c);
    }
  }
  std::vector<const sql::Expr*> predicates;
  for (const sql::Expr* c : conjuncts) {
    bool unified = false;
    if (c->kind == sql::Expr::Kind::kBinary && c->op == BinOp::kEq &&
        c->lhs->kind == sql::Expr::Kind::kColumnRef &&
        c->rhs->kind == sql::Expr::Kind::kColumnRef) {
      auto l = ResolveColumn(*c->lhs, scopes);
      auto r = ResolveColumn(*c->rhs, scopes);
      if (l.ok() && r.ok() && l.value().depth == 0 && r.value().depth == 0) {
        if (!IsNumeric(l.value().type) == IsNumeric(r.value().type)) {
          return Status::TypeError("join between incompatible column types: " +
                                   c->ToString());
        }
        uf.Union(l.value().var, r.value().var);
        unified = true;
      }
    }
    if (!unified) predicates.push_back(c);
  }

  // LEFT JOIN ON conjuncts: left = right column equalities unify (they are
  // the join keys of the match-count map); the rest must be right-side-only
  // predicates (they restrict which right rows count as matches).
  std::vector<const sql::Expr*> on_predicates;
  for (const sql::Expr* c : on_conjuncts) {
    bool unified = false;
    if (c->kind == sql::Expr::Kind::kBinary && c->op == BinOp::kEq &&
        c->lhs->kind == sql::Expr::Kind::kColumnRef &&
        c->rhs->kind == sql::Expr::Kind::kColumnRef) {
      auto l = ResolveColumn(*c->lhs, scopes);
      auto r = ResolveColumn(*c->rhs, scopes);
      if (l.ok() && r.ok() && l.value().depth == 0 && r.value().depth == 0) {
        const bool lr = l.value().table == right_table;
        const bool rr = r.value().table == right_table;
        if (!lr && !rr) {
          return Status::NotSupported(
              "LEFT JOIN ON condition over left-side columns only: " +
              c->ToString());
        }
        if (!IsNumeric(l.value().type) == IsNumeric(r.value().type)) {
          return Status::TypeError("join between incompatible column types: " +
                                   c->ToString());
        }
        uf.Union(l.value().var, r.value().var);
        unified = true;
      }
    }
    if (!unified) {
      if (refs_table(*c, *right_table)) {
        // Must reference the right side ONLY (checked per-table below once
        // variables are final); left references inside a non-equality ON
        // conjunct are out of the supported fragment.
        bool refs_left = false;
        for (const ScopeTable& t : scope.tables) {
          if (&t != right_table && refs_table(*c, t)) {
            refs_left = true;
            break;
          }
        }
        if (refs_left) {
          return Status::NotSupported(
              "LEFT JOIN ON supports left = right equalities plus "
              "right-side predicates: " +
              c->ToString());
        }
        on_predicates.push_back(c);
      } else {
        return Status::NotSupported(
            "LEFT JOIN ON supports left = right equalities plus right-side "
            "predicates: " +
            c->ToString());
      }
    }
  }

  // 3. Canonical + prettified names for unified classes. A class shortens to
  //    the bare column name when every member shares it and no other class
  //    wants the same short name (this reproduces the paper's a/b/c/d naming).
  auto classes = uf.Classes();
  std::map<std::string, int> short_name_claims;
  for (const auto& [root, members] : classes) {
    std::string col = var_column.count(members[0]) ? var_column.at(members[0])
                                                   : std::string();
    bool uniform = !col.empty();
    for (const std::string& m : members) {
      if (!var_column.count(m) || var_column.at(m) != col) uniform = false;
    }
    if (uniform) short_name_claims[col]++;
  }
  std::map<std::string, std::string> rename;
  for (const auto& [root, members] : classes) {
    std::string col = var_column.count(members[0]) ? var_column.at(members[0])
                                                   : std::string();
    bool uniform = !col.empty();
    for (const std::string& m : members) {
      if (!var_column.count(m) || var_column.at(m) != col) uniform = false;
    }
    std::string target = root;
    if (uniform && short_name_claims[col] == 1 &&
        used_names_.insert(col).second) {
      target = col;
    }
    for (const std::string& m : members) {
      if (m != target) rename[m] = target;
    }
    if (target != root) {
      // Keep types for the new name.
      out->var_types[target] = out->var_types[root];
    }
  }
  for (ScopeTable& t : scope.tables) {
    for (std::string& v : t.vars) {
      auto it = rename.find(v);
      if (it != rename.end()) {
        out->var_types[it->second] = out->var_types[v];
        v = it->second;
      }
    }
  }

  // 4. Predicates to ring indicators.
  std::vector<ExprPtr> pred_exprs;
  for (const sql::Expr* p : predicates) {
    DBT_ASSIGN_OR_RETURN(ExprPtr e,
                         PredToRing(*p, scopes, out.get(), free_outer_used));
    pred_exprs.push_back(std::move(e));
  }

  // 4b. LEFT JOIN bookkeeping: join variables (shared between the sides
  // after unification) and the translated right-side ON predicates.
  std::set<std::string> left_var_set, right_only;
  std::vector<std::string> join_vars;
  std::vector<ExprPtr> on_pred_exprs;
  if (left_idx >= 0) {
    std::set<std::string> right_var_set;
    for (const ScopeTable& t : scope.tables) {
      if (&t == right_table) continue;
      left_var_set.insert(t.vars.begin(), t.vars.end());
    }
    std::set<std::string> seen;
    for (const std::string& v : right_table->vars) {
      right_var_set.insert(v);
      if (left_var_set.count(v)) {
        if (seen.insert(v).second) join_vars.push_back(v);
      } else {
        right_only.insert(v);
      }
    }
    for (const sql::Expr* p : on_predicates) {
      DBT_ASSIGN_OR_RETURN(ExprPtr e,
                           PredToRing(*p, scopes, out.get(), free_outer_used));
      for (const std::string& v : e->AllVars()) {
        if (!right_var_set.count(v)) {
          return Status::NotSupported(
              "LEFT JOIN ON predicate must use right-side columns only: " +
              p->ToString());
        }
      }
      on_pred_exprs.push_back(std::move(e));
    }
    if (unmatched_possible && join_vars.empty()) {
      return Status::NotSupported(
          "LEFT JOIN requires at least one left = right column equality in "
          "ON");
    }
  }

  // 5. GROUP BY columns.
  for (const auto& g : stmt.group_by) {
    DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(*g, scopes));
    if (rv.depth != 0) {
      return Status::NotSupported("GROUP BY must use this query's columns");
    }
    // Syntactic check (not the unified variable): grouping by O.K when O is
    // left-joined must put unmatched rows under a NULL key even if K is
    // equated with a left column, so it stays out of the fragment.
    if (unmatched_possible && rv.table == right_table) {
      return Status::NotSupported(
          "GROUP BY over the left-joined relation's columns is not "
          "supported (unmatched rows would group under NULL)");
    }
    out->group_vars.push_back(rv.var);
    out->key_column_names.push_back(rv.column);
    out->key_types.push_back(rv.type);
  }

  // 6. Relation atoms.
  std::vector<ExprPtr> rel_atoms;
  std::vector<ExprPtr> left_atoms;  ///< all but the left-joined relation
  for (const ScopeTable& t : scope.tables) {
    rel_atoms.push_back(Expr::Rel(t.schema->name(), t.vars));
    if (&t != right_table) {
      left_atoms.push_back(rel_atoms.back());
    }
  }

  // 7. SELECT items: aggregates and output columns. A body is the join of
  // all atoms with every predicate (ON predicates included — for the inner
  // part of a LEFT JOIN they restrict matches), an optional extra guard
  // (CASE branch condition) and an optional value term.
  auto make_body = [&](ExprPtr guard, TermPtr value) {
    std::vector<ExprPtr> fs = rel_atoms;
    fs.insert(fs.end(), pred_exprs.begin(), pred_exprs.end());
    fs.insert(fs.end(), on_pred_exprs.begin(), on_pred_exprs.end());
    if (guard != nullptr) fs.push_back(guard);
    if (value != nullptr) fs.push_back(Expr::ValTerm(value));
    return Expr::Prod(std::move(fs));
  };
  // The unmatched (left-only) counterpart: left atoms and WHERE predicates
  // only; the compile driver multiplies in the [cnt = 0] indicator.
  auto make_left_body = [&](ExprPtr guard, TermPtr value) {
    std::vector<ExprPtr> fs = left_atoms;
    fs.insert(fs.end(), pred_exprs.begin(), pred_exprs.end());
    if (guard != nullptr) fs.push_back(guard);
    if (value != nullptr) fs.push_back(Expr::ValTerm(value));
    return Expr::Prod(std::move(fs));
  };
  const bool left_live = left_idx >= 0 && unmatched_possible;

  // Translates one item expression into a view-column term, creating
  // aggregate entries on demand.
  std::function<Result<TermPtr>(const sql::Expr&)> item_term =
      [&](const sql::Expr& e) -> Result<TermPtr> {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral:
        return Term::Const(e.literal);
      case sql::Expr::Kind::kColumnRef: {
        DBT_ASSIGN_OR_RETURN(ResolvedVar rv, ResolveColumn(e, scopes));
        if (std::find(out->group_vars.begin(), out->group_vars.end(),
                      rv.var) == out->group_vars.end()) {
          return Status::InvalidArgument(
              "SELECT column is neither aggregated nor in GROUP BY: " +
              e.ToString());
        }
        return Term::Var(rv.var);
      }
      case sql::Expr::Kind::kUnaryMinus: {
        DBT_ASSIGN_OR_RETURN(TermPtr t, item_term(*e.lhs));
        return Term::Mul(Term::Int(-1), t);
      }
      case sql::Expr::Kind::kBinary: {
        if (!sql::IsArithmetic(e.op)) {
          return Status::NotSupported(
              "boolean SELECT items are not supported: " + e.ToString());
        }
        DBT_ASSIGN_OR_RETURN(TermPtr l, item_term(*e.lhs));
        DBT_ASSIGN_OR_RETURN(TermPtr r, item_term(*e.rhs));
        switch (e.op) {
          case BinOp::kAdd: return Term::Add(l, r);
          case BinOp::kSub: return Term::Sub(l, r);
          case BinOp::kMul: return Term::Mul(l, r);
          case BinOp::kDiv: return Term::Div(l, r);
          default: break;
        }
        return Status::Internal("unreachable");
      }
      case sql::Expr::Kind::kAggregate: {
        if (e.agg == sql::AggKind::kMin || e.agg == sql::AggKind::kMax) {
          return Status::NotSupported(
              "MIN/MAX must be a whole SELECT item (no arithmetic around "
              "them): " +
              e.ToString());
        }
        // SUM / COUNT / AVG over the ring. An argument is a list of guarded
        // branches (one unguarded branch normally; one per WHEN for CASE).
        struct AggBranch {
          ExprPtr guard;  // null = unguarded
          TermPtr value;
        };
        auto add_agg = [&](sql::AggKind kind, const std::string& label,
                           const std::vector<AggBranch>& branches,
                           Type value_type) -> Result<TermPtr> {
          size_t idx = out->aggregates.size();
          for (size_t i = 0; i < out->aggregates.size(); ++i) {
            if (out->aggregates[i].label == label) {
              idx = i;
              break;
            }
          }
          if (idx == out->aggregates.size()) {
            TranslatedAggregate ta;
            ta.label = label;
            ta.kind = kind;
            ta.value_type = value_type;
            std::vector<ExprPtr> addends, left_addends;
            if (branches.empty()) {
              addends.push_back(make_body(nullptr, nullptr));
              left_addends.push_back(make_left_body(nullptr, nullptr));
            } else {
              for (const AggBranch& b : branches) {
                addends.push_back(make_body(b.guard, b.value));
                left_addends.push_back(make_left_body(b.guard, b.value));
              }
            }
            ta.expr =
                Expr::AggSum(out->group_vars, Expr::Sum(std::move(addends)));
            if (left_live) {
              ta.unmatched_body = Expr::Sum(std::move(left_addends));
            }
            out->aggregates.push_back(std::move(ta));
          }
          std::vector<TermPtr> key_terms;
          for (const std::string& v : out->group_vars) {
            key_terms.push_back(Term::Var(v));
          }
          return Term::MapRead(
              StrFormat("$%s_agg%zu", out->name.c_str(), idx),
              std::move(key_terms));
        };

        std::vector<AggBranch> branches;
        Type arg_type = Type::kInt;
        std::string arg_label = "*";
        if (e.agg_arg != nullptr) {
          if (left_live && refs_table(*e.agg_arg, *right_table)) {
            return Status::NotSupported(
                "aggregates over the left-joined relation's columns are not "
                "supported (unmatched rows contribute NULL): " +
                e.ToString());
          }
          size_t subs_before = out->subqueries.size();
          if (e.agg_arg->kind == sql::Expr::Kind::kCase) {
            // SUM(CASE WHEN p THEN a ... ELSE z END): one guarded branch per
            // WHEN (with the preceding conditions negated) plus the ELSE.
            const sql::Expr& c = *e.agg_arg;
            std::vector<ExprPtr> nots;  // accumulated (1 - w_j)
            for (const sql::Expr::CaseBranch& b : c.case_branches) {
              DBT_ASSIGN_OR_RETURN(
                  ExprPtr w, PredToRing(*b.when, scopes, out.get(),
                                        free_outer_used));
              AggBranch br;
              std::vector<ExprPtr> gs = nots;
              gs.push_back(w);
              br.guard = Expr::Prod(std::move(gs));
              DBT_ASSIGN_OR_RETURN(
                  br.value, TranslateTerm(*b.then, scopes, out.get(),
                                          free_outer_used,
                                          /*allow_subqueries=*/false));
              branches.push_back(std::move(br));
              nots.push_back(Expr::Sum({Expr::One(), Expr::Neg(w)}));
            }
            AggBranch else_br;
            else_br.guard = Expr::Prod(std::move(nots));
            if (c.case_else != nullptr) {
              DBT_ASSIGN_OR_RETURN(
                  else_br.value, TranslateTerm(*c.case_else, scopes,
                                               out.get(), free_outer_used,
                                               /*allow_subqueries=*/false));
            } else {
              else_br.value = Term::Int(0);
            }
            branches.push_back(std::move(else_br));
            arg_label = c.ToString();
          } else {
            AggBranch br;
            DBT_ASSIGN_OR_RETURN(
                br.value, TranslateTerm(*e.agg_arg, scopes, out.get(),
                                        free_outer_used,
                                        /*allow_subqueries=*/false));
            arg_label = br.value->ToString();
            branches.push_back(std::move(br));
          }
          if (out->subqueries.size() != subs_before) {
            return Status::NotSupported(
                "subqueries inside aggregate arguments are not supported");
          }
          for (const AggBranch& b : branches) {
            DBT_ASSIGN_OR_RETURN(Type bt, b.value->TypeOf(out->var_types));
            if (!IsNumeric(bt)) {
              return Status::NotSupported(
                  "aggregates over non-numeric arguments: " + e.ToString());
            }
            arg_type = PromoteNumeric(arg_type, bt);
          }
        } else if (e.agg != sql::AggKind::kCount) {
          return Status::InvalidArgument("only COUNT may omit its argument");
        }

        auto label_for = [&](sql::AggKind k, const std::string& body) {
          return std::string(sql::AggKindName(k)) + "(" + body + ")";
        };
        switch (e.agg) {
          case sql::AggKind::kSum:
            return add_agg(sql::AggKind::kSum,
                           label_for(sql::AggKind::kSum, arg_label), branches,
                           arg_type == Type::kDouble ? Type::kDouble
                                                     : Type::kInt);
          case sql::AggKind::kCount:
            // No NULLs in the data model: COUNT(expr) == COUNT(*).
            return add_agg(sql::AggKind::kCount,
                           label_for(sql::AggKind::kCount, "*"), {},
                           Type::kInt);
          case sql::AggKind::kAvg: {
            DBT_ASSIGN_OR_RETURN(
                TermPtr s,
                add_agg(sql::AggKind::kSum,
                        label_for(sql::AggKind::kSum, arg_label), branches,
                        arg_type == Type::kDouble ? Type::kDouble
                                                  : Type::kInt));
            DBT_ASSIGN_OR_RETURN(
                TermPtr c, add_agg(sql::AggKind::kCount,
                                   label_for(sql::AggKind::kCount, "*"), {},
                                   Type::kInt));
            return Term::Div(s, c);
          }
          default:
            return Status::Internal("unreachable aggregate kind");
        }
      }
      case sql::Expr::Kind::kSubquery:
        return Status::NotSupported(
            "subqueries in the SELECT list are not supported");
      case sql::Expr::Kind::kFunc: {
        DBT_ASSIGN_OR_RETURN(TermPtr t, item_term(*e.lhs));
        return Term::Func1(e.func, t);
      }
      case sql::Expr::Kind::kCase:
        return Status::NotSupported(
            "CASE is supported as a whole aggregate argument only: " +
            e.ToString());
      case sql::Expr::Kind::kNot:
        return Status::NotSupported("boolean SELECT items are not supported");
    }
    return Status::Internal("unhandled item expression");
  };

  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    std::string col_name = item.alias;
    if (col_name.empty()) {
      col_name = item.expr->kind == sql::Expr::Kind::kColumnRef
                     ? item.expr->column
                     : StrFormat("col%zu", i);
    }
    // MIN/MAX as a whole item: the ordered-multiset path.
    if (item.expr->kind == sql::Expr::Kind::kAggregate &&
        (item.expr->agg == sql::AggKind::kMin ||
         item.expr->agg == sql::AggKind::kMax)) {
      if (scope.tables.size() != 1) {
        return Status::NotSupported(
            "MIN/MAX views are supported over a single relation only "
            "(deletions require an ordered multiset per group): " +
            item.expr->ToString());
      }
      if (out->hybrid) {
        return Status::NotSupported(
            "MIN/MAX cannot be combined with subqueries");
      }
      if (item.expr->agg_arg == nullptr) {
        return Status::InvalidArgument("MIN/MAX requires an argument");
      }
      DBT_ASSIGN_OR_RETURN(
          TermPtr arg, TranslateTerm(*item.expr->agg_arg, scopes, out.get(),
                                     free_outer_used,
                                     /*allow_subqueries=*/false));
      DBT_ASSIGN_OR_RETURN(Type at, arg->TypeOf(out->var_types));
      TranslatedAggregate ta;
      ta.label = std::string(sql::AggKindName(item.expr->agg)) + "(" +
                 arg->ToString() + ")";
      ta.kind = item.expr->agg;
      ta.value_type = at;
      ta.is_extreme = true;
      ta.extreme_relation = scope.tables[0].schema->name();
      ta.extreme_rel_vars = scope.tables[0].vars;
      ta.extreme_value = arg;
      if (!pred_exprs.empty()) {
        std::vector<ExprPtr> g = pred_exprs;
        ta.extreme_guard = Expr::Prod(std::move(g));
      }
      size_t agg_idx = out->aggregates.size();
      out->aggregates.push_back(std::move(ta));

      ViewColumn vc;
      vc.kind = ViewColumn::Kind::kExtremeRead;
      vc.name = col_name;
      vc.extreme_map = StrFormat("$%s_agg%zu", out->name.c_str(), agg_idx);
      vc.type = at;
      out->columns.push_back(std::move(vc));
      continue;
    }

    DBT_ASSIGN_OR_RETURN(TermPtr t, item_term(*item.expr));
    ViewColumn vc;
    vc.kind = ViewColumn::Kind::kTerm;
    vc.name = col_name;
    vc.value = t;
    ring::VarTypes tt = out->var_types;
    for (size_t a = 0; a < out->aggregates.size(); ++a) {
      tt[StrFormat("@$%s_agg%zu", out->name.c_str(), a)] =
          out->aggregates[a].value_type;
    }
    auto ty = t->TypeOf(tt);
    vc.type = ty.ok() ? ty.value() : Type::kDouble;
    out->columns.push_back(std::move(vc));
  }

  // HAVING: a post-aggregation guard over the group keys and aggregate
  // values. Aggregates referenced only here are still materialised (the
  // guard reads their maps), via the same item_term machinery.
  if (stmt.having != nullptr) {
    std::function<Result<ExprPtr>(const sql::Expr&)> having_pred =
        [&](const sql::Expr& e) -> Result<ExprPtr> {
      switch (e.kind) {
        case sql::Expr::Kind::kBinary: {
          if (e.op == BinOp::kAnd) {
            DBT_ASSIGN_OR_RETURN(ExprPtr l, having_pred(*e.lhs));
            DBT_ASSIGN_OR_RETURN(ExprPtr r, having_pred(*e.rhs));
            return Expr::Prod({l, r});
          }
          if (e.op == BinOp::kOr) {
            DBT_ASSIGN_OR_RETURN(ExprPtr l, having_pred(*e.lhs));
            DBT_ASSIGN_OR_RETURN(ExprPtr r, having_pred(*e.rhs));
            return Expr::Sum({l, r, Expr::Neg(Expr::Prod({l, r}))});
          }
          if (sql::IsComparison(e.op)) {
            DBT_ASSIGN_OR_RETURN(TermPtr l, item_term(*e.lhs));
            DBT_ASSIGN_OR_RETURN(TermPtr r, item_term(*e.rhs));
            // Same type discipline as WHERE predicates (aggregate reads
            // type through their "@$..." placeholder entries).
            ring::VarTypes tt = out->var_types;
            for (size_t a = 0; a < out->aggregates.size(); ++a) {
              tt[StrFormat("@$%s_agg%zu", out->name.c_str(), a)] =
                  out->aggregates[a].value_type;
            }
            auto lt = l->TypeOf(tt);
            auto rt = r->TypeOf(tt);
            if (lt.ok() && rt.ok()) {
              const bool ls = lt.value() == Type::kString;
              const bool rs = rt.value() == Type::kString;
              if (e.op == BinOp::kLike || e.op == BinOp::kNotLike) {
                if (!ls || !rs) {
                  return Status::TypeError(
                      "LIKE requires string operands: " + e.ToString());
                }
              } else if (ls != rs) {
                return Status::TypeError(
                    "comparison between string and numeric operands: " +
                    e.ToString());
              }
            }
            return Expr::Cmp(e.op, l, r);
          }
          return Status::NotSupported("unsupported HAVING predicate: " +
                                      e.ToString());
        }
        case sql::Expr::Kind::kNot: {
          DBT_ASSIGN_OR_RETURN(ExprPtr a, having_pred(*e.lhs));
          return Expr::Sum({Expr::One(), Expr::Neg(a)});
        }
        default:
          return Status::NotSupported("unsupported HAVING predicate: " +
                                      e.ToString());
      }
    };
    DBT_ASSIGN_OR_RETURN(out->having, having_pred(*stmt.having));
  }

  if (out->aggregates.empty() && out->group_vars.empty()) {
    return Status::NotSupported(
        "standing queries must aggregate or group (plain projections are "
        "served by the snapshot interface)");
  }

  if (!out->group_vars.empty()) {
    out->domain_expr =
        Expr::AggSum(out->group_vars, make_body(nullptr, nullptr));
  }

  // LEFT JOIN lowering inputs for the compile driver.
  if (left_live) {
    if (out->hybrid) {
      return Status::NotSupported(
          "LEFT JOIN cannot be combined with subqueries");
    }
    auto lj = std::make_unique<TranslatedLeftJoin>();
    lj->right_relation = right_table->schema->name();
    lj->right_vars = right_table->vars;
    lj->join_vars = join_vars;
    lj->right_preds = on_pred_exprs;
    std::vector<ExprPtr> cnt_factors;
    cnt_factors.push_back(
        Expr::Rel(right_table->schema->name(), right_table->vars));
    cnt_factors.insert(cnt_factors.end(), on_pred_exprs.begin(),
                       on_pred_exprs.end());
    lj->cnt_body = Expr::Prod(std::move(cnt_factors));
    lj->unmatched_domain_body = make_left_body(nullptr, nullptr);
    out->left_join = std::move(lj);
  }

  // Guard rails for extreme aggregates: guards must not read subquery maps.
  for (const TranslatedAggregate& a : out->aggregates) {
    if (a.is_extreme && a.extreme_guard != nullptr) {
      std::set<std::string> reads;
      a.extreme_guard->CollectMapRefs(&reads);
      if (!reads.empty()) {
        return Status::NotSupported(
            "MIN/MAX cannot be combined with subqueries");
      }
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<TranslatedQuery>> Translate(const sql::SelectStmt& stmt,
                                                   const Catalog& catalog,
                                                   const std::string& name,
                                                   int* var_counter) {
  Translator tr(catalog, var_counter);
  std::set<std::string> free_outer;
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<TranslatedQuery> q,
                       tr.Run(stmt, name, {}, &free_outer));
  if (!free_outer.empty()) {
    return Status::Internal("top-level query has unresolved outer variables");
  }
  return q;
}

}  // namespace dbtoaster::compiler
