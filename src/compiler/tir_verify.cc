#include "src/compiler/tir_verify.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "src/common/str.h"

namespace dbtoaster::tir {

using compiler::MapDecl;
using compiler::Program;
using compiler::Statement;
using compiler::ViewColumn;
using compiler::ViewSpec;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

namespace {

constexpr const char* kCheckDefUse = "def-use";
constexpr const char* kCheckType = "type";
constexpr const char* kCheckSign = "sign";
constexpr const char* kCheckSignMask = "sign-mask";
constexpr const char* kCheckShard = "shard";
constexpr const char* kCheckPred = "pred";
constexpr const char* kCheckLiveness = "liveness";

/// Key lanes: int, double and date keys compare and hash consistently with
/// each other (exact numeric Value::Compare, int-twin hashing), so a
/// cross-numeric key is representable; strings are their own lane.
bool SameLane(Type a, Type b) {
  return (a == Type::kString) == (b == Type::kString);
}

bool TermRefsSign(const TermPtr& t) {
  return t != nullptr && t->Vars().count(kSignVar) > 0;
}

bool ExprRefsSign(const ExprPtr& e) {
  return e != nullptr && e->AllVars().count(kSignVar) > 0;
}

/// Best-effort value type of a ring expression under `types`; nullopt when
/// some sub-term cannot be typed.
std::optional<Type> ValueTypeOf(const ExprPtr& e, const ring::VarTypes& types) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case ring::ExprKind::kConst:
      if (e->constant.is_string()) return Type::kString;
      return e->constant.is_double() ? Type::kDouble : Type::kInt;
    case ring::ExprKind::kValTerm: {
      auto t = e->term->TypeOf(types);
      if (!t.ok()) return std::nullopt;
      return t.value();
    }
    case ring::ExprKind::kCmp:
    case ring::ExprKind::kLift:
    case ring::ExprKind::kRel:
      return Type::kInt;  // 0/1 indicators and multiplicities
    case ring::ExprKind::kMapRef:
      return std::nullopt;  // resolved against the declaration by the caller
    case ring::ExprKind::kNeg:
    case ring::ExprKind::kAggSum:
      return ValueTypeOf(e->children[0], types);
    case ring::ExprKind::kSum:
    case ring::ExprKind::kProd: {
      Type acc = Type::kInt;
      for (const ExprPtr& c : e->children) {
        auto t = ValueTypeOf(c, types);
        if (!t.has_value() || *t == Type::kString) return std::nullopt;
        acc = PromoteNumeric(acc, *t);
      }
      return acc;
    }
  }
  return std::nullopt;
}

class Verifier {
 public:
  Verifier(const Module& m, const VerifyOptions& opts)
      : m_(m), opts_(opts) {}

  VerifyResult Run() {
    if (m_.program == nullptr) {
      Error(kCheckType, "module carries no owning program");
      return Finish();
    }
    const Program& p = *m_.program;
    def_ = ComputeDefReads(p);
    read_anywhere_ = MapsReadAnywhere(p, def_);

    CheckDeclarations();
    for (const Trigger& t : m_.triggers) {
      relation_ = t.relation;
      stmt_ = -1;
      CheckTriggerShell(t);
      for (size_t i = 0; i < t.stmts.size(); ++i) {
        stmt_ = static_cast<int>(i);
        CheckDefUse(t, t.stmts[i]);
        CheckTypes(t.stmts[i]);
        CheckSignFlow(t, t.stmts[i]);
      }
      stmt_ = -1;
      CheckShardPlan(t);
      CheckPreds(t);
    }
    relation_.clear();
    stmt_ = -1;
    CheckSignMasks();
    CheckLiveness();
    return Finish();
  }

 private:
  // -- diagnostics ---------------------------------------------------------

  void Add(Diagnostic::Severity sev, const char* check, std::string msg) {
    Diagnostic d;
    d.severity = sev;
    d.check = check;
    d.relation = relation_;
    d.stmt = stmt_;
    d.message = std::move(msg);
    result_.diagnostics.push_back(std::move(d));
  }
  void Error(const char* check, std::string msg) {
    Add(Diagnostic::Severity::kError, check, std::move(msg));
  }
  void Warn(const char* check, std::string msg) {
    Add(Diagnostic::Severity::kWarning, check, std::move(msg));
  }

  VerifyResult Finish() {
    for (const Diagnostic& d : result_.diagnostics) {
      if (d.severity == Diagnostic::Severity::kError) {
        ++result_.num_errors;
      } else {
        ++result_.num_warnings;
      }
    }
    return std::move(result_);
  }

  // -- module-level declarations -------------------------------------------

  void CheckDeclarations() {
    const Program& p = *m_.program;
    std::set<std::string> names;
    for (const MapDecl& d : p.maps) {
      if (!names.insert(d.name).second) {
        Error(kCheckType, "duplicate map declaration '" + d.name + "'");
      }
      if (d.key_names.size() != d.key_types.size()) {
        Error(kCheckType,
              StrFormat("map '%s' declares %zu key names but %zu key types",
                        d.name.c_str(), d.key_names.size(),
                        d.key_types.size()));
      }
    }
    for (const ViewSpec& v : p.views) {
      std::set<std::string> reads;
      if (!v.domain_map.empty()) reads.insert(v.domain_map);
      for (const ViewColumn& c : v.columns) {
        if (c.kind == ViewColumn::Kind::kExtremeRead) {
          reads.insert(c.extreme_map);
        } else if (c.value != nullptr) {
          c.value->CollectMapReads(&reads);
        }
      }
      if (v.having != nullptr) v.having->CollectMapRefs(&reads);
      for (const std::string& mname : reads) {
        if (p.FindMap(mname) == nullptr) {
          Error(kCheckType,
                "view '" + v.name + "' reads undeclared map '" + mname + "'");
        }
      }
    }
  }

  void CheckTriggerShell(const Trigger& t) {
    const Program& p = *m_.program;
    const Schema* schema = p.catalog.FindRelation(t.relation);
    if (schema == nullptr) {
      Error(kCheckType, "trigger on undeclared relation '" + t.relation + "'");
      return;
    }
    if (t.params.size() != schema->num_columns()) {
      Error(kCheckType,
            StrFormat("trigger %s has %zu parameters but relation '%s' has "
                      "%zu columns",
                      t.signature.c_str(), t.params.size(),
                      t.relation.c_str(), schema->num_columns()));
    }
    std::set<std::string> seen;
    for (size_t i = 0; i < t.params.size(); ++i) {
      const Param& pr = t.params[i];
      if (pr.name == kSignVar) {
        Error(kCheckDefUse,
              "trigger parameter shadows the reserved variable __sign");
      }
      if (!seen.insert(pr.name).second) {
        Error(kCheckDefUse,
              "duplicate trigger parameter '" + pr.name + "'");
      }
      if (i < schema->num_columns() &&
          pr.type != schema->column_type(i)) {
        Error(kCheckType,
              StrFormat("parameter '%s' is typed %s but column %zu of '%s' "
                        "is %s",
                        pr.name.c_str(), TypeName(pr.type), i,
                        t.relation.c_str(),
                        TypeName(schema->column_type(i))));
      }
    }
    if (!t.has_insert && !t.has_delete) {
      Error(kCheckSignMask, "trigger covers neither insert nor delete events");
    }
    for (size_t i = 0; i < t.stmts.size(); ++i) {
      const Stmt& s = t.stmts[i];
      if ((s.when == Stmt::When::kInsertOnly && !t.has_insert) ||
          (s.when == Stmt::When::kDeleteOnly && !t.has_delete)) {
        stmt_ = static_cast<int>(i);
        Error(kCheckSignMask,
              "statement is masked to an event side the trigger does not "
              "cover");
        stmt_ = -1;
      }
    }
  }

  // -- check 1: def-before-use ---------------------------------------------

  std::set<std::string> StmtEnv(const Trigger& t, const Stmt& s) const {
    std::set<std::string> env;
    for (const Param& pr : t.params) env.insert(pr.name);
    env.insert(kSignVar);
    for (size_t pos : s.stmt.lhs_iterate) {
      if (pos < s.stmt.target_keys.size()) {
        env.insert(s.stmt.target_keys[pos]);
      }
    }
    return env;
  }

  void RequireBound(const TermPtr& t, const std::set<std::string>& bound) {
    if (t == nullptr) return;
    for (const std::string& v : t->Vars()) {
      if (!bound.count(v)) {
        Error(kCheckDefUse,
              "variable '" + v + "' is read before it is bound (in " +
                  t->ToString() + ")");
      }
    }
  }

  void CheckFactor(const ExprPtr& f, const std::set<std::string>& bound) {
    switch (f->kind) {
      case ring::ExprKind::kConst:
        return;
      case ring::ExprKind::kValTerm:
        RequireBound(f->term, bound);
        return;
      case ring::ExprKind::kCmp:
        RequireBound(f->cmp_lhs, bound);
        RequireBound(f->cmp_rhs, bound);
        return;
      case ring::ExprKind::kLift:
        if (f->var == kSignVar) {
          Error(kCheckDefUse,
                "lift re-binds the reserved variable __sign (single "
                "assignment violated)");
        }
        RequireBound(f->term, bound);
        return;
      case ring::ExprKind::kRel:
      case ring::ExprKind::kMapRef:
        for (const std::string& a : f->args) {
          if (a == kSignVar) {
            Error(kCheckDefUse,
                  "atom '" + f->name +
                      "' binds the reserved variable __sign");
          }
        }
        return;
      case ring::ExprKind::kNeg:
        WalkPlan(f->children[0], bound);
        return;
      case ring::ExprKind::kAggSum: {
        WalkPlan(f->children[0], bound);
        std::set<std::string> out = f->children[0]->OutVars();
        for (const std::string& g : f->group_vars) {
          if (!out.count(g) && !bound.count(g)) {
            Error(kCheckDefUse,
                  "group variable '" + g +
                      "' is never bound by the aggregate body");
          }
        }
        return;
      }
      case ring::ExprKind::kSum:
      case ring::ExprKind::kProd:
        WalkPlan(f, bound);
        return;
    }
  }

  /// Walk the statement body in the exact factor order both backends
  /// execute (OrderProductFactors), proving every read is preceded by a
  /// binding.
  void WalkPlan(const ExprPtr& e, std::set<std::string> bound) {
    switch (e->kind) {
      case ring::ExprKind::kSum:
        for (const ExprPtr& c : e->children) WalkPlan(c, bound);
        return;
      case ring::ExprKind::kProd:
        for (const ExprPtr& f : OrderProductFactors(e->children, bound)) {
          CheckFactor(f, bound);
          for (const std::string& v : f->OutVars()) bound.insert(v);
        }
        return;
      default:
        CheckFactor(e, bound);
        return;
    }
  }

  void CheckDefUse(const Trigger& t, const Stmt& s) {
    const std::set<std::string> env = StmtEnv(t, s);
    std::set<std::string> producible = env;
    if (s.stmt.kind == Statement::Kind::kExtreme) {
      RequireBound(s.stmt.extreme_value, env);
      if (s.stmt.extreme_guard != nullptr) {
        WalkPlan(s.stmt.extreme_guard, env);
        std::set<std::string> out = s.stmt.extreme_guard->OutVars();
        producible.insert(out.begin(), out.end());
      }
    } else if (s.stmt.rhs != nullptr) {
      WalkPlan(s.stmt.rhs, env);
      std::set<std::string> out = s.stmt.rhs->OutVars();
      producible.insert(out.begin(), out.end());
    }
    for (const std::string& k : s.stmt.target_keys) {
      if (k == kSignVar) {
        Error(kCheckSign, "target key is the reserved variable __sign");
      } else if (!producible.count(k)) {
        Error(kCheckDefUse, "target key '" + k + "' is never bound");
      }
    }
    for (size_t pos : s.stmt.lhs_iterate) {
      if (pos >= s.stmt.target_keys.size()) {
        Error(kCheckDefUse,
              StrFormat("LHS iteration position %zu exceeds the %zu target "
                        "keys",
                        pos, s.stmt.target_keys.size()));
      }
    }
  }

  // -- check 2: lane/type soundness ----------------------------------------

  void CheckKeyLanes(const std::string& what, const MapDecl& decl,
                     const std::vector<std::string>& key_vars,
                     const ring::VarTypes& types) {
    if (key_vars.size() != decl.key_types.size()) {
      Error(kCheckType,
            StrFormat("%s: map '%s' has arity %zu but %zu keys are given",
                      what.c_str(), decl.name.c_str(),
                      decl.key_types.size(), key_vars.size()));
      return;
    }
    for (size_t i = 0; i < key_vars.size(); ++i) {
      auto it = types.find(key_vars[i]);
      if (it == types.end()) continue;  // untyped variable: nothing to prove
      if (!SameLane(it->second, decl.key_types[i])) {
        Error(kCheckType,
              StrFormat("%s: key %zu ('%s': %s) does not match map '%s' key "
                        "lane %s",
                        what.c_str(), i, key_vars[i].c_str(),
                        TypeName(it->second), decl.name.c_str(),
                        TypeName(decl.key_types[i])));
      }
    }
  }

  void CheckTermTypes(const TermPtr& t, const ring::VarTypes& types) {
    if (t == nullptr) return;
    if (t->kind == Term::Kind::kMapRead) {
      const MapDecl* decl = m_.program->FindMap(t->map_name);
      if (decl == nullptr) {
        Error(kCheckType, "read of undeclared map '" + t->map_name + "'");
      } else {
        if (t->args.size() != decl->key_types.size()) {
          Error(kCheckType,
                StrFormat("map read %s: map '%s' has arity %zu but %zu keys "
                          "are given",
                          t->ToString().c_str(), decl->name.c_str(),
                          decl->key_types.size(), t->args.size()));
        } else {
          for (size_t i = 0; i < t->args.size(); ++i) {
            auto kt = t->args[i]->TypeOf(types);
            if (!kt.ok()) continue;
            if (!SameLane(kt.value(), decl->key_types[i])) {
              Error(kCheckType,
                    StrFormat("map read %s: key %zu (%s) does not match map "
                              "'%s' key lane %s",
                              t->ToString().c_str(), i,
                              TypeName(kt.value()), decl->name.c_str(),
                              TypeName(decl->key_types[i])));
            }
          }
        }
      }
      for (const TermPtr& a : t->args) CheckTermTypes(a, types);
      return;
    }
    CheckTermTypes(t->lhs, types);
    CheckTermTypes(t->rhs, types);
  }

  void CheckExprTypes(const ExprPtr& e, const ring::VarTypes& types) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ring::ExprKind::kRel: {
        const Schema* schema = m_.program->catalog.FindRelation(e->name);
        if (schema == nullptr) {
          Error(kCheckType,
                "atom over undeclared relation '" + e->name + "'");
          break;
        }
        if (e->args.size() != schema->num_columns()) {
          Error(kCheckType,
                StrFormat("relation atom %s has %zu arguments but '%s' has "
                          "%zu columns",
                          e->name.c_str(), e->args.size(), e->name.c_str(),
                          schema->num_columns()));
          break;
        }
        for (size_t i = 0; i < e->args.size(); ++i) {
          auto it = types.find(e->args[i]);
          if (it == types.end()) continue;
          if (!SameLane(it->second, schema->column_type(i))) {
            Error(kCheckType,
                  StrFormat("relation atom %s: argument %zu ('%s': %s) does "
                            "not match column lane %s",
                            e->name.c_str(), i, e->args[i].c_str(),
                            TypeName(it->second),
                            TypeName(schema->column_type(i))));
          }
        }
        break;
      }
      case ring::ExprKind::kMapRef: {
        const MapDecl* decl = m_.program->FindMap(e->name);
        if (decl == nullptr) {
          Error(kCheckType, "atom over undeclared map '" + e->name + "'");
          break;
        }
        CheckKeyLanes("map atom " + e->name, *decl, e->args, types);
        break;
      }
      default:
        break;
    }
    CheckTermTypes(e->term, types);
    CheckTermTypes(e->cmp_lhs, types);
    CheckTermTypes(e->cmp_rhs, types);
    for (const ExprPtr& c : e->children) CheckExprTypes(c, types);
  }

  void CheckTypes(const Stmt& s) {
    const Program& p = *m_.program;
    const MapDecl* decl = p.FindMap(s.stmt.target);
    if (decl == nullptr) {
      Error(kCheckType,
            "statement writes undeclared map '" + s.stmt.target + "'");
    } else {
      CheckKeyLanes("write to " + decl->name, *decl, s.stmt.target_keys,
                    s.var_types);
      const bool is_extreme_stmt = s.stmt.kind == Statement::Kind::kExtreme;
      if (is_extreme_stmt != decl->is_extreme) {
        Error(kCheckType,
              is_extreme_stmt
                  ? "extreme statement targets non-extreme map '" +
                        decl->name + "'"
                  : "ring statement targets extreme (min/max multiset) map '" +
                        decl->name + "'");
      }
      // Value lane: a double-lane value must not be stored into an
      // int-valued map (silent truncation); int into double widens safely.
      std::optional<Type> vt;
      if (s.stmt.kind == Statement::Kind::kExtreme) {
        auto t = s.stmt.extreme_value != nullptr
                     ? s.stmt.extreme_value->TypeOf(s.var_types)
                     : Result<Type>(Status::Internal("missing value"));
        if (t.ok()) vt = t.value();
      } else {
        vt = ValueTypeOf(s.stmt.rhs, s.var_types);
      }
      if (vt.has_value()) {
        if (*vt == Type::kString) {
          Error(kCheckType,
                "statement stores a STRING value into numeric map '" +
                    decl->name + "'");
        } else if (*vt == Type::kDouble &&
                   decl->value_type == Type::kInt) {
          Error(kCheckType,
                "statement stores a DOUBLE value into INT-valued map '" +
                    decl->name + "'");
        }
      }
    }
    CheckExprTypes(s.stmt.rhs, s.var_types);
    CheckExprTypes(s.stmt.extreme_guard, s.var_types);
    CheckTermTypes(s.stmt.extreme_value, s.var_types);
  }

  // -- check 2b: __sign flows only into sign-polymorphic ops ---------------

  void NoSign(const TermPtr& t, const char* where) {
    if (TermRefsSign(t)) {
      Error(kCheckSign,
            StrFormat("__sign flows into %s (%s); only sign-polymorphic "
                      "positions (additive chains, comparison thresholds, "
                      "ExtremeMap updates) may consume it",
                      where, t->ToString().c_str()));
    }
  }

  /// Value-factor terms: __sign may ride multiplicative/additive chains
  /// (they feed Map::add) but not denominators, scalar functions or map
  /// read keys.
  void CheckSignValueTerm(const TermPtr& t) {
    if (t == nullptr) return;
    switch (t->kind) {
      case Term::Kind::kConst:
      case Term::Kind::kVar:
        return;
      case Term::Kind::kAdd:
      case Term::Kind::kSub:
      case Term::Kind::kMul:
        CheckSignValueTerm(t->lhs);
        CheckSignValueTerm(t->rhs);
        return;
      case Term::Kind::kDiv:
        CheckSignValueTerm(t->lhs);
        NoSign(t->rhs, "a division denominator");
        return;
      case Term::Kind::kFunc1:
        NoSign(t->lhs, "a scalar function argument");
        return;
      case Term::Kind::kMapRead:
        for (const TermPtr& a : t->args) NoSign(a, "a map read key");
        return;
    }
  }

  void WalkSignExpr(const ExprPtr& e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ring::ExprKind::kConst:
        return;
      case ring::ExprKind::kValTerm:
        CheckSignValueTerm(e->term);
        return;
      case ring::ExprKind::kCmp:
        // Sign-affine comparison thresholds are how Lower unifies
        // zero-crossing indicators ([cnt = -1] on insert vs [cnt = +1] on
        // delete becomes [cnt = -1*__sign]); the comparison itself is a
        // sign-polymorphic position. Restricted positions inside the
        // operands (map-read keys, denominators, function arguments) are
        // still enforced by the term walk.
        CheckSignValueTerm(e->cmp_lhs);
        CheckSignValueTerm(e->cmp_rhs);
        return;
      case ring::ExprKind::kLift:
        NoSign(e->term, "a lift definition");
        return;
      case ring::ExprKind::kRel:
      case ring::ExprKind::kMapRef:
        return;  // __sign-named args are reported by the def-use check
      case ring::ExprKind::kNeg:
      case ring::ExprKind::kAggSum:
      case ring::ExprKind::kSum:
      case ring::ExprKind::kProd:
        for (const ExprPtr& c : e->children) WalkSignExpr(c);
        return;
    }
  }

  void CheckSignFlow(const Trigger& t, const Stmt& s) {
    (void)t;
    const bool rhs_refs = ExprRefsSign(s.stmt.rhs);
    switch (s.stmt.kind) {
      case Statement::Kind::kDelta:
      case Statement::Kind::kReeval: {
        if (rhs_refs != s.sign_dependent) {
          Error(kCheckSign,
                rhs_refs
                    ? "statement reads __sign but is not marked "
                      "sign-dependent"
                    : "statement is marked sign-dependent but never reads "
                      "__sign");
        }
        if (s.when != Stmt::When::kBoth && rhs_refs) {
          Error(kCheckSign,
                "single-sided (masked) statement reads __sign; the sign is "
                "constant on its side");
        }
        if (s.stmt.kind == Statement::Kind::kReeval && rhs_refs) {
          Error(kCheckSign,
                "re-evaluation statement reads __sign; assignment is not a "
                "sign-polymorphic operation");
        } else if (rhs_refs) {
          WalkSignExpr(s.stmt.rhs);
        }
        break;
      }
      case Statement::Kind::kExtreme: {
        if (TermRefsSign(s.stmt.extreme_value)) {
          Error(kCheckSign, "extreme value reads __sign");
        }
        if (ExprRefsSign(s.stmt.extreme_guard)) {
          Error(kCheckSign, "extreme guard reads __sign");
        }
        if (s.extreme_runtime_sign) {
          if (!s.sign_dependent) {
            Error(kCheckSign,
                  "runtime-signed extreme statement is not marked "
                  "sign-dependent");
          }
          if (s.when != Stmt::When::kBoth) {
            Error(kCheckSign,
                  "runtime-signed extreme statement must execute for both "
                  "event signs");
          }
        }
        break;
      }
    }
  }

  // -- check 3: sign-mask soundness ----------------------------------------

  /// Maps a statement reads, expanded through init-on-access cascades.
  std::set<std::string> StmtReads(const Stmt& s) const {
    std::set<std::string> rels, maps;
    ExpandReads(s.stmt.rhs, def_, &rels, &maps);
    ExpandReads(s.stmt.extreme_guard, def_, &rels, &maps);
    if (s.stmt.extreme_value != nullptr) {
      s.stmt.extreme_value->CollectMapReads(&maps);
    }
    return maps;
  }

  std::set<std::string> ViewReads(const ViewSpec& v) const {
    std::set<std::string> reads;
    if (!v.domain_map.empty()) reads.insert(v.domain_map);
    for (const ViewColumn& c : v.columns) {
      if (c.kind == ViewColumn::Kind::kExtremeRead) {
        reads.insert(c.extreme_map);
      } else if (c.value != nullptr) {
        c.value->CollectMapReads(&reads);
      }
    }
    if (v.having != nullptr) v.having->CollectMapRefs(&reads);
    // A view read may trigger init-on-access evaluation too.
    std::set<std::string> closed = reads;
    for (const std::string& mname : reads) {
      auto it = def_.maps.find(mname);
      if (it != def_.maps.end()) {
        closed.insert(it->second.begin(), it->second.end());
      }
    }
    return closed;
  }

  void CheckSignMasks() {
    const Program& p = *m_.program;
    // Per map, per trigger: which event sides write it.
    struct Cover {
      bool ins = false, del = false;
    };
    std::map<std::string, std::map<const Trigger*, Cover>> writes;
    for (const Trigger& t : m_.triggers) {
      for (const Stmt& s : t.stmts) {
        Cover& c = writes[s.stmt.target][&t];
        if (s.when != Stmt::When::kDeleteOnly && t.has_insert) c.ins = true;
        if (s.when != Stmt::When::kInsertOnly && t.has_delete) c.del = true;
      }
    }
    // One-sided maps: some trigger that sees both event signs writes them
    // on only one of the two.
    std::map<std::string, std::string> one_sided;  // map -> description
    for (const auto& [mname, per_trigger] : writes) {
      for (const auto& [trig, cover] : per_trigger) {
        if (!trig->has_insert || !trig->has_delete) continue;
        if (cover.ins == cover.del) continue;
        one_sided[mname] = StrFormat(
            "written only on %s events by on_%s",
            cover.ins ? "insert" : "delete", trig->relation.c_str());
      }
    }
    if (one_sided.empty()) return;
    // A one-sided map must not feed both-signs state consumers.
    for (const Trigger& t : m_.triggers) {
      for (size_t i = 0; i < t.stmts.size(); ++i) {
        const Stmt& s = t.stmts[i];
        if (s.when != Stmt::When::kBoth) continue;
        for (const std::string& mname : StmtReads(s)) {
          auto it = one_sided.find(mname);
          if (it == one_sided.end()) continue;
          relation_ = t.relation;
          stmt_ = static_cast<int>(i);
          Error(kCheckSignMask,
                "map '" + mname + "' is " + it->second +
                    " but a both-signs statement reads it unguarded; the "
                    "other event side leaves it stale");
        }
      }
    }
    relation_.clear();
    stmt_ = -1;
    for (const ViewSpec& v : p.views) {
      for (const std::string& mname : ViewReads(v)) {
        auto it = one_sided.find(mname);
        if (it == one_sided.end()) continue;
        Error(kCheckSignMask,
              "map '" + mname + "' is " + it->second + " but view '" +
                  v.name + "' reads it; the other event side leaves it "
                  "stale");
      }
    }
  }

  // -- check 4: shard-plan proof -------------------------------------------

  void CheckShardPlan(const Trigger& t) {
    const Program& p = *m_.program;
    // Re-derive the batch verdict from the statements alone and require the
    // module's claims to be no stronger.
    Trigger probe = t;
    probe.vectorizable = false;
    probe.parallel_safe = false;
    probe.partition_cols.clear();
    for (Stmt& s : probe.stmts) s.reeval_deferrable = false;
    AnalyzeTriggerBatch(&probe, p, def_, read_anywhere_);
    if (t.vectorizable && !probe.vectorizable) {
      Error(kCheckShard,
            "trigger claims vectorizable but re-analysis of its statements "
            "refutes it");
    }
    if (t.parallel_safe && !probe.parallel_safe) {
      Error(kCheckShard,
            "trigger claims parallel_safe but re-analysis of its statements "
            "refutes it");
    }
    for (size_t pc : t.partition_cols) {
      if (pc >= t.params.size()) {
        Error(kCheckShard,
              StrFormat("partition column %zu exceeds the %zu trigger "
                        "parameters",
                        pc, t.params.size()));
        continue;
      }
      const std::string& pname = t.params[pc].name;
      for (size_t i = 0; i < t.stmts.size(); ++i) {
        const Stmt& s = t.stmts[i];
        if (s.stmt.kind != Statement::Kind::kDelta) continue;
        if (std::find(s.stmt.target_keys.begin(), s.stmt.target_keys.end(),
                      pname) == s.stmt.target_keys.end()) {
          stmt_ = static_cast<int>(i);
          Error(kCheckShard,
                StrFormat("routed write to '%s' does not cover partition "
                          "column %zu ('%s')",
                          s.stmt.target.c_str(), pc, pname.c_str()));
          stmt_ = -1;
        }
      }
    }
    if (t.parallel_safe && t.partition_cols.empty()) {
      for (size_t i = 0; i < t.stmts.size(); ++i) {
        const Stmt& s = t.stmts[i];
        if (s.stmt.kind != Statement::Kind::kDelta) continue;
        const MapDecl* decl = p.FindMap(s.stmt.target);
        if (decl != nullptr && decl->value_type == Type::kDouble) {
          stmt_ = static_cast<int>(i);
          Error(kCheckShard,
                "parallel plan with no partition column writes double-valued "
                "map '" + s.stmt.target +
                    "'; shard-order merges would reorder non-commutative "
                    "float additions");
          stmt_ = -1;
        }
      }
    }
    for (size_t i = 0; i < t.stmts.size(); ++i) {
      if (t.stmts[i].reeval_deferrable && !probe.stmts[i].reeval_deferrable) {
        stmt_ = static_cast<int>(i);
        Error(kCheckShard,
              "statement claims a deferrable re-evaluation but its target "
              "is read elsewhere in the program");
        stmt_ = -1;
      }
    }
  }

  // -- check 4b: extracted guard predicates --------------------------------
  // Predicates a module claims must be sign-free, lane-sound and exactly
  // reproducible: re-running the extraction on the untouched statement RHS
  // must yield the same predicate list, residual and statically-zero
  // verdict. A flipped lane, altered constant or smuggled-in predicate all
  // diverge from the re-derivation.

  void CheckPreds(const Trigger& t) {
    for (size_t i = 0; i < t.stmts.size(); ++i) {
      const Stmt& s = t.stmts[i];
      stmt_ = static_cast<int>(i);
      for (const PredSpec& ps : s.preds) {
        if (ps.lane >= t.params.size()) {
          Error(kCheckPred,
                StrFormat("predicate lane %zu exceeds the %zu trigger "
                          "parameters",
                          ps.lane, t.params.size()));
          continue;
        }
        const Param& pr = t.params[ps.lane];
        if (ps.lane_type != pr.type) {
          Error(kCheckPred,
                StrFormat("predicate '%s' types lane %zu as %s but "
                          "parameter '%s' is %s",
                          ps.ToString(t.params).c_str(), ps.lane,
                          TypeName(ps.lane_type), pr.name.c_str(),
                          TypeName(pr.type)));
        }
        for (const Value& v : ps.values) {
          if ((pr.type == Type::kString) != v.is_string()) {
            Error(kCheckPred,
                  StrFormat("predicate '%s' compares %s lane '%s' against a "
                            "%s constant",
                            ps.ToString(t.params).c_str(), TypeName(pr.type),
                            pr.name.c_str(),
                            v.is_string() ? "STRING" : "numeric"));
          }
        }
      }
      Stmt probe = s;
      ExtractStmtPreds(t.params, &probe);
      bool same = probe.preds.size() == s.preds.size() &&
                  probe.statically_zero == s.statically_zero &&
                  (probe.vec_rhs == nullptr) == (s.vec_rhs == nullptr) &&
                  (probe.vec_rhs == nullptr ||
                   ring::ExprEquals(*probe.vec_rhs, *s.vec_rhs));
      for (size_t pi = 0; same && pi < s.preds.size(); ++pi) {
        same = PredSpecEquals(probe.preds[pi], s.preds[pi]);
      }
      if (!same) {
        Error(kCheckPred,
              "extracted predicates do not match re-derivation from the "
              "statement RHS (lane, op, constant, residual and "
              "statically-zero verdict must all agree)");
      }
    }
    stmt_ = -1;
  }

  // Note on cross-trigger routing: partition_cols promise only that the
  // partition attribute is *present* in every delta target key set of its
  // own trigger (checked above). A single fixed key position shared by all
  // parallel writers of a map is NOT an IR invariant — the interpreter
  // shards each trigger's batch independently and applies shards in a fixed
  // logical order, and cpp_gen's AnalyzeShardPlan derives its own
  // whole-program routing with a safe non-sharded fallback when no
  // consistent assignment exists.

  // -- check 5: dataflow liveness ------------------------------------------

  void CheckLiveness() {
    const Program& p = *m_.program;
    std::set<std::string> live;
    for (const ViewSpec& v : p.views) {
      std::set<std::string> reads = ViewReads(v);
      live.insert(reads.begin(), reads.end());
    }
    // Reverse reachability: a map is live when a live map's maintenance
    // reads it, or a live init-on-access definition evaluates it.
    for (bool changed = true; changed;) {
      changed = false;
      for (const Trigger& t : m_.triggers) {
        for (const Stmt& s : t.stmts) {
          if (!live.count(s.stmt.target)) continue;
          for (const std::string& mname : StmtReads(s)) {
            changed = live.insert(mname).second || changed;
          }
        }
      }
      for (const MapDecl& d : p.maps) {
        if (!d.needs_init || d.definition == nullptr || !live.count(d.name)) {
          continue;
        }
        std::set<std::string> reads;
        d.definition->CollectMapRefs(&reads);
        for (const std::string& mname : reads) {
          changed = live.insert(mname).second || changed;
        }
      }
    }
    for (const MapDecl& d : p.maps) {
      if (live.count(d.name)) continue;
      // Anchor the warning at the first statement writing the map.
      relation_.clear();
      stmt_ = -1;
      for (const Trigger& t : m_.triggers) {
        for (size_t i = 0; i < t.stmts.size() && relation_.empty(); ++i) {
          if (t.stmts[i].stmt.target == d.name) {
            relation_ = t.relation;
            stmt_ = static_cast<int>(i);
          }
        }
        if (!relation_.empty()) break;
      }
      Warn(kCheckLiveness,
           "map '" + d.name +
               "' is dead: no view or live statement ever reads it");
      relation_.clear();
      stmt_ = -1;
    }
    // Statements whose delta provably cancels.
    for (const Trigger& t : m_.triggers) {
      for (size_t i = 0; i < t.stmts.size(); ++i) {
        const Stmt& s = t.stmts[i];
        if (s.stmt.kind != Statement::Kind::kDelta || s.stmt.rhs == nullptr) {
          continue;
        }
        if (ProvablyCancels(s.stmt.rhs)) {
          relation_ = t.relation;
          stmt_ = static_cast<int>(i);
          Warn(kCheckLiveness,
               "statement delta provably cancels: the right-hand side is "
               "identically zero");
          relation_.clear();
          stmt_ = -1;
        }
      }
    }
  }

  static bool ProvablyCancels(const ExprPtr& e) {
    if (e->IsZero()) return true;
    if (e->kind == ring::ExprKind::kSum) {
      // Sum(a, Neg(a)) and permutations of exactly two cancelling branches.
      if (e->children.size() == 2) {
        const ExprPtr& a = e->children[0];
        const ExprPtr& b = e->children[1];
        if (b->kind == ring::ExprKind::kNeg &&
            ring::ExprEquals(*a, *b->children[0])) {
          return true;
        }
        if (a->kind == ring::ExprKind::kNeg &&
            ring::ExprEquals(*a->children[0], *b)) {
          return true;
        }
      }
    }
    return false;
  }

  const Module& m_;
  VerifyOptions opts_;
  DefReadSets def_;
  std::set<std::string> read_anywhere_;
  VerifyResult result_;

  std::string relation_;  ///< current diagnostic anchor
  int stmt_ = -1;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::string loc = relation.empty() ? "module" : relation;
  if (!relation.empty() && stmt >= 0) {
    loc += StrFormat(":stmt %d", stmt);
  }
  return StrFormat("%s: %s: [%s] %s", loc.c_str(),
                   severity == Severity::kError ? "error" : "warning",
                   check.c_str(), message.c_str());
}

std::string VerifyResult::ToString(const std::string& file) const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!file.empty()) out += file + ": ";
    out += d.ToString() + "\n";
  }
  return out;
}

VerifyResult Verify(const Module& module, const VerifyOptions& options) {
  return Verifier(module, options).Run();
}

Status VerifyOrError(const Module& module, const std::string& file,
                     bool strict) {
  VerifyResult r = Verify(module, {strict});
  if (r.ok(strict)) return Status::OK();
  return Status::Internal("trigger program failed verification\n" +
                          r.ToString(file));
}

}  // namespace dbtoaster::tir
