#include "src/compiler/simplify.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

#include "src/common/str.h"

namespace dbtoaster::compiler {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

std::string Monomial::ToString() const {
  std::string s = coeff.ToString();
  for (const ExprPtr& f : factors) s += " * " + f->ToString();
  return s;
}

namespace {

/// Expand a value term into Σ coeff · Π atomic-term-factors.
/// Atomic factors: variables, map reads, divisions (kept opaque).
void ExpandTerm(const TermPtr& t,
                std::vector<std::pair<Value, std::vector<TermPtr>>>* out) {
  switch (t->kind) {
    case Term::Kind::kConst:
      out->push_back({t->constant, {}});
      return;
    case Term::Kind::kVar:
    case Term::Kind::kMapRead:
    case Term::Kind::kDiv:
    case Term::Kind::kFunc1:
      out->push_back({Value(int64_t{1}), {t}});
      return;
    case Term::Kind::kAdd:
    case Term::Kind::kSub: {
      std::vector<std::pair<Value, std::vector<TermPtr>>> l, r;
      ExpandTerm(t->lhs, &l);
      ExpandTerm(t->rhs, &r);
      for (auto& p : l) out->push_back(std::move(p));
      for (auto& p : r) {
        if (t->kind == Term::Kind::kSub) p.first = Value::Neg(p.first);
        out->push_back(std::move(p));
      }
      return;
    }
    case Term::Kind::kMul: {
      std::vector<std::pair<Value, std::vector<TermPtr>>> l, r;
      ExpandTerm(t->lhs, &l);
      ExpandTerm(t->rhs, &r);
      for (const auto& [cl, fl] : l) {
        for (const auto& [cr, fr] : r) {
          std::vector<TermPtr> fs = fl;
          fs.insert(fs.end(), fr.begin(), fr.end());
          out->push_back({Value::Mul(cl, cr), std::move(fs)});
        }
      }
      return;
    }
  }
}

std::vector<Monomial> CrossProduct(const std::vector<Monomial>& a,
                                   const std::vector<Monomial>& b) {
  std::vector<Monomial> out;
  out.reserve(a.size() * b.size());
  for (const Monomial& x : a) {
    for (const Monomial& y : b) {
      Monomial m;
      m.coeff = Value::Mul(x.coeff, y.coeff);
      if (m.coeff.is_numeric() && m.coeff.IsZero()) continue;
      m.factors = x.factors;
      m.factors.insert(m.factors.end(), y.factors.begin(), y.factors.end());
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace

std::vector<Monomial> ExpandToMonomials(const ExprPtr& e) {
  switch (e->kind) {
    case ring::ExprKind::kConst: {
      if (e->constant.is_numeric() && e->constant.IsZero()) return {};
      Monomial m;
      m.coeff = e->constant;
      return {m};
    }
    case ring::ExprKind::kValTerm: {
      std::vector<std::pair<Value, std::vector<TermPtr>>> parts;
      ExpandTerm(e->term, &parts);
      std::vector<Monomial> out;
      for (auto& [coeff, term_factors] : parts) {
        if (coeff.is_numeric() && coeff.IsZero()) continue;
        Monomial m;
        m.coeff = coeff;
        for (const TermPtr& tf : term_factors) {
          m.factors.push_back(Expr::ValTerm(tf));
        }
        out.push_back(std::move(m));
      }
      return out;
    }
    case ring::ExprKind::kCmp:
    case ring::ExprKind::kLift:
    case ring::ExprKind::kRel:
    case ring::ExprKind::kMapRef: {
      Monomial m;
      m.factors.push_back(e);
      return {m};
    }
    case ring::ExprKind::kNeg: {
      std::vector<Monomial> out = ExpandToMonomials(e->children[0]);
      for (Monomial& m : out) m.coeff = Value::Neg(m.coeff);
      return out;
    }
    case ring::ExprKind::kSum: {
      std::vector<Monomial> out;
      for (const ExprPtr& c : e->children) {
        std::vector<Monomial> cs = ExpandToMonomials(c);
        out.insert(out.end(), std::make_move_iterator(cs.begin()),
                   std::make_move_iterator(cs.end()));
      }
      return out;
    }
    case ring::ExprKind::kProd: {
      std::vector<Monomial> acc;
      acc.push_back(Monomial{});
      for (const ExprPtr& c : e->children) {
        acc = CrossProduct(acc, ExpandToMonomials(c));
      }
      return acc;
    }
    case ring::ExprKind::kAggSum: {
      // Distribute over the child's monomials: AggSum(g, Σ m) = Σ AggSum(g,m).
      std::vector<Monomial> inner = ExpandToMonomials(e->children[0]);
      std::vector<Monomial> out;
      for (Monomial& m : inner) {
        // Pull the coefficient out of the AggSum.
        Monomial wrapped;
        wrapped.coeff = m.coeff;
        m.coeff = Value(int64_t{1});
        ExprPtr body = MonomialsToExpr({m});
        // Trivial grouping: nothing to sum out.
        std::set<std::string> outv = body->OutVars();
        std::set<std::string> gv(e->group_vars.begin(), e->group_vars.end());
        bool trivial = true;
        for (const std::string& v : outv) {
          if (!gv.count(v)) {
            trivial = false;
            break;
          }
        }
        if (trivial) {
          Monomial flat;
          flat.coeff = wrapped.coeff;
          flat.factors = m.factors;
          out.push_back(std::move(flat));
        } else {
          wrapped.factors.push_back(Expr::AggSum(e->group_vars, body));
          out.push_back(std::move(wrapped));
        }
      }
      return out;
    }
  }
  assert(false);
  return {};
}

ExprPtr MonomialsToExpr(const std::vector<Monomial>& ms) {
  std::vector<ExprPtr> addends;
  addends.reserve(ms.size());
  for (const Monomial& m : ms) {
    std::vector<ExprPtr> fs;
    fs.reserve(m.factors.size() + 1);
    bool coeff_is_one = m.coeff.is_int() && m.coeff.AsInt() == 1;
    if (!coeff_is_one) fs.push_back(Expr::Const(m.coeff));
    fs.insert(fs.end(), m.factors.begin(), m.factors.end());
    addends.push_back(Expr::Prod(std::move(fs)));
  }
  return Expr::Sum(std::move(addends));
}

Status UnifyLifts(Monomial* m, std::vector<std::string>* keys,
                  const std::set<std::string>& params) {
  bool progress = true;
  std::set<size_t> kept;  // lifts we decided to keep (bound-var filters etc.)
  while (progress) {
    progress = false;
    for (size_t i = 0; i < m->factors.size(); ++i) {
      // Take a strong copy: the factor slot is rewritten below and the old
      // node may be destroyed, so references into it must not outlive that.
      ExprPtr f = m->factors[i];
      if (f->kind != ring::ExprKind::kLift || kept.count(i)) continue;
      const std::string x = f->var;
      // (x := x) == 1: arises when query variables share the event
      // parameters' names (the paper's a/b/c/d convention).
      if (f->term->kind == Term::Kind::kVar && f->term->var == x) {
        m->factors.erase(m->factors.begin() + i);
        kept.clear();
        progress = true;
        break;
      }
      if (params.count(x)) {
        // Target already event-bound: the lift acts as an equality filter
        // (self-join deltas); keep it.
        kept.insert(i);
        continue;
      }
      if (f->term->kind == Term::Kind::kVar) {
        const std::string t = f->term->var;
        m->factors.erase(m->factors.begin() + i);
        if (t != x) {
          std::map<std::string, std::string> ren{{x, t}};
          for (ExprPtr& g : m->factors) g = g->Rename(ren);
          for (std::string& k : *keys) {
            if (k == x) k = t;
          }
        }
        // Indices in `kept` shift; conservatively restart the scan.
        kept.clear();
        progress = true;
        break;
      }
      if (f->term->kind == Term::Kind::kConst) {
        bool in_atom_args = false;
        bool in_keys =
            std::find(keys->begin(), keys->end(), x) != keys->end();
        for (const ExprPtr& g : m->factors) {
          if ((g->kind == ring::ExprKind::kRel ||
               g->kind == ring::ExprKind::kMapRef) &&
              std::find(g->args.begin(), g->args.end(), x) != g->args.end()) {
            in_atom_args = true;
            break;
          }
        }
        if (in_atom_args || in_keys) {
          kept.insert(i);  // the lift stays to bind x at evaluation time
          continue;
        }
        std::map<std::string, TermPtr> subst{{x, f->term}};
        for (ExprPtr& g : m->factors) {
          switch (g->kind) {
            case ring::ExprKind::kValTerm:
              g = Expr::ValTerm(g->term->Substitute(subst));
              break;
            case ring::ExprKind::kCmp:
              g = Expr::Cmp(g->cmp_op, g->cmp_lhs->Substitute(subst),
                            g->cmp_rhs->Substitute(subst));
              break;
            case ring::ExprKind::kLift:
              g = Expr::Lift(g->var, g->term->Substitute(subst));
              break;
            default:
              break;
          }
        }
        m->factors.erase(m->factors.begin() + i);
        kept.clear();
        progress = true;
        break;
      }
      // Complex lift definition: keep (evaluator binds it when its term's
      // inputs are available).
      kept.insert(i);
    }
    // A substitution may have turned a Cmp into a constant 0/1; fold.
    for (size_t i = 0; i < m->factors.size();) {
      const ExprPtr& f = m->factors[i];
      if (f->kind == ring::ExprKind::kConst) {
        m->coeff = Value::Mul(m->coeff, f->constant);
        m->factors.erase(m->factors.begin() + i);
        kept.clear();
      } else {
        ++i;
      }
    }
    if (m->coeff.is_numeric() && m->coeff.IsZero()) {
      m->factors.clear();
      return Status::OK();
    }
  }
  return Status::OK();
}

Result<ExprPtr> Factorize(const Monomial& m,
                          const std::vector<std::string>& keys,
                          const std::set<std::string>& params) {
  std::set<std::string> interface(params.begin(), params.end());
  interface.insert(keys.begin(), keys.end());

  const size_t n = m.factors.size();
  // Union-find over factors.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  // Variables summed out by this statement.
  std::set<std::string> summed;
  for (const ExprPtr& f : m.factors) {
    for (const std::string& v : f->OutVars()) {
      if (!interface.count(v)) summed.insert(v);
    }
  }
  // Connect factors through shared summed variables (via inputs or outputs).
  std::map<std::string, std::vector<size_t>> var_to_factors;
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& v : m.factors[i]->AllVars()) {
      if (summed.count(v)) var_to_factors[v].push_back(i);
    }
  }
  for (const auto& [v, fs] : var_to_factors) {
    for (size_t i = 1; i < fs.size(); ++i) unite(fs[0], fs[i]);
  }

  std::map<size_t, std::vector<ExprPtr>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(m.factors[i]);

  std::vector<ExprPtr> out_factors;
  bool coeff_is_one = m.coeff.is_int() && m.coeff.AsInt() == 1;
  if (!coeff_is_one) out_factors.push_back(Expr::Const(m.coeff));

  for (auto& [root, fs] : groups) {
    // Does this component touch any summed variable?
    std::set<std::string> comp_summed;
    std::set<std::string> comp_out;
    bool has_atom = false;
    for (const ExprPtr& f : fs) {
      for (const std::string& v : f->AllVars()) {
        if (summed.count(v)) comp_summed.insert(v);
      }
      for (const std::string& v : f->OutVars()) comp_out.insert(v);
      if (f->kind == ring::ExprKind::kRel ||
          f->kind == ring::ExprKind::kMapRef ||
          f->kind == ring::ExprKind::kAggSum) {
        has_atom = true;
      }
    }
    if (comp_summed.empty()) {
      // Independent of the summation: pull the factors out unchanged.
      for (ExprPtr& f : fs) out_factors.push_back(std::move(f));
      continue;
    }
    if (!has_atom) {
      return Status::Internal(
          "unbound summed variable in delta monomial: " + m.ToString());
    }
    std::vector<std::string> keep;
    for (const std::string& v : comp_out) {
      if (interface.count(v)) keep.push_back(v);
    }
    out_factors.push_back(Expr::AggSum(keep, Expr::Prod(std::move(fs))));
  }
  return Expr::Prod(std::move(out_factors));
}

Result<std::vector<DeltaUnit>> SimplifyDelta(
    const ExprPtr& delta, const std::set<std::string>& params) {
  if (delta->IsZero()) return std::vector<DeltaUnit>{};
  if (delta->kind != ring::ExprKind::kAggSum) {
    return Status::Internal("delta must be AggSum-rooted: " +
                            delta->ToString());
  }
  const std::vector<std::string>& keys = delta->group_vars;
  std::vector<Monomial> monomials = ExpandToMonomials(delta->children[0]);
  std::vector<DeltaUnit> units;
  for (Monomial& m : monomials) {
    std::vector<std::string> unit_keys = keys;
    DBT_RETURN_IF_ERROR(UnifyLifts(&m, &unit_keys, params));
    if (m.coeff.is_numeric() && m.coeff.IsZero()) continue;
    DBT_ASSIGN_OR_RETURN(ExprPtr rhs, Factorize(m, unit_keys, params));
    if (rhs->IsZero()) continue;
    units.push_back(DeltaUnit{std::move(unit_keys), std::move(rhs)});
  }
  return units;
}

ExprPtr NormalizeDefinition(const ExprPtr& defn) {
  if (defn->kind != ring::ExprKind::kAggSum) {
    return MonomialsToExpr(ExpandToMonomials(defn));
  }
  return Expr::AggSum(defn->group_vars,
                      MonomialsToExpr(ExpandToMonomials(defn->children[0])));
}

}  // namespace dbtoaster::compiler
