// The map-algebra simplification rules (§3): polynomial expansion, lift
// unification (equality propagation of event parameters), and AggSum
// factorisation over connected components of the summed-variable graph.
//
// The paper describes ~70 rewrite rules; this module implements the core
// rule families that drive them:
//   * ring normalisation  (flattening, 0/1 elimination, constant folding —
//     partly built into the ring constructors)
//   * polynomial expansion of products over sums, including value terms
//     (a*(b+c) splits monomials; a*b splits value factors)
//   * lift unification    ((x := p) · e  ==>  e[x/p])
//   * AggSum distribution over sums and trivial-group elimination
//   * AggSum factorisation into independent components (join elimination:
//     this is what turns ΔS (R ⋈ S ⋈ T) into qA[b] · qD[c])
#ifndef DBTOASTER_COMPILER_SIMPLIFY_H_
#define DBTOASTER_COMPILER_SIMPLIFY_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ring/expr.h"

namespace dbtoaster::compiler {

/// One monomial of an expanded polynomial: coeff * f1 * ... * fn.
struct Monomial {
  Value coeff = Value(int64_t{1});
  std::vector<ring::ExprPtr> factors;  ///< non-constant atoms

  std::string ToString() const;
};

/// Expand `e` into a sum of flat monomials. Negation folds into
/// coefficients; value terms are expanded multiplicatively and additively
/// (ValTerm(a*d) becomes two value factors; ValTerm(x+y) splits monomials).
/// Nested AggSums are distributed over sums but kept as atomic factors.
std::vector<Monomial> ExpandToMonomials(const ring::ExprPtr& e);

/// Rebuild an expression from monomials.
ring::ExprPtr MonomialsToExpr(const std::vector<Monomial>& ms);

/// Lift unification over one monomial. Lifts (x := t) with substitutable
/// targets are removed by renaming/substituting x throughout the monomial
/// and the target key list `keys` (group variables may be renamed to event
/// parameters — this is how update targets become parameter-keyed).
/// `params` are event parameters (never substituted away).
Status UnifyLifts(Monomial* m, std::vector<std::string>* keys,
                  const std::set<std::string>& params);

/// AggSum factorisation: split a monomial into independent components with
/// respect to its summed variables (those in neither `keys` nor `params`).
/// Components containing relation/map atoms become AggSum factors (future
/// maps); factors without summed variables are pulled out unchanged.
/// Returns the factorised right-hand side product.
Result<ring::ExprPtr> Factorize(const Monomial& m,
                                const std::vector<std::string>& keys,
                                const std::set<std::string>& params);

/// One simplified delta in statement form: `target[keys] += rhs`.
struct DeltaUnit {
  std::vector<std::string> keys;
  ring::ExprPtr rhs;
};

/// Full pipeline for a delta of a map definition AggSum(keys, body):
/// expansion, per-monomial lift unification, factorisation. One DeltaUnit
/// per surviving monomial.
Result<std::vector<DeltaUnit>> SimplifyDelta(
    const ring::ExprPtr& delta, const std::set<std::string>& params);

/// Normalise a map definition body into polynomial form (used before
/// canonicalisation so structurally equal definitions share maps).
ring::ExprPtr NormalizeDefinition(const ring::ExprPtr& defn);

}  // namespace dbtoaster::compiler

#endif  // DBTOASTER_COMPILER_SIMPLIFY_H_
