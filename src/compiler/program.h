// Trigger-program intermediate representation: the output of recursive
// compilation and the input of both the runtime interpreter and the C++
// code generator. Corresponds to the paper's "delta-processing functions" +
// "in-memory aggregate views" (§2 System Model).
#ifndef DBTOASTER_COMPILER_PROGRAM_H_
#define DBTOASTER_COMPILER_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/ring/expr.h"
#include "src/sql/ast.h"
#include "src/storage/table.h"

namespace dbtoaster::compiler {

/// Declaration of one in-memory aggregate map.
struct MapDecl {
  std::string name;
  std::vector<std::string> key_names;  ///< canonical key variables (k0, ...)
  std::vector<Type> key_types;
  Type value_type = Type::kInt;

  /// Canonical definition: AggSum(key_names, body). Used for documentation,
  /// the compilation trace, and init-on-first-access evaluation.
  ring::ExprPtr definition;

  /// True when some maintenance statement cannot bind all of this map's keys
  /// from the event (LHS-driven iteration); reads of missing keys must then
  /// evaluate `definition` against the base tables (init-on-first-access).
  bool needs_init = false;

  /// MIN/MAX maps: maintained as per-key ordered multisets instead of ring
  /// deltas (correct under deletions).
  bool is_extreme = false;
  sql::AggKind extreme_kind = sql::AggKind::kMin;

  /// Recursion depth at which this map was introduced (result maps: 1),
  /// mirroring Figure 2's "Recursion level".
  int level = 1;

  std::string ToString() const;
};

/// One maintenance statement inside a trigger.
struct Statement {
  enum class Kind : uint8_t {
    kDelta,    ///< target[keys] += rhs   (snapshot semantics, phase 1)
    kExtreme,  ///< ordered-multiset add/remove (phase 2)
    kReeval,   ///< target[keys] := rhs   (post-state, phase 3; hybrid path)
  };

  Kind kind = Kind::kDelta;
  std::string target;
  std::vector<std::string> target_keys;  ///< variables; may be event params

  /// kDelta / kReeval: ring expression producing (key, value) deltas,
  /// grouped over `target_keys`.
  ring::ExprPtr rhs;

  /// Positions in target_keys that neither the event parameters nor the RHS
  /// can bind; the runtime iterates the target map's live keys for them.
  std::vector<size_t> lhs_iterate;

  // kExtreme only:
  int extreme_sign = +1;          ///< +1 add, -1 remove
  ring::TermPtr extreme_value;    ///< the aggregated value (over params)
  ring::ExprPtr extreme_guard;    ///< 0/1 filter over params (may be null)

  std::string ToString() const;
};

/// All statements to run for one (relation, insert|delete) event.
struct Trigger {
  std::string relation;
  EventKind event = EventKind::kInsert;
  std::vector<std::string> params;  ///< parameter variables, in schema order
  std::vector<Statement> statements;

  std::string Signature() const;  ///< e.g. "on_insert_R(a, b)"
  std::string ToString() const;
};

/// One output column of a result view.
struct ViewColumn {
  enum class Kind : uint8_t { kTerm, kExtremeRead };
  Kind kind = Kind::kTerm;
  std::string name;
  ring::TermPtr value;        ///< kTerm: term over key vars and map reads
  std::string extreme_map;    ///< kExtremeRead: MIN/MAX map to consult
  Type type = Type::kDouble;
};

/// The continuously-maintained result of one registered query.
struct ViewSpec {
  std::string name;
  std::string sql;
  std::vector<std::string> key_column_names;  ///< GROUP BY output columns
  std::vector<std::string> key_vars;          ///< ring variables of the keys
  std::vector<Type> key_types;
  std::vector<ViewColumn> columns;

  /// Map whose live keys enumerate the view's groups (a COUNT map over the
  /// same join/filter). Empty for global (non-grouped) views.
  std::string domain_map;

  /// HAVING guard: 0/1 ring expression over the key variables and resolved
  /// aggregate-map reads, evaluated per group when the view is read. Null
  /// when the query has no HAVING clause.
  ring::ExprPtr having;

  /// True when the query used the hybrid (subquery) compilation path.
  bool hybrid = false;
};

/// One row of the compilation trace — the reproduction of Figure 2.
struct TraceRow {
  int level;                 ///< recursion level (result queries: 1)
  std::string event;         ///< "+R", "-R", ...
  std::string target;        ///< map being maintained
  std::string query;         ///< the definition being delta-compiled
  std::string delta_code;    ///< rendered statement(s)
  std::vector<std::string> maps_used;
  std::vector<std::pair<std::string, std::string>> new_maps;  ///< name, defn
};

/// A complete compiled trigger program: maps, triggers, views, trace.
struct Program {
  Catalog catalog;
  std::vector<MapDecl> maps;
  std::vector<Trigger> triggers;
  std::vector<ViewSpec> views;
  std::vector<TraceRow> trace;

  const MapDecl* FindMap(const std::string& name) const;
  const Trigger* FindTrigger(const std::string& relation,
                             EventKind kind) const;
  const ViewSpec* FindView(const std::string& name) const;

  /// Full human-readable listing (maps, triggers, views).
  std::string ToString() const;

  /// Figure-2-style table: one row per (level, event, map), merging the
  /// insert/delete rows that are symmetric up to sign.
  std::string TraceTable() const;
};

}  // namespace dbtoaster::compiler

#endif  // DBTOASTER_COMPILER_PROGRAM_H_
