// Typed trigger IR: the mid-layer between the ring-calculus output of
// recursive compilation (compiler::Program) and the two backends — the C++
// code generator (codegen::GenerateCpp) and the trigger interpreter
// (runtime::Engine). Lowering performs, once per program:
//
//   * sign unification: the per-(relation, op) insert/delete trigger clones
//     are merged into ONE trigger per relation whose statements take the
//     event multiplicity as a scalar parameter (the reserved variable
//     kSignVar, rendered as the `sign` argument of generated handlers).
//     Statements that exist for only one op carry an execution mask.
//   * typing: trigger parameters and statement variables are resolved to
//     column types from the catalog and map declarations, so no backend
//     re-derives types from the ring layer.
//   * access planning: the greedy join-order used by both backends to turn
//     a product into nested probe/slice/scan loops lives here
//     (OrderProductFactors), as does the per-statement plan text.
//   * batch analysis: vectorizability, parallel safety and partition
//     columns (previously computed inside runtime::Engine) are derived per
//     unified trigger and consumed by every backend.
//
// Module::ToText() is the stable dump behind `dbtc --emit-ir`.
#ifndef DBTOASTER_COMPILER_TIR_H_
#define DBTOASTER_COMPILER_TIR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/compiler/program.h"

namespace dbtoaster::tir {

/// Reserved variable carrying the event multiplicity (+1 insert, -1
/// delete) through unified statement right-hand sides. Backends bind it to
/// their sign parameter; it never appears in source queries (the SQL layer
/// rejects identifiers starting with '_').
inline constexpr const char* kSignVar = "__sign";

/// One typed trigger parameter (event tuple column).
struct Param {
  std::string name;  ///< ring variable (schema order)
  Type type = Type::kInt;
};

/// One guard predicate extracted from a delta statement's RHS: a sign-free
/// 0/1 comparison of a single trigger parameter (a column lane of the event
/// batch) against constants. Backends evaluate extracted predicates with
/// the selection kernels (dbt_select.h) over whole column lanes instead of
/// once per row; the conjunction of a statement's `preds` with its
/// `vec_rhs` residual is equivalent to the original RHS.
struct PredSpec {
  enum class Kind : uint8_t {
    kCmp,    ///< lane <op> values[0]
    kRange,  ///< values[0] <= lane < values[1] (EXTRACT(YEAR)=c rewrite)
    kIn,     ///< lane is a member of values
  };

  Kind kind = Kind::kCmp;
  size_t lane = 0;  ///< trigger parameter index (= batch column index)
  Type lane_type = Type::kInt;
  sql::BinOp op = sql::BinOp::kEq;  ///< kCmp only
  std::vector<Value> values;

  /// "#<lane> <param> <op> <const>" — the `dbtc --emit-ir` pred line.
  std::string ToString(const std::vector<Param>& params) const;
};

/// Exact structural equality (kind, lane, lane type, op and constants).
bool PredSpecEquals(const PredSpec& a, const PredSpec& b);

/// One unified maintenance statement.
struct Stmt {
  /// Which event signs execute this statement.
  enum class When : uint8_t { kBoth, kInsertOnly, kDeleteOnly };

  /// The unified statement. For sign-dependent deltas the RHS reads
  /// kSignVar; structure otherwise matches compiler::Statement exactly, so
  /// the interpreter's statement runners take it unchanged.
  compiler::Statement stmt;

  When when = When::kBoth;

  /// True when stmt.rhs (or the extreme value/guard) references kSignVar.
  bool sign_dependent = false;

  /// kExtreme only: the multiset op direction is the event sign itself
  /// (ExtremeMap::update(key, value, sign)) instead of stmt.extreme_sign.
  bool extreme_runtime_sign = false;

  /// True for kReeval statements whose target no other statement or map
  /// initializer reads: they may run once per batch instead of per event.
  bool reeval_deferrable = false;

  /// Guard predicates extracted from the top-level RHS product (delta
  /// statements only). Each is a pure comparison of one trigger parameter
  /// against constants; the extracted factors are removed from `vec_rhs`,
  /// and stmt.rhs itself is left untouched for the scalar paths.
  std::vector<PredSpec> preds;

  /// Residual RHS with the extracted guard factors removed; nullptr when
  /// `preds` is empty (backends then evaluate stmt.rhs unchanged).
  ring::ExprPtr vec_rhs;

  /// Two extracted equality predicates on the same lane demand different
  /// constants (the cross terms of a desugared IN-list): the statement can
  /// never fire and backends skip it entirely.
  bool statically_zero = false;

  /// Cached stmt.ToString() (profiler key / codegen comments).
  std::string rendering;

  /// Variable types over the statement body: trigger parameters, kSignVar,
  /// and every variable bound by Rel atoms and Lifts in the RHS.
  ring::VarTypes var_types;
};

/// One sign-parameterized trigger: everything to run for an event on
/// `relation`, for either op.
struct Trigger {
  std::string relation;
  std::vector<Param> params;
  std::vector<Stmt> stmts;

  bool has_insert = false;
  bool has_delete = false;

  /// "on_R(a, b)" — error messages and the IR dump.
  std::string signature;

  // -- batch-time analysis (consumed by both backends) ---------------------

  /// True when phase 1 may evaluate a whole group of bindings against the
  /// group pre-state and flush afterwards: no delta statement reads the
  /// triggering relation, a map this trigger writes, or iterates its
  /// target's live keys; extreme statements are parameter-only; all
  /// re-evaluation statements are deferrable.
  bool vectorizable = false;

  /// Vectorizable AND the delta phase reads no init-on-access map: phase 1
  /// is then a pure function of the pre-state and may run sharded.
  bool parallel_safe = false;

  /// Event-parameter positions appearing in every delta statement's target
  /// key (the trigger's partition key); empty = hash the whole tuple.
  std::vector<size_t> partition_cols;
};

/// The typed trigger program: one Trigger per streamed relation (stream
/// order = first appearance in the source trigger list), over the maps,
/// views and catalog of the owning compiler::Program (non-owning pointer;
/// the Program must outlive the Module).
struct Module {
  const compiler::Program* program = nullptr;
  std::vector<Trigger> triggers;

  const Trigger* FindTrigger(const std::string& relation) const;

  /// Stable text dump: typed map declarations, per-trigger statement list
  /// with masks and access plans (`dbtc --emit-ir`).
  std::string ToText() const;
};

/// Lower a compiled trigger program into the typed IR. Total: statements
/// that fail sign unification are kept as masked per-op statements, so the
/// result always executes identically to the input program.
Module Lower(const compiler::Program& program);

/// Transitive read sets of map initializer definitions: map name -> the
/// relations and maps reachable when an init-on-access read evaluates that
/// map's definition (closed under map-to-map cascades). Shared between the
/// batch analysis in Lower and the verifier's independent re-derivation.
struct DefReadSets {
  std::map<std::string, std::set<std::string>> rels, maps;
};
DefReadSets ComputeDefReads(const compiler::Program& program);

/// Everything `e` may read, including through init-on-access cascades.
void ExpandReads(const ring::ExprPtr& e, const DefReadSets& def,
                 std::set<std::string>* rels, std::set<std::string>* maps);

/// Maps whose value is read anywhere in the program: by another map's
/// initializer definition, by any statement RHS, or by an extreme
/// statement's guard or value.
std::set<std::string> MapsReadAnywhere(const compiler::Program& program,
                                       const DefReadSets& def);

/// Extract the vectorizable guard prefix of a delta statement into
/// s->preds / s->vec_rhs / s->statically_zero. Deterministic in the
/// statement RHS and parameter list alone: Lower calls it once per
/// statement, and the verifier re-runs it on a scrubbed copy to re-prove
/// that the predicates a module claims are sign-free and lane-sound.
void ExtractStmtPreds(const std::vector<Param>& params, Stmt* s);

/// Derive the batch-analysis verdict for `t` from its statements alone:
/// vectorizable, parallel_safe, partition_cols, and per-statement
/// reeval_deferrable. Lower calls this once per trigger; the verifier calls
/// it again on a scrubbed copy to re-prove the flags a module claims.
void AnalyzeTriggerBatch(Trigger* t, const compiler::Program& program,
                         const DefReadSets& def,
                         const std::set<std::string>& read_anywhere);

/// Greedy join order for a product's factors given already-bound variables:
/// fully-bound factors first (cheap guards/probes), then lifts, then atoms
/// by bound-argument count. Shared by the codegen emitter, the plan text
/// and (transitively, via the interpreter's evaluator mirroring it) the
/// interpreted engine.
std::vector<ring::ExprPtr> OrderProductFactors(
    const std::vector<ring::ExprPtr>& factors,
    const std::set<std::string>& bound);

}  // namespace dbtoaster::tir

#endif  // DBTOASTER_COMPILER_TIR_H_
