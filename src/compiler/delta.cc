#include "src/compiler/delta.h"

#include <cassert>

namespace dbtoaster::compiler {

using ring::Expr;
using ring::ExprPtr;

namespace {

/// Delta of a product f1 · f2 · ... · fn via the binary rule applied
/// recursively; zero sub-deltas prune the expansion, so for self-join-free
/// monomials this yields exactly one surviving term.
ExprPtr DeltaProd(const std::vector<ExprPtr>& factors, size_t from,
                  const DeltaEvent& event) {
  if (from + 1 == factors.size()) return Delta(factors[from], event);
  ExprPtr head = factors[from];
  ExprPtr dhead = Delta(head, event);
  std::vector<ExprPtr> tail(factors.begin() + from + 1, factors.end());
  ExprPtr dtail = DeltaProd(factors, from + 1, event);
  ExprPtr rest = Expr::Prod(std::vector<ExprPtr>(tail));

  std::vector<ExprPtr> addends;
  if (!dhead->IsZero()) {
    addends.push_back(Expr::Prod({dhead, rest}));
  }
  if (!dtail->IsZero()) {
    addends.push_back(Expr::Prod({head, dtail}));
  }
  if (!dhead->IsZero() && !dtail->IsZero()) {
    addends.push_back(Expr::Prod({dhead, dtail}));
  }
  return Expr::Sum(std::move(addends));
}

}  // namespace

ExprPtr Delta(const ExprPtr& e, const DeltaEvent& event) {
  switch (e->kind) {
    case ring::ExprKind::kConst:
    case ring::ExprKind::kValTerm:
    case ring::ExprKind::kCmp:
    case ring::ExprKind::kLift:
      return Expr::Zero();
    case ring::ExprKind::kMapRef:
      // Materialized maps are maintained by their own triggers; within the
      // delta-compiled fragment they never appear in definitions (hybrid
      // reeval statements are not delta-compiled), so their delta here is 0.
      return Expr::Zero();
    case ring::ExprKind::kRel: {
      if (e->name != event.relation) return Expr::Zero();
      assert(e->args.size() == event.params.size() &&
             "event arity mismatch against relation atom");
      std::vector<ExprPtr> lifts;
      lifts.reserve(e->args.size() + 1);
      if (event.sign < 0) lifts.push_back(Expr::Const(Value(int64_t{-1})));
      for (size_t i = 0; i < e->args.size(); ++i) {
        lifts.push_back(
            Expr::Lift(e->args[i], ring::Term::Var(event.params[i])));
      }
      return Expr::Prod(std::move(lifts));
    }
    case ring::ExprKind::kNeg:
      return Expr::Neg(Delta(e->children[0], event));
    case ring::ExprKind::kSum: {
      std::vector<ExprPtr> ds;
      ds.reserve(e->children.size());
      for (const ExprPtr& c : e->children) ds.push_back(Delta(c, event));
      return Expr::Sum(std::move(ds));
    }
    case ring::ExprKind::kProd:
      return DeltaProd(e->children, 0, event);
    case ring::ExprKind::kAggSum:
      return Expr::AggSum(e->group_vars, Delta(e->children[0], event));
  }
  assert(false);
  return Expr::Zero();
}

}  // namespace dbtoaster::compiler
