#include "src/compiler/compile.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <deque>
#include <functional>
#include <set>

#include "src/common/str.h"
#include "src/compiler/delta.h"
#include "src/compiler/simplify.h"
#include "src/sql/parser.h"

namespace dbtoaster::compiler {

using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

namespace {

/// Value type of a ring expression given variable types and map value types
/// (map types are passed as "@<map>" entries, matching Term::TypeOf).
Result<Type> ExprValueType(const ExprPtr& e, const ring::VarTypes& types) {
  switch (e->kind) {
    case ring::ExprKind::kConst:
      return e->constant.is_double() ? Type::kDouble : Type::kInt;
    case ring::ExprKind::kValTerm:
      return e->term->TypeOf(types);
    case ring::ExprKind::kCmp:
    case ring::ExprKind::kLift:
    case ring::ExprKind::kRel:
      return Type::kInt;
    case ring::ExprKind::kMapRef: {
      auto it = types.find("@" + e->name);
      if (it == types.end()) {
        return Status::Internal("unknown map value type: " + e->name);
      }
      return it->second;
    }
    case ring::ExprKind::kNeg:
    case ring::ExprKind::kAggSum:
      return ExprValueType(e->children[0], types);
    case ring::ExprKind::kSum:
    case ring::ExprKind::kProd: {
      Type t = Type::kInt;
      for (const ExprPtr& c : e->children) {
        DBT_ASSIGN_OR_RETURN(Type ct, ExprValueType(c, types));
        if (ct == Type::kString) {
          return Status::TypeError("string-valued ring expression");
        }
        t = PromoteNumeric(t, ct);
      }
      return t;
    }
  }
  return Status::Internal("unhandled expr kind in ExprValueType");
}

/// Canonicalise a map definition AggSum(keys, body): keys become k0..kn in
/// key order, internal variables become b0..bm in a deterministic traversal,
/// and factors are sorted. The canonical string is the sharing signature.
struct Canonical {
  ExprPtr defn;            // canonicalised AggSum
  std::string signature;
};

void CollectVarsInOrder(const ExprPtr& e, std::vector<std::string>* out,
                        std::set<std::string>* seen) {
  auto add = [&](const std::string& v) {
    if (seen->insert(v).second) out->push_back(v);
  };
  switch (e->kind) {
    case ring::ExprKind::kRel:
    case ring::ExprKind::kMapRef:
      for (const std::string& v : e->args) add(v);
      break;
    case ring::ExprKind::kLift: {
      for (const std::string& v : e->term->Vars()) add(v);
      add(e->var);
      break;
    }
    case ring::ExprKind::kValTerm:
      for (const std::string& v : e->term->Vars()) add(v);
      break;
    case ring::ExprKind::kCmp:
      for (const std::string& v : e->cmp_lhs->Vars()) add(v);
      for (const std::string& v : e->cmp_rhs->Vars()) add(v);
      break;
    default:
      for (const ExprPtr& c : e->children) CollectVarsInOrder(c, out, seen);
  }
}

/// Skeleton string with non-key variables blanked — a rename-independent
/// sort key for factors.
std::string Skeleton(const ExprPtr& e, const std::set<std::string>& keys) {
  std::string s = e->ToString();
  // Blank variable-like identifiers that are not keys. Cheap textual
  // approach: replace each var occurrence by '?'. We conservatively only
  // blank names that appear in the expression's variable set.
  for (const std::string& v : e->AllVars()) {
    if (keys.count(v)) continue;
    std::string needle = v;
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      // Require non-identifier characters around the match.
      auto ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
      };
      bool left_ok = pos == 0 || !ident(s[pos - 1]);
      bool right_ok =
          pos + needle.size() >= s.size() || !ident(s[pos + needle.size()]);
      if (left_ok && right_ok) {
        s.replace(pos, needle.size(), "?");
        pos += 1;
      } else {
        pos += needle.size();
      }
    }
  }
  return s;
}

ExprPtr SortFactors(const ExprPtr& e) {
  if (e->kind == ring::ExprKind::kProd) {
    std::vector<ExprPtr> cs = e->children;
    std::stable_sort(cs.begin(), cs.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return a->ToString() < b->ToString();
                     });
    return Expr::Prod(std::move(cs));
  }
  if (e->kind == ring::ExprKind::kSum) {
    std::vector<ExprPtr> cs;
    for (const ExprPtr& c : e->children) cs.push_back(SortFactors(c));
    std::stable_sort(cs.begin(), cs.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return a->ToString() < b->ToString();
                     });
    return Expr::Sum(std::move(cs));
  }
  if (e->kind == ring::ExprKind::kAggSum) {
    return Expr::AggSum(e->group_vars, SortFactors(e->children[0]));
  }
  return e;
}

Canonical Canonicalize(const std::vector<std::string>& keys,
                       const ExprPtr& body) {
  std::map<std::string, std::string> ren;
  std::set<std::string> key_set(keys.begin(), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    // Duplicate key vars keep their first canonical name.
    ren.emplace(keys[i], StrFormat("k%zu", i));
  }
  // Deterministic bound-variable order: sort monomial factors by skeleton,
  // then collect variables in traversal order.
  ExprPtr pre = body;
  if (pre->kind == ring::ExprKind::kProd) {
    std::vector<ExprPtr> cs = pre->children;
    std::stable_sort(cs.begin(), cs.end(),
                     [&](const ExprPtr& a, const ExprPtr& b) {
                       return Skeleton(a, key_set) < Skeleton(b, key_set);
                     });
    pre = Expr::Prod(std::move(cs));
  }
  std::vector<std::string> order;
  std::set<std::string> seen;
  CollectVarsInOrder(pre, &order, &seen);
  size_t next = 0;
  for (const std::string& v : order) {
    if (ren.count(v)) continue;
    ren[v] = StrFormat("b%zu", next++);
  }
  ExprPtr renamed = pre->Rename(ren);
  renamed = SortFactors(renamed);
  std::vector<std::string> ckeys;
  for (size_t i = 0; i < keys.size(); ++i) ckeys.push_back(ren[keys[i]]);
  ExprPtr defn = Expr::AggSum(ckeys, renamed);
  return Canonical{defn, defn->ToString()};
}

/// Event parameter name for a column (avoids canonical k*/b* names).
std::string ParamName(const std::string& column) {
  std::string p = ToLower(column);
  if (p.size() >= 2 && (p[0] == 'k' || p[0] == 'b')) {
    bool digits = true;
    for (size_t i = 1; i < p.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(p[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) p = "p_" + p;
  }
  return p;
}

}  // namespace

Status Compiler::AddQuery(const std::string& name, const std::string& sql) {
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                       sql::ParseSelect(sql));
  return AddQuery(name, *stmt);
}

Status Compiler::AddQuery(const std::string& name,
                          const sql::SelectStmt& stmt) {
  for (const Pending& p : queries_) {
    if (p.name == name) {
      return Status::InvalidArgument("duplicate query name: " + name);
    }
  }
  DBT_ASSIGN_OR_RETURN(std::unique_ptr<TranslatedQuery> t,
                       Translate(stmt, catalog_, name, &var_counter_));
  queries_.push_back(Pending{name, std::move(t)});
  return Status::OK();
}

Result<Program> Compiler::Compile() {
  Program program;
  program.catalog = catalog_;

  // Relation schemas for type inference.
  std::map<std::string, std::vector<Type>> rel_types;
  for (const Schema& s : catalog_.relations()) {
    std::vector<Type> ts;
    for (size_t i = 0; i < s.num_columns(); ++i) ts.push_back(s.column_type(i));
    rel_types[s.name()] = std::move(ts);
  }

  // ---- map registry ----
  struct RegMap {
    std::string name;
    Canonical canon;
    std::vector<Type> key_types;
    Type value_type;
    int level;
    std::string display;  ///< registration-site rendering (for the trace)
    bool needs_init = false;
  };
  std::vector<RegMap> registry;
  std::map<std::string, size_t> by_signature;
  std::map<std::string, size_t> by_name;
  ring::VarTypes map_value_types;  // "@name" -> value type
  int anon_counter = 0;

  // Registers (or finds) the map AggSum(keys, body); returns its name.
  // `key_types` must align with `keys`.
  auto register_map = [&](const std::vector<std::string>& keys,
                          const std::vector<Type>& key_types,
                          const ExprPtr& body, int level,
                          const std::string& preferred_name,
                          bool* created) -> Result<std::string> {
    ExprPtr norm_body = NormalizeDefinition(body);
    Canonical canon = Canonicalize(keys, norm_body);
    auto it = by_signature.find(canon.signature);
    if (it != by_signature.end()) {
      if (created != nullptr) *created = false;
      // Keep the smallest level (earliest recursion depth) for the trace.
      registry[it->second].level =
          std::min(registry[it->second].level, level);
      return registry[it->second].name;
    }
    std::string name = preferred_name;
    if (name.empty()) name = StrFormat("m%d", ++anon_counter);
    if (by_name.count(name)) {
      name = StrFormat("%s_%d", name.c_str(), ++anon_counter);
    }
    // Value type: infer variable types inside the canonical definition.
    ring::VarTypes types = map_value_types;
    for (size_t i = 0; i < keys.size(); ++i) {
      types[StrFormat("k%zu", i)] = key_types[i];
    }
    DBT_RETURN_IF_ERROR(
        ring::InferVarTypes(*canon.defn, rel_types, &types));
    DBT_ASSIGN_OR_RETURN(Type vt, ExprValueType(canon.defn, types));

    RegMap rm;
    rm.name = name;
    rm.canon = canon;
    rm.key_types = key_types;
    rm.value_type = vt;
    rm.level = level;
    rm.display = "AggSum([" +
                 Join({keys.begin(), keys.end()}, ", ") + "], " +
                 norm_body->ToString() + ")";
    by_signature[canon.signature] = registry.size();
    by_name[name] = registry.size();
    map_value_types["@" + name] = vt;
    registry.push_back(std::move(rm));
    if (created != nullptr) *created = true;
    return name;
  };

  // ---- triggers ----
  std::map<std::pair<std::string, EventKind>, Trigger> triggers;
  auto trigger_for = [&](const std::string& rel,
                         EventKind kind) -> Result<Trigger*> {
    auto key = std::make_pair(rel, kind);
    auto it = triggers.find(key);
    if (it == triggers.end()) {
      const Schema* schema = catalog_.FindRelation(rel);
      if (schema == nullptr) {
        return Status::NotFound("unknown relation: " + rel);
      }
      Trigger t;
      t.relation = schema->name();
      t.event = kind;
      for (size_t c = 0; c < schema->num_columns(); ++c) {
        t.params.push_back(ParamName(schema->column_name(c)));
      }
      it = triggers.emplace(key, std::move(t)).first;
    }
    return &it->second;
  };

  // Materialise AggSum / bare relation factors in a statement RHS into map
  // references, registering new maps at `level`. Records used/new maps.
  std::function<Result<ExprPtr>(const ExprPtr&, int, const ring::VarTypes&,
                                std::vector<std::string>*,
                                std::vector<std::pair<std::string, std::string>>*,
                                std::deque<size_t>*)>
      materialize = [&](const ExprPtr& e, int level,
                        const ring::VarTypes& env_types,
                        std::vector<std::string>* used,
                        std::vector<std::pair<std::string, std::string>>*
                            new_maps,
                        std::deque<size_t>* worklist) -> Result<ExprPtr> {
    auto wrap_as_map = [&](const std::vector<std::string>& keys,
                           const ExprPtr& body) -> Result<ExprPtr> {
      std::vector<Type> key_types;
      for (const std::string& k : keys) {
        auto it = env_types.find(k);
        if (it == env_types.end()) {
          // Infer from the body.
          ring::VarTypes t2 = map_value_types;
          DBT_RETURN_IF_ERROR(ring::InferVarTypes(*body, rel_types, &t2));
          auto jt = t2.find(k);
          if (jt == t2.end()) {
            return Status::Internal("untyped map key variable: " + k);
          }
          key_types.push_back(jt->second);
        } else {
          key_types.push_back(it->second);
        }
      }
      bool created = false;
      DBT_ASSIGN_OR_RETURN(
          std::string name,
          register_map(keys, key_types, body, level, "", &created));
      if (created) {
        new_maps->emplace_back(name, registry[by_name[name]].display);
        worklist->push_back(by_name[name]);
      }
      used->push_back(name);
      return Expr::MapRef(name, keys);
    };

    switch (e->kind) {
      case ring::ExprKind::kAggSum: {
        if (!e->HasRelAtoms()) return e;
        // Keys: the group vars plus any free inputs (event parameters or
        // outer keys referenced by comparisons/terms inside).
        std::vector<std::string> keys = e->group_vars;
        std::set<std::string> have(keys.begin(), keys.end());
        for (const std::string& v : e->InVars()) {
          if (have.insert(v).second) keys.push_back(v);
        }
        return wrap_as_map(keys, e->children[0]);
      }
      case ring::ExprKind::kRel: {
        // Bare relation atom: materialise its multiplicity map (the paper's
        // q1-style count maps).
        std::vector<std::string> keys = e->args;
        return wrap_as_map(keys, e);
      }
      case ring::ExprKind::kProd:
      case ring::ExprKind::kSum: {
        std::vector<ExprPtr> cs;
        cs.reserve(e->children.size());
        for (const ExprPtr& c : e->children) {
          DBT_ASSIGN_OR_RETURN(
              ExprPtr mc,
              materialize(c, level, env_types, used, new_maps, worklist));
          cs.push_back(std::move(mc));
        }
        return e->kind == ring::ExprKind::kProd ? Expr::Prod(std::move(cs))
                                                : Expr::Sum(std::move(cs));
      }
      case ring::ExprKind::kNeg: {
        DBT_ASSIGN_OR_RETURN(ExprPtr mc,
                             materialize(e->children[0], level, env_types,
                                         used, new_maps, worklist));
        return Expr::Neg(mc);
      }
      case ring::ExprKind::kMapRef:
        used->push_back(e->name);
        return e;
      default:
        return e;
    }
  };

  // ---- per-query processing ----
  std::deque<size_t> worklist;  // indices into registry
  std::vector<MapDecl> extreme_decls;

  // LEFT JOIN lowering: the result map of each aggregate (and the domain)
  // is maintained as  matched (inner join)  +  unmatched (left rows whose
  // match count is zero). Three map families cooperate:
  //   cnt[j]    = Σ right · (right ON preds)        (match count per key)
  //   W[g, j]   = Σ left atoms · left preds · value (left-side aggregate)
  //   T[g]      = matched[g] + Σ_j W[g, j] · [cnt[j] = 0]
  // T's statements: generic deltas of both branches for left/right events
  // (the [cnt = 0] factor is constant under left events), plus hand-built
  // corrections on right events for rows whose count crosses zero — all
  // phase-1 delta statements, so every read sees the pre-event state.
  auto lower_left_join = [&](TranslatedQuery& tq,
                             const std::string& target_name,
                             const ExprPtr& matched_expr,
                             const ExprPtr& w_body, Type value_type,
                             const std::string& cnt_name,
                             const std::map<std::string, std::string>&
                                 to_params) -> Status {
    const TranslatedLeftJoin& lj = *tq.left_join;

    std::vector<TermPtr> jvar_terms, jparam_terms;
    for (const std::string& v : lj.join_vars) {
      jvar_terms.push_back(Term::Var(v));
      jparam_terms.push_back(Term::Var(to_params.at(v)));
    }
    ExprPtr cnt_zero =
        Expr::Cmp(sql::BinOp::kEq, Term::MapRead(cnt_name, jvar_terms),
                  Term::Int(0));
    ExprPtr unmatched_expr =
        Expr::AggSum(tq.group_vars, Expr::Prod({w_body, cnt_zero}));

    MapDecl decl;
    decl.name = target_name;
    for (size_t k = 0; k < tq.group_vars.size(); ++k) {
      decl.key_names.push_back(StrFormat("k%zu", k));
    }
    decl.key_types = tq.key_types;
    decl.value_type = value_type;
    decl.level = 1;
    decl.definition = Expr::AggSum(
        tq.group_vars,
        Expr::Sum({matched_expr->children[0], Expr::Prod({w_body, cnt_zero})}));
    extreme_decls.push_back(std::move(decl));
    map_value_types["@" + target_name] = value_type;

    auto compile_branch_deltas = [&](const ExprPtr& defn) -> Status {
      std::set<std::string> rels;
      defn->CollectRels(&rels);
      for (const std::string& rel : rels) {
        const Schema* schema = catalog_.FindRelation(rel);
        if (schema == nullptr) {
          return Status::NotFound("unknown relation: " + rel);
        }
        for (int sign : {+1, -1}) {
          DeltaEvent ev;
          ev.relation = schema->name();
          ev.sign = sign;
          for (size_t c = 0; c < schema->num_columns(); ++c) {
            ev.params.push_back(ParamName(schema->column_name(c)));
          }
          ExprPtr delta = Delta(defn, ev);
          std::set<std::string> params(ev.params.begin(), ev.params.end());
          DBT_ASSIGN_OR_RETURN(std::vector<DeltaUnit> units,
                               SimplifyDelta(delta, params));
          ring::VarTypes env_types = map_value_types;
          for (const auto& [k, v] : tq.var_types) env_types.emplace(k, v);
          for (size_t c = 0; c < schema->num_columns(); ++c) {
            env_types[ev.params[c]] = schema->column_type(c);
          }
          DBT_ASSIGN_OR_RETURN(
              Trigger * trig,
              trigger_for(schema->name(), sign > 0 ? EventKind::kInsert
                                                   : EventKind::kDelete));
          TraceRow row;
          row.level = 1;
          row.event = ev.Label();
          row.target = target_name;
          row.query = defn->ToString();
          std::string code;
          for (DeltaUnit& unit : units) {
            std::vector<std::string> used;
            DBT_ASSIGN_OR_RETURN(
                ExprPtr rhs,
                materialize(unit.rhs, 2, env_types, &used, &row.new_maps,
                            &worklist));
            // Guard: derived maps must not close over the match-count map —
            // they would go stale on right-side events (their definitions
            // are only delta-compiled against their own relations).
            for (const auto& [nm, display] : row.new_maps) {
              std::set<std::string> refs;
              registry[by_name.at(nm)].canon.defn->CollectMapRefs(&refs);
              if (refs.count(cnt_name)) {
                return Status::NotSupported(
                    "unsupported LEFT JOIN shape: the unmatched branch "
                    "would materialise a view over the match-count map "
                    "(multi-relation left side with unbound join keys)");
              }
            }
            Statement st;
            st.kind = Statement::Kind::kDelta;
            st.target = target_name;
            st.target_keys = unit.keys;
            st.rhs = rhs;
            std::set<std::string> bindable(params.begin(), params.end());
            for (const std::string& v : rhs->OutVars()) bindable.insert(v);
            for (size_t k = 0; k < st.target_keys.size(); ++k) {
              if (!bindable.count(st.target_keys[k])) {
                return Status::NotSupported(
                    "unsupported LEFT JOIN shape: a group key is not "
                    "bindable from the event");
              }
            }
            for (const std::string& u : used) row.maps_used.push_back(u);
            if (!code.empty()) code += "; ";
            code += st.ToString();
            trig->statements.push_back(std::move(st));
          }
          if (units.empty()) code = "(no effect)";
          row.delta_code = code;
          program.trace.push_back(std::move(row));
        }
      }
      return Status::OK();
    };
    DBT_RETURN_IF_ERROR(compile_branch_deltas(matched_expr));
    DBT_RETURN_IF_ERROR(compile_branch_deltas(unmatched_expr));

    // W map keyed by (group vars ∪ join vars); right events slice it on the
    // event's join key.
    std::vector<std::string> wkeys = tq.group_vars;
    std::vector<Type> wtypes = tq.key_types;
    for (const std::string& v : lj.join_vars) {
      if (std::find(wkeys.begin(), wkeys.end(), v) == wkeys.end()) {
        wkeys.push_back(v);
        auto it = tq.var_types.find(v);
        if (it == tq.var_types.end()) {
          return Status::Internal("untyped join variable: " + v);
        }
        wtypes.push_back(it->second);
      }
    }
    bool wcreated = false;
    std::string w_name;
    DBT_ASSIGN_OR_RETURN(
        w_name, register_map(wkeys, wtypes, w_body, 2,
                             target_name + "_w", &wcreated));
    if (wcreated) worklist.push_back(by_name[w_name]);

    std::vector<std::string> wargs, tkeys;
    for (const std::string& k : wkeys) {
      auto it = to_params.find(k);
      wargs.push_back(it == to_params.end() ? k : it->second);
    }
    for (const std::string& g : tq.group_vars) {
      auto it = to_params.find(g);
      tkeys.push_back(it == to_params.end() ? g : it->second);
    }
    TermPtr cnt_read_params = Term::MapRead(cnt_name, jparam_terms);
    for (int sign : {+1, -1}) {
      DBT_ASSIGN_OR_RETURN(
          Trigger * trig,
          trigger_for(lj.right_relation,
                      sign > 0 ? EventKind::kInsert : EventKind::kDelete));
      std::vector<ExprPtr> fs;
      for (const ExprPtr& p : lj.right_preds) {
        fs.push_back(p->Rename(to_params));
      }
      // Exact telescoping form ΔU = ([cnt_post = 0] - [cnt_pre = 0]) · W
      // with cnt_post = cnt_pre ± 1. Batched replay serialises a batch's
      // events per (relation, op) group, which may reorder a delete ahead
      // of its same-batch insert and drive the count transiently negative;
      // the telescoped indicator difference sums to the right total under
      // every such serialisation (a plain [cnt_pre = 0] threshold does not).
      fs.push_back(Expr::Sum(
          {Expr::Cmp(sql::BinOp::kEq, cnt_read_params,
                     Term::Int(sign > 0 ? -1 : 1)),
           Expr::Neg(Expr::Cmp(sql::BinOp::kEq, cnt_read_params,
                               Term::Int(0)))}));
      fs.push_back(Expr::MapRef(w_name, wargs));
      ExprPtr rhs = Expr::Prod(std::move(fs));
      Statement st;
      st.kind = Statement::Kind::kDelta;
      st.target = target_name;
      st.target_keys = tkeys;
      st.rhs = rhs;
      TraceRow row;
      row.level = 1;
      row.event = (sign > 0 ? "+" : "-") + lj.right_relation;
      row.target = target_name;
      row.query = "unmatched-branch zero crossing";
      row.delta_code = st.ToString();
      row.maps_used = {cnt_name, w_name};
      program.trace.push_back(std::move(row));
      trig->statements.push_back(std::move(st));
    }
    return Status::OK();
  };

  for (Pending& pq : queries_) {
    TranslatedQuery& tq = *pq.translated;
    ViewSpec view;
    view.name = tq.name;
    view.sql = tq.sql;
    view.key_column_names = tq.key_column_names;
    view.key_vars = tq.group_vars;
    view.key_types = tq.key_types;
    view.hybrid = tq.hybrid;

    std::map<std::string, std::string> placeholder_names;  // "$x" -> real

    // --- subqueries (inner maps), compiled incrementally ---
    for (TranslatedSubquery& sub : tq.subqueries) {
      TranslatedQuery& in = *sub.inner;
      for (size_t a = 0; a < in.aggregates.size(); ++a) {
        TranslatedAggregate& agg = in.aggregates[a];
        if (agg.is_extreme) {
          return Status::NotSupported(
              "MIN/MAX inside subqueries is not supported");
        }
        std::vector<Type> key_types;
        ring::VarTypes t2 = map_value_types;
        DBT_RETURN_IF_ERROR(
            ring::InferVarTypes(*agg.expr, rel_types, &t2));
        for (const auto& [k, v] : in.var_types) t2.emplace(k, v);
        for (const auto& [k, v] : tq.var_types) t2.emplace(k, v);
        for (const std::string& k : in.group_vars) {
          auto it = t2.find(k);
          if (it == t2.end()) {
            return Status::Internal("untyped correlation variable: " + k);
          }
          key_types.push_back(it->second);
        }
        bool created = false;
        DBT_ASSIGN_OR_RETURN(
            std::string name,
            register_map(in.group_vars, key_types, agg.expr->children[0],
                         /*level=*/1,
                         StrFormat("%s_a%zu", in.name.c_str(), a), &created));
        if (created) worklist.push_back(by_name[name]);
        std::string ph = StrFormat("$%s_agg%zu", in.name.c_str(), a);
        placeholder_names[ph] = name;
      }
    }

    // --- LEFT JOIN queries: matched + unmatched lowering per slot ---
    if (tq.left_join != nullptr) {
      const TranslatedLeftJoin& lj = *tq.left_join;
      std::vector<Type> jtypes;
      for (const std::string& v : lj.join_vars) {
        auto it = tq.var_types.find(v);
        if (it == tq.var_types.end()) {
          return Status::Internal("untyped join variable: " + v);
        }
        jtypes.push_back(it->second);
      }
      bool created = false;
      std::string cnt_name;
      DBT_ASSIGN_OR_RETURN(
          cnt_name, register_map(lj.join_vars, jtypes, lj.cnt_body,
                                 /*level=*/1, tq.name + "_ljc", &created));
      if (created) worklist.push_back(by_name[cnt_name]);

      const Schema* rschema = catalog_.FindRelation(lj.right_relation);
      if (rschema == nullptr) {
        return Status::NotFound("unknown relation: " + lj.right_relation);
      }
      std::map<std::string, std::string> to_params;
      for (size_t c = 0; c < rschema->num_columns(); ++c) {
        to_params.emplace(lj.right_vars[c],
                          ParamName(rschema->column_name(c)));
      }

      for (size_t a = 0; a < tq.aggregates.size(); ++a) {
        TranslatedAggregate& agg = tq.aggregates[a];
        if (agg.is_extreme || agg.unmatched_body == nullptr) {
          return Status::Internal(
              "left-join aggregate without an unmatched branch");
        }
        std::string name =
            tq.aggregates.size() == 1 ? tq.name
                                      : StrFormat("%s_a%zu", tq.name.c_str(), a);
        DBT_RETURN_IF_ERROR(lower_left_join(tq, name, agg.expr,
                                            agg.unmatched_body,
                                            agg.value_type, cnt_name,
                                            to_params));
        placeholder_names[StrFormat("$%s_agg%zu", tq.name.c_str(), a)] = name;
      }
      if (!tq.group_vars.empty()) {
        std::string dom = StrFormat("%s_dom", tq.name.c_str());
        DBT_RETURN_IF_ERROR(lower_left_join(tq, dom, tq.domain_expr,
                                            lj.unmatched_domain_body,
                                            Type::kInt, cnt_name, to_params));
        view.domain_map = dom;
      }
      if (tq.having != nullptr) {
        view.having = tq.having->RenameMaps(placeholder_names);
      }
      for (const ViewColumn& c : tq.columns) {
        ViewColumn out = c;
        if (out.kind != ViewColumn::Kind::kTerm) {
          return Status::Internal("extreme column in a left-join view");
        }
        out.value = out.value->RenameMaps(placeholder_names);
        view.columns.push_back(std::move(out));
      }
      program.views.push_back(std::move(view));
      continue;
    }

    // --- aggregates ---
    std::vector<std::string> agg_map_names(tq.aggregates.size());
    for (size_t a = 0; a < tq.aggregates.size(); ++a) {
      TranslatedAggregate& agg = tq.aggregates[a];
      std::string ph = StrFormat("$%s_agg%zu", tq.name.c_str(), a);

      if (agg.is_extreme) {
        // Ordered-multiset map + add/remove statements.
        std::string name = StrFormat("%s_x%zu", tq.name.c_str(), a);
        MapDecl decl;
        decl.name = name;
        decl.is_extreme = true;
        decl.extreme_kind = agg.kind;
        decl.value_type = agg.value_type;
        for (size_t k = 0; k < tq.group_vars.size(); ++k) {
          decl.key_names.push_back(tq.group_vars[k]);
          decl.key_types.push_back(tq.key_types[k]);
        }
        decl.level = 1;
        extreme_decls.push_back(decl);
        agg_map_names[a] = name;
        placeholder_names[ph] = name;

        // Statements: rename the relation's column vars to event params.
        const Schema* schema = catalog_.FindRelation(agg.extreme_relation);
        assert(schema != nullptr);
        std::map<std::string, std::string> to_params;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          to_params[agg.extreme_rel_vars[c]] =
              ParamName(schema->column_name(c));
        }
        for (EventKind kind : {EventKind::kInsert, EventKind::kDelete}) {
          DBT_ASSIGN_OR_RETURN(Trigger * trig,
                               trigger_for(agg.extreme_relation, kind));
          Statement st;
          st.kind = Statement::Kind::kExtreme;
          st.target = name;
          for (const std::string& g : tq.group_vars) {
            auto it = to_params.find(g);
            st.target_keys.push_back(it == to_params.end() ? g : it->second);
          }
          st.extreme_sign = kind == EventKind::kInsert ? +1 : -1;
          st.extreme_value = agg.extreme_value->Rename(to_params);
          if (agg.extreme_guard != nullptr) {
            st.extreme_guard = agg.extreme_guard->Rename(to_params);
          }
          trig->statements.push_back(std::move(st));
        }
        continue;
      }

      if (!tq.hybrid) {
        // Pure IVM path: register as a level-1 map and let the worklist
        // compile its deltas.
        std::vector<Type> key_types = tq.key_types;
        std::string preferred =
            tq.aggregates.size() == 1 ? tq.name
                                      : StrFormat("%s_a%zu", tq.name.c_str(), a);
        bool created = false;
        DBT_ASSIGN_OR_RETURN(
            std::string name,
            register_map(tq.group_vars, key_types, agg.expr->children[0],
                         /*level=*/1, preferred, &created));
        if (created) worklist.push_back(by_name[name]);
        agg_map_names[a] = name;
        placeholder_names[ph] = name;
        continue;
      }

      // Hybrid path: materialised result map, re-evaluated per event over
      // the maintained maps (inner aggregates are incremental).
      if (!tq.group_vars.empty()) {
        return Status::NotSupported(
            "queries with subqueries must be global aggregates (no GROUP "
            "BY) in this implementation");
      }
      // Rebuild the outer expression with placeholder map reads renamed to
      // the registered inner map names.
      std::function<ExprPtr(const ExprPtr&)> rename_maps =
          [&](const ExprPtr& e) -> ExprPtr {
        switch (e->kind) {
          case ring::ExprKind::kValTerm:
            return Expr::ValTerm(e->term->RenameMaps(placeholder_names));
          case ring::ExprKind::kCmp:
            return Expr::Cmp(e->cmp_op,
                             e->cmp_lhs->RenameMaps(placeholder_names),
                             e->cmp_rhs->RenameMaps(placeholder_names));
          case ring::ExprKind::kLift:
            return Expr::Lift(e->var,
                              e->term->RenameMaps(placeholder_names));
          case ring::ExprKind::kSum:
          case ring::ExprKind::kProd: {
            std::vector<ExprPtr> cs;
            for (const ExprPtr& c : e->children) cs.push_back(rename_maps(c));
            return e->kind == ring::ExprKind::kSum ? Expr::Sum(std::move(cs))
                                                   : Expr::Prod(std::move(cs));
          }
          case ring::ExprKind::kNeg:
            return Expr::Neg(rename_maps(e->children[0]));
          case ring::ExprKind::kAggSum:
            return Expr::AggSum(e->group_vars,
                                rename_maps(e->children[0]));
          default:
            return e;
        }
      };
      ExprPtr resolved = rename_maps(agg.expr);

      std::string name = StrFormat("%s_r%zu", tq.name.c_str(), a);
      ring::VarTypes t2 = map_value_types;
      DBT_RETURN_IF_ERROR(ring::InferVarTypes(*resolved, rel_types, &t2));
      DBT_ASSIGN_OR_RETURN(Type vt, ExprValueType(resolved, t2));
      MapDecl decl;
      decl.name = name;
      decl.value_type = vt;
      decl.definition = resolved;
      decl.level = 1;
      extreme_decls.push_back(decl);  // reuses the "extra decls" bucket
      map_value_types["@" + name] = vt;
      agg_map_names[a] = name;
      placeholder_names[ph] = name;

      for (const std::string& rel : tq.relations) {
        for (EventKind kind : {EventKind::kInsert, EventKind::kDelete}) {
          DBT_ASSIGN_OR_RETURN(Trigger * trig, trigger_for(rel, kind));
          Statement st;
          st.kind = Statement::Kind::kReeval;
          st.target = name;
          st.rhs = resolved;
          trig->statements.push_back(std::move(st));
        }
      }
      TraceRow row;
      row.level = 1;
      row.event = "*";
      row.target = name;
      row.query = resolved->ToString();
      row.delta_code = name + "[] := re-evaluate over maps (hybrid)";
      program.trace.push_back(std::move(row));
    }

    // --- domain map for grouped views ---
    if (!tq.group_vars.empty()) {
      if (tq.domain_expr == nullptr) {
        return Status::Internal("translator did not produce a domain query");
      }
      bool created = false;
      DBT_ASSIGN_OR_RETURN(
          std::string dom,
          register_map(tq.group_vars, tq.key_types,
                       tq.domain_expr->children[0], /*level=*/1,
                       StrFormat("%s_dom", tq.name.c_str()), &created));
      if (created) worklist.push_back(by_name[dom]);
      view.domain_map = dom;
    }

    // --- HAVING guard: resolve aggregate placeholders ---
    if (tq.having != nullptr) {
      view.having = tq.having->RenameMaps(placeholder_names);
    }

    // --- view columns: resolve placeholders ---
    for (const ViewColumn& c : tq.columns) {
      ViewColumn out = c;
      if (out.kind == ViewColumn::Kind::kTerm) {
        out.value = out.value->RenameMaps(placeholder_names);
      } else {
        auto it = placeholder_names.find(out.extreme_map);
        if (it == placeholder_names.end()) {
          return Status::Internal("unresolved extreme map placeholder");
        }
        out.extreme_map = it->second;
      }
      view.columns.push_back(std::move(out));
    }
    program.views.push_back(std::move(view));
  }

  // ---- recursive delta compilation over the worklist ----
  std::set<size_t> processed;
  while (!worklist.empty()) {
    size_t idx = worklist.front();
    worklist.pop_front();
    if (!processed.insert(idx).second) continue;
    // Copy out what we need: registry may grow (and reallocate) below.
    const std::string map_name = registry[idx].name;
    const ExprPtr defn = registry[idx].canon.defn;
    const std::vector<Type> key_types = registry[idx].key_types;
    const int level = registry[idx].level;
    const std::string display = registry[idx].display;

    std::set<std::string> rels;
    defn->CollectRels(&rels);
    for (const std::string& rel : rels) {
      const Schema* schema = catalog_.FindRelation(rel);
      if (schema == nullptr) {
        return Status::NotFound("unknown relation in definition: " + rel);
      }
      for (int sign : {+1, -1}) {
        DeltaEvent ev;
        ev.relation = schema->name();
        ev.sign = sign;
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          ev.params.push_back(ParamName(schema->column_name(c)));
        }
        ExprPtr delta = Delta(defn, ev);
        std::set<std::string> params(ev.params.begin(), ev.params.end());
        DBT_ASSIGN_OR_RETURN(std::vector<DeltaUnit> units,
                             SimplifyDelta(delta, params));

        // Environment types: canonical keys + event parameters.
        ring::VarTypes env_types = map_value_types;
        for (size_t k = 0; k < key_types.size(); ++k) {
          env_types[StrFormat("k%zu", k)] = key_types[k];
        }
        for (size_t c = 0; c < schema->num_columns(); ++c) {
          env_types[ev.params[c]] = schema->column_type(c);
        }
        DBT_RETURN_IF_ERROR(
            ring::InferVarTypes(*defn, rel_types, &env_types));

        DBT_ASSIGN_OR_RETURN(
            Trigger * trig,
            trigger_for(schema->name(),
                        sign > 0 ? EventKind::kInsert : EventKind::kDelete));

        TraceRow row;
        row.level = level;
        row.event = ev.Label();
        row.target = map_name;
        row.query = display;

        std::string code;
        for (DeltaUnit& unit : units) {
          std::vector<std::string> used;
          DBT_ASSIGN_OR_RETURN(
              ExprPtr rhs,
              materialize(unit.rhs, level + 1, env_types, &used,
                          &row.new_maps, &worklist));
          Statement st;
          st.kind = Statement::Kind::kDelta;
          st.target = map_name;
          st.target_keys = unit.keys;
          st.rhs = rhs;
          // Which target keys can neither the event nor the RHS bind?
          std::set<std::string> bindable(params.begin(), params.end());
          for (const std::string& v : rhs->OutVars()) bindable.insert(v);
          for (size_t k = 0; k < st.target_keys.size(); ++k) {
            if (!bindable.count(st.target_keys[k])) {
              st.lhs_iterate.push_back(k);
            }
          }
          if (!st.lhs_iterate.empty()) {
            registry[idx].needs_init = true;
          }
          for (const std::string& u : used) row.maps_used.push_back(u);
          if (!code.empty()) code += "; ";
          code += st.ToString();
          trig->statements.push_back(std::move(st));
        }
        if (units.empty()) code = "(no effect)";
        row.delta_code = code;
        program.trace.push_back(std::move(row));
      }
    }
  }

  // ---- assemble ----
  for (const RegMap& rm : registry) {
    MapDecl decl;
    decl.name = rm.name;
    for (size_t i = 0; i < rm.key_types.size(); ++i) {
      decl.key_names.push_back(StrFormat("k%zu", i));
    }
    decl.key_types = rm.key_types;
    decl.value_type = rm.value_type;
    decl.definition = rm.canon.defn;
    decl.needs_init = rm.needs_init;
    decl.level = rm.level;
    program.maps.push_back(std::move(decl));
  }
  for (MapDecl& d : extreme_decls) program.maps.push_back(std::move(d));
  for (auto& entry : triggers) program.triggers.push_back(entry.second);

  return program;
}

Result<Program> CompileQuery(const Catalog& catalog, const std::string& name,
                             const std::string& sql) {
  Compiler c(catalog);
  DBT_RETURN_IF_ERROR(c.AddQuery(name, sql));
  return c.Compile();
}

}  // namespace dbtoaster::compiler
